// Package scorpio is a from-scratch Go reproduction of the SCORPIO 36-core
// research chip (Daya et al., ISCA 2014): snoopy coherence on a scalable
// mesh network-on-chip with in-network global ordering.
//
// The package exposes a small facade over the full simulator:
//
//   - Run executes one benchmark on one protocol configuration and returns
//     aggregate results (runtime, L2 service latency, latency breakdowns).
//   - The Figure*/Table* functions in experiments.go regenerate every table
//     and figure of the paper's evaluation (Section 5).
//   - The underlying building blocks (ordered network, snoopy protocol,
//     directory baselines, workload profiles) live in internal/ packages and
//     are assembled through the option types aliased here.
package scorpio

import (
	"fmt"
	"hash/fnv"
	"os"
	"strings"

	"scorpio/internal/coherence"
	"scorpio/internal/core"
	"scorpio/internal/directory"
	"scorpio/internal/obs"
	"scorpio/internal/system"
	"scorpio/internal/trace"
)

// Protocol selects a coherence/ordering scheme.
type Protocol string

// Supported protocols.
const (
	// SCORPIO is the paper's contribution: snoopy MOSI on the globally
	// ordered mesh.
	SCORPIO Protocol = "SCORPIO"
	// LPDD is the distributed limited-pointer directory baseline.
	LPDD Protocol = "LPD-D"
	// HTD is the distributed HyperTransport-style directory baseline.
	HTD Protocol = "HT-D"
	// TokenB is the token-coherence baseline (no data races modelled,
	// matching the paper).
	TokenB Protocol = "TokenB"
	// INSO is In-Network Snoop Ordering; Config.ExpiryWindow selects the
	// expiration window.
	INSO Protocol = "INSO"
)

// Result aliases the shared per-run results type.
type Result = system.Results

// Profile aliases a benchmark workload profile.
type Profile = trace.Profile

// ScorpioOptions aliases the full SCORPIO machine options for advanced use.
type ScorpioOptions = system.Options

// ChipConfig aliases the ordered-network configuration (Table 1 defaults
// via DefaultChipConfig).
type ChipConfig = core.Config

// DefaultChipConfig returns the fabricated chip's configuration.
func DefaultChipConfig() ChipConfig { return core.DefaultConfig() }

// Config describes one simulation run.
type Config struct {
	// Protocol selects the machine; default SCORPIO.
	Protocol Protocol
	// Benchmark names a SPLASH-2/PARSEC profile (see Benchmarks()).
	Benchmark string
	// Width and Height set the mesh (default 6×6 = the chip).
	Width, Height int
	// WorkPerCore and WarmupPerCore set the measured and cache-warming
	// access counts per core (defaults 400/300).
	WorkPerCore, WarmupPerCore uint64
	// MaxOutstanding bounds in-flight misses per core (default 2, the chip's
	// AHB limit; the paper's GEMS runs use 16).
	MaxOutstanding int
	// Seed drives the workload; equal seeds give identical streams across
	// protocols.
	Seed uint64
	// ExpiryWindow is INSO's expiration window in cycles (default 20).
	ExpiryWindow int
	// IntensityScale multiplies the benchmark's issue intensity (1.0 when
	// zero). The aggressive-core study (Figure 8d) runs at 0.5 so that
	// six-outstanding cores stay below the ordered-delivery saturation
	// point, matching the paper's lower per-instruction miss rates.
	IntensityScale float64
	// DirCacheBytes is the machine-wide directory-cache budget shared by
	// every protocol (the paper equalises 256KB). The default is 8KB: the
	// paper's budget scaled to this repo's synthetic-trace footprints so the
	// capacity regime (working set between LPD's and HT's entry counts)
	// matches the paper's — see EXPERIMENTS.md.
	DirCacheBytes int

	// Design-exploration knobs (Section 5.2); zero values keep the chip's.
	ChannelBytes int
	GOReqVCs     int
	UORespVCs    int
	NotifBits    int
	Bypass       *bool // nil = chip default (enabled)
	PipelinedL2  *bool // nil = pipelined (Figure 10's PL)
	// MainNetworks replicates the main mesh (Section 5.3's throughput
	// extension); 0 or 1 is the chip's single network.
	MainNetworks int
	// UseL1 interposes the tile layer (split write-through L1s behind the
	// AHB single-transaction rule) between the cores and the L2s. The
	// default matches the paper's trace-driven methodology (inject straight
	// into the L2's AHB interface).
	UseL1 bool
	// CycleLimit aborts runaway runs (default 50M cycles).
	CycleLimit uint64
	// Workers sets the simulation kernel's worker count for SCORPIO and
	// directory runs. 0 or 1 keeps the classic serial tick loop; N > 1
	// shards the components over N goroutines with identical results.
	// TokenB/INSO always run serially (their orderers are shared state).
	Workers int
	// DisableIdleSkip turns off the kernel's activity engine, stepping every
	// component every cycle instead of parking quiescent nodes and
	// fast-forwarding fully idle epochs. Results are bit-identical either
	// way; the flag exists for A/B validation and overhead measurement.
	DisableIdleSkip bool

	// Observability (PR 3). All default to off; when off the hooks compile
	// to a nil-check and the hot path stays allocation-free.

	// TracePath, when non-empty, records every flit/transaction lifecycle
	// event and writes a Chrome trace-event JSON file (load in Perfetto or
	// chrome://tracing) at that path after the run.
	TracePath string
	// MetricsInterval samples live metrics (injection/ejection rates, VC
	// occupancy, notification activity, outstanding misses) every N cycles.
	MetricsInterval uint64
	// MetricsPath receives the sampled time series; ".json" suffix selects
	// JSON, anything else CSV. Empty with MetricsInterval set keeps the
	// series in Result.Obs without writing a file.
	MetricsPath string
	// WatchdogCycles aborts the run with a full network-state snapshot when
	// no packet is delivered for this many cycles while traffic is in
	// flight (0 = disabled).
	WatchdogCycles uint64
	// Audit attaches the online ordering/coherence auditor: every NIC's
	// commit stream is cross-checked against a canonical total order, MOSI
	// line states against a shadow directory, and flit delivery against
	// duplicate/drop invariants. The first violation aborts the run with a
	// diagnosis naming the culprit NICs/line. Also enables the per-miss
	// latency attributor (Result.Obs.Attrib).
	Audit bool
	// AuditEvery sets the auditor's stale-sharer sweep period in cycles
	// (0 = the auditor's default). Requires Audit.
	AuditEvery int
	// PerfReportPath attaches the engine self-observability monitor
	// (internal/obs/perfmon) and writes its RunReport JSON — per-worker
	// phase-time decomposition, barrier spin/park split, activity-engine
	// census, rebalance log, host metadata — to this path after the run.
	// The report also stays readable in Result.Obs.PerfReport. "-" attaches
	// the monitor without writing a file.
	PerfReportPath string
	// TelemetryAddr starts the live HTTP exporter on this listen address for
	// the duration of the run (":8090", or ":0" for an ephemeral port printed
	// to stderr): /metrics OpenMetrics text, /stream SSE sample ticks,
	// /snapshot deep state, /healthz, /debug/pprof. Attach cmd/scorpiotop to
	// watch the run live. The server shuts down when the run returns.
	TelemetryAddr string
	// TelemetryInterval is the exporter's sample period in cycles (default
	// 1024). Requires TelemetryAddr.
	TelemetryInterval uint64
	// TelemetrySSEQueue bounds each /stream client's event queue (default
	// 16); a client that falls this far behind drops ticks and is eventually
	// disconnected — the simulation never waits. Requires TelemetryAddr.
	TelemetrySSEQueue int
}

// configDigest fingerprints the simulation-relevant configuration (protocol,
// workload, topology, knobs — not observability or worker settings, which
// never change results) so benchdiff can refuse to compare unlike runs.
func (c *Config) configDigest() string {
	tri := func(p *bool) string {
		if p == nil {
			return "default"
		}
		return fmt.Sprint(*p)
	}
	canon := fmt.Sprintf("proto=%s bench=%s mesh=%dx%d work=%d warmup=%d out=%d seed=%d expiry=%d scale=%g dir=%d ch=%d goreq=%d uoresp=%d notif=%d bypass=%s pl2=%s nets=%d l1=%v",
		c.Protocol, c.Benchmark, c.Width, c.Height, c.WorkPerCore, c.WarmupPerCore,
		c.MaxOutstanding, c.Seed, c.ExpiryWindow, c.IntensityScale, c.DirCacheBytes,
		c.ChannelBytes, c.GOReqVCs, c.UORespVCs, c.NotifBits, tri(c.Bypass), tri(c.PipelinedL2),
		c.MainNetworks, c.UseL1)
	h := fnv.New64a()
	h.Write([]byte(canon))
	return fmt.Sprintf("%016x", h.Sum64())
}

// obsOptions assembles the observability options (nil when everything is
// off).
func (c *Config) obsOptions() *obs.Options {
	o := obs.Options{
		Trace:             c.TracePath != "",
		MetricsInterval:   c.MetricsInterval,
		Watchdog:          c.WatchdogCycles,
		Audit:             c.Audit,
		AuditEvery:        c.AuditEvery,
		Perf:              c.PerfReportPath != "",
		TelemetryAddr:     c.TelemetryAddr,
		TelemetryInterval: c.TelemetryInterval,
		TelemetrySSEQueue: c.TelemetrySSEQueue,
	}
	if !o.Enabled() {
		return nil
	}
	if o.Perf || o.TelemetryAddr != "" {
		o.ConfigDigest = c.configDigest()
	}
	return &o
}

// writeObsArtifacts flushes the trace and metrics files configured in cfg.
// Run errors take precedence; artifact-write errors surface only on
// otherwise-successful runs.
func writeObsArtifacts(cfg Config, r Result) error {
	if r.Obs == nil {
		return nil
	}
	if cfg.TracePath != "" && r.Obs.Tracer != nil {
		f, err := os.Create(cfg.TracePath)
		if err != nil {
			return err
		}
		if err := r.Obs.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if cfg.PerfReportPath != "" && cfg.PerfReportPath != "-" && r.Obs.PerfReport != nil {
		f, err := os.Create(cfg.PerfReportPath)
		if err != nil {
			return err
		}
		if err := r.Obs.PerfReport.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if cfg.MetricsPath != "" && r.Obs.Metrics != nil {
		f, err := os.Create(cfg.MetricsPath)
		if err != nil {
			return err
		}
		if strings.HasSuffix(cfg.MetricsPath, ".json") {
			err = r.Obs.Metrics.WriteJSON(f)
		} else {
			err = r.Obs.Metrics.WriteCSV(f)
		}
		if err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Benchmarks returns every available benchmark name.
func Benchmarks() []string {
	var names []string
	for _, p := range trace.All() {
		names = append(names, p.Name)
	}
	return names
}

// BenchmarksOf returns the benchmarks of one suite ("splash2" or "parsec").
func BenchmarksOf(suite string) []string {
	var names []string
	for _, p := range trace.Suite(suite) {
		names = append(names, p.Name)
	}
	return names
}

// fill applies defaults.
func (c *Config) fill() error {
	if c.Protocol == "" {
		c.Protocol = SCORPIO
	}
	if c.Benchmark == "" {
		return fmt.Errorf("scorpio: Config.Benchmark is required (one of %v)", Benchmarks())
	}
	if c.Width == 0 {
		c.Width = 6
	}
	if c.Height == 0 {
		c.Height = 6
	}
	if c.WorkPerCore == 0 {
		c.WorkPerCore = 400
	}
	if c.WarmupPerCore == 0 {
		c.WarmupPerCore = 300
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ExpiryWindow == 0 {
		c.ExpiryWindow = 20
	}
	if c.DirCacheBytes == 0 {
		c.DirCacheBytes = 8 * 1024
	}
	if c.CycleLimit == 0 {
		c.CycleLimit = 50_000_000
	}
	// Observability flag combinations that silently do nothing are almost
	// always operator mistakes; reject them before building a machine.
	if c.AuditEvery != 0 && !c.Audit {
		return fmt.Errorf("scorpio: Config.AuditEvery requires Config.Audit")
	}
	if c.MetricsPath != "" && c.MetricsInterval == 0 {
		return fmt.Errorf("scorpio: Config.MetricsPath requires Config.MetricsInterval > 0")
	}
	if c.TelemetryInterval != 0 && c.TelemetryAddr == "" {
		return fmt.Errorf("scorpio: Config.TelemetryInterval requires Config.TelemetryAddr")
	}
	if c.TelemetrySSEQueue != 0 && c.TelemetryAddr == "" {
		return fmt.Errorf("scorpio: Config.TelemetrySSEQueue requires Config.TelemetryAddr")
	}
	return nil
}

// Run executes one configuration to completion.
func Run(cfg Config) (Result, error) {
	if err := cfg.fill(); err != nil {
		return Result{}, err
	}
	prof, err := trace.ByName(cfg.Benchmark)
	if err != nil {
		return Result{}, err
	}
	if cfg.IntensityScale > 0 {
		prof.IssueProb *= cfg.IntensityScale
	}
	switch cfg.Protocol {
	case SCORPIO:
		return runScorpio(cfg, prof)
	case LPDD:
		return runDirectory(cfg, prof, directory.LPD)
	case HTD:
		return runDirectory(cfg, prof, directory.HT)
	case TokenB:
		return runBaseline(cfg, prof, system.SchemeTokenB)
	case INSO:
		return runBaseline(cfg, prof, system.SchemeINSO)
	default:
		return Result{}, fmt.Errorf("scorpio: unknown protocol %q", cfg.Protocol)
	}
}

func runScorpio(cfg Config, prof trace.Profile) (Result, error) {
	opt := system.DefaultOptions(prof)
	opt.Core = opt.Core.WithMeshSize(cfg.Width, cfg.Height)
	opt.WorkPerCore = cfg.WorkPerCore
	opt.WarmupPerCore = cfg.WarmupPerCore
	opt.MaxOutstanding = cfg.MaxOutstanding
	opt.Seed = cfg.Seed
	opt.Workers = cfg.Workers
	opt.DisableIdleSkip = cfg.DisableIdleSkip
	if cfg.ChannelBytes != 0 {
		opt.Core.Net.ChannelBytes = cfg.ChannelBytes
	}
	if cfg.GOReqVCs != 0 {
		opt.Core.Net.GOReqVCs = cfg.GOReqVCs
	}
	if cfg.UORespVCs != 0 {
		opt.Core.Net.UORespVCs = cfg.UORespVCs
	}
	if cfg.NotifBits != 0 {
		opt.Core.Notif.BitsPerCore = cfg.NotifBits
	}
	if cfg.Bypass != nil {
		opt.Core.Net.Bypass = *cfg.Bypass
	}
	if cfg.PipelinedL2 != nil {
		opt.L2.Pipelined = *cfg.PipelinedL2
		if !*cfg.PipelinedL2 {
			opt.Core.NIC.EjectOccupancy = 1
		}
	}
	opt.Core.MainNetworks = cfg.MainNetworks
	opt.UseL1 = cfg.UseL1
	opt.L2.DataFlits = opt.Core.Net.DataPacketFlits()
	opt.Mem.TotalDirCacheBytes = cfg.DirCacheBytes
	// Aggressive cores (Figure 8d's study) need matching miss resources.
	if cfg.MaxOutstanding > opt.L2.MSHRs {
		opt.L2.MSHRs = cfg.MaxOutstanding
		opt.L2.CoreQueueDepth = 2 * cfg.MaxOutstanding
		opt.Core.NIC.MaxPendingNotifs = cfg.MaxOutstanding
	}
	opt.Obs = cfg.obsOptions()
	s, err := system.NewScorpio(opt)
	if err != nil {
		return Result{}, err
	}
	defer s.Obs.CloseTelemetry()
	r, err := s.Run(cfg.CycleLimit)
	if err != nil {
		return r, err
	}
	return r, writeObsArtifacts(cfg, r)
}

func runDirectory(cfg Config, prof trace.Profile, v directory.Variant) (Result, error) {
	opt := system.DefaultDirectoryOptions(v, prof)
	opt.Net.Width, opt.Net.Height = cfg.Width, cfg.Height
	if cfg.ChannelBytes != 0 {
		opt.Net.ChannelBytes = cfg.ChannelBytes
	}
	if cfg.Bypass != nil {
		opt.Net.Bypass = *cfg.Bypass
	}
	opt.L2 = directory.L2Config{}
	opt.Home = directory.HomeConfig{}
	opt.DirCacheBytes = cfg.DirCacheBytes
	opt.WorkPerCore = cfg.WorkPerCore
	opt.WarmupPerCore = cfg.WarmupPerCore
	opt.MaxOutstanding = cfg.MaxOutstanding
	opt.Seed = cfg.Seed
	opt.Workers = cfg.Workers
	opt.DisableIdleSkip = cfg.DisableIdleSkip
	if cfg.MaxOutstanding > 2 {
		opt.L2 = directory.DefaultL2Config(opt.Net.Nodes(), v)
		opt.L2.DataFlits = opt.Net.DataPacketFlits()
		opt.L2.MSHRs = cfg.MaxOutstanding
		opt.L2.CoreQueueDepth = 2 * cfg.MaxOutstanding
	}
	opt.Obs = cfg.obsOptions()
	d, err := system.NewDirectory(opt)
	if err != nil {
		return Result{}, err
	}
	defer d.Obs.CloseTelemetry()
	r, err := d.Run(cfg.CycleLimit)
	if err != nil {
		return r, err
	}
	return r, writeObsArtifacts(cfg, r)
}

func runBaseline(cfg Config, prof trace.Profile, scheme system.OrderingScheme) (Result, error) {
	opt := system.DefaultBaselineOptions(scheme, prof)
	opt.Net.Width, opt.Net.Height = cfg.Width, cfg.Height
	opt.ExpiryWindow = cfg.ExpiryWindow
	opt.WorkPerCore = cfg.WorkPerCore
	opt.WarmupPerCore = cfg.WarmupPerCore
	opt.MaxOutstanding = cfg.MaxOutstanding
	opt.Seed = cfg.Seed
	opt.DisableIdleSkip = cfg.DisableIdleSkip
	opt.L2.DataFlits = opt.Net.DataPacketFlits()
	if cfg.MaxOutstanding > opt.L2.MSHRs {
		opt.L2.MSHRs = cfg.MaxOutstanding
		opt.L2.CoreQueueDepth = 2 * cfg.MaxOutstanding
	}
	opt.Obs = cfg.obsOptions()
	b, err := system.NewBaseline(opt)
	if err != nil {
		return Result{}, err
	}
	defer b.Obs.CloseTelemetry()
	r, err := b.Run(cfg.CycleLimit)
	if err != nil {
		return r, err
	}
	return r, writeObsArtifacts(cfg, r)
}

// NewScorpioSystem exposes the full machine for programmatic use (the
// examples drive it directly).
func NewScorpioSystem(opt ScorpioOptions) (*system.Scorpio, error) {
	return system.NewScorpio(opt)
}

// ProfileByName returns a benchmark profile.
func ProfileByName(name string) (Profile, error) { return trace.ByName(name) }

// DefaultScorpioOptions returns chip-faithful options for a profile.
func DefaultScorpioOptions(prof Profile) ScorpioOptions { return system.DefaultOptions(prof) }

// L2Config aliases the snoopy controller configuration.
type L2Config = coherence.Config
