GO ?= go

.PHONY: build test vet race check bench

# Tier-1: everything must compile and every test must pass.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel kernel's data-race guard: short-mode race run over the
# packages that execute under the worker pool.
race:
	$(GO) test -race -short ./internal/sim ./internal/system ./internal/noc

# The full local CI gate.
check: vet test race

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/sim
