GO ?= go

# Bump per PR that re-baselines the benchmark report.
BENCH_JSON ?= BENCH_5.json
# The previous baseline, compared against by benchsmoke when both exist.
BENCH_PREV ?= BENCH_4.json

.PHONY: build test vet race check bench benchsmoke tracesmoke auditsmoke perfsmoke telemetrysmoke layoutcheck

# Tier-1: everything must compile and every test must pass.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel kernel's data-race guard: short-mode race run over the
# packages that execute under the worker pool. traffic is included because
# its parallel tests exercise the activity engine's park/wake churn across
# shards, the path most likely to hide an ordering race.
race:
	$(GO) test -race -short ./internal/sim ./internal/system ./internal/noc ./internal/traffic ./internal/obs/telemetry

# The full local CI gate.
check: vet layoutcheck test race benchsmoke tracesmoke auditsmoke perfsmoke telemetrysmoke

# The struct-layout gate: pinned sizes for the cache-line-conscious hot
# structs (Flit, Link, Activity) and fieldalignment-style hole detection
# over the exported hot structs of noc, sim and stats.
layoutcheck:
	$(GO) run ./cmd/layoutcheck

# The allocation-regression harness: the Fig6a end-to-end sweep, the
# network-only router benchmark, the raw kernel stepping benchmark, the
# real-mesh kernel throughput curve (mesh size × worker count), and the
# activity-engine curve (mesh size × injection rate × skip on/off), with
# allocation counting, aggregated into a JSON baseline (see cmd/benchjson).
bench:
	( $(GO) test -bench 'BenchmarkFig6aNormalizedRuntime$$|BenchmarkRouterThroughput$$' \
		-benchmem -count=3 -run '^$$' . ; \
	  $(GO) test -bench 'BenchmarkKernelThroughput' \
		-benchmem -count=3 -run '^$$' ./internal/sim ; \
	  $(GO) test -bench 'BenchmarkKernelThroughputMesh' \
		-benchmem -count=3 -run '^$$' ./internal/system ; \
	  $(GO) test -bench 'BenchmarkKernelThroughputIdle' \
		-benchmem -count=3 -run '^$$' ./internal/traffic ) \
	| $(GO) run ./cmd/benchjson > $(BENCH_JSON)
	@cat $(BENCH_JSON)

# One cheap iteration of the same benchmarks: the check gate proves they
# still run without committing to a full measurement. The unanchored
# RouterThroughput pattern also runs the traced variant, so tracing-on is
# exercised on every check. The final line is the parallel-speedup guard:
# on a multi-core host, workers=NumCPU must not step a warm mesh slower
# than serial (the test skips itself on single-CPU machines). The idle-skip
# guard after it holds the activity engine to its design bounds: >= 2x
# cycles/s on a near-idle mesh, <= 5% overhead at saturation.
benchsmoke:
	$(GO) test -bench 'BenchmarkRouterThroughput' -benchmem -benchtime 1x -run '^$$' .
	$(GO) test -bench 'BenchmarkKernelThroughput' -benchmem -benchtime 1x -run '^$$' ./internal/sim
	$(GO) test -bench 'BenchmarkKernelThroughputMesh/mesh=6x6' -benchmem -benchtime 1x -run '^$$' ./internal/system
	$(GO) test -bench 'BenchmarkKernelThroughputIdle/mesh=6x6' -benchmem -benchtime 1x -run '^$$' ./internal/traffic
	SCORPIO_SPEEDUP_GUARD=1 $(GO) test -run 'TestParallelSpeedupGuard$$' -v ./internal/system
	SCORPIO_IDLESKIP_GUARD=1 $(GO) test -run 'TestIdleSkipSpeedupGuard$$' -v ./internal/traffic
	@if [ -f $(BENCH_PREV) ] && [ -f $(BENCH_JSON) ]; then \
		echo "benchdiff $(BENCH_PREV) $(BENCH_JSON)"; \
		$(GO) run ./cmd/benchdiff $(BENCH_PREV) $(BENCH_JSON); \
	else \
		echo "benchsmoke: baseline diff skipped ($(BENCH_PREV) or $(BENCH_JSON) absent)"; \
	fi

# The engine self-observability smoke: a monitored run must emit a valid
# RunReport; benchdiff must pass a self-compare (exit 0) and catch a
# perturbed throughput figure (exit 1); the accounting bound (per-worker
# time sums within 5% of wall clock), the <=2% monitor-overhead guard, and
# the 0-allocs/step pins with the monitor attached must all hold.
perfsmoke: build
	$(GO) run ./cmd/scorpiosim -bench fft -work 60 -warmup 40 -perf-report /tmp/scorpio-perfsmoke.json > /dev/null
	$(GO) run ./cmd/benchdiff /tmp/scorpio-perfsmoke.json /tmp/scorpio-perfsmoke.json
	sed -E 's/"cycles_per_sec": [0-9.e+]+/"cycles_per_sec": 1.0/' \
		/tmp/scorpio-perfsmoke.json > /tmp/scorpio-perfsmoke-bad.json
	! $(GO) run ./cmd/benchdiff /tmp/scorpio-perfsmoke.json /tmp/scorpio-perfsmoke-bad.json
	$(GO) test -run 'TestPerfReportAccounting$$' -v ./internal/system
	SCORPIO_PERF_GUARD=1 $(GO) test -run 'TestPerfmonOverheadGuard$$' -v ./internal/system
	$(GO) test -run 'TestMeshSteadyStateAllocsPerfmon' -v ./internal/traffic

# The live-telemetry smoke: a real scorpiosim run serves telemetry on an
# ephemeral port; the script curls /healthz and /metrics (OpenMetrics shape),
# renders one scorpiotop frame over SSE, and proves shutdown released the
# port. Then the ≤2% no-client overhead guard and the 0-allocs/step pins with
# the publisher attached (serial and 4 workers) hold the exporter to the
# hot-path budget.
telemetrysmoke: build
	sh scripts/telemetrysmoke.sh
	SCORPIO_TELEMETRY_GUARD=1 $(GO) test -run 'TestTelemetryOverheadGuard$$' -v ./internal/system
	$(GO) test -run 'TestMeshSteadyStateAllocsTelemetry' -v ./internal/traffic

# The trace-format smoke: produce a lifecycle trace from a short 36-core run
# and validate it parses as Chrome trace-event JSON with at least one fully
# reconstructable transaction.
tracesmoke: build
	$(GO) run ./cmd/scorpiosim -bench barnes -work 50 -warmup 50 -trace /tmp/scorpio-tracesmoke.json > /dev/null
	$(GO) run ./cmd/tracecheck /tmp/scorpio-tracesmoke.json

# The auditor smoke: short audited runs of the ordered machine and of a
# baseline must complete with zero violations (a violation aborts the run,
# so a nonzero exit fails the gate).
auditsmoke: build
	$(GO) run ./cmd/scorpiosim -bench barnes -work 50 -warmup 50 -audit | grep 'audit: ok'
	$(GO) run ./cmd/scorpiosim -protocol INSO -nodes 16 -bench fft -work 50 -warmup 50 -audit | grep 'audit: ok'
