GO ?= go

# Bump per PR that re-baselines the benchmark report.
BENCH_JSON ?= BENCH_3.json

.PHONY: build test vet race check bench benchsmoke tracesmoke auditsmoke

# Tier-1: everything must compile and every test must pass.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel kernel's data-race guard: short-mode race run over the
# packages that execute under the worker pool.
race:
	$(GO) test -race -short ./internal/sim ./internal/system ./internal/noc

# The full local CI gate.
check: vet test race benchsmoke tracesmoke auditsmoke

# The allocation-regression harness: the Fig6a end-to-end sweep, the
# network-only router benchmark, the raw kernel stepping benchmark, and the
# real-mesh kernel throughput curve (mesh size × worker count), with
# allocation counting, aggregated into a JSON baseline (see cmd/benchjson).
bench:
	( $(GO) test -bench 'BenchmarkFig6aNormalizedRuntime$$|BenchmarkRouterThroughput$$' \
		-benchmem -count=3 -run '^$$' . ; \
	  $(GO) test -bench 'BenchmarkKernelThroughput' \
		-benchmem -count=3 -run '^$$' ./internal/sim ; \
	  $(GO) test -bench 'BenchmarkKernelThroughputMesh' \
		-benchmem -count=3 -run '^$$' ./internal/system ) \
	| $(GO) run ./cmd/benchjson > $(BENCH_JSON)
	@cat $(BENCH_JSON)

# One cheap iteration of the same benchmarks: the check gate proves they
# still run without committing to a full measurement. The unanchored
# RouterThroughput pattern also runs the traced variant, so tracing-on is
# exercised on every check. The final line is the parallel-speedup guard:
# on a multi-core host, workers=NumCPU must not step a warm mesh slower
# than serial (the test skips itself on single-CPU machines).
benchsmoke:
	$(GO) test -bench 'BenchmarkRouterThroughput' -benchmem -benchtime 1x -run '^$$' .
	$(GO) test -bench 'BenchmarkKernelThroughput' -benchmem -benchtime 1x -run '^$$' ./internal/sim
	$(GO) test -bench 'BenchmarkKernelThroughputMesh/mesh=6x6' -benchmem -benchtime 1x -run '^$$' ./internal/system
	SCORPIO_SPEEDUP_GUARD=1 $(GO) test -run 'TestParallelSpeedupGuard$$' -v ./internal/system

# The trace-format smoke: produce a lifecycle trace from a short 36-core run
# and validate it parses as Chrome trace-event JSON with at least one fully
# reconstructable transaction.
tracesmoke: build
	$(GO) run ./cmd/scorpiosim -bench barnes -work 50 -warmup 50 -trace /tmp/scorpio-tracesmoke.json > /dev/null
	$(GO) run ./cmd/tracecheck /tmp/scorpio-tracesmoke.json

# The auditor smoke: short audited runs of the ordered machine and of a
# baseline must complete with zero violations (a violation aborts the run,
# so a nonzero exit fails the gate).
auditsmoke: build
	$(GO) run ./cmd/scorpiosim -bench barnes -work 50 -warmup 50 -audit | grep 'audit: ok'
	$(GO) run ./cmd/scorpiosim -protocol INSO -nodes 16 -bench fft -work 50 -warmup 50 -audit | grep 'audit: ok'
