package scorpio

import (
	"fmt"
	"testing"

	"scorpio/internal/noc"
	"scorpio/internal/obs"
	"scorpio/internal/traffic"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation at a reduced-but-structurally-complete scale (QuickScale with a
// benchmark subset), and print the headline numbers the paper reports so
// `go test -bench=.` doubles as a miniature reproduction run. EXPERIMENTS.md
// records the FullScale results produced by cmd/experiments.

// benchScale keeps each figure's sweep structure while holding bench
// iterations short.
func benchScale(benchmarks ...string) Scale {
	s := QuickScale
	s.Work, s.Warmup = 100, 150
	s.Benchmarks = benchmarks
	return s
}

func BenchmarkTable1ChipConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(Table1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(Table2()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig6aNormalizedRuntime(b *testing.B) {
	s := benchScale("barnes", "lu")
	for i := 0; i < b.N; i++ {
		fig, err := Figure6a(s, 36)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("SCORPIO-D/LPD-D = %.3f (paper 0.759), SCORPIO-D/HT-D = %.3f (paper 0.871)",
				fig.MeanRatio("SCORPIO-D", "LPD-D"), fig.MeanRatio("SCORPIO-D", "HT-D"))
		}
	}
}

func BenchmarkFig6aNormalizedRuntime64(b *testing.B) {
	s := benchScale("barnes")
	for i := 0; i < b.N; i++ {
		fig, err := Figure6a(s, 64)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("64-core SCORPIO-D/LPD-D = %.3f", fig.MeanRatio("SCORPIO-D", "LPD-D"))
		}
	}
}

func BenchmarkFig6bLatencyBreakdownCache(b *testing.B) {
	s := benchScale("barnes", "lu")
	for i := 0; i < b.N; i++ {
		fig, err := Figure6b(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range fig.Rows {
				b.Logf("%-22s total %.1f cycles", r.Label, r.Values[len(r.Values)-1])
			}
		}
	}
}

func BenchmarkFig6cLatencyBreakdownDir(b *testing.B) {
	s := benchScale("barnes", "lu")
	for i := 0; i < b.N; i++ {
		fig, err := Figure6c(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range fig.Rows {
				b.Logf("%-22s total %.1f cycles", r.Label, r.Values[len(r.Values)-1])
			}
		}
	}
}

func BenchmarkFig7TokenBINSO(b *testing.B) {
	s := benchScale("blackscholes", "vips")
	for i := 0; i < b.N; i++ {
		fig, err := Figure7(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("TokenB %.3f, INSO-20 %.3f, INSO-40 %.3f, INSO-80 %.3f (vs SCORPIO=1)",
				fig.Mean("TokenB"), fig.Mean("INSO-20"), fig.Mean("INSO-40"), fig.Mean("INSO-80"))
		}
	}
}

func BenchmarkFig8aChannelWidth(b *testing.B) {
	s := benchScale("lu", "radix")
	for i := 0; i < b.N; i++ {
		fig, err := Figure8a(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("CW=8B %.3f, CW=16B 1.000, CW=32B %.3f", fig.Mean("CW=8B"), fig.Mean("CW=32B"))
		}
	}
}

func BenchmarkFig8bGOREQVCs(b *testing.B) {
	s := benchScale("lu", "radix")
	for i := 0; i < b.N; i++ {
		fig, err := Figure8b(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("VCs=2 %.3f, VCs=4 1.000, VCs=6 %.3f", fig.Mean("VCs=2"), fig.Mean("VCs=6"))
		}
	}
}

func BenchmarkFig8cUORESPVCs(b *testing.B) {
	s := benchScale("lu", "radix")
	for i := 0; i < b.N; i++ {
		fig, err := Figure8c(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("CW=8B/VCs=2 %.3f vs CW=16B/VCs=2 baseline", fig.Mean("CW=8B/VCs=2"))
		}
	}
}

func BenchmarkFig8dNotificationBits(b *testing.B) {
	s := benchScale("lu")
	for i := 0; i < b.N; i++ {
		fig, err := Figure8d(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("BW=1b 1.000, BW=2b %.3f, BW=3b %.3f", fig.Mean("BW=2b"), fig.Mean("BW=3b"))
		}
	}
}

func BenchmarkFig9TileOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, a := Figure9()
		if len(p.Rows) == 0 || len(a.Rows) == 0 {
			b.Fatal("empty breakdowns")
		}
	}
}

func BenchmarkFig10Pipelining(b *testing.B) {
	s := benchScale("barnes")
	s.Work, s.Warmup = 60, 100
	for i := 0; i < b.N; i++ {
		fig, err := Figure10(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", fig.String())
		}
	}
}

// --- Ablations beyond the paper (DESIGN.md §5) ---

// BenchmarkAblationOrderingCost compares SCORPIO against the TokenB oracle
// (the same snoopy protocol with free ordering): the difference is the whole
// cost of distributed in-network ordering.
func BenchmarkAblationOrderingCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var rts [2]float64
		for j, p := range []Protocol{SCORPIO, TokenB} {
			res, err := Run(Config{Protocol: p, Benchmark: "lu", Width: 4, Height: 4, WorkPerCore: 100, WarmupPerCore: 150})
			if err != nil {
				b.Fatal(err)
			}
			rts[j] = res.Runtime()
		}
		if i == 0 {
			b.Logf("ordering costs %.1f%% runtime vs an ordering oracle", 100*(rts[0]/rts[1]-1))
		}
	}
}

// BenchmarkAblationBypass quantifies lookahead bypassing (Section 3.2).
func BenchmarkAblationBypass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var lat [2]float64
		for j, bypass := range []bool{true, false} {
			bp := bypass
			res, err := Run(Config{Benchmark: "barnes", WorkPerCore: 100, WarmupPerCore: 150, Bypass: &bp})
			if err != nil {
				b.Fatal(err)
			}
			lat[j] = res.MissLat.Value()
		}
		if i == 0 {
			b.Logf("bypassing cuts miss latency %.1f%% (%.1f -> %.1f cycles)", 100*(1-lat[0]/lat[1]), lat[1], lat[0])
		}
	}
}

// BenchmarkAblationRegionTracker quantifies the snoop filter's lookup
// savings.
func BenchmarkAblationRegionTracker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Benchmark: "swaptions", WorkPerCore: 100, WarmupPerCore: 150})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("region tracker filtered %d of %d snoops (%.0f%%)",
				res.SnoopsFiltered, res.SnoopsSeen, 100*float64(res.SnoopsFiltered)/float64(res.SnoopsSeen))
		}
	}
}

// BenchmarkAblationWindow sweeps the notification time window beyond the
// chip's 13 cycles.
func BenchmarkAblationWindow(b *testing.B) {
	for _, window := range []int{13, 26, 52} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prof, err := ProfileByName("barnes")
				if err != nil {
					b.Fatal(err)
				}
				opt := DefaultScorpioOptions(prof)
				opt.Core.Notif.WindowCycles = window
				opt.WorkPerCore, opt.WarmupPerCore = 100, 150
				s, err := NewScorpioSystem(opt)
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(50_000_000)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("window=%d: ordering latency %.1f cycles, runtime %d", window, res.OrderingLat.Value(), res.Cycles)
				}
			}
		})
	}
}

// BenchmarkRouterThroughput measures raw simulator speed (cycles/sec) on the
// 36-core machine — the engineering metric for the simulator itself.
func BenchmarkRouterThroughput(b *testing.B) {
	prof, err := ProfileByName("fft")
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultScorpioOptions(prof)
	opt.WorkPerCore, opt.WarmupPerCore = 1<<40, 0 // never finishes; we count cycles
	s, err := NewScorpioSystem(opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	s.Kernel.Run(uint64(b.N))
	b.ReportMetric(float64(b.N), "cycles")
}

// BenchmarkRouterThroughputTraced is the tracing-overhead guard: the same
// machine as BenchmarkRouterThroughput with the lifecycle tracer attached.
// Comparing the two bounds the cost of tracing when ON; the tracing-OFF cost
// is pinned to zero by the alloc tests (every hook is a nil check).
func BenchmarkRouterThroughputTraced(b *testing.B) {
	prof, err := ProfileByName("fft")
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultScorpioOptions(prof)
	opt.WorkPerCore, opt.WarmupPerCore = 1<<40, 0 // never finishes; we count cycles
	opt.Obs = &obs.Options{Trace: true, TraceCapacity: 1 << 16}
	s, err := NewScorpioSystem(opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	s.Kernel.Run(uint64(b.N))
	b.ReportMetric(float64(b.N), "cycles")
}

// BenchmarkAblationMultiNet evaluates Section 5.3's proposed throughput fix:
// striping traffic over multiple main networks at high load.
func BenchmarkAblationMultiNet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var miss [2]float64
		for j, nets := range []int{1, 2} {
			res, err := Run(Config{Benchmark: "canneal", Width: 8, Height: 8, WorkPerCore: 80, WarmupPerCore: 120, MainNetworks: nets})
			if err != nil {
				b.Fatal(err)
			}
			miss[j] = res.MissLat.Value()
		}
		if i == 0 {
			b.Logf("64-core canneal miss latency: 1 net %.1f, 2 nets %.1f (%.1f%% lower)", miss[0], miss[1], 100*(1-miss[1]/miss[0]))
		}
	}
}

// BenchmarkBroadcastCapacity validates Section 5.3's capacity formula: the
// broadcast saturation throughput of a k×k mesh is ≈1/k² flits/node/cycle
// (0.027 for 36 cores, 0.01 for 100 cores).
func BenchmarkBroadcastCapacity(b *testing.B) {
	for _, k := range []int{4, 6} {
		b.Run(fmt.Sprintf("%dx%d", k, k), func(b *testing.B) {
			cfg := noc.DefaultConfig()
			cfg.Width, cfg.Height = k, k
			for i := 0; i < b.N; i++ {
				sat, err := traffic.SaturationThroughput(cfg, traffic.Broadcast, 1, 7)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%dx%d broadcast saturation %.4f (theory %.4f)", k, k, sat, 1/float64(k*k))
				}
			}
		})
	}
}
