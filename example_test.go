package scorpio_test

import (
	"fmt"

	"scorpio"
)

// Running one benchmark on the default 36-core chip configuration.
func Example() {
	res, err := scorpio.Run(scorpio.Config{
		Benchmark:     "swaptions",
		Width:         4, // shrink the mesh for a quick example
		Height:        4,
		WorkPerCore:   50,
		WarmupPerCore: 50,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Protocol, "completed", res.Service.Count, "measured accesses")
	// Output: SCORPIO completed 800 measured accesses
}

// Comparing SCORPIO against a directory baseline on the same workload.
func Example_comparison() {
	base := scorpio.Config{
		Benchmark: "swaptions", Width: 4, Height: 4,
		WorkPerCore: 50, WarmupPerCore: 50,
	}
	snoopy, err := scorpio.Run(base)
	if err != nil {
		panic(err)
	}
	base.Protocol = scorpio.HTD
	dir, err := scorpio.Run(base)
	if err != nil {
		panic(err)
	}
	fmt.Println("SCORPIO beats HT-D:", snoopy.Runtime() < dir.Runtime())
	// Output: SCORPIO beats HT-D: true
}
