#!/bin/sh
# telemetrysmoke — end-to-end gate for the live telemetry exporter, run from
# `make telemetrysmoke` (which follows it with the ≤2% no-client overhead
# guard and the 0-allocs/step pins).
#
# A real scorpiosim run serves telemetry on an ephemeral port; the script
# discovers the bound address from the exporter's stderr announcement, curls
# /healthz and /metrics (validating the OpenMetrics shape), attaches the real
# scorpiotop dashboard for one rendered frame over SSE, then waits for the
# run to finish and proves shutdown released the port.
set -eu

GO=${GO:-go}
DIR=$(mktemp -d /tmp/scorpio-telemetrysmoke.XXXXXX)
# Preserve the script's own exit status across the cleanup commands (a bare
# `kill ""` would overwrite it in dash).
trap 'st=$?; { [ -n "$SIM" ] && kill "$SIM"; rm -rf "$DIR"; } 2>/dev/null; exit $st' EXIT
SIM=

$GO build -o "$DIR/scorpiosim" ./cmd/scorpiosim
$GO build -o "$DIR/scorpiotop" ./cmd/scorpiotop

"$DIR/scorpiosim" -bench fft -work 4000 -warmup 100 \
    -telemetry 127.0.0.1:0 -telemetry-interval 256 \
    >"$DIR/stdout.log" 2>"$DIR/stderr.log" &
SIM=$!

# The exporter announces its bound address on stderr (ephemeral :0 ports are
# only knowable this way).
ADDR=
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's#^scorpio: telemetry listening on http://##p' "$DIR/stderr.log" | head -n 1)
    [ -n "$ADDR" ] && break
    kill -0 "$SIM" 2>/dev/null || { echo "telemetrysmoke: sim exited before announcing telemetry"; cat "$DIR/stderr.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ADDR" ]; then
    echo "telemetrysmoke: exporter never announced its address"
    cat "$DIR/stderr.log"
    exit 1
fi
echo "telemetrysmoke: exporter at $ADDR"

curl -fsS "http://$ADDR/healthz" | grep -q '^ok$' \
    || { echo "telemetrysmoke: /healthz did not answer ok"; exit 1; }

curl -fsS "http://$ADDR/metrics" >"$DIR/metrics.txt"
grep -q '^scorpio_cycle ' "$DIR/metrics.txt" \
    || { echo "telemetrysmoke: /metrics lacks scorpio_cycle"; exit 1; }
grep -q '^scorpio_run{label=' "$DIR/metrics.txt" \
    || { echo "telemetrysmoke: /metrics lacks the run label"; exit 1; }
grep -q '^# EOF$' "$DIR/metrics.txt" \
    || { echo "telemetrysmoke: /metrics exposition not terminated by # EOF"; exit 1; }

# The real dashboard renders one live frame from the SSE stream (proving an
# actual tick crossed the hub), then detaches.
"$DIR/scorpiotop" -once -timeout 60s "$ADDR" >"$DIR/frame.txt"
grep -q 'cycles/s' "$DIR/frame.txt" \
    || { echo "telemetrysmoke: scorpiotop rendered no throughput line"; cat "$DIR/frame.txt"; exit 1; }
echo "telemetrysmoke: scorpiotop frame:"
sed 's/^/    /' "$DIR/frame.txt"

wait "$SIM"
STATUS=$?
SIM=
[ $STATUS -eq 0 ] || { echo "telemetrysmoke: sim exited with status $STATUS"; cat "$DIR/stderr.log"; exit 1; }

# Shutdown must have released the port: a fresh connection is refused.
if curl -fsS --max-time 2 "http://$ADDR/healthz" >/dev/null 2>&1; then
    echo "telemetrysmoke: exporter still answering after the run finished"
    exit 1
fi

echo "telemetrysmoke: ok"
