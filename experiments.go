package scorpio

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"scorpio/internal/power"
	"scorpio/internal/stats"
	"scorpio/internal/trace"
)

// Scale shrinks or grows the experiment workloads. FullScale approximates
// the paper's trace lengths; QuickScale keeps the full sweep structure but
// runs each point briefly (tests and benchmarks use it).
type Scale struct {
	Work       uint64
	Warmup     uint64
	Benchmarks []string // nil = each figure's own benchmark list
	Seed       uint64
	CycleLimit uint64
	// Workers bounds how many simulation points a sweep runs concurrently;
	// 0 means runtime.GOMAXPROCS(0). Each point is an independent seeded
	// simulation, so concurrency never changes a figure's numbers.
	Workers int
	// WatchdogCycles arms the forward-progress watchdog on every point:
	// a run that delivers nothing for this many cycles while traffic is in
	// flight aborts with a network snapshot instead of burning the cycle
	// limit (0 = off).
	WatchdogCycles uint64
	// Audit attaches the online ordering/coherence auditor to every point;
	// the first invariant violation aborts the sweep with a diagnosis.
	Audit bool
	// DisableIdleSkip turns off the kernel's activity engine on every point
	// (results are bit-identical either way; the flag is for A/B validation).
	DisableIdleSkip bool
}

// FullScale is the EXPERIMENTS.md reproduction scale.
var FullScale = Scale{Work: 400, Warmup: 300, Seed: 1}

// QuickScale runs each point briefly (CI-sized).
var QuickScale = Scale{Work: 80, Warmup: 120, Seed: 1}

func (s Scale) pick(defaults []string) []string {
	if s.Benchmarks != nil {
		return s.Benchmarks
	}
	return defaults
}

func (s Scale) config(p Protocol, bench string) Config {
	return Config{
		Protocol: p, Benchmark: bench,
		WorkPerCore: s.Work, WarmupPerCore: s.Warmup,
		Seed: s.Seed, CycleLimit: s.CycleLimit,
		WatchdogCycles:  s.WatchdogCycles,
		Audit:           s.Audit,
		DisableIdleSkip: s.DisableIdleSkip,
	}
}

// runConfigs executes one simulation per config over a bounded pool of
// goroutines and returns the results in input order. labels annotate
// failures one-to-one with cfgs; when several points fail, the lowest-index
// error is reported, so error selection is as deterministic as the results.
func (s Scale) runConfigs(cfgs []Config, labels []string) ([]Result, error) {
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := Run(cfgs[i])
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", labels[i], err)
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Figure holds one reproduced figure: row labels × named series.
type Figure struct {
	ID     string
	Title  string
	Series []string
	Rows   []FigureRow
}

// FigureRow is one x-axis entry.
type FigureRow struct {
	Label  string
	Values []float64
}

// String renders the figure as an aligned table.
func (f Figure) String() string {
	header := append([]string{f.ID}, f.Series...)
	var rows [][]string
	for _, r := range f.Rows {
		cells := []string{r.Label}
		for _, v := range r.Values {
			cells = append(cells, fmt.Sprintf("%.3f", v))
		}
		rows = append(rows, cells)
	}
	return stats.Table(f.Title, header, rows)
}

// Chart renders the figure as grouped text bars (the visual analog of the
// paper's bar charts).
func (f Figure) Chart() string {
	c := stats.BarChart{Title: f.Title, Series: f.Series}
	for _, r := range f.Rows {
		c.Rows = append(c.Rows, stats.BarRow{Label: r.Label, Values: r.Values})
	}
	return c.String()
}

// Mean returns the average of a series across benchmark rows (the synthetic
// AVG row is excluded).
func (f Figure) Mean(series string) float64 {
	idx := f.seriesIndex(series)
	if idx < 0 {
		return 0
	}
	sum, n := 0.0, 0
	for _, r := range f.Rows {
		if r.Label == "AVG" {
			continue
		}
		sum += r.Values[idx]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanRatio returns the across-benchmark mean of series a divided by series
// b, row by row.
func (f Figure) MeanRatio(a, b string) float64 {
	ia, ib := f.seriesIndex(a), f.seriesIndex(b)
	if ia < 0 || ib < 0 {
		return 0
	}
	sum, n := 0.0, 0
	for _, r := range f.Rows {
		if r.Label == "AVG" || r.Values[ib] == 0 {
			continue
		}
		sum += r.Values[ia] / r.Values[ib]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (f Figure) seriesIndex(series string) int {
	for i, s := range f.Series {
		if s == series {
			return i
		}
	}
	return -1
}

// fig6Benchmarks is the paper's Figure 6a benchmark list.
var fig6Benchmarks = []string{
	"barnes", "fft", "fmm", "lu", "nlu", "radix", "water-nsq", "water-spatial",
	"blackscholes", "canneal", "fluidanimate", "swaptions",
}

// breakdownBenchmarks is the Figure 6b/6c subset.
var breakdownBenchmarks = []string{"barnes", "fft", "lu", "blackscholes", "canneal", "fluidanimate"}

// Figure6a reproduces the normalized-runtime comparison (LPD-D, HT-D,
// SCORPIO-D) for the given core count (36 or 64 in the paper). Values are
// normalized to LPD-D, matching the paper's presentation.
func Figure6a(scale Scale, nodes int) (Figure, error) {
	w, h := meshFor(nodes)
	fig := Figure{
		ID:     fmt.Sprintf("fig6a-%d", nodes),
		Title:  fmt.Sprintf("Figure 6a: normalized runtime, %d cores (lower is better)", nodes),
		Series: []string{"LPD-D", "HT-D", "SCORPIO-D"},
	}
	protos := []Protocol{LPDD, HTD, SCORPIO}
	benches := scale.pick(fig6Benchmarks)
	var cfgs []Config
	var labels []string
	for _, bench := range benches {
		var intensity float64
		if nodes > 36 {
			// The paper's benchmarks have fixed problem sizes, so
			// per-core miss intensity falls as cores grow (strong
			// scaling with sub-linear speedup). Equalise each
			// benchmark's aggregate access demand at ~1 access/cycle
			// machine-wide, the paper's sub-saturation regime (its
			// 64-core runs still favour SCORPIO "despite the broadcast
			// overhead"). Saturation at scale is Figure 10's subject.
			prof, err := trace.ByName(bench)
			if err != nil {
				return Figure{}, err
			}
			// Normalise by the benchmark's coherence-miss-prone
			// fraction too, so miss-heavy workloads (canneal) land in
			// the same sub-saturation regime as compute-heavy ones.
			intensity = 0.52 / ((prof.SharedFrac + prof.ColdFrac) * float64(nodes) * prof.IssueProb)
			if intensity > 1 {
				intensity = 1
			}
		}
		for _, p := range protos {
			cfg := scale.config(p, bench)
			cfg.Width, cfg.Height = w, h
			cfg.IntensityScale = intensity
			cfgs = append(cfgs, cfg)
			labels = append(labels, fmt.Sprintf("%s/%s", p, bench))
		}
	}
	results, err := scale.runConfigs(cfgs, labels)
	if err != nil {
		return Figure{}, err
	}
	for bi, bench := range benches {
		row := FigureRow{Label: bench}
		base := results[bi*len(protos)].Runtime()
		for i := range protos {
			row.Values = append(row.Values, results[bi*len(protos)+i].Runtime()/base)
		}
		fig.Rows = append(fig.Rows, row)
	}
	fig.Rows = append(fig.Rows, averageRow(fig.Rows))
	return fig, nil
}

// BreakdownFigure carries the Figure 6b/6c stacked-latency data: one row per
// (benchmark, protocol) with one value per latency component.
func breakdownFigure(scale Scale, id, title string, cacheServed bool) (Figure, error) {
	comps := []stats.BreakdownComponent{
		stats.NetReqToDir, stats.DirAccess, stats.NetDirToSharer,
		stats.NetBcastReq, stats.ReqOrdering, stats.SharerAccess, stats.NetResp,
	}
	fig := Figure{ID: id, Title: title}
	for _, c := range comps {
		fig.Series = append(fig.Series, c.String())
	}
	fig.Series = append(fig.Series, "Total")
	var cfgs []Config
	var labels []string
	for _, bench := range scale.pick(breakdownBenchmarks) {
		for _, p := range []Protocol{LPDD, HTD, SCORPIO} {
			cfgs = append(cfgs, scale.config(p, bench))
			labels = append(labels, fmt.Sprintf("%s/%s", bench, p))
		}
	}
	results, err := scale.runConfigs(cfgs, labels)
	if err != nil {
		return Figure{}, err
	}
	for i, res := range results {
		bd := &res.CacheServed
		if !cacheServed {
			bd = &res.MemServed
		}
		row := FigureRow{Label: labels[i]}
		for _, c := range comps {
			row.Values = append(row.Values, bd.Mean(c))
		}
		row.Values = append(row.Values, bd.Total())
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Figure6b reproduces the served-by-other-caches latency breakdown.
func Figure6b(scale Scale) (Figure, error) {
	return breakdownFigure(scale, "fig6b", "Figure 6b: L2 miss latency breakdown, served by other caches (36 cores, cycles)", true)
}

// Figure6c reproduces the served-by-directory/memory latency breakdown.
func Figure6c(scale Scale) (Figure, error) {
	return breakdownFigure(scale, "fig6c", "Figure 6c: L2 miss latency breakdown, served by directory/memory (36 cores, cycles)", false)
}

// fig7Benchmarks is the paper's Figure 7 subset.
var fig7Benchmarks = []string{"blackscholes", "streamcluster", "swaptions", "vips"}

// Figure7 reproduces the TokenB/INSO comparison at 16 cores, normalized to
// SCORPIO.
func Figure7(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "fig7",
		Title:  "Figure 7: runtime normalized to SCORPIO, 16 cores",
		Series: []string{"SCORPIO", "TokenB", "INSO-20", "INSO-40", "INSO-80"},
	}
	type variant struct {
		p      Protocol
		window int
	}
	variants := []variant{{SCORPIO, 0}, {TokenB, 0}, {INSO, 20}, {INSO, 40}, {INSO, 80}}
	benches := scale.pick(fig7Benchmarks)
	var cfgs []Config
	var labels []string
	for _, bench := range benches {
		for _, v := range variants {
			cfg := scale.config(v.p, bench)
			cfg.Width, cfg.Height = 4, 4
			cfg.ExpiryWindow = v.window
			cfgs = append(cfgs, cfg)
			labels = append(labels, fmt.Sprintf("%s/%s", v.p, bench))
		}
	}
	results, err := scale.runConfigs(cfgs, labels)
	if err != nil {
		return Figure{}, err
	}
	for bi, bench := range benches {
		row := FigureRow{Label: bench}
		base := results[bi*len(variants)].Runtime()
		for i := range variants {
			row.Values = append(row.Values, results[bi*len(variants)+i].Runtime()/base)
		}
		fig.Rows = append(fig.Rows, row)
	}
	fig.Rows = append(fig.Rows, averageRow(fig.Rows))
	return fig, nil
}

// fig8Benchmarks is the SPLASH-2 sweep list of Figure 8.
var fig8Benchmarks = []string{"barnes", "fft", "fmm", "lu", "nlu", "radix", "water-nsq", "water-spatial"}

// Figure8a sweeps the channel width (8/16/32 bytes), normalized to the
// 16-byte, 4-VC chip baseline.
func Figure8a(scale Scale) (Figure, error) {
	return sweepFigure(scale, "fig8a", "Figure 8a: runtime vs channel width (normalized to CW=16B)",
		[]string{"CW=8B", "CW=16B", "CW=32B"}, 1,
		func(cfg *Config, i int) { cfg.ChannelBytes = []int{8, 16, 32}[i] })
}

// Figure8b sweeps the GO-REQ virtual channel count (2/4/6).
func Figure8b(scale Scale) (Figure, error) {
	return sweepFigure(scale, "fig8b", "Figure 8b: runtime vs GO-REQ VCs (normalized to 4 VCs)",
		[]string{"VCs=2", "VCs=4", "VCs=6"}, 1,
		func(cfg *Config, i int) { cfg.GOReqVCs = []int{2, 4, 6}[i] })
}

// Figure8c sweeps UO-RESP VCs against channel width.
func Figure8c(scale Scale) (Figure, error) {
	combos := []struct{ cw, vcs int }{{8, 2}, {8, 4}, {16, 2}, {16, 4}}
	names := []string{"CW=8B/VCs=2", "CW=8B/VCs=4", "CW=16B/VCs=2", "CW=16B/VCs=4"}
	s := scale
	if s.Benchmarks == nil {
		s.Benchmarks = []string{"fmm", "lu", "nlu", "radix", "water-nsq", "water-spatial"}
	}
	return sweepFigure(s, "fig8c", "Figure 8c: runtime vs UO-RESP VCs and channel width (normalized to CW=16B/VCs=2)",
		names, 2,
		func(cfg *Config, i int) { cfg.ChannelBytes = combos[i].cw; cfg.UORespVCs = combos[i].vcs })
}

// Figure8d sweeps the notification-network width (1/2/3 bits per core) with
// aggressive cores (six outstanding misses, per §5.2). Alongside the paper's
// normalized runtime it reports the request-ordering latency at the NICs,
// where the multi-bit encoding's burst-absorption benefit concentrates in
// this model (see EXPERIMENTS.md).
func Figure8d(scale Scale) (Figure, error) {
	s := scale
	if s.Benchmarks == nil {
		s.Benchmarks = []string{"fft", "fmm", "lu", "nlu", "radix", "water-nsq", "water-spatial"}
	}
	fig := Figure{
		ID:     "fig8d",
		Title:  "Figure 8d: notification bits/core, 6 outstanding misses (runtime normalized to 1b; ordering latency in cycles)",
		Series: []string{"BW=1b", "BW=2b", "BW=3b", "order@1b", "order@2b", "order@3b"},
	}
	benches := s.pick(fig8Benchmarks)
	var cfgs []Config
	var labels []string
	for _, bench := range benches {
		for i := 0; i < 3; i++ {
			cfg := s.config(SCORPIO, bench)
			cfg.NotifBits = i + 1
			cfg.MaxOutstanding = 6
			cfg.IntensityScale = 0.08
			cfgs = append(cfgs, cfg)
			labels = append(labels, fmt.Sprintf("fig8d[%db]/%s", i+1, bench))
		}
	}
	results, err := s.runConfigs(cfgs, labels)
	if err != nil {
		return Figure{}, err
	}
	for bi, bench := range benches {
		var rts, ords [3]float64
		for i := 0; i < 3; i++ {
			res := results[bi*3+i]
			rts[i] = res.Runtime()
			ords[i] = res.OrderingLat.Value()
		}
		fig.Rows = append(fig.Rows, FigureRow{Label: bench, Values: []float64{
			rts[0] / rts[0], rts[1] / rts[0], rts[2] / rts[0], ords[0], ords[1], ords[2],
		}})
	}
	fig.Rows = append(fig.Rows, averageRow(fig.Rows))
	return fig, nil
}

// sweepFigure runs one SCORPIO design sweep, normalizing to baseIdx.
func sweepFigure(scale Scale, id, title string, series []string, baseIdx int, mutate func(cfg *Config, i int)) (Figure, error) {
	fig := Figure{ID: id, Title: title, Series: series}
	benches := scale.pick(fig8Benchmarks)
	var cfgs []Config
	var labels []string
	for _, bench := range benches {
		for i := range series {
			cfg := scale.config(SCORPIO, bench)
			mutate(&cfg, i)
			cfgs = append(cfgs, cfg)
			labels = append(labels, fmt.Sprintf("%s[%s]/%s", id, series[i], bench))
		}
	}
	results, err := scale.runConfigs(cfgs, labels)
	if err != nil {
		return Figure{}, err
	}
	for bi, bench := range benches {
		base := results[bi*len(series)+baseIdx].Runtime()
		row := FigureRow{Label: bench}
		for i := range series {
			row.Values = append(row.Values, results[bi*len(series)+i].Runtime()/base)
		}
		fig.Rows = append(fig.Rows, row)
	}
	fig.Rows = append(fig.Rows, averageRow(fig.Rows))
	return fig, nil
}

// Figure9 reproduces the tile power and area breakdowns (analytical model,
// see internal/power).
func Figure9() (powerFig, areaFig Figure) {
	powerFig = Figure{ID: "fig9a", Title: "Figure 9a: tile power breakdown", Series: []string{"fraction", "mW"}}
	areaFig = Figure{ID: "fig9b", Title: "Figure 9b: tile area breakdown", Series: []string{"fraction", "mm2"}}
	pw := power.TilePowerBreakdown()
	pmw := power.TilePowerMWAt(power.NominalActivity())
	ar := power.TileAreaBreakdown()
	amm := power.TileAreaMM2Breakdown()
	comps := power.Components()
	sort.Slice(comps, func(i, j int) bool { return pw[comps[i]] > pw[comps[j]] })
	for _, c := range comps {
		powerFig.Rows = append(powerFig.Rows, FigureRow{Label: c.String(), Values: []float64{pw[c], pmw[c]}})
	}
	sort.Slice(comps, func(i, j int) bool { return ar[comps[i]] > ar[comps[j]] })
	for _, c := range comps {
		areaFig.Rows = append(areaFig.Rows, FigureRow{Label: c.String(), Values: []float64{ar[c], amm[c]}})
	}
	return powerFig, areaFig
}

// fig10Benchmarks is the paper's Figure 10 subset.
var fig10Benchmarks = []string{"barnes", "blackscholes", "canneal", "fft", "fluidanimate", "lu"}

// Figure10 reproduces the pipelining/scaling study: average L2 service
// latency for non-pipelined and pipelined uncore at 6×6, 8×8 and 10×10.
func Figure10(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "fig10",
		Title:  "Figure 10: average service latency (cycles), Non-PL vs PL uncore",
		Series: []string{"6x6 Non-PL", "6x6 PL", "8x8 Non-PL", "8x8 PL", "10x10 Non-PL", "10x10 PL"},
	}
	meshes := []int{6, 8, 10}
	benches := scale.pick(fig10Benchmarks)
	var cfgs []Config
	var labels []string
	for _, bench := range benches {
		for _, k := range meshes {
			for _, pl := range []bool{false, true} {
				cfg := scale.config(SCORPIO, bench)
				cfg.Width, cfg.Height = k, k
				// Keep injection rates (the figure's point is saturation at
				// scale) but bound the sample count so big meshes finish in
				// reasonable wall time; latency means converge early.
				cfg.WorkPerCore = scale.Work * 36 / uint64(k*k)
				cfg.WarmupPerCore = scale.Warmup * 36 / uint64(k*k)
				p := pl
				cfg.PipelinedL2 = &p
				cfgs = append(cfgs, cfg)
				labels = append(labels, fmt.Sprintf("fig10 %dx%d pl=%v %s", k, k, pl, bench))
			}
		}
	}
	results, err := scale.runConfigs(cfgs, labels)
	if err != nil {
		return Figure{}, err
	}
	perBench := 2 * len(meshes)
	for bi, bench := range benches {
		row := FigureRow{Label: bench}
		for i := 0; i < perBench; i++ {
			row.Values = append(row.Values, results[bi*perBench+i].Service.Value())
		}
		fig.Rows = append(fig.Rows, row)
	}
	fig.Rows = append(fig.Rows, averageRow(fig.Rows))
	return fig, nil
}

// Table1 renders the chip feature summary.
func Table1() string {
	var rows [][]string
	for _, f := range power.Table1() {
		rows = append(rows, []string{f.Name, f.Value})
	}
	return stats.Table("Table 1: SCORPIO chip features", []string{"Feature", "Value"}, rows)
}

// Table2 renders the multicore comparison.
func Table2() string {
	header := []string{"Processor", "Clock", "Power(W)", "Litho", "Cores", "ISA", "L2", "Consistency", "Coherence", "Interconnect"}
	var rows [][]string
	for _, r := range power.Table2() {
		rows = append(rows, []string{r.Name, r.Clock, r.PowerW, r.Lithography, r.Cores, r.ISA, r.L2, r.Consistency, r.Coherence, r.Interconnect})
	}
	return stats.Table("Table 2: multicore processor comparison", header, rows)
}

// averageRow appends the across-benchmark average (the paper's AVG bars).
func averageRow(rows []FigureRow) FigureRow {
	if len(rows) == 0 {
		return FigureRow{Label: "AVG"}
	}
	avg := FigureRow{Label: "AVG", Values: make([]float64, len(rows[0].Values))}
	for _, r := range rows {
		for i, v := range r.Values {
			avg.Values[i] += v
		}
	}
	for i := range avg.Values {
		avg.Values[i] /= float64(len(rows))
	}
	return avg
}

// meshFor maps a core count to mesh dimensions.
func meshFor(nodes int) (int, int) {
	switch nodes {
	case 16:
		return 4, 4
	case 36:
		return 6, 6
	case 64:
		return 8, 8
	case 100:
		return 10, 10
	default:
		k := 1
		for k*k < nodes {
			k++
		}
		return k, k
	}
}

// Headline summarises the paper's abstract-level claims from a Figure6a
// result: the average runtime reduction of SCORPIO-D vs LPD-D and HT-D.
func Headline(fig6a Figure) string {
	vsLPD := fig6a.MeanRatio("SCORPIO-D", "LPD-D")
	vsHT := fig6a.MeanRatio("SCORPIO-D", "HT-D")
	var sb strings.Builder
	fmt.Fprintf(&sb, "SCORPIO-D vs LPD-D: %.1f%% runtime reduction (paper: 24.1%%)\n", 100*(1-vsLPD))
	fmt.Fprintf(&sb, "SCORPIO-D vs HT-D:  %.1f%% runtime reduction (paper: 12.9%%)\n", 100*(1-vsHT))
	return sb.String()
}

// ServiceLatencySummary reproduces the Section 5.1 headline scalars: the
// average L2 service latency of each protocol over the Figure 6 benchmarks
// (the paper reports SCORPIO-D 78 cycles, LPD-D 94, HT-D 91), plus the
// fraction of misses served by other caches (~90% in the paper) and the
// average cache-to-cache miss latency (67 cycles, -19.4%/-18.3% vs the
// baselines).
func ServiceLatencySummary(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "service",
		Title:  "Section 5.1 headline: average L2 service latency (cycles)",
		Series: []string{"service", "p50", "p99", "max", "cache-served miss", "mem-served miss", "cache-served %"},
	}
	protos := []Protocol{LPDD, HTD, SCORPIO}
	benches := scale.pick(fig6Benchmarks)
	var cfgs []Config
	var labels []string
	for _, p := range protos {
		for _, bench := range benches {
			cfgs = append(cfgs, scale.config(p, bench))
			labels = append(labels, fmt.Sprintf("%s/%s", p, bench))
		}
	}
	results, err := scale.runConfigs(cfgs, labels)
	if err != nil {
		return Figure{}, err
	}
	for pi, p := range protos {
		var svc, cache, mem, frac stats.Mean
		hist := stats.NewHistogram(4, 512)
		for bi := range benches {
			res := results[pi*len(benches)+bi]
			svc.Observe(res.Service.Value())
			cache.Observe(res.CacheServed.Total())
			mem.Observe(res.MemServed.Total())
			frac.Observe(100 * res.ServedByCacheFrac())
			hist.Merge(res.ServiceHist)
		}
		fig.Rows = append(fig.Rows, FigureRow{
			Label: string(p),
			Values: []float64{svc.Value(),
				float64(hist.Percentile(50)), float64(hist.Percentile(99)), float64(hist.Percentile(100)),
				cache.Value(), mem.Value(), frac.Value()},
		})
	}
	return fig, nil
}
