// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 5). By default it runs everything at full scale;
// -only selects a subset and -quick shrinks the workloads for a fast pass.
//
//	experiments                 # everything (minutes)
//	experiments -only fig6a,fig7
//	experiments -quick -only fig8a
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"scorpio"
	"scorpio/internal/cli"
)

func main() {
	var (
		only    = flag.String("only", "", "comma-separated subset: table1,table2,service,fig6a,fig6a64,fig6b,fig6c,fig7,fig8a,fig8b,fig8c,fig8d,fig9,fig10")
		quick   = flag.Bool("quick", false, "reduced workloads (CI-sized)")
		seed    = flag.Uint64("seed", 1, "workload seed")
		workers = flag.Int("workers", 0, "concurrent simulations per sweep (0 = GOMAXPROCS)")
		noSkip  = flag.Bool("no-idle-skip", false, "step every component every cycle (disable the activity engine; results are identical)")

		tracePath  = flag.String("trace", "", "run one traced SCORPIO point and write Chrome trace-event JSON to this path")
		metricsIvl = flag.Uint64("metrics-interval", 0, "metrics sampling interval for the traced/instrumented point (0 = off)")
		watchdog   = flag.Uint64("watchdog", 0, "arm the forward-progress watchdog on every run (cycles without progress; 0 = off)")
		audit      = flag.Bool("audit", false, "attach the online ordering/coherence auditor to every run")
		perfPath   = flag.String("perf-report", "", "run one instrumented SCORPIO point and write its perf RunReport JSON to this path")
		pprofPath  = flag.String("pprof", "", "write a CPU profile to this path")

		telemetry    = flag.String("telemetry", "", "run one instrumented SCORPIO point serving live telemetry on this HTTP address (attach scorpiotop or curl /metrics)")
		telemetryIvl = flag.Uint64("telemetry-interval", 0, "telemetry sample period in cycles (0 = default 1024; requires -telemetry)")
	)
	flag.Parse()

	instrumented := func() bool { return *tracePath != "" || *perfPath != "" || *telemetry != "" }
	if err := cli.CheckFlags(flag.CommandLine, []cli.FlagRule{
		{Flag: "metrics-interval", Requires: instrumented,
			Msg: "-metrics-interval only applies to the traced/instrumented point; it needs -trace PATH, -perf-report PATH or -telemetry ADDR"},
		{Flag: "telemetry-interval", Requires: func() bool { return *telemetry != "" },
			Msg: "-telemetry-interval has no effect without -telemetry ADDR"},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}

	stopProfile, err := cli.StartCPUProfile("experiments", *pprofPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProfile()

	scale := scorpio.FullScale
	if *quick {
		scale = scorpio.QuickScale
	}
	scale.Seed = *seed
	scale.Workers = *workers
	scale.WatchdogCycles = *watchdog
	scale.Audit = *audit
	scale.DisableIdleSkip = *noSkip

	if instrumented() {
		// One dedicated instrumented 36-core SCORPIO run; the sweeps below
		// stay uninstrumented so tracing/monitoring never perturbs the
		// figures.
		cfg := scorpio.Config{
			Protocol: scorpio.SCORPIO, Benchmark: "barnes",
			WorkPerCore: scale.Work, WarmupPerCore: scale.Warmup,
			Seed: scale.Seed, WatchdogCycles: *watchdog,
			TracePath:       *tracePath,
			MetricsInterval: *metricsIvl,
			Audit:           *audit,
			PerfReportPath:  *perfPath,

			TelemetryAddr:     *telemetry,
			TelemetryInterval: *telemetryIvl,
		}
		if *metricsIvl > 0 {
			base := *tracePath
			if base == "" {
				base = *perfPath
			}
			if base != "" {
				// Telemetry-only instrumented runs keep the series in memory
				// (and live on /metrics) instead of inventing a file name.
				cfg.MetricsPath = strings.TrimSuffix(base, ".json") + "-metrics.csv"
			}
		}
		res, err := scorpio.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: instrumented run: %v\n", err)
			os.Exit(1)
		}
		if *tracePath != "" {
			fmt.Printf("traced SCORPIO/barnes run: %d cycles, trace written to %s\n\n", res.Cycles, *tracePath)
		}
		if res.Obs != nil && res.Obs.PerfReport != nil {
			fmt.Printf("instrumented SCORPIO/barnes run: report written to %s\n%s\n", *perfPath, res.Obs.PerfReport.Table())
		}
	}
	effective := *workers
	if effective <= 0 {
		effective = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("experiments: up to %d concurrent simulations per sweep\n\n", effective)

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
		os.Exit(1)
	}
	section := func(name string, run func() (string, error)) {
		if !sel(name) {
			return
		}
		start := time.Now()
		out, err := run()
		if err != nil {
			fail(name, err)
		}
		fmt.Println(out)
		fmt.Printf("[%s finished in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	section("table1", func() (string, error) { return scorpio.Table1(), nil })
	section("service", func() (string, error) {
		fig, err := scorpio.ServiceLatencySummary(scale)
		if err != nil {
			return "", err
		}
		return fig.String(), nil
	})
	section("table2", func() (string, error) { return scorpio.Table2(), nil })
	section("fig6a", func() (string, error) {
		fig, err := scorpio.Figure6a(scale, 36)
		if err != nil {
			return "", err
		}
		return fig.String() + "\n" + fig.Chart() + "\n" + scorpio.Headline(fig), nil
	})
	section("fig6a64", func() (string, error) {
		fig, err := scorpio.Figure6a(scale, 64)
		if err != nil {
			return "", err
		}
		return fig.String() + "\n" + scorpio.Headline(fig), nil
	})
	section("fig6b", func() (string, error) {
		fig, err := scorpio.Figure6b(scale)
		if err != nil {
			return "", err
		}
		return fig.String(), nil
	})
	section("fig6c", func() (string, error) {
		fig, err := scorpio.Figure6c(scale)
		if err != nil {
			return "", err
		}
		return fig.String(), nil
	})
	section("fig7", func() (string, error) {
		fig, err := scorpio.Figure7(scale)
		if err != nil {
			return "", err
		}
		return fig.String(), nil
	})
	section("fig8a", func() (string, error) {
		fig, err := scorpio.Figure8a(scale)
		if err != nil {
			return "", err
		}
		return fig.String(), nil
	})
	section("fig8b", func() (string, error) {
		fig, err := scorpio.Figure8b(scale)
		if err != nil {
			return "", err
		}
		return fig.String(), nil
	})
	section("fig8c", func() (string, error) {
		fig, err := scorpio.Figure8c(scale)
		if err != nil {
			return "", err
		}
		return fig.String(), nil
	})
	section("fig8d", func() (string, error) {
		fig, err := scorpio.Figure8d(scale)
		if err != nil {
			return "", err
		}
		return fig.String(), nil
	})
	section("fig9", func() (string, error) {
		p, a := scorpio.Figure9()
		return p.String() + "\n" + a.String(), nil
	})
	section("fig10", func() (string, error) {
		fig, err := scorpio.Figure10(scale)
		if err != nil {
			return "", err
		}
		return fig.String(), nil
	})
}
