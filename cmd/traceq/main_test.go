package main

import (
	"os"
	"path/filepath"
	"testing"

	"scorpio"
)

// synthetic builds a trace with two fully observed transactions and assorted
// noise the reconstructor must ignore.
func synthetic() *traceFile {
	tf := &traceFile{}
	add := func(name string, ts uint64, pid int64, pkt, arg uint64) {
		var e rawEvent
		e.Name, e.Ph, e.Ts, e.Pid = name, "i", ts, pid
		e.Args.Pkt, e.Args.Arg = pkt, arg
		tf.TraceEvents = append(tf.TraceEvents, e)
	}
	// Packet 7: miss at node 2, addr 0xabc — queue 5, bcast 10, order 4, serve 6.
	add("miss-start", 100, 2, 7, 0xabc)
	add("inject", 105, 2, 7, 2)
	add("net-arrive", 110, 0, 7, 0)
	add("net-arrive", 115, 3, 7, 0) // last arrival
	add("order-commit", 112, 0, 7, 0)
	add("order-commit", 119, 2, 7, 0) // the source's own commit unblocks the miss
	add("miss-done", 125, 2, 7, 0xabc)
	// Packet 9: miss at node 1 with no observed inject/arrivals — the serve
	// segment absorbs the whole latency.
	add("miss-start", 200, 1, 9, 0xdef)
	add("miss-done", 230, 1, 9, 0xdef)
	// Noise: pkt-0 events, span markers, and a miss-done with no start.
	add("sink", 300, 0, 0, 0)
	add("miss-done", 400, 5, 11, 0x123)
	var span rawEvent
	span.Name, span.Ph, span.Ts = "pkt", "b", 100
	span.Args.Pkt = 7
	tf.TraceEvents = append(tf.TraceEvents, span)
	return tf
}

func TestTransactionsFromSyntheticTrace(t *testing.T) {
	txns := transactions(synthetic())
	if len(txns) != 2 {
		t.Fatalf("reconstructed %d transactions, want 2", len(txns))
	}
	t7 := txns[0]
	if t7.pkt != 7 || t7.node != 2 || t7.addr != 0xabc {
		t.Fatalf("pkt 7 reconstructed as %+v", t7)
	}
	if t7.total() != 25 {
		t.Fatalf("pkt 7 total = %d, want 25", t7.total())
	}
	q, b, o, s := t7.segments()
	if q != 5 || b != 10 || o != 4 || s != 6 {
		t.Fatalf("pkt 7 segments = %d/%d/%d/%d, want 5/10/4/6", q, b, o, s)
	}
	t9 := txns[1]
	if t9.pkt != 9 || t9.total() != 30 {
		t.Fatalf("pkt 9 reconstructed as %+v", t9)
	}
	q, b, o, s = t9.segments()
	if q != 0 || b != 0 || o != 0 || s != 30 {
		t.Fatalf("pkt 9 segments = %d/%d/%d/%d, want 0/0/0/30", q, b, o, s)
	}
}

func TestForeignCommitDoesNotCloseOrderSegment(t *testing.T) {
	tf := synthetic()
	// Only node 0's commit (not the requester's) is present for pkt 13.
	add := func(name string, ts uint64, pid int64, pkt, arg uint64) {
		var e rawEvent
		e.Name, e.Ph, e.Ts, e.Pid = name, "i", ts, pid
		e.Args.Pkt, e.Args.Arg = pkt, arg
		tf.TraceEvents = append(tf.TraceEvents, e)
	}
	add("miss-start", 500, 4, 13, 0x9)
	add("order-commit", 510, 0, 13, 0)
	add("miss-done", 520, 4, 13, 0x9)
	for _, tx := range transactions(tf) {
		if tx.pkt == 13 && tx.hasCommit {
			t.Fatal("a remote NIC's commit was mistaken for the requester's")
		}
	}
}

// TestBreakdownFromExportedTrace is the end-to-end check: run a real traced
// SCORPIO machine, then reconstruct the paper's Figure 10/11-style segment
// breakdown from the exported JSON.
func TestBreakdownFromExportedTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	res, err := scorpio.Run(scorpio.Config{
		Protocol: scorpio.SCORPIO, Benchmark: "barnes",
		Width: 4, Height: 4,
		WorkPerCore: 40, WarmupPerCore: 60,
		Seed: 1, TracePath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	tf := load(path)
	if tf.Metadata.DroppedEvents != 0 {
		t.Fatalf("small run overflowed the trace ring: dropped %d", tf.Metadata.DroppedEvents)
	}
	txns := transactions(tf)
	if len(txns) == 0 {
		t.Fatal("no miss transactions reconstructed from the exported trace")
	}
	// The trace also records warmup-phase misses, so reconstruction must
	// cover at least the measured population.
	measured := res.CacheServed.Count() + res.MemServed.Count()
	if measured == 0 || uint64(len(txns)) < measured {
		t.Fatalf("reconstructed %d transactions, run measured %d misses", len(txns), measured)
	}
	var withNet int
	for _, tx := range txns {
		q, b, o, s := tx.segments()
		if q+b+o+s != tx.total() {
			t.Fatalf("pkt %d: segments %d+%d+%d+%d do not cover total %d", tx.pkt, q, b, o, s, tx.total())
		}
		if tx.hasInject && tx.hasArr && tx.hasCommit {
			withNet++
			if b == 0 {
				t.Fatalf("pkt %d: broadcast traversal took 0 cycles", tx.pkt)
			}
		}
	}
	if withNet == 0 {
		t.Fatal("no transaction has the full inject/arrive/commit network phase")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if os.Getenv("TRACEQ_CRASH_HELPER") == "1" {
		load("/nonexistent/trace.json")
		return
	}
	// load() exits the process on failure; exercising it in-process would
	// kill the test binary, so the garbage paths are covered above by the
	// JSON round-trip and here we just pin that a valid file loads.
	path := filepath.Join(t.TempDir(), "ok.json")
	if err := os.WriteFile(path, []byte(`{"traceEvents":[],"metadata":{"recordedEvents":3,"droppedEvents":1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tf := load(path)
	if tf.Metadata.RecordedEvents != 3 || tf.Metadata.DroppedEvents != 1 {
		t.Fatalf("metadata = %+v", tf.Metadata)
	}
}
