// Command traceq queries a Chrome trace-event JSON lifecycle trace exported
// with the -trace flag. It reconstructs per-transaction timelines from the
// miss-start / inject / net-arrive / order-commit / miss-done events and
// decomposes each L2 miss into the paper's Figure 10/11-style segments:
//
//	queue  — miss-start until the request's head flit enters the network
//	         (MSHR + NIC queueing + notification wait at the source)
//	bcast  — inject until the broadcast's last destination arrival
//	order  — last arrival until the source NIC's own order-commit
//	serve  — order-commit until miss-done (snoop/memory access + response)
//
// Subcommands:
//
//	traceq path <trace.json> <pkt>   # one packet's full event timeline
//	traceq top  <trace.json> [k]     # k slowest transactions with breakdowns
//	traceq diff <a.json> <b.json>    # compare two runs' latency distributions
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
)

type rawEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   uint64 `json:"ts"`
	Pid  int64  `json:"pid"`
	Args struct {
		Pkt  uint64 `json:"pkt"`
		Src  int64  `json:"src"`
		Port int64  `json:"port"`
		VNet int64  `json:"vnet"`
		VC   int64  `json:"vc"`
		Arg  uint64 `json:"arg"`
	} `json:"args"`
}

type traceFile struct {
	TraceEvents []rawEvent `json:"traceEvents"`
	Metadata    struct {
		RecordedEvents uint64 `json:"recordedEvents"`
		DroppedEvents  uint64 `json:"droppedEvents"`
	} `json:"metadata"`
}

// txn is one reconstructed L2 miss transaction, keyed by its GO-REQ packet.
type txn struct {
	pkt       uint64
	node      int64  // requesting tile
	addr      uint64 // line address
	missStart uint64
	inject    uint64
	lastArr   uint64 // the broadcast's final destination arrival
	commit    uint64 // the source NIC's own order-commit
	missDone  uint64

	hasStart, hasInject, hasArr, hasCommit, hasDone bool
}

func (t *txn) total() uint64 { return t.missDone - t.missStart }

// segments returns (queue, bcast, order, serve); unknown phases are zero.
// Boundaries are clamped to [missStart, missDone]: a broadcast can still be
// reaching distant tiles after a nearby owner has already served the miss,
// and those late arrivals do not delay the transaction.
func (t *txn) segments() (q, b, o, s uint64) {
	last := t.missStart
	step := func(to uint64, has bool) uint64 {
		if to > t.missDone {
			to = t.missDone
		}
		if !has || to < last {
			return 0
		}
		d := to - last
		last = to
		return d
	}
	q = step(t.inject, t.hasInject)
	b = step(t.lastArr, t.hasArr)
	o = step(t.commit, t.hasCommit)
	s = step(t.missDone, t.hasDone)
	return
}

func load(path string) *traceFile {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err.Error())
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fail(fmt.Sprintf("%s: not valid Chrome trace-event JSON: %v", path, err))
	}
	if d := tf.Metadata.DroppedEvents; d > 0 {
		fmt.Fprintf(os.Stderr, "traceq: warning: %s dropped %d of %d recorded events (ring wrapped); reconstructed transactions may be incomplete\n",
			path, d, tf.Metadata.RecordedEvents)
	}
	return &tf
}

// transactions reconstructs every fully observed miss transaction.
func transactions(tf *traceFile) []*txn {
	byPkt := map[uint64]*txn{}
	get := func(pkt uint64) *txn {
		t := byPkt[pkt]
		if t == nil {
			t = &txn{pkt: pkt, node: -1}
			byPkt[pkt] = t
		}
		return t
	}
	for i := range tf.TraceEvents {
		e := &tf.TraceEvents[i]
		if e.Ph != "i" || e.Args.Pkt == 0 {
			continue
		}
		switch e.Name {
		case "miss-start":
			t := get(e.Args.Pkt)
			if !t.hasStart || e.Ts < t.missStart {
				t.missStart, t.node, t.addr, t.hasStart = e.Ts, e.Pid, e.Args.Arg, true
			}
		case "inject":
			t := get(e.Args.Pkt)
			if !t.hasInject || e.Ts < t.inject {
				t.inject, t.hasInject = e.Ts, true
			}
		case "net-arrive":
			t := get(e.Args.Pkt)
			if !t.hasArr || e.Ts > t.lastArr {
				t.lastArr, t.hasArr = e.Ts, true
			}
		case "order-commit":
			t := get(e.Args.Pkt)
			// Every node commits the broadcast; the source's own commit is
			// the one that unblocks its miss.
			if t.hasStart && e.Pid == t.node {
				t.commit, t.hasCommit = e.Ts, true
			}
		case "miss-done":
			t := get(e.Args.Pkt)
			if !t.hasDone || e.Ts > t.missDone {
				t.missDone, t.hasDone = e.Ts, true
			}
		}
	}
	var out []*txn
	for _, t := range byPkt {
		if t.hasStart && t.hasDone && t.missDone >= t.missStart {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pkt < out[j].pkt })
	return out
}

func cmdPath(path string, pktArg string) {
	pkt, err := strconv.ParseUint(pktArg, 0, 64)
	if err != nil {
		fail(fmt.Sprintf("bad packet id %q: %v", pktArg, err))
	}
	tf := load(path)
	var evs []*rawEvent
	for i := range tf.TraceEvents {
		e := &tf.TraceEvents[i]
		if e.Ph == "i" && e.Args.Pkt == pkt {
			evs = append(evs, e)
		}
	}
	if len(evs) == 0 {
		fail(fmt.Sprintf("%s: no events for packet %d", path, pkt))
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	base := evs[0].Ts
	fmt.Printf("packet %d: %d events over %d cycles\n", pkt, len(evs), evs[len(evs)-1].Ts-base)
	for _, e := range evs {
		detail := ""
		switch e.Name {
		case "miss-start", "miss-done":
			detail = fmt.Sprintf("addr=%#x", e.Args.Arg)
		case "inject":
			detail = fmt.Sprintf("flits=%d", e.Args.Arg)
		case "order-commit":
			detail = fmt.Sprintf("seq=%d", e.Args.Arg)
		case "vc-alloc", "buf-write":
			detail = fmt.Sprintf("vnet=%d vc=%d", e.Args.VNet, e.Args.VC)
		case "sa-grant", "bypass":
			detail = fmt.Sprintf("out-port=%d", e.Args.Arg)
		}
		fmt.Printf("  +%6d cycle %-8d node %-3d %-12s %s\n", e.Ts-base, e.Ts, e.Pid, e.Name, detail)
	}
	for _, t := range transactions(tf) {
		if t.pkt != pkt {
			continue
		}
		q, b, o, s := t.segments()
		fmt.Printf("breakdown: total=%d queue=%d bcast=%d order=%d serve=%d (node %d, addr %#x)\n",
			t.total(), q, b, o, s, t.node, t.addr)
	}
}

func cmdTop(path string, k int) {
	tf := load(path)
	txns := transactions(tf)
	if len(txns) == 0 {
		fail(fmt.Sprintf("%s: no fully observed miss transactions (need miss-start and miss-done events)", path))
	}
	sort.SliceStable(txns, func(i, j int) bool { return txns[i].total() > txns[j].total() })
	if k > len(txns) {
		k = len(txns)
	}
	fmt.Printf("%d miss transactions reconstructed; %d slowest:\n", len(txns), k)
	fmt.Printf("%-12s %-5s %-14s %8s %8s %8s %8s %8s\n",
		"pkt", "node", "addr", "total", "queue", "bcast", "order", "serve")
	for _, t := range txns[:k] {
		q, b, o, s := t.segments()
		fmt.Printf("%-12d %-5d %-#14x %8d %8d %8d %8d %8d\n",
			t.pkt, t.node, t.addr, t.total(), q, b, o, s)
	}
	var sq, sb, so, ss, st uint64
	for _, t := range txns {
		q, b, o, s := t.segments()
		sq, sb, so, ss, st = sq+q, sb+b, so+o, ss+s, st+t.total()
	}
	n := float64(len(txns))
	fmt.Printf("mean over all %d: total=%.1f queue=%.1f bcast=%.1f order=%.1f serve=%.1f\n",
		len(txns), float64(st)/n, float64(sq)/n, float64(sb)/n, float64(so)/n, float64(ss)/n)
}

// dist summarises a latency population.
type dist struct {
	n              int
	mean           float64
	p50, p99, max_ uint64
}

func distOf(txns []*txn) dist {
	if len(txns) == 0 {
		return dist{}
	}
	totals := make([]uint64, len(txns))
	var sum uint64
	for i, t := range txns {
		totals[i] = t.total()
		sum += totals[i]
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	pct := func(p int) uint64 {
		idx := p * (len(totals) - 1) / 100
		return totals[idx]
	}
	return dist{
		n:    len(totals),
		mean: float64(sum) / float64(len(totals)),
		p50:  pct(50), p99: pct(99), max_: totals[len(totals)-1],
	}
}

func cmdDiff(pathA, pathB string) {
	da := distOf(transactions(load(pathA)))
	db := distOf(transactions(load(pathB)))
	if da.n == 0 || db.n == 0 {
		fail("both traces need at least one fully observed miss transaction")
	}
	fmt.Printf("%-24s %8s %10s %8s %8s %8s\n", "trace", "misses", "mean", "p50", "p99", "max")
	fmt.Printf("%-24s %8d %10.1f %8d %8d %8d\n", trim(pathA, 24), da.n, da.mean, da.p50, da.p99, da.max_)
	fmt.Printf("%-24s %8d %10.1f %8d %8d %8d\n", trim(pathB, 24), db.n, db.mean, db.p50, db.p99, db.max_)
	fmt.Printf("%-24s %8d %+10.1f %+8d %+8d %+8d\n", "delta (B-A)",
		db.n-da.n, db.mean-da.mean,
		int64(db.p50)-int64(da.p50), int64(db.p99)-int64(da.p99), int64(db.max_)-int64(da.max_))
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n+1:]
}

func main() {
	args := os.Args[1:]
	if len(args) < 2 {
		usage()
	}
	switch args[0] {
	case "path":
		if len(args) != 3 {
			usage()
		}
		cmdPath(args[1], args[2])
	case "top":
		k := 10
		if len(args) == 3 {
			v, err := strconv.Atoi(args[2])
			if err != nil || v <= 0 {
				fail(fmt.Sprintf("bad k %q", args[2]))
			}
			k = v
		} else if len(args) != 2 {
			usage()
		}
		cmdTop(args[1], k)
	case "diff":
		if len(args) != 3 {
			usage()
		}
		cmdDiff(args[1], args[2])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  traceq path <trace.json> <pkt>   reconstruct one packet's event timeline
  traceq top  <trace.json> [k]     k slowest miss transactions with breakdowns
  traceq diff <a.json> <b.json>    compare two runs' miss-latency distributions`)
	os.Exit(2)
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "traceq:", msg)
	os.Exit(1)
}
