// Command tracecheck validates a Chrome trace-event JSON file produced by
// the -trace flag: it must parse, be non-empty, contain at least one
// transaction whose inject -> sink lifecycle is fully reconstructable, and
// report no dropped events in its metadata (a tracer ring that wrapped has
// overwritten the oldest events, so span reconstruction is lossy).
//
//	tracecheck scorpio-trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceFile struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Ts   int64  `json:"ts"`
		Args struct {
			Pkt uint64 `json:"pkt"`
		} `json:"args"`
	} `json:"traceEvents"`
	Metadata struct {
		RecordedEvents uint64 `json:"recordedEvents"`
		DroppedEvents  uint64 `json:"droppedEvents"`
	} `json:"metadata"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail(err.Error())
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fail(fmt.Sprintf("%s: not valid Chrome trace-event JSON: %v", os.Args[1], err))
	}
	if len(tf.TraceEvents) == 0 {
		fail(fmt.Sprintf("%s: trace is empty", os.Args[1]))
	}
	injected := map[uint64]bool{}
	spans := 0
	complete := 0
	for _, ev := range tf.TraceEvents {
		switch {
		case ev.Ph == "b":
			spans++
		case ev.Ph != "i" || ev.Args.Pkt == 0:
		case ev.Name == "inject":
			injected[ev.Args.Pkt] = true
		case ev.Name == "sink":
			if injected[ev.Args.Pkt] {
				complete++
				delete(injected, ev.Args.Pkt) // count each packet once
			}
		}
	}
	if complete == 0 {
		fail(fmt.Sprintf("%s: no packet has both an inject and a sink event", os.Args[1]))
	}
	if d := tf.Metadata.DroppedEvents; d > 0 {
		fail(fmt.Sprintf("%s: tracer dropped %d of %d recorded events (ring wrapped) — span reconstruction is lossy; rerun with a larger trace capacity",
			os.Args[1], d, tf.Metadata.RecordedEvents))
	}
	fmt.Printf("tracecheck: %s ok — %d events recorded, 0 dropped, %d spans, %d packets with a full inject->sink lifecycle\n",
		os.Args[1], len(tf.TraceEvents), spans, complete)
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "tracecheck:", msg)
	os.Exit(1)
}
