// Command scorpiotop is a terminal live dashboard for a running simulation.
// It attaches to the telemetry exporter of any run started with a telemetry
// address (scorpiosim -telemetry :8090, experiments -telemetry :8090, or a
// scorpio.Config with TelemetryAddr), streams sample ticks over SSE, and
// renders cycles/s, p50/p99 service latency, parks/wakes/active-units and the
// ASCII router-utilization heatmap, refreshing in place.
//
//	scorpiosim -bench barnes -work 100000 -telemetry :8090 &
//	scorpiotop :8090
//
// The dashboard is read-only and disposable: closing it (or falling behind
// the stream) never affects the simulation — the exporter drops slow clients
// instead of stalling the kernel.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// tick mirrors the exporter's SSE data frame.
type tick struct {
	Cycle  uint64             `json:"cycle"`
	WallNs int64              `json:"wall_ns"`
	Tick   uint64             `json:"tick"`
	Series map[string]float64 `json:"series"`
}

// heatGlyphs is the utilization ramp, darkest last — the same ramp the
// metrics sampler's end-of-run heatmap uses.
const heatGlyphs = " .:-=+*#%@"

func main() {
	var (
		once    = flag.Bool("once", false, "render one frame and exit (CI/smoke mode)")
		heatIvl = flag.Duration("heat-every", time.Second, "router-heatmap refresh period (polls /metrics)")
		timeout = flag.Duration("timeout", 10*time.Second, "give up if no SSE tick arrives within this window")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: scorpiotop [flags] ADDR\n\nADDR is the -telemetry address of a running simulation (\":8090\",\n\"host:8090\" or \"http://host:8090\").\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "scorpiotop: a telemetry address is required (the -telemetry ADDR of the running sim)")
		flag.Usage()
		os.Exit(2)
	}
	base := normalize(flag.Arg(0))

	if err := run(base, *once, *heatIvl, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "scorpiotop:", err)
		os.Exit(1)
	}
}

// normalize turns ":8090" / "host:8090" / "http://..." into a base URL.
func normalize(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimSuffix(addr, "/")
	}
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	return "http://" + addr
}

func run(base string, once bool, heatIvl, timeout time.Duration) error {
	resp, err := http.Get(base + "/stream")
	if err != nil {
		return fmt.Errorf("attach %s: %w (is the sim running with -telemetry?)", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("attach %s/stream: %s", base, resp.Status)
	}

	ticks := make(chan tick)
	errc := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var t tick
			if err := json.Unmarshal([]byte(line[len("data: "):]), &t); err != nil {
				continue
			}
			ticks <- t
		}
		errc <- fmt.Errorf("stream closed: %v", sc.Err())
	}()

	if !once {
		fmt.Print("\x1b[2J") // clear once; frames repaint from home
	}
	var prev, cur tick
	var heat heatmap
	lastHeat := time.Time{}
	frames := 0
	for {
		select {
		case t := <-ticks:
			prev, cur = cur, t
		case err := <-errc:
			if frames > 0 {
				fmt.Println()
				return nil // sim finished while we watched; not a failure
			}
			return err
		case <-time.After(timeout):
			return fmt.Errorf("no sample tick within %s (is the run long enough for the telemetry interval?)", timeout)
		}
		if cur.Tick == 0 {
			continue
		}
		if time.Since(lastHeat) >= heatIvl {
			if h, err := fetchHeat(base); err == nil {
				heat = h
			}
			lastHeat = time.Now()
		}
		render(base, prev, cur, heat, once)
		frames++
		if once {
			return nil
		}
	}
}

// render paints one dashboard frame. In live mode the cursor homes first so
// the frame overwrites the previous one in place.
func render(base string, prev, cur tick, heat heatmap, once bool) {
	var b strings.Builder
	if !once {
		b.WriteString("\x1b[H")
	}
	line := func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
		if !once {
			b.WriteString("\x1b[K") // clear stale tail of the previous frame
		}
		b.WriteByte('\n')
	}

	line("scorpiotop — %s", base)
	cps := 0.0
	if prev.Tick > 0 && cur.WallNs > prev.WallNs {
		cps = float64(cur.Cycle-prev.Cycle) / (float64(cur.WallNs-prev.WallNs) / 1e9)
	}
	line("cycle %-12d %10.0f cycles/s", cur.Cycle, cps)
	line("service latency    p50 %4.0f  p99 %4.0f cycles",
		cur.Series["lat_p50"], cur.Series["lat_p99"])
	line("network            %.0f injected, %.0f ejected, %.0f flits routed, %.0f buffered",
		cur.Series["injected"], cur.Series["ejected"], cur.Series["flits_routed"], cur.Series["buffered_flits"])
	line("activity           %.0f units active, %.0f outstanding misses, wheel %.0f",
		cur.Series["active_units"], cur.Series["outstanding"], cur.Series["wheel_pending"])
	rate := func(name string) float64 {
		if prev.Tick == 0 || cur.Cycle <= prev.Cycle {
			return 0
		}
		return (cur.Series[name] - prev.Series[name]) / float64(cur.Cycle-prev.Cycle) * 1000
	}
	line("engine             %.1f parks, %.1f wakes per kcycle (totals %.0f / %.0f)",
		rate("parks"), rate("wakes"), cur.Series["parks"], cur.Series["wakes"])
	if len(heat.util) > 0 {
		line("")
		line("router utilization (flits/cycle, last window; max %.3f)", heat.max())
		for _, row := range heat.rows() {
			line("  %s", row)
		}
	}
	os.Stdout.WriteString(b.String())
}

// heatmap is the parsed scorpio_router_utilization grid.
type heatmap struct {
	w, h int
	util []float64 // row-major
}

func (h heatmap) max() float64 {
	m := 0.0
	for _, v := range h.util {
		if v > m {
			m = v
		}
	}
	return m
}

// rows renders the grid with the shared glyph ramp, normalized to the
// current maximum (a flat idle mesh renders as all-blank).
func (h heatmap) rows() []string {
	m := h.max()
	out := make([]string, 0, h.h)
	for y := 0; y < h.h; y++ {
		var r strings.Builder
		for x := 0; x < h.w; x++ {
			g := 0
			if m > 0 {
				g = int(h.util[y*h.w+x] / m * float64(len(heatGlyphs)-1))
			}
			r.WriteByte(heatGlyphs[g])
			r.WriteByte(' ')
		}
		out = append(out, r.String())
	}
	return out
}

// fetchHeat scrapes the scorpio_router_utilization family from /metrics.
// Parsing the exposition beats /snapshot here: a page read never waits on the
// simulation driver.
func fetchHeat(base string) (heatmap, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return heatmap{}, err
	}
	defer resp.Body.Close()
	type cell struct {
		x, y int
		v    float64
	}
	var cells []cell
	maxX, maxY := -1, -1
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "scorpio_router_utilization{") {
			continue
		}
		rest := line[len("scorpio_router_utilization{"):]
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			continue
		}
		var c cell
		for _, kv := range strings.Split(rest[:end], ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				continue
			}
			n, _ := strconv.Atoi(strings.Trim(v, `"`))
			switch k {
			case "x":
				c.x = n
			case "y":
				c.y = n
			}
		}
		c.v, _ = strconv.ParseFloat(strings.TrimSpace(rest[end+1:]), 64)
		cells = append(cells, c)
		if c.x > maxX {
			maxX = c.x
		}
		if c.y > maxY {
			maxY = c.y
		}
	}
	if err := sc.Err(); err != nil {
		return heatmap{}, err
	}
	if len(cells) == 0 {
		return heatmap{}, fmt.Errorf("no utilization series")
	}
	h := heatmap{w: maxX + 1, h: maxY + 1}
	h.util = make([]float64, h.w*h.h)
	sort.Slice(cells, func(i, j int) bool {
		return cells[i].y*h.w+cells[i].x < cells[j].y*h.w+cells[j].x
	})
	for _, c := range cells {
		h.util[c.y*h.w+c.x] = c.v
	}
	return h, nil
}
