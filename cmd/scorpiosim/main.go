// Command scorpiosim runs one benchmark on one protocol configuration and
// prints the collected statistics.
//
// Examples:
//
//	scorpiosim -bench barnes                      # SCORPIO, 36 cores
//	scorpiosim -bench lu -protocol LPD-D          # directory baseline
//	scorpiosim -bench vips -protocol INSO -expiry 80 -nodes 16
//	scorpiosim -bench fft -channel 8 -goreq-vcs 2 # design exploration
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"scorpio"
	"scorpio/internal/cli"
)

func main() {
	var (
		bench    = flag.String("bench", "barnes", "benchmark name (see -list)")
		protocol = flag.String("protocol", "SCORPIO", "SCORPIO | LPD-D | HT-D | TokenB | INSO")
		nodes    = flag.Int("nodes", 36, "core count (16, 36, 64, 100)")
		work     = flag.Uint64("work", 400, "measured accesses per core")
		warmup   = flag.Uint64("warmup", 300, "cache-warming accesses per core")
		seed     = flag.Uint64("seed", 1, "workload seed")
		expiry   = flag.Int("expiry", 20, "INSO expiration window (cycles)")
		channel  = flag.Int("channel", 0, "channel width in bytes (0 = chip's 16)")
		goreqVCs = flag.Int("goreq-vcs", 0, "GO-REQ virtual channels (0 = chip's 4)")
		uoVCs    = flag.Int("uoresp-vcs", 0, "UO-RESP virtual channels (0 = chip's 2)")
		notif    = flag.Int("notif-bits", 0, "notification bits per core (0 = chip's 1)")
		outst    = flag.Int("outstanding", 2, "max outstanding misses per core")
		nonPL    = flag.Bool("non-pipelined", false, "use the non-pipelined uncore (Figure 10's Non-PL)")
		noBypass = flag.Bool("no-bypass", false, "disable lookahead bypassing")
		workers  = flag.Int("workers", 1, "simulation kernel worker goroutines (0 = GOMAXPROCS; TokenB/INSO always serial)")
		noSkip   = flag.Bool("no-idle-skip", false, "step every component every cycle (disable the activity engine; results are identical)")
		list     = flag.Bool("list", false, "list benchmarks and exit")

		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON lifecycle trace to this path (view in Perfetto)")
		metricsIvl  = flag.Uint64("metrics-interval", 0, "sample live metrics every N cycles (0 = off)")
		metricsPath = flag.String("metrics-out", "scorpio-metrics.csv", "metrics output path (.json selects JSON, else CSV)")
		watchdog    = flag.Uint64("watchdog", 0, "abort with a network snapshot after N cycles without progress (0 = off)")
		audit       = flag.Bool("audit", false, "attach the online ordering/coherence auditor and latency attributor")
		auditEvery  = flag.Int("audit-every", 0, "auditor stale-sharer sweep period in cycles (0 = default; requires -audit)")
		perfPath    = flag.String("perf-report", "", "attach the engine perf monitor and write its RunReport JSON to this path (\"-\" prints the table only)")
		pprofPath   = flag.String("pprof", "", "write a CPU profile to this path")

		telemetry    = flag.String("telemetry", "", "serve live telemetry on this HTTP address for the duration of the run (\":8090\", or \":0\" for an ephemeral port printed to stderr); attach scorpiotop, curl /metrics, or stream /stream")
		telemetryIvl = flag.Uint64("telemetry-interval", 0, "telemetry sample period in cycles (0 = default 1024; requires -telemetry)")
		sseQueue     = flag.Int("sse-queue", 0, "per-client SSE event queue depth (0 = default 16; requires -telemetry)")
	)
	flag.Parse()

	// Reject observability flag combinations that would silently do nothing.
	if err := cli.CheckFlags(flag.CommandLine, []cli.FlagRule{
		{Flag: "metrics-out", Requires: func() bool { return *metricsIvl > 0 },
			Msg: "-metrics-out has no effect without -metrics-interval N"},
		{Flag: "audit-every", Requires: func() bool { return *audit },
			Msg: "-audit-every has no effect without -audit"},
		{Flag: "telemetry-interval", Requires: func() bool { return *telemetry != "" },
			Msg: "-telemetry-interval has no effect without -telemetry ADDR"},
		{Flag: "sse-queue", Requires: func() bool { return *telemetry != "" },
			Msg: "-sse-queue has no effect without -telemetry ADDR"},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "scorpiosim:", err)
		os.Exit(2)
	}

	stopProfile, err := cli.StartCPUProfile("scorpiosim", *pprofPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProfile()

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	if *list {
		fmt.Println(strings.Join(scorpio.Benchmarks(), "\n"))
		return
	}
	w, h := dims(*nodes)
	cfg := scorpio.Config{
		Protocol:        scorpio.Protocol(*protocol),
		Benchmark:       *bench,
		Width:           w,
		Height:          h,
		WorkPerCore:     *work,
		WarmupPerCore:   *warmup,
		Seed:            *seed,
		ExpiryWindow:    *expiry,
		ChannelBytes:    *channel,
		GOReqVCs:        *goreqVCs,
		UORespVCs:       *uoVCs,
		NotifBits:       *notif,
		MaxOutstanding:  *outst,
		Workers:         *workers,
		DisableIdleSkip: *noSkip,

		TracePath:       *tracePath,
		MetricsInterval: *metricsIvl,
		WatchdogCycles:  *watchdog,
		Audit:           *audit,
		AuditEvery:      *auditEvery,
		PerfReportPath:  *perfPath,

		TelemetryAddr:     *telemetry,
		TelemetryInterval: *telemetryIvl,
		TelemetrySSEQueue: *sseQueue,
	}
	if *metricsIvl > 0 {
		cfg.MetricsPath = *metricsPath
	}
	if *nonPL {
		pl := false
		cfg.PipelinedL2 = &pl
	}
	if *noBypass {
		b := false
		cfg.Bypass = &b
	}
	res, err := scorpio.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scorpiosim:", err)
		os.Exit(1)
	}
	fmt.Printf("protocol           %s\n", res.Protocol)
	fmt.Printf("benchmark          %s (%d cores)\n", res.Benchmark, *nodes)
	fmt.Printf("kernel workers     %d\n", *workers)
	fmt.Printf("runtime            %d cycles (%d to last completion)\n", res.Cycles, res.LastDone)
	fmt.Printf("accesses           %d completed, %d measured\n", res.Completed, res.Service.Count)
	fmt.Printf("L2 service latency %.1f cycles (hit %.1f, miss %.1f)\n", res.Service.Value(), res.HitLat.Value(), res.MissLat.Value())
	if res.ServiceHist != nil && res.ServiceHist.Count() > 0 {
		fmt.Printf("latency percentile p50 %d, p99 %d, max %d cycles\n",
			res.ServiceHist.Percentile(50), res.ServiceHist.Percentile(99), res.ServiceHist.Percentile(100))
	}
	fmt.Printf("served by caches   %.1f%% of misses\n", 100*res.ServedByCacheFrac())
	if res.CacheServed.Count() > 0 {
		fmt.Printf("cache-served miss  %s\n", res.CacheServed.String())
	}
	if res.MemServed.Count() > 0 {
		fmt.Printf("memory-served miss %s\n", res.MemServed.String())
	}
	if res.OrderingLat.Count > 0 {
		fmt.Printf("ordering latency   %.1f cycles at the NIC\n", res.OrderingLat.Value())
	}
	fmt.Printf("network            %d flits routed, %d bypassed\n", res.FlitsRouted, res.Bypasses)
	if res.DirTransactions > 0 {
		fmt.Printf("directory          %d transactions, %d cache misses\n", res.DirTransactions, res.DirCacheMisses)
	}
	if res.Obs != nil && res.Obs.Auditor != nil {
		fmt.Println(res.Obs.Auditor.Summary())
	}
	if res.Obs != nil && res.Obs.Attrib != nil {
		if t := res.Obs.Attrib.Table(); t != "" {
			fmt.Print(t)
		}
	}
	if res.Obs != nil && res.Obs.PerfReport != nil {
		fmt.Print(res.Obs.PerfReport.Table())
	}
}

func dims(nodes int) (int, int) {
	k := 1
	for k*k < nodes {
		k++
	}
	return k, k
}
