// Command benchjson converts `go test -bench -benchmem` output on stdin into
// a machine-readable JSON report on stdout. The Makefile's bench target pipes
// the allocation-regression benchmarks through it into BENCH_<n>.json so
// successive PRs can diff ns/op, B/op and allocs/op without scraping text.
//
//	go test -bench 'Fig6a' -benchmem -count=3 -run '^$' . | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"scorpio/internal/obs/perfmon"
)

// sample is one benchmark result line.
type sample struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64  `json:"allocs_per_op,omitempty"`
}

// benchmark aggregates the samples of one benchmark name (one per -count).
type benchmark struct {
	Name         string   `json:"name"`
	Samples      []sample `json:"samples"`
	MinNsPerOp   float64  `json:"min_ns_per_op"`
	MeanNsPerOp  float64  `json:"mean_ns_per_op"`
	MeanBytesOp  float64  `json:"mean_bytes_per_op"`
	MeanAllocsOp float64  `json:"mean_allocs_per_op"`
}

type report struct {
	GoOS    string `json:"goos,omitempty"`
	GoArch  string `json:"goarch,omitempty"`
	Package string `json:"pkg,omitempty"`
	CPU     string `json:"cpu,omitempty"`
	// Host stamps the machine the benchmarks ran on (NumCPU, GOMAXPROCS, go
	// version, commit) so cross-host baseline trajectories stay
	// interpretable; benchdiff downgrades regressions to warnings when two
	// files' hosts differ.
	Host       *perfmon.HostInfo `json:"host,omitempty"`
	Benchmarks []*benchmark      `json:"benchmarks"`
}

func main() {
	var rep report
	host := perfmon.Host()
	rep.Host = &host
	byName := map[string]*benchmark{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			if rep.Package == "" {
				rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			}
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, s, ok := parseLine(line)
			if !ok {
				continue
			}
			b := byName[name]
			if b == nil {
				b = &benchmark{Name: name}
				byName[name] = b
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
			b.Samples = append(b.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	for _, b := range rep.Benchmarks {
		b.summarize()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine decodes one result line:
//
//	BenchmarkName-8   3   123456 ns/op   789 B/op   12 allocs/op
func parseLine(line string) (string, sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", sample{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", sample{}, false
	}
	s := sample{Iterations: n}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			s.NsPerOp = v
		case "B/op":
			s.BytesPerOp = int64(v)
		case "allocs/op":
			s.AllocsPerOp = int64(v)
		}
	}
	return name, s, s.NsPerOp > 0
}

// summarize fills the aggregate fields from the samples.
func (b *benchmark) summarize() {
	if len(b.Samples) == 0 {
		return
	}
	b.MinNsPerOp = b.Samples[0].NsPerOp
	var ns, bytes, allocs float64
	for _, s := range b.Samples {
		if s.NsPerOp < b.MinNsPerOp {
			b.MinNsPerOp = s.NsPerOp
		}
		ns += s.NsPerOp
		bytes += float64(s.BytesPerOp)
		allocs += float64(s.AllocsPerOp)
	}
	n := float64(len(b.Samples))
	b.MeanNsPerOp = ns / n
	b.MeanBytesOp = bytes / n
	b.MeanAllocsOp = allocs / n
}
