// Command benchdiff compares two performance baselines and exits nonzero on
// regression. It accepts either two benchmark files (BENCH_*.json produced
// by cmd/benchjson) or two engine RunReports (the scorpio-perf JSON written
// by -perf-report), detected from the file contents.
//
//	benchdiff BENCH_3.json BENCH_4.json          # gate: exit 1 on regression
//	benchdiff -threshold 0.05 old.json new.json  # tighter gate
//	benchdiff serial.perf.json workers4.perf.json # scaling A/B (informational)
//
// Comparison is noise-aware: for benchmark files the effective threshold per
// benchmark is the larger of -threshold and the observed sample spread
// ((max-min)/min across both files' samples), so a noisy benchmark cannot
// flunk the gate on a rerun of itself. When the two files carry differing
// host stamps (CPU count, go version, OS/arch), regressions are downgraded
// to warnings and the exit stays zero — a baseline taken on another machine
// is a trajectory marker, not a gate. RunReports are likewise compared only
// when their config digests match; differing digests (different workload or
// topology) and differing worker counts make the diff informational.
//
// Exit codes: 0 clean (or warnings only), 1 regression, 2 usage/parse error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"scorpio/internal/obs/perfmon"
)

// out is where the diff lines go; tests swap it for a buffer.
var out io.Writer = os.Stdout

// benchSample mirrors cmd/benchjson's per-run sample (only the field the
// noise estimate needs).
type benchSample struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// benchEntry mirrors cmd/benchjson's aggregated benchmark record.
type benchEntry struct {
	Name         string        `json:"name"`
	Samples      []benchSample `json:"samples"`
	MinNsPerOp   float64       `json:"min_ns_per_op"`
	MeanNsPerOp  float64       `json:"mean_ns_per_op"`
	MeanBytesOp  float64       `json:"mean_bytes_per_op"`
	MeanAllocsOp float64       `json:"mean_allocs_per_op"`
}

// benchFile mirrors cmd/benchjson's top-level report.
type benchFile struct {
	CPU        string            `json:"cpu"`
	Host       *perfmon.HostInfo `json:"host"`
	Benchmarks []*benchEntry     `json:"benchmarks"`
}

// probe sniffs which format a file is.
type probe struct {
	Schema     string          `json:"schema"`
	Benchmarks json.RawMessage `json:"benchmarks"`
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "relative time-regression threshold (raised per benchmark by observed sample noise)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold F] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldRaw := mustRead(flag.Arg(0))
	newRaw := mustRead(flag.Arg(1))
	oldKind := sniff(flag.Arg(0), oldRaw)
	newKind := sniff(flag.Arg(1), newRaw)
	if oldKind != newKind {
		fatalf("cannot compare a %s file with a %s file", oldKind, newKind)
	}
	var regressions, warnings int
	switch oldKind {
	case "bench":
		regressions, warnings = diffBench(flag.Arg(0), oldRaw, flag.Arg(1), newRaw, *threshold)
	case "perf-report":
		regressions, warnings = diffReports(oldRaw, newRaw, *threshold)
	}
	switch {
	case regressions > 0:
		fmt.Fprintf(out, "\nbenchdiff: %d regression(s)\n", regressions)
		os.Exit(1)
	case warnings > 0:
		fmt.Fprintf(out, "\nbenchdiff: clean (%d warning(s))\n", warnings)
	default:
		fmt.Fprintln(out, "\nbenchdiff: clean")
	}
}

func mustRead(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	return data
}

func sniff(path string, raw []byte) string {
	var p probe
	if err := json.Unmarshal(raw, &p); err != nil {
		fatalf("%s: %v", path, err)
	}
	switch {
	case strings.HasPrefix(p.Schema, "scorpio-perf/"):
		return "perf-report"
	case p.Benchmarks != nil:
		return "bench"
	}
	fatalf("%s: neither a benchjson file nor a perf RunReport", path)
	return ""
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(2)
}

// spread returns the relative sample spread (max-min)/min, the noise floor
// for one benchmark's timing comparison.
func spread(samples []benchSample) float64 {
	if len(samples) < 2 {
		return 0
	}
	lo, hi := samples[0].NsPerOp, samples[0].NsPerOp
	for _, s := range samples[1:] {
		if s.NsPerOp < lo {
			lo = s.NsPerOp
		}
		if s.NsPerOp > hi {
			hi = s.NsPerOp
		}
	}
	if lo <= 0 {
		return 0
	}
	return (hi - lo) / lo
}

// diffBench compares two benchjson files and returns (regressions, warnings).
func diffBench(oldPath string, oldRaw []byte, newPath string, newRaw []byte, threshold float64) (int, int) {
	var oldF, newF benchFile
	if err := json.Unmarshal(oldRaw, &oldF); err != nil {
		fatalf("%s: %v", oldPath, err)
	}
	if err := json.Unmarshal(newRaw, &newF); err != nil {
		fatalf("%s: %v", newPath, err)
	}
	regressions, warnings := 0, 0
	gate := true
	if oldF.Host != nil && newF.Host != nil && !perfmon.SameHost(*oldF.Host, *newF.Host) {
		fmt.Fprintf(out, "WARNING: host mismatch (%s vs %s) — regressions reported as warnings only\n",
			hostLine(oldF.Host), hostLine(newF.Host))
		gate = false
		warnings++
	}
	newBy := map[string]*benchEntry{}
	for _, b := range newF.Benchmarks {
		newBy[b.Name] = b
	}
	seen := map[string]bool{}
	for _, ob := range oldF.Benchmarks {
		nb := newBy[ob.Name]
		if nb == nil {
			fmt.Fprintf(out, "%-56s missing from %s\n", ob.Name, newPath)
			warnings++
			continue
		}
		seen[ob.Name] = true
		eff := threshold
		if n := spread(ob.Samples); n > eff {
			eff = n
		}
		if n := spread(nb.Samples); n > eff {
			eff = n
		}
		verdict := "ok"
		bad := false
		delta := 0.0
		if ob.MinNsPerOp > 0 {
			delta = (nb.MinNsPerOp - ob.MinNsPerOp) / ob.MinNsPerOp
		}
		switch {
		case delta > eff:
			verdict, bad = "TIME REGRESSION", true
		case delta < -eff:
			verdict = "improved"
		}
		// Allocation and byte regressions get small absolute+relative slack:
		// alloc counts are near-deterministic, bytes jitter with map growth.
		if nb.MeanAllocsOp > ob.MeanAllocsOp*1.05+1 {
			verdict, bad = "ALLOC REGRESSION", true
		} else if nb.MeanBytesOp > ob.MeanBytesOp*1.10+64 {
			verdict, bad = "BYTES REGRESSION", true
		}
		if bad {
			if gate {
				regressions++
			} else {
				verdict += " (cross-host: warning)"
				warnings++
			}
		}
		fmt.Fprintf(out, "%-56s %12s -> %-12s %+6.1f%% (gate %.0f%%) %s\n",
			ob.Name, fmtNs(ob.MinNsPerOp), fmtNs(nb.MinNsPerOp), 100*delta, 100*eff, verdict)
	}
	for _, nb := range newF.Benchmarks {
		if !seen[nb.Name] {
			fmt.Fprintf(out, "%-56s new in %s (%s)\n", nb.Name, newPath, fmtNs(nb.MinNsPerOp))
		}
	}
	return regressions, warnings
}

// diffReports compares two engine RunReports on their headline throughput.
func diffReports(oldRaw, newRaw []byte, threshold float64) (int, int) {
	oldR, err := perfmon.ParseReport(oldRaw)
	if err != nil {
		fatalf("%v", err)
	}
	newR, err := perfmon.ParseReport(newRaw)
	if err != nil {
		fatalf("%v", err)
	}
	regressions, warnings := 0, 0
	gate := true
	if !perfmon.SameHost(oldR.Host, newR.Host) {
		fmt.Fprintf(out, "WARNING: host mismatch (%s vs %s) — regressions reported as warnings only\n",
			hostLine(&oldR.Host), hostLine(&newR.Host))
		gate = false
		warnings++
	}
	if oldR.ConfigDigest != "" && newR.ConfigDigest != "" && oldR.ConfigDigest != newR.ConfigDigest {
		fmt.Fprintf(out, "WARNING: config digests differ (%s vs %s) — different workloads, diff is informational\n",
			oldR.ConfigDigest, newR.ConfigDigest)
		gate = false
		warnings++
	}
	if oldR.Workers != newR.Workers || oldR.Mode != newR.Mode {
		fmt.Fprintf(out, "note: execution differs (%s x%d vs %s x%d) — scaling A/B, diff is informational\n",
			oldR.Mode, oldR.Workers, newR.Mode, newR.Workers)
		gate = false
	}
	delta := 0.0
	if oldR.CyclesPerSec > 0 {
		delta = (newR.CyclesPerSec - oldR.CyclesPerSec) / oldR.CyclesPerSec
	}
	verdict := "ok"
	if delta < -threshold {
		if gate {
			verdict = "THROUGHPUT REGRESSION"
			regressions++
		} else {
			verdict = "slower (informational)"
		}
	} else if delta > threshold {
		verdict = "improved"
	}
	fmt.Fprintf(out, "%-32s %10.0f -> %-10.0f cycles/s %+6.1f%% (gate %.0f%%) %s\n",
		oldR.Label, oldR.CyclesPerSec, newR.CyclesPerSec, 100*delta, 100*threshold, verdict)
	oa, na := oldR.Activity, newR.Activity
	fmt.Fprintf(out, "  steps %d -> %d, parks %d -> %d, wakes %d -> %d, fast-forwarded cycles %d -> %d\n",
		oa.StepsExecuted, na.StepsExecuted, oa.Parks, na.Parks,
		sumWakes(oa.Wakes), sumWakes(na.Wakes), oa.FastForwardCycles, na.FastForwardCycles)
	fmt.Fprintf(out, "  rebalances %d -> %d, migrations %d -> %d\n",
		oldR.Rebalances, newR.Rebalances, oldR.Migrations, newR.Migrations)
	return regressions, warnings
}

// sumWakes totals the per-edge wake map of a parsed report (the typed
// counter array does not round-trip through JSON; the map does).
func sumWakes(m map[string]uint64) uint64 {
	var n uint64
	for _, v := range m {
		n += v
	}
	return n
}

func hostLine(h *perfmon.HostInfo) string {
	return fmt.Sprintf("%dcpu/%s/%s-%s", h.NumCPU, h.GoVersion, h.OS, h.Arch)
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
