package main

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"scorpio/internal/obs/perfmon"
)

func discardOutput(t *testing.T) {
	t.Helper()
	prev := out
	out = io.Discard
	t.Cleanup(func() { out = prev })
}

func captureOutput(t *testing.T) *strings.Builder {
	t.Helper()
	prev := out
	var sb strings.Builder
	out = &sb
	t.Cleanup(func() { out = prev })
	return &sb
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func benchWith(host perfmon.HostInfo, entries ...*benchEntry) benchFile {
	return benchFile{Host: &host, Benchmarks: entries}
}

func entry(name string, minNs, allocs, bytes float64, samples ...float64) *benchEntry {
	e := &benchEntry{Name: name, MinNsPerOp: minNs, MeanNsPerOp: minNs, MeanAllocsOp: allocs, MeanBytesOp: bytes}
	for _, s := range samples {
		e.Samples = append(e.Samples, benchSample{NsPerOp: s})
	}
	return e
}

func TestSpread(t *testing.T) {
	if got := spread(nil); got != 0 {
		t.Fatalf("spread(nil) = %v, want 0", got)
	}
	if got := spread([]benchSample{{NsPerOp: 100}}); got != 0 {
		t.Fatalf("spread(single) = %v, want 0", got)
	}
	got := spread([]benchSample{{NsPerOp: 100}, {NsPerOp: 150}, {NsPerOp: 120}})
	if got < 0.499 || got > 0.501 {
		t.Fatalf("spread = %v, want 0.5", got)
	}
}

func TestSniff(t *testing.T) {
	discardOutput(t)
	if k := sniff("x", []byte(`{"schema":"scorpio-perf/v1"}`)); k != "perf-report" {
		t.Fatalf("sniff(report) = %q", k)
	}
	if k := sniff("x", []byte(`{"benchmarks":[]}`)); k != "bench" {
		t.Fatalf("sniff(bench) = %q", k)
	}
}

func TestDiffBenchSelfIsClean(t *testing.T) {
	discardOutput(t)
	h := perfmon.Host()
	f := marshal(t, benchWith(h, entry("B/one", 1000, 10, 4096, 1000, 1100)))
	reg, warn := diffBench("a", f, "b", f, 0.10)
	if reg != 0 || warn != 0 {
		t.Fatalf("self-diff: regressions=%d warnings=%d, want 0/0", reg, warn)
	}
}

func TestDiffBenchTimeRegression(t *testing.T) {
	discardOutput(t)
	h := perfmon.Host()
	oldF := marshal(t, benchWith(h, entry("B/one", 1000, 10, 4096, 1000, 1010)))
	newF := marshal(t, benchWith(h, entry("B/one", 1500, 10, 4096, 1500, 1510)))
	reg, _ := diffBench("a", oldF, "b", newF, 0.10)
	if reg != 1 {
		t.Fatalf("regressions = %d, want 1 (50%% slower, 10%% gate)", reg)
	}
}

func TestDiffBenchNoiseWidensGate(t *testing.T) {
	discardOutput(t)
	// 50% slower, but the old file's own samples spread by 80% — a rerun of
	// the same code could land anywhere in that band, so no regression.
	h := perfmon.Host()
	oldF := marshal(t, benchWith(h, entry("B/one", 1000, 10, 4096, 1000, 1800)))
	newF := marshal(t, benchWith(h, entry("B/one", 1500, 10, 4096, 1500, 1600)))
	reg, _ := diffBench("a", oldF, "b", newF, 0.10)
	if reg != 0 {
		t.Fatalf("regressions = %d, want 0 (noise gate should absorb the delta)", reg)
	}
}

func TestDiffBenchAllocRegression(t *testing.T) {
	discardOutput(t)
	h := perfmon.Host()
	oldF := marshal(t, benchWith(h, entry("B/one", 1000, 10, 4096, 1000)))
	newF := marshal(t, benchWith(h, entry("B/one", 1000, 20, 4096, 1000)))
	reg, _ := diffBench("a", oldF, "b", newF, 0.10)
	if reg != 1 {
		t.Fatalf("regressions = %d, want 1 (allocs doubled)", reg)
	}
	// Within the 5%+1 slack: 10 -> 11 allocs is not a regression.
	newOK := marshal(t, benchWith(h, entry("B/one", 1000, 11, 4096, 1000)))
	reg, _ = diffBench("a", oldF, "b", newOK, 0.10)
	if reg != 0 {
		t.Fatalf("regressions = %d, want 0 (within alloc slack)", reg)
	}
}

func TestDiffBenchCrossHostDowngrades(t *testing.T) {
	sb := captureOutput(t)
	h := perfmon.Host()
	other := h
	other.NumCPU = h.NumCPU + 8
	oldF := marshal(t, benchWith(h, entry("B/one", 1000, 10, 4096, 1000, 1010)))
	newF := marshal(t, benchWith(other, entry("B/one", 2000, 10, 4096, 2000, 2010)))
	reg, warn := diffBench("a", oldF, "b", newF, 0.10)
	if reg != 0 {
		t.Fatalf("regressions = %d, want 0 across hosts", reg)
	}
	if warn == 0 {
		t.Fatalf("warnings = 0, want >0 across hosts")
	}
	if !strings.Contains(sb.String(), "host mismatch") {
		t.Fatalf("output missing host-mismatch warning:\n%s", sb.String())
	}
}

func TestDiffBenchMissingAndNew(t *testing.T) {
	sb := captureOutput(t)
	h := perfmon.Host()
	oldF := marshal(t, benchWith(h, entry("B/gone", 1000, 10, 4096, 1000)))
	newF := marshal(t, benchWith(h, entry("B/fresh", 1000, 10, 4096, 1000)))
	reg, warn := diffBench("a", oldF, "b", newF, 0.10)
	if reg != 0 || warn != 1 {
		t.Fatalf("regressions=%d warnings=%d, want 0/1", reg, warn)
	}
	if !strings.Contains(sb.String(), "missing from") || !strings.Contains(sb.String(), "new in") {
		t.Fatalf("output missing add/remove lines:\n%s", sb.String())
	}
}

func perfReport(digest string, workers int, mode string, cps float64) []byte {
	r := perfmon.Report{
		Schema:       perfmon.ReportSchema,
		Label:        "SCORPIO/test",
		ConfigDigest: digest,
		Host:         perfmon.Host(),
		Workers:      workers,
		Mode:         mode,
		CyclesPerSec: cps,
	}
	raw, _ := json.Marshal(&r)
	return raw
}

func TestDiffReportsRegression(t *testing.T) {
	discardOutput(t)
	reg, _ := diffReports(perfReport("d1", 1, "serial", 30000), perfReport("d1", 1, "serial", 30000), 0.10)
	if reg != 0 {
		t.Fatalf("self-diff regressions = %d, want 0", reg)
	}
	reg, _ = diffReports(perfReport("d1", 1, "serial", 30000), perfReport("d1", 1, "serial", 20000), 0.10)
	if reg != 1 {
		t.Fatalf("regressions = %d, want 1 (throughput -33%%)", reg)
	}
}

func TestDiffReportsDigestMismatchInformational(t *testing.T) {
	sb := captureOutput(t)
	reg, warn := diffReports(perfReport("d1", 1, "serial", 30000), perfReport("d2", 1, "serial", 20000), 0.10)
	if reg != 0 {
		t.Fatalf("regressions = %d, want 0 across digests", reg)
	}
	if warn == 0 {
		t.Fatalf("warnings = 0, want >0 across digests")
	}
	if !strings.Contains(sb.String(), "config digests differ") {
		t.Fatalf("output missing digest warning:\n%s", sb.String())
	}
}

func TestDiffReportsWorkerMismatchInformational(t *testing.T) {
	sb := captureOutput(t)
	reg, _ := diffReports(perfReport("d1", 1, "serial", 30000), perfReport("d1", 4, "parallel", 20000), 0.10)
	if reg != 0 {
		t.Fatalf("regressions = %d, want 0 for a scaling A/B", reg)
	}
	if !strings.Contains(sb.String(), "execution differs") {
		t.Fatalf("output missing execution-differs note:\n%s", sb.String())
	}
}
