// layoutcheck is a fieldalignment-style guard over the simulator's hot
// structs. It fails (exit 1) when:
//
//   - a struct with a pinned size contract drifts (Flit must stay 32 bytes —
//     two per cache line — and the false-sharing-padded Link and Activity
//     must stay cache-line multiples), or
//   - a checked struct wastes alignment padding that a field reorder would
//     reclaim (compiler-inserted holes not covered by an explicit blank
//     `_ [N]byte` pad, which marks deliberate false-sharing padding).
//
// Wasted bytes are computed against a greedy repacking: fields sorted by
// alignment then size pack with no interior holes, so any excess of the real
// size over (packed size + intentional pad) is reclaimable. Unexported hot
// structs (sim's scheduling unit, noc's router internals) can't be reached
// by reflection from here; they are pinned by in-package layout tests
// instead.
package main

import (
	"fmt"
	"os"
	"reflect"
	"sort"

	"scorpio/internal/noc"
	"scorpio/internal/sim"
	"scorpio/internal/stats"
)

// intentionalPad sums blank `_ [N]byte`-style fields: padding the author
// asked for, excluded from the waste computation.
func intentionalPad(t reflect.Type) uintptr {
	var pad uintptr
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Name == "_" {
			pad += f.Type.Size()
		}
	}
	return pad
}

// packedSize returns the size the struct would have if its non-pad fields
// were reordered for dense packing: greedy by alignment then size, final
// size rounded up to the struct's alignment.
func packedSize(t reflect.Type) uintptr {
	type fld struct {
		size  uintptr
		align uintptr
	}
	var fs []fld
	var maxAlign uintptr = 1
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Name == "_" {
			continue
		}
		a := uintptr(f.Type.Align())
		if a > maxAlign {
			maxAlign = a
		}
		fs = append(fs, fld{f.Type.Size(), a})
	}
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].align != fs[j].align {
			return fs[i].align > fs[j].align
		}
		return fs[i].size > fs[j].size
	})
	var off uintptr
	for _, f := range fs {
		if f.align > 0 && off%f.align != 0 {
			off += f.align - off%f.align
		}
		off += f.size
	}
	if off%maxAlign != 0 {
		off += maxAlign - off%maxAlign
	}
	return off
}

func main() {
	fail := false
	bad := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "layoutcheck: "+format+"\n", args...)
		fail = true
	}

	// Pinned size contracts.
	if s := reflect.TypeOf(noc.Flit{}).Size(); s != 32 {
		bad("noc.Flit is %d bytes, want 32 (two per 64-byte cache line)", s)
	}
	if s := reflect.TypeOf(noc.Link{}).Size(); s%64 != 0 {
		bad("noc.Link is %d bytes, want a cache-line multiple (false-sharing pad)", s)
	}
	if s := reflect.TypeOf(sim.Activity{}).Size(); s%64 != 0 {
		bad("sim.Activity is %d bytes, want a cache-line multiple (false-sharing pad)", s)
	}

	// Hole checks on the exported hot structs of noc, sim and stats.
	for _, v := range []any{
		noc.Flit{}, noc.Credit{}, noc.Link{}, noc.Packet{},
		noc.RouterStats{}, noc.Arena{}, noc.Config{},
		sim.Activity{}, sim.RNG{},
		stats.Counter{}, stats.Mean{}, stats.Histogram{}, stats.Breakdown{},
	} {
		t := reflect.TypeOf(v)
		real, packed, pad := t.Size(), packedSize(t), intentionalPad(t)
		if waste := int64(real) - int64(packed) - int64(pad); waste > 0 {
			bad("%s.%s wastes %d bytes to alignment holes (size %d, packs to %d + %d intentional pad) — reorder its fields",
				t.PkgPath(), t.Name(), waste, real, packed, pad)
		}
	}

	if fail {
		os.Exit(1)
	}
	fmt.Println("layoutcheck: hot-struct layouts OK")
}
