// Quickstart: simulate the 36-core SCORPIO chip running one benchmark and
// print what the paper's evaluation cares about — L2 service latency, the
// cache-to-cache service ratio, and the miss-latency breakdown.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"scorpio"
)

func main() {
	cfg := scorpio.Config{
		Benchmark:     "barnes", // any of scorpio.Benchmarks()
		WorkPerCore:   300,
		WarmupPerCore: 300,
	}
	fmt.Println("Simulating the 36-core SCORPIO chip on", cfg.Benchmark, "...")
	res, err := scorpio.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nruntime:              %d cycles\n", res.Cycles)
	fmt.Printf("L2 service latency:   %.1f cycles (the paper reports 78 for SCORPIO-D)\n", res.Service.Value())
	fmt.Printf("hits / misses:        %d / %d\n", res.L2Hits, res.L2Misses)
	fmt.Printf("served by caches:     %.0f%% of misses avoid memory entirely\n", 100*res.ServedByCacheFrac())
	fmt.Printf("snoops filtered:      %d of %d (region tracker)\n", res.SnoopsFiltered, res.SnoopsSeen)
	fmt.Println("\ncache-to-cache miss latency, broken down as in Figure 6b:")
	fmt.Printf("  %s\n", res.CacheServed.String())
	fmt.Println("\nmemory-served miss latency (Figure 6c):")
	fmt.Printf("  %s\n", res.MemServed.String())

	// The same workload on the directory baselines the paper compares with.
	fmt.Println("\nSame workload on the directory baselines:")
	for _, p := range []scorpio.Protocol{scorpio.LPDD, scorpio.HTD} {
		c := cfg
		c.Protocol = p
		r, err := scorpio.Run(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s runtime %d cycles (%.2fx SCORPIO), miss latency %.1f\n",
			p, r.Cycles, float64(r.Cycles)/float64(res.Cycles), r.MissLat.Value())
	}
}
