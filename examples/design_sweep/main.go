// Design sweep: a miniature of the paper's Section 5.2 exploration — the
// sweeps that settled the fabricated chip's channel width (16B), GO-REQ
// virtual channel count (4) and notification width (1 bit/core).
//
//	go run ./examples/design_sweep
package main

import (
	"fmt"
	"log"

	"scorpio"
)

func run(cfg scorpio.Config) scorpio.Result {
	res, err := scorpio.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	base := scorpio.Config{
		Benchmark:     "lu",
		WorkPerCore:   200,
		WarmupPerCore: 250,
	}
	baseline := run(base).Runtime()

	fmt.Println("Channel width (Figure 8a) — 8B needs 5 flits per data packet, 32B two:")
	for _, cw := range []int{8, 16, 32} {
		cfg := base
		cfg.ChannelBytes = cw
		r := run(cfg)
		fmt.Printf("  CW=%2dB: runtime %.3fx, %d flits routed\n", cw, r.Runtime()/baseline, r.FlitsRouted)
	}

	fmt.Println("\nGO-REQ virtual channels (Figure 8b) — broadcasts need headroom:")
	for _, vcs := range []int{2, 4, 6} {
		cfg := base
		cfg.GOReqVCs = vcs
		r := run(cfg)
		fmt.Printf("  VCs=%d: runtime %.3fx\n", vcs, r.Runtime()/baseline)
	}

	fmt.Println("\nNotification bits per core (Figure 8d), with 6 outstanding misses:")
	var oneBit float64
	for _, bits := range []int{1, 2, 3} {
		cfg := base
		cfg.NotifBits = bits
		cfg.MaxOutstanding = 6
		cfg.IntensityScale = 0.08
		r := run(cfg)
		if bits == 1 {
			oneBit = r.Runtime()
		}
		fmt.Printf("  BW=%db: runtime %.3fx, ordering latency %.1f cycles\n",
			bits, r.Runtime()/oneBit, r.OrderingLat.Value())
	}
	fmt.Println("\nThe chip shipped with CW=16B, 4 GO-REQ VCs and a 36-bit (1b/core)")
	fmt.Println("notification network — the knee of each curve, as in the paper.")
}
