// Ordering walkthrough: a runnable version of the paper's Figure 1 example.
//
// Two cores on a 4x4 ordered mesh inject coherence requests at nearly the
// same time. The main network delivers the broadcasts in whatever order the
// mesh happens to produce, yet every node hands them to its cache controller
// in exactly the same global order, decided by the notification network's
// merged bit-vectors and the rotating priority arbiter.
//
//	go run ./examples/ordering_walkthrough
package main

import (
	"fmt"
	"log"

	"scorpio/internal/core"
	"scorpio/internal/noc"
	"scorpio/internal/sim"
)

// watcher records the order in which its node observes ordered requests,
// plus the cycle each copy arrived at the NIC vs when it was released.
type watcher struct {
	node     int
	arrived  map[uint64]uint64
	released []string
}

func (w *watcher) AcceptOrderedRequest(p *noc.Packet, arrive, cycle uint64) bool {
	w.arrived[p.ID] = arrive
	w.released = append(w.released, fmt.Sprintf("M%d@%d", p.ID, cycle))
	return true
}

func (w *watcher) AcceptResponse(p *noc.Packet, cycle uint64) bool { return true }

func main() {
	k := sim.NewKernel()
	cfg := core.DefaultConfig().WithMeshSize(4, 4)
	net, err := core.NewOrderedNet(cfg, k)
	if err != nil {
		log.Fatal(err)
	}
	watchers := make([]*watcher, net.Nodes())
	for i := range watchers {
		watchers[i] = &watcher{node: i, arrived: map[uint64]uint64{}}
		net.AttachAgent(i, watchers[i])
	}

	// Like Figure 1: core 11 injects M1 slightly before core 1 injects M2.
	inject := func(node int, at uint64) *noc.Packet {
		p := &noc.Packet{
			ID: net.NewPacketID(), VNet: noc.GOReq, Src: node, SID: node,
			Broadcast: true, Flits: 1, InjectCycle: at,
		}
		return p
	}
	m1 := inject(11, 0)
	m2 := inject(1, 2)

	sent1, sent2 := false, false
	for k.Cycle() < 500 {
		if !sent1 {
			sent1 = net.NIC(11).SendRequest(m1)
		}
		if k.Cycle() >= 2 && !sent2 {
			sent2 = net.NIC(1).SendRequest(m2)
		}
		k.Step()
		done := 0
		for _, w := range watchers {
			if len(w.released) == 2 {
				done++
			}
		}
		if done == net.Nodes() {
			break
		}
	}

	fmt.Printf("M%d = GETX from core 11, M%d = GETS from core 1 (window = %d cycles)\n\n",
		m1.ID, m2.ID, cfg.Notif.Window())
	fmt.Println("node | arrival cycle M1, M2 | release order (request@cycle)")
	for i, w := range watchers {
		fmt.Printf("%4d | %7d, %12d | %v\n", i, w.arrived[m1.ID], w.arrived[m2.ID], w.released)
	}
	if err := net.VerifyGlobalOrder(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEvery node released the requests in the same global order,")
	fmt.Println("even though the broadcasts arrived at different times per node.")
}
