// Consistency: run the sequential-consistency litmus suite on the SCORPIO
// machine — the simulator's analog of the chip's functional-verification
// regressions (Section 4.3). Table 2 lists SCORPIO's consistency model as
// sequential consistency; the globally ordered request stream is what makes
// that cheap.
//
//	go run ./examples/consistency
package main

import (
	"fmt"
	"log"

	"scorpio/internal/litmus"
	"scorpio/internal/stats"
)

func main() {
	fmt.Println("Running SC litmus tests on a 16-core SCORPIO machine (25 randomized runs each):")
	var rows [][]string
	for _, test := range litmus.Suite() {
		res, err := litmus.Run(test, 4, 4, 25, 42)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "OK: no SC violation"
		if res.Violations > 0 {
			verdict = fmt.Sprintf("VIOLATED %d times", res.Violations)
		}
		rows = append(rows, []string{test.Name, fmt.Sprint(len(res.Outcomes)), verdict})
	}
	fmt.Println(stats.Table("", []string{"test", "distinct outcomes", "verdict"}, rows))
	fmt.Println("Every outcome observed across the runs is sequentially consistent:")
	fmt.Println("the ordered GO-REQ stream serialises writes identically at every tile.")
}
