// Uncore scaling: a miniature of the paper's Section 5.3 / Figure 10 study.
// It grows the mesh from 6x6 to 10x10 and toggles the pipelined uncore,
// showing that pipelining the L2 and NIC matters more as core count rises.
//
//	go run ./examples/uncore_scaling
package main

import (
	"fmt"
	"log"

	"scorpio"
)

func main() {
	fmt.Println("Average L2 service latency (cycles), Non-PL vs PL uncore:")
	fmt.Println("mesh   | Non-PL |     PL | reduction")
	for _, k := range []int{6, 8, 10} {
		var lat [2]float64
		for i, pipelined := range []bool{false, true} {
			pl := pipelined
			cfg := scorpio.Config{
				Benchmark:     "fluidanimate",
				Width:         k,
				Height:        k,
				WorkPerCore:   150,
				WarmupPerCore: 200,
				PipelinedL2:   &pl,
			}
			res, err := scorpio.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			lat[i] = res.Service.Value()
		}
		fmt.Printf("%2dx%-3d | %6.1f | %6.1f | %5.1f%%\n",
			k, k, lat[0], lat[1], 100*(1-lat[1]/lat[0]))
	}
	fmt.Println("\nThe paper reports 15%/19%/30% latency reductions at 36/64/100 cores")
	fmt.Println("(Figure 10): pipelining the uncore matters more at scale.")
}
