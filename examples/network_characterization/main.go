// Network characterization: classic open-loop NoC curves for the SCORPIO
// main network — latency versus offered load for the standard synthetic
// patterns, and the measured broadcast capacity against Section 5.3's
// theoretical 1/k² bound.
//
//	go run ./examples/network_characterization
package main

import (
	"fmt"
	"log"

	"scorpio/internal/noc"
	"scorpio/internal/traffic"
)

func main() {
	cfg := noc.DefaultConfig() // the chip's 6x6 mesh
	fmt.Println("Average packet latency (cycles) vs offered load, 6x6 mesh, 3-flit packets:")
	fmt.Println("load (pkts/node/cy) | uniform | transpose | hotspot")
	for _, rate := range []float64{0.005, 0.01, 0.02, 0.04, 0.08} {
		fmt.Printf("%19.3f |", rate)
		for _, p := range []traffic.Pattern{traffic.UniformRandom, traffic.Transpose, traffic.Hotspot} {
			res, err := traffic.Run(traffic.Config{Net: cfg, Pattern: p, InjectionRate: rate, Flits: 3, Cycles: 15000, Seed: 5})
			if err != nil {
				log.Fatal(err)
			}
			if float64(res.Delivered) < 0.9*float64(res.Offered) {
				fmt.Printf(" %9s |", "saturated")
				continue
			}
			fmt.Printf(" %7.1f |", res.AvgLatency)
		}
		fmt.Println()
	}

	fmt.Println("\nBroadcast capacity vs the paper's 1/k^2 bound (Section 5.3):")
	for _, k := range []int{4, 6, 8} {
		c := cfg
		c.Width, c.Height = k, k
		sat, err := traffic.SaturationThroughput(c, traffic.Broadcast, 1, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2dx%-2d measured %.4f, theory %.4f flits/node/cycle\n", k, k, sat, 1/float64(k*k))
	}
	fmt.Println("\nThe paper: \"the theoretical throughput of a kxk mesh is 1/k^2 for")
	fmt.Println("broadcasts, reducing from 0.027 flits/node/cycle for 36 cores to 0.01")
	fmt.Println("flits/node/cycle for 100 cores\" - the measured mesh agrees.")
}
