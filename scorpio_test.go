package scorpio

import (
	"strings"
	"testing"
)

func TestRunDefaultsToScorpio(t *testing.T) {
	res, err := Run(Config{Benchmark: "swaptions", Width: 4, Height: 4, WorkPerCore: 60, WarmupPerCore: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "SCORPIO" {
		t.Fatalf("protocol = %s", res.Protocol)
	}
	if res.Service.Count != 16*60 {
		t.Fatalf("measured %d accesses, want %d", res.Service.Count, 16*60)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing benchmark accepted")
	}
	if _, err := Run(Config{Benchmark: "nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := Run(Config{Benchmark: "lu", Protocol: Protocol("weird")}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestEveryProtocolRuns(t *testing.T) {
	for _, p := range []Protocol{SCORPIO, LPDD, HTD, TokenB, INSO} {
		res, err := Run(Config{Protocol: p, Benchmark: "swaptions", Width: 4, Height: 4, WorkPerCore: 40, WarmupPerCore: 60})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Service.Count != 16*40 {
			t.Fatalf("%s measured %d", p, res.Service.Count)
		}
	}
}

func TestBenchmarksCatalog(t *testing.T) {
	if len(Benchmarks()) != 14 {
		t.Fatalf("benchmarks = %d, want 14", len(Benchmarks()))
	}
	if len(BenchmarksOf("splash2")) != 8 || len(BenchmarksOf("parsec")) != 6 {
		t.Fatal("suite split wrong")
	}
	if _, err := ProfileByName("radix"); err != nil {
		t.Fatal(err)
	}
}

func TestHeadlineDirection(t *testing.T) {
	// The core claim at a reduced scale: SCORPIO-D beats both directory
	// baselines on the same workload (Figure 6a's direction).
	s := QuickScale
	s.Work, s.Warmup = 150, 250
	s.Benchmarks = []string{"barnes", "lu"}
	fig, err := Figure6a(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r := fig.MeanRatio("SCORPIO-D", "LPD-D"); r >= 1 {
		t.Errorf("SCORPIO-D/LPD-D runtime ratio %.3f, want < 1", r)
	}
	if r := fig.MeanRatio("SCORPIO-D", "HT-D"); r >= 1 {
		t.Errorf("SCORPIO-D/HT-D runtime ratio %.3f, want < 1", r)
	}
	h := Headline(fig)
	if !strings.Contains(h, "runtime reduction") {
		t.Fatalf("headline malformed: %q", h)
	}
}

func TestTablesRender(t *testing.T) {
	t1 := Table1()
	if !strings.Contains(t1, "6x6 mesh") || !strings.Contains(t1, "MOSI") {
		t.Fatalf("Table 1 incomplete:\n%s", t1)
	}
	t2 := Table2()
	if !strings.Contains(t2, "SCORPIO") || !strings.Contains(t2, "TILE64") {
		t.Fatalf("Table 2 incomplete:\n%s", t2)
	}
}

func TestFigure9Shares(t *testing.T) {
	p, a := Figure9()
	if len(p.Rows) == 0 || len(a.Rows) == 0 {
		t.Fatal("empty figure 9")
	}
	if p.Rows[0].Label != "Core" {
		t.Fatalf("largest power consumer = %s, want Core", p.Rows[0].Label)
	}
	if a.Rows[0].Label != "L2 Cache Array" {
		t.Fatalf("largest area consumer = %s, want L2 Cache Array", a.Rows[0].Label)
	}
}

func TestFigureString(t *testing.T) {
	f := Figure{ID: "x", Title: "T", Series: []string{"a"}, Rows: []FigureRow{{Label: "r", Values: []float64{1.5}}}}
	out := f.String()
	if !strings.Contains(out, "1.500") || !strings.Contains(out, "T") {
		t.Fatalf("render wrong: %q", out)
	}
	if f.Mean("a") != 1.5 || f.Mean("missing") != 0 {
		t.Fatal("Mean wrong")
	}
	if ch := f.Chart(); !strings.Contains(ch, "|") || !strings.Contains(ch, "r") {
		t.Fatalf("chart render wrong: %q", ch)
	}
}

func TestMeshFor(t *testing.T) {
	cases := map[int][2]int{16: {4, 4}, 36: {6, 6}, 64: {8, 8}, 100: {10, 10}, 25: {5, 5}}
	for n, wh := range cases {
		w, h := meshFor(n)
		if w != wh[0] || h != wh[1] {
			t.Fatalf("meshFor(%d) = %dx%d", n, w, h)
		}
	}
}
