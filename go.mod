module scorpio

go 1.22
