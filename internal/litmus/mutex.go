package litmus

import (
	"fmt"

	"scorpio/internal/coherence"
	"scorpio/internal/core"
	"scorpio/internal/sim"
	"scorpio/internal/system"
	"scorpio/internal/trace"
)

// MutexResult summarises a Peterson mutual-exclusion campaign.
type MutexResult struct {
	Rounds    int
	Final     uint64
	Expected  uint64
	SpinLoops uint64
	Cycles    uint64
}

// Peterson's algorithm needs only loads and stores, so it runs unmodified on
// a sequentially consistent machine — the chip's consistency model (Table 2).
// Two threads increment a shared counter `rounds` times each inside the
// critical section; any coherence/ordering bug shows up as a lost update.
// This is the simulator's analog of the chip's lock/barrier regression tests
// (Section 4.3).
const (
	addrFlag0   = uint64(0x9000)
	addrFlag1   = uint64(0x9001)
	addrTurn    = uint64(0x9002)
	addrCounter = uint64(0x9003)
)

// mutexState is the Peterson state machine.
type mutexState int

const (
	msSetFlag mutexState = iota
	msSetTurn
	msLoadOtherFlag
	msLoadTurn
	msLoadCounter
	msStoreCounter
	msClearFlag
	msDone
)

// mutexDriver runs one Peterson contender as a cycle-driven state machine.
type mutexDriver struct {
	l2      *coherence.L2Controller
	id      int // 0 or 1
	rounds  int
	state   mutexState
	waiting bool
	// loaded values from the two spin loads and the counter load
	otherFlag uint64
	turn      uint64
	counter   uint64
	// Stats
	spins uint64
	done  bool
}

func (d *mutexDriver) myFlag() uint64 {
	if d.id == 0 {
		return addrFlag0
	}
	return addrFlag1
}

func (d *mutexDriver) theirFlag() uint64 {
	if d.id == 0 {
		return addrFlag1
	}
	return addrFlag0
}

// Evaluate advances the state machine, one memory operation at a time.
func (d *mutexDriver) Evaluate(cycle uint64) {
	if d.waiting || d.done {
		return
	}
	issue := func(addr uint64, write bool, value uint64) {
		if d.l2.CoreAccess(addr, write, value, cycle) {
			d.waiting = true
		}
	}
	switch d.state {
	case msSetFlag:
		issue(d.myFlag(), true, 1)
	case msSetTurn:
		issue(addrTurn, true, uint64(1-d.id))
	case msLoadOtherFlag:
		issue(d.theirFlag(), false, 0)
	case msLoadTurn:
		issue(addrTurn, false, 0)
	case msLoadCounter:
		issue(addrCounter, false, 0)
	case msStoreCounter:
		issue(addrCounter, true, d.counter+1)
	case msClearFlag:
		issue(d.myFlag(), true, 0)
	}
}

func (d *mutexDriver) Commit(cycle uint64) {}

// onComplete consumes the finished operation and picks the next state.
func (d *mutexDriver) onComplete(c coherence.Completion) {
	d.waiting = false
	switch d.state {
	case msSetFlag:
		d.state = msSetTurn
	case msSetTurn:
		d.state = msLoadOtherFlag
	case msLoadOtherFlag:
		d.otherFlag = c.Value
		d.state = msLoadTurn
	case msLoadTurn:
		d.turn = c.Value
		if d.otherFlag == 1 && d.turn == uint64(1-d.id) {
			// Contended: spin back to re-reading the other's flag.
			d.spins++
			d.state = msLoadOtherFlag
			return
		}
		d.state = msLoadCounter
	case msLoadCounter:
		d.counter = c.Value
		d.state = msStoreCounter
	case msStoreCounter:
		d.state = msClearFlag
	case msClearFlag:
		d.rounds--
		if d.rounds == 0 {
			d.done = true
			d.state = msDone
			return
		}
		d.state = msSetFlag
	}
}

// RunMutex races two Peterson contenders for `rounds` critical sections each
// on a w×h SCORPIO machine and returns the final counter (Expected =
// 2*rounds under correct mutual exclusion).
func RunMutex(w, h, rounds int, seed uint64) (MutexResult, error) {
	opt := system.DefaultOptions(trace.All()[0])
	opt.Core = core.DefaultConfig().WithMeshSize(w, h)
	opt.L2.DataFlits = opt.Core.Net.DataPacketFlits()
	s, err := system.NewScorpioBare(opt)
	if err != nil {
		return MutexResult{}, err
	}
	// Place the contenders far apart for maximal transfer latency; the seed
	// staggers their starts to vary the interleaving.
	nodes := [2]int{0, len(s.L2s) - 1}
	drivers := [2]*mutexDriver{}
	for i := 0; i < 2; i++ {
		d := &mutexDriver{l2: s.L2s[nodes[i]], id: i, rounds: rounds}
		s.L2s[nodes[i]].OnComplete = d.onComplete
		drivers[i] = d
		// Share the node's scheduling unit (see RunOn): the driver calls the
		// L2 directly and has no Idle(), keeping the unit permanently active.
		s.Kernel.RegisterGroup(nodes[i], d)
	}
	// Stagger thread 1 by a seed-derived offset.
	s.Kernel.Run(sim.NewRNG(seed).Uint64() % 64)
	ok := s.Kernel.RunUntil(func() bool { return drivers[0].done && drivers[1].done }, 5_000_000)
	if !ok {
		return MutexResult{}, fmt.Errorf("litmus: Peterson contenders did not finish (livelock?)")
	}
	if err := s.Net.VerifyGlobalOrder(); err != nil {
		return MutexResult{}, err
	}
	// Read the final counter value from whichever cache owns it.
	final := uint64(0)
	for _, l2 := range s.L2s {
		if l2.LineState(addrCounter) != coherence.Invalid {
			final = l2.ValueOf(addrCounter)
		}
	}
	return MutexResult{
		Rounds:    rounds,
		Final:     final,
		Expected:  uint64(2 * rounds),
		SpinLoops: drivers[0].spins + drivers[1].spins,
		Cycles:    s.Kernel.Cycle(),
	}, nil
}
