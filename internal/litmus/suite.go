package litmus

// Suite returns the standard sequential-consistency litmus tests, expressed
// over distinct shared lines x, y (and z for the longer ones). Every
// Forbidden predicate encodes an outcome SC rules out.
func Suite() []Test {
	const (
		x = uint64(0x1000)
		y = uint64(0x2000)
		z = uint64(0x3000)
	)
	return []Test{
		{
			// Message passing: if the consumer sees the flag it must see the
			// data.
			Name: "MP",
			Threads: [][]Op{
				{{Addr: x, Write: true, Value: 1}, {Addr: y, Write: true, Value: 1}},
				{{Addr: y}, {Addr: x}},
			},
			Forbidden: func(l [][]uint64) bool {
				return l[1][0] == 1 && l[1][1] == 0
			},
		},
		{
			// Store buffering: SC forbids both threads missing the other's
			// store.
			Name: "SB",
			Threads: [][]Op{
				{{Addr: x, Write: true, Value: 1}, {Addr: y}},
				{{Addr: y, Write: true, Value: 1}, {Addr: x}},
			},
			Forbidden: func(l [][]uint64) bool {
				return l[0][0] == 0 && l[1][0] == 0
			},
		},
		{
			// Load buffering: both threads reading the other's not-yet-issued
			// store is impossible when each load precedes the store in
			// program order.
			Name: "LB",
			Threads: [][]Op{
				{{Addr: x}, {Addr: y, Write: true, Value: 1}},
				{{Addr: y}, {Addr: x, Write: true, Value: 1}},
			},
			Forbidden: func(l [][]uint64) bool {
				return l[0][0] == 1 && l[1][0] == 1
			},
		},
		{
			// Independent reads of independent writes: the two readers must
			// agree on the order of the two writes.
			Name: "IRIW",
			Threads: [][]Op{
				{{Addr: x, Write: true, Value: 1}},
				{{Addr: y, Write: true, Value: 1}},
				{{Addr: x}, {Addr: y}},
				{{Addr: y}, {Addr: x}},
			},
			Forbidden: func(l [][]uint64) bool {
				return l[2][0] == 1 && l[2][1] == 0 && l[3][0] == 1 && l[3][1] == 0
			},
		},
		{
			// Coherence order (CoRR): two reads of one location by the same
			// thread must not observe values going backwards.
			Name: "CoRR",
			Threads: [][]Op{
				{{Addr: x, Write: true, Value: 1}, {Addr: x, Write: true, Value: 2}},
				{{Addr: x}, {Addr: x}},
			},
			Forbidden: func(l [][]uint64) bool {
				return l[1][0] == 2 && l[1][1] < 2
			},
		},
		{
			// Coherence-order agreement: two independent writers to one
			// line may serialise either way, but every observer must see the
			// same order — two observers seeing opposite transitions is
			// forbidden.
			Name: "CoWW",
			Threads: [][]Op{
				{{Addr: x, Write: true, Value: 1}},
				{{Addr: x, Write: true, Value: 2}},
				{{Addr: x}, {Addr: x}},
				{{Addr: x}, {Addr: x}},
			},
			Forbidden: func(l [][]uint64) bool {
				saw12 := l[2][0] == 1 && l[2][1] == 2
				saw21 := l[2][0] == 2 && l[2][1] == 1
				saw12b := l[3][0] == 1 && l[3][1] == 2
				saw21b := l[3][0] == 2 && l[3][1] == 1
				return (saw12 && saw21b) || (saw21 && saw12b)
			},
		},
		{
			// WRC (write-to-read causality): T1 sees T0's write then writes
			// its own flag; T2 seeing the flag must see T0's write.
			Name: "WRC",
			Threads: [][]Op{
				{{Addr: x, Write: true, Value: 1}},
				{{Addr: x}, {Addr: z, Write: true, Value: 1}},
				{{Addr: z}, {Addr: x}},
			},
			Forbidden: func(l [][]uint64) bool {
				return l[1][0] == 1 && l[2][0] == 1 && l[2][1] == 0
			},
		},
	}
}
