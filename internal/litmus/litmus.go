// Package litmus is the consistency-verification suite of the simulator,
// playing the role of the chip's functional-verification regressions
// (Section 4.3: load/store coherency between L1s, L2s and main memory, and
// the sequential-consistency guarantee Table 2 advertises).
//
// A litmus test is a set of tiny per-core programs (loads and stores to
// shared lines) plus a predicate over the loaded values that sequential
// consistency forbids. Each core issues its next operation only after the
// previous one completed, so any forbidden outcome would be a protocol bug
// (a stale value surviving an ordered invalidation), not a reordering
// artifact. Tests run many times with randomized start skews to explore
// interleavings.
package litmus

import (
	"fmt"

	"scorpio/internal/coherence"
	"scorpio/internal/core"
	"scorpio/internal/sim"
	"scorpio/internal/system"
	"scorpio/internal/trace"
)

// Op is one memory operation of a litmus thread.
type Op struct {
	// Addr is the shared line address.
	Addr uint64
	// Write stores Value; otherwise the op is a load whose result is
	// recorded.
	Write bool
	// Value is the stored value (writes only).
	Value uint64
}

// Test is one litmus scenario.
type Test struct {
	// Name identifies the test (MP, SB, IRIW, ...).
	Name string
	// Threads holds one program per participating core.
	Threads [][]Op
	// Forbidden reports whether the observed load values violate sequential
	// consistency. loads[t] lists thread t's load results in program order.
	Forbidden func(loads [][]uint64) bool
}

// driver replays one thread on a tile, strictly in program order.
type driver struct {
	l2      *coherence.L2Controller
	ops     []Op
	next    int
	waiting bool
	startAt uint64
	Loads   []uint64
}

// Evaluate issues the next operation once the previous one completed.
func (d *driver) Evaluate(cycle uint64) {
	if d.waiting || d.next >= len(d.ops) || cycle < d.startAt {
		return
	}
	op := d.ops[d.next]
	if d.l2.CoreAccess(op.Addr, op.Write, op.Value, cycle) {
		d.waiting = true
	}
}

// Commit implements sim.Component.
func (d *driver) Commit(cycle uint64) {}

// onComplete records load results and unblocks the next op.
func (d *driver) onComplete(c coherence.Completion) {
	if !c.Write {
		d.Loads = append(d.Loads, c.Value)
	}
	d.waiting = false
	d.next++
}

func (d *driver) done() bool { return d.next >= len(d.ops) }

// Result summarises one litmus campaign.
type Result struct {
	Test       string
	Runs       int
	Violations int
	// Outcomes histograms the joined load values ("1,0|1,1" style keys).
	Outcomes map[string]int
}

// Run executes the test `runs` times on a w×h SCORPIO machine with seeded
// random start skews, and reports any sequentially inconsistent outcome.
func Run(test Test, w, h int, runs int, seed uint64) (Result, error) {
	return RunOn(test, w, h, runs, seed, 1)
}

// RunOn is Run with an explicit main-network count, so the multiple-main-
// networks extension is verified to preserve sequential consistency too.
func RunOn(test Test, w, h int, runs int, seed uint64, mainNetworks int) (Result, error) {
	res := Result{Test: test.Name, Runs: runs, Outcomes: map[string]int{}}
	rng := sim.NewRNG(seed)
	for run := 0; run < runs; run++ {
		// The profile is irrelevant: bare machines carry no injectors.
		opt := system.DefaultOptions(trace.All()[0])
		opt.Core = core.DefaultConfig().WithMeshSize(w, h)
		opt.Core.MainNetworks = mainNetworks
		opt.L2.DataFlits = opt.Core.Net.DataPacketFlits()
		s, err := system.NewScorpioBare(opt)
		if err != nil {
			return res, err
		}
		if len(test.Threads) > len(s.L2s) {
			return res, fmt.Errorf("litmus: %s needs %d cores, machine has %d", test.Name, len(test.Threads), len(s.L2s))
		}
		drivers := make([]*driver, len(test.Threads))
		// Spread threads across the mesh so requests take different paths.
		stride := len(s.L2s) / len(test.Threads)
		for t, ops := range test.Threads {
			node := t * stride
			d := &driver{l2: s.L2s[node], ops: ops, startAt: uint64(rng.Intn(250))}
			s.L2s[node].OnComplete = d.onComplete
			drivers[t] = d
			// The driver calls straight into the node's L2, so it must share
			// that node's scheduling unit: the driver has no Idle() method,
			// which pins the whole unit active and guarantees staged core
			// accesses are always merged even with idle-skip enabled.
			s.Kernel.RegisterGroup(node, d)
		}
		ok := s.Kernel.RunUntil(func() bool {
			for _, d := range drivers {
				if !d.done() {
					return false
				}
			}
			return true
		}, 200_000)
		if !ok {
			return res, fmt.Errorf("litmus: %s run %d did not finish", test.Name, run)
		}
		if err := s.Net.VerifyGlobalOrder(); err != nil {
			return res, err
		}
		loads := make([][]uint64, len(drivers))
		for t, d := range drivers {
			loads[t] = d.Loads
		}
		res.Outcomes[outcomeKey(loads)]++
		if test.Forbidden != nil && test.Forbidden(loads) {
			res.Violations++
		}
	}
	return res, nil
}

// outcomeKey renders load results as a stable histogram key.
func outcomeKey(loads [][]uint64) string {
	s := ""
	for t, ls := range loads {
		if t > 0 {
			s += "|"
		}
		for i, v := range ls {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprint(v)
		}
	}
	return s
}
