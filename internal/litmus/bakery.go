package litmus

import (
	"fmt"

	"scorpio/internal/coherence"
	"scorpio/internal/core"
	"scorpio/internal/system"
	"scorpio/internal/trace"
)

// Lamport's bakery algorithm generalises the mutual-exclusion verification
// to N contenders using only loads and stores — a heavier §4.3-style stress
// of coherence + sequential consistency than the two-thread Peterson lock.
const (
	bakeryEntering = uint64(0xA000) // entering[i] = bakeryEntering + i
	bakeryNumber   = uint64(0xA100) // number[i]   = bakeryNumber + i
	bakeryCounter  = uint64(0xA200)
)

// bakery phases.
type bakeryState int

const (
	bkSetEntering bakeryState = iota
	bkScanMax                 // read number[j] for all j
	bkStoreNumber             // number[i] = 1 + max
	bkClearEntering
	bkWaitEntering // spin until entering[j] == 0
	bkWaitNumber   // spin until number[j]==0 or (number[j],j) >= (number[i],i)
	bkLoadCounter
	bkStoreCounter
	bkRelease // number[i] = 0
	bkIdle
)

// bakeryDriver is one contender's state machine.
type bakeryDriver struct {
	l2      *coherence.L2Controller
	id      int
	n       int
	rounds  int
	state   bakeryState
	waiting bool
	j       int    // scan index
	max     uint64 // running max of numbers
	myNum   uint64
	counter uint64
	spins   uint64
	done    bool
}

func (d *bakeryDriver) Evaluate(cycle uint64) {
	if d.waiting || d.done {
		return
	}
	issue := func(addr uint64, write bool, value uint64) {
		if d.l2.CoreAccess(addr, write, value, cycle) {
			d.waiting = true
		}
	}
	switch d.state {
	case bkSetEntering:
		issue(bakeryEntering+uint64(d.id), true, 1)
	case bkScanMax:
		issue(bakeryNumber+uint64(d.j), false, 0)
	case bkStoreNumber:
		issue(bakeryNumber+uint64(d.id), true, d.max+1)
	case bkClearEntering:
		issue(bakeryEntering+uint64(d.id), true, 0)
	case bkWaitEntering:
		issue(bakeryEntering+uint64(d.j), false, 0)
	case bkWaitNumber:
		issue(bakeryNumber+uint64(d.j), false, 0)
	case bkLoadCounter:
		issue(bakeryCounter, false, 0)
	case bkStoreCounter:
		issue(bakeryCounter, true, d.counter+1)
	case bkRelease:
		issue(bakeryNumber+uint64(d.id), true, 0)
	}
}

func (d *bakeryDriver) Commit(cycle uint64) {}

func (d *bakeryDriver) onComplete(c coherence.Completion) {
	d.waiting = false
	switch d.state {
	case bkSetEntering:
		d.j, d.max = 0, 0
		d.state = bkScanMax
	case bkScanMax:
		if c.Value > d.max {
			d.max = c.Value
		}
		d.j++
		if d.j == d.n {
			d.state = bkStoreNumber
		}
	case bkStoreNumber:
		d.myNum = d.max + 1
		d.state = bkClearEntering
	case bkClearEntering:
		d.j = 0
		d.advanceWaitLoop()
	case bkWaitEntering:
		if c.Value != 0 {
			d.spins++
			return // re-read entering[j]
		}
		d.state = bkWaitNumber
	case bkWaitNumber:
		num := c.Value
		if num != 0 && (num < d.myNum || (num == d.myNum && d.j < d.id)) {
			d.spins++
			return // j goes first; re-read number[j]
		}
		d.j++
		d.advanceWaitLoop()
	case bkLoadCounter:
		d.counter = c.Value
		d.state = bkStoreCounter
	case bkStoreCounter:
		d.state = bkRelease
	case bkRelease:
		d.rounds--
		if d.rounds == 0 {
			d.done = true
			d.state = bkIdle
			return
		}
		d.state = bkSetEntering
	}
}

// advanceWaitLoop steps the per-contender wait loop, skipping self.
func (d *bakeryDriver) advanceWaitLoop() {
	if d.j == d.id {
		d.j++
	}
	if d.j >= d.n {
		d.state = bkLoadCounter
		return
	}
	d.state = bkWaitEntering
}

// BakeryResult summarises an N-thread bakery campaign.
type BakeryResult struct {
	Threads   int
	Rounds    int
	Final     uint64
	Expected  uint64
	SpinLoops uint64
	Cycles    uint64
}

// RunBakery races `threads` bakery contenders for `rounds` critical sections
// each on a w×h SCORPIO machine.
func RunBakery(w, h, threads, rounds int, seed uint64) (BakeryResult, error) {
	opt := system.DefaultOptions(trace.All()[0])
	opt.Core = core.DefaultConfig().WithMeshSize(w, h)
	opt.L2.DataFlits = opt.Core.Net.DataPacketFlits()
	s, err := system.NewScorpioBare(opt)
	if err != nil {
		return BakeryResult{}, err
	}
	if threads > len(s.L2s) {
		return BakeryResult{}, fmt.Errorf("litmus: %d threads exceed %d cores", threads, len(s.L2s))
	}
	stride := len(s.L2s) / threads
	drivers := make([]*bakeryDriver, threads)
	for i := 0; i < threads; i++ {
		d := &bakeryDriver{l2: s.L2s[i*stride], id: i, n: threads, rounds: rounds}
		s.L2s[i*stride].OnComplete = d.onComplete
		drivers[i] = d
		// Share the node's scheduling unit (see RunOn): the driver calls the
		// L2 directly and has no Idle(), keeping the unit permanently active.
		s.Kernel.RegisterGroup(i*stride, d)
	}
	ok := s.Kernel.RunUntil(func() bool {
		for _, d := range drivers {
			if !d.done {
				return false
			}
		}
		return true
	}, 20_000_000)
	if !ok {
		return BakeryResult{}, fmt.Errorf("litmus: bakery contenders did not finish")
	}
	if err := s.Net.VerifyGlobalOrder(); err != nil {
		return BakeryResult{}, err
	}
	final := uint64(0)
	for _, l2 := range s.L2s {
		if l2.LineState(bakeryCounter) != coherence.Invalid {
			final = l2.ValueOf(bakeryCounter)
		}
	}
	res := BakeryResult{
		Threads: threads, Rounds: rounds, Final: final,
		Expected: uint64(threads * rounds), Cycles: s.Kernel.Cycle(),
	}
	for _, d := range drivers {
		res.SpinLoops += d.spins
	}
	return res, nil
}
