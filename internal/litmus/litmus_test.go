package litmus

import "testing"

func TestSuiteHoldsSequentialConsistency(t *testing.T) {
	runs := 12
	if testing.Short() {
		runs = 3
	}
	for _, test := range Suite() {
		test := test
		t.Run(test.Name, func(t *testing.T) {
			res, err := Run(test, 4, 4, runs, 0xC0FFEE)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violations != 0 {
				t.Fatalf("%s: %d/%d runs violated sequential consistency; outcomes: %v",
					test.Name, res.Violations, res.Runs, res.Outcomes)
			}
			if len(res.Outcomes) == 0 {
				t.Fatal("no outcomes recorded")
			}
		})
	}
}

func TestOutcomesVaryAcrossRuns(t *testing.T) {
	// SB with random skews should produce more than one legal outcome —
	// evidence the campaign explores interleavings rather than replaying one.
	var sb Test
	for _, test := range Suite() {
		if test.Name == "SB" {
			sb = test
		}
	}
	res, err := Run(sb, 4, 4, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) < 2 {
		t.Fatalf("only one outcome observed (%v); skews not exploring interleavings", res.Outcomes)
	}
}

func TestForbiddenPredicatesFire(t *testing.T) {
	// Sanity-check the predicates themselves against hand-built outcomes.
	for _, test := range Suite() {
		switch test.Name {
		case "MP":
			if !test.Forbidden([][]uint64{{}, {1, 0}}) {
				t.Fatal("MP predicate misses the forbidden outcome")
			}
			if test.Forbidden([][]uint64{{}, {1, 1}}) {
				t.Fatal("MP predicate rejects a legal outcome")
			}
		case "SB":
			if !test.Forbidden([][]uint64{{0}, {0}}) {
				t.Fatal("SB predicate misses the forbidden outcome")
			}
			if test.Forbidden([][]uint64{{0}, {1}}) {
				t.Fatal("SB predicate rejects a legal outcome")
			}
		case "IRIW":
			if !test.Forbidden([][]uint64{{}, {}, {1, 0}, {1, 0}}) {
				t.Fatal("IRIW predicate misses the forbidden outcome")
			}
		case "CoRR":
			if !test.Forbidden([][]uint64{{}, {2, 1}}) {
				t.Fatal("CoRR predicate misses the forbidden outcome")
			}
		}
	}
}

func TestRunRejectsOversizedTests(t *testing.T) {
	big := Test{Name: "too-big", Threads: make([][]Op, 50)}
	if _, err := Run(big, 4, 4, 1, 1); err == nil {
		t.Fatal("a 50-thread test cannot fit a 16-core machine")
	}
}

func TestSuiteHoldsOnMultipleMainNetworks(t *testing.T) {
	// Section 5.3: striping over several main networks must not affect
	// correctness because delivery is decoupled from ordering.
	for _, test := range Suite() {
		res, err := RunOn(test, 4, 4, 6, 99, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Violations != 0 {
			t.Fatalf("%s violated SC on a dual-network machine: %v", test.Name, res.Outcomes)
		}
	}
}

func TestPetersonMutualExclusion(t *testing.T) {
	rounds := 30
	if testing.Short() {
		rounds = 8
	}
	res, err := RunMutex(4, 4, rounds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != res.Expected {
		t.Fatalf("lost updates: counter = %d, want %d (spins %d)", res.Final, res.Expected, res.SpinLoops)
	}
	if res.SpinLoops == 0 {
		t.Log("note: contenders never overlapped; mutual exclusion untested under contention this run")
	}
	t.Logf("Peterson: %d increments correct in %d cycles, %d spin iterations", res.Final, res.Cycles, res.SpinLoops)
}

func TestBakeryMutualExclusionFourThreads(t *testing.T) {
	rounds := 12
	if testing.Short() {
		rounds = 4
	}
	res, err := RunBakery(4, 4, 4, rounds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != res.Expected {
		t.Fatalf("lost updates: counter = %d, want %d (spins %d)", res.Final, res.Expected, res.SpinLoops)
	}
	t.Logf("bakery 4x%d: counter %d correct in %d cycles, %d spins", rounds, res.Final, res.Cycles, res.SpinLoops)
}

func TestBakeryEightThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("heavier contention run")
	}
	res, err := RunBakery(4, 4, 8, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != res.Expected {
		t.Fatalf("lost updates: counter = %d, want %d", res.Final, res.Expected)
	}
}
