// Package nic implements SCORPIO's network interface controller (Section 3.4
// of the paper): the block between a tile's coherence agent (L2 cache
// controller or memory controller) and the two physical networks.
//
// On the send path the NIC encapsulates coherence messages into packets,
// injects them into the appropriate virtual network of the main network, and
// announces every globally ordered request on the notification network at a
// later time-window boundary (up to MaxPendingNotifs announcements may be
// outstanding before new requests are back-pressured).
//
// On the receive path the NIC buffers GO-REQ packets arriving in any order
// and releases them to the agent strictly in the global order derived from
// the merged notification vectors: each consumed vector is expanded into an
// Expected Source ID (ESID) sequence by a rotating priority arbiter, and only
// the packet whose SID matches the current ESID may be forwarded. UO-RESP
// packets are forwarded in arrival order.
//
// A NIC may attach to several main-network meshes (AddMesh): the
// multiple-main-networks throughput extension of Section 5.3, which is
// correct precisely because delivery is decoupled from ordering.
package nic

import (
	"fmt"
	"strings"

	"scorpio/internal/noc"
	"scorpio/internal/notif"
	"scorpio/internal/obs"
	"scorpio/internal/obs/audit"
	"scorpio/internal/ring"
	"scorpio/internal/sim"
	"scorpio/internal/stats"
)

// Agent is the tile-side consumer of delivered packets (an L2 cache
// controller or a memory controller). Implementations must expose committed
// state only: a delivery decision made during the NIC's evaluate phase must
// not depend on agent state mutated in the same cycle.
type Agent interface {
	// AcceptOrderedRequest offers the agent the next GO-REQ packet in global
	// order and reports whether the agent consumed it this cycle. arrive is
	// the cycle the packet reached this node's NIC (broadcast packets are
	// shared objects, so per-node timestamps travel out of band).
	AcceptOrderedRequest(p *noc.Packet, arrive, cycle uint64) bool
	// AcceptResponse offers the agent an UO-RESP packet (arrival order) and
	// reports whether the agent consumed it this cycle.
	AcceptResponse(p *noc.Packet, cycle uint64) bool
}

// Config holds NIC parameters.
type Config struct {
	// Ordered enables global ordering of the GO-REQ class via the
	// notification network. The directory baselines of Section 5 run the
	// identical NoC with ordering disabled ("minus the ordered virtual
	// network GO-REQ and notification network"): requests are then unicast
	// or broadcast and delivered in arrival order.
	Ordered bool
	// MaxPendingNotifs bounds unannounced ordered requests (4 on the chip,
	// Table 1: "max 4 pending messages").
	MaxPendingNotifs int
	// TrackerDepth is the notification tracker queue depth in merged
	// vectors; the stop bit is asserted when the queue is nearly full.
	TrackerDepth int
	// InjectQueueDepth bounds each virtual network's agent-side send queue.
	InjectQueueDepth int
	// EjectOccupancy is the number of extra cycles the ejection path stays
	// busy after delivering a packet to the agent; 0 models the fully
	// pipelined NIC of Section 5.3.
	EjectOccupancy int
	// ReqBufDepth is the NIC-internal holding buffer for out-of-order
	// ordered requests ("it will be buffered in the NIC (or router,
	// depending on the buffer availability at NIC)", Section 3.1). Requests
	// drain from the router-facing VC slots into this buffer, freeing
	// network credits while they wait for their global turn.
	ReqBufDepth int
}

// DefaultConfig returns the chip's NIC parameters.
func DefaultConfig() Config {
	return Config{Ordered: true, MaxPendingNotifs: 4, TrackerDepth: 16, InjectQueueDepth: 8, EjectOccupancy: 0, ReqBufDepth: 16}
}

// UnorderedConfig returns the baseline NIC: the same queues with the
// ordering machinery disabled.
func UnorderedConfig() Config {
	c := DefaultConfig()
	c.Ordered = false
	return c
}

// Stats counts NIC activity.
type Stats struct {
	InjectedRequests   uint64
	InjectedResponses  uint64
	DeliveredRequests  uint64
	DeliveredResponses uint64
	SendBlocked        uint64 // SendRequest rejections (notification counter full)
	StoppedResends     uint64 // announcements voided by a stop window
	OrderingLatency    stats.Mean
	NetworkLatency     stats.Mean // injection to NIC arrival, GO-REQ
	ResponseLatency    stats.Mean // injection to delivery, UO-RESP
}

// sidRun is one entry of the expanded ESID sequence: count requests expected
// from source sid.
type sidRun struct {
	sid   int
	count int
}

// reqEntry is one buffered GO-REQ packet with its local arrival cycle.
type reqEntry struct {
	pkt    *noc.Packet
	arrive uint64
}

// respAssembly collects the flits of one in-progress UO-RESP packet.
type respAssembly struct {
	pkt   *noc.Packet
	flits int
}

// meshPort is the NIC's attachment to one main-network mesh: its own
// injection book-keeping and router-facing VC receive slots. The chip has
// one; AddMesh stripes traffic over several (Section 5.3's multiple main
// networks).
type meshPort struct {
	mesh     *noc.Mesh
	tr       *noc.OutputTracker
	reqQ     ring.Ring[*noc.Packet]
	respQ    ring.Ring[*noc.Packet]
	inFlight *noc.Packet
	nextSeq  int
	curVC    int
	lastVNet noc.VNet

	// reqBuf/respVCBuf mirror the router-facing VC slots; the credit protocol
	// bounds their occupancy to the configured buffer depths, so the rings are
	// fixed-capacity. arrivalQ is bounded only by total VC occupancy, so it
	// stays growable (pre-sized to the total GO-REQ slot count).
	reqBuf    []ring.Ring[reqEntry]
	respVCBuf []ring.Ring[noc.Flit]
	respBuf   []respAssembly
	arrivalQ  ring.Ring[int] // unordered mode: VC indexes in arrival order
}

func newMeshPort(cfg noc.Config, injectDepth int, mesh *noc.Mesh) *meshPort {
	p := &meshPort{
		mesh:      mesh,
		tr:        noc.NewOutputTracker(cfg),
		reqQ:      ring.New[*noc.Packet](injectDepth),
		respQ:     ring.New[*noc.Packet](injectDepth),
		reqBuf:    make([]ring.Ring[reqEntry], cfg.TotalVCs(noc.GOReq)),
		respVCBuf: make([]ring.Ring[noc.Flit], cfg.TotalVCs(noc.UOResp)),
		respBuf:   make([]respAssembly, cfg.TotalVCs(noc.UOResp)),
		arrivalQ:  ring.New[int](cfg.TotalVCs(noc.GOReq) * cfg.GOReqBufDepth),
	}
	for i := range p.reqBuf {
		p.reqBuf[i] = ring.NewFixed[reqEntry](cfg.GOReqBufDepth)
	}
	for i := range p.respVCBuf {
		p.respVCBuf[i] = ring.NewFixed[noc.Flit](cfg.UORespBufDepth)
	}
	return p
}

// NIC is one tile's network interface controller.
type NIC struct {
	cfg    Config
	node   int
	ports  []*meshPort
	sendRR int // stripes injected packets across ports
	nnet   *notif.Network
	agent  Agent
	netCfg noc.Config
	ncfg   notif.Config
	ownSID int
	Stats  Stats

	// Send staging (committed into port queues for determinism).
	stagedReq  []*noc.Packet
	stagedResp []*noc.Packet

	// Notification send state.
	unannounced  int // accepted ordered requests not yet announced
	offerCount   int // committed offer for the upcoming window start
	offerStop    bool
	announcedLag int // announcements whose merged vector has not returned yet

	// Receive path.
	reqHold  ring.Ring[reqEntry]    // NIC-internal out-of-order holding buffer
	doneResp ring.Ring[*noc.Packet] // assembled responses awaiting the agent
	loopback ring.Ring[*noc.Packet] // own broadcast requests awaiting own global order
	// Global-order state.
	trackerQ ring.Ring[notif.Vector]
	// vecFree recycles the word buffers of consumed tracker vectors so
	// per-window vector cloning allocates nothing in steady state.
	vecFree      [][]uint64
	order        []sidRun
	orderPos     int
	rrPtr        int
	esidOut      int    // committed ESID visible to routers
	esidSeqOut   uint64 // committed expected source sequence number
	esidValid    bool
	busy         int      // ejection occupancy countdown
	srcSeqNext   uint64   // next sequence number for own ordered requests
	deliveredSeq []uint64 // per source: ordered requests already delivered here

	// tracer is nil unless lifecycle tracing is enabled; every hook site
	// guards on it so the disabled path is one branch. auditor follows the
	// same discipline for the online order/coherence monitor.
	tracer  *obs.Tracer
	auditor *audit.Auditor

	// Activity-driven scheduling state. now is the cycle of the NIC's last
	// Evaluate; Idle() uses it to check the attached links for in-flight
	// values (see sim.Idler — Idle is only consulted for units that executed
	// the just-finished cycle, so now is always current there). notifAct is
	// the notification network's scheduling unit: a NIC with a pending offer
	// wakes it for the next window start so a quiescent OR-mesh still samples
	// the offer.
	now      uint64
	notifAct *sim.Activity
}

// New builds a NIC for the given node and wires it to the two networks. The
// agent may be nil initially and set later with SetAgent (systems with
// circular construction order need this). nnet may be nil when cfg.Ordered
// is false.
func New(node int, cfg Config, mesh *noc.Mesh, nnet *notif.Network, agent Agent) *NIC {
	if cfg.Ordered && nnet == nil {
		panic("nic: ordered mode requires a notification network")
	}
	netCfg := mesh.Config()
	n := &NIC{
		cfg:    cfg,
		node:   node,
		nnet:   nnet,
		agent:  agent,
		netCfg: netCfg,
		ownSID: node,
	}
	n.ports = []*meshPort{newMeshPort(netCfg, cfg.InjectQueueDepth, mesh)}
	n.deliveredSeq = make([]uint64, netCfg.Nodes())
	n.reqHold = ring.NewFixed[reqEntry](cfg.ReqBufDepth)
	n.doneResp = ring.New[*noc.Packet](4)
	n.loopback = ring.New[*noc.Packet](cfg.MaxPendingNotifs)
	n.trackerQ = ring.NewFixed[notif.Vector](cfg.TrackerDepth)
	mesh.AttachESID(node, n)
	if nnet != nil {
		n.ncfg = nnet.Config()
		nnet.AttachSource(node, n)
	}
	return n
}

// AddMesh attaches an additional main network; injected packets stripe
// round-robin across all attached meshes.
func (n *NIC) AddMesh(mesh *noc.Mesh) {
	n.ports = append(n.ports, newMeshPort(n.netCfg, n.cfg.InjectQueueDepth, mesh))
	mesh.AttachESID(n.node, n)
}

// Meshes reports the number of attached main networks.
func (n *NIC) Meshes() int { return len(n.ports) }

// SetAgent attaches the tile-side consumer.
func (n *NIC) SetAgent(a Agent) { n.agent = a }

// SetTracer attaches a lifecycle event tracer (nil disables tracing).
func (n *NIC) SetTracer(t *obs.Tracer) { n.tracer = t }

// SetAuditor attaches the online auditor (nil disables auditing).
func (n *NIC) SetAuditor(a *audit.Auditor) { n.auditor = a }

// Node returns the NIC's node ID.
func (n *NIC) Node() int { return n.node }

// ExpectedSID implements noc.ESIDProvider with committed state.
func (n *NIC) ExpectedSID() (int, uint64, bool) { return n.esidOut, n.esidSeqOut, n.esidValid }

// NotificationOffer implements notif.Source with committed state.
func (n *NIC) NotificationOffer() (int, bool) { return n.offerCount, n.offerStop }

// queuedReqs counts requests staged or queued across all ports.
func (n *NIC) queuedReqs() int {
	total := len(n.stagedReq)
	for _, p := range n.ports {
		total += p.reqQ.Len()
	}
	return total
}

func (n *NIC) queuedResps() int {
	total := len(n.stagedResp)
	for _, p := range n.ports {
		total += p.respQ.Len()
	}
	return total
}

// SendRequest enqueues a request-class packet for injection. In ordered
// mode it must be a single-flit GO-REQ broadcast and is announced on the
// notification network; in unordered (baseline) mode unicast requests are
// also allowed and no announcement happens. It reports false when the
// notification counter or the send queue is full; the agent retries later.
func (n *NIC) SendRequest(p *noc.Packet) bool {
	if p.VNet != noc.GOReq || p.Flits != 1 {
		panic(fmt.Sprintf("nic: SendRequest wants a single-flit GO-REQ packet, got %s", p))
	}
	if n.cfg.Ordered && !p.Broadcast {
		panic(fmt.Sprintf("nic: ordered requests must be broadcast, got %s", p))
	}
	if p.SID != n.ownSID {
		panic(fmt.Sprintf("nic: node %d injecting SID %d", n.node, p.SID))
	}
	if !n.cfg.Ordered {
		if n.queuedReqs() >= n.cfg.InjectQueueDepth {
			n.Stats.SendBlocked++
			return false
		}
		n.stagedReq = append(n.stagedReq, p)
		return true
	}
	if n.unannounced+len(n.stagedReq) >= n.cfg.MaxPendingNotifs || n.queuedReqs() >= n.cfg.InjectQueueDepth {
		n.Stats.SendBlocked++
		return false
	}
	p.SrcSeq = n.srcSeqNext
	n.srcSeqNext++
	n.stagedReq = append(n.stagedReq, p)
	return true
}

// SendResponse enqueues an unordered response for injection. It reports
// false when the send queue is full.
func (n *NIC) SendResponse(p *noc.Packet) bool {
	if p.VNet != noc.UOResp || p.Broadcast {
		panic(fmt.Sprintf("nic: SendResponse wants a unicast UO-RESP packet, got %s", p))
	}
	if n.queuedResps() >= n.cfg.InjectQueueDepth {
		return false
	}
	n.stagedResp = append(n.stagedResp, p)
	return true
}

// BindActivity wires the NIC's scheduling unit as the wake target of its
// attached links: inject-link credits and eject-link flits both wake it.
// Call after every AddMesh.
func (n *NIC) BindActivity(a *sim.Activity) {
	for _, port := range n.ports {
		port.mesh.InjectLink(n.node).SetCreditWake(a)
		port.mesh.EjectLink(n.node).SetFlitWake(a)
	}
}

// SetNotifActivity wires the notification network's scheduling unit so a NIC
// holding a pending offer (or stop bit) can wake it for the window start
// where the OR-mesh samples the offer.
func (n *NIC) SetNotifActivity(a *sim.Activity) { n.notifAct = a }

// Evaluate runs one NIC cycle.
func (n *NIC) Evaluate(cycle uint64) {
	n.now = cycle
	for _, port := range n.ports {
		for _, c := range port.mesh.InjectLink(n.node).Credits(cycle) {
			port.tr.ProcessCredit(c)
		}
	}
	if n.cfg.Ordered {
		n.processNotifications(cycle)
	}
	n.receive(cycle)
	n.deliver(cycle)
	for _, port := range n.ports {
		n.inject(port, cycle)
	}
}

// Commit latches staged sends (striping them across the attached meshes)
// and the registered outputs other components sample (ESID for routers, the
// notification offer for the OR-mesh).
func (n *NIC) Commit(cycle uint64) {
	for _, p := range n.stagedReq {
		port := n.ports[n.sendRR%len(n.ports)]
		n.sendRR++
		port.reqQ.Push(p)
		if n.cfg.Ordered {
			n.loopback.Push(p)
			n.unannounced++
		}
	}
	n.stagedReq = n.stagedReq[:0]
	for _, p := range n.stagedResp {
		port := n.ports[n.sendRR%len(n.ports)]
		n.sendRR++
		port.respQ.Push(p)
	}
	n.stagedResp = n.stagedResp[:0]
	// Registered ESID output: the exact (SID, sequence) occurrence expected.
	n.esidValid = n.orderActive()
	if n.esidValid {
		n.esidOut = n.order[n.orderPos].sid
		n.esidSeqOut = n.deliveredSeq[n.esidOut]
	}
	// Registered notification offer for the next window start. The vector
	// being expanded into ESIDs still occupies a slot, so it counts toward
	// the nearly-full threshold that asserts the stop bit.
	occupancy := n.trackerQ.Len()
	if n.orderActive() {
		occupancy++
	}
	stop := occupancy >= n.cfg.TrackerDepth-1
	count := 0
	if !stop {
		count = n.unannounced
		if m := n.ncfg.MaxPerWindow(); count > m {
			count = m
		}
	}
	n.offerCount, n.offerStop = count, stop
	// The OR-mesh samples this offer at the next window start; make sure the
	// notification network is awake to latch it even if every other source
	// is quiet.
	if n.cfg.Ordered && (count > 0 || stop) {
		w := uint64(n.ncfg.Window())
		n.notifAct.Wake((cycle/w+1)*w, sim.WakeNotif)
	}
}

// Idle implements sim.Idler: the NIC may be skipped while it holds no
// packets, owes no notification work, and no value is in flight on its
// links. Each term is load-bearing — unannounced/offer state means a window
// start must run here; announcedLag means a merged vector is due back;
// orderActive means ESID delivery is in progress; busy is the ejection
// occupancy countdown; the link checks catch values committed this cycle
// that arrive next cycle (the wake edge was dropped because this unit was
// still active when the sender called Wake).
func (n *NIC) Idle() bool {
	if n.busy > 0 || n.orderActive() || n.trackerQ.Len() > 0 {
		return false
	}
	if n.unannounced > 0 || n.announcedLag > 0 || n.offerCount > 0 || n.offerStop {
		return false
	}
	if n.HasPendingWork() {
		return false
	}
	if n.cfg.Ordered {
		// A merged vector is readable exactly one cycle after a window
		// delivers; every NIC must run that cycle to expand its ESID
		// sequence. The OR-mesh's delivery wake is edge-triggered and was
		// dropped if this unit was still active when it fired, so the
		// committed delivery flag must be re-checked here.
		if _, ok := n.nnet.Delivered(); ok {
			return false
		}
	}
	for _, port := range n.ports {
		if port.mesh.EjectLink(n.node).FlitPendingAt(n.now) {
			return false
		}
		if port.mesh.InjectLink(n.node).CreditsPendingAt(n.now) {
			return false
		}
	}
	return true
}

// orderActive reports whether an ESID sequence is being consumed.
func (n *NIC) orderActive() bool { return n.orderPos < len(n.order) }

// processNotifications handles window boundaries: consuming the merged
// vector of the window that just ended and accounting for the offer the
// OR-mesh samples at the window starting now.
func (n *NIC) processNotifications(cycle uint64) {
	if v, ok := n.nnet.Delivered(); ok {
		if v.Stop {
			// The whole window is voided; re-arm our own announcements.
			n.unannounced += n.announcedLag
			if n.announcedLag > 0 {
				n.Stats.StoppedResends += uint64(n.announcedLag)
			}
			n.announcedLag = 0
		} else {
			if n.trackerQ.Len() >= n.cfg.TrackerDepth {
				panic(fmt.Sprintf("nic: node %d notification tracker overflow", n.node))
			}
			n.trackerQ.Push(n.cloneVector(v))
			n.announcedLag = 0
		}
	}
	if n.nnet.WindowStart(cycle) {
		// Our committed offer is being sampled by the OR-mesh right now.
		n.unannounced -= n.offerCount
		if n.unannounced < 0 {
			panic("nic: announced more requests than pending")
		}
		if n.tracer != nil && n.offerCount > 0 {
			n.tracer.Record(obs.Event{
				Cycle: cycle, Type: obs.EvNotifSend, Node: int32(n.node),
				Src: int32(n.node), Arg: uint64(n.offerCount),
				Port: -1, VNet: -1, VC: -1,
			})
		}
		n.announcedLag = n.offerCount
	}
	// Expand the next vector once the current ESID sequence is exhausted.
	// The rotating-priority scan (fairness across windows, Section 3.1) walks
	// sid rrPtr..N-1 then 0..rrPtr-1; NextFrom skips zero words whole, so the
	// expansion costs O(announcing cores + words), not O(nodes).
	if !n.orderActive() && !n.trackerQ.Empty() {
		v := n.trackerQ.PopFront()
		n.order = n.order[:0]
		for sid, c := v.NextFrom(n.rrPtr); sid >= 0; sid, c = v.NextFrom(sid + 1) {
			n.order = append(n.order, sidRun{sid: sid, count: c})
		}
		for sid, c := v.NextFrom(0); sid >= 0 && sid < n.rrPtr; sid, c = v.NextFrom(sid + 1) {
			n.order = append(n.order, sidRun{sid: sid, count: c})
		}
		n.vecFree = append(n.vecFree, v.Words)
		n.orderPos = 0
		n.rrPtr = (n.rrPtr + 1) % n.ncfg.Nodes()
	}
}

// cloneVector copies a delivered notification vector into a recycled word
// buffer (the delivery is only valid for one cycle; the tracker queue needs
// its own copy).
func (n *NIC) cloneVector(v notif.Vector) notif.Vector {
	var words []uint64
	if k := len(n.vecFree); k > 0 {
		words = n.vecFree[k-1]
		n.vecFree[k-1] = nil
		n.vecFree = n.vecFree[:k-1]
	}
	return v.CloneUsing(words)
}

// receive buffers flits arriving from every port's local output port and,
// unless the ejection path is busy, drains response flits into the packet
// assembly registers (returning their credits).
func (n *NIC) receive(cycle uint64) {
	for _, port := range n.ports {
		ej := port.mesh.EjectLink(n.node)
		if f := ej.Flit(cycle); f != nil {
			switch f.Pkt.VNet {
			case noc.GOReq:
				vc := f.InVC()
				if port.reqBuf[vc].Len() >= n.netCfg.GOReqBufDepth {
					panic(fmt.Sprintf("nic: node %d GO-REQ VC %d overflow", n.node, vc))
				}
				n.Stats.NetworkLatency.Observe(float64(cycle - f.Pkt.NetworkEntry))
				if n.tracer != nil {
					n.tracer.Record(obs.Event{
						Cycle: cycle, Type: obs.EvNetArrive, Node: int32(n.node),
						Src: int32(f.Pkt.Src), Pkt: f.Pkt.ID,
						Port: -1, VNet: int8(noc.GOReq), VC: int16(vc),
					})
				}
				if n.auditor != nil {
					n.auditor.Arrive(n.node, f.Pkt.ID, f.Pkt.Src)
				}
				// The entry carries the packet; the link mailbox flit is done.
				port.reqBuf[vc].Push(reqEntry{pkt: f.Pkt, arrive: cycle})
				if !n.cfg.Ordered {
					port.arrivalQ.Push(vc)
				}
			case noc.UOResp:
				// Copy the flit value out of the link mailbox: the slot is
				// rewritten next cycle, but assembly may drain this VC later.
				port.respVCBuf[f.InVC()].Push(*f)
			}
		}
		// Drain ordered requests from the VC slots into the NIC holding
		// buffer, returning their network credits (ordered mode only; the
		// unordered baselines deliver straight from the VC slots).
		if n.cfg.Ordered {
			for vc := range port.reqBuf {
				if !port.reqBuf[vc].Empty() && n.reqHold.Len() < n.cfg.ReqBufDepth {
					n.reqHold.Push(port.reqBuf[vc].PopFront())
					ej.SendCredit(noc.Credit{VNet: noc.GOReq, VC: vc, FreeVC: true}, cycle)
				}
			}
		}
		if n.busy > 0 {
			continue
		}
		// Drain buffered response flits (one read port per VC).
		for vc := range port.respVCBuf {
			if port.respVCBuf[vc].Empty() {
				continue
			}
			f := port.respVCBuf[vc].PopFront()
			ej.SendCredit(noc.Credit{VNet: noc.UOResp, VC: vc, FreeVC: f.IsTail()}, cycle)
			as := &port.respBuf[vc]
			if as.pkt == nil {
				as.pkt = f.Pkt
			}
			as.flits++
			if f.IsTail() {
				if as.flits != f.Pkt.Flits {
					panic(fmt.Sprintf("nic: node %d UO-RESP packet %s assembled %d/%d flits", n.node, f.Pkt, as.flits, f.Pkt.Flits))
				}
				f.Pkt.ArriveCycle = cycle
				if n.tracer != nil {
					n.tracer.Record(obs.Event{
						Cycle: cycle, Type: obs.EvNetArrive, Node: int32(n.node),
						Src: int32(f.Pkt.Src), Pkt: f.Pkt.ID,
						Port: -1, VNet: int8(noc.UOResp), VC: int16(vc),
					})
				}
				n.doneResp.Push(f.Pkt)
				as.pkt = nil
				as.flits = 0
			}
		}
	}
}

// deliver forwards packets to the agent: one request-class packet on the
// snoop channel (AC) and, independently, one assembled response on the data
// channels — the AMBA ACE interface of Figure 4 carries them in parallel.
func (n *NIC) deliver(cycle uint64) {
	if n.busy > 0 {
		n.busy--
		return
	}
	if n.agent == nil {
		return
	}
	delivered := false
	// Unordered (baseline) mode: requests flow in arrival order per port.
	if !n.cfg.Ordered {
		for _, port := range n.ports {
			if port.arrivalQ.Empty() {
				continue
			}
			vc := port.arrivalQ.Front()
			e := port.reqBuf[vc].Front()
			if n.agent.AcceptOrderedRequest(e.pkt, e.arrive, cycle) {
				port.arrivalQ.PopFront()
				port.reqBuf[vc].PopFront()
				port.mesh.EjectLink(n.node).SendCredit(noc.Credit{VNet: noc.GOReq, VC: vc, FreeVC: true}, cycle)
				n.Stats.DeliveredRequests++
				if n.tracer != nil {
					n.tracer.Record(obs.Event{
						Cycle: cycle, Type: obs.EvSink, Node: int32(n.node),
						Src: int32(e.pkt.Src), Pkt: e.pkt.ID,
						Port: -1, VNet: int8(noc.GOReq), VC: -1,
					})
				}
				if n.auditor != nil {
					n.auditor.Sink(n.node, e.pkt.ID, false)
				}
				delivered = true
			}
			break
		}
	}
	// Ordered mode: only the globally expected request may pass.
	if n.cfg.Ordered && n.orderActive() {
		run := &n.order[n.orderPos]
		if p, arrive, ok := n.expectedPacket(run.sid); ok {
			if n.agent.AcceptOrderedRequest(p, arrive, cycle) {
				n.consumeExpected(run.sid, cycle)
				if n.tracer != nil {
					n.tracer.Record(obs.Event{
						Cycle: cycle, Type: obs.EvOrderCommit, Node: int32(n.node),
						Src: int32(p.Src), Pkt: p.ID, Arg: n.deliveredSeq[run.sid],
						Port: -1, VNet: int8(noc.GOReq), VC: -1,
					})
					n.tracer.Record(obs.Event{
						Cycle: cycle, Type: obs.EvSink, Node: int32(n.node),
						Src: int32(p.Src), Pkt: p.ID,
						Port: -1, VNet: int8(noc.GOReq), VC: -1,
					})
				}
				if n.auditor != nil {
					n.auditor.OrderCommit(n.node, p.ID, p.Src, cycle)
					n.auditor.Sink(n.node, p.ID, true)
				}
				n.deliveredSeq[run.sid]++
				n.Stats.DeliveredRequests++
				n.Stats.OrderingLatency.Observe(float64(cycle - arrive))
				run.count--
				if run.count == 0 {
					n.orderPos++
				}
				delivered = true
			}
		}
	}
	// Assembled responses flow on the parallel data channels.
	if !n.doneResp.Empty() {
		p := n.doneResp.Front()
		if n.agent.AcceptResponse(p, cycle) {
			n.doneResp.PopFront()
			n.Stats.DeliveredResponses++
			n.Stats.ResponseLatency.Observe(float64(cycle - p.InjectCycle))
			if n.tracer != nil {
				n.tracer.Record(obs.Event{
					Cycle: cycle, Type: obs.EvSink, Node: int32(n.node),
					Src: int32(p.Src), Pkt: p.ID,
					Port: -1, VNet: int8(noc.UOResp), VC: -1,
				})
			}
			if n.auditor != nil {
				n.auditor.Sink(n.node, p.ID, false)
			}
			delivered = true
		}
	}
	if delivered {
		n.busy = n.cfg.EjectOccupancy
	}
}

// expectedPacket finds the exact (SID, sequence) occurrence the global order
// expects, searching the loopback queue (own requests), the holding buffer,
// and the router-facing VC slots of every port.
func (n *NIC) expectedPacket(sid int) (*noc.Packet, uint64, bool) {
	seq := n.deliveredSeq[sid]
	if sid == n.ownSID {
		if !n.loopback.Empty() && n.loopback.Front().SrcSeq == seq {
			p := n.loopback.Front()
			return p, p.InjectCycle, true
		}
		return nil, 0, false
	}
	for i := 0; i < n.reqHold.Len(); i++ {
		e := n.reqHold.At(i)
		if e.pkt.SID == sid && e.pkt.SrcSeq == seq {
			return e.pkt, e.arrive, true
		}
	}
	for _, port := range n.ports {
		for vc := range port.reqBuf {
			buf := &port.reqBuf[vc]
			if !buf.Empty() && buf.Front().pkt.SID == sid && buf.Front().pkt.SrcSeq == seq {
				return buf.Front().pkt, buf.Front().arrive, true
			}
		}
	}
	return nil, 0, false
}

// consumeExpected removes the delivered packet from its buffer, returning a
// credit to the router when it still occupied a VC slot.
func (n *NIC) consumeExpected(sid int, cycle uint64) {
	seq := n.deliveredSeq[sid]
	if sid == n.ownSID {
		n.loopback.PopFront()
		return
	}
	for i := 0; i < n.reqHold.Len(); i++ {
		e := n.reqHold.At(i)
		if e.pkt.SID == sid && e.pkt.SrcSeq == seq {
			n.reqHold.RemoveAt(i)
			return
		}
	}
	for _, port := range n.ports {
		for vc := range port.reqBuf {
			buf := &port.reqBuf[vc]
			if !buf.Empty() && buf.Front().pkt.SID == sid && buf.Front().pkt.SrcSeq == seq {
				buf.PopFront()
				port.mesh.EjectLink(n.node).SendCredit(noc.Credit{VNet: noc.GOReq, VC: vc, FreeVC: true}, cycle)
				return
			}
		}
	}
	panic("nic: consumeExpected called without a buffered packet")
}

// inject serializes at most one flit per cycle into one port's router,
// alternating between the two virtual networks when both have traffic.
func (n *NIC) inject(port *meshPort, cycle uint64) {
	if port.inFlight != nil {
		n.continueInjection(port, cycle)
		return
	}
	first, second := noc.GOReq, noc.UOResp
	if port.lastVNet == noc.GOReq {
		first, second = noc.UOResp, noc.GOReq
	}
	if n.startInjection(port, first, cycle) {
		port.lastVNet = first
		return
	}
	if n.startInjection(port, second, cycle) {
		port.lastVNet = second
	}
}

// startInjection tries to begin serializing the head packet of a queue.
func (n *NIC) startInjection(port *meshPort, v noc.VNet, cycle uint64) bool {
	q := &port.reqQ
	if v != noc.GOReq {
		q = &port.respQ
	}
	if q.Empty() {
		return false
	}
	p := q.Front()
	rvcOK := false
	if v == noc.GOReq && n.cfg.Ordered {
		// A fresh broadcast covers every node but this one.
		rvcOK = port.mesh.Expecting(p.SID, p.SrcSeq, n.node)
	}
	vc, ok := port.tr.AllocHeadVC(v, p.SID, rvcOK)
	if !ok {
		return false
	}
	port.tr.ClaimHeadVC(v, vc, p.SID)
	port.curVC = vc
	p.NetworkEntry = cycle
	if n.tracer != nil {
		n.tracer.Record(obs.Event{
			Cycle: cycle, Type: obs.EvInject, Node: int32(n.node),
			Src: int32(p.Src), Pkt: p.ID, Arg: uint64(p.Flits),
			Port: -1, VNet: int8(v), VC: int16(vc),
		})
	}
	port.mesh.InjectLink(n.node).Send(noc.NewFlit(p, 0, vc), cycle)
	if p.Flits == 1 {
		n.finishInjection(port, v)
	} else {
		port.inFlight = p
		port.nextSeq = 1
	}
	return true
}

// continueInjection sends the next body flit of the in-flight packet.
func (n *NIC) continueInjection(port *meshPort, cycle uint64) {
	p := port.inFlight
	if !port.tr.CanSendBody(p.VNet, port.curVC) {
		return
	}
	port.tr.ChargeBody(p.VNet, port.curVC)
	port.mesh.InjectLink(n.node).Send(noc.NewFlit(p, port.nextSeq, port.curVC), cycle)
	port.nextSeq++
	if port.nextSeq == p.Flits {
		port.inFlight = nil
		n.finishInjection(port, p.VNet)
	}
}

// finishInjection pops the fully serialized packet off its queue.
func (n *NIC) finishInjection(port *meshPort, v noc.VNet) {
	if v == noc.GOReq {
		port.reqQ.PopFront()
		n.Stats.InjectedRequests++
	} else {
		port.respQ.PopFront()
		n.Stats.InjectedResponses++
	}
}

// HasPendingWork reports whether the NIC holds any packet that has not yet
// reached its agent: queued or in-flight sends, out-of-order held requests,
// loopback copies, or assembled responses. The watchdog combines it with
// router buffer occupancy to distinguish a stall from quiescence (an
// ordering deadlock can leave the mesh empty while requests rot in NIC
// buffers).
func (n *NIC) HasPendingWork() bool {
	if n.reqHold.Len() > 0 || n.loopback.Len() > 0 || n.doneResp.Len() > 0 {
		return true
	}
	if len(n.stagedReq) > 0 || len(n.stagedResp) > 0 {
		return true
	}
	for _, port := range n.ports {
		if port.reqQ.Len() > 0 || port.respQ.Len() > 0 || port.inFlight != nil || port.arrivalQ.Len() > 0 {
			return true
		}
		for vc := range port.reqBuf {
			if port.reqBuf[vc].Len() > 0 {
				return true
			}
		}
		for vc := range port.respVCBuf {
			if port.respVCBuf[vc].Len() > 0 {
				return true
			}
		}
	}
	return false
}

// OrderingSnapshot renders the NIC's global-order state for watchdog dumps:
// the committed ESID, the active ESID run, tracker/holding-buffer occupancy
// and the per-source delivered sequence front.
func (n *NIC) OrderingSnapshot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nic %d:", n.node)
	if n.esidValid {
		fmt.Fprintf(&b, " expecting sid=%d seq=%d", n.esidOut, n.esidSeqOut)
	} else {
		b.WriteString(" no active ESID sequence")
	}
	if n.orderActive() {
		run := n.order[n.orderPos]
		fmt.Fprintf(&b, " (run %d/%d: sid=%d count=%d)", n.orderPos, len(n.order), run.sid, run.count)
	}
	fmt.Fprintf(&b, " trackerQ=%d reqHold=%d loopback=%d doneResp=%d unannounced=%d announcedLag=%d",
		n.trackerQ.Len(), n.reqHold.Len(), n.loopback.Len(), n.doneResp.Len(), n.unannounced, n.announcedLag)
	for i := 0; i < n.reqHold.Len(); i++ {
		e := n.reqHold.At(i)
		fmt.Fprintf(&b, "\n  held: %s srcSeq=%d arrived@%d", e.pkt, e.pkt.SrcSeq, e.arrive)
	}
	return b.String()
}

// PendingNotifications exposes the unannounced counter (for tests).
func (n *NIC) PendingNotifications() int { return n.unannounced + len(n.stagedReq) }

// TrackerOccupancy exposes the notification tracker queue depth (for tests).
func (n *NIC) TrackerOccupancy() int { return n.trackerQ.Len() }
