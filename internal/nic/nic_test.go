package nic

import (
	"testing"

	"scorpio/internal/noc"
	"scorpio/internal/notif"
	"scorpio/internal/sim"
)

// delivery records one ordered delivery observed by a test agent.
type delivery struct {
	sid int
	id  uint64
}

// testAgent records deliveries and injects a scripted stream of broadcast
// requests through its NIC.
type testAgent struct {
	nic      *NIC
	node     int
	toSend   int
	sent     int
	ordered  []delivery
	resps    []uint64
	every    int // try to inject every `every` cycles (1 = every cycle)
	readyGap int // agent refuses deliveries for readyGap-1 of every readyGap cycles
	mesh     *noc.Mesh
}

func (a *testAgent) AcceptOrderedRequest(p *noc.Packet, arrive, cycle uint64) bool {
	if a.readyGap > 1 && cycle%uint64(a.readyGap) != 0 {
		return false
	}
	a.ordered = append(a.ordered, delivery{sid: p.SID, id: p.ID})
	return true
}

func (a *testAgent) AcceptResponse(p *noc.Packet, cycle uint64) bool {
	a.resps = append(a.resps, p.ID)
	return true
}

func (a *testAgent) Evaluate(cycle uint64) {
	if a.sent >= a.toSend {
		return
	}
	if a.every > 1 && cycle%uint64(a.every) != 0 {
		return
	}
	p := &noc.Packet{
		ID:          a.mesh.NextPacketID(),
		VNet:        noc.GOReq,
		Src:         a.node,
		SID:         a.node,
		Broadcast:   true,
		Flits:       1,
		InjectCycle: cycle,
	}
	if a.nic.SendRequest(p) {
		a.sent++
	}
}

func (a *testAgent) Commit(cycle uint64) {}

type harness struct {
	k      *sim.Kernel
	mesh   *noc.Mesh
	nnet   *notif.Network
	nics   []*NIC
	agents []*testAgent
}

func newHarness(t *testing.T, w, h int, nicCfg Config, notifBits int) *harness {
	return newHarnessPerNode(t, w, h, func(int) Config { return nicCfg }, notifBits)
}

func newHarnessPerNode(t *testing.T, w, h int, cfgFor func(node int) Config, notifBits int) *harness {
	t.Helper()
	netCfg := noc.DefaultConfig()
	netCfg.Width, netCfg.Height = w, h
	mesh, err := noc.NewMesh(netCfg)
	if err != nil {
		t.Fatal(err)
	}
	nnet, err := notif.NewNetwork(notif.Config{Width: w, Height: h, BitsPerCore: notifBits})
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	hn := &harness{k: k, mesh: mesh, nnet: nnet}
	for node := 0; node < netCfg.Nodes(); node++ {
		ag := &testAgent{node: node, mesh: mesh, every: 1}
		n := New(node, cfgFor(node), mesh, nnet, ag)
		ag.nic = n
		hn.nics = append(hn.nics, n)
		hn.agents = append(hn.agents, ag)
		// Mirror the real assembly (core.NewOrderedNet): the agent and NIC
		// share a scheduling unit, and the unit is woken by link traffic and
		// notification deliveries.
		act := k.RegisterGroup(node, ag)
		k.RegisterGroup(node, n)
		n.BindActivity(act)
		nnet.SetSourceActivity(node, act)
	}
	mesh.Register(k)
	nnetAct := k.Register(nnet)
	for _, n := range hn.nics {
		n.SetNotifActivity(nnetAct)
	}
	return hn
}

func (h *harness) totalDelivered() int {
	n := 0
	for _, a := range h.agents {
		n += len(a.ordered)
	}
	return n
}

func (h *harness) runUntilDelivered(t *testing.T, want, limit int) {
	t.Helper()
	if !h.k.RunUntil(func() bool { return h.totalDelivered() == want }, uint64(limit)) {
		t.Fatalf("delivered %d/%d ordered requests within %d cycles", h.totalDelivered(), want, limit)
	}
}

// assertGlobalOrder checks the central SCORPIO invariant: every node
// observed the identical sequence of ordered requests.
func assertGlobalOrder(t *testing.T, agents []*testAgent) {
	t.Helper()
	ref := agents[0].ordered
	for i, a := range agents[1:] {
		if len(a.ordered) != len(ref) {
			t.Fatalf("node %d delivered %d requests, node 0 delivered %d", i+1, len(a.ordered), len(ref))
		}
		for j := range ref {
			if a.ordered[j] != ref[j] {
				t.Fatalf("global order diverged at position %d: node 0 saw %+v, node %d saw %+v", j, ref[j], i+1, a.ordered[j])
			}
		}
	}
}

func TestSingleRequestOrderedEverywhere(t *testing.T) {
	h := newHarness(t, 4, 4, DefaultConfig(), 1)
	h.agents[5].toSend = 1
	h.runUntilDelivered(t, 16, 2000)
	assertGlobalOrder(t, h.agents)
	if h.agents[0].ordered[0].sid != 5 {
		t.Fatalf("ordered SID = %d, want 5", h.agents[0].ordered[0].sid)
	}
	// The sender's own copy must be delivered too (loopback).
	if len(h.agents[5].ordered) != 1 {
		t.Fatal("source did not process its own request")
	}
}

func TestConcurrentRequestsConsistentGlobalOrder(t *testing.T) {
	h := newHarness(t, 4, 4, DefaultConfig(), 1)
	for _, a := range h.agents {
		a.toSend = 5
	}
	want := 16 * 5 * 16 // every node delivers every request
	h.runUntilDelivered(t, want, 60000)
	assertGlobalOrder(t, h.agents)
}

func TestPerSourceFIFOWithinGlobalOrder(t *testing.T) {
	h := newHarness(t, 4, 4, DefaultConfig(), 1)
	for _, a := range h.agents {
		a.toSend = 8
	}
	h.runUntilDelivered(t, 16*8*16, 100000)
	assertGlobalOrder(t, h.agents)
	// Within node 0's observed sequence, each source's packets appear in
	// increasing packet-ID (injection) order.
	last := map[int]uint64{}
	for _, d := range h.agents[0].ordered {
		if prev, ok := last[d.sid]; ok && d.id <= prev {
			t.Fatalf("source %d packets reordered: %d after %d", d.sid, d.id, prev)
		}
		last[d.sid] = d.id
	}
}

func TestSlowAgentsStillAgreeOnOrder(t *testing.T) {
	h := newHarness(t, 4, 4, DefaultConfig(), 2)
	for i, a := range h.agents {
		a.toSend = 4
		a.readyGap = 1 + i%4 // heterogeneous consumption rates
	}
	h.runUntilDelivered(t, 16*4*16, 200000)
	assertGlobalOrder(t, h.agents)
}

func TestNotificationCounterBlocksBursts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPendingNotifs = 2
	h := newHarness(t, 4, 4, cfg, 1)
	h.agents[0].toSend = 10
	h.runUntilDelivered(t, 10*16, 30000)
	assertGlobalOrder(t, h.agents)
	if h.nics[0].Stats.SendBlocked == 0 {
		t.Fatal("a 10-request burst with MaxPendingNotifs=2 must block at least once")
	}
}

func TestStopBitBackpressureLosesNothing(t *testing.T) {
	// Node 0 has a tiny tracker queue and a very slow agent: it keeps its
	// tracker occupied and stops the fleet while the fast nodes keep
	// announcing — their announcements get voided and must be resent.
	h := newHarnessPerNode(t, 4, 4, func(node int) Config {
		cfg := DefaultConfig()
		if node == 0 {
			cfg.TrackerDepth = 2
		} else {
			cfg.TrackerDepth = 64
		}
		return cfg
	}, 2)
	for i, a := range h.agents {
		if i != 0 {
			a.toSend = 6
			a.every = 25 // spread injections so announcements overlap stops
		}
	}
	h.agents[0].readyGap = 12
	h.runUntilDelivered(t, 15*6*16, 400000)
	assertGlobalOrder(t, h.agents)
	stopped := false
	for _, n := range h.nics {
		if n.Stats.StoppedResends > 0 {
			stopped = true
		}
	}
	if !stopped {
		t.Fatal("expected at least one stop-voided window under tracker pressure")
	}
}

func TestMultiBitNotificationAllowsBurstsPerWindow(t *testing.T) {
	// With 2 bits per core a 3-request burst is announced in one window.
	h2 := newHarness(t, 4, 4, DefaultConfig(), 2)
	h2.agents[3].toSend = 3
	h2.runUntilDelivered(t, 3*16, 4000)
	if got := h2.nnet.WindowsDelivered; got != 1 {
		t.Fatalf("2-bit encoding: burst of 3 used %d windows, want 1", got)
	}
	// With 1 bit per core the same burst needs three windows.
	h1 := newHarness(t, 4, 4, DefaultConfig(), 1)
	h1.agents[3].toSend = 3
	h1.runUntilDelivered(t, 3*16, 4000)
	if got := h1.nnet.WindowsDelivered; got != 3 {
		t.Fatalf("1-bit encoding: burst of 3 used %d windows, want 3", got)
	}
}

func TestResponsesFlowDuringOrderedTraffic(t *testing.T) {
	h := newHarness(t, 4, 4, DefaultConfig(), 1)
	for _, a := range h.agents {
		a.toSend = 2
	}
	resp := &noc.Packet{ID: h.mesh.NextPacketID(), VNet: noc.UOResp, Src: 15, Dst: 0, Flits: 3, InjectCycle: 0}
	if !h.nics[15].SendResponse(resp) {
		t.Fatal("SendResponse rejected with empty queue")
	}
	h.runUntilDelivered(t, 16*2*16, 60000)
	if len(h.agents[0].resps) != 1 || h.agents[0].resps[0] != resp.ID {
		t.Fatalf("response not delivered: %v", h.agents[0].resps)
	}
	assertGlobalOrder(t, h.agents)
}

func TestSendRequestValidation(t *testing.T) {
	h := newHarness(t, 4, 4, DefaultConfig(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("unicast GO-REQ must panic")
		}
	}()
	h.nics[0].SendRequest(&noc.Packet{VNet: noc.GOReq, SID: 0, Broadcast: false, Flits: 1})
}

func TestOrderingLatencyIsBounded(t *testing.T) {
	h := newHarness(t, 6, 6, DefaultConfig(), 1)
	h.agents[0].toSend = 1
	h.runUntilDelivered(t, 36, 2000)
	// A single request in an idle network: ordering happens within a couple
	// of notification windows (window = 13 cycles for 6x6).
	for _, n := range h.nics {
		if m := n.Stats.OrderingLatency; m.Count > 0 && m.Value() > 40 {
			t.Fatalf("node %d ordering latency %.1f cycles, want < 40 in an idle mesh", n.Node(), m.Value())
		}
	}
}
