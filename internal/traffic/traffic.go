// Package traffic is the network-only evaluation harness: open-loop
// synthetic traffic patterns driven straight into the main network, in the
// style of the GARNET/DAC-prototype methodology the paper's NoC is built on.
//
// It measures average packet latency and accepted throughput versus offered
// load, which is how Section 5.3's capacity argument is validated: "the
// theoretical throughput of a k×k mesh is 1/k² for broadcasts, reducing from
// 0.027 flits/node/cycle for 36 cores to 0.01 flits/node/cycle for
// 100 cores".
package traffic

import (
	"fmt"

	"scorpio/internal/noc"
	"scorpio/internal/ring"
	"scorpio/internal/sim"
	"scorpio/internal/stats"
)

// Pattern selects the destination distribution.
type Pattern int

// Classic synthetic patterns.
const (
	// UniformRandom sends each packet to a uniformly random other node.
	UniformRandom Pattern = iota
	// BitComplement sends node (x,y) to (W-1-x, H-1-y).
	BitComplement
	// Transpose sends node (x,y) to (y,x).
	Transpose
	// Hotspot sends everything to node 0.
	Hotspot
	// Broadcast sends every packet to all nodes (the coherence-request
	// pattern; saturation ≈ 1/k² flits/node/cycle).
	Broadcast
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case UniformRandom:
		return "uniform-random"
	case BitComplement:
		return "bit-complement"
	case Transpose:
		return "transpose"
	case Hotspot:
		return "hotspot"
	case Broadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Config describes one open-loop run.
type Config struct {
	Net     noc.Config
	Pattern Pattern
	// InjectionRate is offered load in packets per node per cycle.
	InjectionRate float64
	// Flits is the packet length (1 = control, DataPacketFlits() = data).
	Flits int
	// Cycles is the measurement length; the first Cycles/5 are warmup.
	Cycles uint64
	Seed   uint64
	// DisableIdleSkip steps every component every cycle instead of parking
	// idle ones; results are identical either way (A/B validation).
	DisableIdleSkip bool
}

// Result is one run's measurement.
type Result struct {
	Pattern       Pattern
	InjectionRate float64
	// AcceptedRate is delivered packets per node per cycle (tail-received).
	AcceptedRate float64
	// AvgLatency is the mean inject→delivery latency in cycles.
	AvgLatency float64
	// P99Latency approximates the 99th percentile latency.
	P99Latency uint64
	Delivered  uint64
	Offered    uint64
}

// node is the open-loop source/sink at one tile. It recycles its flits and
// (unicast) packets so the harness runs allocation-free in steady state (see
// TestMeshSteadyStateAllocs). Both pools are SHARED across all nodes: a
// packet is freed at its sink but drawn at a (different) source, so per-node
// free lists would drift apart as a random walk and keep allocating forever;
// the shared lists are bounded by the flits/packets in flight. Sharing is
// race-free because the traffic harness always runs the kernel serially
// (Run never calls SetWorkers). Broadcast packets stay heap-allocated: one
// shared object is delivered at every node, so no single sink may recycle it.
type node struct {
	id      int
	cfg     Config
	mesh    *noc.Mesh
	tr      *noc.OutputTracker
	rng     *sim.RNG
	queue   ring.Ring[*noc.Packet]
	cur     *noc.Packet
	seq     int
	vc      int
	warm    uint64
	now     uint64
	issueAt uint64
	lat     *stats.Histogram
	recv    uint64
	offered uint64
	// idDigest folds every delivered packet ID in arrival order (FNV-1a
	// style): an order-and-identity witness the determinism suite compares
	// across worker counts and idle-skip modes.
	idDigest uint64
	pkts     *pktPool
}

// pktPool recycles unicast packets (see the sharing note on node).
type pktPool struct {
	free []*noc.Packet
}

// get draws a recycled packet (zeroed) or allocates one.
func (pp *pktPool) get() *noc.Packet {
	if k := len(pp.free); k > 0 {
		p := pp.free[k-1]
		pp.free[k-1] = nil
		pp.free = pp.free[:k-1]
		*p = noc.Packet{}
		return p
	}
	return &noc.Packet{}
}

// put returns a delivered packet to the pool.
func (pp *pktPool) put(p *noc.Packet) { pp.free = append(pp.free, p) }

func (n *node) ExpectedSID() (int, uint64, bool) { return 0, 0, false }

// armNext presamples the cycle of the next injection attempt by running the
// exact Bernoulli trials per-cycle generation would run, starting at `from`.
// The RNG stream is therefore bit-identical to drawing one trial per cycle,
// while letting a quiet node park until issueAt instead of stepping every
// cycle just to flip a coin.
func (n *node) armNext(from uint64) {
	if n.cfg.InjectionRate <= 0 {
		n.issueAt = sim.NoEvent
		return
	}
	for at := from; ; at++ {
		if n.rng.Bernoulli(n.cfg.InjectionRate) {
			n.issueAt = at
			return
		}
	}
}

// BindActivity wires the node's scheduling unit to its mesh links so flit
// deliveries and credit returns wake a parked node.
func (n *node) BindActivity(a *sim.Activity) {
	n.mesh.InjectLink(n.id).SetCreditWake(a)
	n.mesh.EjectLink(n.id).SetFlitWake(a)
}

// Idle reports whether the node can park: nothing queued or mid-injection,
// and — because link wakes are edge-triggered and dropped while the node is
// active — no committed flit or credit awaiting next-cycle consumption.
func (n *node) Idle() bool {
	if n.cur != nil || !n.queue.Empty() {
		return false
	}
	return !n.mesh.EjectLink(n.id).FlitPendingAt(n.now) &&
		!n.mesh.InjectLink(n.id).CreditsPendingAt(n.now)
}

// NextEventCycle names the presampled injection cycle as the node's wake.
func (n *node) NextEventCycle(cycle uint64) uint64 {
	if n.issueAt <= cycle {
		return cycle + 1
	}
	return n.issueAt
}

// Evaluate generates, injects and sinks packets.
func (n *node) Evaluate(cycle uint64) {
	n.now = cycle
	inj := n.mesh.InjectLink(n.id)
	for _, c := range inj.Credits(cycle) {
		n.tr.ProcessCredit(c)
	}
	// Sink.
	ej := n.mesh.EjectLink(n.id)
	if f := ej.Flit(cycle); f != nil {
		ej.SendCredit(noc.Credit{VNet: f.Pkt.VNet, VC: f.InVC(), FreeVC: f.IsTail()}, cycle)
		if f.IsTail() {
			n.idDigest = (n.idDigest ^ f.Pkt.ID) * 1099511628211
			if cycle >= n.warm {
				n.recv++
				n.lat.Observe(cycle - f.Pkt.InjectCycle)
			}
			if !f.Pkt.Broadcast {
				n.pkts.put(f.Pkt)
			}
		}
	}
	// Open-loop generation: the per-cycle Bernoulli trials are presampled
	// into issueAt (see armNext), preserving the RNG stream exactly.
	if cycle == n.issueAt {
		if dst, bcast, ok := n.destination(); ok {
			vnet := noc.UOResp
			if bcast {
				vnet = noc.GOReq
			}
			p := n.pkts.get()
			// IDs are derived from (cycle, node) instead of a shared counter:
			// unique because a node injects at most one packet per cycle, and
			// free of cross-shard writes when node units run in parallel.
			p.ID, p.VNet, p.Src, p.SID = cycle*uint64(n.cfg.Net.Nodes())+uint64(n.id)+1, vnet, n.id, n.id
			p.Dst, p.Broadcast, p.Flits, p.InjectCycle = dst, bcast, n.cfg.Flits, cycle
			if bcast {
				p.Flits = 1
			}
			n.queue.Push(p)
			if cycle >= n.warm {
				n.offered++
			}
		}
		n.armNext(cycle + 1)
	}
	// Injection, one flit per cycle.
	if n.cur == nil && !n.queue.Empty() {
		p := n.queue.Front()
		if vc, ok := n.tr.AllocHeadVC(p.VNet, p.SID, false); ok {
			n.tr.ClaimHeadVC(p.VNet, vc, p.SID)
			n.vc = vc
			n.cur = p
			n.seq = 0
			n.queue.PopFront()
		}
	}
	if n.cur != nil {
		if n.seq == 0 || n.tr.CanSendBody(n.cur.VNet, n.vc) {
			if n.seq > 0 {
				n.tr.ChargeBody(n.cur.VNet, n.vc)
			}
			inj.Send(noc.NewFlit(n.cur, n.seq, n.vc), cycle)
			n.seq++
			if n.seq == n.cur.Flits {
				n.cur = nil
			}
		}
	}
}

func (n *node) Commit(cycle uint64) {}

// destination picks the pattern's target; ok is false for self-targets
// (skipped).
func (n *node) destination() (int, bool, bool) {
	cfg := n.cfg.Net
	x, y := cfg.Coord(n.id)
	switch n.cfg.Pattern {
	case UniformRandom:
		d := n.rng.Intn(cfg.Nodes())
		if d == n.id {
			return 0, false, false
		}
		return d, false, true
	case BitComplement:
		d := cfg.NodeAt(cfg.Width-1-x, cfg.Height-1-y)
		if d == n.id {
			return 0, false, false
		}
		return d, false, true
	case Transpose:
		if x == y || y >= cfg.Width || x >= cfg.Height {
			return 0, false, false
		}
		return cfg.NodeAt(y, x), false, true
	case Hotspot:
		if n.id == 0 {
			return 0, false, false
		}
		return 0, false, true
	case Broadcast:
		return 0, true, true
	default:
		panic("traffic: unknown pattern")
	}
}

// Run executes one open-loop measurement.
func Run(cfg Config) (Result, error) {
	if cfg.Flits <= 0 {
		cfg.Flits = 1
	}
	if cfg.Cycles == 0 {
		cfg.Cycles = 20000
	}
	mesh, err := noc.NewMesh(cfg.Net)
	if err != nil {
		return Result{}, err
	}
	k := sim.NewKernel()
	rng := sim.NewRNG(cfg.Seed + 1)
	warm := cfg.Cycles / 5
	nodes := make([]*node, cfg.Net.Nodes())
	pkts := &pktPool{}
	for i := range nodes {
		nodes[i] = &node{
			id: i, cfg: cfg, mesh: mesh,
			tr:    noc.NewOutputTracker(cfg.Net),
			rng:   rng.Fork(),
			warm:  warm,
			lat:   stats.NewHistogram(4, 512),
			queue: ring.New[*noc.Packet](8),
			pkts:  pkts,
		}
		nodes[i].armNext(0)
		mesh.AttachESID(i, nodes[i])
		nodes[i].BindActivity(k.Register(nodes[i]))
	}
	mesh.Register(k)
	k.SetIdleSkip(!cfg.DisableIdleSkip)
	k.Run(cfg.Cycles)
	res := Result{Pattern: cfg.Pattern, InjectionRate: cfg.InjectionRate}
	var latSum float64
	var latN uint64
	var p99 uint64
	for _, n := range nodes {
		res.Delivered += n.recv
		res.Offered += n.offered
		latSum += n.lat.Mean() * float64(n.lat.Count())
		latN += n.lat.Count()
		if p := n.lat.Percentile(99); p > p99 {
			p99 = p
		}
	}
	measured := float64(cfg.Cycles - warm)
	// Broadcasts deliver N-1 copies; count packet-equivalents per source.
	div := 1.0
	if cfg.Pattern == Broadcast {
		div = float64(cfg.Net.Nodes() - 1)
	}
	res.AcceptedRate = float64(res.Delivered) / div / float64(cfg.Net.Nodes()) / measured
	if latN > 0 {
		res.AvgLatency = latSum / float64(latN)
	}
	res.P99Latency = p99
	return res, nil
}

// SaturationThroughput sweeps the injection rate upward until accepted
// throughput stops tracking offered load (within slack), returning the last
// stable rate — the measured network capacity.
func SaturationThroughput(net noc.Config, pattern Pattern, flits int, seed uint64) (float64, error) {
	last := 0.0
	for rate := 0.002; rate <= 1.0; rate *= 1.4 {
		res, err := Run(Config{Net: net, Pattern: pattern, InjectionRate: rate, Flits: flits, Cycles: 12000, Seed: seed})
		if err != nil {
			return 0, err
		}
		if float64(res.Delivered) < 0.9*float64(res.Offered) {
			return last, nil
		}
		last = res.AcceptedRate
	}
	return last, nil
}
