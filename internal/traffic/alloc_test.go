package traffic

import (
	"runtime"
	"testing"

	"scorpio/internal/noc"
	"scorpio/internal/obs"
	"scorpio/internal/obs/audit"
	"scorpio/internal/obs/perfmon"
	"scorpio/internal/obs/telemetry"
	"scorpio/internal/ring"
	"scorpio/internal/sim"
	"scorpio/internal/stats"
)

// warmMesh builds a loaded 6×6 mesh and runs it past the pool/ring warmup
// point so a subsequent step window measures the steady-state hot path only.
func warmMesh(t *testing.T) (*sim.Kernel, *noc.Mesh) {
	return warmMeshWorkers(t, 1)
}

// warmMeshWorkers is warmMesh with a kernel worker count; workers > 1 pins
// GOMAXPROCS up for the test so the phase pool picks its concurrent mode
// even on a single-CPU host, and warms the pool before the caller measures.
func warmMeshWorkers(t *testing.T, workers int) (*sim.Kernel, *noc.Mesh) {
	return warmMeshRate(t, workers, 0.05)
}

// warmMeshRate is warmMeshWorkers with an explicit injection rate; near-zero
// rates leave most units parked, exercising the activity engine's wake and
// timing-wheel paths instead of the saturated every-cycle path.
func warmMeshRate(t *testing.T, workers int, rate float64) (*sim.Kernel, *noc.Mesh) {
	return warmMeshSized(t, workers, 6, 6, rate, true)
}

// warmMeshSized is the fully-parameterized builder shared with the
// throughput benchmarks: mesh dimensions, injection rate, and the activity
// engine's on/off switch.
func warmMeshSized(t testing.TB, workers, w, h int, rate float64, idleSkip bool) (*sim.Kernel, *noc.Mesh) {
	t.Helper()
	if workers > 1 {
		old := runtime.GOMAXPROCS(4)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
	netCfg := noc.DefaultConfig()
	netCfg.Width, netCfg.Height = w, h
	cfg := Config{
		Net:           netCfg,
		Pattern:       UniformRandom,
		InjectionRate: rate,
		Flits:         1,
		Seed:          7,
	}
	mesh, err := noc.NewMesh(cfg.Net)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	rng := sim.NewRNG(cfg.Seed + 1)
	nodes := make([]*node, cfg.Net.Nodes())
	for i := range nodes {
		// Packet lists are per node here, unlike traffic.Run's shared list:
		// node units shard across workers in the parallel variants, and a
		// free list may only be touched by its owning unit. Flits need no
		// priming at all — they live in the routers' fixed-capacity arenas
		// and cross links by value.
		nodes[i] = &node{
			id: i, cfg: cfg, mesh: mesh,
			tr:    noc.NewOutputTracker(cfg.Net),
			rng:   rng.Fork(),
			lat:   stats.NewHistogram(4, 512),
			queue: ring.New[*noc.Packet](8),
			pkts:  &pktPool{},
		}
		nodes[i].armNext(0)
		mesh.AttachESID(i, nodes[i])
		nodes[i].BindActivity(k.Register(nodes[i]))
	}
	mesh.Register(k)
	k.SetWorkers(workers)
	k.SetIdleSkip(idleSkip)

	// Prime the packet lists past their steady-state bounds: a list's
	// deficit is capped by in-flight inventory, but the first excursion to
	// each new high-water mark allocates, and those rare record events would
	// otherwise trickle in forever (~2 per 1000 cycles after warmup).
	for _, n := range nodes {
		n.pkts.free = make([]*noc.Packet, 0, 1024)
		for j := 0; j < 512; j++ {
			n.pkts.put(&noc.Packet{})
		}
	}

	// Warm up: rings reach their high-water capacity, credit buffers settle.
	k.Run(4000)
	return k, mesh
}

// TestMeshSteadyStateAllocs pins the allocation-free hot path: after the
// packet free lists and ring buffers warm up, stepping a loaded 6×6 mesh
// must not touch the heap at all. Flits live in the routers' fixed-capacity
// arenas and cross links by value, unicast packets are recycled by the node
// free lists, VC queues and staging queues are fixed rings, and Link.Commit
// swaps its credit buffers — so a steady-state cycle has nothing left to
// allocate. With tracing off (the default), every observability hook
// reduces to a nil pointer check.
func TestMeshSteadyStateAllocs(t *testing.T) {
	k, _ := warmMesh(t)
	allocs := testing.AllocsPerRun(3, func() {
		for i := 0; i < 500; i++ {
			k.Step()
		}
	})
	if allocs != 0 {
		t.Fatalf("warm mesh allocated %.1f times per 500 steps, want 0", allocs)
	}
}

// TestMeshSteadyStateAllocsTracerAttached proves the tracer's record path is
// itself allocation-free: with a lifecycle tracer attached to every router,
// a steady-state step still never touches the heap (events land in the
// preallocated ring, overwriting the oldest once full).
func TestMeshSteadyStateAllocsTracerAttached(t *testing.T) {
	k, mesh := warmMesh(t)
	tr := obs.NewTracer(1 << 14)
	mesh.SetTracer(tr)
	allocs := testing.AllocsPerRun(3, func() {
		for i := 0; i < 500; i++ {
			k.Step()
		}
	})
	if allocs != 0 {
		t.Fatalf("traced warm mesh allocated %.1f times per 500 steps, want 0", allocs)
	}
	if tr.Len() == 0 {
		t.Fatal("tracer recorded no events under load")
	}
}

// TestMeshSteadyStateAllocsAuditorAttached proves the online auditor's check
// path is allocation-free too: its flit-coverage maps are presized and retire
// complete assemblies immediately, so with the auditor verifying every local
// ejection a steady-state step still never touches the heap.
func TestMeshSteadyStateAllocsAuditorAttached(t *testing.T) {
	k, mesh := warmMesh(t)
	a := audit.New(36, audit.Options{}, nil)
	mesh.SetAuditor(a)
	allocs := testing.AllocsPerRun(3, func() {
		for i := 0; i < 500; i++ {
			k.Step()
		}
	})
	if allocs != 0 {
		t.Fatalf("audited warm mesh allocated %.1f times per 500 steps, want 0", allocs)
	}
	if a.FlitsChecked() == 0 {
		t.Fatal("auditor verified no flit deliveries under load")
	}
	if a.Violated() {
		t.Fatalf("healthy synthetic traffic flagged: %s", a.Report())
	}
}

// TestMeshSteadyStateAllocsParallel extends the 0-allocs/step pin to the
// parallel kernel: with the mesh sharded over 4 workers the steady-state
// step must still never touch the heap — the phase pool's barriers are
// atomics, its profiling cycles are two clock reads per unit, and a
// cost-balancing repack reuses buffers sized at pool start.
func TestMeshSteadyStateAllocsParallel(t *testing.T) {
	k, _ := warmMeshWorkers(t, 4)
	allocs := testing.AllocsPerRun(3, func() {
		for i := 0; i < 500; i++ {
			k.Step()
		}
	})
	if allocs != 0 {
		t.Fatalf("parallel warm mesh allocated %.1f times per 500 steps, want 0", allocs)
	}
}

// TestMeshSteadyStateAllocsIdleSkip pins the activity engine's own hot path:
// at a near-idle injection rate most scheduling units are parked most of the
// time, so a step window is dominated by boundary scans, timing-wheel filing
// and draining, demote passes and active-list rebuilds — all of which must
// be allocation-free once the wheel slots and dispatch lists have grown to
// their steady-state capacity.
func TestMeshSteadyStateAllocsIdleSkip(t *testing.T) {
	k, _ := warmMeshRate(t, 1, 0.002)
	if !k.IdleSkip() {
		t.Fatal("idle skip must be on by default")
	}
	active, total := k.ActiveUnits()
	if active >= total {
		t.Fatalf("near-idle mesh has %d/%d units active; the test would not exercise parking", active, total)
	}
	allocs := testing.AllocsPerRun(3, func() {
		for i := 0; i < 500; i++ {
			k.Step()
		}
	})
	if allocs != 0 {
		t.Fatalf("near-idle warm mesh allocated %.1f times per 500 steps, want 0", allocs)
	}
}

// TestMeshSteadyStateAllocsIdleSkipParallel is the sharded version: parking
// and waking under the phase pool must stay allocation-free too (the active
// lists are per-shard index slices reused across rebuilds).
func TestMeshSteadyStateAllocsIdleSkipParallel(t *testing.T) {
	k, _ := warmMeshRate(t, 4, 0.002)
	allocs := testing.AllocsPerRun(3, func() {
		for i := 0; i < 500; i++ {
			k.Step()
		}
	})
	if allocs != 0 {
		t.Fatalf("near-idle parallel warm mesh allocated %.1f times per 500 steps, want 0", allocs)
	}
}

// TestMeshSteadyStateAllocsPerfmonAttached pins the perf monitor's own cost
// model: even at stride 1 (every cycle timestamped — the worst case, far
// denser than the default) a steady-state step never touches the heap. The
// monitor's slots are preallocated at attach; the hot path only reads the
// clock and adds into padded atomics.
func TestMeshSteadyStateAllocsPerfmonAttached(t *testing.T) {
	k, _ := warmMesh(t)
	m := perfmon.New()
	m.Stride = 1
	k.SetPerfMon(m)
	k.Run(100) // settle the attach-triggered engine rebuild
	allocs := testing.AllocsPerRun(3, func() {
		for i := 0; i < 500; i++ {
			k.Step()
		}
	})
	if allocs != 0 {
		t.Fatalf("perfmon-attached warm mesh allocated %.1f times per 500 steps, want 0", allocs)
	}
	if m.Worker(0).Sampled.Load() == 0 {
		t.Fatal("monitor attached but sampled nothing")
	}
}

// TestMeshSteadyStateAllocsPerfmonParallel extends the pin to the phase
// pool's timed paths: sampled epoch waits and barrier timing must stay
// allocation-free under 4 workers too.
func TestMeshSteadyStateAllocsPerfmonParallel(t *testing.T) {
	k, _ := warmMeshWorkers(t, 4)
	m := perfmon.New()
	m.Stride = 1
	k.SetPerfMon(m)
	k.Run(100)
	allocs := testing.AllocsPerRun(3, func() {
		for i := 0; i < 500; i++ {
			k.Step()
		}
	})
	if allocs != 0 {
		t.Fatalf("perfmon-attached parallel warm mesh allocated %.1f times per 500 steps, want 0", allocs)
	}
}

// attachTelemetry installs a telemetry publisher as the kernel's observer,
// the way the system layer's buildObs does: a reused row filled from
// driver-context reads, published into the seqlock page every interval
// cycles, with the deep-snapshot door served every cycle. No SSE client is
// connected — AllocsPerRun counts global mallocs, so a consuming goroutine
// would pollute the measurement; the no-client case is exactly what the
// 0-allocs pin is about (client rendering happens on HTTP goroutines and is
// allowed to allocate).
func attachTelemetry(k *sim.Kernel) *telemetry.Publisher {
	series := []telemetry.Series{
		{Name: "steps", Kind: telemetry.Counter, Help: "observer invocations"},
		{Name: "active_units", Kind: telemetry.Gauge, Help: "unparked scheduling units"},
		{Name: "wheel_pending", Kind: telemetry.Gauge, Help: "timing-wheel residents"},
	}
	pub := telemetry.NewPublisher(series, 64, 0, 0, 0)
	row := make([]float64, len(series))
	steps := 0.0
	k.SetObserver(func(cycle uint64) {
		pub.ServeDeep(cycle)
		steps++
		if pub.Due(cycle) {
			act := k.ActivityCounters()
			active, _ := k.ActiveUnits()
			row[0] = steps
			row[1] = float64(active)
			row[2] = float64(act.WheelPending)
			pub.Publish(cycle, row, nil)
		}
	})
	return pub
}

// TestMeshSteadyStateAllocsTelemetryAttached pins the live exporter's
// driver-side cost: with the publisher sampling every 64 cycles and the
// deep-snapshot door armed, a steady-state step still never touches the heap.
// Publishing is atomic stores into a preallocated page; broadcasting to zero
// clients is one atomic pointer load over an empty list.
func TestMeshSteadyStateAllocsTelemetryAttached(t *testing.T) {
	k, _ := warmMesh(t)
	pub := attachTelemetry(k)
	k.Run(100) // settle the observer-triggered engine rebuild
	allocs := testing.AllocsPerRun(3, func() {
		for i := 0; i < 500; i++ {
			k.Step()
		}
	})
	if allocs != 0 {
		t.Fatalf("telemetry-attached warm mesh allocated %.1f times per 500 steps, want 0", allocs)
	}
	var s telemetry.Snapshot
	if !pub.Read(&s) || s.Tick == 0 {
		t.Fatal("publisher attached but published nothing")
	}
}

// TestMeshSteadyStateAllocsTelemetryParallel extends the pin to the phase
// pool: the observer runs on the driver between barriered epochs, so the
// sharded kernel publishes from a quiesced machine with the same zero heap
// traffic.
func TestMeshSteadyStateAllocsTelemetryParallel(t *testing.T) {
	k, _ := warmMeshWorkers(t, 4)
	pub := attachTelemetry(k)
	k.Run(100)
	allocs := testing.AllocsPerRun(3, func() {
		for i := 0; i < 500; i++ {
			k.Step()
		}
	})
	if allocs != 0 {
		t.Fatalf("telemetry-attached parallel warm mesh allocated %.1f times per 500 steps, want 0", allocs)
	}
	var s telemetry.Snapshot
	if !pub.Read(&s) || s.Tick == 0 {
		t.Fatal("publisher attached but published nothing")
	}
}

// TestMeshSteadyStateAllocsParallelObserved is the full-load version: 4
// workers with both the lifecycle tracer and the online auditor attached,
// still 0 allocs/step.
func TestMeshSteadyStateAllocsParallelObserved(t *testing.T) {
	k, mesh := warmMeshWorkers(t, 4)
	tr := obs.NewTracer(1 << 14)
	mesh.SetTracer(tr)
	a := audit.New(36, audit.Options{}, nil)
	mesh.SetAuditor(a)
	allocs := testing.AllocsPerRun(3, func() {
		for i := 0; i < 500; i++ {
			k.Step()
		}
	})
	if allocs != 0 {
		t.Fatalf("observed parallel warm mesh allocated %.1f times per 500 steps, want 0", allocs)
	}
	if tr.Len() == 0 {
		t.Fatal("tracer recorded no events under load")
	}
	if a.FlitsChecked() == 0 {
		t.Fatal("auditor verified no flit deliveries under load")
	}
	if a.Violated() {
		t.Fatalf("healthy synthetic traffic flagged: %s", a.Report())
	}
}
