package traffic

import (
	"fmt"
	"os"
	"testing"

	"scorpio/internal/noc"
)

// TestTrafficIdleSkipEquivalence pins the open-loop harness's A/B contract:
// parking idle nodes and routers (and fast-forwarding quiescent spans) must
// not change a single measured number at any injection rate, from near-idle
// to saturation.
func TestTrafficIdleSkipEquivalence(t *testing.T) {
	for _, pattern := range []Pattern{UniformRandom, Broadcast} {
		for _, rate := range []float64{0.01, 0.05, 0.30} {
			cfg := Config{
				Net:           noc.DefaultConfig(), // 6×6
				Pattern:       pattern,
				InjectionRate: rate,
				Flits:         1,
				Cycles:        8000,
				Seed:          11,
			}
			ref := mustRun(t, withSkip(cfg, true))
			got := mustRun(t, withSkip(cfg, false))
			if ref != got {
				t.Errorf("%v rate=%.2f diverged:\nskip-off: %+v\nskip-on:  %+v", pattern, rate, ref, got)
			}
			if ref.Delivered == 0 {
				t.Errorf("%v rate=%.2f delivered nothing", pattern, rate)
			}
		}
	}
}

func withSkip(cfg Config, disable bool) Config {
	cfg.DisableIdleSkip = disable
	return cfg
}

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// BenchmarkKernelThroughputIdle is the activity engine's figure of merit:
// kernel stepping speed over a mesh-size × injection-rate grid, with the
// engine on and off. The interesting corners are near-zero load — where
// parked units and fast-forward should buy a large cycles/s multiple — and
// saturation, where the engine must cost nearly nothing because nothing is
// ever idle. cycles/s is the honest metric (ns/op is per simulated cycle).
func BenchmarkKernelThroughputIdle(b *testing.B) {
	for _, m := range []struct{ w, h int }{{6, 6}, {10, 10}} {
		for _, rate := range []float64{0.30, 0.05, 0.01} {
			for _, skip := range []bool{true, false} {
				name := fmt.Sprintf("mesh=%dx%d/rate=%.2f/skip=%v", m.w, m.h, rate, skip)
				b.Run(name, func(b *testing.B) {
					k, _ := warmMeshSized(b, 1, m.w, m.h, rate, skip)
					b.ResetTimer()
					k.Run(uint64(b.N))
					b.StopTimer()
					if secs := b.Elapsed().Seconds(); secs > 0 {
						b.ReportMetric(float64(b.N)/secs, "cycles/s")
					}
				})
			}
		}
	}
}

// TestIdleSkipSpeedupGuard is the benchsmoke gate's tripwire for the
// activity engine, mirroring TestParallelSpeedupGuard's pattern: it only
// runs when the Makefile sets SCORPIO_IDLESKIP_GUARD=1, because a timing
// measurement inside the ordinary suite would be noise. Two bounds, both
// from the engine's design goals: at least 2x cycles/s on a near-idle 6x6
// mesh (0.01 flits/node/cycle), and at most 5% overhead at saturation,
// where no unit ever parks and the engine reduces to boundary scans and
// demote polls.
func TestIdleSkipSpeedupGuard(t *testing.T) {
	if os.Getenv("SCORPIO_IDLESKIP_GUARD") == "" {
		t.Skip("idle-skip guard runs from `make benchsmoke` (SCORPIO_IDLESKIP_GUARD=1)")
	}
	measure := func(rate float64, skip bool) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			k, _ := warmMeshSized(b, 1, 6, 6, rate, skip)
			b.ResetTimer()
			k.Run(uint64(b.N))
		})
		return float64(r.NsPerOp())
	}
	idleOn, idleOff := measure(0.01, true), measure(0.01, false)
	if idleOn*2 > idleOff {
		t.Errorf("near-idle speedup %.2fx (on %.0f ns/cycle, off %.0f): the activity engine stopped paying (want >= 2x)",
			idleOff/idleOn, idleOn, idleOff)
	}
	satOn, satOff := measure(0.30, true), measure(0.30, false)
	if satOn > satOff*1.05 {
		t.Errorf("saturation overhead %.1f%% (on %.0f ns/cycle, off %.0f): the engine must cost <= 5%% when nothing idles",
			100*(satOn/satOff-1), satOn, satOff)
	}
	t.Logf("near-idle %.2fx speedup (%.0f vs %.0f ns/cycle); saturation %+.1f%% (%.0f vs %.0f ns/cycle)",
		idleOff/idleOn, idleOn, idleOff, 100*(satOn/satOff-1), satOn, satOff)
}
