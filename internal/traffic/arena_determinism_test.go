package traffic

import (
	"runtime"
	"testing"

	"scorpio/internal/noc"
	"scorpio/internal/ring"
	"scorpio/internal/sim"
	"scorpio/internal/stats"
)

// arenaRun drives a w×h mesh of synthetic nodes for 3000 loaded cycles, then
// cuts injection and drains, returning three witnesses:
//
//   - idDigest: the fold of every node's delivered-packet-ID digest in node
//     order — bit-identical iff every packet arrived at the same sink on the
//     same cycle in the same order;
//   - arenaDigest: Mesh.ArenaDigest(), the fold of every router's free-list
//     digest — bit-identical iff the per-router flit-handle alloc/free
//     sequences matched exactly (handles, not just packets);
//   - live: Mesh.ArenaLive(), which must be 0 after a full drain (every
//     allocated handle returned).
func arenaRun(t *testing.T, workers, w, h int, idleSkip bool) (idDigest, arenaDigest uint64, live int) {
	t.Helper()
	netCfg := noc.DefaultConfig()
	netCfg.Width, netCfg.Height = w, h
	cfg := Config{
		Net:           netCfg,
		Pattern:       UniformRandom,
		InjectionRate: 0.05,
		Flits:         3,
		Seed:          11,
	}
	mesh, err := noc.NewMesh(cfg.Net)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	rng := sim.NewRNG(cfg.Seed + 1)
	nodes := make([]*node, cfg.Net.Nodes())
	for i := range nodes {
		nodes[i] = &node{
			id: i, cfg: cfg, mesh: mesh,
			tr:    noc.NewOutputTracker(cfg.Net),
			rng:   rng.Fork(),
			lat:   stats.NewHistogram(4, 512),
			queue: ring.New[*noc.Packet](8),
			pkts:  &pktPool{},
		}
		nodes[i].armNext(0)
		mesh.AttachESID(i, nodes[i])
		nodes[i].BindActivity(k.Register(nodes[i]))
	}
	mesh.Register(k)
	k.SetWorkers(workers)
	k.SetIdleSkip(idleSkip)

	k.Run(3000)

	// Cut injection at a fixed cycle boundary (identical in every variant)
	// and drain: queued and in-flight packets finish, nothing new starts.
	for _, n := range nodes {
		n.cfg.InjectionRate = 0
		n.issueAt = sim.NoEvent
	}
	for i := 0; i < 100 && mesh.BufferedFlits() > 0; i++ {
		k.Run(100)
	}
	k.Run(10) // let the last link-resident flits reach their sinks
	for _, n := range nodes {
		if n.cur != nil || !n.queue.Empty() {
			t.Fatalf("node %d failed to drain (cur=%v queued=%d)", n.id, n.cur, n.queue.Len())
		}
		idDigest = (idDigest ^ n.idDigest) * 1099511628211
	}
	if err := mesh.CheckInvariants(); err != nil {
		t.Fatalf("post-drain invariants: %v", err)
	}
	return idDigest, mesh.ArenaDigest(), mesh.ArenaLive()
}

// TestArenaHandleDeterminism16x16 pins the arena model's strongest claim:
// on a 256-router mesh, the flit-handle alloc/free sequence of every router
// — not merely the delivered packets — is bit-identical across worker
// counts 1/2/4/8 and with the idle-skip engine on or off. Routers own their
// arenas privately and the two-phase kernel fixes the event order, so the
// handle streams may not depend on scheduling at all.
func TestArenaHandleDeterminism16x16(t *testing.T) {
	if testing.Short() {
		t.Skip("ten 256-node runs exceed the -short (race-gate) budget; the full test gate covers this")
	}
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	refID, refArena, refLive := arenaRun(t, 1, 16, 16, true)
	if refID == 0 {
		t.Fatal("degenerate reference run: no packets delivered")
	}
	if refLive != 0 {
		t.Fatalf("reference run leaked %d arena handles", refLive)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, skip := range []bool{true, false} {
			if workers == 1 && skip {
				continue // the reference itself
			}
			id, arena, live := arenaRun(t, workers, 16, 16, skip)
			if id != refID {
				t.Errorf("workers=%d skip=%v: packet-ID digest %#x, want %#x", workers, skip, id, refID)
			}
			if arena != refArena {
				t.Errorf("workers=%d skip=%v: arena digest %#x, want %#x", workers, skip, arena, refArena)
			}
			if live != 0 {
				t.Errorf("workers=%d skip=%v: %d arena handles leaked", workers, skip, live)
			}
		}
	}
}

// TestArenaDrainReturnsAllHandles is the quick (6×6, -short-safe) leak
// check: after a loaded run drains, every router's arena must have every
// handle back on its free list. CheckInvariants enforces live==buffered per
// router throughout; this pins the end-state live==0 globally.
func TestArenaDrainReturnsAllHandles(t *testing.T) {
	_, _, live := arenaRun(t, 1, 6, 6, true)
	if live != 0 {
		t.Fatalf("%d arena handles still live after drain", live)
	}
}
