package traffic

import (
	"testing"

	"scorpio/internal/noc"
)

func net4x4() noc.Config {
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	return cfg
}

func TestLowLoadLatencyNearZeroLoad(t *testing.T) {
	res, err := Run(Config{Net: net4x4(), Pattern: UniformRandom, InjectionRate: 0.005, Flits: 1, Cycles: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Zero-load latency on a 4x4 with bypassing: ~1 + (hops+1)*2 ≈ 8 cycles
	// average; allow generous headroom.
	if res.AvgLatency > 15 {
		t.Fatalf("low-load latency %.1f cycles is too high", res.AvgLatency)
	}
	// Accepted tracks offered at low load.
	if float64(res.Delivered) < 0.9*float64(res.Offered) {
		t.Fatalf("delivered %d of %d offered at low load", res.Delivered, res.Offered)
	}
}

func TestLatencyRisesWithLoad(t *testing.T) {
	low, err := Run(Config{Net: net4x4(), Pattern: UniformRandom, InjectionRate: 0.01, Flits: 3, Cycles: 15000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(Config{Net: net4x4(), Pattern: UniformRandom, InjectionRate: 0.12, Flits: 3, Cycles: 15000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if high.AvgLatency <= low.AvgLatency {
		t.Fatalf("latency did not rise with load: %.1f -> %.1f", low.AvgLatency, high.AvgLatency)
	}
}

func TestPatternsDeliver(t *testing.T) {
	for _, p := range []Pattern{UniformRandom, BitComplement, Transpose, Hotspot, Broadcast} {
		res, err := Run(Config{Net: net4x4(), Pattern: p, InjectionRate: 0.01, Flits: 1, Cycles: 10000, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Delivered == 0 {
			t.Fatalf("%s delivered nothing", p)
		}
		if p.String() == "" {
			t.Fatal("unnamed pattern")
		}
	}
}

func TestBroadcastSaturationNearTheoretical(t *testing.T) {
	// Section 5.3: broadcast capacity of a k×k mesh ≈ 1/k² flits/node/cycle
	// (0.0625 for 4×4). The measured saturation point should land in that
	// neighbourhood — same order, not far above the bound.
	cfg := net4x4()
	sat, err := SaturationThroughput(cfg, Broadcast, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	theory := 1.0 / float64(cfg.Width*cfg.Width)
	t.Logf("measured broadcast saturation %.4f, theoretical bound %.4f flits/node/cycle", sat, theory)
	if sat > 1.6*theory {
		t.Fatalf("measured saturation %.4f exceeds the theoretical bound %.4f by too much", sat, theory)
	}
	if sat < theory/4 {
		t.Fatalf("measured saturation %.4f is implausibly far below the bound %.4f", sat, theory)
	}
}

func TestHotspotSaturatesBelowUniform(t *testing.T) {
	cfg := net4x4()
	uni, err := SaturationThroughput(cfg, UniformRandom, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := SaturationThroughput(cfg, Hotspot, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("saturation: uniform %.4f, hotspot %.4f", uni, hot)
	if hot >= uni {
		t.Fatal("a hotspot must saturate before uniform traffic")
	}
}
