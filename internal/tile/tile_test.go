package tile

import (
	"testing"

	"scorpio/internal/coherence"
	"scorpio/internal/noc"
)

// fakePort sinks L2 traffic for tile-level tests.
type fakePort struct{ reqs []*noc.Packet }

func (f *fakePort) SendRequest(p *noc.Packet) bool {
	f.reqs = append(f.reqs, p)
	return true
}
func (f *fakePort) SendResponse(p *noc.Packet) bool { return true }

type fakeMap struct{}

func (fakeMap) HomeMC(addr uint64) int { return 0 }

type tileRig struct {
	tile  *Tile
	l2    *coherence.L2Controller
	port  *fakePort
	cycle uint64
	done  []Completion
}

func newTileRig(t *testing.T) *tileRig {
	t.Helper()
	port := &fakePort{}
	id := uint64(0)
	l2 := coherence.NewL2(1, coherence.DefaultConfig(), port, func() uint64 { id++; return id }, fakeMap{})
	tl := New(1, DefaultConfig(), l2)
	r := &tileRig{tile: tl, l2: l2, port: port}
	tl.OnComplete = func(c Completion) { r.done = append(r.done, c) }
	return r
}

func (r *tileRig) step(n int) {
	for i := 0; i < n; i++ {
		r.tile.Evaluate(r.cycle)
		r.tile.Commit(r.cycle)
		r.l2.Evaluate(r.cycle)
		r.l2.Commit(r.cycle)
		r.cycle++
	}
}

// completeL2 plays the network side of the last miss: own ordered + data.
func (r *tileRig) completeL2(t *testing.T) {
	t.Helper()
	if len(r.port.reqs) == 0 {
		t.Fatal("no L2 request to complete")
	}
	req := r.port.reqs[len(r.port.reqs)-1]
	if !r.l2.ProcessOrdered(req, r.cycle, r.cycle) {
		t.Fatal("own ordered request rejected")
	}
	r.l2.AcceptResponse(&noc.Packet{
		VNet: noc.UOResp, Kind: int(coherence.DataMem), ReqID: req.ReqID, Flits: 3,
		Payload: &coherence.RespInfo{Value: 7},
	}, r.cycle)
	r.step(2)
}

func TestColdReadMissesBothLevelsThenHits(t *testing.T) {
	r := newTileRig(t)
	if !r.tile.Access(Data, 0x40, false, 0, r.cycle) {
		t.Fatal("access rejected")
	}
	if !r.tile.Busy(Data) {
		t.Fatal("data port must be busy during the miss")
	}
	r.step(2)
	r.completeL2(t)
	if len(r.done) != 1 || r.done[0].L1Hit || r.done[0].Value != 7 {
		t.Fatalf("miss completion wrong: %+v", r.done)
	}
	if !r.tile.L1D().Present(0x40) {
		t.Fatal("read miss must fill the L1")
	}
	// Second read: pure L1 hit, no new L2 request.
	before := len(r.port.reqs)
	r.done = nil
	if !r.tile.Access(Data, 0x40, false, 0, r.cycle) {
		t.Fatal("hit access rejected")
	}
	r.step(4)
	if len(r.port.reqs) != before {
		t.Fatal("L1 hit must not touch the L2 network")
	}
	if len(r.done) != 1 || !r.done[0].L1Hit || r.done[0].Value != 7 {
		t.Fatalf("hit completion wrong: %+v", r.done)
	}
}

func TestAHBSingleTransactionPerPort(t *testing.T) {
	r := newTileRig(t)
	if !r.tile.Access(Data, 0x40, false, 0, r.cycle) {
		t.Fatal("first access rejected")
	}
	if r.tile.Access(Data, 0x80, false, 0, r.cycle) {
		t.Fatal("second data-port access must wait (AHB single transaction)")
	}
	// The instruction port is independent.
	if !r.tile.Access(Instr, 0xc0, false, 0, r.cycle) {
		t.Fatal("instruction port must be free")
	}
	if !r.tile.Busy(Instr) || !r.tile.Busy(Data) {
		t.Fatal("both ports should be busy now")
	}
}

func TestWriteThroughUpdatesL2(t *testing.T) {
	r := newTileRig(t)
	// Seed an L1+L2 copy.
	r.tile.Access(Data, 0x40, false, 0, r.cycle)
	r.step(2)
	r.completeL2(t)
	r.done = nil
	// Store: write-through makes an L2 transaction (upgrade to M).
	if !r.tile.Access(Data, 0x40, true, 99, r.cycle) {
		t.Fatal("store rejected")
	}
	r.step(2)
	r.completeL2(t)
	if len(r.done) != 1 || !r.done[0].Write {
		t.Fatalf("store completion missing: %+v", r.done)
	}
	if got := r.l2.ValueOf(0x40); got != 99 {
		t.Fatalf("L2 value = %d, want 99 (write-through)", got)
	}
	if !r.tile.L1D().Present(0x40) {
		t.Fatal("write-through keeps the L1 copy")
	}
	if r.tile.Stats.WriteThroughs != 1 {
		t.Fatal("write-through not counted")
	}
}

func TestExternalInvalidationReachesL1(t *testing.T) {
	r := newTileRig(t)
	r.tile.Access(Data, 0x40, false, 0, r.cycle)
	r.step(2)
	r.completeL2(t)
	if !r.tile.L1D().Present(0x40) {
		t.Fatal("setup failed")
	}
	// A remote GetX snoop invalidates the L2 line; inclusion must drop the
	// L1 copy through the invalidation port.
	r.l2.ProcessOrdered(&noc.Packet{
		VNet: noc.GOReq, Src: 5, SID: 5, Broadcast: true, Flits: 1,
		Kind: int(coherence.GetX), Addr: 0x40, ReqID: 77,
	}, r.cycle, r.cycle)
	if r.tile.L1D().Present(0x40) {
		t.Fatal("L1 copy survived an external invalidation")
	}
	if r.tile.Stats.Invalidations != 1 {
		t.Fatal("invalidation port not counted")
	}
}

func TestInstructionPortRejectsWrites(t *testing.T) {
	r := newTileRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("write on the instruction port must panic")
		}
	}()
	r.tile.Access(Instr, 0x40, true, 1, r.cycle)
}
