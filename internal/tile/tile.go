// Package tile models the processor-side of a SCORPIO tile (Section 4.1):
// the split L1 instruction/data caches of the Freescale e200 core, the
// multi-master split-transaction AHB bus between them and the L2, and the
// invalidation port the chip added to keep the write-through L1s included
// under the L2.
//
// The AHB protocol "supports a single read or write transaction at a time
// [per port], restricting the number of outstanding misses to two, one data
// cache miss and one instruction cache miss, per core" — the Tile enforces
// exactly that: one outstanding data-side and one instruction-side
// transaction.
package tile

import (
	"fmt"

	"scorpio/internal/cache"
	"scorpio/internal/coherence"
)

// Config sizes the L1s (Table 1: split 16KB I/D, 4-way, write-through).
type Config struct {
	L1Bytes   int
	LineBytes int
}

// DefaultConfig returns the chip's L1 parameters.
func DefaultConfig() Config {
	return Config{L1Bytes: 16 * 1024, LineBytes: 32}
}

// Port selects the AHB master: the data or instruction cache.
type Port int

// The two AHB masters.
const (
	Data Port = iota
	Instr
)

// Completion reports a finished core access.
type Completion struct {
	Port  Port
	Addr  uint64
	Write bool
	Value uint64
	// L1Hit reports whether the access was satisfied without the L2.
	L1Hit bool
	Issue uint64
	Done  uint64
}

// Stats counts tile activity.
type Stats struct {
	Reads          uint64
	Writes         uint64
	L1Hits         uint64
	L1Misses       uint64
	WriteThroughs  uint64
	Invalidations  uint64 // external invalidation port activations
	InclusionDrops uint64 // L1 lines dropped because the L2 evicted them
}

// pendingTxn is one outstanding AHB transaction.
type pendingTxn struct {
	active bool
	addr   uint64
	write  bool
	value  uint64
	issue  uint64
}

// Tile glues the split L1s to the tile's L2 controller.
type Tile struct {
	cfg  Config
	node int
	l1d  *cache.L1
	l1i  *cache.L1
	l2   *coherence.L2Controller
	// OnComplete receives finished accesses.
	OnComplete func(Completion)

	pending [2]pendingTxn
	// hits scheduled to complete after the L1 latency
	hitQ []Completion
	now  uint64 // cycle of the last Evaluate (idle-check reference)

	Stats Stats
}

// New builds a tile around an L2 controller. It chains onto the L2's
// completion callback and its L1-invalidation hook; attach any additional
// consumer before calling New.
func New(node int, cfg Config, l2 *coherence.L2Controller) *Tile {
	t := &Tile{
		cfg:  cfg,
		node: node,
		l1d:  cache.NewL1(cfg.L1Bytes, cfg.LineBytes),
		l1i:  cache.NewL1(cfg.L1Bytes, cfg.LineBytes),
		l2:   l2,
	}
	l2.OnComplete = t.l2Completed
	l2.InvalidateL1 = t.invalidate
	return t
}

// L1D exposes the data cache (tests).
func (t *Tile) L1D() *cache.L1 { return t.l1d }

// L1I exposes the instruction cache (tests).
func (t *Tile) L1I() *cache.L1 { return t.l1i }

// Busy reports whether the port's AHB transaction slot is occupied.
func (t *Tile) Busy(p Port) bool { return t.pending[p].active }

// Access issues one core access on an AHB port; addr is a line address.
// It reports false when the port already has an outstanding transaction
// (the AHB single-transaction rule) — the core retries.
func (t *Tile) Access(p Port, addr uint64, write bool, value uint64, cycle uint64) bool {
	if t.pending[p].active {
		return false
	}
	if p == Instr && write {
		panic("tile: instruction port cannot write")
	}
	l1 := t.l1for(p)
	if write {
		t.Stats.Writes++
		// Write-through: update the L1 copy if present and always forward
		// the store to the L2; the transaction completes when the L2 does.
		l1.Write(addr)
		t.Stats.WriteThroughs++
		if !t.l2.CoreAccess(addr, true, value, cycle) {
			return false
		}
		t.pending[p] = pendingTxn{active: true, addr: addr, write: true, value: value, issue: cycle}
		return true
	}
	t.Stats.Reads++
	if l1.Read(addr) {
		t.Stats.L1Hits++
		// L1 hit: completes after the L1 latency with the L2's coherent
		// value (write-through keeps them equal).
		t.hitQ = append(t.hitQ, Completion{
			Port: p, Addr: addr, L1Hit: true, Issue: cycle, Done: cycle + uint64(l1.HitLatency),
			Value: t.l2ValueOrZero(addr),
		})
		return true
	}
	t.Stats.L1Misses++
	if !t.l2.CoreAccess(addr, false, 0, cycle) {
		return false
	}
	t.pending[p] = pendingTxn{active: true, addr: addr, issue: cycle}
	return true
}

// Evaluate drains due L1-hit completions.
func (t *Tile) Evaluate(cycle uint64) {
	t.now = cycle
	rest := t.hitQ[:0]
	for _, c := range t.hitQ {
		if c.Done <= cycle {
			if t.OnComplete != nil {
				t.OnComplete(c)
			}
			continue
		}
		rest = append(rest, c)
	}
	t.hitQ = rest
}

// Commit implements sim.Component.
func (t *Tile) Commit(cycle uint64) {}

// Idle implements sim.Idler: the tile's only cycle work is draining ripe
// L1-hit completions; scheduled-but-future hits permit parking (the
// injector's NextEventCycle or the hit's own NextEventCycle wakes the unit).
// Pending AHB transactions complete through the L2's callback, which runs
// inside this unit.
func (t *Tile) Idle() bool {
	for i := range t.hitQ {
		if t.hitQ[i].Done <= t.now {
			return false
		}
	}
	return true
}

// NextEventCycle implements sim.NextEventer: the earliest scheduled L1-hit
// completion.
func (t *Tile) NextEventCycle(cycle uint64) uint64 {
	next := uint64(0)
	for i := range t.hitQ {
		if d := t.hitQ[i].Done; next == 0 || d < next {
			next = d
		}
	}
	if next == 0 {
		return ^uint64(0)
	}
	if next <= cycle {
		return cycle + 1
	}
	return next
}

// l2Completed receives the L2's completion and retires the matching AHB
// transaction, filling the L1 on read misses.
func (t *Tile) l2Completed(c coherence.Completion) {
	for p := range t.pending {
		txn := &t.pending[p]
		if !txn.active || txn.addr != c.Addr || txn.write != c.Write {
			continue
		}
		if !c.Write && t.l2.LineState(c.Addr) != coherence.Invalid {
			// Fill the L1 only while the L2 holds the line: a read that
			// raced a remote write completes without installing (the data
			// is delivered to the core but must not be cached), and filling
			// the L1 then would break inclusion.
			if evicted, ok := t.l1for(Port(p)).Fill(c.Addr); ok {
				_ = evicted // write-through: clean, silently dropped
			}
		}
		txn.active = false
		if t.OnComplete != nil {
			t.OnComplete(Completion{
				Port: Port(p), Addr: c.Addr, Write: c.Write, Value: c.Value,
				L1Hit: false, Issue: txn.issue, Done: c.Done,
			})
		}
		return
	}
	panic(fmt.Sprintf("tile %d: L2 completion for %#x with no pending AHB transaction", t.node, c.Addr))
}

// invalidate services the external invalidation port: snoops and L2
// evictions remove the line from both L1s (inclusion).
func (t *Tile) invalidate(addr uint64) {
	hit := false
	if t.l1d.Invalidate(addr) {
		hit = true
	}
	if t.l1i.Invalidate(addr) {
		hit = true
	}
	if hit {
		t.Stats.Invalidations++
	}
}

func (t *Tile) l1for(p Port) *cache.L1 {
	if p == Instr {
		return t.l1i
	}
	return t.l1d
}

// l2ValueOrZero reads the coherent value for an L1 hit.
func (t *Tile) l2ValueOrZero(addr uint64) uint64 {
	// The L2 is inclusive, so an L1 hit implies an L2-resident line whose
	// value the controller tracks.
	return t.l2.ValueOf(addr)
}
