package sim

import (
	"strings"
	"testing"
	"time"

	"scorpio/internal/obs/perfmon"
)

// TestActivityCountersCensus pins the always-on event census against the
// bursty-idle workload whose schedule the activity tests already verify:
// parking, timer wakes through the timing wheel, demote passes and
// quiescent-span fast-forwards must all leave nonzero counts, and the
// executed-step counter must reflect the fast-forwarded (not nominal) cycle
// count.
func TestActivityCountersCensus(t *testing.T) {
	const cycles = 20_000
	k, _ := buildBursters(8, 0, true)
	k.Run(cycles)
	a := k.ActivityCounters()
	if a.StepsExecuted == 0 || a.StepsExecuted >= cycles {
		t.Fatalf("steps executed = %d, want in (0, %d): fast-forward should skip most cycles", a.StepsExecuted, cycles)
	}
	if a.Parks == 0 {
		t.Error("no parks recorded on a bursty-idle workload")
	}
	if a.Activations == 0 {
		t.Error("no activations recorded")
	}
	if a.WheelActivations == 0 {
		t.Error("no timing-wheel activations recorded; bursters self-schedule through the wheel")
	}
	if a.WheelHighWater == 0 {
		t.Error("wheel high-water stayed 0 despite scheduled wakes")
	}
	if a.DemotePasses == 0 {
		t.Error("no demote passes recorded")
	}
	if a.FastForwards == 0 || a.FastForwardCycles == 0 {
		t.Errorf("fast-forward census empty (%d spans, %d cycles); gaps of ~997 cycles must be jumped",
			a.FastForwards, a.FastForwardCycles)
	}
	if a.StepsExecuted+a.FastForwardCycles != cycles {
		t.Errorf("steps (%d) + fast-forwarded cycles (%d) != %d: the census does not cover the run",
			a.StepsExecuted, a.FastForwardCycles, cycles)
	}
	if got := a.TotalWakes(); got != a.Wakes[WakeTimer] {
		// Bursters only self-schedule; no cross-unit edges fire.
		t.Errorf("total wakes %d != timer wakes %d; unexpected edges: %v", got, a.Wakes[WakeTimer], a.WakesByEdge())
	}
}

// TestWakeEdgeAttribution pins the per-edge wake taxonomy using the
// producer/consumer mailbox from the activity tests: deposits wake the
// consumer on the WakeOther edge, and the census must attribute them there.
func TestWakeEdgeAttribution(t *testing.T) {
	k := NewKernel()
	box := &mailbox{}
	c := &consumer{box: box}
	p := &producer{burster: burster{burstLen: 2, gap: 610, nextStart: 0}, box: box}
	k.Register(p)
	p.target = k.Register(c)
	k.Run(10_000)
	if len(c.got) == 0 {
		t.Fatal("degenerate run: consumer received nothing")
	}
	a := k.ActivityCounters()
	if a.Wakes[WakeOther] == 0 {
		t.Fatalf("producer deposits raised no WakeOther edges: %v", a.WakesByEdge())
	}
	// Wakes are edge-triggered and coalesce in the CAS-min mailbox, so the
	// count can trail the deposit count slightly — but never exceed it, and
	// a healthy run coalesces only a handful.
	deposits := uint64(len(c.got))
	if a.Wakes[WakeOther] > deposits || a.Wakes[WakeOther] < deposits-deposits/4 {
		t.Errorf("WakeOther count %d vs %d deposits delivered; expected near-1:1 attribution", a.Wakes[WakeOther], deposits)
	}
	if m := a.WakesByEdge(); m["other"] != a.Wakes[WakeOther] {
		t.Errorf("WakesByEdge map %v disagrees with the typed array", m)
	}
}

// TestPerfMonSampledAccountingSerial attaches a stride-1 monitor to a serial
// kernel and checks the exact-accounting contract: every executed step is
// sampled, evaluate+commit time is charged to worker 0, and the per-step
// envelope (StepNs) covers it.
func TestPerfMonSampledAccountingSerial(t *testing.T) {
	k, _ := buildBursters(8, 0, true)
	m := perfmon.New()
	m.Stride = 1
	k.SetPerfMon(m)
	k.Run(5_000)
	a := k.ActivityCounters()
	w := m.Worker(0)
	if got := w.Sampled.Load(); got != a.StepsExecuted {
		t.Fatalf("sampled %d steps at stride 1, want every executed step (%d)", got, a.StepsExecuted)
	}
	eval, commit, step := w.EvalNs.Load(), w.CommitNs.Load(), w.StepNs.Load()
	if eval == 0 || commit == 0 {
		t.Fatalf("no phase time recorded: eval %d ns, commit %d ns", eval, commit)
	}
	if step < eval+commit {
		t.Fatalf("step envelope %d ns < eval %d + commit %d: phases leak outside the step", step, eval, commit)
	}
}

// TestPerfMonStrideExtrapolation checks the report's scaling contract: at the
// default sparse stride the extrapolated report totals must land in the same
// ballpark as a stride-1 exact measurement of the identical workload.
func TestPerfMonStrideExtrapolation(t *testing.T) {
	measure := func(stride uint64) *perfmon.Report {
		k, _ := buildBursters(8, 0, false) // skip off: uniform per-cycle cost
		m := perfmon.New()
		m.Stride = stride
		k.SetPerfMon(m)
		wall0 := time.Now()
		k.Run(20_000)
		return k.PerfReport("bursters", "d", int64(time.Since(wall0)))
	}
	exact := measure(1)
	sparse := measure(perfmon.DefaultStride)
	if len(exact.PerWorker) == 0 || len(sparse.PerWorker) == 0 {
		t.Fatal("reports missing per-worker rows")
	}
	e, s := exact.PerWorker[0], sparse.PerWorker[0]
	if s.SampledCycles*perfmon.DefaultStride < 20_000/2 {
		t.Fatalf("sparse monitor sampled only %d cycles", s.SampledCycles)
	}
	ratio := float64(s.EvalNs) / float64(e.EvalNs)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("stride-%d extrapolated eval %d ns vs exact %d ns (ratio %.2f); extrapolation is off",
			perfmon.DefaultStride, s.EvalNs, e.EvalNs, ratio)
	}
}

// TestPerfReportAssembly checks the kernel-side report envelope: schema,
// label and digest pass-through, execution mode, cycle count, throughput and
// the activity census folded in.
func TestPerfReportAssembly(t *testing.T) {
	k, _ := buildBursters(8, 0, true)
	if k.PerfReport("x", "y", 1) != nil {
		t.Fatal("PerfReport must be nil without an attached monitor")
	}
	m := perfmon.New()
	k.SetPerfMon(m)
	k.Run(10_000)
	r := k.PerfReport("bursters", "cafef00d", int64(time.Millisecond))
	if r.Schema != perfmon.ReportSchema {
		t.Fatalf("schema %q", r.Schema)
	}
	if r.Label != "bursters" || r.ConfigDigest != "cafef00d" {
		t.Fatalf("label/digest not passed through: %q %q", r.Label, r.ConfigDigest)
	}
	if r.Mode != "serial" {
		t.Fatalf("mode %q, want serial", r.Mode)
	}
	if r.Cycles != 10_000 {
		t.Fatalf("cycles %d, want 10000", r.Cycles)
	}
	if r.CyclesPerSec <= 0 {
		t.Fatalf("cycles/s %v", r.CyclesPerSec)
	}
	if r.Activity.StepsExecuted == 0 || r.Activity.Parks == 0 {
		t.Fatalf("activity census missing from report: %+v", r.Activity)
	}
	if r.SampleStride != perfmon.DefaultStride {
		t.Fatalf("sample stride %d, want default %d", r.SampleStride, perfmon.DefaultStride)
	}
}

// TestActivityReportNamesParkedUnits checks the watchdog-facing text report:
// it must carry the census headline and name parked units with no pending
// wake (the classic lost-wake suspect list).
func TestActivityReportNamesParkedUnits(t *testing.T) {
	k := NewKernel()
	box := &mailbox{}
	c := &consumer{box: box}
	p := &producer{burster: burster{burstLen: 2, gap: 200_000, nextStart: 2}, box: box}
	k.Register(p)
	p.target = k.Register(c)
	k.Run(50) // the producer burst is done; both units sit parked
	rep := k.ActivityReport()
	for _, want := range []string{"activity:", "units active", "parks", "wakes by edge:"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("activity report missing %q:\n%s", want, rep)
		}
	}
	if !strings.Contains(rep, "parked with no pending wake") {
		t.Fatalf("activity report does not name parked units:\n%s", rep)
	}
}
