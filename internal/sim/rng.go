package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64). Every stochastic element of the simulator draws from an RNG
// seeded from the run configuration so that runs are reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit pseudo-random value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value uniformly distributed in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value uniformly distributed in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p (mean 1/p), at least 1. For p <= 0 it returns a large value;
// for p >= 1 it returns 1.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return 1 << 30
	}
	n := 1
	for !r.Bernoulli(p) && n < 1<<20 {
		n++
	}
	return n
}

// Fork derives an independent generator from this one, so subsystems can own
// private RNGs without correlating their streams.
func (r *RNG) Fork() *RNG {
	return &RNG{state: r.Uint64() ^ 0xd1b54a32d192ed03}
}
