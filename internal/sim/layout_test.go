package sim

import (
	"testing"
	"unsafe"
)

// TestUnitPacksTight pins the scheduling unit's hole-free field order. The
// driver walks []unit every cycle, so each alignment hole is multiplied by
// the unit count; cmd/layoutcheck enforces the same rule for exported
// structs but cannot reach this unexported one by reflection.
func TestUnitPacksTight(t *testing.T) {
	if s := unsafe.Sizeof(unit{}); s != 128 {
		t.Fatalf("unit is %d bytes, want 128 (two cache lines, no alignment holes)", s)
	}
}

// TestActivityIsOneCacheLine pins the wake-mailbox padding: producer shards
// write one unit's Activity while others read their neighbours'; sharing a
// line would turn every wake into a false-sharing invalidation.
func TestActivityIsOneCacheLine(t *testing.T) {
	if s := unsafe.Sizeof(Activity{}); s != 64 {
		t.Fatalf("Activity is %d bytes, want exactly one 64-byte cache line", s)
	}
}
