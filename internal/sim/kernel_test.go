package sim

import (
	"testing"
	"testing/quick"
)

// counter is a component that increments on commit only, verifying phase
// separation.
type counter struct {
	pending int
	value   int
}

func (c *counter) Evaluate(cycle uint64) { c.pending = c.value + 1 }
func (c *counter) Commit(cycle uint64)   { c.value = c.pending }

func TestKernelStepRunsBothPhases(t *testing.T) {
	k := NewKernel()
	c := &counter{}
	k.Register(c)
	k.Step()
	if c.value != 1 {
		t.Fatalf("value after one step = %d, want 1", c.value)
	}
	k.Run(9)
	if c.value != 10 {
		t.Fatalf("value after ten cycles = %d, want 10", c.value)
	}
	if k.Cycle() != 10 {
		t.Fatalf("Cycle() = %d, want 10", k.Cycle())
	}
}

// chain components copy their left neighbour's committed value; with proper
// two-phase semantics a value propagates exactly one stage per cycle
// regardless of registration order.
type stage struct {
	left    *stage
	pending int
	value   int
}

func (s *stage) Evaluate(cycle uint64) {
	if s.left != nil {
		s.pending = s.left.value
	}
}
func (s *stage) Commit(cycle uint64) { s.value = s.pending }

func TestKernelOrderIndependence(t *testing.T) {
	build := func(reversed bool) []*stage {
		stages := make([]*stage, 5)
		for i := range stages {
			stages[i] = &stage{}
			if i > 0 {
				stages[i].left = stages[i-1]
			}
		}
		stages[0].value = 42
		stages[0].pending = 42
		k := NewKernel()
		if reversed {
			for i := len(stages) - 1; i >= 0; i-- {
				k.Register(stages[i])
			}
		} else {
			for _, s := range stages {
				k.Register(s)
			}
		}
		k.Run(4)
		return stages
	}
	fwd := build(false)
	rev := build(true)
	for i := range fwd {
		if fwd[i].value != rev[i].value {
			t.Fatalf("stage %d: forward=%d reversed=%d; tick order changed the result", i, fwd[i].value, rev[i].value)
		}
	}
	if fwd[4].value != 42 {
		t.Fatalf("value did not propagate: stage4=%d, want 42", fwd[4].value)
	}
}

func TestKernelObserver(t *testing.T) {
	k := NewKernel()
	c := &counter{}
	k.Register(c)
	var cycles []uint64
	var valueAtObserve []int
	k.SetObserver(func(cycle uint64) {
		cycles = append(cycles, cycle)
		valueAtObserve = append(valueAtObserve, c.value)
	})
	k.Run(3)
	if len(cycles) != 3 || cycles[0] != 0 || cycles[2] != 2 {
		t.Fatalf("observer cycles = %v, want [0 1 2]", cycles)
	}
	// The observer runs after commit: it must see the just-latched state.
	for i, v := range valueAtObserve {
		if v != i+1 {
			t.Fatalf("observer at cycle %d saw value %d, want %d (post-commit)", cycles[i], v, i+1)
		}
	}
	k.SetObserver(nil)
	k.Step()
	if len(cycles) != 3 {
		t.Fatal("removed observer still fired")
	}
}

func TestKernelObserverParallel(t *testing.T) {
	// The observer must fire once per step with committed state visible even
	// when the worker pool executes the phases.
	k := NewKernel()
	var comps []*counter
	for i := 0; i < 16; i++ {
		c := &counter{}
		comps = append(comps, c)
		k.Register(c)
	}
	k.SetWorkers(4)
	fired := 0
	k.SetObserver(func(cycle uint64) {
		fired++
		for _, c := range comps {
			if c.value != int(cycle)+1 {
				t.Fatalf("cycle %d: observer saw uncommitted value %d", cycle, c.value)
			}
		}
	})
	k.Run(5)
	if fired != 5 {
		t.Fatalf("observer fired %d times, want 5", fired)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	c := &counter{}
	k.Register(c)
	ok := k.RunUntil(func() bool { return c.value >= 5 }, 100)
	if !ok {
		t.Fatal("RunUntil should have satisfied the predicate")
	}
	if c.value != 5 {
		t.Fatalf("value = %d, want 5 (predicate checked before each step)", c.value)
	}
	ok = k.RunUntil(func() bool { return false }, 20)
	if ok {
		t.Fatal("RunUntil with always-false predicate must report false")
	}
	if k.Cycle() != 20 {
		t.Fatalf("cycle = %d, want 20 (limit)", k.Cycle())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := NewRNG(8)
	same := 0
	a2 := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical draws", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(123)
	if err := quick.Check(func(raw uint16) bool {
		n := int(raw%100) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / n
	if mean < 0.47 || mean > 0.53 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGBernoulliExtremes(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) must be false")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) must be true")
		}
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(11)
	total := 0
	const n = 5000
	for i := 0; i < n; i++ {
		total += r.Geometric(0.25)
	}
	mean := float64(total) / n
	if mean < 3.5 || mean > 4.5 {
		t.Fatalf("Geometric(0.25) mean = %v, want ~4", mean)
	}
	if r.Geometric(1) != 1 {
		t.Fatal("Geometric(1) must be 1")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(42)
	f := r.Fork()
	if r.Uint64() == f.Uint64() {
		t.Fatal("forked stream should not mirror parent")
	}
}
