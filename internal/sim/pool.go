package sim

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"scorpio/internal/obs/perfmon"
)

// Cost-balancing cadence. Every sampleEvery-th cycle each worker times its
// units individually (two clock reads per unit, so the profiling overhead is
// amortized to well under a percent); every rebalanceEvery-th cycle the
// driver folds those samples into the units' EWMA costs and repacks the
// shards if they have drifted apart. rebalanceEvery must be a multiple of
// sampleEvery so a rebalance always sees fresh samples.
const (
	sampleEvery    = 256
	rebalanceEvery = 1024
	// ewmaOld is the weight of the existing cost estimate when folding in a
	// new measurement window.
	ewmaOld = 0.5
	// imbalanceTrigger repacks when the heaviest shard exceeds the mean
	// shard load by this factor. High enough that measurement noise does not
	// cause churn, low enough that one heavy router cannot serialize a
	// cycle for long.
	imbalanceTrigger = 1.15
)

// participant is one executor's parking slot: the driving goroutine is
// participant 0, worker goroutines are 1..nw-1. parked+wake implement a
// futex-style sleep: a waiter that exhausts its spin budget publishes
// parked=true and blocks on wake; a waker transfers exactly one token per
// successful parked CAS, so tokens are never lost or duplicated.
type participant struct {
	parked atomic.Bool
	wake   chan struct{}
	_      [56]byte // keep hot flags off each other's cache line
}

// phasePool executes cycles across persistent workers with one wakeup per
// cycle. The driver publishes the cycle and bumps the epoch counter; every
// participant (driver included) evaluates its shard, arrives at the
// evaluate barrier, commits its shard, and arrives at the cycle barrier.
// Both barriers are monotone atomic counters — generation g is complete
// when a counter reaches g*nw — so they are never reset and need no
// coordination beyond the counter itself. Waiters spin briefly, then yield,
// then park; the last arriver wakes anyone parked.
type phasePool struct {
	units  []unit
	nw     int
	assign [][]int       // per participant: owned unit indices
	flat   [][]Component // per participant: owned components, flattened for the non-profiling hot loop
	parts  []*participant

	gen    uint64 // driver-only generation counter
	cycle  uint64 // published before the epoch store, read after its load
	sample bool   // this cycle is a profiling cycle
	// inline executes every shard on the driver: with GOMAXPROCS=1 the host
	// cannot overlap shards, so the barriers would buy nothing but context
	// switches (~1.2µs/cycle measured). Results are bit-identical either
	// way — phases are isolated by construction — so -workers is never a
	// pessimization on a constrained host. Decided at pool start; a reshard
	// re-samples GOMAXPROCS.
	inline bool
	// inlineAll is the inline-mode dispatch list: every component in
	// registration order, one contiguous slice — LPT shard order would
	// stride through memory, and a per-unit loop costs ~20%/cycle when
	// units are mostly singletons.
	inlineAll []Component

	epoch   atomic.Uint64 // workers run cycle g once epoch >= g
	evalN   atomic.Uint64 // arrivals at the evaluate barrier, monotone
	doneN   atomic.Uint64 // arrivals at the end-of-cycle barrier, monotone
	stopped atomic.Bool

	fastSpin, yieldSpin int

	// Rebalancing state (driver-only between cycles). The two counters are
	// atomics so BalanceStats may read them mid-run from any goroutine;
	// writes stay driver-only.
	load       []float64
	order      []int
	sorter     *costSorter
	rebalances atomic.Uint64
	migrations atomic.Uint64
	cleanup    runtime.Cleanup

	// Self-observability (nil/zero when detached): the monitor, its sampling
	// stride, and the per-participant slots resolved once at pool build so
	// sampled cycles never chase pointers through the kernel.
	pm       *perfmon.Mon
	pmStride uint64
	pmw      []*perfmon.Worker
}

// newPhasePool builds the pool, packs the initial shards from the seeded
// costs, and launches nw-1 worker goroutines (the driver is participant 0).
// A non-nil pm attaches sampled self-observability at the given stride.
func newPhasePool(units []unit, nw int, pm *perfmon.Mon, stride uint64) *phasePool {
	p := &phasePool{
		units:  units,
		nw:     nw,
		assign: make([][]int, nw),
		flat:   make([][]Component, nw),
		parts:  make([]*participant, nw),
		load:   make([]float64, nw),
		order:  make([]int, len(units)),
	}
	p.sorter = &costSorter{p: p}
	if pm != nil {
		p.pm, p.pmStride = pm, stride
		pm.EnsureWorkers(nw)
		p.pmw = make([]*perfmon.Worker, nw)
		for i := range p.pmw {
			p.pmw[i] = pm.Worker(i)
		}
	}
	ncomps := 0
	for i := range units {
		ncomps += len(units[i].comps)
	}
	for i := range p.assign {
		// Full capacity up front: rebalancing must never allocate, even if
		// every unit lands on one shard.
		p.assign[i] = make([]int, 0, len(units))
		p.flat[i] = make([]Component, 0, ncomps)
	}
	for i := range p.parts {
		p.parts[i] = &participant{wake: make(chan struct{}, 1)}
	}
	for i := range p.units {
		p.units[i].owner = -1
	}
	if runtime.GOMAXPROCS(0) < 2 {
		p.inline = true
		p.inlineAll = make([]Component, 0, ncomps)
		p.seedPack()
		return p
	}
	p.seedPack()
	// A host with spare cores can afford to burn cycles busy-waiting at the
	// barriers; an oversubscribed one must yield immediately so the sibling
	// shards actually run.
	if runtime.GOMAXPROCS(0) >= nw {
		p.fastSpin, p.yieldSpin = 2048, 64
	} else {
		p.fastSpin, p.yieldSpin = 0, 128
	}
	for i := 1; i < nw; i++ {
		go p.workerLoop(i)
	}
	return p
}

// step runs one full cycle (evaluate, barrier, commit, barrier) and returns
// with every shard committed. Driver-only. due marks a perfmon-sampled
// cycle: the kernel computes the predicate from the same generation counter
// the workers see, so every participant times the same cycles.
func (p *phasePool) step(cyc uint64, due bool) {
	if p.inline {
		if due {
			w := p.pmw[0]
			t0 := time.Now()
			for _, c := range p.inlineAll {
				c.Evaluate(cyc)
			}
			t1 := time.Now()
			for _, c := range p.inlineAll {
				c.Commit(cyc)
			}
			w.EvalNs.Add(int64(t1.Sub(t0)))
			w.CommitNs.Add(int64(time.Since(t1)))
			w.Sampled.Add(1)
			return
		}
		for _, c := range p.inlineAll {
			c.Evaluate(cyc)
		}
		for _, c := range p.inlineAll {
			c.Commit(cyc)
		}
		return
	}
	p.gen++
	g := p.gen
	p.cycle = cyc
	p.sample = cyc%sampleEvery == 0
	if p.sample {
		// Parked units are sampled at zero cost so their EWMA decays and the
		// shard balance reflects active work only.
		for i := range p.units {
			if !p.units[i].active {
				p.units[i].sampleCnt++
			}
		}
	}
	p.epoch.Store(g)
	p.wakeOthers(0)
	if due {
		p.runCycleTimed(0, g)
		t0 := time.Now()
		park := p.waitCounterPark(&p.doneN, g*uint64(p.nw), 0)
		w := p.pmw[0]
		w.SpinNs.Add(int64(time.Since(t0)) - park)
		w.ParkNs.Add(park)
	} else {
		p.runCycle(0, g)
		p.waitCounter(&p.doneN, g*uint64(p.nw), 0)
	}
	if cyc%rebalanceEvery == rebalanceEvery-1 {
		p.maybeRebalance()
	}
}

// workerLoop is the persistent body of participants 1..nw-1. On sampled
// generations (the same g%stride predicate the driver uses) the epoch wait
// and the cycle's phases are timed; all other generations run the untouched
// hot path.
func (p *phasePool) workerLoop(self int) {
	for g := uint64(1); ; g++ {
		if p.pmStride != 0 && g%p.pmStride == 0 {
			t0 := time.Now()
			park := p.waitCounterPark(&p.epoch, g, self)
			if p.stopped.Load() {
				return
			}
			w := p.pmw[self]
			w.SpinNs.Add(int64(time.Since(t0)) - park)
			w.ParkNs.Add(park)
			p.runCycleTimed(self, g)
			continue
		}
		p.waitCounter(&p.epoch, g, self)
		if p.stopped.Load() {
			return
		}
		p.runCycle(self, g)
	}
}

// runCycle executes one participant's share of generation g: evaluate own
// units, barrier, commit own units, arrive. Workers fall out to wait for the
// next epoch; the driver's matching wait happens in step.
func (p *phasePool) runCycle(self int, g uint64) {
	cyc := p.cycle
	target := g * uint64(p.nw)
	if p.sample {
		for _, ui := range p.assign[self] {
			u := &p.units[ui]
			if !u.active {
				continue
			}
			t0 := time.Now()
			for _, c := range u.comps {
				c.Evaluate(cyc)
			}
			u.sampleNs += float64(time.Since(t0))
		}
	} else {
		for _, c := range p.flat[self] {
			c.Evaluate(cyc)
		}
	}
	if p.evalN.Add(1) == target {
		p.wakeOthers(self)
	} else {
		p.waitCounter(&p.evalN, target, self)
	}
	if p.sample {
		for _, ui := range p.assign[self] {
			u := &p.units[ui]
			if !u.active {
				continue
			}
			t0 := time.Now()
			for _, c := range u.comps {
				c.Commit(cyc)
			}
			u.sampleNs += float64(time.Since(t0))
			u.sampleCnt++
		}
	} else {
		for _, c := range p.flat[self] {
			c.Commit(cyc)
		}
	}
	if p.doneN.Add(1) == target {
		p.wakeOthers(self)
	}
}

// runCycleTimed is runCycle for a perfmon-sampled cycle: identical work with
// the evaluate phase, the evaluate barrier and the commit phase timed into
// the participant's monitor slot, and epoch leadership (arriving last at the
// evaluate barrier and waking the others) counted. Kept as a separate copy
// so the unsampled hot loop stays branch-free.
func (p *phasePool) runCycleTimed(self int, g uint64) {
	cyc := p.cycle
	target := g * uint64(p.nw)
	w := p.pmw[self]
	t0 := time.Now()
	if p.sample {
		for _, ui := range p.assign[self] {
			u := &p.units[ui]
			if !u.active {
				continue
			}
			s0 := time.Now()
			for _, c := range u.comps {
				c.Evaluate(cyc)
			}
			u.sampleNs += float64(time.Since(s0))
		}
	} else {
		for _, c := range p.flat[self] {
			c.Evaluate(cyc)
		}
	}
	w.EvalNs.Add(int64(time.Since(t0)))
	if p.evalN.Add(1) == target {
		w.Led.Add(1)
		// The leader's wake is a futex syscall per parked peer — real
		// barrier cost, charged to spin so follower accounting still sums
		// to wall clock.
		b0 := time.Now()
		p.wakeOthers(self)
		w.SpinNs.Add(int64(time.Since(b0)))
	} else {
		w.Followed.Add(1)
		b0 := time.Now()
		park := p.waitCounterPark(&p.evalN, target, self)
		w.SpinNs.Add(int64(time.Since(b0)) - park)
		w.ParkNs.Add(park)
	}
	t1 := time.Now()
	if p.sample {
		for _, ui := range p.assign[self] {
			u := &p.units[ui]
			if !u.active {
				continue
			}
			s0 := time.Now()
			for _, c := range u.comps {
				c.Commit(cyc)
			}
			u.sampleNs += float64(time.Since(s0))
			u.sampleCnt++
		}
	} else {
		for _, c := range p.flat[self] {
			c.Commit(cyc)
		}
	}
	w.CommitNs.Add(int64(time.Since(t1)))
	w.Sampled.Add(1)
	if p.doneN.Add(1) == target {
		b0 := time.Now()
		p.wakeOthers(self)
		w.SpinNs.Add(int64(time.Since(b0)))
	}
}

// waitCounter blocks participant self until ctr reaches target: a bounded
// busy-spin, then yield-spins, then a futex-style park. Spurious wakeups
// (a stale token from an earlier barrier) simply re-enter the loop.
func (p *phasePool) waitCounter(ctr *atomic.Uint64, target uint64, self int) {
	for n := 0; n < p.fastSpin; n++ {
		if ctr.Load() >= target {
			return
		}
	}
	w := p.parts[self]
	for {
		for n := 0; n < p.yieldSpin; n++ {
			if ctr.Load() >= target {
				return
			}
			runtime.Gosched()
		}
		w.parked.Store(true)
		if ctr.Load() >= target {
			if w.parked.CompareAndSwap(true, false) {
				return
			}
			// A waker claimed us between the store and the CAS; its token
			// is in flight and must be consumed before the next park.
		}
		<-w.wake
		if ctr.Load() >= target {
			return
		}
	}
}

// waitCounterPark is waitCounter with the descheduled portion measured: it
// returns the total nanoseconds spent blocked on the wake channel, so a
// sampled barrier wait can be split into spin (busy + yield) and park
// (futex-sleep) buckets. Token discipline is identical to waitCounter.
func (p *phasePool) waitCounterPark(ctr *atomic.Uint64, target uint64, self int) int64 {
	var park int64
	for n := 0; n < p.fastSpin; n++ {
		if ctr.Load() >= target {
			return park
		}
	}
	w := p.parts[self]
	for {
		for n := 0; n < p.yieldSpin; n++ {
			if ctr.Load() >= target {
				return park
			}
			runtime.Gosched()
		}
		w.parked.Store(true)
		if ctr.Load() >= target {
			if w.parked.CompareAndSwap(true, false) {
				return park
			}
			// A waker claimed us between the store and the CAS; its token
			// is in flight and must be consumed before the next park.
		}
		t0 := time.Now()
		<-w.wake
		park += int64(time.Since(t0))
		if ctr.Load() >= target {
			return park
		}
	}
}

// wakeOthers unparks every parked participant except self. The CAS makes
// each in-flight token exclusive: only the goroutine that flips parked
// true→false may send, and the parked participant consumes exactly one.
func (p *phasePool) wakeOthers(self int) {
	for i, w := range p.parts {
		if i == self {
			continue
		}
		if w.parked.CompareAndSwap(true, false) {
			w.wake <- struct{}{}
		}
	}
}

// stop terminates the worker goroutines. Idempotent; safe from the driver
// between cycles and from the kernel's GC cleanup (which only fires once no
// goroutine can be mid-cycle).
func (p *phasePool) stop() {
	if !p.stopped.CompareAndSwap(false, true) {
		return
	}
	p.cleanup.Stop()
	p.epoch.Add(1)
	p.wakeOthers(0)
}

// maybeRebalance folds the profiling samples into the EWMA costs and repacks
// the shards when the heaviest one exceeds the mean by imbalanceTrigger.
// Driver-only, between cycles; the epoch store publishes the new assignment
// to the workers. Allocation-free: every buffer was sized at pool start.
func (p *phasePool) maybeRebalance() {
	total := 0.0
	for i := range p.units {
		u := &p.units[i]
		if u.sampleCnt > 0 {
			s := u.sampleNs / float64(u.sampleCnt)
			if u.seeded {
				u.cost = ewmaOld*u.cost + (1-ewmaOld)*s
			} else {
				// First real measurement replaces the static seed outright —
				// the two are not in the same unit system.
				u.cost, u.seeded = s, true
			}
			u.sampleNs, u.sampleCnt = 0, 0
		}
		total += u.cost
	}
	if total <= 0 {
		return
	}
	maxLoad := 0.0
	for w := 0; w < p.nw; w++ {
		l := 0.0
		for _, ui := range p.assign[w] {
			l += p.units[ui].cost
		}
		if l > maxLoad {
			maxLoad = l
		}
	}
	mean := total / float64(p.nw)
	if maxLoad <= imbalanceTrigger*mean {
		return
	}
	moved := p.repack()
	if p.pm != nil {
		// p.load holds the freshly-packed per-shard loads; the mean is
		// unchanged by repacking, so before/after imbalance share the scale.
		after := 0.0
		for w := 0; w < p.nw; w++ {
			if p.load[w] > after {
				after = p.load[w]
			}
		}
		p.pm.RecordRebalance(perfmon.RebalanceEvent{
			Cycle:           p.cycle,
			Migrations:      moved,
			ImbalanceBefore: maxLoad / mean,
			ImbalanceAfter:  after / mean,
		})
	}
}

// seedPack builds the initial shard assignment from topology: units are
// ordered by their tile hint (a mesh node ID; untiled units keep
// registration order at the end) and the ordered sequence is cut into nw
// contiguous, cost-balanced segments. Because routers and per-node agent
// groups register in row-major node order, contiguous tile ranges are
// spatial row bands of the mesh — each worker owns neighbouring routers, so
// the links between them stay within one worker's cache instead of
// ping-ponging between shards every cycle. The EWMA/LPT rebalancer (repack)
// stays in charge of correcting measured imbalance later; this only replaces
// the cold-start seed, which LPT would otherwise scatter round-robin across
// shards with no regard for adjacency.
func (p *phasePool) seedPack() {
	for i := range p.order {
		p.order[i] = i
	}
	sort.Stable(&tileSorter{p: p})
	total := 0.0
	for i := range p.units {
		total += p.units[i].cost
	}
	for w := range p.assign {
		p.assign[w] = p.assign[w][:0]
		p.load[w] = 0
	}
	moved := uint64(0)
	w := 0
	remaining := total
	for k, ui := range p.order {
		c := p.units[ui].cost
		if w < p.nw-1 && len(p.assign[w]) > 0 {
			unitsLeft := len(p.order) - k
			shardsAfter := p.nw - 1 - w
			fair := remaining / float64(p.nw-w)
			// Advance when the current shard has its fair share of the
			// remaining cost (charging half the next unit keeps the cut at
			// the nearest boundary), or when the leftover units are only
			// enough to give each later shard one.
			if p.load[w]+c/2 > fair || unitsLeft <= shardsAfter {
				w++
			}
		}
		p.assign[w] = append(p.assign[w], ui)
		p.load[w] += c
		remaining -= c
		if p.units[ui].owner != int32(w) {
			if p.units[ui].owner >= 0 {
				moved++
			}
			p.units[ui].owner = int32(w)
		}
	}
	p.rebuildActive()
	p.rebalances.Add(1)
	p.migrations.Add(moved)
}

// tileSorter orders pool.order by ascending tile hint; untiled units (-1)
// sort last and stability keeps registration order within equal keys.
type tileSorter struct{ p *phasePool }

func (s *tileSorter) Len() int { return len(s.p.order) }
func (s *tileSorter) Less(i, j int) bool {
	a := s.p.units[s.p.order[i]].tile
	b := s.p.units[s.p.order[j]].tile
	if a < 0 {
		return false
	}
	if b < 0 {
		return true
	}
	return a < b
}
func (s *tileSorter) Swap(i, j int) {
	s.p.order[i], s.p.order[j] = s.p.order[j], s.p.order[i]
}

// repack reassigns units to shards longest-processing-time-first: units in
// descending cost order, each onto the currently lightest shard. Ties break
// deterministically (stable sort, lowest shard index), though assignment
// never affects simulation results — phases are isolated by construction.
// Returns the number of units that changed shard.
func (p *phasePool) repack() uint64 {
	for i := range p.order {
		p.order[i] = i
	}
	sort.Stable(p.sorter)
	for w := range p.assign {
		p.assign[w] = p.assign[w][:0]
		p.load[w] = 0
	}
	moved := uint64(0)
	for _, ui := range p.order {
		best := 0
		for w := 1; w < p.nw; w++ {
			if p.load[w] < p.load[best] {
				best = w
			}
		}
		p.assign[best] = append(p.assign[best], ui)
		p.load[best] += p.units[ui].cost
		if p.units[ui].owner != int32(best) {
			if p.units[ui].owner >= 0 {
				moved++
			}
			p.units[ui].owner = int32(best)
		}
	}
	p.rebuildActive()
	p.rebalances.Add(1)
	p.migrations.Add(moved)
	return moved
}

// rebuildActive refreshes the flat dispatch lists from the currently active
// units. Called by the driver between cycles whenever the active set or the
// shard assignment changes; allocation-free once the backing arrays have
// grown to the full component count.
func (p *phasePool) rebuildActive() {
	if p.inline {
		p.inlineAll = p.inlineAll[:0]
		for i := range p.units {
			if u := &p.units[i]; u.active {
				p.inlineAll = append(p.inlineAll, u.comps...)
			}
		}
		return
	}
	for w := range p.flat {
		p.flat[w] = p.flat[w][:0]
		for _, ui := range p.assign[w] {
			if u := &p.units[ui]; u.active {
				p.flat[w] = append(p.flat[w], u.comps...)
			}
		}
	}
}

// costSorter orders pool.order by descending unit cost (stable, so equal
// costs keep first-appearance order).
type costSorter struct{ p *phasePool }

func (s *costSorter) Len() int { return len(s.p.order) }
func (s *costSorter) Less(i, j int) bool {
	return s.p.units[s.p.order[i]].cost > s.p.units[s.p.order[j]].cost
}
func (s *costSorter) Swap(i, j int) {
	s.p.order[i], s.p.order[j] = s.p.order[j], s.p.order[i]
}
