package sim

import (
	"sync/atomic"

	"scorpio/internal/obs/perfmon"
)

// WakeEdge re-exports the perfmon wake-edge taxonomy: producers classify
// their Wake calls so the engine's self-observability layer can report who
// wakes whom (see perfmon.ActivityCounters.Wakes).
type WakeEdge = perfmon.WakeEdge

// Wake edge kinds (see perfmon's definitions for semantics).
const (
	WakeFlit   = perfmon.WakeFlit
	WakeCredit = perfmon.WakeCredit
	WakeNotif  = perfmon.WakeNotif
	WakeOrder  = perfmon.WakeOrder
	WakeTimer  = perfmon.WakeTimer
	WakeOther  = perfmon.WakeOther
)

// NoEvent is the "no known future event" sentinel for NextEventCycle and for
// an Activity parked without a self-wake.
const NoEvent = ^uint64(0)

// Idler is optionally implemented by components that can tell the kernel
// their Evaluate/Commit would be a pure no-op. A unit whose components all
// implement Idler is eligible for idle-skip: once every member reports
// Idle(), the kernel stops ticking the unit until something wakes it.
//
// The contract that keeps skip-on execution bit-identical to skip-off:
//
//   - Idle() must only return true when, absent new input, Evaluate and
//     Commit change no state (no queues drained, no RNG drawn, no counters
//     moved). Spurious activity is safe — the kernel may tick an idle
//     component and nothing changes; a missed tick is not.
//   - Any input another component can hand this one must either arrive
//     through a waking channel (a Link write, an Activity.Wake) or be
//     visible to Idle() itself, so the component never sleeps through work.
//   - Idle() is only consulted for units that executed the cycle just
//     finished, so it may inspect "did an input land this cycle" state such
//     as link stamps.
type Idler interface {
	// Idle reports that the component has no work now and none arriving
	// next cycle.
	Idle() bool
}

// NextEventer is optionally implemented by idle-capable components that know
// the next cycle at which they will have self-generated work (an injector's
// presampled issue cycle, a queue's ready time, an orderer's next window
// boundary). The kernel parks the unit with a timing-wheel entry at the
// earliest such cycle; components whose work is purely input-driven omit the
// interface and rely on wakes alone.
type NextEventer interface {
	// NextEventCycle returns the first cycle > now at which the component
	// needs to run again, or NoEvent if it has no self-scheduled work.
	NextEventCycle(now uint64) uint64
}

// Activity is one scheduling unit's wake mailbox. The kernel hands one out
// per unit at registration; producers that deposit work for the unit
// (upstream links, the notification network, orderers) call Wake with the
// first cycle the unit must run to consume it.
//
// state encodes the unit's scheduling status: 0 means active (ticked every
// cycle); NoEvent means parked with no pending wake; any other value is the
// earliest requested wake cycle. Wake never touches an active unit — while a
// unit runs every cycle, its own Idle() check sees freshly-arrived input, so
// recording the wake would be redundant atomic traffic on the hot path.
// Transitions 0→parked and parked→0 are made only by the driver between
// cycles; Wake only ever lowers a parked unit's wake cycle, so the two sides
// never race.
type Activity struct {
	state atomic.Uint64
	// sig points at the owning kernel's wake counter; every successful
	// lowering bumps it so the driver knows a full reconcile scan is due.
	sig *atomic.Uint64
	// edges points at the owning kernel's per-edge wake census; each
	// successful lowering is attributed to the producer's declared edge.
	edges *[perfmon.NumWakeEdges]atomic.Uint64
	// tile holds the unit's topology hint plus one (0 = untiled), set via
	// SetTile; the sharder seeds spatially contiguous shards from it.
	tile int32

	// Pad to a full cache line: Activity words are written by producer
	// shards (Wake) while neighbouring Activities are read by others;
	// without padding two units' mailboxes share a line and every wake
	// invalidates an unrelated shard's cache.
	_ [64 - 32]byte
}

// SetTile tags the unit with a topology tile (a mesh node ID): units with
// nearby tiles are placed on the same shard by the kernel's initial packing,
// so neighbouring routers and the links between them stay in one worker's
// cache. Negative clears the hint. Call during wiring, before the kernel
// builds its schedule.
func (a *Activity) SetTile(t int) {
	if t < 0 {
		a.tile = 0
		return
	}
	a.tile = int32(t) + 1
}

// Tile returns the unit's topology hint, or -1 when untiled.
func (a *Activity) Tile() int { return int(a.tile) - 1 }

// Wake requests that the unit run at the given cycle (or earlier, if an
// earlier wake is already pending), attributing the request to the
// producer's edge kind. Nil-safe and safe from any goroutine during a
// cycle's phases; wakes land strictly before the driver's between-cycle
// scan because the phase barriers order them.
func (a *Activity) Wake(cycle uint64, edge WakeEdge) {
	if a == nil {
		return
	}
	if cycle == 0 {
		// Cycle 0 cannot be a wake target (everything starts active); 0 is
		// the active encoding.
		cycle = 1
	}
	for {
		cur := a.state.Load()
		if cur == 0 || cur <= cycle {
			return // active, or an equal/earlier wake is already pending
		}
		if a.state.CompareAndSwap(cur, cycle) {
			a.sig.Add(1)
			a.edges[edge].Add(1)
			return
		}
	}
}
