package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// forceProcs pins GOMAXPROCS for the duration of a test so both of the
// pool's execution modes — inline on a single-proc host, concurrent
// otherwise — are exercised regardless of the machine the tests run on.
// Pools sample GOMAXPROCS at start, so the mode sticks even after restore.
func forceProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// buildChain wires n stage components into a committed-state pipeline and
// registers them in the order given by perm (identity when nil).
func buildChain(n int, perm []int, workers int) (*Kernel, []*stage) {
	stages := make([]*stage, n)
	for i := range stages {
		stages[i] = &stage{}
		if i > 0 {
			stages[i].left = stages[i-1]
		}
	}
	stages[0].value = 7
	stages[0].pending = 7
	k := NewKernel()
	for i := 0; i < n; i++ {
		idx := i
		if perm != nil {
			idx = perm[i]
		}
		k.Register(stages[idx])
	}
	k.SetWorkers(workers)
	return k, stages
}

func chainValues(stages []*stage) []int {
	vals := make([]int, len(stages))
	for i, s := range stages {
		vals[i] = s.value
	}
	return vals
}

// TestKernelParallelMatchesSerial pins the core contract: the same component
// graph produces identical state serial and at every worker count, in both
// the inline and the concurrent pool mode.
func TestKernelParallelMatchesSerial(t *testing.T) {
	const n, cycles = 64, 40
	kRef, ref := buildChain(n, nil, 1)
	kRef.Run(cycles)
	for _, mode := range []struct {
		name  string
		procs int
	}{{"inline", 1}, {"concurrent", 4}} {
		t.Run(mode.name, func(t *testing.T) {
			forceProcs(t, mode.procs)
			for _, workers := range []int{2, 3, 8} {
				k, stages := buildChain(n, nil, workers)
				k.Run(cycles)
				want, got := chainValues(ref), chainValues(stages)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("workers=%d stage %d: got %d want %d", workers, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestKernelParallelShuffledOrder locks in registration-order independence
// under parallel execution: a deterministically shuffled registration order
// must not change any component's final state.
func TestKernelParallelShuffledOrder(t *testing.T) {
	forceProcs(t, 4)
	const n, cycles = 64, 40
	kRef, ref := buildChain(n, nil, 1)
	kRef.Run(cycles)
	rng := NewRNG(99)
	for trial := 0; trial < 5; trial++ {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		k, stages := buildChain(n, perm, 4)
		k.Run(cycles)
		want, got := chainValues(ref), chainValues(stages)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d stage %d: got %d want %d", trial, i, got[i], want[i])
			}
		}
	}
}

// ordered records the order its unit's members evaluate in, through a log
// shared by the whole group — legal exactly because RegisterGroup keeps the
// group on one worker.
type ordered struct {
	id  int
	log *[]int
}

func (o *ordered) Evaluate(cycle uint64) { *o.log = append(*o.log, o.id) }
func (o *ordered) Commit(cycle uint64)   {}

// TestRegisterGroupPreservesOrder verifies that components sharing a group
// key execute in registration order on a single worker.
func TestRegisterGroupPreservesOrder(t *testing.T) {
	forceProcs(t, 4)
	k := NewKernel()
	logs := make([][]int, 4)
	for g := 0; g < 4; g++ {
		for i := 0; i < 3; i++ {
			k.RegisterGroup(g, &ordered{id: g*10 + i, log: &logs[g]})
		}
	}
	k.SetWorkers(4)
	k.Run(2)
	for g, log := range logs {
		want := []int{g * 10, g*10 + 1, g*10 + 2, g * 10, g*10 + 1, g*10 + 2}
		if len(log) != len(want) {
			t.Fatalf("group %d log %v, want %v", g, log, want)
		}
		for i := range want {
			if log[i] != want[i] {
				t.Fatalf("group %d log %v, want %v", g, log, want)
			}
		}
	}
}

// TestKernelStepRestartsPool checks that driving Step directly works after a
// Run (workers stay warm across calls now), and that late registration
// reshards.
func TestKernelStepRestartsPool(t *testing.T) {
	forceProcs(t, 4)
	k := NewKernel()
	counters := make([]*counter, 16)
	for i := range counters {
		counters[i] = &counter{}
		k.Register(counters[i])
	}
	k.SetWorkers(4)
	k.Run(3) // workers stay warm on return
	late := &counter{}
	k.Register(late)
	for i := 0; i < 2; i++ {
		k.Step()
	}
	k.StopWorkers()
	if counters[0].value != 5 || late.value != 2 {
		t.Fatalf("values = %d, %d; want 5, 2", counters[0].value, late.value)
	}
	if k.Cycle() != 5 {
		t.Fatalf("cycle = %d, want 5", k.Cycle())
	}
	if k.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", k.Workers())
	}
}

// spinComp burns a deterministic amount of CPU per evaluate proportional to
// weight, counts committed cycles, and advertises a static cost seed that is
// deliberately allowed to lie — the profiling rebalance must correct it.
type spinComp struct {
	weight int
	seed   int
	sink   uint64
	value  int
}

func (c *spinComp) Evaluate(cycle uint64) {
	h := c.sink + cycle
	for i := 0; i < c.weight*200; i++ {
		h = h*0x9e3779b97f4a7c15 + 1
		h ^= h >> 29
	}
	c.sink = h
}
func (c *spinComp) Commit(cycle uint64) { c.value++ }
func (c *spinComp) PhaseCost() int      { return c.seed }

// TestShardRebalanceUnderReshard drives the cost-balanced sharder end to end:
// a unit whose static seed wildly understates its measured cost must be
// migrated off its overloaded shard by a profiling rebalance, and a mid-run
// registration — which tears the pool down and rebuilds it from static seeds
// — must leave every component's cycle count exact and balancing alive.
func TestShardRebalanceUnderReshard(t *testing.T) {
	forceProcs(t, 4)
	k := NewKernel()
	var comps []*spinComp
	heavy := &spinComp{weight: 50, seed: 1} // lies: claims to cost the same as the rest
	comps = append(comps, heavy)
	k.Register(heavy)
	for i := 0; i < 7; i++ {
		c := &spinComp{weight: 1, seed: 1}
		comps = append(comps, c)
		k.Register(c)
	}
	k.SetWorkers(2)
	const first = rebalanceEvery + sampleEvery + 2
	k.Run(first)
	reb, mig := k.BalanceStats()
	if reb < 2 { // 1 is the initial pack; >= 2 means a measured repack fired
		t.Fatalf("rebalances = %d, want >= 2 (no measured rebalance fired)", reb)
	}
	if mig == 0 {
		t.Fatal("rebalance fired but migrated no units")
	}
	late := &spinComp{weight: 1, seed: 1}
	comps = append(comps, late)
	k.Register(late) // reshard: the pool is rebuilt from scratch
	const second = rebalanceEvery + sampleEvery + 2
	k.Run(second)
	if reb2, _ := k.BalanceStats(); reb2 < 2 {
		t.Fatalf("post-reshard rebalances = %d, want >= 2", reb2)
	}
	for i, c := range comps {
		want := first + second
		if c == late {
			want = second
		}
		if c.value != want {
			t.Fatalf("comp %d committed %d cycles, want %d", i, c.value, want)
		}
	}
	k.StopWorkers()
}

// benchComp is a synthetic component with a realistic per-cycle cost: it
// mixes its private state and reads a few neighbours' committed outputs.
type benchComp struct {
	state   [16]uint64
	peers   []*benchComp
	pending uint64
	out     uint64
}

func (c *benchComp) Evaluate(cycle uint64) {
	h := cycle
	for i := range c.state {
		h = (h ^ c.state[i]) * 0x9e3779b97f4a7c15
		h ^= h >> 29
	}
	for _, p := range c.peers {
		h ^= p.out
	}
	c.pending = h
}

func (c *benchComp) Commit(cycle uint64) {
	c.out = c.pending
	c.state[cycle%uint64(len(c.state))] = c.out
}

// BenchmarkKernelThroughput measures kernel stepping speed over a 512-node
// synthetic component graph at 1, 2 and NumCPU workers, reporting cycles/sec
// and components·cycles/sec.
func BenchmarkKernelThroughput(b *testing.B) {
	const n = 512
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			comps := make([]*benchComp, n)
			for i := range comps {
				comps[i] = &benchComp{state: [16]uint64{uint64(i)}}
			}
			k := NewKernel()
			for i, c := range comps {
				c.peers = []*benchComp{comps[(i+1)%n], comps[(i+n-1)%n]}
				k.Register(c)
			}
			k.SetWorkers(workers)
			b.ResetTimer()
			k.Run(uint64(b.N))
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "cycles/s")
				b.ReportMetric(float64(b.N)*n/secs, "comp·cycles/s")
			}
		})
	}
}
