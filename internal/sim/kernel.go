// Package sim provides the deterministic two-phase synchronous simulation
// kernel that every SCORPIO component runs on.
//
// A cycle has two phases. In the evaluate phase each component reads the
// registered (previous-cycle) outputs of its neighbours and computes its next
// state; in the commit phase every component latches that state. Because no
// component observes another component's *next* state during evaluation, the
// simulation result is independent of the order in which components are
// registered, which makes runs bit-for-bit reproducible.
//
// The same property makes the kernel parallelizable: SetWorkers(n) shards the
// component list over n persistent workers (the driving goroutine is worker 0)
// that run every Evaluate, barrier, then run every Commit. Components that
// call each other directly within a phase (a NIC delivering into its node's
// L2, say) must share a scheduling unit — register them under one key with
// RegisterGroup so the kernel never splits them across workers and their
// relative order inside the unit matches their registration order.
//
// Scheduling units are packed onto workers by measured cost (see pool.go):
// every unit carries an EWMA of its observed per-cycle phase time, refreshed
// on periodic profiling cycles, and the pool repacks units longest-processing-
// time-first whenever the shards drift out of balance. Assignment never
// affects results — only which goroutine happens to execute a unit.
package sim

import "runtime"

// Component is a hardware block ticked once per cycle.
//
// Evaluate must only read other components' committed state and write the
// component's own pending state; Commit latches pending state so the next
// cycle can observe it.
type Component interface {
	// Evaluate computes the component's next state for the given cycle.
	Evaluate(cycle uint64)
	// Commit latches the state computed by Evaluate.
	Commit(cycle uint64)
}

// PhaseCoster is optionally implemented by components whose per-cycle cost is
// far from the average (the notification network's single component does a
// whole mesh's worth of work, for example). The static weight seeds the
// cost-balanced sharder before any profiling cycle has measured real phase
// times; afterwards the measured EWMA takes over entirely.
type PhaseCoster interface {
	// PhaseCost returns a relative per-cycle cost estimate; ordinary
	// components default to 1.
	PhaseCost() int
}

// unit is one scheduling unit: components that must execute on the same
// worker, in order, plus the sharder's cost bookkeeping.
type unit struct {
	comps []Component
	// cost is the balancing weight: the static seed until the first
	// profiling cycle, then an EWMA of measured phase nanoseconds.
	cost   float64
	seeded bool // cost holds measured time, not the static seed
	// sampleNs/sampleCnt accumulate profiling-cycle measurements; written
	// only by the owning worker mid-cycle, folded and zeroed by the driver
	// between cycles (the commit barrier orders the two).
	sampleNs  float64
	sampleCnt uint32
	owner     int32 // current shard, for migration accounting
}

// Kernel drives a set of components with a shared synchronous clock.
type Kernel struct {
	components []Component
	groupKeys  []int // per-component group key; negative = singleton unit
	nextAuto   int
	cycle      uint64

	workers int
	dirty   bool // units stale: registration or worker count changed
	noShard bool // last unit build found too few units to shard
	pool    *phasePool

	observer func(cycle uint64)
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{nextAuto: -1}
}

// Register adds a component to the kernel's tick list as its own scheduling
// unit.
func (k *Kernel) Register(c Component) {
	k.components = append(k.components, c)
	k.groupKeys = append(k.groupKeys, k.nextAuto)
	k.nextAuto--
	k.dirty = true
}

// RegisterGroup adds a component to the scheduling unit identified by key
// (key >= 0). All components sharing a key execute on the same worker, in
// registration order, so they may call each other directly during a phase.
func (k *Kernel) RegisterGroup(key int, c Component) {
	if key < 0 {
		panic("sim: RegisterGroup key must be non-negative")
	}
	k.components = append(k.components, c)
	k.groupKeys = append(k.groupKeys, key)
	k.dirty = true
}

// SetWorkers selects the execution mode: n <= 1 runs every phase on the
// calling goroutine (the default), n > 1 shards the scheduling units over n
// persistent workers (the driving goroutine is one of them). Results are
// identical either way.
func (k *Kernel) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n == k.workers {
		return
	}
	k.workers = n
	k.dirty = true
}

// Workers reports the configured worker count (1 = serial).
func (k *Kernel) Workers() int {
	if k.workers < 1 {
		return 1
	}
	return k.workers
}

// Cycle reports the number of cycles fully executed so far.
func (k *Kernel) Cycle() uint64 {
	return k.cycle
}

// SetObserver installs a function called after every Step's commit phase
// with the cycle just executed. It runs on the driving goroutine after all
// workers have barriered, so it may freely read committed component state —
// the observability layer's sampling and watchdog point. Pass nil to remove
// it; when nil the per-step cost is a single branch.
func (k *Kernel) SetObserver(fn func(cycle uint64)) {
	k.observer = fn
}

// Step executes exactly one cycle: all Evaluates, then all Commits.
func (k *Kernel) Step() {
	cyc := k.cycle
	if p := k.parallelPool(); p != nil {
		p.step(cyc)
	} else {
		for _, c := range k.components {
			c.Evaluate(cyc)
		}
		for _, c := range k.components {
			c.Commit(cyc)
		}
	}
	k.cycle++
	if k.observer != nil {
		k.observer(cyc)
	}
}

// Run executes n cycles. Worker goroutines stay warm on return so repeated
// runs (sweeps, litmus sequences) never pay pool start/stop; they are
// released by StopWorkers, by the next reshard, or by a GC cleanup when the
// kernel itself becomes unreachable.
func (k *Kernel) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil steps the kernel until done reports true or the cycle limit is
// reached, and reports whether done became true. Like Run, worker goroutines
// stay warm on return.
func (k *Kernel) RunUntil(done func() bool, limit uint64) bool {
	for k.cycle < limit {
		if done() {
			return true
		}
		k.Step()
	}
	return done()
}

// StopWorkers releases the persistent worker goroutines; the next parallel
// Step restarts them. Calling it is optional — an unreachable kernel's pool
// is stopped by a runtime cleanup — but drivers that hold many kernels alive
// (a sweep retaining finished machines for their results, say) can release
// the goroutines eagerly with it.
func (k *Kernel) StopWorkers() {
	if k.pool != nil {
		k.pool.stop()
		k.pool = nil
	}
}

// Components reports how many components are registered.
func (k *Kernel) Components() int {
	return len(k.components)
}

// BalanceStats reports the cost-balanced sharder's activity since the pool
// started: how many rebalance passes ran and how many unit migrations they
// performed. Zeroes when the kernel is serial or the pool has not started.
func (k *Kernel) BalanceStats() (rebalances, migrations uint64) {
	if k.pool == nil {
		return 0, 0
	}
	return k.pool.rebalances, k.pool.migrations
}

// parallelPool returns the running worker pool, starting or rebuilding it as
// needed, or nil when the kernel should step serially.
func (k *Kernel) parallelPool() *phasePool {
	if k.workers <= 1 || len(k.components) < 2*k.workers {
		return nil
	}
	if k.dirty {
		k.StopWorkers()
		k.dirty = false
		k.noShard = false
	}
	if k.noShard {
		return nil
	}
	if k.pool == nil {
		units := k.buildUnits()
		if len(units) < 2 {
			k.noShard = true
			return nil
		}
		nw := k.workers
		if nw > len(units) {
			nw = len(units)
		}
		k.pool = newPhasePool(units, nw)
		// Leak guard: Run no longer tears the pool down, so a kernel that is
		// simply dropped would otherwise strand parked goroutines. The pool
		// holds no reference back to the kernel, so the cleanup fires once
		// the kernel is unreachable.
		k.pool.cleanup = runtime.AddCleanup(k, func(p *phasePool) { p.stop() }, k.pool)
	}
	return k.pool
}

// buildUnits groups components into scheduling units (registration order
// within a unit, first-appearance order across units) and seeds each unit's
// balancing cost from the components' static weights.
func (k *Kernel) buildUnits() []unit {
	unitOf := make(map[int]int)
	var units []unit
	for i, c := range k.components {
		key := k.groupKeys[i]
		if key >= 0 {
			if u, ok := unitOf[key]; ok {
				units[u].comps = append(units[u].comps, c)
				continue
			}
			unitOf[key] = len(units)
		}
		units = append(units, unit{comps: []Component{c}})
	}
	for i := range units {
		w := 0.0
		for _, c := range units[i].comps {
			if h, ok := c.(PhaseCoster); ok {
				w += float64(h.PhaseCost())
			} else {
				w++
			}
		}
		units[i].cost = w
	}
	return units
}
