// Package sim provides the deterministic two-phase synchronous simulation
// kernel that every SCORPIO component runs on.
//
// A cycle has two phases. In the evaluate phase each component reads the
// registered (previous-cycle) outputs of its neighbours and computes its next
// state; in the commit phase every component latches that state. Because no
// component observes another component's *next* state during evaluation, the
// simulation result is independent of the order in which components are
// registered, which makes runs bit-for-bit reproducible.
//
// The same property makes the kernel parallelizable: SetWorkers(n) shards the
// component list over n persistent workers (the driving goroutine is worker 0)
// that run every Evaluate, barrier, then run every Commit. Components that
// call each other directly within a phase (a NIC delivering into its node's
// L2, say) must share a scheduling unit — register them under one key with
// RegisterGroup so the kernel never splits them across workers and their
// relative order inside the unit matches their registration order.
//
// Scheduling units are packed onto workers by measured cost (see pool.go):
// every unit carries an EWMA of its observed per-cycle phase time, refreshed
// on periodic profiling cycles, and the pool repacks units longest-processing-
// time-first whenever the shards drift out of balance. Assignment never
// affects results — only which goroutine happens to execute a unit.
//
// Execution is activity-driven (see activity.go): a unit whose components all
// implement Idler is parked once every member reports Idle(), and only woken
// by an Activity.Wake from a producer or by its own NextEventCycle. Parked
// units cost nothing per cycle; when every unit is parked, Run and RunUntil
// fast-forward the clock straight to the earliest pending wake. Both
// mechanisms are driver-side and state-driven, so skip-on execution is
// bit-identical to skip-off at any worker count. SetIdleSkip(false) restores
// the always-step path.
package sim

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"scorpio/internal/obs/perfmon"
)

// Component is a hardware block ticked once per cycle.
//
// Evaluate must only read other components' committed state and write the
// component's own pending state; Commit latches pending state so the next
// cycle can observe it.
type Component interface {
	// Evaluate computes the component's next state for the given cycle.
	Evaluate(cycle uint64)
	// Commit latches the state computed by Evaluate.
	Commit(cycle uint64)
}

// PhaseCoster is optionally implemented by components whose per-cycle cost is
// far from the average (the notification network's single component does a
// whole mesh's worth of work, for example). The static weight seeds the
// cost-balanced sharder before any profiling cycle has measured real phase
// times; afterwards the measured EWMA takes over entirely.
type PhaseCoster interface {
	// PhaseCost returns a relative per-cycle cost estimate; ordinary
	// components default to 1.
	PhaseCost() int
}

// Idle-skip engine constants: the demotion pass that parks newly-idle units
// runs every demoteEvery cycles while units are parking or waking (lazy — an
// idle unit burns at most demoteEvery no-op cycles before parking), and backs
// off exponentially to demoteMax while passes find nothing to park, so at
// saturation the Idle() polling cost fades to a fraction of a percent; any
// wake resets the cadence. The timing wheel that schedules known-future wakes
// has wheelSlots single-cycle slots (far-future wakes re-enter the wheel each
// wrap).
const (
	demoteEvery = 4
	demoteMax   = 32
	wheelSlots  = 256
)

// The timing wheel is intrusive: each slot heads a doubly-linked list
// threaded through the units' wheelNext/wheelPrev indices, so filing,
// rescheduling and draining are O(1) pointer splices with zero allocation —
// no slot slice ever grows, and a unit has exactly one live entry.

// unit is one scheduling unit: components that must execute on the same
// worker, in order, plus the activity engine's and the sharder's bookkeeping.
// Fields are ordered wide-to-narrow (slices/words, then int32s, then bools)
// so the compiler inserts no alignment holes; cmd/layoutcheck polices the
// same rule for exported structs, and TestUnitPacksTight pins this one.
type unit struct {
	comps []Component
	// act is the unit's wake mailbox, stable across unit rebuilds.
	act *Activity
	// idlers and nexters are the pre-asserted views used by the demotion
	// pass; only units whose components all provide them ever park.
	idlers  []Idler
	nexters []NextEventer
	// wheelAt is the cycle of the unit's live timing-wheel entry (NoEvent =
	// none).
	wheelAt uint64
	// cost is the balancing weight: the static seed until the first
	// profiling cycle, then an EWMA of measured phase nanoseconds.
	cost float64
	// sampleNs/sampleCnt accumulate profiling-cycle measurements; written
	// only by the owning worker mid-cycle (or the driver, for parked units),
	// folded and zeroed by the driver between cycles (the commit barrier
	// orders the two).
	sampleNs float64
	// wheelNext/wheelPrev link the unit into its timing-wheel slot's list
	// (-1 = end).
	wheelNext int32
	wheelPrev int32
	sampleCnt uint32
	owner     int32 // current shard, for migration accounting
	// tile is the unit's topology hint (mesh node ID, -1 = none), copied
	// from its Activity; the pool's initial packing clusters contiguous
	// tiles onto the same shard.
	tile int32
	// canIdle marks a unit whose components all implement Idler; only such
	// units ever park.
	canIdle bool
	// active mirrors act.state==0 for the driver and, via the pool's epoch
	// publication, the workers.
	active bool
	seeded bool // cost holds measured time, not the static seed
}

// Kernel drives a set of components with a shared synchronous clock.
type Kernel struct {
	components []Component
	groupKeys  []int // per-component group key; negative = singleton unit
	acts       []*Activity
	groupActs  map[int]*Activity
	nextAuto   int
	cycle      uint64

	workers int
	dirty   bool // units stale: registration or worker count changed
	noShard bool // last unit build found too few units to shard
	pool    *phasePool

	// Activity engine state (driver-only, except wakeSignal).
	idleSkip   bool
	units      []unit
	nActive    int
	actDirty   bool // active set changed; flat dispatch lists stale
	wakeSignal atomic.Uint64
	lastSignal uint64
	wheelHead  [wheelSlots]int32
	serialAct  []Component // serial-mode flat active dispatch list
	demoteNext uint64      // cycle after which the next demote pass runs
	demoteGap  uint64      // current demote interval (adaptive backoff)

	// Self-observability state (see internal/obs/perfmon). The engine's
	// event census in engineStats is always on — its plain fields are
	// driver-written single increments — while the sampled phase timing only
	// runs with a monitor attached (pm != nil). wakeEdges is the shared
	// per-edge wake census every Activity points into.
	pm          *perfmon.Mon
	pmStride    uint64
	pmSteps0    uint64 // engineStats.StepsExecuted when the monitor attached
	engineStats perfmon.ActivityCounters
	wakeEdges   [perfmon.NumWakeEdges]atomic.Uint64

	observer func(cycle uint64)
}

// NewKernel returns an empty kernel at cycle 0 with idle-skip enabled.
func NewKernel() *Kernel {
	return &Kernel{nextAuto: -1, idleSkip: true}
}

// Register adds a component to the kernel's tick list as its own scheduling
// unit and returns the unit's wake mailbox (stable for the kernel's life).
func (k *Kernel) Register(c Component) *Activity {
	a := &Activity{sig: &k.wakeSignal, edges: &k.wakeEdges}
	k.components = append(k.components, c)
	k.groupKeys = append(k.groupKeys, k.nextAuto)
	k.acts = append(k.acts, a)
	k.nextAuto--
	k.dirty = true
	return a
}

// RegisterGroup adds a component to the scheduling unit identified by key
// (key >= 0). All components sharing a key execute on the same worker, in
// registration order, so they may call each other directly during a phase.
// Returns the unit's shared wake mailbox.
func (k *Kernel) RegisterGroup(key int, c Component) *Activity {
	if key < 0 {
		panic("sim: RegisterGroup key must be non-negative")
	}
	if k.groupActs == nil {
		k.groupActs = make(map[int]*Activity)
	}
	a := k.groupActs[key]
	if a == nil {
		a = &Activity{sig: &k.wakeSignal, edges: &k.wakeEdges}
		// Group keys are node IDs at every call site, so they double as the
		// topology hint for tile-clustered sharding; callers with a different
		// keying scheme can override via SetTile.
		a.SetTile(key)
		k.groupActs[key] = a
	}
	k.components = append(k.components, c)
	k.groupKeys = append(k.groupKeys, key)
	k.acts = append(k.acts, a)
	k.dirty = true
	return a
}

// SetWorkers selects the execution mode: n <= 1 runs every phase on the
// calling goroutine (the default), n > 1 shards the scheduling units over n
// persistent workers (the driving goroutine is one of them). Results are
// identical either way.
func (k *Kernel) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n == k.workers {
		return
	}
	k.workers = n
	k.dirty = true
}

// Workers reports the configured worker count (1 = serial).
func (k *Kernel) Workers() int {
	if k.workers < 1 {
		return 1
	}
	return k.workers
}

// SetIdleSkip enables or disables activity-driven execution (enabled by
// default). Disabled, every unit is ticked every cycle and the clock never
// fast-forwards — the escape hatch for bisecting against the always-step
// path. Results are bit-identical either way.
func (k *Kernel) SetIdleSkip(on bool) {
	if on == k.idleSkip {
		return
	}
	k.idleSkip = on
	k.dirty = true
}

// IdleSkip reports whether activity-driven execution is enabled.
func (k *Kernel) IdleSkip() bool { return k.idleSkip }

// Cycle reports the number of cycles fully executed so far.
func (k *Kernel) Cycle() uint64 {
	return k.cycle
}

// SetObserver installs a function called after every Step's commit phase
// with the cycle just executed. It runs on the driving goroutine after all
// workers have barriered, so it may freely read committed component state —
// the observability layer's sampling and watchdog point. Pass nil to remove
// it; when nil the per-step cost is a single branch. A non-nil observer
// expects to see every cycle, so it also disables fast-forward (idle units
// are still skipped).
func (k *Kernel) SetObserver(fn func(cycle uint64)) {
	k.observer = fn
}

// Step executes exactly one cycle: all Evaluates, then all Commits — for
// every unit that is active this cycle.
func (k *Kernel) Step() {
	cyc := k.cycle
	p := k.ensureEngine()
	skip := k.idleSkip && len(k.units) > 0
	if skip {
		k.boundary(cyc)
	}
	// With a monitor attached, every pmStride-th cycle is sampled: the
	// driver stamps the full step span and each participant times its
	// phases. In concurrent mode the predicate runs off the pool generation
	// so workers (who only see g) reach the same verdict independently.
	due := false
	var t0 time.Time
	if k.pm != nil {
		if p != nil && !p.inline {
			due = (p.gen+1)%k.pmStride == 0
		} else {
			due = (k.engineStats.StepsExecuted+1)%k.pmStride == 0
		}
		if due {
			t0 = time.Now()
		}
	}
	switch {
	case p != nil:
		if k.actDirty {
			p.rebuildActive()
			k.actDirty = false
		}
		p.step(cyc, due)
	case skip:
		if k.actDirty {
			k.rebuildSerialActive()
			k.actDirty = false
		}
		if due {
			k.stepListTimed(k.serialAct, cyc)
		} else {
			for _, c := range k.serialAct {
				c.Evaluate(cyc)
			}
			for _, c := range k.serialAct {
				c.Commit(cyc)
			}
		}
	default:
		if due {
			k.stepListTimed(k.components, cyc)
		} else {
			for _, c := range k.components {
				c.Evaluate(cyc)
			}
			for _, c := range k.components {
				c.Commit(cyc)
			}
		}
	}
	k.engineStats.StepsExecuted++
	k.cycle++
	if k.observer != nil {
		k.observer(cyc)
	}
	if skip && cyc >= k.demoteNext {
		if k.demotePass(cyc) {
			k.demoteGap = demoteEvery
		} else if k.demoteGap < demoteMax {
			k.demoteGap *= 2
		}
		k.demoteNext = cyc + k.demoteGap
	}
	if due {
		// Stamped last so the span covers observer, demote and boundary work
		// — the report's "other" bucket is derived from it.
		k.pm.Worker(0).StepNs.Add(int64(time.Since(t0)))
	}
}

// stepListTimed is the sampled-cycle serial dispatch: the same work as the
// plain loops with the evaluate and commit phases timed into participant 0's
// monitor slot. Kept separate so the unsampled hot path stays untouched.
func (k *Kernel) stepListTimed(list []Component, cyc uint64) {
	w := k.pm.Worker(0)
	t0 := time.Now()
	for _, c := range list {
		c.Evaluate(cyc)
	}
	t1 := time.Now()
	for _, c := range list {
		c.Commit(cyc)
	}
	w.EvalNs.Add(int64(t1.Sub(t0)))
	w.CommitNs.Add(int64(time.Since(t1)))
	w.Sampled.Add(1)
}

// Run executes n cycles. Worker goroutines stay warm on return so repeated
// runs (sweeps, litmus sequences) never pay pool start/stop; they are
// released by StopWorkers, by the next reshard, or by a GC cleanup when the
// kernel itself becomes unreachable. Fully-quiescent spans are fast-forwarded
// (see fastForward).
func (k *Kernel) Run(n uint64) {
	end := k.cycle + n
	for k.cycle < end {
		if k.fastForward(end) {
			continue
		}
		k.Step()
	}
}

// RunUntil steps the kernel until done reports true or the cycle limit is
// reached, and reports whether done became true. Like Run, worker goroutines
// stay warm on return. Quiescent spans are fast-forwarded; done cannot change
// while no component runs, so it is re-checked at every executed cycle
// exactly as the stepwise path would.
func (k *Kernel) RunUntil(done func() bool, limit uint64) bool {
	for k.cycle < limit {
		if done() {
			return true
		}
		if k.fastForward(limit) {
			continue
		}
		k.Step()
	}
	return done()
}

// fastForward jumps the clock to the earliest pending wake when every unit
// is parked, bounded by limit; it reports whether the clock moved. Only
// legal when no observer is installed (an observer samples every cycle) —
// the observability layer installs one whenever any feature is on, so the
// gate is exactly "nothing is watching the per-cycle stream".
func (k *Kernel) fastForward(limit uint64) bool {
	if !k.idleSkip || k.observer != nil || k.nActive != 0 || len(k.units) == 0 {
		return false
	}
	mw := uint64(NoEvent)
	for i := range k.units {
		if st := k.units[i].act.state.Load(); st < mw {
			mw = st
		}
	}
	if mw <= k.cycle {
		return false // a wake is due now; Step will activate it
	}
	if mw > limit {
		mw = limit
	}
	k.engineStats.FastForwards++
	k.engineStats.FastForwardCycles += mw - k.cycle
	k.cycle = mw
	return true
}

// boundary reconciles wakes into the active set before cycle cyc runs. The
// cheap steady state: no Wake landed since the last boundary, so only the
// current timing-wheel slot is drained. When wakes did land, one pass over
// the parked units activates those due and (re)files future wakes into the
// wheel.
func (k *Kernel) boundary(cyc uint64) {
	if sig := k.wakeSignal.Load(); sig != k.lastSignal {
		k.lastSignal = sig
		for i := range k.units {
			u := &k.units[i]
			if u.active {
				continue
			}
			st := u.act.state.Load()
			if st <= cyc {
				k.activate(i)
			} else if st != NoEvent && st != u.wheelAt {
				k.insertWheel(i, st)
			}
		}
	}
	for i := k.wheelHead[cyc%wheelSlots]; i >= 0; {
		next := k.units[i].wheelNext
		if k.units[i].wheelAt <= cyc {
			k.activate(int(i)) // unlinks the unit from this slot
			k.engineStats.WheelActivations++
		}
		// Entries with a later wheelAt are a wheel wrap: due some multiple of
		// wheelSlots later, they stay linked in the same slot.
		i = next
	}
}

// activate returns a parked unit to every-cycle execution. A wake means the
// machine is churning again, so the demote cadence resets: the woken unit
// gets demoteEvery cycles of execution before it is polled for re-parking.
func (k *Kernel) activate(i int) {
	u := &k.units[i]
	if u.wheelAt != NoEvent {
		k.unlinkWheel(i)
	}
	u.active = true
	u.act.state.Store(0)
	u.wheelAt = NoEvent
	k.nActive++
	k.actDirty = true
	k.engineStats.Activations++
	k.demoteGap = demoteEvery
	// Pull the next pass earlier, never later: under a steady trickle of
	// wakes, pushing it out would starve demotion entirely.
	if n := k.cycle + demoteEvery - 1; n < k.demoteNext {
		k.demoteNext = n
	}
}

// insertWheel files unit i's wheel entry for cycle at, unlinking any
// previous entry first.
func (k *Kernel) insertWheel(i int, at uint64) {
	u := &k.units[i]
	if u.wheelAt != NoEvent {
		k.unlinkWheel(i)
	}
	u.wheelAt = at
	slot := at % wheelSlots
	u.wheelPrev = -1
	u.wheelNext = k.wheelHead[slot]
	if u.wheelNext >= 0 {
		k.units[u.wheelNext].wheelPrev = int32(i)
	}
	k.wheelHead[slot] = int32(i)
	k.engineStats.WheelPending++
	if k.engineStats.WheelPending > k.engineStats.WheelHighWater {
		k.engineStats.WheelHighWater = k.engineStats.WheelPending
	}
}

// unlinkWheel splices unit i out of its slot's list (caller guarantees the
// unit is filed, i.e. wheelAt != NoEvent).
func (k *Kernel) unlinkWheel(i int) {
	u := &k.units[i]
	if u.wheelPrev >= 0 {
		k.units[u.wheelPrev].wheelNext = u.wheelNext
	} else {
		k.wheelHead[u.wheelAt%wheelSlots] = u.wheelNext
	}
	if u.wheelNext >= 0 {
		k.units[u.wheelNext].wheelPrev = u.wheelPrev
	}
	u.wheelNext, u.wheelPrev = -1, -1
	k.engineStats.WheelPending--
}

// demotePass parks every active idle-capable unit whose components all
// report Idle(), recording the earliest self-scheduled event as the wake,
// and reports whether it parked anything (the backoff signal). Runs between
// cycles on the driver, so Idle() sees the cycle just executed and no Wake
// can race the state store.
func (k *Kernel) demotePass(cyc uint64) bool {
	k.engineStats.DemotePasses++
	parked := false
	for i := range k.units {
		u := &k.units[i]
		if !u.active || !u.canIdle {
			continue
		}
		idle := true
		for _, d := range u.idlers {
			if !d.Idle() {
				idle = false
				break
			}
		}
		if !idle {
			continue
		}
		w := uint64(NoEvent)
		for _, nx := range u.nexters {
			c := nx.NextEventCycle(cyc)
			if c <= cyc {
				c = cyc + 1
			}
			if c < w {
				w = c
			}
		}
		if w <= cyc+1 {
			continue // due next cycle anyway; parking would just churn
		}
		u.active = false
		u.act.state.Store(w)
		k.nActive--
		k.actDirty = true
		k.engineStats.Parks++
		parked = true
		if w != NoEvent {
			k.insertWheel(i, w)
		}
	}
	return parked
}

// rebuildSerialActive refreshes the serial-mode flat dispatch list from the
// active units, in unit order. Allocation-free once the backing array has
// grown to the full component count.
func (k *Kernel) rebuildSerialActive() {
	k.serialAct = k.serialAct[:0]
	for i := range k.units {
		if k.units[i].active {
			k.serialAct = append(k.serialAct, k.units[i].comps...)
		}
	}
}

// StopWorkers releases the persistent worker goroutines; the next parallel
// Step restarts them. Calling it is optional — an unreachable kernel's pool
// is stopped by a runtime cleanup — but drivers that hold many kernels alive
// (a sweep retaining finished machines for their results, say) can release
// the goroutines eagerly with it.
func (k *Kernel) StopWorkers() {
	if k.pool != nil {
		k.pool.stop()
		k.pool = nil
	}
}

// Components reports how many components are registered.
func (k *Kernel) Components() int {
	return len(k.components)
}

// ActiveUnits reports the activity engine's current active/total scheduling
// unit counts (equal until the first Step builds the units, or when
// idle-skip is off).
func (k *Kernel) ActiveUnits() (active, total int) {
	if len(k.units) == 0 {
		return len(k.components), len(k.components)
	}
	return k.nActive, len(k.units)
}

// BalanceStats reports the cost-balanced sharder's activity since the pool
// started: how many rebalance passes ran and how many unit migrations they
// performed. Zeroes when the kernel is serial or the pool has not started.
//
// Safe to call mid-run, including from goroutines other than the driver
// (watchdog hooks, test pollers): both counters are atomics written only by
// the driver between cycles, so a concurrent read observes a consistent
// recent value, never a torn one. The only caveat is reconfiguration —
// SetWorkers/Register/SetIdleSkip swap the pool itself and must not race
// this call, same as every other kernel mutation.
func (k *Kernel) BalanceStats() (rebalances, migrations uint64) {
	if k.pool == nil {
		return 0, 0
	}
	return k.pool.rebalances.Load(), k.pool.migrations.Load()
}

// SetPerfMon attaches (or with nil detaches) the self-observability monitor.
// With a monitor attached, every m.Stride-th cycle each participant times
// its evaluate/commit phases and barrier waits into its padded slot; all
// other cycles run the untouched hot loops. The activity-engine event census
// (ActivityCounters) is always collected either way. Attaching marks the
// engine dirty so a running pool rebuilds with its per-participant slots.
func (k *Kernel) SetPerfMon(m *perfmon.Mon) {
	k.pm = m
	k.pmStride = m.EffectiveStride()
	// The always-on census spans the kernel's lifetime; remember where the
	// monitor came in so report extrapolation only covers the attached span.
	k.pmSteps0 = k.engineStats.StepsExecuted
	if m != nil {
		m.EnsureWorkers(1)
	}
	k.dirty = true
}

// PerfMon returns the attached monitor (nil when detached).
func (k *Kernel) PerfMon() *perfmon.Mon { return k.pm }

// ActivityCounters snapshots the activity engine's cumulative event census,
// folding the shared per-edge wake atomics into the copy. Driver-side
// between cycles (the observer hook, or after a run).
func (k *Kernel) ActivityCounters() perfmon.ActivityCounters {
	a := k.engineStats
	for e := range a.Wakes {
		a.Wakes[e] = k.wakeEdges[e].Load()
	}
	return a
}

// WakeEdges reads the per-edge wake census alone. Unlike ActivityCounters
// (whose plain fields are driver-only), the edge counters are atomics written
// by producers on any worker, so this accessor is safe from any goroutine —
// the telemetry exporter's /metrics handler reads it mid-run.
func (k *Kernel) WakeEdges() (w [perfmon.NumWakeEdges]uint64) {
	for e := range w {
		w[e] = k.wakeEdges[e].Load()
	}
	return w
}

// ExecMode reports how the kernel actually executes cycles: "serial" (no
// pool — everything on the driving goroutine), "inline" (pool built but
// GOMAXPROCS<2 folds every shard onto the driver) or "parallel" (true
// concurrent shards). Meaningful once the first Step has built the engine.
func (k *Kernel) ExecMode() string {
	switch {
	case k.pool == nil:
		return "serial"
	case k.pool.inline:
		return "inline"
	default:
		return "parallel"
	}
}

// PerfReport drains the attached monitor into a RunReport, filling in the
// run facts only the kernel knows (cycle count, execution mode, activity
// census, balance stats). wallNs is the caller-measured wall time of the run
// span the report covers. Returns nil when no monitor is attached.
func (k *Kernel) PerfReport(label, configDigest string, wallNs int64) *perfmon.Report {
	if k.pm == nil {
		return nil
	}
	reb, mig := k.BalanceStats()
	return k.pm.Report(perfmon.RunInfo{
		Label:          label,
		ConfigDigest:   configDigest,
		Workers:        k.Workers(),
		Mode:           k.ExecMode(),
		Cycles:         k.cycle,
		WallNs:         wallNs,
		Activity:       k.ActivityCounters(),
		MonitoredSteps: k.engineStats.StepsExecuted - k.pmSteps0,
		Rebalances:     reb,
		Migrations:     mig,
	})
}

// ActivityReport renders the activity engine's current state for hang
// diagnosis: the active/parked unit census, pending timing-wheel wakes, the
// cumulative park/wake counts by edge, and the parked units with no future
// wake filed — exactly the ones a lost wake edge would strand forever. The
// watchdog and auditor append it to their snapshots so a wedged-while-parked
// hang names the missing wake rather than just the oldest stuck flit.
// Driver-side, between cycles.
func (k *Kernel) ActivityReport() string {
	var b strings.Builder
	a := k.ActivityCounters()
	active, total := k.ActiveUnits()
	fmt.Fprintf(&b, "activity: %d/%d units active, %d pending wheel wakes (high-water %d)\n",
		active, total, a.WheelPending, a.WheelHighWater)
	fmt.Fprintf(&b, "  %d parks, %d activations (%d from timers), %d demote passes, %d fast-forward spans (%d cycles)\n",
		a.Parks, a.Activations, a.WheelActivations, a.DemotePasses, a.FastForwards, a.FastForwardCycles)
	edges := make([]string, 0, perfmon.NumWakeEdges)
	for e, n := range a.Wakes {
		if n > 0 {
			edges = append(edges, fmt.Sprintf("%s %d", perfmon.WakeEdge(e), n))
		}
	}
	fmt.Fprintf(&b, "  wakes by edge: %s\n", strings.Join(edges, ", "))
	const nameMax = 8
	stranded := 0
	for i := range k.units {
		u := &k.units[i]
		if u.active {
			continue
		}
		if st := u.act.state.Load(); st == NoEvent {
			if stranded < nameMax {
				fmt.Fprintf(&b, "  unit %d (%T) parked with no pending wake\n", i, u.comps[0])
			}
			stranded++
		}
	}
	if stranded > nameMax {
		fmt.Fprintf(&b, "  ... and %d more parked without wakes\n", stranded-nameMax)
	}
	return b.String()
}

// ensureEngine rebuilds the scheduling units after registration, worker or
// idle-skip changes and returns the running worker pool (starting it as
// needed), or nil when the kernel should step on the calling goroutine.
func (k *Kernel) ensureEngine() *phasePool {
	if k.dirty {
		k.StopWorkers()
		k.dirty = false
		k.noShard = false
		k.units = nil
	}
	if k.units == nil && len(k.components) > 0 {
		k.units = k.buildUnits()
		k.nActive = len(k.units)
		k.actDirty = true
		k.lastSignal = k.wakeSignal.Load()
		k.demoteGap = demoteEvery
		k.demoteNext = k.cycle + demoteEvery - 1
		for i := range k.wheelHead {
			k.wheelHead[i] = -1
		}
		// A rebuild discards every filed wheel entry (units restart active);
		// the gauge resets with them, the high-water mark survives.
		k.engineStats.WheelPending = 0
	}
	if k.workers <= 1 || len(k.components) < 2*k.workers || k.noShard {
		return nil
	}
	if k.pool == nil {
		if len(k.units) < 2 {
			k.noShard = true
			return nil
		}
		nw := k.workers
		if nw > len(k.units) {
			nw = len(k.units)
		}
		k.pool = newPhasePool(k.units, nw, k.pm, k.pmStride)
		// Leak guard: Run no longer tears the pool down, so a kernel that is
		// simply dropped would otherwise strand parked goroutines. The pool
		// holds no reference back to the kernel, so the cleanup fires once
		// the kernel is unreachable.
		k.pool.cleanup = runtime.AddCleanup(k, func(p *phasePool) { p.stop() }, k.pool)
	}
	return k.pool
}

// buildUnits groups components into scheduling units (registration order
// within a unit, first-appearance order across units), seeds each unit's
// balancing cost from the components' static weights, and resets every
// unit's activity to active.
func (k *Kernel) buildUnits() []unit {
	unitOf := make(map[int]int)
	var units []unit
	for i, c := range k.components {
		key := k.groupKeys[i]
		if key >= 0 {
			if u, ok := unitOf[key]; ok {
				units[u].comps = append(units[u].comps, c)
				continue
			}
			unitOf[key] = len(units)
		}
		units = append(units, unit{comps: []Component{c}, act: k.acts[i]})
	}
	for i := range units {
		u := &units[i]
		w := 0.0
		u.canIdle = true
		for _, c := range u.comps {
			if h, ok := c.(PhaseCoster); ok {
				w += float64(h.PhaseCost())
			} else {
				w++
			}
			if d, ok := c.(Idler); ok {
				u.idlers = append(u.idlers, d)
			} else {
				u.canIdle = false
			}
			if nx, ok := c.(NextEventer); ok {
				u.nexters = append(u.nexters, nx)
			}
		}
		u.cost = w
		u.active = true
		u.wheelAt = NoEvent
		u.wheelNext, u.wheelPrev = -1, -1
		u.tile = int32(u.act.Tile())
		u.act.state.Store(0)
	}
	return units
}
