// Package sim provides the deterministic two-phase synchronous simulation
// kernel that every SCORPIO component runs on.
//
// A cycle has two phases. In the evaluate phase each component reads the
// registered (previous-cycle) outputs of its neighbours and computes its next
// state; in the commit phase every component latches that state. Because no
// component observes another component's *next* state during evaluation, the
// simulation result is independent of the order in which components are
// registered, which makes runs bit-for-bit reproducible.
//
// The same property makes the kernel parallelizable: SetWorkers(n) shards the
// component list over n persistent worker goroutines that run every Evaluate,
// barrier, then run every Commit. Components that call each other directly
// within a phase (a NIC delivering into its node's L2, say) must share a
// scheduling unit — register them under one key with RegisterGroup so the
// kernel never splits them across workers and their relative order inside the
// unit matches their registration order.
package sim

import "sync"

// Component is a hardware block ticked once per cycle.
//
// Evaluate must only read other components' committed state and write the
// component's own pending state; Commit latches pending state so the next
// cycle can observe it.
type Component interface {
	// Evaluate computes the component's next state for the given cycle.
	Evaluate(cycle uint64)
	// Commit latches the state computed by Evaluate.
	Commit(cycle uint64)
}

// Kernel drives a set of components with a shared synchronous clock.
type Kernel struct {
	components []Component
	groupKeys  []int // per-component group key; negative = singleton unit
	nextAuto   int
	cycle      uint64

	workers int
	dirty   bool // shards stale: registration or worker count changed
	pool    *workerPool

	observer func(cycle uint64)
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{nextAuto: -1}
}

// Register adds a component to the kernel's tick list as its own scheduling
// unit.
func (k *Kernel) Register(c Component) {
	k.components = append(k.components, c)
	k.groupKeys = append(k.groupKeys, k.nextAuto)
	k.nextAuto--
	k.dirty = true
}

// RegisterGroup adds a component to the scheduling unit identified by key
// (key >= 0). All components sharing a key execute on the same worker, in
// registration order, so they may call each other directly during a phase.
func (k *Kernel) RegisterGroup(key int, c Component) {
	if key < 0 {
		panic("sim: RegisterGroup key must be non-negative")
	}
	k.components = append(k.components, c)
	k.groupKeys = append(k.groupKeys, key)
	k.dirty = true
}

// SetWorkers selects the execution mode: n <= 1 runs every phase on the
// calling goroutine (the default), n > 1 shards the scheduling units over n
// persistent workers. Results are identical either way.
func (k *Kernel) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n == k.workers {
		return
	}
	k.workers = n
	k.dirty = true
}

// Workers reports the configured worker count (1 = serial).
func (k *Kernel) Workers() int {
	if k.workers < 1 {
		return 1
	}
	return k.workers
}

// Cycle reports the number of cycles fully executed so far.
func (k *Kernel) Cycle() uint64 {
	return k.cycle
}

// SetObserver installs a function called after every Step's commit phase
// with the cycle just executed. It runs on the driving goroutine after all
// workers have barriered, so it may freely read committed component state —
// the observability layer's sampling and watchdog point. Pass nil to remove
// it; when nil the per-step cost is a single branch.
func (k *Kernel) SetObserver(fn func(cycle uint64)) {
	k.observer = fn
}

// Step executes exactly one cycle: all Evaluates, then all Commits.
func (k *Kernel) Step() {
	cyc := k.cycle
	if p := k.parallelPool(); p != nil {
		p.phase(cyc, false)
		p.phase(cyc, true)
	} else {
		for _, c := range k.components {
			c.Evaluate(cyc)
		}
		for _, c := range k.components {
			c.Commit(cyc)
		}
	}
	k.cycle++
	if k.observer != nil {
		k.observer(cyc)
	}
}

// Run executes n cycles. Worker goroutines (if any) are released on return.
func (k *Kernel) Run(n uint64) {
	defer k.StopWorkers()
	for i := uint64(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil steps the kernel until done reports true or the cycle limit is
// reached, and reports whether done became true. Worker goroutines (if any)
// are released on return.
func (k *Kernel) RunUntil(done func() bool, limit uint64) bool {
	defer k.StopWorkers()
	for k.cycle < limit {
		if done() {
			return true
		}
		k.Step()
	}
	return done()
}

// StopWorkers releases the persistent worker goroutines; the next parallel
// Step restarts them. Run and RunUntil call this on return, so only code that
// drives Step directly needs it.
func (k *Kernel) StopWorkers() {
	if k.pool != nil {
		k.pool.stop()
		k.pool = nil
	}
}

// Components reports how many components are registered.
func (k *Kernel) Components() int {
	return len(k.components)
}

// parallelPool returns the running worker pool, starting or rebuilding it as
// needed, or nil when the kernel should step serially.
func (k *Kernel) parallelPool() *workerPool {
	if k.workers <= 1 || len(k.components) < 2*k.workers {
		return nil
	}
	if k.dirty {
		k.StopWorkers()
		k.dirty = false
	}
	if k.pool == nil {
		k.pool = startPool(k.buildShards())
	}
	return k.pool
}

// buildShards groups components into scheduling units (registration order
// within a unit, first-appearance order across units) and deals the units
// round-robin onto per-worker component lists.
func (k *Kernel) buildShards() [][]Component {
	unitOf := make(map[int]int)
	var units [][]Component
	for i, c := range k.components {
		key := k.groupKeys[i]
		if key < 0 {
			units = append(units, []Component{c})
			continue
		}
		if u, ok := unitOf[key]; ok {
			units[u] = append(units[u], c)
		} else {
			unitOf[key] = len(units)
			units = append(units, []Component{c})
		}
	}
	shards := make([][]Component, k.workers)
	for i, u := range units {
		w := i % k.workers
		shards[w] = append(shards[w], u...)
	}
	return shards
}

// workerPool is a set of persistent goroutines, one per shard, that execute
// one phase (evaluate or commit) across every shard and then barrier.
type workerPool struct {
	cmds []chan poolCmd
	wg   sync.WaitGroup
}

// poolCmd instructs a worker to run one phase of one cycle over its shard.
type poolCmd struct {
	cycle  uint64
	commit bool
}

// startPool launches one goroutine per shard; each blocks on its command
// channel between phases.
func startPool(shards [][]Component) *workerPool {
	p := &workerPool{cmds: make([]chan poolCmd, len(shards))}
	for i, shard := range shards {
		ch := make(chan poolCmd, 1)
		p.cmds[i] = ch
		go func(comps []Component) {
			for cmd := range ch {
				if cmd.commit {
					for _, c := range comps {
						c.Commit(cmd.cycle)
					}
				} else {
					for _, c := range comps {
						c.Evaluate(cmd.cycle)
					}
				}
				p.wg.Done()
			}
		}(shard)
	}
	return p
}

// phase runs one phase across all shards and waits for every worker (the
// barrier between evaluate and commit, and between cycles).
func (p *workerPool) phase(cycle uint64, commit bool) {
	p.wg.Add(len(p.cmds))
	for _, ch := range p.cmds {
		ch <- poolCmd{cycle: cycle, commit: commit}
	}
	p.wg.Wait()
}

// stop terminates the worker goroutines.
func (p *workerPool) stop() {
	for _, ch := range p.cmds {
		close(ch)
	}
}
