// Package sim provides the deterministic two-phase synchronous simulation
// kernel that every SCORPIO component runs on.
//
// A cycle has two phases. In the evaluate phase each component reads the
// registered (previous-cycle) outputs of its neighbours and computes its next
// state; in the commit phase every component latches that state. Because no
// component observes another component's *next* state during evaluation, the
// simulation result is independent of the order in which components are
// registered, which makes runs bit-for-bit reproducible.
package sim

// Component is a hardware block ticked once per cycle.
//
// Evaluate must only read other components' committed state and write the
// component's own pending state; Commit latches pending state so the next
// cycle can observe it.
type Component interface {
	// Evaluate computes the component's next state for the given cycle.
	Evaluate(cycle uint64)
	// Commit latches the state computed by Evaluate.
	Commit(cycle uint64)
}

// Kernel drives a set of components with a shared synchronous clock.
type Kernel struct {
	components []Component
	cycle      uint64
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Register adds a component to the kernel's tick list.
func (k *Kernel) Register(c Component) {
	k.components = append(k.components, c)
}

// Cycle reports the number of cycles fully executed so far.
func (k *Kernel) Cycle() uint64 {
	return k.cycle
}

// Step executes exactly one cycle: all Evaluates, then all Commits.
func (k *Kernel) Step() {
	for _, c := range k.components {
		c.Evaluate(k.cycle)
	}
	for _, c := range k.components {
		c.Commit(k.cycle)
	}
	k.cycle++
}

// Run executes n cycles.
func (k *Kernel) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil steps the kernel until done reports true or the cycle limit is
// reached, and reports whether done became true.
func (k *Kernel) RunUntil(done func() bool, limit uint64) bool {
	for k.cycle < limit {
		if done() {
			return true
		}
		k.Step()
	}
	return done()
}

// Components reports how many components are registered.
func (k *Kernel) Components() int {
	return len(k.components)
}
