package sim

import (
	"testing"
)

// burster does burstLen cycles of work, sleeps gap cycles, and repeats. It
// self-schedules: while sleeping it is idle and names its next burst start,
// so the kernel can park it and fast-forward over the quiet span. The
// checksum mixes the cycle number so any missed or extra Evaluate changes
// the final state.
type burster struct {
	burstLen  uint64
	gap       uint64
	nextStart uint64

	sum   uint64
	pend  uint64
	now   uint64
	evals uint64
}

func (b *burster) Evaluate(cycle uint64) {
	b.now = cycle
	b.evals++
	b.pend = b.sum
	if cycle >= b.nextStart && cycle < b.nextStart+b.burstLen {
		b.pend = b.sum*6364136223846793005 + cycle + 1
	}
}

func (b *burster) Commit(cycle uint64) {
	b.sum = b.pend
	if cycle == b.nextStart+b.burstLen-1 {
		b.nextStart += b.burstLen + b.gap
	}
}

func (b *burster) Idle() bool { return b.now+1 < b.nextStart }

func (b *burster) NextEventCycle(cycle uint64) uint64 {
	if b.nextStart <= cycle {
		return cycle + 1
	}
	return b.nextStart
}

// buildBursters staggers n bursters so their bursts interleave sparsely;
// gaps far exceed the timing wheel's span, exercising wheel wrap.
func buildBursters(n int, workers int, skip bool) (*Kernel, []*burster) {
	k := NewKernel()
	bs := make([]*burster, n)
	for i := range bs {
		bs[i] = &burster{burstLen: 3, gap: 997, nextStart: uint64(i * 131)}
		k.Register(bs[i])
	}
	k.SetWorkers(workers)
	k.SetIdleSkip(skip)
	return k, bs
}

// TestFastForwardEquivalence is the activity engine's core contract on a
// bursty-idle workload: with parking and quiescent-span fast-forward the
// final state and cycle count are bit-identical to stepping every component
// every cycle — while executing far fewer Evaluates.
func TestFastForwardEquivalence(t *testing.T) {
	const n, cycles = 8, 20_000
	kRef, ref := buildBursters(n, 0, false)
	kRef.Run(cycles)
	kSkip, skip := buildBursters(n, 0, true)
	kSkip.Run(cycles)

	if kRef.Cycle() != kSkip.Cycle() {
		t.Fatalf("cycle count diverged: skip-off %d, skip-on %d", kRef.Cycle(), kSkip.Cycle())
	}
	var evalsRef, evalsSkip uint64
	for i := range ref {
		if ref[i].sum != skip[i].sum {
			t.Errorf("burster %d checksum diverged: skip-off %#x, skip-on %#x", i, ref[i].sum, skip[i].sum)
		}
		if ref[i].nextStart != skip[i].nextStart {
			t.Errorf("burster %d schedule diverged: skip-off %d, skip-on %d", i, ref[i].nextStart, skip[i].nextStart)
		}
		evalsRef += ref[i].evals
		evalsSkip += skip[i].evals
	}
	if evalsRef != n*cycles {
		t.Fatalf("skip-off ran %d evaluates, want %d", evalsRef, n*cycles)
	}
	// 3 work cycles per ~1000-cycle period plus demote-pass slack: the
	// activity engine must eliminate the overwhelming majority of steps.
	if evalsSkip*10 > evalsRef {
		t.Errorf("skip-on ran %d/%d evaluates; expected at least a 10x reduction", evalsSkip, evalsRef)
	}
	t.Logf("bursty-idle: %d evaluates without skip, %d with (%.1fx)", evalsRef, evalsSkip, float64(evalsRef)/float64(evalsSkip))
}

// TestFastForwardEquivalenceParallel repeats the contract under the phase
// pool: parking, the timing wheel and fast-forward must compose with
// sharded execution.
func TestFastForwardEquivalenceParallel(t *testing.T) {
	forceProcs(t, 4)
	const n, cycles = 16, 20_000
	kRef, ref := buildBursters(n, 0, false)
	kRef.Run(cycles)
	kSkip, skip := buildBursters(n, 4, true)
	kSkip.Run(cycles)
	if kRef.Cycle() != kSkip.Cycle() {
		t.Fatalf("cycle count diverged: serial skip-off %d, parallel skip-on %d", kRef.Cycle(), kSkip.Cycle())
	}
	for i := range ref {
		if ref[i].sum != skip[i].sum {
			t.Errorf("burster %d checksum diverged: serial skip-off %#x, parallel skip-on %#x", i, ref[i].sum, skip[i].sum)
		}
	}
}

// TestObserverDisablesFastForwardOnly pins the observer contract: an
// installed observer sees every single cycle exactly once (no fast-forward),
// while idle units are still skipped, and the results stay identical.
func TestObserverDisablesFastForwardOnly(t *testing.T) {
	const n, cycles = 4, 5_000
	kRef, ref := buildBursters(n, 0, false)
	kRef.Run(cycles)

	kObs, obs := buildBursters(n, 0, true)
	var seen uint64
	kObs.SetObserver(func(cycle uint64) {
		if cycle != seen {
			t.Fatalf("observer saw cycle %d, want %d (every cycle, in order)", cycle, seen)
		}
		seen++
	})
	kObs.Run(cycles)
	if seen != cycles {
		t.Fatalf("observer saw %d cycles, want %d", seen, cycles)
	}
	var evalsObs uint64
	for i := range ref {
		if ref[i].sum != obs[i].sum {
			t.Errorf("burster %d checksum diverged under observer: %#x vs %#x", i, ref[i].sum, obs[i].sum)
		}
		evalsObs += obs[i].evals
	}
	if evalsObs >= n*cycles {
		t.Errorf("observer must not disable idle skipping: %d evaluates, want < %d", evalsObs, n*cycles)
	}
}

// mailbox is a committed-state channel from producer to consumer: the
// producer deposits at its commit and wakes the consumer for the next
// cycle; the consumer may be parked arbitrarily long in between.
type mailbox struct {
	val   uint64
	stamp uint64
	has   bool
}

type producer struct {
	burster
	box    *mailbox
	target *Activity
}

// Commit deposits at the last cycle of each burst, so the deposit schedule
// is exactly the burst schedule the embedded burster already advertises via
// Idle/NextEventCycle.
func (p *producer) Commit(cycle uint64) {
	deposit := cycle == p.nextStart+p.burstLen-1
	p.burster.Commit(cycle)
	if deposit {
		p.box.val, p.box.stamp, p.box.has = p.sum, cycle, true
		p.target.Wake(cycle+1, WakeOther)
	}
}

type consumer struct {
	box  *mailbox
	got  []uint64
	now  uint64
	pend bool
}

func (c *consumer) Evaluate(cycle uint64) {
	c.now = cycle
	c.pend = c.box.has
}

func (c *consumer) Commit(cycle uint64) {
	if c.pend {
		c.got = append(c.got, c.box.val)
		c.box.has = false
		c.pend = false
	}
}

// Idle re-checks the committed mailbox: a wake aimed at an already-active
// consumer is dropped by design, so the demote-time recheck is what keeps
// the edge-triggered protocol lossless.
func (c *consumer) Idle() bool { return !c.box.has }

func (c *consumer) NextEventCycle(cycle uint64) uint64 { return NoEvent }

// TestCrossUnitWakeDelivery pins the producer/consumer wake protocol: a
// parked consumer receives every committed deposit exactly once, identical
// to the skip-off schedule, across both serial and parallel kernels.
func TestCrossUnitWakeDelivery(t *testing.T) {
	build := func(workers int, skip bool) (*Kernel, *consumer) {
		k := NewKernel()
		box := &mailbox{}
		c := &consumer{box: box}
		p := &producer{burster: burster{burstLen: 2, gap: 610, nextStart: 0}, box: box}
		k.Register(p)
		p.target = k.Register(c)
		k.SetWorkers(workers)
		k.SetIdleSkip(skip)
		return k, c
	}
	kRef, ref := build(0, false)
	kRef.Run(10_000)
	if len(ref.got) == 0 {
		t.Fatal("degenerate reference: consumer received nothing")
	}
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 0}, {"parallel", 4}} {
		if mode.workers > 0 {
			forceProcs(t, 4)
		}
		k, c := build(mode.workers, true)
		k.Run(10_000)
		if len(c.got) != len(ref.got) {
			t.Fatalf("%s skip-on consumer received %d deposits, want %d", mode.name, len(c.got), len(ref.got))
			continue
		}
		for i := range ref.got {
			if c.got[i] != ref.got[i] {
				t.Fatalf("%s skip-on deposit %d = %#x, want %#x", mode.name, i, c.got[i], ref.got[i])
			}
		}
	}
}

// TestRunUntilFastForwards verifies RunUntil crosses a fully-quiescent span
// in one jump instead of stepping through it cycle by cycle.
func TestRunUntilFastForwards(t *testing.T) {
	k := NewKernel()
	b := &burster{burstLen: 1, gap: 100_000, nextStart: 0}
	k.Register(b)
	checks := 0
	done := k.RunUntil(func() bool { checks++; return b.sum != 0 && k.Cycle() > 50_000 }, 200_000)
	if !done {
		t.Fatal("RunUntil hit the limit")
	}
	// Executed cycles: the bursts themselves plus demote-pass slack. The
	// predicate runs once per executed cycle, so a small count proves the
	// 100k-cycle gaps were jumped, not stepped.
	if checks > 200 {
		t.Errorf("RunUntil evaluated its predicate %d times; quiescent spans were not fast-forwarded", checks)
	}
}
