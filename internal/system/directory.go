package system

import (
	"fmt"
	"time"

	"scorpio/internal/coherence"
	"scorpio/internal/directory"
	"scorpio/internal/nic"
	"scorpio/internal/noc"
	"scorpio/internal/obs"
	"scorpio/internal/sim"
	"scorpio/internal/stats"
	"scorpio/internal/trace"
)

// DirectoryOptions configures an LPD-D or HT-D baseline machine.
type DirectoryOptions struct {
	Variant directory.Variant
	// Net is the main-network configuration — the identical mesh SCORPIO
	// uses, minus ordering (Section 5.1).
	Net noc.Config
	// L2 and Home parameterise the controllers; zero values select the
	// chip-faithful defaults for the mesh size.
	L2   directory.L2Config
	Home directory.HomeConfig
	// DirCacheBytes overrides the machine-wide directory cache budget when
	// non-zero (the paper's comparisons equalise it across protocols).
	DirCacheBytes int
	// Workload parameters mirror Options.
	Profile        trace.Profile
	WorkPerCore    uint64
	WarmupPerCore  uint64
	MaxOutstanding int
	Seed           uint64
	// Workers mirrors Options.Workers (0 or 1 = serial kernel).
	Workers int
	// DisableIdleSkip forces every component to step every cycle (mirrors
	// Options.DisableIdleSkip; results are bit-identical either way).
	DisableIdleSkip bool
	// Obs enables tracing, metrics sampling and the watchdog (nil = off).
	Obs *obs.Options
}

// DefaultDirectoryOptions mirrors DefaultOptions for a directory baseline.
func DefaultDirectoryOptions(v directory.Variant, prof trace.Profile) DirectoryOptions {
	net := noc.DefaultConfig()
	opt := DirectoryOptions{
		Variant:        v,
		Net:            net,
		Profile:        prof,
		WorkPerCore:    400,
		WarmupPerCore:  300,
		MaxOutstanding: 2,
		Seed:           1,
	}
	opt.fillDefaults()
	return opt
}

func (o *DirectoryOptions) fillDefaults() {
	nodes := o.Net.Nodes()
	if o.L2.Nodes == 0 {
		o.L2 = directory.DefaultL2Config(nodes, o.Variant)
		o.L2.DataFlits = o.Net.DataPacketFlits()
	}
	if o.Home.Nodes == 0 {
		if o.Variant == directory.LPD {
			o.Home = directory.LPDConfig(nodes)
		} else {
			o.Home = directory.HTConfig(nodes)
		}
		o.Home.DataFlits = o.Net.DataPacketFlits()
	}
	if o.MaxOutstanding <= 0 {
		o.MaxOutstanding = 2
	}
	if o.DirCacheBytes != 0 {
		o.Home.TotalDirCacheBytes = o.DirCacheBytes
	}
}

// dirTileAgent routes packets to the node's cache controller and directory
// slice.
type dirTileAgent struct {
	l2   *directory.L2
	home *directory.Home
}

// AcceptOrderedRequest handles the request class: unicast requests to this
// home and HT probe broadcasts.
func (t *dirTileAgent) AcceptOrderedRequest(p *noc.Packet, arrive, cycle uint64) bool {
	switch directory.Kind(p.Kind) {
	case directory.ReqGetS, directory.ReqGetX, directory.ReqPutM:
		return t.home.Request(p, arrive, cycle)
	case directory.ProbeS, directory.ProbeX:
		return t.l2.HandleProbe(p, cycle)
	default:
		panic(fmt.Sprintf("system: unexpected request-class kind %d", p.Kind))
	}
}

// AcceptResponse handles the response class.
func (t *dirTileAgent) AcceptResponse(p *noc.Packet, cycle uint64) bool {
	switch directory.Kind(p.Kind) {
	case directory.FwdGetS, directory.FwdGetX:
		t.l2.HandleFwd(p, cycle)
	case directory.Inv:
		t.l2.HandleInv(p, cycle)
	case directory.DataD, directory.InvAck, directory.WBAck:
		t.l2.HandleResponse(p, cycle)
	case directory.WBData:
		t.home.WBDataArrived(p, cycle)
	case directory.Done:
		t.home.DoneArrived(p, cycle)
	default:
		panic(fmt.Sprintf("system: unexpected response-class kind %d", p.Kind))
	}
	return true
}

// Directory is a fully assembled LPD-D or HT-D machine.
type Directory struct {
	opt       DirectoryOptions
	Kernel    *sim.Kernel
	Mesh      *noc.Mesh
	NICs      []*nic.NIC
	L2s       []*directory.L2
	Homes     []*directory.Home
	Injectors []*trace.Injector
	Obs       *Observability
}

// NewDirectory builds the baseline machine.
func NewDirectory(opt DirectoryOptions) (*Directory, error) {
	if err := opt.Profile.Validate(); err != nil {
		return nil, err
	}
	opt.fillDefaults()
	mesh, err := noc.NewMesh(opt.Net)
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	d := &Directory{opt: opt, Kernel: k, Mesh: mesh}
	nodes := opt.Net.Nodes()
	for node := 0; node < nodes; node++ {
		n := nic.New(node, nic.UnorderedConfig(), mesh, nil, nil)
		d.NICs = append(d.NICs, n)
		l2 := directory.NewL2(node, opt.L2, n, packetIDStream(node))
		home := directory.NewHome(node, opt.Home, n, packetIDStream(nodes+node))
		home.LocalProbe = l2.HandleProbe
		n.SetAgent(&dirTileAgent{l2: l2, home: home})
		d.L2s = append(d.L2s, l2)
		d.Homes = append(d.Homes, home)
		inj := trace.NewInjector(node, opt.Profile, opt.Seed, l2, opt.MaxOutstanding, opt.WarmupPerCore, opt.WorkPerCore)
		d.Injectors = append(d.Injectors, inj)
		l2.OnComplete = func(c coherence.Completion) {
			inj.OnComplete(c.Addr, c.Write, c.Issue, c.Done, c.Hit, c.ServedByCache, &c.Breakdown)
		}
		// One scheduling unit per node: the NIC's deliveries call straight
		// into the L2 and home slice, and the injector into the L2.
		act := k.RegisterGroup(node, inj)
		k.RegisterGroup(node, l2)
		k.RegisterGroup(node, home)
		k.RegisterGroup(node, n)
		// The node's unit is woken by its link traffic.
		n.BindActivity(act)
	}
	mesh.Register(k)
	k.SetWorkers(opt.Workers)
	k.SetIdleSkip(!opt.DisableIdleSkip)
	var obsErr error
	d.Obs, obsErr = buildObs(opt.Obs, k, nodes,
		machineInfo{
			label:   opt.Variant.String() + "/" + opt.Profile.Name,
			mesh:    mesh,
			latency: latencyFromInjectors(func() []*trace.Injector { return d.Injectors }),
		},
		func(c *counters) {
			for _, n := range d.NICs {
				c.injected += n.Stats.InjectedRequests + n.Stats.InjectedResponses
				c.ejected += n.Stats.DeliveredRequests + n.Stats.DeliveredResponses
			}
			ns := mesh.Stats()
			c.flitsRouted, c.bypasses, c.allocStalls = ns.FlitsRouted, ns.Bypasses, ns.AllocStalls
		},
		func() (int, int) {
			out := 0
			for _, l2 := range d.L2s {
				out += l2.Outstanding()
			}
			return mesh.BufferedFlits(), out
		},
		func() bool {
			if mesh.BufferedFlits() > 0 {
				return true
			}
			for _, n := range d.NICs {
				if n.HasPendingWork() {
					return true
				}
			}
			return false
		},
		func(now uint64) string {
			s := mesh.Snapshot(now)
			for _, n := range d.NICs {
				if n.HasPendingWork() {
					s += n.OrderingSnapshot() + "\n"
				}
			}
			return s
		},
	)
	if obsErr != nil {
		return nil, obsErr
	}
	if d.Obs != nil && d.Obs.Tracer != nil {
		mesh.SetTracer(d.Obs.Tracer)
		for _, n := range d.NICs {
			n.SetTracer(d.Obs.Tracer)
		}
	}
	if d.Obs != nil && d.Obs.Auditor != nil {
		// Directory machines have no ordered stream and a distinct L2 type
		// without shadow-state hooks, so the auditor covers delivery sanity
		// only: flit dedup/coverage in the routers and duplicate arrivals /
		// sink accounting in the NICs.
		mesh.SetAuditor(d.Obs.Auditor)
		for _, n := range d.NICs {
			n.SetAuditor(d.Obs.Auditor)
		}
	}
	if d.Obs != nil {
		for _, inj := range d.Injectors {
			inj.Attr = d.Obs.Attrib
		}
	}
	return d, nil
}

// Done reports whether every core finished.
func (d *Directory) Done() bool {
	for _, in := range d.Injectors {
		if !in.Done() {
			return false
		}
	}
	return true
}

// Run executes to completion and collects results. A watchdog stall aborts
// the run with the full network snapshot in the error.
func (d *Directory) Run(limit uint64) (Results, error) {
	done := d.Done
	if d.Obs != nil && (d.Obs.Watchdog != nil || d.Obs.Auditor != nil) {
		done = func() bool { return d.Obs.Stalled() || d.Obs.Violated() || d.Done() }
	}
	wall0 := time.Now()
	finished := d.Kernel.RunUntil(done, limit)
	d.Obs.finishPerf(d.Kernel, d.opt.Variant.String()+"/"+d.opt.Profile.Name, int64(time.Since(wall0)))
	if d.Obs.Violated() {
		return Results{}, fmt.Errorf("system: %s/%s audit violation\n%s",
			d.opt.Variant, d.opt.Profile.Name, d.Obs.AuditReport())
	}
	if d.Obs.Stalled() {
		return Results{}, fmt.Errorf("system: %s/%s stalled\n%s",
			d.opt.Variant, d.opt.Profile.Name, d.Obs.StallReport())
	}
	if !finished {
		var completed uint64
		for _, in := range d.Injectors {
			completed += in.Completed
		}
		return Results{}, fmt.Errorf("system: %s/%s did not finish within %d cycles (completed %d)",
			d.opt.Variant, d.opt.Profile.Name, limit, completed)
	}
	if d.Obs != nil && d.Obs.Auditor != nil {
		d.Obs.Auditor.Finish(d.Kernel.Cycle())
		if d.Obs.Violated() {
			return Results{}, fmt.Errorf("system: %s/%s audit violation\n%s",
				d.opt.Variant, d.opt.Profile.Name, d.Obs.AuditReport())
		}
	}
	d.Obs.finishHeatmap(d.Mesh, d.Kernel.Cycle())
	return d.collect(), nil
}

func (d *Directory) collect() Results {
	r := Results{Protocol: d.opt.Variant.String(), Benchmark: d.opt.Profile.Name, Cycles: d.Kernel.Cycle(), Obs: d.Obs}
	if len(d.Injectors) > 0 {
		r.ServiceHist = stats.NewHistogram(4, 512)
	}
	for _, in := range d.Injectors {
		r.Completed += in.Completed
		r.Service.Merge(in.ServiceLatency)
		r.ServiceHist.Merge(in.ServiceHist)
		r.HitLat.Merge(in.HitLatency)
		r.MissLat.Merge(in.MissLatency)
		r.CacheServed.Merge(in.CacheServed)
		r.MemServed.Merge(in.MemServed)
		if in.DoneCycle > r.LastDone {
			r.LastDone = in.DoneCycle
		}
	}
	for _, l2 := range d.L2s {
		r.L2Hits += l2.Stats.Hits
		r.L2Misses += l2.Stats.Misses
		r.Writebacks += l2.Stats.Writebacks
	}
	for _, h := range d.Homes {
		r.DirTransactions += h.Stats.Transactions
		r.DirCacheMisses += h.Stats.DirCacheMiss
		r.DirCacheHits += h.Stats.DirCacheHits
	}
	ns := d.Mesh.Stats()
	r.FlitsRouted = ns.FlitsRouted
	r.Bypasses = ns.Bypasses
	return r
}
