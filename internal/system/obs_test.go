package system

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"scorpio/internal/obs"
)

// TestHealthyRunWatchdogSilent arms every observability feature on a normal
// 16-core SCORPIO run: the watchdog must stay silent, the run must succeed,
// and the metrics sampler must have collected a consistent time series.
func TestHealthyRunWatchdogSilent(t *testing.T) {
	opt := smallOptions(t, "barnes", 16)
	opt.Obs = &obs.Options{MetricsInterval: 200, Watchdog: 5000}
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(3_000_000)
	if err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
	if s.Obs.Stalled() {
		t.Fatalf("healthy run tripped the watchdog:\n%s", s.Obs.StallReport())
	}
	m := res.Obs.Metrics
	if m == nil || m.Samples() == 0 {
		t.Fatal("metrics sampler collected nothing")
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "cycle,"+strings.Join(metricsColumns, ",") {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
	if len(lines) != m.Samples()+1 {
		t.Fatalf("CSV has %d rows, want %d samples + header", len(lines)-1, m.Samples())
	}
	if !strings.Contains(m.Heatmap(), "\n") {
		t.Fatal("heatmap missing after successful run")
	}
}

// chromeTrace mirrors the Chrome trace-event JSON envelope.
type chromeTrace struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Ts   int64  `json:"ts"`
		Args struct {
			Pkt uint64 `json:"pkt"`
		} `json:"args"`
	} `json:"traceEvents"`
}

// TestTraceReconstructsTransactionLifecycle runs the 36-core chip with
// tracing on and checks that the exported Chrome trace contains at least one
// transaction whose full inject -> order-commit -> sink path is
// reconstructable, with the phases in causal order.
func TestTraceReconstructsTransactionLifecycle(t *testing.T) {
	opt := smallOptions(t, "barnes", 36)
	opt.WorkPerCore = 30
	opt.WarmupPerCore = 30
	opt.Obs = &obs.Options{Trace: true}
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Obs.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace is empty")
	}
	// Reconstruct per-packet lifecycles from the instant events.
	type life struct{ inject, commit, sink int64 }
	lives := map[uint64]*life{}
	get := func(pkt uint64) *life {
		l := lives[pkt]
		if l == nil {
			l = &life{inject: -1, commit: -1, sink: -1}
			lives[pkt] = l
		}
		return l
	}
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "i" || ev.Args.Pkt == 0 {
			continue
		}
		switch ev.Name {
		case "inject":
			get(ev.Args.Pkt).inject = ev.Ts
		case "order-commit":
			get(ev.Args.Pkt).commit = ev.Ts
		case "sink":
			get(ev.Args.Pkt).sink = ev.Ts
		}
	}
	complete := 0
	for pkt, l := range lives {
		if l.inject < 0 || l.commit < 0 || l.sink < 0 {
			continue
		}
		if l.inject > l.commit || l.commit > l.sink {
			t.Fatalf("packet %d lifecycle out of order: inject %d, order-commit %d, sink %d",
				pkt, l.inject, l.commit, l.sink)
		}
		complete++
	}
	if complete == 0 {
		t.Fatal("no transaction has a complete inject -> order-commit -> sink path")
	}
	t.Logf("%d events, %d transactions fully reconstructable", len(tr.TraceEvents), complete)
}

// TestWatchdogStallErrorCarriesSnapshot forces a stall at the system level
// by arming an absurdly tight watchdog: the ordered network cannot possibly
// deliver within one cycle of every observation, so the run must abort with
// the network snapshot in the error rather than hang.
func TestWatchdogStallErrorCarriesSnapshot(t *testing.T) {
	opt := smallOptions(t, "barnes", 16)
	opt.Obs = &obs.Options{Watchdog: 1}
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(3_000_000)
	if err == nil {
		t.Fatal("watchdog threshold 1 did not abort the run")
	}
	if !strings.Contains(err.Error(), "stalled") || !strings.Contains(err.Error(), "no ejections for") {
		t.Fatalf("stall error missing diagnosis: %v", err)
	}
}
