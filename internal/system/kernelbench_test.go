package system

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"scorpio/internal/trace"
)

// warmScorpioMesh builds a seeded SCORPIO machine on a w×h mesh whose
// injectors never drain (WorkPerCore is effectively infinite), applies the
// worker count, and steps past ring/pool warmup so a measured window covers
// the steady-state hot path only.
func warmScorpioMesh(tb testing.TB, w, h, workers int) *Scorpio {
	tb.Helper()
	prof, err := trace.ByName("fft")
	if err != nil {
		tb.Fatal(err)
	}
	opt := DefaultOptions(prof)
	opt.Core = opt.Core.WithMeshSize(w, h)
	opt.WorkPerCore = 1 << 40 // never drains: the machine stays loaded
	opt.Workers = workers
	s, err := NewScorpio(opt)
	if err != nil {
		tb.Fatal(err)
	}
	s.Kernel.Run(600) // free lists, VC rings and the phase pool settle
	return s
}

// BenchmarkKernelThroughputMesh measures kernel stepping speed over the real
// SCORPIO machine — cores, L2s, notification tree and the ordered mesh — as
// opposed to BenchmarkKernelThroughput's synthetic component graph. One
// subbenchmark per (mesh size, worker count) so the report carries the full
// scaling curve; cycles/s is the honest figure of merit (ns/op is per
// simulated cycle).
func BenchmarkKernelThroughputMesh(b *testing.B) {
	meshes := []struct{ w, h int }{{6, 6}, {10, 10}, {16, 16}}
	for _, m := range meshes {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("mesh=%dx%d/workers=%d", m.w, m.h, workers), func(b *testing.B) {
				s := warmScorpioMesh(b, m.w, m.h, workers)
				defer s.Kernel.StopWorkers()
				b.ResetTimer()
				s.Kernel.Run(uint64(b.N))
				b.StopTimer()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "cycles/s")
				}
			})
		}
	}
}

// TestParallelSpeedupGuard is the benchsmoke gate's regression tripwire: on a
// multi-core host, stepping a warm 6×6 machine with workers=NumCPU must not
// be slower than the serial path beyond a CI-jitter allowance. It only runs
// when the Makefile sets SCORPIO_SPEEDUP_GUARD=1 (a measurement inside the
// ordinary test suite would be pure noise), and it skips on single-CPU hosts,
// where the pool runs shards inline on the driver and there is no parallelism
// to guard.
func TestParallelSpeedupGuard(t *testing.T) {
	if os.Getenv("SCORPIO_SPEEDUP_GUARD") == "" {
		t.Skip("speedup guard runs from `make benchsmoke` (SCORPIO_SPEEDUP_GUARD=1)")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("single-CPU host: the phase pool runs shards inline, no parallel speedup to guard")
	}
	measure := func(workers int) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			s := warmScorpioMesh(b, 6, 6, workers)
			defer s.Kernel.StopWorkers()
			b.ResetTimer()
			s.Kernel.Run(uint64(b.N))
		})
		return float64(r.NsPerOp())
	}
	serial := measure(1)
	par := measure(runtime.NumCPU())
	const headroom = 1.25 // CI jitter allowance
	if par > serial*headroom {
		t.Fatalf("workers=%d stepped at %.0f ns/cycle vs %.0f serial (more than %.2fx): the parallel kernel stopped paying",
			runtime.NumCPU(), par, serial, headroom)
	}
	t.Logf("serial %.0f ns/cycle, workers=%d %.0f ns/cycle", serial, runtime.NumCPU(), par)
}
