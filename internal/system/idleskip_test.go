package system

import (
	"reflect"
	"testing"

	"scorpio/internal/directory"
	"scorpio/internal/obs"
	"scorpio/internal/trace"
)

// The activity engine's acceptance contract: enabling idle-skip (the
// default) must be invisible in the results — bit-identical statistics to
// stepping every component every cycle, on every machine, at every worker
// count. The skip-off serial run is the reference for each machine.

func runScorpioSkip(t *testing.T, workers int, disable bool) Results {
	t.Helper()
	opt := smallOptions(t, "fft", 16)
	opt.WorkPerCore, opt.WarmupPerCore = 60, 100
	opt.Workers = workers
	opt.DisableIdleSkip = disable
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIdleSkipBitIdenticalScorpio(t *testing.T) {
	forceProcs(t, 4)
	ref := runScorpioSkip(t, 0, true)
	if ref.Completed == 0 || ref.Service.Count == 0 {
		t.Fatalf("degenerate reference run: %+v", ref)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, disable := range []bool{false, true} {
			got := runScorpioSkip(t, workers, disable)
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("workers=%d disableIdleSkip=%v diverged from skip-off serial:\nref: %+v\ngot: %+v",
					workers, disable, ref, got)
			}
		}
	}
}

func TestIdleSkipBitIdenticalDirectory(t *testing.T) {
	forceProcs(t, 4)
	run := func(workers int, disable bool) Results {
		t.Helper()
		prof, err := trace.ByName("lu")
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultDirectoryOptions(directory.LPD, prof)
		opt.Net.Width, opt.Net.Height = 4, 4
		opt.L2.Nodes, opt.Home.Nodes = 0, 0 // re-derive for the smaller mesh
		opt.fillDefaults()
		opt.WorkPerCore, opt.WarmupPerCore = 60, 100
		opt.Workers = workers
		opt.DisableIdleSkip = disable
		d, err := NewDirectory(opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(0, true)
	if ref.Completed == 0 {
		t.Fatalf("degenerate reference run: %+v", ref)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		if got := run(workers, false); !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d skip-on diverged from skip-off serial:\nref: %+v\ngot: %+v", workers, ref, got)
		}
	}
}

func TestIdleSkipBitIdenticalBaselines(t *testing.T) {
	// TokenB and INSO machines are serial-only; skip-on vs skip-off.
	run := func(scheme OrderingScheme, window int, disable bool) Results {
		t.Helper()
		prof, err := trace.ByName("blackscholes")
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultBaselineOptions(scheme, prof)
		opt.ExpiryWindow = window
		opt.WorkPerCore, opt.WarmupPerCore = 60, 100
		opt.DisableIdleSkip = disable
		b, err := NewBaseline(opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, tc := range []struct {
		name   string
		scheme OrderingScheme
		window int
	}{
		{"TokenB", SchemeTokenB, 0},
		{"INSO", SchemeINSO, 20},
	} {
		ref := run(tc.scheme, tc.window, true)
		if ref.Completed == 0 {
			t.Fatalf("%s: degenerate reference run: %+v", tc.name, ref)
		}
		if got := run(tc.scheme, tc.window, false); !reflect.DeepEqual(ref, got) {
			t.Errorf("%s: skip-on diverged from skip-off:\nref: %+v\ngot: %+v", tc.name, ref, got)
		}
	}
}

// TestIdleSkipAuditClean runs the A/B with the online ordering/coherence
// auditor attached: both modes must be audit-clean and produce identical
// statistics (the auditor installs an observer, so this also covers the
// no-fast-forward path with parking still active).
func TestIdleSkipAuditClean(t *testing.T) {
	run := func(disable bool) Results {
		t.Helper()
		opt := smallOptions(t, "barnes", 16)
		opt.WorkPerCore, opt.WarmupPerCore = 60, 100
		opt.DisableIdleSkip = disable
		opt.Obs = &obs.Options{Audit: true}
		s, err := NewScorpio(opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		a := s.Obs.Auditor
		if a == nil {
			t.Fatal("auditor not attached")
		}
		if a.Commits() == 0 || a.FlitsChecked() == 0 {
			t.Fatalf("auditor saw no traffic (disable=%v)", disable)
		}
		if a.Violated() {
			t.Fatalf("audit violation (disable=%v): %s", disable, a.Report())
		}
		return res
	}
	ref := run(true)
	got := run(false)
	// The observability artifacts hold pointers into each machine; compare
	// the statistics only.
	ref.Obs, got.Obs = nil, nil
	if !reflect.DeepEqual(ref, got) {
		t.Errorf("audited runs diverged:\nskip-off: %+v\nskip-on:  %+v", ref, got)
	}
}
