// Package system assembles full simulated machines: the SCORPIO 36-core
// processor (ordered mesh + snoopy MOSI tiles + memory controllers) and, in
// sibling files, the directory-based and prior-ordered-network baselines the
// paper compares against. It also owns the shared run loop and result
// collection used by every experiment.
package system

import (
	"fmt"
	"time"

	"scorpio/internal/coherence"
	"scorpio/internal/core"
	"scorpio/internal/mem"
	"scorpio/internal/noc"
	"scorpio/internal/obs"
	"scorpio/internal/sim"
	"scorpio/internal/stats"
	"scorpio/internal/tile"
	"scorpio/internal/trace"
)

// Options configures a SCORPIO system build.
type Options struct {
	// Core is the ordered-network configuration (mesh size, VCs, window).
	Core core.Config
	// L2 is the per-tile controller configuration.
	L2 coherence.Config
	// Mem is the memory-controller configuration.
	Mem mem.Config
	// Profile selects the benchmark workload.
	Profile trace.Profile
	// WorkPerCore is the number of measured L2 accesses each core completes.
	WorkPerCore uint64
	// WarmupPerCore is the number of cache-warming accesses completed before
	// statistics engage (the paper's RTL runs discard a 20K-cycle warmup).
	WarmupPerCore uint64
	// MaxOutstanding bounds in-flight accesses per core (2 on the chip).
	MaxOutstanding int
	// Seed drives all stochastic workload decisions.
	Seed uint64
	// MCNodes lists the memory-controller attach nodes; nil selects the four
	// corner-adjacent edge routers like the chip.
	MCNodes []int
	// UseL1 interposes the tile layer (split write-through L1s behind the
	// AHB single-transaction rule) between the injectors and the L2s,
	// matching the fabricated tile rather than the paper's trace-driven RTL
	// methodology (which injected straight into the L2's AHB interface).
	UseL1 bool
	// Workers sets the kernel's parallel worker count; 0 or 1 runs the
	// classic serial tick loop. Results are identical either way.
	Workers int
	// DisableIdleSkip forces every component to step every cycle instead of
	// parking quiescent nodes on the kernel's activity engine. Results are
	// bit-identical either way; the flag exists for A/B validation and
	// overhead measurement.
	DisableIdleSkip bool
	// Obs selects observability features (tracing, metrics, watchdog);
	// nil disables everything at zero per-step cost.
	Obs *obs.Options
}

// packetIDStream returns an allocator of packet IDs private to one issuing
// stream. The stream index occupies the high bits so streams never collide,
// which lets every L2 and memory controller draw IDs during its own Evaluate
// without sharing a counter across kernel workers. IDs are only compared for
// equality (the global-order checker), so the non-sequential values are
// behaviourally neutral.
func packetIDStream(stream int) func() uint64 {
	base := uint64(stream+1) << 40
	var seq uint64
	return func() uint64 {
		seq++
		return base | seq
	}
}

// DefaultOptions returns chip-faithful options for a benchmark.
func DefaultOptions(prof trace.Profile) Options {
	c := core.DefaultConfig()
	l2 := coherence.DefaultConfig()
	l2.DataFlits = c.Net.DataPacketFlits()
	return Options{
		Core:           c,
		L2:             l2,
		Mem:            mem.DefaultConfig(),
		Profile:        prof,
		WorkPerCore:    400,
		WarmupPerCore:  300,
		MaxOutstanding: 2,
		Seed:           1,
	}
}

// DefaultMCNodes returns the chip-like edge attach points for a w×h mesh:
// two dual-port controllers, four ports on the east and west edges.
func DefaultMCNodes(w, h int) []int {
	return []int{
		0,           // north-west
		w - 1,       // north-east
		w * (h - 1), // south-west
		w*h - 1,     // south-east
	}
}

// memMap interleaves line addresses across the MC ports.
type memMap struct {
	nodes []int
}

// HomeMC implements coherence.MemMap.
func (m memMap) HomeMC(addr uint64) int {
	return m.nodes[int(addr)%len(m.nodes)]
}

// tileAgent composes the tile's L2 controller with an optional
// memory-controller port behind one NIC.
type tileAgent struct {
	l2 *coherence.L2Controller
	mc *mem.Controller
}

// AcceptOrderedRequest implements nic.Agent: both the L2 and the MC snoop
// the ordered stream; the L2's occupancy and FID capacity gate acceptance.
func (t *tileAgent) AcceptOrderedRequest(p *noc.Packet, arrive, cycle uint64) bool {
	if !t.l2.CanAcceptOrdered(cycle) {
		return false
	}
	if !t.l2.ProcessOrdered(p, arrive, cycle) {
		return false
	}
	if t.mc != nil {
		t.mc.ProcessOrdered(p, arrive, cycle)
	}
	return true
}

// AcceptResponse routes unordered responses to the right sub-agent.
func (t *tileAgent) AcceptResponse(p *noc.Packet, cycle uint64) bool {
	if coherence.Kind(p.Kind) == coherence.WBData {
		if t.mc == nil {
			panic("system: writeback data delivered to a node without a memory controller")
		}
		return t.mc.AcceptResponse(p, cycle)
	}
	return t.l2.AcceptResponse(p, cycle)
}

// Scorpio is a fully assembled SCORPIO machine.
type Scorpio struct {
	opt       Options
	Kernel    *sim.Kernel
	Net       *core.OrderedNet
	L2s       []*coherence.L2Controller
	MCs       []*mem.Controller
	Tiles     []*tile.Tile // populated when Options.UseL1 is set
	Injectors []*trace.Injector
	Obs       *Observability // nil unless Options.Obs enabled something
}

// NewScorpio builds the machine with trace injectors attached.
func NewScorpio(opt Options) (*Scorpio, error) {
	if err := opt.Profile.Validate(); err != nil {
		return nil, err
	}
	s, err := NewScorpioBare(opt)
	if err != nil {
		return nil, err
	}
	for node, l2 := range s.L2s {
		var port trace.RequestPort = l2
		var tl *tile.Tile
		if opt.UseL1 {
			tl = tile.New(node, tile.DefaultConfig(), l2)
			s.Tiles = append(s.Tiles, tl)
			s.Kernel.RegisterGroup(node, tl)
			port = &tilePort{t: tl}
		}
		inj := trace.NewInjector(node, opt.Profile, opt.Seed, port, opt.MaxOutstanding, opt.WarmupPerCore, opt.WorkPerCore)
		if s.Obs != nil {
			inj.Attr = s.Obs.Attrib
		}
		s.Injectors = append(s.Injectors, inj)
		if opt.UseL1 {
			tl.OnComplete = func(c tile.Completion) {
				inj.OnComplete(c.Addr, c.Write, c.Issue, c.Done, c.L1Hit, false, nil)
			}
		} else {
			l2.OnComplete = func(c coherence.Completion) {
				inj.OnComplete(c.Addr, c.Write, c.Issue, c.Done, c.Hit, c.ServedByCache, &c.Breakdown)
			}
		}
		s.Kernel.RegisterGroup(node, inj)
	}
	return s, nil
}

// tilePort adapts the tile's data AHB port to the injector interface.
type tilePort struct {
	t *tile.Tile
}

// CoreRequest implements trace.RequestPort.
func (p *tilePort) CoreRequest(addr uint64, write bool, cycle uint64) bool {
	return p.t.Access(tile.Data, addr, write, 0, cycle)
}

// NewScorpioBare builds the machine without workload drivers: tiles, memory
// controllers and networks only. The consistency-verification suite and
// custom drivers attach through L2s[n].CoreAccess / OnComplete.
func NewScorpioBare(opt Options) (*Scorpio, error) {
	if opt.MaxOutstanding <= 0 {
		opt.MaxOutstanding = 2
	}
	k := sim.NewKernel()
	net, err := core.NewOrderedNet(opt.Core, k)
	if err != nil {
		return nil, err
	}
	nodes := net.Nodes()
	mcNodes := opt.MCNodes
	if mcNodes == nil {
		mcNodes = DefaultMCNodes(opt.Core.Net.Width, opt.Core.Net.Height)
	}
	mm := memMap{nodes: mcNodes}
	s := &Scorpio{opt: opt, Kernel: k, Net: net}
	mcAt := map[int]bool{}
	for _, n := range mcNodes {
		if n < 0 || n >= nodes {
			return nil, fmt.Errorf("system: MC node %d out of range", n)
		}
		mcAt[n] = true
	}
	for node := 0; node < nodes; node++ {
		n := net.NIC(node)
		l2 := coherence.NewL2(node, opt.L2, n, packetIDStream(node), mm)
		s.L2s = append(s.L2s, l2)
		agent := &tileAgent{l2: l2}
		if mcAt[node] {
			mc := mem.New(node, opt.Mem, n, packetIDStream(nodes+node), mm)
			agent.mc = mc
			s.MCs = append(s.MCs, mc)
			k.RegisterGroup(node, mc)
		}
		net.AttachAgent(node, agent)
		k.RegisterGroup(node, l2)
	}
	k.SetWorkers(opt.Workers)
	k.SetIdleSkip(!opt.DisableIdleSkip)
	var obsErr error
	s.Obs, obsErr = buildObs(opt.Obs, k, nodes,
		machineInfo{
			label: "SCORPIO/" + opt.Profile.Name,
			mesh:  net.Mesh(),
			// NewScorpio attaches the injectors after this returns, so the
			// latency reader resolves them lazily per sample.
			latency: latencyFromInjectors(func() []*trace.Injector { return s.Injectors }),
		},
		func(c *counters) {
			for node := 0; node < nodes; node++ {
				st := &net.NIC(node).Stats
				c.injected += st.InjectedRequests + st.InjectedResponses
				c.ejected += st.DeliveredRequests + st.DeliveredResponses
			}
			ns := net.NetStats()
			c.flitsRouted, c.bypasses, c.allocStalls = ns.FlitsRouted, ns.Bypasses, ns.AllocStalls
			c.notifWindows = net.Notif().WindowsDelivered
		},
		func() (int, int) {
			out := 0
			for _, l2 := range s.L2s {
				out += l2.Outstanding()
			}
			return net.BufferedFlits(), out
		},
		func() bool { return net.BufferedFlits() > 0 || net.HasPendingWork() },
		net.Snapshot,
	)
	if obsErr != nil {
		return nil, obsErr
	}
	if s.Obs != nil && s.Obs.Tracer != nil {
		net.SetTracer(s.Obs.Tracer)
		for _, l2 := range s.L2s {
			l2.SetTracer(s.Obs.Tracer)
		}
	}
	if s.Obs != nil && s.Obs.Auditor != nil {
		net.SetAuditor(s.Obs.Auditor)
		for _, l2 := range s.L2s {
			l2.SetAuditor(s.Obs.Auditor)
		}
	}
	return s, nil
}

// Done reports whether every core finished its work quota.
func (s *Scorpio) Done() bool {
	for _, in := range s.Injectors {
		if !in.Done() {
			return false
		}
	}
	return true
}

// Run executes until all work completes or the cycle limit is reached and
// returns the collected results. A watchdog stall aborts the run with the
// full network snapshot in the error.
func (s *Scorpio) Run(limit uint64) (Results, error) {
	done := s.Done
	if s.Obs != nil && (s.Obs.Watchdog != nil || s.Obs.Auditor != nil) {
		done = func() bool { return s.Obs.Stalled() || s.Obs.Violated() || s.Done() }
	}
	wall0 := time.Now()
	finished := s.Kernel.RunUntil(done, limit)
	s.Obs.finishPerf(s.Kernel, "SCORPIO/"+s.opt.Profile.Name, int64(time.Since(wall0)))
	if s.Obs.Violated() {
		return Results{}, fmt.Errorf("system: %s audit violation\n%s", s.opt.Profile.Name, s.Obs.AuditReport())
	}
	if s.Obs.Stalled() {
		return Results{}, fmt.Errorf("system: %s stalled\n%s", s.opt.Profile.Name, s.Obs.StallReport())
	}
	if !finished {
		return Results{}, fmt.Errorf("system: %s did not finish %d accesses/core within %d cycles (completed %d)",
			s.opt.Profile.Name, s.opt.WorkPerCore, limit, s.completed())
	}
	if err := s.Net.VerifyGlobalOrder(); err != nil {
		return Results{}, err
	}
	if s.Obs != nil && s.Obs.Auditor != nil {
		s.Obs.Auditor.Finish(s.Kernel.Cycle())
		if s.Obs.Violated() {
			return Results{}, fmt.Errorf("system: %s audit violation\n%s", s.opt.Profile.Name, s.Obs.AuditReport())
		}
	}
	s.Obs.finishHeatmap(s.Net.Mesh(), s.Kernel.Cycle())
	return s.collect(), nil
}

func (s *Scorpio) completed() uint64 {
	var n uint64
	for _, in := range s.Injectors {
		n += in.Completed
	}
	return n
}

// collect aggregates per-core statistics into Results.
func (s *Scorpio) collect() Results {
	r := Results{Protocol: "SCORPIO", Benchmark: s.opt.Profile.Name, Cycles: s.Kernel.Cycle(), Obs: s.Obs}
	if len(s.Injectors) > 0 {
		r.ServiceHist = stats.NewHistogram(4, 512)
	}
	for _, in := range s.Injectors {
		r.Completed += in.Completed
		r.Service.Merge(in.ServiceLatency)
		r.ServiceHist.Merge(in.ServiceHist)
		r.HitLat.Merge(in.HitLatency)
		r.MissLat.Merge(in.MissLatency)
		r.CacheServed.Merge(in.CacheServed)
		r.MemServed.Merge(in.MemServed)
		if in.DoneCycle > r.LastDone {
			r.LastDone = in.DoneCycle
		}
	}
	for _, l2 := range s.L2s {
		r.L2Hits += l2.Stats.Hits
		r.L2Misses += l2.Stats.Misses
		r.SnoopsFiltered += l2.Stats.SnoopsFiltered
		r.SnoopsSeen += l2.Stats.SnoopsSeen
		r.Writebacks += l2.Stats.Writebacks
		r.FIDDeferrals += l2.Stats.FIDDeferrals
	}
	ns := s.Net.NetStats()
	r.FlitsRouted = ns.FlitsRouted
	r.Bypasses = ns.Bypasses
	for node := 0; node < s.Net.Nodes(); node++ {
		st := s.Net.NIC(node).Stats
		r.OrderingLat.Merge(st.OrderingLatency)
		r.ReqNetworkLat.Merge(st.NetworkLatency)
	}
	return r
}

// Results aggregates one run's outcome; it is shared by every protocol's
// system so experiments can compare like for like.
type Results struct {
	Protocol  string
	Benchmark string
	Cycles    uint64
	LastDone  uint64
	Completed uint64

	Service stats.Mean // L2 service latency over all accesses
	HitLat  stats.Mean
	MissLat stats.Mean

	CacheServed stats.Breakdown // misses served by other caches (Fig 6b)
	MemServed   stats.Breakdown // misses served by directory/memory (Fig 6c)

	L2Hits         uint64
	L2Misses       uint64
	SnoopsSeen     uint64
	SnoopsFiltered uint64
	Writebacks     uint64
	FIDDeferrals   uint64

	// Directory baselines only.
	DirTransactions uint64
	DirCacheHits    uint64
	DirCacheMisses  uint64

	FlitsRouted   uint64
	Bypasses      uint64
	OrderingLat   stats.Mean
	ReqNetworkLat stats.Mean

	// ServiceHist is the full service-latency distribution (percentiles);
	// merged across cores. Nil for machines without injectors.
	ServiceHist *stats.Histogram

	// Obs carries the run's observability artifacts (trace ring, metrics
	// series, watchdog) when enabled; nil otherwise.
	Obs *Observability
}

// Runtime returns the cycle count used for normalized-runtime comparisons.
func (r Results) Runtime() float64 {
	if r.LastDone > 0 {
		return float64(r.LastDone)
	}
	return float64(r.Cycles)
}

// ServedByCacheFrac returns the fraction of misses served by other caches.
func (r Results) ServedByCacheFrac() float64 {
	total := r.CacheServed.Count() + r.MemServed.Count()
	if total == 0 {
		return 0
	}
	return float64(r.CacheServed.Count()) / float64(total)
}
