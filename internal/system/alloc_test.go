package system

import (
	"testing"

	"scorpio/internal/directory"
	"scorpio/internal/trace"
)

// Steady-state allocation bounds, in average heap allocations per kernel
// step on a warm 6×6 machine under the barnes workload. The network layer
// (flits, VC rings, credit buffers, NIC staging) is allocation-free —
// TestMeshSteadyStateAllocs in internal/traffic pins that at exactly zero;
// flits live in the routers' fixed-capacity arenas and cross links by
// value, so even broadcast forking allocates nothing — what remains is
// per-coherence-transaction
// protocol state that outlives a cycle and is deliberately not pooled:
// request/response Packets held in MSHRs and send queues, RespInfo payloads,
// and map entries for newly touched lines. At barnes's issue rate that is a
// handful of objects per transaction (LPD-D sends several unicast messages
// per miss where SCORPIO sends one broadcast plus one response, hence its
// higher floor). The bounds leave ~2× headroom over measured values
// (SCORPIO ≈ 2.9/step, LPD-D ≈ 4.2/step) so they catch an accidental
// per-flit or per-cycle allocation — which shows up as tens per step — while
// tolerating workload noise.
const (
	scorpioAllocBound = 6.0
	lpdAllocBound     = 8.0
)

// steadyAllocsPerStep warms the machine, then measures average allocations
// per kernel step over repeated 500-step windows.
func steadyAllocsPerStep(t *testing.T, step func(), warmSteps, measureSteps int) float64 {
	t.Helper()
	for i := 0; i < warmSteps; i++ {
		step()
	}
	per := testing.AllocsPerRun(3, func() {
		for i := 0; i < measureSteps; i++ {
			step()
		}
	})
	return per / float64(measureSteps)
}

func TestScorpioSteadyStateAllocs(t *testing.T) {
	prof, err := trace.ByName("barnes")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(prof)
	// Effectively infinite work: the cores must still be issuing while we
	// measure.
	opt.WorkPerCore = 1 << 40
	opt.WarmupPerCore = 0
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	per := steadyAllocsPerStep(t, s.Kernel.Step, 6000, 500)
	t.Logf("SCORPIO: %.2f allocs/step (bound %.1f)", per, scorpioAllocBound)
	if per > scorpioAllocBound {
		t.Fatalf("SCORPIO steady state allocates %.2f times per step, bound %.1f", per, scorpioAllocBound)
	}
}

func TestDirectorySteadyStateAllocs(t *testing.T) {
	prof, err := trace.ByName("barnes")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultDirectoryOptions(directory.LPD, prof)
	opt.WorkPerCore = 1 << 40
	opt.WarmupPerCore = 0
	d, err := NewDirectory(opt)
	if err != nil {
		t.Fatal(err)
	}
	per := steadyAllocsPerStep(t, d.Kernel.Step, 6000, 500)
	t.Logf("LPD-D: %.2f allocs/step (bound %.1f)", per, lpdAllocBound)
	if per > lpdAllocBound {
		t.Fatalf("LPD-D steady state allocates %.2f times per step, bound %.1f", per, lpdAllocBound)
	}
}

