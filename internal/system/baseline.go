package system

import (
	"fmt"
	"time"

	"scorpio/internal/baseline"
	"scorpio/internal/coherence"
	"scorpio/internal/mem"
	"scorpio/internal/noc"
	"scorpio/internal/obs"
	"scorpio/internal/sim"
	"scorpio/internal/stats"
	"scorpio/internal/trace"
)

// OrderingScheme selects the Figure 7 baseline.
type OrderingScheme int

const (
	// SchemeTokenB is TokenB: zero-cost protocol-level ordering.
	SchemeTokenB OrderingScheme = iota
	// SchemeINSO is In-Network Snoop Ordering with an expiration window.
	SchemeINSO
)

// String names the scheme as the paper's Figure 7 does.
func (s OrderingScheme) String() string {
	if s == SchemeTokenB {
		return "TokenB"
	}
	return "INSO"
}

// BaselineOptions configures a TokenB or INSO machine (Figure 7 runs these
// at 16 cores with the same snoopy protocol and mesh as SCORPIO).
type BaselineOptions struct {
	Scheme OrderingScheme
	// ExpiryWindow is INSO's expiration window in cycles (20/40/80).
	ExpiryWindow   int
	Net            noc.Config
	L2             coherence.Config
	Mem            mem.Config
	Profile        trace.Profile
	WorkPerCore    uint64
	WarmupPerCore  uint64
	MaxOutstanding int
	Seed           uint64
	MCNodes        []int
	// DisableIdleSkip forces every component to step every cycle (results
	// are bit-identical either way).
	DisableIdleSkip bool
	// Obs enables tracing, metrics sampling and the watchdog (nil = off).
	Obs *obs.Options
}

// DefaultBaselineOptions mirrors the paper's 16-core Figure 7 setup.
func DefaultBaselineOptions(scheme OrderingScheme, prof trace.Profile) BaselineOptions {
	net := noc.DefaultConfig()
	net.Width, net.Height = 4, 4
	l2 := coherence.DefaultConfig()
	l2.DataFlits = net.DataPacketFlits()
	return BaselineOptions{
		Scheme:         scheme,
		ExpiryWindow:   20,
		Net:            net,
		L2:             l2,
		Mem:            mem.DefaultConfig(),
		Profile:        prof,
		WorkPerCore:    400,
		WarmupPerCore:  300,
		MaxOutstanding: 2,
		Seed:           1,
	}
}

// Baseline is an assembled TokenB or INSO machine.
type Baseline struct {
	opt       BaselineOptions
	Kernel    *sim.Kernel
	Mesh      *noc.Mesh
	Endpoints []*baseline.Endpoint
	L2s       []*coherence.L2Controller
	INSO      *baseline.INSO // nil for TokenB
	Injectors []*trace.Injector
	Obs       *Observability
}

// NewBaseline builds the machine. Baseline machines always run on the serial
// kernel: both orderers hand out global sequence numbers from a shared
// counter during Endpoint.Commit, so their results depend on commit order and
// cannot be sharded across workers without changing behaviour.
func NewBaseline(opt BaselineOptions) (*Baseline, error) {
	if err := opt.Profile.Validate(); err != nil {
		return nil, err
	}
	if opt.MaxOutstanding <= 0 {
		opt.MaxOutstanding = 2
	}
	mesh, err := noc.NewMesh(opt.Net)
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	b := &Baseline{opt: opt, Kernel: k, Mesh: mesh}
	var orderer baseline.Orderer
	switch opt.Scheme {
	case SchemeTokenB:
		tb := baseline.NewTokenB()
		orderer = tb
		k.Register(tb)
	case SchemeINSO:
		if opt.ExpiryWindow <= 0 {
			return nil, fmt.Errorf("system: INSO needs a positive expiry window")
		}
		ins := baseline.NewINSO(opt.Net.Nodes(), opt.ExpiryWindow, opt.Net.Width+opt.Net.Height)
		orderer = ins
		b.INSO = ins
		ins.BindActivity(k.Register(ins))
	}
	mcNodes := opt.MCNodes
	if mcNodes == nil {
		mcNodes = DefaultMCNodes(opt.Net.Width, opt.Net.Height)
	}
	mm := memMap{nodes: mcNodes}
	mcAt := map[int]bool{}
	for _, n := range mcNodes {
		mcAt[n] = true
	}
	for node := 0; node < opt.Net.Nodes(); node++ {
		ep := baseline.NewEndpoint(node, mesh, orderer, nil)
		if b.INSO != nil {
			ep.SetExpirySource(b.INSO)
		}
		b.Endpoints = append(b.Endpoints, ep)
		l2 := coherence.NewL2(node, opt.L2, ep, mesh.NextPacketID, mm)
		b.L2s = append(b.L2s, l2)
		agent := &tileAgent{l2: l2}
		if mcAt[node] {
			mc := mem.New(node, opt.Mem, ep, mesh.NextPacketID, mm)
			agent.mc = mc
			k.RegisterGroup(node, mc)
		}
		ep.SetAgent(agent)
		inj := trace.NewInjector(node, opt.Profile, opt.Seed, l2, opt.MaxOutstanding, opt.WarmupPerCore, opt.WorkPerCore)
		b.Injectors = append(b.Injectors, inj)
		l2.OnComplete = func(c coherence.Completion) {
			inj.OnComplete(c.Addr, c.Write, c.Issue, c.Done, c.Hit, c.ServedByCache, &c.Breakdown)
		}
		// One scheduling unit per node (the machine is serial anyway, but the
		// activity engine parks and wakes whole units): the endpoint delivers
		// straight into the L2 and memory controller, and the injector drives
		// the L2.
		act := k.RegisterGroup(node, inj)
		k.RegisterGroup(node, l2)
		k.RegisterGroup(node, ep)
		// The node's unit is woken by its link traffic and, under INSO, by
		// expiry broadcasts it owes.
		ep.BindActivity(act)
		if b.INSO != nil {
			b.INSO.SetEndpointActivity(node, act)
		}
	}
	mesh.Register(k)
	k.SetIdleSkip(!opt.DisableIdleSkip)
	var obsErr error
	b.Obs, obsErr = buildObs(opt.Obs, k, opt.Net.Nodes(),
		machineInfo{
			label:   opt.Scheme.String() + "/" + opt.Profile.Name,
			mesh:    mesh,
			latency: latencyFromInjectors(func() []*trace.Injector { return b.Injectors }),
		},
		func(c *counters) {
			for _, ep := range b.Endpoints {
				c.injected += ep.Injected
				c.ejected += ep.Delivered
			}
			ns := mesh.Stats()
			c.flitsRouted, c.bypasses, c.allocStalls = ns.FlitsRouted, ns.Bypasses, ns.AllocStalls
		},
		func() (int, int) {
			out := 0
			for _, l2 := range b.L2s {
				out += l2.Outstanding()
			}
			return mesh.BufferedFlits(), out
		},
		func() bool {
			if mesh.BufferedFlits() > 0 {
				return true
			}
			for _, ep := range b.Endpoints {
				if ep.HasPendingWork() {
					return true
				}
			}
			return false
		},
		func(now uint64) string {
			s := mesh.Snapshot(now)
			for _, ep := range b.Endpoints {
				if ep.HasPendingWork() {
					s += ep.OrderingSnapshot() + "\n"
				}
			}
			return s
		},
	)
	if obsErr != nil {
		return nil, obsErr
	}
	if b.Obs != nil && b.Obs.Tracer != nil {
		mesh.SetTracer(b.Obs.Tracer)
		for _, ep := range b.Endpoints {
			ep.SetTracer(b.Obs.Tracer)
		}
		for _, l2 := range b.L2s {
			l2.SetTracer(b.Obs.Tracer)
		}
	}
	if b.Obs != nil && b.Obs.Auditor != nil {
		mesh.SetAuditor(b.Obs.Auditor)
		for _, ep := range b.Endpoints {
			ep.SetAuditor(b.Obs.Auditor)
		}
		for _, l2 := range b.L2s {
			l2.SetAuditor(b.Obs.Auditor)
		}
	}
	if b.Obs != nil {
		for _, inj := range b.Injectors {
			inj.Attr = b.Obs.Attrib
		}
	}
	return b, nil
}

// Done reports completion.
func (b *Baseline) Done() bool {
	for _, in := range b.Injectors {
		if !in.Done() {
			return false
		}
	}
	return true
}

// Run executes to completion and collects results. A watchdog stall aborts
// the run with the full network snapshot in the error.
func (b *Baseline) Run(limit uint64) (Results, error) {
	done := b.Done
	if b.Obs != nil && (b.Obs.Watchdog != nil || b.Obs.Auditor != nil) {
		done = func() bool { return b.Obs.Stalled() || b.Obs.Violated() || b.Done() }
	}
	wall0 := time.Now()
	finished := b.Kernel.RunUntil(done, limit)
	b.Obs.finishPerf(b.Kernel, b.opt.Scheme.String()+"/"+b.opt.Profile.Name, int64(time.Since(wall0)))
	if b.Obs.Violated() {
		return Results{}, fmt.Errorf("system: %s/%s audit violation\n%s",
			b.opt.Scheme, b.opt.Profile.Name, b.Obs.AuditReport())
	}
	if b.Obs.Stalled() {
		return Results{}, fmt.Errorf("system: %s/%s stalled\n%s",
			b.opt.Scheme, b.opt.Profile.Name, b.Obs.StallReport())
	}
	if !finished {
		var completed uint64
		for _, in := range b.Injectors {
			completed += in.Completed
		}
		return Results{}, fmt.Errorf("system: %s/%s did not finish within %d cycles (completed %d)",
			b.opt.Scheme, b.opt.Profile.Name, limit, completed)
	}
	if b.Obs != nil && b.Obs.Auditor != nil {
		b.Obs.Auditor.Finish(b.Kernel.Cycle())
		if b.Obs.Violated() {
			return Results{}, fmt.Errorf("system: %s/%s audit violation\n%s",
				b.opt.Scheme, b.opt.Profile.Name, b.Obs.AuditReport())
		}
	}
	b.Obs.finishHeatmap(b.Mesh, b.Kernel.Cycle())
	name := b.opt.Scheme.String()
	if b.opt.Scheme == SchemeINSO {
		name = fmt.Sprintf("INSO-%d", b.opt.ExpiryWindow)
	}
	r := Results{Protocol: name, Benchmark: b.opt.Profile.Name, Cycles: b.Kernel.Cycle(), Obs: b.Obs}
	if len(b.Injectors) > 0 {
		r.ServiceHist = stats.NewHistogram(4, 512)
	}
	for _, in := range b.Injectors {
		r.Completed += in.Completed
		r.Service.Merge(in.ServiceLatency)
		r.ServiceHist.Merge(in.ServiceHist)
		r.HitLat.Merge(in.HitLatency)
		r.MissLat.Merge(in.MissLatency)
		r.CacheServed.Merge(in.CacheServed)
		r.MemServed.Merge(in.MemServed)
		if in.DoneCycle > r.LastDone {
			r.LastDone = in.DoneCycle
		}
	}
	for _, l2 := range b.L2s {
		r.L2Hits += l2.Stats.Hits
		r.L2Misses += l2.Stats.Misses
		r.Writebacks += l2.Stats.Writebacks
	}
	for _, ep := range b.Endpoints {
		r.OrderingLat.Merge(ep.OrderingWait)
	}
	ns := b.Mesh.Stats()
	r.FlitsRouted = ns.FlitsRouted
	r.Bypasses = ns.Bypasses
	return r, nil
}
