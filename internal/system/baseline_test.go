package system

import (
	"testing"

	"scorpio/internal/trace"
)

func runBaseline(t *testing.T, scheme OrderingScheme, window int, bench string) Results {
	t.Helper()
	prof, err := trace.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultBaselineOptions(scheme, prof)
	opt.ExpiryWindow = window
	opt.WorkPerCore = 60
	opt.WarmupPerCore = 120
	b, err := NewBaseline(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTokenBRunsToCompletion(t *testing.T) {
	res := runBaseline(t, SchemeTokenB, 0, "blackscholes")
	if res.Service.Count != 16*60 {
		t.Fatalf("measured %d, want %d", res.Service.Count, 16*60)
	}
	t.Logf("TokenB blackscholes: %d cycles, miss %.1f, ordering wait %.1f",
		res.Cycles, res.MissLat.Value(), res.OrderingLat.Value())
}

func TestINSORunsToCompletion(t *testing.T) {
	res := runBaseline(t, SchemeINSO, 20, "blackscholes")
	if res.Service.Count != 16*60 {
		t.Fatalf("measured %d, want %d", res.Service.Count, 16*60)
	}
	t.Logf("INSO-20 blackscholes: %d cycles, miss %.1f, ordering wait %.1f",
		res.Cycles, res.MissLat.Value(), res.OrderingLat.Value())
}

func TestINSOExpiryWindowTrend(t *testing.T) {
	// Figure 7: runtime grows with the expiration window.
	r20 := runBaseline(t, SchemeINSO, 20, "swaptions")
	r80 := runBaseline(t, SchemeINSO, 80, "swaptions")
	t.Logf("INSO runtime: W=20 %.0f, W=80 %.0f", r20.Runtime(), r80.Runtime())
	if r80.Runtime() <= r20.Runtime() {
		t.Errorf("INSO-80 runtime %.0f should exceed INSO-20 %.0f", r80.Runtime(), r20.Runtime())
	}
}

func TestTokenBTracksScorpio(t *testing.T) {
	tb := runBaseline(t, SchemeTokenB, 0, "vips")
	sOpt := smallOptions(t, "vips", 16)
	s, err := NewScorpio(sOpt)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := s.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	ratio := sr.Runtime() / tb.Runtime()
	t.Logf("SCORPIO/TokenB runtime ratio: %.2f", ratio)
	if ratio < 0.8 || ratio > 1.6 {
		t.Errorf("TokenB should perform close to SCORPIO (paper Fig 7); ratio %.2f", ratio)
	}
}
