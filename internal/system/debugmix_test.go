package system

import (
	"testing"

	"scorpio/internal/coherence"
	"scorpio/internal/trace"
)

// TestDebugMissMix categorises misses by address region to diagnose the
// served-by-cache ratio. It logs only; thresholds live in the main tests.
func TestDebugMissMix(t *testing.T) {
	prof, _ := trace.ByName("fft")
	opt := DefaultOptions(prof)
	opt.Core = opt.Core.WithMeshSize(4, 4)
	opt.WorkPerCore = 200
	opt.WarmupPerCore = 300
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	type cat struct{ cache, mem, hit int }
	cats := map[string]*cat{"shared": {}, "private": {}, "cold": {}}
	region := func(addr uint64) string {
		switch {
		case addr >= 1<<40:
			return "cold"
		case addr >= 1<<34:
			return "private"
		default:
			return "shared"
		}
	}
	for i := range s.L2s {
		inj := s.Injectors[i]
		s.L2s[i].OnComplete = func(c coherence.Completion) {
			inj.OnComplete(c.Addr, c.Write, c.Issue, c.Done, c.Hit, c.ServedByCache, &c.Breakdown)
			r := cats[region(c.Addr)]
			switch {
			case c.Hit:
				r.hit++
			case c.ServedByCache:
				r.cache++
			default:
				r.mem++
			}
		}
	}
	if _, err := s.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	for name, c := range cats {
		t.Logf("%-8s hits=%6d cache-served=%6d mem-served=%6d", name, c.hit, c.cache, c.mem)
	}
}
