package system

import (
	"strings"
	"testing"

	"scorpio/internal/directory"
	"scorpio/internal/obs"
	"scorpio/internal/obs/audit"
	"scorpio/internal/trace"
)

// TestAuditedScorpioHealthy runs the full 36-core chip with the auditor
// attached: the run must succeed with zero violations while the auditor
// actually cross-checks work (commits, flits, shadow lines), and the latency
// attributor must decompose every measured miss.
func TestAuditedScorpioHealthy(t *testing.T) {
	opt := smallOptions(t, "barnes", 36)
	opt.WorkPerCore = 40
	opt.WarmupPerCore = 60
	opt.Obs = &obs.Options{Audit: true}
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(3_000_000)
	if err != nil {
		t.Fatalf("audited run failed: %v", err)
	}
	a := s.Obs.Auditor
	if a.Violated() {
		t.Fatalf("healthy run flagged: %s", a.Report())
	}
	if a.Commits() == 0 || a.FrontPos() == 0 {
		t.Fatal("auditor cross-checked no order commits")
	}
	if a.FlitsChecked() == 0 {
		t.Fatal("auditor verified no flit deliveries")
	}
	if !strings.HasPrefix(a.Summary(), "audit: ok") {
		t.Fatalf("Summary() = %q", a.Summary())
	}
	// Every NIC must have committed the same number of ordered requests by
	// run end (the network drains), so commits = nodes × positions.
	if a.Commits() != uint64(36)*a.FrontPos() {
		t.Fatalf("commits %d != 36 × %d positions: NICs ended out of step", a.Commits(), a.FrontPos())
	}
	at := res.Obs.Attrib
	if at == nil {
		t.Fatal("attributor missing from audited run")
	}
	cacheN, memN := at.Misses()
	wantCache, wantMem := res.CacheServed.Count(), res.MemServed.Count()
	if cacheN != wantCache || memN != wantMem {
		t.Fatalf("attributor saw %d/%d misses, breakdowns saw %d/%d", cacheN, memN, wantCache, wantMem)
	}
	if cacheN+memN == 0 {
		t.Fatal("no misses attributed")
	}
	if !strings.Contains(at.Table(), "latency attribution") {
		t.Fatalf("attribution table malformed:\n%s", at.Table())
	}
}

// TestAuditedBaselinesHealthy attaches the auditor to each baseline machine:
// TokenB and INSO commit through the same canonical-ring checker as SCORPIO,
// and the directory machine gets the delivery-sanity subset.
func TestAuditedBaselinesHealthy(t *testing.T) {
	prof, err := trace.ByName("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []OrderingScheme{SchemeTokenB, SchemeINSO} {
		opt := DefaultBaselineOptions(scheme, prof)
		opt.WorkPerCore = 40
		opt.WarmupPerCore = 60
		opt.Obs = &obs.Options{Audit: true}
		b, err := NewBaseline(opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Run(3_000_000); err != nil {
			t.Fatalf("audited %s run failed: %v", scheme, err)
		}
		if b.Obs.Auditor.Commits() == 0 {
			t.Fatalf("%s: auditor cross-checked no commits", scheme)
		}
	}
	dopt := DefaultDirectoryOptions(directory.LPD, prof)
	dopt.Net.Width, dopt.Net.Height = 4, 4
	dopt.L2 = directory.L2Config{}
	dopt.Home = directory.HomeConfig{}
	dopt.fillDefaults()
	dopt.WorkPerCore = 40
	dopt.WarmupPerCore = 60
	dopt.Obs = &obs.Options{Audit: true}
	d, err := NewDirectory(dopt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(3_000_000); err != nil {
		t.Fatalf("audited LPD-D run failed: %v", err)
	}
	if d.Obs.Auditor.FlitsChecked() == 0 {
		t.Fatal("LPD-D: auditor verified no flit deliveries")
	}
}

// TestAuditedParallelKernelHealthy exercises the auditor's mutex path under
// the worker-pool kernel: results and audit verdict must match the serial run.
func TestAuditedParallelKernelHealthy(t *testing.T) {
	opt := smallOptions(t, "fft", 16)
	opt.Workers = 4
	opt.Obs = &obs.Options{Audit: true}
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(3_000_000); err != nil {
		t.Fatalf("audited parallel run failed: %v", err)
	}
	if s.Obs.Auditor.Commits() == 0 {
		t.Fatal("auditor cross-checked no commits under the parallel kernel")
	}
}

// auditedPartialRun builds an audited 16-core machine and advances it until
// the auditor has cross-checked some real traffic, leaving the run mid-flight
// for a mutation to corrupt.
func auditedPartialRun(t *testing.T) *Scorpio {
	t.Helper()
	opt := smallOptions(t, "barnes", 16)
	opt.Obs = &obs.Options{Audit: true}
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	s.Kernel.RunUntil(func() bool { return s.Obs.Auditor.Commits() >= 32 }, 3_000_000)
	if s.Obs.Auditor.Commits() < 32 {
		t.Fatal("partial run produced no ordered traffic")
	}
	return s
}

// TestAuditDetectsCorruptedCommitOrder corrupts one NIC's commit stream
// mid-run (the mutation a real ordering bug would produce) and checks the
// run aborts with a divergence diagnosis naming the culprit.
func TestAuditDetectsCorruptedCommitOrder(t *testing.T) {
	s := auditedPartialRun(t)
	// NIC 3 commits a packet no other NIC will ever see in that slot.
	s.Obs.Auditor.OrderCommit(3, 0xdeadbeef, 3, s.Kernel.Cycle())
	_, err := s.Run(3_000_000)
	if err == nil {
		t.Fatal("corrupted commit order did not abort the run")
	}
	msg := err.Error()
	if !strings.Contains(msg, "audit violation") || !strings.Contains(msg, "NIC 3") {
		t.Fatalf("error does not name the culprit NIC: %v", err)
	}
	// Depending on where NIC 3 sat relative to the canonical front, the fake
	// commit either diverges from the established order or overruns the
	// notification announcements; both are correct detections of the mutation.
	if !strings.Contains(msg, "global order diverged") && !strings.Contains(msg, "notification network announced") {
		t.Fatalf("error missing ordering diagnosis: %v", err)
	}
}

// TestAuditDetectsTwoOwners installs Modified for the same line at two tiles
// (the mutation a lost-invalidation bug would produce) and checks the run
// aborts naming the line and both NICs.
func TestAuditDetectsTwoOwners(t *testing.T) {
	s := auditedPartialRun(t)
	cycle := s.Kernel.Cycle()
	s.Obs.Auditor.LineState(0, 0xbad0bad0, audit.LineModified, cycle)
	s.Obs.Auditor.LineState(5, 0xbad0bad0, audit.LineModified, cycle+1)
	_, err := s.Run(3_000_000)
	if err == nil {
		t.Fatal("two-owner line did not abort the run")
	}
	msg := err.Error()
	for _, want := range []string{"audit violation", "two owners", "0xbad0bad0", "NIC 5", "NIC 0"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error missing %q: %v", want, err)
		}
	}
}

// TestAuditViolationCarriesSnapshot checks the report embeds the same
// network-state snapshot the watchdog would dump.
func TestAuditViolationCarriesSnapshot(t *testing.T) {
	s := auditedPartialRun(t)
	s.Obs.Auditor.OrderCommit(3, 0xdeadbeef, 3, s.Kernel.Cycle())
	_, err := s.Run(3_000_000)
	if err == nil {
		t.Fatal("violation did not abort")
	}
	if !strings.Contains(err.Error(), "mesh snapshot @cycle") {
		t.Fatalf("violation report missing network snapshot: %v", err)
	}
}
