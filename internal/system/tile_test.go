package system

import (
	"testing"

	"scorpio/internal/core"
	"scorpio/internal/tile"
	"scorpio/internal/trace"
)

// tileDriver issues a scripted access sequence through a Tile's AHB ports.
type tileDriver struct {
	t       *tile.Tile
	script  []tileOp
	next    int
	waiting bool
	Results []tile.Completion
}

type tileOp struct {
	port  tile.Port
	addr  uint64
	write bool
	value uint64
}

func (d *tileDriver) Evaluate(cycle uint64) {
	if d.waiting || d.next >= len(d.script) {
		return
	}
	op := d.script[d.next]
	if d.t.Access(op.port, op.addr, op.write, op.value, cycle) {
		d.waiting = true
	}
}

func (d *tileDriver) Commit(cycle uint64) {}

func (d *tileDriver) onComplete(c tile.Completion) {
	d.Results = append(d.Results, c)
	d.waiting = false
	d.next++
}

// TestFullStackTileIntegration drives the complete path — core port → L1 →
// AHB → L2 → ordered NoC → remote owner/memory — on a 16-core machine with
// the L1 layer attached, checking data values and inclusion end to end.
func TestFullStackTileIntegration(t *testing.T) {
	prof, err := trace.ByName("barnes")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(prof)
	opt.Core = core.DefaultConfig().WithMeshSize(4, 4)
	opt.L2.DataFlits = opt.Core.Net.DataPacketFlits()
	s, err := NewScorpioBare(opt)
	if err != nil {
		t.Fatal(err)
	}
	const line = uint64(0x5000)
	tiles := make([]*tile.Tile, 16)
	drivers := make([]*tileDriver, 16)
	for n := 0; n < 16; n++ {
		tiles[n] = tile.New(n, tile.DefaultConfig(), s.L2s[n])
		d := &tileDriver{t: tiles[n]}
		tiles[n].OnComplete = d.onComplete
		drivers[n] = d
		s.Kernel.Register(tiles[n])
		s.Kernel.Register(d)
	}
	// Core 3 writes the line twice; core 12 reads it twice (second read
	// after an intervening write by core 7); core 5 fetches it as an
	// instruction line.
	drivers[3].script = []tileOp{
		{port: tile.Data, addr: line, write: true, value: 11},
		{port: tile.Data, addr: line, write: true, value: 22},
	}
	drivers[12].script = []tileOp{
		{port: tile.Data, addr: line},
		{port: tile.Data, addr: line},
	}
	drivers[7].script = []tileOp{
		{port: tile.Data, addr: line, write: true, value: 33},
	}
	drivers[5].script = []tileOp{
		{port: tile.Instr, addr: line},
	}
	done := func() bool {
		for _, d := range drivers {
			if d.next < len(d.script) {
				return false
			}
		}
		return true
	}
	if !s.Kernel.RunUntil(done, 100_000) {
		t.Fatal("full-stack run did not finish")
	}
	if err := s.Net.VerifyGlobalOrder(); err != nil {
		t.Fatal(err)
	}
	// Every load observed one of the legally written values.
	legal := map[uint64]bool{0: true, 11: true, 22: true, 33: true}
	for n, d := range drivers {
		for _, c := range d.Results {
			if !c.Write && !legal[c.Value] {
				t.Fatalf("core %d loaded impossible value %d", n, c.Value)
			}
		}
	}
	// Monotone observation at core 12: its two reads must not go backwards
	// through 11 -> 22 (33's order vs 22 is unconstrained, but 11 after 22
	// would violate coherence).
	r12 := drivers[12].Results
	if len(r12) == 2 && r12[0].Value == 22 && r12[1].Value == 11 {
		t.Fatal("core 12 observed the write order backwards")
	}
	// Inclusion: if any tile's L1 has the line, its L2 must have it too.
	for n, tl := range tiles {
		if tl.L1D().Present(line) || tl.L1I().Present(line) {
			if s.L2s[n].LineState(line) == 0 { // coherence.Invalid
				t.Fatalf("tile %d: L1 holds the line but the L2 does not (inclusion broken)", n)
			}
		}
	}
}

func TestScorpioWithL1Tiles(t *testing.T) {
	prof, err := trace.ByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(prof)
	opt.Core = core.DefaultConfig().WithMeshSize(4, 4)
	opt.L2.DataFlits = opt.Core.Net.DataPacketFlits()
	opt.UseL1 = true
	opt.WorkPerCore, opt.WarmupPerCore = 60, 100
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Service.Count != 16*60 {
		t.Fatalf("measured %d accesses", res.Service.Count)
	}
	if len(s.Tiles) != 16 {
		t.Fatal("tiles not attached")
	}
	var l1Hits uint64
	for _, tl := range s.Tiles {
		l1Hits += tl.Stats.L1Hits
	}
	if l1Hits == 0 {
		t.Fatal("the L1 layer never hit — not in the path")
	}
	t.Logf("with L1s: service latency %.1f cycles, %d L1 hits", res.Service.Value(), l1Hits)
}
