package system

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"scorpio/internal/obs"
	"scorpio/internal/obs/perfmon"
)

// TestMetricsGoldenHeader pins the sampler's column contract: downstream
// tooling parses these names, so adding, renaming or reordering a column is
// an intentional schema change that must update this test (and any scripts
// reading the CSV).
func TestMetricsGoldenHeader(t *testing.T) {
	const golden = "cycle,injected,ejected,buffered_flits,flits_routed,bypasses,alloc_stalls,notif_windows,outstanding,active_units,parks,wakes,wheel_pending"
	if got := "cycle," + strings.Join(metricsColumns, ","); got != golden {
		t.Fatalf("metrics header changed:\n got %s\nwant %s", got, golden)
	}
}

// TestMetricsCarryActivityColumns checks the sampler's new engine columns on
// a real run: active_units is a live gauge and the park/wake deltas must sum
// to something nonzero on a workload that idles and resumes units.
func TestMetricsCarryActivityColumns(t *testing.T) {
	opt := smallOptions(t, "barnes", 16)
	opt.Obs = &obs.Options{MetricsInterval: 200}
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Obs.Metrics
	if m == nil || m.Samples() == 0 {
		t.Fatal("no metrics collected")
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	cols := strings.Split(lines[0], ",")
	idx := map[string]int{}
	for i, c := range cols {
		idx[c] = i
	}
	var parks, wakes float64
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		parks += atofTest(t, f[idx["parks"]])
		wakes += atofTest(t, f[idx["wakes"]])
		if au := atofTest(t, f[idx["active_units"]]); au < 0 {
			t.Fatalf("negative active_units gauge: %s", line)
		}
	}
	if parks == 0 || wakes == 0 {
		t.Fatalf("activity columns flat across the run (parks %v, wakes %v); sampler is not wired to the engine census", parks, wakes)
	}
}

func atofTest(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float %q: %v", s, err)
	}
	return v
}

// TestWatchdogStallReportCarriesActivity extends the stall-snapshot contract:
// the watchdog error must now also carry the activity engine's state (parked
// units, pending wheel wakes) so a lost-wake hang names its suspects.
func TestWatchdogStallReportCarriesActivity(t *testing.T) {
	opt := smallOptions(t, "barnes", 16)
	opt.Obs = &obs.Options{Watchdog: 1}
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(3_000_000)
	if err == nil {
		t.Fatal("watchdog threshold 1 did not abort the run")
	}
	for _, want := range []string{"activity:", "units active", "pending wheel wakes", "wakes by edge:"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("stall error missing engine state (%q):\n%v", want, err)
		}
	}
}

// TestRunProducesPerfReport drives the full wiring: Options.Obs.Perf attaches
// the monitor, Run finishes, and the result carries a populated RunReport
// with the digest passed through.
func TestRunProducesPerfReport(t *testing.T) {
	opt := smallOptions(t, "barnes", 16)
	opt.Obs = &obs.Options{Perf: true, ConfigDigest: "0ddba11"}
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Obs.PerfReport
	if r == nil {
		t.Fatal("run with Perf on produced no report")
	}
	if r.Label != "SCORPIO/barnes" || r.ConfigDigest != "0ddba11" {
		t.Fatalf("report envelope: label %q digest %q", r.Label, r.ConfigDigest)
	}
	if r.Cycles == 0 || r.WallNs <= 0 || r.CyclesPerSec <= 0 {
		t.Fatalf("report missing run totals: %+v", r)
	}
	if len(r.PerWorker) == 0 || r.PerWorker[0].EvalNs == 0 {
		t.Fatalf("report missing per-worker time: %+v", r.PerWorker)
	}
	if r.Activity.StepsExecuted == 0 {
		t.Fatalf("report missing activity census: %+v", r.Activity)
	}
}

// TestPerfReportAccounting is the acceptance bound on the monitor itself: at
// stride 1 each participant's evaluate+commit+barrier+other time must sum to
// the measured wall clock of the run window, within tolerance, at workers 1,
// 2 and 4. Wall clock and the monitor read the same runtime clock, so the
// residue is only loop overhead outside Step plus scheduling jitter; each
// worker count gets a few attempts to ride out a noisy CI neighbour.
func TestPerfReportAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive accounting bound; skipped under -short")
	}
	for _, workers := range []int{1, 2, 4} {
		if workers > 1 {
			forceProcs(t, workers)
		}
		ok := false
		var last string
		for attempt := 0; attempt < 3 && !ok; attempt++ {
			s := warmScorpioMesh(t, 6, 6, workers)
			m := perfmon.New()
			m.Stride = 1 // exact accounting: every step timed
			s.Kernel.SetPerfMon(m)
			wall0 := time.Now()
			s.Kernel.Run(2000)
			wall := time.Since(wall0).Nanoseconds()
			r := s.Kernel.PerfReport("accounting", "", wall)
			s.Kernel.StopWorkers()
			if len(r.PerWorker) == 0 {
				t.Fatalf("workers=%d: no per-worker rows", workers)
			}
			ok = true
			for _, w := range r.PerWorker {
				total := w.EvalNs + w.CommitNs + w.SpinNs + w.ParkNs + w.OtherNs
				err := math.Abs(float64(total-wall)) / float64(wall)
				last = fmt.Sprintf("%.1f%%", 100*err)
				t.Logf("workers=%d attempt %d: worker %d accounted %dns of %dns wall (%s off)",
					workers, attempt, w.Index, total, wall, last)
				if err > 0.05 {
					ok = false
				}
			}
		}
		if !ok {
			t.Errorf("workers=%d: per-worker accounting stayed more than 5%% off wall clock (last %s)", workers, last)
		}
	}
}

// TestPerfmonOverheadGuard holds the monitor to its ≤2% cost budget at the
// default sparse stride. A wall-clock comparison inside the ordinary suite
// would be noise, so it only runs from `make perfsmoke`
// (SCORPIO_PERF_GUARD=1) and takes the minimum of several windows on each
// side.
func TestPerfmonOverheadGuard(t *testing.T) {
	if os.Getenv("SCORPIO_PERF_GUARD") == "" {
		t.Skip("overhead guard runs from `make perfsmoke` (SCORPIO_PERF_GUARD=1)")
	}
	const rounds, cycles = 5, 2000
	measure := func(attach bool) float64 {
		s := warmScorpioMesh(t, 6, 6, 1)
		defer s.Kernel.StopWorkers()
		if attach {
			s.Kernel.SetPerfMon(perfmon.New()) // default stride
			s.Kernel.Run(100)                  // settle the rebuild
		}
		best := math.MaxFloat64
		for i := 0; i < rounds; i++ {
			start := time.Now()
			s.Kernel.Run(cycles)
			if d := float64(time.Since(start).Nanoseconds()) / cycles; d < best {
				best = d
			}
		}
		return best
	}
	base := measure(false)
	instr := measure(true)
	t.Logf("per-cycle: %.0fns bare, %.0fns with perfmon (%.2f%%)", base, instr, 100*(instr-base)/base)
	// 2% relative budget plus a small absolute allowance for clock
	// granularity on very fast steps.
	if instr > base*1.02+200 {
		t.Fatalf("perfmon costs %.0fns/cycle over a %.0fns/cycle baseline (>2%%); the sampled-stride discipline broke", instr-base, base)
	}
}
