package system

import (
	"testing"

	"scorpio/internal/cache"
	"scorpio/internal/coherence"
	"scorpio/internal/directory"
	"scorpio/internal/trace"
)

func smallDirOptions(t *testing.T, v directory.Variant, bench string, nodes int) DirectoryOptions {
	t.Helper()
	prof, err := trace.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultDirectoryOptions(v, prof)
	if nodes == 16 {
		opt.Net.Width, opt.Net.Height = 4, 4
		opt.L2 = directory.L2Config{}
		opt.Home = directory.HomeConfig{}
		opt.fillDefaults()
	}
	opt.WorkPerCore = 60
	opt.WarmupPerCore = 120
	return opt
}

func runDir(t *testing.T, v directory.Variant, bench string, nodes int) Results {
	t.Helper()
	opt := smallDirOptions(t, v, bench, nodes)
	d, err := NewDirectory(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Single-owner invariant at quiescence.
	type own struct {
		owners, copies int
		hasM           bool
	}
	lines := map[uint64]*own{}
	for _, l2 := range d.L2s {
		l2.Array().ForEach(func(ln *cache.Line) {
			o := lines[ln.Addr]
			if o == nil {
				o = &own{}
				lines[ln.Addr] = o
			}
			o.copies++
			switch coherence.State(ln.State) {
			case coherence.Modified:
				o.owners++
				o.hasM = true
			case coherence.OwnedDirty:
				o.owners++
			}
		})
	}
	for addr, o := range lines {
		if o.owners > 1 {
			t.Fatalf("%s: line %#x has %d owners", v, addr, o.owners)
		}
		if o.hasM && o.copies > 1 {
			t.Fatalf("%s: line %#x Modified with %d copies", v, addr, o.copies)
		}
	}
	return res
}

func TestLPDDirectoryRunsToCompletion(t *testing.T) {
	res := runDir(t, directory.LPD, "barnes", 16)
	if res.Service.Count != 16*60 {
		t.Fatalf("measured %d accesses, want %d", res.Service.Count, 16*60)
	}
	if res.DirTransactions == 0 {
		t.Fatal("no directory transactions recorded")
	}
	t.Logf("LPD-D barnes: %d cycles, service %.1f, miss %.1f, cache-served %.0f%%, dir misses %d/%d",
		res.Cycles, res.Service.Value(), res.MissLat.Value(), 100*res.ServedByCacheFrac(),
		res.DirCacheMisses, res.DirCacheMisses+res.DirCacheHits)
}

func TestHTDirectoryRunsToCompletion(t *testing.T) {
	res := runDir(t, directory.HT, "barnes", 16)
	if res.Service.Count != 16*60 {
		t.Fatalf("measured %d accesses, want %d", res.Service.Count, 16*60)
	}
	t.Logf("HT-D barnes: %d cycles, service %.1f, miss %.1f, cache-served %.0f%%",
		res.Cycles, res.Service.Value(), res.MissLat.Value(), 100*res.ServedByCacheFrac())
}

func TestDirectoryVsScorpioMissLatency(t *testing.T) {
	// The paper's core claim (Fig 6): SCORPIO's cache-to-cache misses avoid
	// the directory indirection, so its miss latency is lower than both
	// baselines under the same workload.
	sOpt := smallOptions(t, "lu", 16)
	s, err := NewScorpio(sOpt)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := s.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	lr := runDir(t, directory.LPD, "lu", 16)
	hr := runDir(t, directory.HT, "lu", 16)
	t.Logf("miss latency: SCORPIO=%.1f LPD-D=%.1f HT-D=%.1f", sr.MissLat.Value(), lr.MissLat.Value(), hr.MissLat.Value())
	t.Logf("runtime: SCORPIO=%.0f LPD-D=%.0f HT-D=%.0f", sr.Runtime(), lr.Runtime(), hr.Runtime())
	if sr.Runtime() >= lr.Runtime() {
		t.Errorf("SCORPIO runtime %.0f should beat LPD-D %.0f", sr.Runtime(), lr.Runtime())
	}
	if sr.Runtime() >= hr.Runtime() {
		t.Errorf("SCORPIO runtime %.0f should beat HT-D %.0f", sr.Runtime(), hr.Runtime())
	}
}
