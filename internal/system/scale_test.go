package system

import (
	"reflect"
	"runtime"
	"testing"

	"scorpio/internal/directory"
	"scorpio/internal/trace"
)

// forceProcs pins GOMAXPROCS for one test so the kernel's pool picks its
// concurrent mode even on a single-CPU host (with GOMAXPROCS=1 the pool
// executes shards inline on the driver — bit-identical, but it would leave
// the barrier engine unexercised here).
func forceProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// run16x16 executes a seeded 256-tile SCORPIO machine — four times the
// paper's chip and well past the old 64-node ceilings — at the given worker
// count.
func run16x16(t *testing.T, workers int) Results {
	t.Helper()
	prof, err := trace.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(prof)
	opt.Core = opt.Core.WithMeshSize(16, 16)
	opt.WorkPerCore, opt.WarmupPerCore = 3, 5
	opt.Workers = workers
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelDeterminism16x16 is the scale version of the kernel's
// order-independence contract: a 16×16 (256-node) SCORPIO machine must
// produce bit-identical statistics serial and at 2, 4 and 8 workers. It
// doubles as the proof that a 100+-node mesh runs end to end on the snoopy
// machine (the notification network's packed vectors and the deep ESID
// machinery all scale past the former uint64 ceilings).
func TestParallelDeterminism16x16(t *testing.T) {
	if testing.Short() {
		t.Skip("four 256-node runs exceed the -short (race-gate) budget; the full test gate covers this")
	}
	forceProcs(t, 4)
	serial := run16x16(t, 0)
	if serial.Completed == 0 || serial.Service.Count == 0 {
		t.Fatalf("degenerate reference run: %+v", serial)
	}
	for _, workers := range []int{2, 4, 8} {
		if got := run16x16(t, workers); !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d diverged from serial:\nserial:   %+v\nparallel: %+v", workers, serial, got)
		}
	}
}

// TestDirectoryMachine100Nodes proves the directory ceiling is gone: a
// 10×10 (100-node) machine — impossible before the sharer bitmask became a
// multi-word bitset — runs end to end on both directory variants.
func TestDirectoryMachine100Nodes(t *testing.T) {
	for _, v := range []directory.Variant{directory.LPD, directory.HT} {
		prof, err := trace.ByName("lu")
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultDirectoryOptions(v, prof)
		opt.Net.Width, opt.Net.Height = 10, 10
		opt.L2.Nodes, opt.Home.Nodes = 0, 0 // re-derive for the larger mesh
		opt.fillDefaults()
		opt.WorkPerCore, opt.WarmupPerCore = 4, 6
		d, err := NewDirectory(opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(10_000_000)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Completed != 100*(4+6) {
			t.Fatalf("%v: completed %d requests, want %d", v, res.Completed, 100*(4+6))
		}
	}
}

// TestBaseline100Nodes runs the ordering baselines at 100 nodes, closing the
// third machine family's end-to-end scale check.
func TestBaseline100Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("100-node broadcast baselines are minutes under -race; the full test gate covers this")
	}
	for _, scheme := range []OrderingScheme{SchemeTokenB, SchemeINSO} {
		prof, err := trace.ByName("fft")
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultBaselineOptions(scheme, prof)
		opt.Net.Width, opt.Net.Height = 10, 10
		opt.WorkPerCore, opt.WarmupPerCore = 4, 6
		b, err := NewBaseline(opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run(10_000_000)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.Completed != 100*(4+6) {
			t.Fatalf("%v: completed %d requests, want %d", scheme, res.Completed, 100*(4+6))
		}
	}
}
