package system

import (
	"testing"

	"scorpio/internal/cache"
	"scorpio/internal/coherence"
	"scorpio/internal/trace"
)

// smallOptions shrinks the machine for fast tests.
func smallOptions(t *testing.T, bench string, nodes int) Options {
	t.Helper()
	prof, err := trace.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(prof)
	switch nodes {
	case 16:
		opt.Core = opt.Core.WithMeshSize(4, 4)
	case 36:
		// default
	default:
		t.Fatalf("unsupported node count %d", nodes)
	}
	opt.WorkPerCore = 60
	opt.WarmupPerCore = 120
	return opt
}

func TestScorpioRunsBenchmarkToCompletion(t *testing.T) {
	opt := smallOptions(t, "barnes", 16)
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 16*(60+120) {
		t.Fatalf("completed %d accesses, want %d", res.Completed, 16*(60+120))
	}
	if res.Service.Count != 16*60 {
		t.Fatalf("measured %d accesses, want %d (warmup must be excluded)", res.Service.Count, 16*60)
	}
	if res.Service.Count == 0 || res.Service.Value() <= 0 {
		t.Fatal("no service latency recorded")
	}
	if res.L2Misses == 0 {
		t.Fatal("workload produced no misses")
	}
	t.Logf("barnes 16-core: %d cycles, service latency %.1f, hit %.1f, miss %.1f, cache-served %.0f%%",
		res.Cycles, res.Service.Value(), res.HitLat.Value(), res.MissLat.Value(), 100*res.ServedByCacheFrac())
}

func TestScorpio36CoreChipConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("36-core run is slow")
	}
	opt := smallOptions(t, "fft", 36)
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Service.Count != 36*60 {
		t.Fatalf("measured %d, want %d", res.Service.Count, 36*60)
	}
	// The paper reports ~90% of requests served by other caches; our
	// synthetic workloads should be cache-served dominated too.
	if f := res.ServedByCacheFrac(); f < 0.3 {
		t.Fatalf("cache-served fraction %.2f is implausibly low", f)
	}
	t.Logf("fft 36-core: %d cycles, miss %.1f cy, cache-served %.0f%%, ordering %.1f cy",
		res.Cycles, res.MissLat.Value(), 100*res.ServedByCacheFrac(), res.OrderingLat.Value())
}

func TestScorpioCoherenceInvariantSingleOwner(t *testing.T) {
	opt := smallOptions(t, "lu", 16)
	opt.WorkPerCore = 120
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	// Single-writer invariant: at quiescence every line has at most one
	// owner (M or O_D) across all tiles, and an M line has no other copies.
	type ownership struct {
		owners int
		copies int
		hasM   bool
	}
	lines := map[uint64]*ownership{}
	for _, l2 := range s.L2s {
		l2.Array().ForEach(func(ln *cache.Line) {
			o := lines[ln.Addr]
			if o == nil {
				o = &ownership{}
				lines[ln.Addr] = o
			}
			o.copies++
			switch coherence.State(ln.State) {
			case coherence.Modified:
				o.owners++
				o.hasM = true
			case coherence.OwnedDirty:
				o.owners++
			}
		})
	}
	for addr, o := range lines {
		if o.owners > 1 {
			t.Fatalf("line %#x has %d owners", addr, o.owners)
		}
		if o.hasM && o.copies > 1 {
			t.Fatalf("line %#x is Modified with %d copies", addr, o.copies)
		}
	}
}

func TestScorpioDeterministicReplay(t *testing.T) {
	run := func() Results {
		opt := smallOptions(t, "fmm", 16)
		s, err := NewScorpio(opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(3_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Completed != b.Completed || a.FlitsRouted != b.FlitsRouted {
		t.Fatalf("replay diverged: cycles %d/%d completed %d/%d flits %d/%d",
			a.Cycles, b.Cycles, a.Completed, b.Completed, a.FlitsRouted, b.FlitsRouted)
	}
	if a.Service.Value() != b.Service.Value() {
		t.Fatalf("service latency diverged: %v vs %v", a.Service.Value(), b.Service.Value())
	}
}

func TestScorpioSeedSensitivity(t *testing.T) {
	run := func(seed uint64) Results {
		opt := smallOptions(t, "fmm", 16)
		opt.Seed = seed
		s, err := NewScorpio(opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(3_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(2)
	if a.Cycles == b.Cycles && a.FlitsRouted == b.FlitsRouted {
		t.Fatal("different seeds produced identical runs — seeding is broken")
	}
}
