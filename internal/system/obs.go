package system

import (
	"time"

	"scorpio/internal/noc"
	"scorpio/internal/obs"
	"scorpio/internal/obs/audit"
	"scorpio/internal/obs/perfmon"
	"scorpio/internal/obs/telemetry"
	"scorpio/internal/sim"
	"scorpio/internal/stats"
	"scorpio/internal/trace"
)

// metricsColumns is the live time-series schema shared by every machine.
// Counter columns report the delta since the previous sample (rates);
// buffered_flits, outstanding, active_units and wheel_pending are occupancy
// gauges sampled instantly. The last four columns come from the kernel's
// activity engine (see internal/obs/perfmon); fast-forward never fires under
// the sampler (an observer disables it), so its counters live in the
// RunReport only.
var metricsColumns = []string{
	"injected", "ejected", "buffered_flits",
	"flits_routed", "bypasses", "alloc_stalls",
	"notif_windows", "outstanding",
	"active_units", "parks", "wakes", "wheel_pending",
}

// counters is one machine-wide reading of the cumulative activity counters
// that back the metrics time series.
type counters struct {
	injected, ejected     uint64
	flitsRouted, bypasses uint64
	allocStalls           uint64
	notifWindows          uint64
}

// Telemetry series indices. Unlike metricsColumns (whose counter columns
// report per-sample deltas), every counter series publishes its *cumulative*
// value — OpenMetrics counters must be monotonic, and rates fall out of
// consecutive SSE ticks on the client side.
const (
	tsInjected = iota
	tsEjected
	tsFlitsRouted
	tsBypasses
	tsAllocStalls
	tsNotifWindows
	tsParks
	tsWakes
	tsActivations
	tsStepsExecuted
	tsFastForwardCycles
	tsBufferedFlits
	tsOutstanding
	tsActiveUnits
	tsWheelPending
	tsLatP50
	tsLatP99
	numTelemetrySeries
)

// telemetrySeries is the live-export schema shared by every machine; index
// i describes row[i] as filled by the observer's telemetry tick.
var telemetrySeries = []telemetry.Series{
	tsInjected:          {Name: "injected", Kind: telemetry.Counter, Help: "Packets injected into the network (requests + responses)."},
	tsEjected:           {Name: "ejected", Kind: telemetry.Counter, Help: "Packets delivered to their destination agents."},
	tsFlitsRouted:       {Name: "flits_routed", Kind: telemetry.Counter, Help: "Flits traversing router crossbars."},
	tsBypasses:          {Name: "bypasses", Kind: telemetry.Counter, Help: "Single-cycle router bypasses taken."},
	tsAllocStalls:       {Name: "alloc_stalls", Kind: telemetry.Counter, Help: "Switch-allocation stalls (flit lost arbitration or lacked credits)."},
	tsNotifWindows:      {Name: "notif_windows", Kind: telemetry.Counter, Help: "Notification-network windows delivered (SCORPIO only)."},
	tsParks:             {Name: "parks", Kind: telemetry.Counter, Help: "Scheduling units demoted off the every-cycle schedule."},
	tsWakes:             {Name: "wakes", Kind: telemetry.Counter, Help: "Successful parked-unit wake requests (all edges)."},
	tsActivations:       {Name: "activations", Kind: telemetry.Counter, Help: "Parked units returned to the schedule."},
	tsStepsExecuted:     {Name: "steps_executed", Kind: telemetry.Counter, Help: "Kernel cycles actually stepped (fast-forwarded cycles are skipped)."},
	tsFastForwardCycles: {Name: "fast_forward_cycles", Kind: telemetry.Counter, Help: "Cycles skipped over fully-quiescent spans (0 while an observer is attached)."},
	tsBufferedFlits:     {Name: "buffered_flits", Kind: telemetry.Gauge, Help: "Flits currently buffered in router VCs."},
	tsOutstanding:       {Name: "outstanding", Kind: telemetry.Gauge, Help: "Outstanding L2 misses across all cores."},
	tsActiveUnits:       {Name: "active_units", Kind: telemetry.Gauge, Help: "Scheduling units on the every-cycle schedule."},
	tsWheelPending:      {Name: "wheel_pending", Kind: telemetry.Gauge, Help: "Filed timing-wheel wake entries."},
	tsLatP50:            {Name: "lat_p50", Kind: telemetry.Gauge, Help: "p50 L2 service latency in cycles over the run so far."},
	tsLatP99:            {Name: "lat_p99", Kind: telemetry.Gauge, Help: "p99 L2 service latency in cycles over the run so far."},
}

// machineInfo carries the per-machine identity and read hooks the telemetry
// exporter needs beyond the shared counter closures.
type machineInfo struct {
	// label names the run ("SCORPIO/fft", "LPD-D/lu", "INSO/barnes").
	label string
	// mesh is the machine's main network (heatmap dimensions and per-router
	// utilization); nil disables the heat grid.
	mesh *noc.Mesh
	// latency reports the current p50/p99 service latency in cycles.
	// Driver-side only (called from the kernel observer between cycles).
	latency func() (p50, p99 float64)
}

// latencyFromInjectors builds a driver-side live-percentile reader over a
// machine's trace injectors. get is evaluated lazily on every call because
// injectors attach after the observability bundle is built; the scratch
// histogram is reused so sampling stays allocation-free after the first tick.
func latencyFromInjectors(get func() []*trace.Injector) func() (p50, p99 float64) {
	var scratch *stats.Histogram
	return func() (float64, float64) {
		injs := get()
		if len(injs) == 0 || injs[0].ServiceHist == nil {
			return 0, 0
		}
		if scratch == nil {
			h := injs[0].ServiceHist
			scratch = stats.NewHistogram(h.BucketWidth, len(h.Buckets))
		}
		scratch.Reset()
		for _, in := range injs {
			scratch.Merge(in.ServiceHist)
		}
		return float64(scratch.Percentile(50)), float64(scratch.Percentile(99))
	}
}

// Observability bundles one run's enabled observability features: the
// lifecycle tracer (threaded through routers, NICs, notification network and
// coherence controllers), the periodic metrics sampler, the forward-progress
// watchdog, the online ordering/coherence auditor and the per-transaction
// latency attributor. A nil *Observability means everything is off.
type Observability struct {
	Tracer   *obs.Tracer
	Metrics  *obs.Metrics
	Watchdog *obs.Watchdog
	Auditor  *audit.Auditor
	Attrib   *obs.Attribution
	// Perf is the engine self-observability monitor attached to the kernel;
	// PerfReport is its drained RunReport, filled in when the run finishes.
	Perf       *perfmon.Mon
	PerfReport *perfmon.Report
	// Telemetry is the live HTTP exporter, already listening; the facade
	// closes it when the run's results have been collected.
	Telemetry *telemetry.Server

	configDigest string
	// perfWanted records whether the caller asked for a RunReport. Telemetry
	// attaches a perf monitor on its own (for /metrics worker counters), but
	// only an explicit Perf option should make Result.Obs.PerfReport non-nil.
	perfWanted bool
}

// Stalled reports whether the watchdog detected a stall. Safe on nil.
func (o *Observability) Stalled() bool { return o != nil && o.Watchdog.Stalled() }

// StallReport returns the watchdog's diagnosis ("" when healthy).
func (o *Observability) StallReport() string {
	if o == nil {
		return ""
	}
	return o.Watchdog.Report()
}

// Violated reports whether the auditor latched a violation. Safe on nil.
func (o *Observability) Violated() bool { return o != nil && o.Auditor.Violated() }

// AuditReport returns the auditor's violation report ("" when clean).
func (o *Observability) AuditReport() string {
	if o == nil {
		return ""
	}
	return o.Auditor.Report()
}

// CloseTelemetry shuts down the telemetry HTTP server (disconnecting any
// /stream clients) and releases its port. Safe on nil and when telemetry was
// never enabled; safe to call more than once.
func (o *Observability) CloseTelemetry() {
	if o != nil {
		_ = o.Telemetry.Close()
	}
}

// buildObs assembles the bundle for one machine and installs it as the
// kernel's post-commit observer. Returns nil (and installs nothing) when
// opt enables no feature, keeping the disabled per-step cost at the
// kernel's single observer nil-check.
//
//   - nodes is the machine's node count (auditor shadow-state sizing).
//   - info names the run and exposes the mesh and live-latency hooks the
//     telemetry exporter publishes.
//   - read fills one counters reading from the machine's cumulative stats.
//   - occupancy returns (buffered flits in routers, outstanding misses).
//   - inflight reports whether undelivered packets exist anywhere (router
//     buffers or NIC/endpoint queues).
//   - snapshot renders the full network state at a cycle.
//
// The only error source is the telemetry exporter failing to bind its listen
// address.
func buildObs(opt *obs.Options, k *sim.Kernel, nodes int,
	info machineInfo,
	read func(*counters),
	occupancy func() (buffered, outstanding int),
	inflight func() bool,
	snapshot func(now uint64) string) (*Observability, error) {

	if opt == nil || !opt.Enabled() {
		return nil, nil
	}
	o := &Observability{configDigest: opt.ConfigDigest, perfWanted: opt.Perf}
	if opt.Perf || opt.TelemetryAddr != "" {
		// Telemetry wants the per-worker counters on /metrics even when no
		// RunReport was asked for; perfWanted keeps the report gated.
		o.Perf = perfmon.New()
		k.SetPerfMon(o.Perf)
	}
	if opt.Trace {
		o.Tracer = obs.NewTracer(opt.TraceCapacity)
	}
	if opt.MetricsInterval > 0 {
		o.Metrics = obs.NewMetrics(opt.MetricsInterval, metricsColumns)
	}
	// Hang reports carry the activity engine's census alongside the network
	// snapshot, so a wedged-while-parked unit names its missing wake edge.
	snap := func(now uint64) string {
		return snapshot(now) + k.ActivityReport()
	}
	if opt.Audit {
		o.Auditor = audit.New(nodes, audit.Options{SweepEvery: opt.AuditEvery}, func() string {
			return snap(k.Cycle())
		})
		o.Attrib = obs.NewAttribution()
	}
	if opt.Watchdog > 0 {
		progress := func() (uint64, bool) {
			var c counters
			read(&c)
			return c.ejected, inflight()
		}
		o.Watchdog = obs.NewWatchdog(opt.Watchdog, progress, func() string {
			return snap(k.Cycle())
		})
	}
	// The telemetry exporter: a lock-free published page the observer fills
	// at its own interval, plus the HTTP server reading it. Built before the
	// observer closure so the closure can capture the publisher.
	var pub *telemetry.Publisher
	var fillTel func(cycle uint64, row []float64)
	if opt.TelemetryAddr != "" {
		heatW, heatH := 0, 0
		if info.mesh != nil {
			cfg := info.mesh.Config()
			heatW, heatH = cfg.Width, cfg.Height
		}
		pub = telemetry.NewPublisher(telemetrySeries, opt.TelemetryInterval,
			heatW, heatH, opt.TelemetrySSEQueue)
		fillTel = func(cycle uint64, row []float64) {
			var c counters
			read(&c)
			buffered, outstanding := occupancy()
			act := k.ActivityCounters()
			activeUnits, _ := k.ActiveUnits()
			row[tsInjected] = float64(c.injected)
			row[tsEjected] = float64(c.ejected)
			row[tsFlitsRouted] = float64(c.flitsRouted)
			row[tsBypasses] = float64(c.bypasses)
			row[tsAllocStalls] = float64(c.allocStalls)
			row[tsNotifWindows] = float64(c.notifWindows)
			row[tsParks] = float64(act.Parks)
			row[tsWakes] = float64(act.TotalWakes())
			row[tsActivations] = float64(act.Activations)
			row[tsStepsExecuted] = float64(act.StepsExecuted)
			row[tsFastForwardCycles] = float64(act.FastForwardCycles)
			row[tsBufferedFlits] = float64(buffered)
			row[tsOutstanding] = float64(outstanding)
			row[tsActiveUnits] = float64(activeUnits)
			row[tsWheelPending] = float64(act.WheelPending)
			if info.latency != nil {
				row[tsLatP50], row[tsLatP99] = info.latency()
			}
		}
		pub.SetDeep(func(cycle uint64) *telemetry.DeepSnapshot {
			row := make([]float64, numTelemetrySeries)
			fillTel(cycle, row)
			d := &telemetry.DeepSnapshot{
				Cycle:    cycle,
				WallNs:   time.Now().UnixNano(),
				Label:    info.label,
				Vals:     make(map[string]float64, numTelemetrySeries),
				Network:  snapshot(cycle),
				Activity: k.ActivityReport(),
			}
			for i, s := range telemetrySeries {
				d.Vals[s.Name] = row[i]
			}
			if info.mesh != nil && cycle > 0 {
				cfg := info.mesh.Config()
				util := make([]float64, cfg.Nodes())
				for node := range util {
					util[node] = float64(info.mesh.Router(node).Stats.FlitsRouted) / float64(cycle)
				}
				d.Heat = &telemetry.HeatGrid{Width: cfg.Width, Height: cfg.Height, Util: util}
			}
			if o.Perf != nil {
				d.Perf = k.PerfReport(info.label, o.configDigest, 0)
			}
			return d
		})
		srv := telemetry.NewServer(pub, telemetry.Options{
			Label:     info.label,
			Mon:       o.Perf,
			WakeEdges: k.WakeEdges,
			Balance:   k.BalanceStats,
			Workers:   k.Workers,
		})
		if err := srv.Serve(opt.TelemetryAddr); err != nil {
			return nil, err
		}
		o.Telemetry = srv
	}

	if o.Metrics == nil && o.Watchdog == nil && o.Auditor == nil && pub == nil {
		// Trace-only and perf-only runs need no per-cycle observer — the
		// tracer's hooks live in the components and perfmon's in the kernel —
		// so fast-forward over quiescent spans stays available to them.
		return o, nil
	}
	var prev counters
	var prevAct perfmon.ActivityCounters
	row := make([]float64, len(metricsColumns))
	telRow := make([]float64, numTelemetrySeries)
	var heatBuf []float64
	var prevFlits []uint64
	var prevHeatCycle uint64
	if pub != nil && info.mesh != nil {
		n := info.mesh.Config().Nodes()
		heatBuf = make([]float64, n)
		prevFlits = make([]uint64, n)
	}
	k.SetObserver(func(cycle uint64) {
		o.Watchdog.Observe(cycle)
		o.Auditor.Observe(cycle)
		pub.ServeDeep(cycle)
		if o.Metrics.Due(cycle) {
			var c counters
			read(&c)
			buffered, outstanding := occupancy()
			act := k.ActivityCounters()
			activeUnits, _ := k.ActiveUnits()
			row[0] = float64(c.injected - prev.injected)
			row[1] = float64(c.ejected - prev.ejected)
			row[2] = float64(buffered)
			row[3] = float64(c.flitsRouted - prev.flitsRouted)
			row[4] = float64(c.bypasses - prev.bypasses)
			row[5] = float64(c.allocStalls - prev.allocStalls)
			row[6] = float64(c.notifWindows - prev.notifWindows)
			row[7] = float64(outstanding)
			row[8] = float64(activeUnits)
			row[9] = float64(act.Parks - prevAct.Parks)
			row[10] = float64(act.TotalWakes() - prevAct.TotalWakes())
			row[11] = float64(act.WheelPending)
			o.Metrics.Add(cycle, row)
			prev = c
			prevAct = act
		}
		if pub.Due(cycle) {
			fillTel(cycle, telRow)
			heat := heatBuf
			if heatBuf != nil && cycle > prevHeatCycle {
				// Per-router utilization over the last sample window, not the
				// cumulative average — a live dashboard wants to see hotspots
				// move.
				span := float64(cycle - prevHeatCycle)
				for node := range heatBuf {
					f := info.mesh.Router(node).Stats.FlitsRouted
					heatBuf[node] = float64(f-prevFlits[node]) / span
					prevFlits[node] = f
				}
				prevHeatCycle = cycle
			} else {
				heat = nil // first tick: no window yet
			}
			pub.Publish(cycle, telRow, heat)
		}
	})
	return o, nil
}

// finishPerf drains the perf monitor into the run's RunReport. label names
// the run ("SCORPIO/fft"); wallNs is the caller-measured wall time of the
// run span the report covers. No-op without a monitor, and without an
// explicit Perf request (a telemetry-only monitor stays off the Result).
func (o *Observability) finishPerf(k *sim.Kernel, label string, wallNs int64) {
	if o == nil || o.Perf == nil || !o.perfWanted {
		return
	}
	o.PerfReport = k.PerfReport(label, o.configDigest, wallNs)
}

// finishHeatmap attaches the end-of-run per-router utilization grid
// (crossbar traversals per cycle) to the metrics store.
func (o *Observability) finishHeatmap(mesh *noc.Mesh, cycles uint64) {
	if o == nil || o.Metrics == nil || cycles == 0 {
		return
	}
	cfg := mesh.Config()
	util := make([]float64, cfg.Nodes())
	for node := 0; node < cfg.Nodes(); node++ {
		util[node] = float64(mesh.Router(node).Stats.FlitsRouted) / float64(cycles)
	}
	o.Metrics.SetHeatmap(cfg.Width, cfg.Height, util)
}
