package system

import (
	"scorpio/internal/noc"
	"scorpio/internal/obs"
	"scorpio/internal/obs/audit"
	"scorpio/internal/obs/perfmon"
	"scorpio/internal/sim"
)

// metricsColumns is the live time-series schema shared by every machine.
// Counter columns report the delta since the previous sample (rates);
// buffered_flits, outstanding, active_units and wheel_pending are occupancy
// gauges sampled instantly. The last four columns come from the kernel's
// activity engine (see internal/obs/perfmon); fast-forward never fires under
// the sampler (an observer disables it), so its counters live in the
// RunReport only.
var metricsColumns = []string{
	"injected", "ejected", "buffered_flits",
	"flits_routed", "bypasses", "alloc_stalls",
	"notif_windows", "outstanding",
	"active_units", "parks", "wakes", "wheel_pending",
}

// counters is one machine-wide reading of the cumulative activity counters
// that back the metrics time series.
type counters struct {
	injected, ejected     uint64
	flitsRouted, bypasses uint64
	allocStalls           uint64
	notifWindows          uint64
}

// Observability bundles one run's enabled observability features: the
// lifecycle tracer (threaded through routers, NICs, notification network and
// coherence controllers), the periodic metrics sampler, the forward-progress
// watchdog, the online ordering/coherence auditor and the per-transaction
// latency attributor. A nil *Observability means everything is off.
type Observability struct {
	Tracer   *obs.Tracer
	Metrics  *obs.Metrics
	Watchdog *obs.Watchdog
	Auditor  *audit.Auditor
	Attrib   *obs.Attribution
	// Perf is the engine self-observability monitor attached to the kernel;
	// PerfReport is its drained RunReport, filled in when the run finishes.
	Perf       *perfmon.Mon
	PerfReport *perfmon.Report

	configDigest string
}

// Stalled reports whether the watchdog detected a stall. Safe on nil.
func (o *Observability) Stalled() bool { return o != nil && o.Watchdog.Stalled() }

// StallReport returns the watchdog's diagnosis ("" when healthy).
func (o *Observability) StallReport() string {
	if o == nil {
		return ""
	}
	return o.Watchdog.Report()
}

// Violated reports whether the auditor latched a violation. Safe on nil.
func (o *Observability) Violated() bool { return o != nil && o.Auditor.Violated() }

// AuditReport returns the auditor's violation report ("" when clean).
func (o *Observability) AuditReport() string {
	if o == nil {
		return ""
	}
	return o.Auditor.Report()
}

// buildObs assembles the bundle for one machine and installs it as the
// kernel's post-commit observer. Returns nil (and installs nothing) when
// opt enables no feature, keeping the disabled per-step cost at the
// kernel's single observer nil-check.
//
//   - nodes is the machine's node count (auditor shadow-state sizing).
//   - read fills one counters reading from the machine's cumulative stats.
//   - occupancy returns (buffered flits in routers, outstanding misses).
//   - inflight reports whether undelivered packets exist anywhere (router
//     buffers or NIC/endpoint queues).
//   - snapshot renders the full network state at a cycle.
func buildObs(opt *obs.Options, k *sim.Kernel, nodes int,
	read func(*counters),
	occupancy func() (buffered, outstanding int),
	inflight func() bool,
	snapshot func(now uint64) string) *Observability {

	if opt == nil || !opt.Enabled() {
		return nil
	}
	o := &Observability{configDigest: opt.ConfigDigest}
	if opt.Perf {
		o.Perf = perfmon.New()
		k.SetPerfMon(o.Perf)
	}
	if opt.Trace {
		o.Tracer = obs.NewTracer(opt.TraceCapacity)
	}
	if opt.MetricsInterval > 0 {
		o.Metrics = obs.NewMetrics(opt.MetricsInterval, metricsColumns)
	}
	// Hang reports carry the activity engine's census alongside the network
	// snapshot, so a wedged-while-parked unit names its missing wake edge.
	snap := func(now uint64) string {
		return snapshot(now) + k.ActivityReport()
	}
	if opt.Audit {
		o.Auditor = audit.New(nodes, audit.Options{SweepEvery: opt.AuditEvery}, func() string {
			return snap(k.Cycle())
		})
		o.Attrib = obs.NewAttribution()
	}
	if opt.Watchdog > 0 {
		progress := func() (uint64, bool) {
			var c counters
			read(&c)
			return c.ejected, inflight()
		}
		o.Watchdog = obs.NewWatchdog(opt.Watchdog, progress, func() string {
			return snap(k.Cycle())
		})
	}
	if o.Metrics == nil && o.Watchdog == nil && o.Auditor == nil {
		// Trace-only and perf-only runs need no per-cycle observer — the
		// tracer's hooks live in the components and perfmon's in the kernel —
		// so fast-forward over quiescent spans stays available to them.
		return o
	}
	var prev counters
	var prevAct perfmon.ActivityCounters
	row := make([]float64, len(metricsColumns))
	k.SetObserver(func(cycle uint64) {
		o.Watchdog.Observe(cycle)
		o.Auditor.Observe(cycle)
		if o.Metrics.Due(cycle) {
			var c counters
			read(&c)
			buffered, outstanding := occupancy()
			act := k.ActivityCounters()
			activeUnits, _ := k.ActiveUnits()
			row[0] = float64(c.injected - prev.injected)
			row[1] = float64(c.ejected - prev.ejected)
			row[2] = float64(buffered)
			row[3] = float64(c.flitsRouted - prev.flitsRouted)
			row[4] = float64(c.bypasses - prev.bypasses)
			row[5] = float64(c.allocStalls - prev.allocStalls)
			row[6] = float64(c.notifWindows - prev.notifWindows)
			row[7] = float64(outstanding)
			row[8] = float64(activeUnits)
			row[9] = float64(act.Parks - prevAct.Parks)
			row[10] = float64(act.TotalWakes() - prevAct.TotalWakes())
			row[11] = float64(act.WheelPending)
			o.Metrics.Add(cycle, row)
			prev = c
			prevAct = act
		}
	})
	return o
}

// finishPerf drains the perf monitor into the run's RunReport. label names
// the run ("SCORPIO/fft"); wallNs is the caller-measured wall time of the
// run span the report covers. No-op without a monitor.
func (o *Observability) finishPerf(k *sim.Kernel, label string, wallNs int64) {
	if o == nil || o.Perf == nil {
		return
	}
	o.PerfReport = k.PerfReport(label, o.configDigest, wallNs)
}

// finishHeatmap attaches the end-of-run per-router utilization grid
// (crossbar traversals per cycle) to the metrics store.
func (o *Observability) finishHeatmap(mesh *noc.Mesh, cycles uint64) {
	if o == nil || o.Metrics == nil || cycles == 0 {
		return
	}
	cfg := mesh.Config()
	util := make([]float64, cfg.Nodes())
	for node := 0; node < cfg.Nodes(); node++ {
		util[node] = float64(mesh.Router(node).Stats.FlitsRouted) / float64(cycles)
	}
	o.Metrics.SetHeatmap(cfg.Width, cfg.Height, util)
}
