package system

import (
	"scorpio/internal/noc"
	"scorpio/internal/obs"
	"scorpio/internal/obs/audit"
	"scorpio/internal/sim"
)

// metricsColumns is the live time-series schema shared by every machine.
// Counter columns report the delta since the previous sample (rates);
// buffered_flits and outstanding are occupancy gauges sampled instantly.
var metricsColumns = []string{
	"injected", "ejected", "buffered_flits",
	"flits_routed", "bypasses", "alloc_stalls",
	"notif_windows", "outstanding",
}

// counters is one machine-wide reading of the cumulative activity counters
// that back the metrics time series.
type counters struct {
	injected, ejected     uint64
	flitsRouted, bypasses uint64
	allocStalls           uint64
	notifWindows          uint64
}

// Observability bundles one run's enabled observability features: the
// lifecycle tracer (threaded through routers, NICs, notification network and
// coherence controllers), the periodic metrics sampler, the forward-progress
// watchdog, the online ordering/coherence auditor and the per-transaction
// latency attributor. A nil *Observability means everything is off.
type Observability struct {
	Tracer   *obs.Tracer
	Metrics  *obs.Metrics
	Watchdog *obs.Watchdog
	Auditor  *audit.Auditor
	Attrib   *obs.Attribution
}

// Stalled reports whether the watchdog detected a stall. Safe on nil.
func (o *Observability) Stalled() bool { return o != nil && o.Watchdog.Stalled() }

// StallReport returns the watchdog's diagnosis ("" when healthy).
func (o *Observability) StallReport() string {
	if o == nil {
		return ""
	}
	return o.Watchdog.Report()
}

// Violated reports whether the auditor latched a violation. Safe on nil.
func (o *Observability) Violated() bool { return o != nil && o.Auditor.Violated() }

// AuditReport returns the auditor's violation report ("" when clean).
func (o *Observability) AuditReport() string {
	if o == nil {
		return ""
	}
	return o.Auditor.Report()
}

// buildObs assembles the bundle for one machine and installs it as the
// kernel's post-commit observer. Returns nil (and installs nothing) when
// opt enables no feature, keeping the disabled per-step cost at the
// kernel's single observer nil-check.
//
//   - nodes is the machine's node count (auditor shadow-state sizing).
//   - read fills one counters reading from the machine's cumulative stats.
//   - occupancy returns (buffered flits in routers, outstanding misses).
//   - inflight reports whether undelivered packets exist anywhere (router
//     buffers or NIC/endpoint queues).
//   - snapshot renders the full network state at a cycle.
func buildObs(opt *obs.Options, k *sim.Kernel, nodes int,
	read func(*counters),
	occupancy func() (buffered, outstanding int),
	inflight func() bool,
	snapshot func(now uint64) string) *Observability {

	if opt == nil || !opt.Enabled() {
		return nil
	}
	o := &Observability{}
	if opt.Trace {
		o.Tracer = obs.NewTracer(opt.TraceCapacity)
	}
	if opt.MetricsInterval > 0 {
		o.Metrics = obs.NewMetrics(opt.MetricsInterval, metricsColumns)
	}
	if opt.Audit {
		o.Auditor = audit.New(nodes, audit.Options{SweepEvery: opt.AuditEvery}, func() string {
			return snapshot(k.Cycle())
		})
		o.Attrib = obs.NewAttribution()
	}
	if opt.Watchdog > 0 {
		progress := func() (uint64, bool) {
			var c counters
			read(&c)
			return c.ejected, inflight()
		}
		o.Watchdog = obs.NewWatchdog(opt.Watchdog, progress, func() string {
			return snapshot(k.Cycle())
		})
	}
	var prev counters
	row := make([]float64, len(metricsColumns))
	k.SetObserver(func(cycle uint64) {
		o.Watchdog.Observe(cycle)
		o.Auditor.Observe(cycle)
		if o.Metrics.Due(cycle) {
			var c counters
			read(&c)
			buffered, outstanding := occupancy()
			row[0] = float64(c.injected - prev.injected)
			row[1] = float64(c.ejected - prev.ejected)
			row[2] = float64(buffered)
			row[3] = float64(c.flitsRouted - prev.flitsRouted)
			row[4] = float64(c.bypasses - prev.bypasses)
			row[5] = float64(c.allocStalls - prev.allocStalls)
			row[6] = float64(c.notifWindows - prev.notifWindows)
			row[7] = float64(outstanding)
			o.Metrics.Add(cycle, row)
			prev = c
		}
	})
	return o
}

// finishHeatmap attaches the end-of-run per-router utilization grid
// (crossbar traversals per cycle) to the metrics store.
func (o *Observability) finishHeatmap(mesh *noc.Mesh, cycles uint64) {
	if o == nil || o.Metrics == nil || cycles == 0 {
		return
	}
	cfg := mesh.Config()
	util := make([]float64, cfg.Nodes())
	for node := 0; node < cfg.Nodes(); node++ {
		util[node] = float64(mesh.Router(node).Stats.FlitsRouted) / float64(cycles)
	}
	o.Metrics.SetHeatmap(cfg.Width, cfg.Height, util)
}
