package system

import (
	"reflect"
	"testing"

	"scorpio/internal/directory"
	"scorpio/internal/trace"
)

// parallelRun executes a seeded 16-tile SCORPIO run at the given worker count
// and returns the full Results snapshot.
func parallelRun(t *testing.T, workers int) Results {
	t.Helper()
	prof, err := trace.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(prof)
	opt.Core = opt.Core.WithMeshSize(4, 4)
	opt.WorkPerCore, opt.WarmupPerCore = 80, 120
	opt.Workers = workers
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelDeterminism is the kernel's order-independence contract,
// enforced end to end: the same seeded machine must produce bit-identical
// statistics on the serial path and at 1, 2 and 8 workers. Run under -race
// this also proves the sharded evaluate/commit phases are data-race free.
func TestParallelDeterminism(t *testing.T) {
	forceProcs(t, 4)
	serial := parallelRun(t, 0)
	if serial.Completed == 0 || serial.Service.Count == 0 {
		t.Fatalf("degenerate reference run: %+v", serial)
	}
	for _, workers := range []int{1, 2, 8} {
		got := parallelRun(t, workers)
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d diverged from serial:\nserial:   %+v\nparallel: %+v", workers, serial, got)
		}
	}
}

// TestParallelDeterminismDirectory covers the directory machine's sharding
// (one unit per node: injector, L2, home slice, NIC).
func TestParallelDeterminismDirectory(t *testing.T) {
	forceProcs(t, 4)
	run := func(workers int) Results {
		prof, err := trace.ByName("lu")
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultDirectoryOptions(directory.LPD, prof)
		opt.Net.Width, opt.Net.Height = 4, 4
		opt.L2.Nodes, opt.Home.Nodes = 0, 0 // re-derive for the smaller mesh
		opt.fillDefaults()
		opt.WorkPerCore, opt.WarmupPerCore = 60, 100
		opt.Workers = workers
		d, err := NewDirectory(opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(0)
	if serial.Completed == 0 {
		t.Fatalf("degenerate reference run: %+v", serial)
	}
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d diverged from serial:\nserial:   %+v\nparallel: %+v", workers, serial, got)
		}
	}
}

// TestParallelDeterminismWithL1 exercises the tile layer (AHB + split L1s) in
// the node scheduling unit.
func TestParallelDeterminismWithL1(t *testing.T) {
	forceProcs(t, 4)
	run := func(workers int) Results {
		prof, err := trace.ByName("barnes")
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions(prof)
		opt.Core = opt.Core.WithMeshSize(4, 4)
		opt.WorkPerCore, opt.WarmupPerCore = 60, 100
		opt.UseL1 = true
		opt.Workers = workers
		s, err := NewScorpio(opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(0)
	if got := run(4); !reflect.DeepEqual(serial, got) {
		t.Errorf("workers=4 with L1 tiles diverged from serial:\nserial:   %+v\nparallel: %+v", serial, got)
	}
}
