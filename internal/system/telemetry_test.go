package system

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"scorpio/internal/obs"
	"scorpio/internal/trace"
)

// TestTelemetryEndToEnd drives the whole live-export path against a real
// SCORPIO machine: the exporter binds an ephemeral port at construction, a
// dashboard-style client attaches to /stream before the run starts, and the
// run publishes sample ticks the client decodes while /metrics, /snapshot and
// /healthz answer concurrently. Closing releases the port.
func TestTelemetryEndToEnd(t *testing.T) {
	opt := smallOptions(t, "barnes", 16)
	opt.Obs = &obs.Options{TelemetryAddr: "127.0.0.1:0", TelemetryInterval: 64}
	s, err := NewScorpio(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Obs.CloseTelemetry()
	if s.Obs == nil || s.Obs.Telemetry == nil {
		t.Fatal("telemetry options enabled nothing")
	}
	addr := s.Obs.Telemetry.Addr()
	if addr == "" {
		t.Fatal("exporter not listening after NewScorpio")
	}
	base := "http://" + addr

	// The exporter answers before the first cycle: a dashboard can attach
	// early and wait for the run.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz before run: %s", resp.Status)
	}

	stream, err := http.Get(base + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()

	runDone := make(chan error, 1)
	go func() {
		res, err := s.Run(3_000_000)
		if err == nil && res.Completed != 16*(60+120) {
			t.Errorf("completed %d accesses, want %d", res.Completed, 16*(60+120))
		}
		runDone <- err
	}()

	// One decoded SSE tick proves the observer publishes and the hub
	// delivers. The scan runs on this goroutine; the sim runs on its own.
	type frame struct {
		Cycle  uint64             `json:"cycle"`
		Tick   uint64             `json:"tick"`
		Series map[string]float64 `json:"series"`
	}
	var got frame
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(line[len("data: "):]), &got); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		if got.Tick > 0 {
			break
		}
	}
	if got.Tick == 0 {
		t.Fatalf("stream delivered no tick before the run finished: %v", sc.Err())
	}
	for _, key := range []string{"injected", "active_units", "steps_executed", "lat_p50"} {
		if _, ok := got.Series[key]; !ok {
			t.Fatalf("SSE frame lacks series %q (has %v)", key, got.Series)
		}
	}

	// /snapshot while the run may still be stepping: either the deep door is
	// fulfilled by the driver or the handler degrades to the page — both are
	// valid JSON carrying the published series.
	resp, err = http.Get(base + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Cycle  uint64             `json:"cycle"`
		Series map[string]float64 `json:"series"`
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("bad /snapshot JSON: %v", err)
	}
	if len(snap.Series) == 0 {
		t.Fatal("/snapshot carries no series")
	}

	if err := <-runDone; err != nil {
		t.Fatal(err)
	}

	// Post-run /metrics: the full exposition with final cumulative counters.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("/metrics content type %q", ct)
	}
	var body strings.Builder
	sc = bufio.NewScanner(resp.Body)
	var ticks, ejected float64
	sawHeat := false
	for sc.Scan() {
		line := sc.Text()
		body.WriteString(line)
		body.WriteByte('\n')
		if strings.HasPrefix(line, "scorpio_sample_ticks_total ") {
			ticks = parseValue(t, line)
		}
		if strings.HasPrefix(line, "scorpio_ejected_total ") {
			ejected = parseValue(t, line)
		}
		if strings.HasPrefix(line, "scorpio_router_utilization{") {
			sawHeat = true
		}
	}
	resp.Body.Close()
	if !strings.HasSuffix(strings.TrimRight(body.String(), "\n"), "# EOF") {
		t.Fatal("/metrics exposition not terminated by # EOF")
	}
	if ticks == 0 {
		t.Fatal("no sample ticks were published during the run")
	}
	if ejected == 0 {
		t.Fatal("scorpio_ejected_total stayed 0 over a full benchmark run")
	}
	if !sawHeat {
		t.Fatal("no router-utilization samples in /metrics")
	}
	if !strings.Contains(body.String(), `scorpio_run{label="SCORPIO/barnes"}`) {
		t.Fatal("/metrics run label missing or wrong")
	}
	if !strings.Contains(body.String(), `scorpio_worker_eval_ns_total{worker="0"}`) {
		t.Fatal("/metrics lacks the per-worker perf counters")
	}

	// The telemetry-attached monitor must not leak a PerfReport into the
	// results: only an explicit Perf request does that.
	if s.Obs.PerfReport != nil {
		t.Fatal("telemetry-only run produced a PerfReport")
	}

	// Close releases the port: connections are refused afterwards.
	s.Obs.CloseTelemetry()
	waitRefused(t, base)
}

func parseValue(t *testing.T, line string) float64 {
	t.Helper()
	fields := strings.Fields(line)
	v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	return v
}

func waitRefused(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return // refused: the port is released
		}
		resp.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("exporter still answering after CloseTelemetry")
}

// TestTelemetryOverheadGuard holds the no-client exporter to the same ≤2%
// budget as the perf monitor: with telemetry attached (publisher sampling,
// deep-snapshot door armed, HTTP server listening) but nobody connected, a
// warm mesh must step at effectively the bare machine's speed. Wall-clock
// noise keeps it out of the ordinary suite — it runs from
// `make telemetrysmoke` (SCORPIO_TELEMETRY_GUARD=1).
func TestTelemetryOverheadGuard(t *testing.T) {
	if os.Getenv("SCORPIO_TELEMETRY_GUARD") == "" {
		t.Skip("overhead guard runs from `make telemetrysmoke` (SCORPIO_TELEMETRY_GUARD=1)")
	}
	const rounds, cycles = 12, 2000
	build := func(attach bool) *Scorpio {
		prof, err := trace.ByName("fft")
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions(prof)
		opt.Core = opt.Core.WithMeshSize(6, 6)
		opt.WorkPerCore = 1 << 40 // never drains: the machine stays loaded
		opt.Workers = 1
		if attach {
			opt.Obs = &obs.Options{TelemetryAddr: "127.0.0.1:0"} // default interval
		}
		s, err := NewScorpio(opt)
		if err != nil {
			t.Fatal(err)
		}
		s.Kernel.Run(600) // free lists, VC rings and the phase pool settle
		return s
	}
	bare := build(false)
	defer bare.Kernel.StopWorkers()
	withTel := build(true)
	defer withTel.Kernel.StopWorkers()
	defer withTel.Obs.CloseTelemetry()
	// Shared hosts drift by more than the budget over fractions of a second,
	// so a best-of on each side still compares different noise environments.
	// Instead measure in back-to-back pairs, alternating which machine goes
	// first, and take the median of the per-pair deltas: drift hits both
	// halves of a pair, alternation cancels any second-slot bias, and the
	// median sheds the outlier pairs a descheduling spike lands in. A whole
	// attempt can still be poisoned by a sustained load burst, so (like the
	// accounting test above it in perfsmoke) the guard retries a few times
	// and passes on the first clean attempt — a real regression fails all of
	// them.
	window := func(s *Scorpio) float64 {
		start := time.Now()
		s.Kernel.Run(cycles)
		return float64(time.Since(start).Nanoseconds()) / cycles
	}
	deltas := make([]float64, rounds)
	var base, delta float64
	for attempt := 1; ; attempt++ {
		base = math.MaxFloat64
		for i := range deltas {
			var b, w float64
			if i%2 == 0 {
				b = window(bare)
				w = window(withTel)
			} else {
				w = window(withTel)
				b = window(bare)
			}
			deltas[i] = w - b
			if b < base {
				base = b
			}
		}
		sort.Float64s(deltas)
		delta = (deltas[rounds/2-1] + deltas[rounds/2]) / 2
		t.Logf("attempt %d per-cycle: %.0fns bare floor, median telemetry delta %+.0fns (%.2f%%)",
			attempt, base, delta, 100*delta/base)
		// Same budget shape as the perfmon guard: 2% relative plus a small
		// absolute allowance for clock granularity on very fast steps.
		if delta <= base*0.02+200 {
			break
		}
		if attempt == 3 {
			t.Fatalf("idle telemetry costs %.0fns/cycle over a %.0fns/cycle baseline (>2%%) across %d attempts; the sampled publish discipline broke", delta, base, attempt)
		}
	}
}
