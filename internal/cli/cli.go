// Package cli holds the small helpers shared by the repo's command-line
// tools: CPU-profile setup and declarative flag-combination validation.
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile at path and returns a stop function to
// defer. An empty path is a no-op (the stop function is still non-nil). tool
// prefixes error messages ("scorpiosim: ...").
//
// This covers ahead-of-time profiling of a whole process; a run with live
// telemetry attached (-telemetry) can instead be profiled on demand, while it
// executes, through the exporter's stdlib pprof mux
// (http://ADDR/debug/pprof/profile).
func StartCPUProfile(tool, path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", tool, err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", tool, err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// FlagRule declares one flag-combination requirement: when Flag was
// explicitly set on the command line, Requires must report true, otherwise
// the rule fails with Msg. Rules catch observability flag combinations that
// would silently do nothing — almost always operator mistakes.
type FlagRule struct {
	// Flag is the name of the flag that triggers the rule when set.
	Flag string
	// Requires reports whether the combination is valid (evaluated only when
	// Flag was set).
	Requires func() bool
	// Msg explains the failure ("-audit-every has no effect without -audit").
	Msg string
}

// CheckFlags validates every rule against the set of explicitly-provided
// flags in fs (which must already be parsed) and returns the first failure.
func CheckFlags(fs *flag.FlagSet, rules []FlagRule) error {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	for _, r := range rules {
		if set[r.Flag] && !r.Requires() {
			return fmt.Errorf("%s", r.Msg)
		}
	}
	return nil
}
