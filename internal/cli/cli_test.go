package cli

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// newTestFlagSet builds the flag surface the simulator tools share, parsed
// over args. The rule set mirrors cmd/scorpiosim's: dependent observability
// flags require their primary.
func newTestFlagSet(t *testing.T, args []string) (*flag.FlagSet, []FlagRule) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	metricsOut := fs.String("metrics-out", "", "")
	fs.Uint64("metrics-interval", 0, "")
	audit := fs.Bool("audit", false, "")
	fs.Uint64("audit-every", 0, "")
	telemetry := fs.String("telemetry", "", "")
	fs.Uint64("telemetry-interval", 0, "")
	fs.Int("sse-queue", 0, "")
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	rules := []FlagRule{
		{Flag: "metrics-interval", Requires: func() bool { return *metricsOut != "" },
			Msg: "-metrics-interval has no effect without -metrics-out"},
		{Flag: "audit-every", Requires: func() bool { return *audit },
			Msg: "-audit-every has no effect without -audit"},
		{Flag: "telemetry-interval", Requires: func() bool { return *telemetry != "" },
			Msg: "-telemetry-interval has no effect without -telemetry"},
		{Flag: "sse-queue", Requires: func() bool { return *telemetry != "" },
			Msg: "-sse-queue has no effect without -telemetry"},
	}
	return fs, rules
}

func TestCheckFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; "" means the combination is valid
	}{
		{name: "no flags", args: nil},
		{name: "primary alone", args: []string{"-telemetry", ":0"}},
		{name: "dependent with primary",
			args: []string{"-telemetry", ":0", "-telemetry-interval", "512"}},
		{name: "dependent without primary",
			args:    []string{"-telemetry-interval", "512"},
			wantErr: "-telemetry-interval has no effect without -telemetry"},
		{name: "sse queue without telemetry",
			args:    []string{"-sse-queue", "8"},
			wantErr: "-sse-queue has no effect without -telemetry"},
		{name: "metrics interval without out",
			args:    []string{"-metrics-interval", "100"},
			wantErr: "-metrics-interval has no effect without -metrics-out"},
		{name: "metrics interval with out",
			args: []string{"-metrics-out", "m.csv", "-metrics-interval", "100"}},
		{name: "audit every without audit",
			args:    []string{"-audit-every", "10"},
			wantErr: "-audit-every has no effect without -audit"},
		{name: "audit every with audit",
			args: []string{"-audit", "-audit-every", "10"}},
		{name: "first failing rule wins",
			args:    []string{"-metrics-interval", "1", "-audit-every", "1"},
			wantErr: "-metrics-interval",
		},
		// A dependent flag explicitly set to its zero value is still *set*:
		// the operator typed it, so the combination check must still fire.
		{name: "zero-valued dependent still checked",
			args:    []string{"-telemetry-interval", "0"},
			wantErr: "-telemetry-interval has no effect without -telemetry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs, rules := newTestFlagSet(t, tc.args)
			err := CheckFlags(fs, rules)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("CheckFlags(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("CheckFlags(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

func TestStartCPUProfile(t *testing.T) {
	stop, err := StartCPUProfile("tool", "")
	if err != nil {
		t.Fatalf("empty path: %v", err)
	}
	stop() // must be callable

	path := filepath.Join(t.TempDir(), "cpu.prof")
	stop, err = StartCPUProfile("tool", path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1_000_000; i++ {
		_ = i * i // give the profiler something to sample
	}
	stop()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("profile file is empty")
	}

	if _, err := StartCPUProfile("mytool", filepath.Join(t.TempDir(), "no", "such", "dir", "p")); err == nil {
		t.Fatal("unwritable path: want error")
	} else if !strings.Contains(err.Error(), "mytool") {
		t.Fatalf("error %q does not carry the tool prefix", err)
	}
}
