package directory

import (
	"fmt"

	"scorpio/internal/cache"
	"scorpio/internal/coherence"
	"scorpio/internal/noc"
	"scorpio/internal/stats"
)

// L2Config parameterises the requester-side controller of the directory
// baselines. The cache itself matches the chip's L2 so "all other conditions
// equal" holds (Section 5.1).
type L2Config struct {
	CapacityBytes  int
	LineBytes      int
	Ways           int
	HitLatency     int
	MSHRs          int
	CoreQueueDepth int
	DataFlits      int
	Nodes          int
	Variant        Variant
}

// DefaultL2Config mirrors the chip's L2 for an N-node machine.
func DefaultL2Config(nodes int, v Variant) L2Config {
	return L2Config{
		CapacityBytes: 128 * 1024, LineBytes: 32, Ways: 4,
		HitLatency: 10, MSHRs: 2, CoreQueueDepth: 4, DataFlits: 3,
		Nodes: nodes, Variant: v,
	}
}

// L2Stats counts requester-side activity.
type L2Stats struct {
	CoreReads     uint64
	CoreWrites    uint64
	Hits          uint64
	Misses        uint64
	ProbesSeen    uint64
	ProbeAcks     uint64
	DataForwards  uint64
	Invalidations uint64
	Writebacks    uint64
}

// dmshr is one outstanding directory-protocol miss.
type dmshr struct {
	active       bool
	addr         uint64
	write        bool
	issue        uint64
	reqID        uint64
	pkt          *noc.Packet
	wantInject   bool
	dataNeeded   bool
	dataArrived  bool
	dataCycle    uint64
	acksExpected int // -1 until the data response announces it
	acksGot      int
	selfOwned    bool // HT upgrade by the current owner: acks only
	installed    bool // line installed and home unblocked at data arrival
	resp         RespInfo
}

// dwb is one writeback in flight.
type dwb struct {
	addr     uint64
	reqID    uint64
	putm     *noc.Packet
	data     *noc.Packet
	wantPutM bool
	wantData bool
	hijacked bool
}

// dsend is a scheduled injection.
type dsend struct {
	readyAt uint64
	pkt     *noc.Packet
	isReq   bool
	resp    *RespInfo
}

// dcoreReq is a buffered core access.
type dcoreReq struct {
	addr  uint64
	write bool
	issue uint64
}

// L2 is the requester-side cache controller of the directory baselines.
type L2 struct {
	cfg   L2Config
	node  int
	nic   coherence.NetPort
	newID func() uint64
	arr   *cache.Array
	// OnComplete receives finished core requests (same shape as the snoopy
	// controller so injectors are protocol-agnostic).
	OnComplete func(coherence.Completion)

	mshrs      []dmshr
	wbs        []*dwb
	sendQ      []dsend
	coreQ      []dcoreReq
	stagedCore []dcoreReq
	reqIDNext  uint64
	now        uint64 // cycle of the last Evaluate (idle-check reference)
	Stats      L2Stats
}

// NewL2 builds a directory-protocol cache controller.
func NewL2(node int, cfg L2Config, n coherence.NetPort, newID func() uint64) *L2 {
	return &L2{
		cfg: cfg, node: node, nic: n, newID: newID,
		arr:   cache.NewArrayBytes(cfg.CapacityBytes, cfg.LineBytes, cfg.Ways),
		mshrs: make([]dmshr, cfg.MSHRs),
	}
}

// Node returns the tile ID.
func (l *L2) Node() int { return l.node }

// Outstanding reports the number of active MSHRs (occupancy gauge for the
// metrics sampler).
func (l *L2) Outstanding() int {
	n := 0
	for i := range l.mshrs {
		if l.mshrs[i].active {
			n++
		}
	}
	return n
}

// Array exposes the cache array (tests).
func (l *L2) Array() *cache.Array { return l.arr }

// LineState reports a line's coherence state.
func (l *L2) LineState(addr uint64) coherence.State {
	if ln := l.arr.Lookup(addr); ln != nil {
		return coherence.State(ln.State)
	}
	return coherence.Invalid
}

// CoreRequest offers a line-granular access from the trace injector.
func (l *L2) CoreRequest(addr uint64, write bool, cycle uint64) bool {
	if len(l.coreQ)+len(l.stagedCore) >= l.cfg.CoreQueueDepth {
		return false
	}
	l.stagedCore = append(l.stagedCore, dcoreReq{addr: addr, write: write, issue: cycle})
	return true
}

// HandleProbe consumes one HT broadcast probe (request class, also invoked
// locally by the co-located home). It always succeeds.
func (l *L2) HandleProbe(p *noc.Packet, cycle uint64) bool {
	info := p.Payload.(*FwdInfo)
	l.Stats.ProbesSeen++
	if info.Requester == l.node {
		// Our own transaction's probe returning: the ordering point has
		// serialised our request, which completes data-less upgrades — but
		// only if we still own the line. If an earlier-serialised write took
		// our ownership first (its probe preceded ours on the same
		// home-ordered path), the new owner's data response completes us
		// instead.
		if m := l.findMSHRByReq(info.ReqID); m != nil && m.selfOwned {
			if l.ownsLine(p.Addr) != nil {
				m.dataArrived = true
				m.dataCycle = cycle
			} else {
				m.selfOwned = false
			}
		}
		return true
	}
	owner := l.ownsLine(p.Addr)
	switch Kind(p.Kind) {
	case ProbeS:
		if owner != nil {
			l.sendOwnerData(info, p.Addr, cycle, true, 0)
			l.ownerToShared(p.Addr, owner)
		}
	case ProbeX:
		// The home is the ordering point, so invalidations need no acks
		// (the paper's HT-D latency breakdown has no ack segment).
		if owner != nil {
			l.sendOwnerData(info, p.Addr, cycle, true, 0)
			l.ownerGone(p.Addr, owner)
		} else {
			l.invalidateIfPresent(p.Addr)
		}
	default:
		panic(fmt.Sprintf("directory: node %d got %s as probe", l.node, Kind(p.Kind)))
	}
	return true
}

// HandleFwd consumes an LPD forward (response class).
func (l *L2) HandleFwd(p *noc.Packet, cycle uint64) {
	info := p.Payload.(*FwdInfo)
	owner := l.ownsLine(p.Addr)
	if owner == nil {
		panic(fmt.Sprintf("directory: node %d forwarded %s for line %#x it does not own", l.node, Kind(p.Kind), p.Addr))
	}
	switch Kind(p.Kind) {
	case FwdGetS:
		l.sendOwnerData(info, p.Addr, cycle, false, 0)
		l.ownerToShared(p.Addr, owner)
	case FwdGetX:
		l.sendOwnerData(info, p.Addr, cycle, false, info.AckCount)
		l.ownerGone(p.Addr, owner)
	}
}

// HandleInv consumes a home invalidation, acking the requester.
func (l *L2) HandleInv(p *noc.Packet, cycle uint64) {
	info := p.Payload.(*FwdInfo)
	l.invalidateIfPresent(p.Addr)
	l.sendAck(InvAck, info.Requester, p.Addr, info.ReqID, cycle)
}

// ownsLine reports ownership: the cache line in M/O_D, or an active
// writeback buffer still holding the dirty data; nil if neither.
func (l *L2) ownsLine(addr uint64) any {
	if wb := l.findWB(addr); wb != nil && !wb.hijacked {
		return wb
	}
	if ln := l.arr.Lookup(addr); ln != nil {
		st := coherence.State(ln.State)
		if st == coherence.Modified || st == coherence.OwnedDirty {
			return ln
		}
	}
	return nil
}

// ownerToShared applies a read-forward at the owner (M/O_D stays owner as
// O_D; a WB buffer keeps the data).
func (l *L2) ownerToShared(addr uint64, owner any) {
	if ln, ok := owner.(*cache.Line); ok {
		ln.State = int(coherence.OwnedDirty)
	}
}

// ownerGone applies a write-forward at the owner: the line (or WB entry)
// surrenders ownership.
func (l *L2) ownerGone(addr uint64, owner any) {
	switch o := owner.(type) {
	case *cache.Line:
		l.arr.Invalidate(addr)
		l.Stats.Invalidations++
	case *dwb:
		o.hijacked = true
	}
}

// invalidateIfPresent drops a shared copy.
func (l *L2) invalidateIfPresent(addr uint64) {
	if l.arr.Invalidate(addr) {
		l.Stats.Invalidations++
	}
}

// sendOwnerData responds with the line to the transaction's requester.
func (l *L2) sendOwnerData(info *FwdInfo, addr uint64, cycle uint64, broadcast bool, acks int) {
	l.Stats.DataForwards++
	resp := &RespInfo{
		ServedByCache: true, Broadcast: broadcast,
		HomeArrive: info.HomeArrive, Dispatch: info.Dispatch,
		OwnerArrive: cycle, AckCount: acks,
	}
	pkt := &noc.Packet{
		ID: l.newID(), VNet: noc.UOResp, Src: l.node, Dst: info.Requester,
		Kind: int(DataD), Addr: addr, ReqID: info.ReqID,
		Flits: l.cfg.DataFlits, InjectCycle: cycle, Payload: resp,
	}
	l.sendQ = append(l.sendQ, dsend{readyAt: cycle + uint64(l.cfg.HitLatency), pkt: pkt, resp: resp})
}

// sendAck sends a single-flit message.
func (l *L2) sendAck(kind Kind, dst int, addr uint64, reqID uint64, cycle uint64) {
	pkt := &noc.Packet{
		ID: l.newID(), VNet: noc.UOResp, Src: l.node, Dst: dst,
		Kind: int(kind), Addr: addr, ReqID: reqID, Flits: 1, InjectCycle: cycle,
	}
	l.sendQ = append(l.sendQ, dsend{readyAt: cycle, pkt: pkt})
}

// HandleResponse consumes DataD/InvAck/WBAck (response class).
func (l *L2) HandleResponse(p *noc.Packet, cycle uint64) {
	switch Kind(p.Kind) {
	case DataD:
		m := l.findMSHRByReq(p.ReqID)
		if m == nil {
			panic(fmt.Sprintf("directory: node %d got DataD for unknown reqID %d", l.node, p.ReqID))
		}
		m.dataArrived = true
		m.dataCycle = cycle
		if ri, ok := p.Payload.(*RespInfo); ok {
			m.resp = *ri
			m.acksExpected = ri.AckCount
		} else {
			m.acksExpected = 0
		}
		// Install and unblock the home at data arrival (GEMS-style
		// non-blocking completion); the core-visible completion still waits
		// for invalidation acks.
		if m.write {
			l.install(m.addr, coherence.Modified, cycle)
		} else {
			l.install(m.addr, coherence.Shared, cycle)
		}
		l.sendAck(Done, HomeFor(m.addr, l.cfg.Nodes), m.addr, m.reqID, cycle)
		m.installed = true
	case InvAck:
		m := l.findMSHRByReq(p.ReqID)
		if m == nil {
			panic(fmt.Sprintf("directory: node %d got InvAck for unknown reqID %d", l.node, p.ReqID))
		}
		m.acksGot++
	case WBAck:
		if wb := l.findWBByReq(p.ReqID); wb != nil {
			l.freeWB(wb)
		}
	default:
		panic(fmt.Sprintf("directory: node %d got unexpected response %s", l.node, Kind(p.Kind)))
	}
}

// Evaluate runs one controller cycle.
func (l *L2) Evaluate(cycle uint64) {
	l.now = cycle
	l.drainSendQ(cycle)
	l.retryInjects(cycle)
	l.checkCompletions(cycle)
	l.processCoreQueue(cycle)
}

// Commit merges staged core requests.
func (l *L2) Commit(cycle uint64) {
	if len(l.stagedCore) > 0 {
		l.coreQ = append(l.coreQ, l.stagedCore...)
		l.stagedCore = nil
	}
}

// Idle implements sim.Idler: the controller parks only when it is fully
// drained apart from future-scheduled sends — no buffered or staged core
// requests, no outstanding miss or writeback (responses unblock them through
// the node's NIC, which runs inside this unit, but completion processing
// happens on the following Evaluate, so an active MSHR keeps the unit live),
// and no send whose latency already elapsed.
func (l *L2) Idle() bool {
	if len(l.stagedCore) > 0 || len(l.coreQ) > 0 || len(l.wbs) > 0 {
		return false
	}
	for i := range l.mshrs {
		if l.mshrs[i].active {
			return false
		}
	}
	for i := range l.sendQ {
		if l.sendQ[i].readyAt <= l.now {
			return false
		}
	}
	return true
}

// NextEventCycle implements sim.NextEventer: the earliest scheduled send.
func (l *L2) NextEventCycle(cycle uint64) uint64 {
	next := uint64(0)
	for i := range l.sendQ {
		if r := l.sendQ[i].readyAt; next == 0 || r < next {
			next = r
		}
	}
	if next == 0 {
		return ^uint64(0)
	}
	if next <= cycle {
		return cycle + 1
	}
	return next
}

func (l *L2) drainSendQ(cycle uint64) {
	rest := l.sendQ[:0]
	for _, s := range l.sendQ {
		if s.readyAt > cycle {
			rest = append(rest, s)
			continue
		}
		if s.resp != nil && s.resp.DataSent == 0 {
			s.resp.DataSent = cycle
		}
		var ok bool
		if s.isReq {
			ok = l.nic.SendRequest(s.pkt)
		} else {
			ok = l.nic.SendResponse(s.pkt)
		}
		if !ok {
			rest = append(rest, s)
		}
	}
	l.sendQ = rest
}

func (l *L2) retryInjects(cycle uint64) {
	for i := range l.mshrs {
		m := &l.mshrs[i]
		if m.active && m.wantInject && l.nic.SendRequest(m.pkt) {
			m.wantInject = false
		}
	}
	for _, wb := range l.wbs {
		if wb.wantPutM && l.nic.SendRequest(wb.putm) {
			wb.wantPutM = false
		}
		if wb.wantData && l.nic.SendResponse(wb.data) {
			wb.wantData = false
		}
	}
}

func (l *L2) checkCompletions(cycle uint64) {
	for i := range l.mshrs {
		m := &l.mshrs[i]
		if !m.active {
			continue
		}
		if m.dataNeeded && !m.dataArrived {
			continue
		}
		if m.acksExpected < 0 || m.acksGot < m.acksExpected {
			continue
		}
		l.completeMiss(m, cycle)
	}
}

func (l *L2) completeMiss(m *dmshr, cycle uint64) {
	if !m.installed {
		// Data-less completions (self-owned upgrades): install now and
		// unblock the home.
		if m.write {
			l.install(m.addr, coherence.Modified, cycle)
		} else {
			l.install(m.addr, coherence.Shared, cycle)
		}
		l.sendAck(Done, HomeFor(m.addr, l.cfg.Nodes), m.addr, m.reqID, cycle)
	}
	l.report(m, cycle)
	*m = dmshr{}
}

// report emits the completion callback with the Figure 6b/6c breakdown.
func (l *L2) report(m *dmshr, cycle uint64) {
	l.Stats.Misses++
	if l.OnComplete == nil {
		return
	}
	var bd [stats.NumBreakdownComponents]uint64
	inj := m.pkt.InjectCycle
	switch {
	case m.selfOwned:
		// Upgrade completed on acks alone; only the round trip matters.
	case m.resp.ServedByCache && m.resp.DataSent > 0 && m.resp.OwnerArrive > 0:
		bd[stats.NetReqToDir] = sub(m.resp.HomeArrive, inj)
		bd[stats.DirAccess] = sub(m.resp.Dispatch, m.resp.HomeArrive)
		if m.resp.Broadcast {
			bd[stats.NetBcastReq] = sub(m.resp.OwnerArrive, m.resp.Dispatch)
		} else {
			bd[stats.NetDirToSharer] = sub(m.resp.OwnerArrive, m.resp.Dispatch)
		}
		bd[stats.SharerAccess] = sub(m.resp.DataSent, m.resp.OwnerArrive)
		bd[stats.NetResp] = sub(m.dataCycle, m.resp.DataSent)
	case m.dataArrived:
		bd[stats.NetReqToDir] = sub(m.resp.HomeArrive, inj)
		bd[stats.DirAccess] = sub(m.resp.DataSent, m.resp.HomeArrive)
		bd[stats.NetResp] = sub(m.dataCycle, m.resp.DataSent)
	}
	served := m.resp.ServedByCache || m.selfOwned
	l.OnComplete(coherence.Completion{
		Addr: m.addr, Write: m.write, Issue: m.issue, Done: cycle,
		Hit: false, ServedByCache: served, SelfServed: m.selfOwned, Breakdown: bd,
	})
}

func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

func (l *L2) processCoreQueue(cycle uint64) {
	for len(l.coreQ) > 0 {
		req := l.coreQ[0]
		if l.findMSHR(req.addr) != nil || l.findWB(req.addr) != nil {
			return
		}
		if req.write {
			l.Stats.CoreWrites++
		} else {
			l.Stats.CoreReads++
		}
		st := l.LineState(req.addr)
		hit := st != coherence.Invalid && (!req.write || st == coherence.Modified)
		if hit {
			l.arr.Touch(req.addr)
			l.Stats.Hits++
			if l.OnComplete != nil {
				l.OnComplete(coherence.Completion{Addr: req.addr, Write: req.write, Issue: req.issue, Done: cycle + uint64(l.cfg.HitLatency), Hit: true})
			}
			l.coreQ = l.coreQ[1:]
			continue
		}
		m := l.freeMSHR()
		if m == nil {
			return
		}
		// Upgrades keep their line MRU so a concurrent fill can never evict
		// the very line the in-flight write targets.
		if st != coherence.Invalid {
			l.arr.Touch(req.addr)
		}
		kind := ReqGetS
		if req.write {
			kind = ReqGetX
		}
		l.reqIDNext++
		*m = dmshr{
			active: true, addr: req.addr, write: req.write, issue: req.issue,
			reqID: l.reqIDNext, dataNeeded: true, acksExpected: -1,
		}
		if req.write && l.cfg.Variant == HT && st == coherence.OwnedDirty {
			// HT upgrade by the owner: nobody sends data; our own probe
			// returning from the ordering point completes the upgrade.
			m.selfOwned = true
			m.acksExpected = 0
		}
		m.pkt = &noc.Packet{
			ID: l.newID(), VNet: noc.GOReq, Src: l.node, SID: l.node,
			Dst:  HomeFor(req.addr, l.cfg.Nodes),
			Kind: int(kind), Addr: req.addr, ReqID: m.reqID, Flits: 1, InjectCycle: cycle,
		}
		if !l.nic.SendRequest(m.pkt) {
			m.wantInject = true
		}
		l.coreQ = l.coreQ[1:]
	}
}

// install places a line, handling dirty evictions.
func (l *L2) install(addr uint64, st coherence.State, cycle uint64) {
	ev, did := l.arr.Insert(addr, int(st))
	if !did {
		return
	}
	es := coherence.State(ev.State)
	if es == coherence.Modified || es == coherence.OwnedDirty {
		l.startWriteback(ev.Addr, cycle)
	}
}

// startWriteback sends PutM (request class) plus the data (response class).
func (l *L2) startWriteback(addr uint64, cycle uint64) {
	l.reqIDNext++
	home := HomeFor(addr, l.cfg.Nodes)
	wb := &dwb{addr: addr, reqID: l.reqIDNext}
	wb.putm = &noc.Packet{
		ID: l.newID(), VNet: noc.GOReq, Src: l.node, SID: l.node, Dst: home,
		Kind: int(ReqPutM), Addr: addr, ReqID: wb.reqID, Flits: 1, InjectCycle: cycle,
	}
	wb.data = &noc.Packet{
		ID: l.newID(), VNet: noc.UOResp, Src: l.node, Dst: home,
		Kind: int(WBData), Addr: addr, ReqID: wb.reqID, Flits: l.cfg.DataFlits, InjectCycle: cycle,
	}
	wb.wantPutM = !l.nic.SendRequest(wb.putm)
	wb.wantData = !l.nic.SendResponse(wb.data)
	l.wbs = append(l.wbs, wb)
	l.Stats.Writebacks++
}

func (l *L2) findMSHR(addr uint64) *dmshr {
	for i := range l.mshrs {
		if l.mshrs[i].active && l.mshrs[i].addr == addr {
			return &l.mshrs[i]
		}
	}
	return nil
}

func (l *L2) findMSHRByReq(reqID uint64) *dmshr {
	for i := range l.mshrs {
		if l.mshrs[i].active && l.mshrs[i].reqID == reqID {
			return &l.mshrs[i]
		}
	}
	return nil
}

func (l *L2) freeMSHR() *dmshr {
	for i := range l.mshrs {
		if !l.mshrs[i].active {
			return &l.mshrs[i]
		}
	}
	return nil
}

func (l *L2) findWB(addr uint64) *dwb {
	for _, wb := range l.wbs {
		if wb.addr == addr {
			return wb
		}
	}
	return nil
}

func (l *L2) findWBByReq(reqID uint64) *dwb {
	for _, wb := range l.wbs {
		if wb.reqID == reqID {
			return wb
		}
	}
	return nil
}

func (l *L2) freeWB(wb *dwb) {
	for i, w := range l.wbs {
		if w == wb {
			l.wbs = append(l.wbs[:i], l.wbs[i+1:]...)
			return
		}
	}
}
