// Package directory implements the two directory-coherence baselines of
// Section 5: LPD-D, a distributed limited-pointer directory [Agarwal et al.,
// ISCA 1988], and HT-D, an AMD HyperTransport-style ordering-point directory
// [Conway & Hughes, IEEE Micro 2007] that stores no sharer information and
// broadcasts probes. Both run on the identical mesh NoC with the ordered
// virtual network and notification network removed, per the paper's
// "all other conditions equal" methodology.
//
// The directory state proper is distributed across every core (256KB total
// directory cache split N ways, home node = line address mod N); a home
// serialises transactions per line (blocking directory) and requesters
// confirm completion with Done messages.
package directory

import "fmt"

// Kind enumerates the directory protocols' message types (values live in
// noc.Packet.Kind; they are disjoint from the snoopy kinds only by system
// construction, not by value).
type Kind int

const (
	// ReqGetS/ReqGetX/ReqPutM are requester→home messages (request class,
	// unicast).
	ReqGetS Kind = iota
	ReqGetX
	ReqPutM
	// ProbeS/ProbeX are HT-D's home→everyone broadcast probes (request
	// class).
	ProbeS
	ProbeX
	// FwdGetS/FwdGetX are LPD-D's home→owner forwards (response class).
	FwdGetS
	FwdGetX
	// Inv is a home→sharer invalidation; the sharer acks the requester.
	Inv
	// DataD carries line data to the requester (owner- or memory-sourced).
	DataD
	// InvAck is a sharer→requester invalidation acknowledgement.
	InvAck
	// WBData carries writeback data to the home.
	WBData
	// WBAck closes a writeback at the evicting tile.
	WBAck
	// Done is the requester→home transaction-complete notification that
	// unblocks the line.
	Done
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case ReqGetS:
		return "ReqGetS"
	case ReqGetX:
		return "ReqGetX"
	case ReqPutM:
		return "ReqPutM"
	case ProbeS:
		return "ProbeS"
	case ProbeX:
		return "ProbeX"
	case FwdGetS:
		return "FwdGetS"
	case FwdGetX:
		return "FwdGetX"
	case Inv:
		return "Inv"
	case DataD:
		return "DataD"
	case InvAck:
		return "InvAck"
	case WBData:
		return "WBData"
	case WBAck:
		return "WBAck"
	case Done:
		return "Done"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Variant selects the directory protocol.
type Variant int

const (
	// LPD is the limited-pointer directory (owner + 4 sharer pointers,
	// broadcast invalidations past the pointer limit).
	LPD Variant = iota
	// HT is the HyperTransport-style directory (2 bits: ownership + valid;
	// probes broadcast to all cores).
	HT
)

// String names the variant as the paper's figures do.
func (v Variant) String() string {
	if v == LPD {
		return "LPD-D"
	}
	return "HT-D"
}

// FwdInfo rides in forwards/probes so the eventual data response carries the
// full latency trail.
type FwdInfo struct {
	Requester  int
	ReqID      uint64
	ReqInject  uint64 // requester's injection cycle
	HomeArrive uint64 // request arrival at the home NIC
	Dispatch   uint64 // home sent the forward/probe/DRAM access
	AckCount   int    // invalidation acks the requester must collect (FwdGetX)
}

// RespInfo rides in DataD responses for the Figure 6b/6c breakdown.
type RespInfo struct {
	ServedByCache bool
	Broadcast     bool // HT probe path (Network: Bcast Req segment)
	HomeArrive    uint64
	Dispatch      uint64 // forward/probe/DRAM issued by home
	OwnerArrive   uint64 // forward/probe reached the owner
	DataSent      uint64
	AckCount      int // invalidation acks the requester must collect
}
