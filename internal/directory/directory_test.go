package directory

import (
	"testing"

	"scorpio/internal/coherence"
	"scorpio/internal/noc"
)

// fakeNIC satisfies the injection interface of Home and L2.
type fakeNIC struct {
	reqs  []*noc.Packet
	resps []*noc.Packet
}

func (f *fakeNIC) SendRequest(p *noc.Packet) bool {
	f.reqs = append(f.reqs, p)
	return true
}

func (f *fakeNIC) SendResponse(p *noc.Packet) bool {
	f.resps = append(f.resps, p)
	return true
}

// Note: Home/L2 take *nic.NIC in the system but are tested through their
// exported methods with a shim; the fields are interfaces in this package.

type homeRig struct {
	home  *Home
	nic   *fakeNIC
	cycle uint64
}

func newHomeRig(v Variant) *homeRig {
	cfg := LPDConfig(16)
	if v == HT {
		cfg = HTConfig(16)
	}
	n := &fakeNIC{}
	id := uint64(0)
	h := NewHome(2, cfg, n, func() uint64 { id++; return id })
	return &homeRig{home: h, nic: n}
}

func (r *homeRig) step(n int) {
	for i := 0; i < n; i++ {
		r.home.Evaluate(r.cycle)
		r.home.Commit(r.cycle)
		r.cycle++
	}
}

func (r *homeRig) request(kind Kind, src int, addr, reqID uint64) {
	p := &noc.Packet{VNet: noc.GOReq, Src: src, SID: src, Dst: 2, Flits: 1,
		Kind: int(kind), Addr: addr, ReqID: reqID, InjectCycle: r.cycle}
	r.home.Request(p, r.cycle, r.cycle)
}

func (r *homeRig) done(src int, addr, reqID uint64) {
	r.home.DoneArrived(&noc.Packet{Src: src, Addr: addr, ReqID: reqID}, r.cycle)
}

func (r *homeRig) find(kind Kind) *noc.Packet {
	for _, p := range r.nic.resps {
		if Kind(p.Kind) == kind {
			return p
		}
	}
	for _, p := range r.nic.reqs {
		if Kind(p.Kind) == kind {
			return p
		}
	}
	return nil
}

func TestHomeServesUncachedFromMemory(t *testing.T) {
	r := newHomeRig(LPD)
	r.request(ReqGetS, 5, 0x100, 1)
	r.step(250)
	data := r.find(DataD)
	if data == nil {
		t.Fatal("no DataD response")
	}
	if data.Dst != 5 || data.ReqID != 1 {
		t.Fatalf("bad data %v", data)
	}
	ri := data.Payload.(*RespInfo)
	if ri.ServedByCache {
		t.Fatal("memory-served response mislabelled")
	}
}

func TestLPDForwardsToOwner(t *testing.T) {
	r := newHomeRig(LPD)
	r.request(ReqGetX, 3, 0x200, 1)
	r.step(250)
	r.done(3, 0x200, 1)
	// Now node 3 owns the line; a read forwards.
	r.request(ReqGetS, 7, 0x200, 2)
	r.step(50)
	fwd := r.find(FwdGetS)
	if fwd == nil {
		t.Fatal("no forward to the owner")
	}
	if fwd.Dst != 3 {
		t.Fatalf("forward to %d, want owner 3", fwd.Dst)
	}
	info := fwd.Payload.(*FwdInfo)
	if info.Requester != 7 || info.ReqID != 2 {
		t.Fatalf("bad forward info %+v", info)
	}
}

func TestLPDInvalidatesTrackedSharers(t *testing.T) {
	r := newHomeRig(LPD)
	// Three readers share the line.
	for i, src := range []int{4, 5, 6} {
		r.request(ReqGetS, src, 0x300, uint64(i+1))
		r.step(250)
		r.done(src, 0x300, uint64(i+1))
	}
	// A writer invalidates the sharers.
	r.request(ReqGetX, 9, 0x300, 10)
	r.step(250)
	invs := 0
	for _, p := range r.nic.resps {
		if Kind(p.Kind) == Inv {
			invs++
			if p.Dst == 9 {
				t.Fatal("requester must not be invalidated")
			}
		}
	}
	if invs != 3 {
		t.Fatalf("invalidations = %d, want 3", invs)
	}
	var data *noc.Packet
	for _, p := range r.nic.resps {
		if Kind(p.Kind) == DataD && p.ReqID == 10 {
			data = p
		}
	}
	if data == nil {
		t.Fatal("writer needs data")
	}
	if got := data.Payload.(*RespInfo).AckCount; got != 3 {
		t.Fatalf("ack count = %d, want 3", got)
	}
}

func TestLPDOverflowFallsBackToBroadcast(t *testing.T) {
	r := newHomeRig(LPD)
	// Six readers exceed the 4 pointers.
	for i, src := range []int{1, 3, 4, 5, 6, 7} {
		r.request(ReqGetS, src, 0x400, uint64(i+1))
		r.step(250)
		r.done(src, 0x400, uint64(i+1))
	}
	r.request(ReqGetX, 9, 0x400, 10)
	r.step(250)
	if r.find(ProbeX) == nil {
		t.Fatal("overflowed GetX must broadcast")
	}
	if r.home.Stats.ProbeBcasts != 1 {
		t.Fatalf("probe broadcasts = %d, want 1", r.home.Stats.ProbeBcasts)
	}
}

func TestHTAlwaysProbesOnOwnedLines(t *testing.T) {
	r := newHomeRig(HT)
	probed := 0
	r.home.LocalProbe = func(p *noc.Packet, cycle uint64) bool { probed++; return true }
	r.request(ReqGetX, 3, 0x500, 1)
	r.step(250)
	r.done(3, 0x500, 1)
	r.request(ReqGetS, 7, 0x500, 2)
	r.step(50)
	if r.find(ProbeS) == nil {
		t.Fatal("HT read with a cache owner must broadcast a probe")
	}
	if r.find(FwdGetS) != nil {
		t.Fatal("HT never forwards point-to-point")
	}
	if probed != 2 {
		t.Fatalf("local L2 probed %d times, want 2 (GetX + GetS)", probed)
	}
}

func TestHomeQueuesRacingTransactions(t *testing.T) {
	r := newHomeRig(LPD)
	r.request(ReqGetS, 4, 0x600, 1)
	r.request(ReqGetS, 5, 0x600, 2) // queued behind the first
	r.step(250)
	if r.home.Stats.Queued != 1 {
		t.Fatalf("queued = %d, want 1", r.home.Stats.Queued)
	}
	first := r.find(DataD)
	if first == nil || first.Dst != 4 {
		t.Fatal("first transaction must complete first")
	}
	// The second only dispatches after Done.
	count := len(r.nic.resps)
	r.step(300)
	if len(r.nic.resps) != count {
		t.Fatal("queued transaction ran before the line was unblocked")
	}
	r.done(4, 0x600, 1)
	r.step(250)
	found := false
	for _, p := range r.nic.resps {
		if Kind(p.Kind) == DataD && p.Dst == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("queued transaction never served")
	}
}

func TestHomeWritebackFlow(t *testing.T) {
	r := newHomeRig(LPD)
	r.request(ReqGetX, 3, 0x700, 1)
	r.step(250)
	r.done(3, 0x700, 1)
	// Eviction: PutM then data.
	r.request(ReqPutM, 3, 0x700, 2)
	r.step(50)
	// Read racing the writeback parks until data arrives.
	r.request(ReqGetS, 8, 0x700, 3)
	r.step(250)
	for _, p := range r.nic.resps {
		if Kind(p.Kind) == DataD && p.Dst == 8 {
			t.Fatal("read served before writeback data arrived")
		}
	}
	r.home.WBDataArrived(&noc.Packet{Src: 3, Addr: 0x700, ReqID: 2, Flits: 3}, r.cycle)
	r.step(400)
	if r.find(WBAck) == nil {
		t.Fatal("writeback not acknowledged")
	}
	served := false
	for _, p := range r.nic.resps {
		if Kind(p.Kind) == DataD && p.Dst == 8 {
			served = true
		}
	}
	if !served {
		t.Fatal("parked read never served")
	}
}

func TestHomeStalePutM(t *testing.T) {
	r := newHomeRig(LPD)
	r.request(ReqGetX, 3, 0x800, 1)
	r.step(250)
	r.done(3, 0x800, 1)
	r.request(ReqGetX, 4, 0x800, 2) // ownership moves to 4 (fwd to 3)
	r.step(250)
	r.done(4, 0x800, 2)
	r.request(ReqPutM, 3, 0x800, 3) // stale
	r.step(250)
	if r.home.Stats.StalePutM != 1 {
		t.Fatalf("stale PutM = %d, want 1", r.home.Stats.StalePutM)
	}
}

// l2Rig exercises the requester-side controller.
type l2Rig struct {
	l2    *L2
	nic   *fakeNIC
	cycle uint64
	done  []coherence.Completion
}

func newL2Rig(v Variant) *l2Rig {
	n := &fakeNIC{}
	id := uint64(0)
	l2 := NewL2(5, DefaultL2Config(16, v), n, func() uint64 { id++; return id })
	r := &l2Rig{l2: l2, nic: n}
	l2.OnComplete = func(c coherence.Completion) { r.done = append(r.done, c) }
	return r
}

func (r *l2Rig) step(n int) {
	for i := 0; i < n; i++ {
		r.l2.Evaluate(r.cycle)
		r.l2.Commit(r.cycle)
		r.cycle++
	}
}

func TestL2MissSendsRequestToHome(t *testing.T) {
	r := newL2Rig(LPD)
	r.l2.CoreRequest(0x21, false, r.cycle) // home = 0x21 % 16 = 1
	r.step(2)
	if len(r.nic.reqs) != 1 {
		t.Fatal("no request sent")
	}
	req := r.nic.reqs[0]
	if Kind(req.Kind) != ReqGetS || req.Dst != 1 || req.Broadcast {
		t.Fatalf("bad request %v", req)
	}
}

func TestL2DataInstallsAndSendsDone(t *testing.T) {
	r := newL2Rig(LPD)
	r.l2.CoreRequest(0x21, true, r.cycle)
	r.step(2)
	req := r.nic.reqs[0]
	r.l2.HandleResponse(&noc.Packet{Kind: int(DataD), Addr: 0x21, ReqID: req.ReqID,
		Payload: &RespInfo{ServedByCache: false, AckCount: 0}, Flits: 3}, r.cycle)
	r.step(3)
	if r.l2.LineState(0x21) != coherence.Modified {
		t.Fatal("write fill must install M")
	}
	var doneSeen bool
	for _, p := range r.nic.resps {
		if Kind(p.Kind) == Done && p.Dst == 1 {
			doneSeen = true
		}
	}
	if !doneSeen {
		t.Fatal("Done not sent to the home")
	}
	if len(r.done) != 1 || r.done[0].ServedByCache {
		t.Fatalf("completion wrong: %+v", r.done)
	}
}

func TestL2WaitsForInvAcks(t *testing.T) {
	r := newL2Rig(LPD)
	r.l2.CoreRequest(0x21, true, r.cycle)
	r.step(2)
	req := r.nic.reqs[0]
	r.l2.HandleResponse(&noc.Packet{Kind: int(DataD), Addr: 0x21, ReqID: req.ReqID,
		Payload: &RespInfo{ServedByCache: true, AckCount: 2, DataSent: 1, OwnerArrive: 1}, Flits: 3}, r.cycle)
	r.step(3)
	if len(r.done) != 0 {
		t.Fatal("completion before acks collected")
	}
	r.l2.HandleResponse(&noc.Packet{Kind: int(InvAck), Addr: 0x21, ReqID: req.ReqID, Flits: 1}, r.cycle)
	r.l2.HandleResponse(&noc.Packet{Kind: int(InvAck), Addr: 0x21, ReqID: req.ReqID, Flits: 1}, r.cycle)
	r.step(3)
	if len(r.done) != 1 {
		t.Fatal("completion missing after all acks")
	}
}

func TestL2FwdGetSMakesOwnerDirtyShared(t *testing.T) {
	r := newL2Rig(LPD)
	r.l2.Array().Insert(0x30, int(coherence.Modified))
	r.l2.HandleFwd(&noc.Packet{Kind: int(FwdGetS), Addr: 0x30,
		Payload: &FwdInfo{Requester: 9, ReqID: 7}}, r.cycle)
	r.step(15)
	if r.l2.LineState(0x30) != coherence.OwnedDirty {
		t.Fatal("owner must downgrade to O_D on a read forward")
	}
	if len(r.nic.resps) != 1 || r.nic.resps[0].Dst != 9 {
		t.Fatal("owner must send data to the requester")
	}
}

func TestL2InvAcksRequester(t *testing.T) {
	r := newL2Rig(LPD)
	r.l2.Array().Insert(0x31, int(coherence.Shared))
	r.l2.HandleInv(&noc.Packet{Kind: int(Inv), Addr: 0x31,
		Payload: &FwdInfo{Requester: 12, ReqID: 8}}, r.cycle)
	r.step(2)
	if r.l2.LineState(0x31) != coherence.Invalid {
		t.Fatal("sharer must invalidate")
	}
	if len(r.nic.resps) != 1 {
		t.Fatal("no ack sent")
	}
	ack := r.nic.resps[0]
	if Kind(ack.Kind) != InvAck || ack.Dst != 12 || ack.ReqID != 8 {
		t.Fatalf("bad ack %v", ack)
	}
}

func TestL2ProbeSemantics(t *testing.T) {
	r := newL2Rig(HT)
	r.l2.Array().Insert(0x40, int(coherence.OwnedDirty))
	// A write probe from another requester takes the line.
	r.l2.HandleProbe(&noc.Packet{Kind: int(ProbeX), Addr: 0x40,
		Payload: &FwdInfo{Requester: 2, ReqID: 3}}, r.cycle)
	r.step(15)
	if r.l2.LineState(0x40) != coherence.Invalid {
		t.Fatal("ProbeX must take ownership")
	}
	if len(r.nic.resps) != 1 {
		t.Fatal("owner must respond with data")
	}
	// A probe for a line we do not have is silent (no acks in HT).
	n := len(r.nic.resps)
	r.l2.HandleProbe(&noc.Packet{Kind: int(ProbeX), Addr: 0x41,
		Payload: &FwdInfo{Requester: 2, ReqID: 4}}, r.cycle)
	r.step(5)
	if len(r.nic.resps) != n {
		t.Fatal("non-owner must stay silent")
	}
}

func TestVariantAndKindStrings(t *testing.T) {
	if LPD.String() != "LPD-D" || HT.String() != "HT-D" {
		t.Fatal("variant names drifted from the paper")
	}
	for k := ReqGetS; k <= Done; k++ {
		if k.String() == "" {
			t.Fatal("unnamed kind")
		}
	}
	if HomeFor(37, 36) != 1 {
		t.Fatal("home interleaving broken")
	}
}
