package directory

import (
	"fmt"

	"scorpio/internal/bitset"
	"scorpio/internal/cache"
	"scorpio/internal/coherence"
	"scorpio/internal/noc"
	"scorpio/internal/stats"
)

// HomeConfig parameterises the distributed directory slice at each node.
type HomeConfig struct {
	Variant Variant
	// Nodes is the machine size (homes are interleaved line % Nodes).
	Nodes int
	// TotalDirCacheBytes is the machine-wide directory cache budget (256KB
	// in Section 5.1), split evenly across nodes.
	TotalDirCacheBytes int
	// EntryBytes is the per-line directory-cache entry footprint; LPD's
	// pointer entries are 4x the size of HT's two-bit entries, so LPD
	// caches fewer lines (Section 5.1).
	EntryBytes int
	// Pointers is LPD's sharer-pointer budget (4, chosen in Section 5).
	Pointers int
	// DirAccessLatency is the directory cache hit latency (10 cycles).
	DirAccessLatency int
	// DirMissPenalty is the extra off-chip latency of a directory cache
	// miss (fetch from the DRAM-backed full directory).
	DirMissPenalty int
	// DRAMLatency is the pipelined data-access latency (90 cycles).
	DRAMLatency int
	// DataFlits sizes data responses.
	DataFlits int
}

// LPDConfig returns the paper's LPD-D home parameters for an N-node machine.
func LPDConfig(nodes int) HomeConfig {
	return HomeConfig{
		Variant: LPD, Nodes: nodes, TotalDirCacheBytes: 256 * 1024,
		EntryBytes: 8, Pointers: 4,
		DirAccessLatency: 10, DirMissPenalty: 140, DRAMLatency: 90, DataFlits: 3,
	}
}

// HTConfig returns the paper's HT-D home parameters.
func HTConfig(nodes int) HomeConfig {
	c := LPDConfig(nodes)
	c.Variant = HT
	c.EntryBytes = 2
	return c
}

// HomeStats counts directory activity.
type HomeStats struct {
	Transactions  uint64
	Queued        uint64
	DirCacheHits  uint64
	DirCacheMiss  uint64
	DRAMReads     uint64
	Forwards      uint64
	ProbeBcasts   uint64
	Invalidations uint64
	Writebacks    uint64
	StalePutM     uint64
	QueueWait     stats.Mean
}

// qreq is a queued (or parked) transaction.
type qreq struct {
	pkt    *noc.Packet
	arrive uint64
	seen   bool // the line has directory history (a cache miss may recur)
}

// line is the backing directory state for one line (exact, DRAM-backed; the
// finite directory cache only affects latency). The sharer set is a
// multi-word bitset sized to the machine, which keeps the GetX invalidation
// scan a deterministic ascending-bit walk with no per-transaction map churn
// at any node count.
type line struct {
	owner      int
	sharers    bitset.Set // bit s set: node s holds the line
	overflowed bool
	memValid   bool
	busy       bool
	queue      []qreq
	parked     []qreq   // waiting for writeback data
	expectWB   uint64   // reqID of the writeback whose data is due (0 = none)
	wbEarly    []uint64 // reqIDs of WBData that arrived before their PutM was processed
}

// wbEarlyHas reports whether a writeback's data already arrived. The slice is
// scanned linearly: at most a handful of writebacks overlap per line.
func (l *line) wbEarlyHas(reqID uint64) bool {
	for _, id := range l.wbEarly {
		if id == reqID {
			return true
		}
	}
	return false
}

func (l *line) wbEarlyAdd(reqID uint64) { l.wbEarly = append(l.wbEarly, reqID) }

func (l *line) wbEarlyDel(reqID uint64) {
	for i, id := range l.wbEarly {
		if id == reqID {
			l.wbEarly = append(l.wbEarly[:i], l.wbEarly[i+1:]...)
			return
		}
	}
}

// timer schedules the one kind of deferred home work — processing a
// dispatched transaction after its directory-access latency. A concrete
// struct instead of a closure keeps the per-transaction timer off the heap.
type timer struct {
	at uint64
	l  *line
	q  qreq
}

// pendingSend is a scheduled injection.
type pendingSend struct {
	readyAt uint64
	pkt     *noc.Packet
	isReq   bool // probes go out on the request class
}

// Home is one node's directory slice.
type Home struct {
	cfg   HomeConfig
	node  int
	nic   coherence.NetPort
	newID func() uint64
	lines map[uint64]*line
	dirC  *cache.Array
	// LocalProbe lets HT probes reach the home tile's own L2 (the broadcast
	// does not loop back in unordered mode). It must return true.
	LocalProbe func(p *noc.Packet, cycle uint64) bool
	timers     []timer
	// timerScratch is the spare backing array Evaluate swaps in while firing
	// due timers (which may append new ones), so the per-cycle detach does
	// not reallocate.
	timerScratch []timer
	sendQ        []pendingSend
	now          uint64 // cycle of the last Evaluate (idle-check reference)
	Stats        HomeStats
}

// NewHome builds a directory slice.
func NewHome(node int, cfg HomeConfig, n coherence.NetPort, newID func() uint64) *Home {
	perNode := cfg.TotalDirCacheBytes / cfg.Nodes
	entries := perNode / cfg.EntryBytes
	if entries < 4 {
		entries = 4
	}
	return &Home{
		cfg: cfg, node: node, nic: n, newID: newID,
		lines: map[uint64]*line{},
		dirC:  cache.NewArrayBytes(entries*cfg.EntryBytes, cfg.EntryBytes, 4),
	}
}

// HomeFor returns the home node of a line in an N-node machine.
func HomeFor(addr uint64, nodes int) int { return int(addr % uint64(nodes)) }

// line returns the backing entry, defaulting to memory-owned and valid.
func (h *Home) line(addr uint64) *line {
	l, ok := h.lines[addr]
	if !ok {
		l = &line{owner: -1, memValid: true, sharers: bitset.New(h.cfg.Nodes)}
		h.lines[addr] = l
	}
	return l
}

// Request accepts one requester→home message (ReqGetS/ReqGetX/ReqPutM).
func (h *Home) Request(p *noc.Packet, arrive, cycle uint64) bool {
	_, seen := h.lines[p.Addr]
	l := h.line(p.Addr)
	q := qreq{pkt: p, arrive: arrive, seen: seen}
	if l.busy {
		l.queue = append(l.queue, q)
		h.Stats.Queued++
		return true
	}
	h.dispatch(l, q, cycle)
	return true
}

// dirLatency models the directory cache access. A first touch allocates the
// entry alongside the data fetch (no extra penalty); re-fetching an evicted
// entry pays the off-chip penalty — this is the capacity effect that makes
// LPD's large entries expensive (Section 5.1).
func (h *Home) dirLatency(addr uint64, seen bool) uint64 {
	if h.dirC.Get(addr) != nil {
		h.Stats.DirCacheHits++
		return uint64(h.cfg.DirAccessLatency)
	}
	h.dirC.Insert(addr, 0)
	if !seen {
		h.Stats.DirCacheHits++
		return uint64(h.cfg.DirAccessLatency)
	}
	h.Stats.DirCacheMiss++
	return uint64(h.cfg.DirAccessLatency + h.cfg.DirMissPenalty)
}

// dispatch begins processing one transaction after the directory access.
func (h *Home) dispatch(l *line, q qreq, cycle uint64) {
	h.Stats.Transactions++
	h.Stats.QueueWait.Observe(float64(cycle - q.arrive))
	lat := h.dirLatency(q.pkt.Addr, q.seen)
	l.busy = true
	h.timers = append(h.timers, timer{at: cycle + lat, l: l, q: q})
}

// process applies the protocol action for one transaction.
func (h *Home) process(l *line, q qreq, cycle uint64) {
	p := q.pkt
	switch Kind(p.Kind) {
	case ReqGetS:
		h.processGetS(l, q, cycle)
	case ReqGetX:
		h.processGetX(l, q, cycle)
	case ReqPutM:
		h.processPutM(l, q, cycle)
		// Writebacks complete at the home; no Done follows.
		h.unblock(l, cycle)
	default:
		panic(fmt.Sprintf("directory: home %d got %s as a request", h.node, Kind(p.Kind)))
	}
}

func (h *Home) processGetS(l *line, q qreq, cycle uint64) {
	p := q.pkt
	if l.owner >= 0 && l.owner != p.Src {
		// An on-chip owner supplies the data.
		if h.cfg.Variant == LPD {
			h.forward(FwdGetS, l.owner, p, q.arrive, cycle, 0)
		} else {
			h.probe(ProbeS, p, q.arrive, cycle)
		}
		l.sharers.Add(p.Src)
		h.checkOverflow(l)
		return
	}
	if l.owner == p.Src {
		// Redundant GetS from the owner (lost race); grant without data.
		h.grant(p, q.arrive, cycle, cycle, 0)
		return
	}
	// Memory supplies the data.
	l.sharers.Add(p.Src)
	h.checkOverflow(l)
	h.serveFromMemory(l, q, cycle, 0)
}

func (h *Home) processGetX(l *line, q qreq, cycle uint64) {
	p := q.pkt
	switch {
	case h.cfg.Variant == HT:
		// Probe everyone; the owner (if any) sends data. The home is the
		// ordering point, so invalidations carry no acks.
		h.probe(ProbeX, p, q.arrive, cycle)
		if l.owner < 0 {
			h.serveFromMemory(l, q, cycle, 0)
		}
		// An upgrade by the owner (l.owner == p.Src) completes when the
		// requester's own probe returns to it.
	case l.overflowed:
		// LPD past its pointers: fall back to a broadcast, like the paper's
		// "request is broadcast to all cores".
		h.probe(ProbeX, p, q.arrive, cycle)
		if l.owner < 0 {
			h.serveFromMemory(l, q, cycle, 0)
		} else if l.owner == p.Src {
			// Upgrade by the owner under overflow: data-less grant.
			h.grant(p, q.arrive, cycle, cycle, 0)
		}
	default:
		// LPD with precise sharers. Invalidations go out in ascending node
		// order — bitset iteration is inherently deterministic, unlike the
		// sorted map scan it replaced.
		invs := 0
		for s := l.sharers.Next(0); s >= 0; s = l.sharers.Next(s + 1) {
			if s == p.Src || s == l.owner {
				continue
			}
			h.invalidate(s, p, q.arrive, cycle)
			invs++
		}
		switch {
		case l.owner >= 0 && l.owner != p.Src:
			h.forward(FwdGetX, l.owner, p, q.arrive, cycle, invs)
		case l.owner == p.Src:
			// Upgrade by the owner: grant, no data movement.
			h.grant(p, q.arrive, cycle, cycle, invs)
		default:
			h.serveFromMemory(l, q, cycle, invs)
		}
	}
	l.owner = p.Src
	l.sharers.SetOnly(p.Src)
	l.overflowed = false
}

func (h *Home) processPutM(l *line, q qreq, cycle uint64) {
	p := q.pkt
	if l.owner != p.Src {
		// Stale: ownership moved before the PutM was processed.
		h.Stats.StalePutM++
		l.wbEarlyDel(p.ReqID)
		h.ack(WBAck, p.Src, p, cycle)
		return
	}
	l.owner = -1
	h.Stats.Writebacks++
	if l.wbEarlyHas(p.ReqID) {
		l.wbEarlyDel(p.ReqID)
		l.memValid = true
		h.ack(WBAck, p.Src, p, cycle+uint64(h.cfg.DRAMLatency))
		h.drainParked(l, cycle+uint64(h.cfg.DRAMLatency))
		return
	}
	l.memValid = false
	l.expectWB = p.ReqID
}

// WBDataArrived consumes writeback data from the response network.
func (h *Home) WBDataArrived(p *noc.Packet, cycle uint64) {
	l := h.line(p.Addr)
	if l.expectWB == p.ReqID && l.expectWB != 0 {
		l.expectWB = 0
		l.memValid = true
		h.ack(WBAck, p.Src, p, cycle+uint64(h.cfg.DRAMLatency))
		h.drainParked(l, cycle+uint64(h.cfg.DRAMLatency))
		return
	}
	// The PutM has not been processed yet (or was stale): remember the data.
	l.wbEarlyAdd(p.ReqID)
}

// DoneArrived unblocks a line and dispatches the next queued transaction.
func (h *Home) DoneArrived(p *noc.Packet, cycle uint64) {
	l := h.line(p.Addr)
	if !l.busy {
		panic(fmt.Sprintf("directory: home %d got Done for idle line %#x", h.node, p.Addr))
	}
	h.unblock(l, cycle)
}

// unblock frees a line and dispatches the next queued transaction.
func (h *Home) unblock(l *line, cycle uint64) {
	l.busy = false
	if len(l.queue) > 0 {
		next := l.queue[0]
		l.queue = l.queue[1:]
		h.dispatch(l, next, cycle)
	}
}

// serveFromMemory schedules a DRAM read and DataD response, parking the
// request while writeback data is in flight.
func (h *Home) serveFromMemory(l *line, q qreq, cycle uint64, acks int) {
	if !l.memValid {
		l.parked = append(l.parked, q)
		// Remember the ack count in the parked packet's payload slot.
		q.pkt.Payload = acks
		return
	}
	p := q.pkt
	h.Stats.DRAMReads++
	resp := &RespInfo{ServedByCache: false, HomeArrive: q.arrive, Dispatch: cycle, AckCount: acks}
	data := &noc.Packet{
		ID: h.newID(), VNet: noc.UOResp, Src: h.node, Dst: p.Src,
		Kind: int(DataD), Addr: p.Addr, ReqID: p.ReqID,
		Flits: h.cfg.DataFlits, InjectCycle: cycle, Payload: resp,
	}
	h.queueSend(cycle+uint64(h.cfg.DRAMLatency), data, false, resp)
}

// drainParked serves requests that waited for writeback data.
func (h *Home) drainParked(l *line, cycle uint64) {
	parked := l.parked
	l.parked = nil
	for _, q := range parked {
		acks, _ := q.pkt.Payload.(int)
		q.pkt.Payload = nil
		h.serveFromMemory(l, q, cycle, acks)
	}
}

// grant sends a data-less completion (upgrade by the current owner).
func (h *Home) grant(p *noc.Packet, arrive, cycle, sendAt uint64, acks int) {
	resp := &RespInfo{ServedByCache: true, HomeArrive: arrive, Dispatch: cycle, DataSent: sendAt, AckCount: acks}
	g := &noc.Packet{
		ID: h.newID(), VNet: noc.UOResp, Src: h.node, Dst: p.Src,
		Kind: int(DataD), Addr: p.Addr, ReqID: p.ReqID, Flits: 1,
		InjectCycle: cycle, Payload: resp,
	}
	h.queueSend(sendAt, g, false, resp)
}

// forward sends an LPD Fwd to the owner.
func (h *Home) forward(kind Kind, owner int, p *noc.Packet, arrive, cycle uint64, acks int) {
	h.Stats.Forwards++
	fwd := &noc.Packet{
		ID: h.newID(), VNet: noc.UOResp, Src: h.node, Dst: owner,
		Kind: int(kind), Addr: p.Addr, ReqID: p.ReqID, Flits: 1, InjectCycle: cycle,
		Payload: &FwdInfo{Requester: p.Src, ReqID: p.ReqID, ReqInject: p.InjectCycle, HomeArrive: arrive, Dispatch: cycle, AckCount: acks},
	}
	h.queueSend(cycle, fwd, false, nil)
}

// probe broadcasts an HT-style probe on the request class and probes the
// home tile's own L2 locally.
func (h *Home) probe(kind Kind, p *noc.Packet, arrive, cycle uint64) {
	h.Stats.ProbeBcasts++
	info := &FwdInfo{Requester: p.Src, ReqID: p.ReqID, ReqInject: p.InjectCycle, HomeArrive: arrive, Dispatch: cycle}
	pr := &noc.Packet{
		ID: h.newID(), VNet: noc.GOReq, Src: h.node, SID: h.node, Broadcast: true,
		Kind: int(kind), Addr: p.Addr, ReqID: p.ReqID, Flits: 1, InjectCycle: cycle,
		Payload: info,
	}
	h.queueSend(cycle, pr, true, nil)
	// The broadcast cannot loop back to this node, so probe the co-located
	// L2 directly (it also closes the requester-is-home upgrade case).
	if h.LocalProbe != nil {
		local := *pr
		local.ID = h.newID()
		if !h.LocalProbe(&local, cycle) {
			panic("directory: local probe refused")
		}
	}
}

// invalidate sends an Inv to one sharer; the sharer acks the requester.
func (h *Home) invalidate(sharer int, p *noc.Packet, arrive, cycle uint64) {
	h.Stats.Invalidations++
	inv := &noc.Packet{
		ID: h.newID(), VNet: noc.UOResp, Src: h.node, Dst: sharer,
		Kind: int(Inv), Addr: p.Addr, ReqID: p.ReqID, Flits: 1, InjectCycle: cycle,
		Payload: &FwdInfo{Requester: p.Src, ReqID: p.ReqID, HomeArrive: arrive, Dispatch: cycle},
	}
	h.queueSend(cycle, inv, false, nil)
}

// ack sends a single-flit acknowledgement.
func (h *Home) ack(kind Kind, dst int, p *noc.Packet, at uint64) {
	a := &noc.Packet{
		ID: h.newID(), VNet: noc.UOResp, Src: h.node, Dst: dst,
		Kind: int(kind), Addr: p.Addr, ReqID: p.ReqID, Flits: 1, InjectCycle: at,
	}
	h.queueSend(at, a, false, nil)
}

// checkOverflow latches LPD pointer overflow.
func (h *Home) checkOverflow(l *line) {
	if h.cfg.Variant == LPD && l.sharers.Count() > h.cfg.Pointers {
		l.overflowed = true
	}
}

// queueSend schedules a packet injection.
func (h *Home) queueSend(at uint64, p *noc.Packet, isReq bool, resp *RespInfo) {
	if resp != nil && resp.DataSent == 0 {
		// Stamp on actual injection; see Evaluate.
		p.Payload = resp
	}
	h.sendQ = append(h.sendQ, pendingSend{readyAt: at, pkt: p, isReq: isReq})
}

// Evaluate fires due timers and drains the send queue.
func (h *Home) Evaluate(cycle uint64) {
	h.now = cycle
	if len(h.timers) > 0 {
		// Detach first: firing a timer (process → unblock → dispatch) may
		// schedule new timers. The spare scratch array is swapped in so the
		// detach reuses last cycle's backing storage instead of reallocating.
		due := h.timers
		h.timers = h.timerScratch[:0]
		for _, t := range due {
			if t.at <= cycle {
				h.process(t.l, t.q, cycle)
			} else {
				h.timers = append(h.timers, t)
			}
		}
		h.timerScratch = due[:0]
	}
	if len(h.sendQ) > 0 {
		rest := h.sendQ[:0]
		for _, s := range h.sendQ {
			if s.readyAt > cycle {
				rest = append(rest, s)
				continue
			}
			if ri, ok := s.pkt.Payload.(*RespInfo); ok && ri.DataSent == 0 {
				ri.DataSent = cycle
			}
			var ok bool
			if s.isReq {
				ok = h.nic.SendRequest(s.pkt)
			} else {
				ok = h.nic.SendResponse(s.pkt)
			}
			if !ok {
				rest = append(rest, s)
			}
		}
		h.sendQ = rest
	}
}

// Commit implements sim.Component.
func (h *Home) Commit(cycle uint64) {}

// Idle implements sim.Idler: the home's cycle work is firing due timers and
// injecting due sends; both are skippable while still in the future. A send
// whose latency elapsed but was refused by the NIC keeps the home active so
// it retries every cycle. Inbound transactions arrive through the node's NIC
// delivery, which runs inside the same scheduling unit.
func (h *Home) Idle() bool {
	for i := range h.timers {
		if h.timers[i].at <= h.now {
			return false
		}
	}
	for i := range h.sendQ {
		if h.sendQ[i].readyAt <= h.now {
			return false
		}
	}
	return true
}

// NextEventCycle implements sim.NextEventer: the earliest pending timer or
// scheduled send.
func (h *Home) NextEventCycle(cycle uint64) uint64 {
	next := uint64(0)
	for i := range h.timers {
		if a := h.timers[i].at; next == 0 || a < next {
			next = a
		}
	}
	for i := range h.sendQ {
		if r := h.sendQ[i].readyAt; next == 0 || r < next {
			next = r
		}
	}
	if next == 0 {
		return ^uint64(0)
	}
	if next <= cycle {
		return cycle + 1
	}
	return next
}
