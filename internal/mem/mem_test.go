package mem

import (
	"testing"

	"scorpio/internal/coherence"
	"scorpio/internal/noc"
)

type fakePort struct {
	resps []*noc.Packet
}

func (f *fakePort) SendRequest(p *noc.Packet) bool { panic("MC never sends requests") }
func (f *fakePort) SendResponse(p *noc.Packet) bool {
	f.resps = append(f.resps, p)
	return true
}

type fakeMap struct{ mc int }

func (m fakeMap) HomeMC(addr uint64) int { return m.mc }

type mcRig struct {
	mc    *Controller
	port  *fakePort
	cycle uint64
}

func newMCRig() *mcRig {
	port := &fakePort{}
	id := uint64(0)
	mc := New(0, DefaultConfig(), port, func() uint64 { id++; return id }, fakeMap{mc: 0})
	return &mcRig{mc: mc, port: port}
}

func (r *mcRig) step(n int) {
	for i := 0; i < n; i++ {
		r.mc.Evaluate(r.cycle)
		r.mc.Commit(r.cycle)
		r.cycle++
	}
}

func (r *mcRig) ordered(kind coherence.Kind, src int, addr, reqID uint64) {
	p := &noc.Packet{VNet: noc.GOReq, Src: src, SID: src, Broadcast: true, Flits: 1,
		Kind: int(kind), Addr: addr, ReqID: reqID}
	r.mc.ProcessOrdered(p, r.cycle, r.cycle)
}

func TestMemoryServesUnownedLine(t *testing.T) {
	r := newMCRig()
	r.ordered(coherence.GetS, 5, 0x100, 42)
	r.step(99)
	if len(r.port.resps) != 0 {
		t.Fatal("response before DRAM latency elapsed")
	}
	r.step(5)
	if len(r.port.resps) != 1 {
		t.Fatalf("responses = %d, want 1", len(r.port.resps))
	}
	resp := r.port.resps[0]
	if coherence.Kind(resp.Kind) != coherence.DataMem || resp.Dst != 5 || resp.ReqID != 42 {
		t.Fatalf("bad response %v", resp)
	}
}

func TestCacheOwnedLineNotServedByMemory(t *testing.T) {
	r := newMCRig()
	r.ordered(coherence.GetX, 3, 0x200, 1) // node 3 becomes owner
	r.step(120)
	if len(r.port.resps) != 1 {
		t.Fatal("the first GetX is memory-served")
	}
	if r.mc.OwnerOf(0x200) != 3 {
		t.Fatalf("owner = %d, want 3", r.mc.OwnerOf(0x200))
	}
	// A read while a cache owns the line: memory stays silent.
	n := len(r.port.resps)
	r.ordered(coherence.GetS, 7, 0x200, 2)
	r.step(150)
	if len(r.port.resps) != n {
		t.Fatal("memory must not respond while a cache owns the line")
	}
}

func TestForeignAddressesIgnored(t *testing.T) {
	port := &fakePort{}
	id := uint64(0)
	mc := New(0, DefaultConfig(), port, func() uint64 { id++; return id }, fakeMap{mc: 9})
	p := &noc.Packet{VNet: noc.GOReq, Src: 1, Kind: int(coherence.GetS), Addr: 5, ReqID: 1, Flits: 1, Broadcast: true}
	mc.ProcessOrdered(p, 0, 0)
	for c := uint64(0); c < 150; c++ {
		mc.Evaluate(c)
	}
	if len(port.resps) != 0 {
		t.Fatal("a port must ignore addresses homed elsewhere")
	}
}

func TestWritebackRoundTrip(t *testing.T) {
	r := newMCRig()
	r.ordered(coherence.GetX, 4, 0x300, 1)
	r.step(120)
	// Owner evicts: PutM ordered, then data arrives unordered.
	r.ordered(coherence.PutM, 4, 0x300, 9)
	if r.mc.OwnerOf(0x300) != -1 {
		t.Fatal("PutM from the owner must return ownership to memory")
	}
	// A read racing the writeback is held.
	r.ordered(coherence.GetS, 6, 0x300, 10)
	r.step(200)
	if got := r.mc.Stats.RacedRequests; got != 1 {
		t.Fatalf("raced requests = %d, want 1", got)
	}
	before := len(r.port.resps)
	r.mc.AcceptResponse(&noc.Packet{VNet: noc.UOResp, Src: 4, Kind: int(coherence.WBData), Addr: 0x300, ReqID: 9, Flits: 3}, r.cycle)
	r.step(250)
	// WBAck to the evictor plus DataMem to the raced reader.
	var ack, data int
	for _, p := range r.port.resps[before:] {
		switch coherence.Kind(p.Kind) {
		case coherence.WBAck:
			ack++
		case coherence.DataMem:
			data++
		}
	}
	if ack != 1 || data != 1 {
		t.Fatalf("ack=%d data=%d, want 1/1", ack, data)
	}
}

func TestStalePutMIgnored(t *testing.T) {
	r := newMCRig()
	r.ordered(coherence.GetX, 4, 0x400, 1)
	r.ordered(coherence.GetX, 5, 0x400, 2) // ownership moves 4 -> 5
	r.step(120)
	r.ordered(coherence.PutM, 4, 0x400, 3) // stale
	if r.mc.Stats.StalePutM != 1 {
		t.Fatalf("stale PutM not detected")
	}
	if r.mc.OwnerOf(0x400) != 5 {
		t.Fatal("stale PutM must not change ownership")
	}
}

func TestDirCacheMissPenaltyOnlyOnRefetch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalDirCacheBytes = 64 // tiny: 8 entries per 1 port
	cfg.Ports = 1
	port := &fakePort{}
	id := uint64(0)
	mc := New(0, cfg, port, func() uint64 { id++; return id }, fakeMap{mc: 0})
	cycle := uint64(0)
	serve := func(addr uint64) {
		p := &noc.Packet{VNet: noc.GOReq, Src: 1, SID: 1, Broadcast: true, Flits: 1,
			Kind: int(coherence.GetS), Addr: addr, ReqID: id + 500}
		mc.ProcessOrdered(p, cycle, cycle)
	}
	// First touches across a large footprint: no penalties.
	for a := uint64(0); a < 64; a++ {
		serve(a)
	}
	if mc.Stats.DirCacheMisses != 0 {
		t.Fatalf("first touches must not pay the miss penalty, got %d", mc.Stats.DirCacheMisses)
	}
	// Revisit an early line whose entry was evicted: penalty.
	serve(0)
	if mc.Stats.DirCacheMisses != 1 {
		t.Fatalf("refetch must count as a directory cache miss, got %d", mc.Stats.DirCacheMisses)
	}
}
