// Package mem models SCORPIO's memory-side agents: two dual-port Cadence
// DDR2 controllers attached at four edge routers (Table 1), replaced — as in
// the paper's own trace-driven RTL evaluation — by a functional,
// fully-pipelined fixed-latency DRAM model.
//
// Each controller snoops the globally ordered request stream for the
// addresses it homes and keeps the on-chip directory cache of Table 1 (one
// owner indication and one valid bit per tracked line): it supplies data
// exactly when no cache owns the line, and it sinks writebacks, holding
// requests that race with an in-flight writeback until the data arrives.
package mem

import (
	"fmt"

	"scorpio/internal/cache"
	"scorpio/internal/coherence"
	"scorpio/internal/noc"
	"scorpio/internal/stats"
)

// Config holds memory-controller parameters.
type Config struct {
	// DirAccessLatency is the on-chip directory cache access time (10
	// cycles, matching the GEMS model of Section 5).
	DirAccessLatency int
	// DRAMLatency is the fully pipelined off-chip access time (90 cycles,
	// the functional model of Section 5's RTL methodology).
	DRAMLatency int
	// DataFlits is the flit count of data responses.
	DataFlits int
	// TotalDirCacheBytes is the machine-wide directory cache budget, split
	// across the MC ports (the paper equalises 256KB across all three
	// protocols in Section 5.1; the chip itself carries 128KB).
	TotalDirCacheBytes int
	// EntryBytes is the footprint of one owner/valid record (2 bytes, like
	// HT's two-bit entries plus tag).
	EntryBytes int
	// DirMissPenalty is the extra off-chip latency when the directory cache
	// misses on a memory-served request.
	DirMissPenalty int
	// Ports is the number of MC attach points sharing the budget.
	Ports int
}

// DefaultConfig returns the paper's memory model parameters.
func DefaultConfig() Config {
	return Config{
		DirAccessLatency: 10, DRAMLatency: 90, DataFlits: 3,
		TotalDirCacheBytes: 256 * 1024, EntryBytes: 2, DirMissPenalty: 90, Ports: 4,
	}
}

// Stats counts memory activity.
type Stats struct {
	Reads          uint64 // DRAM line reads served
	Writebacks     uint64
	StalePutM      uint64
	RacedRequests  uint64 // requests held for an in-flight writeback
	DirCacheHits   uint64
	DirCacheMisses uint64
	ServiceLatency stats.Mean
}

// dirEntry is one directory-cache record: the owning tile (-1 when memory
// owns) and whether memory's copy is valid (false while a writeback's data
// is still in flight).
type dirEntry struct {
	owner   int
	valid   bool
	touched bool // served at least once (directory history exists)
}

// queuedReq is an ordered request held until a racing writeback completes.
type queuedReq struct {
	src     int
	reqID   uint64
	arrive  uint64
	ordered uint64
}

// pendingSend is a scheduled response injection.
type pendingSend struct {
	readyAt uint64
	pkt     *noc.Packet
	resp    *coherence.RespInfo
}

// Controller is one memory-controller port on the mesh.
type Controller struct {
	cfg    Config
	node   int
	nic    coherence.NetPort
	newID  func() uint64
	memMap coherence.MemMap
	dir    map[uint64]*dirEntry
	vals   map[uint64]uint64 // memory data values (one word per line)
	dirC   *cache.Array      // finite directory cache (latency only)
	held   map[uint64][]queuedReq
	sendQ  []pendingSend
	now    uint64 // cycle of the last Evaluate (idle-check reference)
	Stats  Stats
}

// New builds a memory-controller port at the given node.
func New(node int, cfg Config, n coherence.NetPort, newID func() uint64, mm coherence.MemMap) *Controller {
	if cfg.Ports <= 0 {
		cfg.Ports = 1
	}
	entries := cfg.TotalDirCacheBytes / cfg.Ports / cfg.EntryBytes
	if entries < 4 {
		entries = 4
	}
	// Pre-size the bookkeeping maps to the directory-cache footprint (the
	// working set they converge to) so steady-state growth rehashes are rare.
	return &Controller{
		cfg: cfg, node: node, nic: n, newID: newID, memMap: mm,
		dir:  make(map[uint64]*dirEntry, entries),
		vals: make(map[uint64]uint64, entries),
		dirC: cache.NewArrayBytes(entries*cfg.EntryBytes, cfg.EntryBytes, 4),
		held: make(map[uint64][]queuedReq, 16),
	}
}

// Node returns the attach node.
func (c *Controller) Node() int { return c.node }

// entry returns the directory record for a homed line, creating the default
// (memory owns, valid) on first touch.
func (c *Controller) entry(addr uint64) *dirEntry {
	e, ok := c.dir[addr]
	if !ok {
		e = &dirEntry{owner: -1, valid: true}
		c.dir[addr] = e
	}
	return e
}

// homed reports whether this port is responsible for the address.
func (c *Controller) homed(addr uint64) bool { return c.memMap.HomeMC(addr) == c.node }

// CanAcceptOrdered implements the split agent interface; the memory path is
// fully pipelined.
func (c *Controller) CanAcceptOrdered(cycle uint64) bool { return true }

// ProcessOrdered snoops one globally ordered request.
func (c *Controller) ProcessOrdered(p *noc.Packet, arrive, cycle uint64) bool {
	if !c.homed(p.Addr) {
		return true
	}
	e := c.entry(p.Addr)
	switch coherence.Kind(p.Kind) {
	case coherence.GetS:
		if e.owner >= 0 {
			return true // an on-chip owner supplies the data
		}
		c.serveOrHold(p.Src, p.ReqID, p.Addr, e, arrive, cycle)
	case coherence.GetX:
		memoryServes := e.owner < 0
		if memoryServes {
			c.serveOrHold(p.Src, p.ReqID, p.Addr, e, arrive, cycle)
		}
		// The writer becomes the dirty owner either way.
		e.owner = p.Src
	case coherence.PutM:
		if e.owner != p.Src {
			c.Stats.StalePutM++
			return true // stale writeback: ownership already moved on
		}
		e.owner = -1
		e.valid = false // data still in flight on the response network
	}
	return true
}

// serveOrHold issues a DRAM read, or parks the request while the line's
// writeback data is still in flight.
func (c *Controller) serveOrHold(src int, reqID uint64, addr uint64, e *dirEntry, arrive, cycle uint64) {
	if !e.valid {
		c.held[addr] = append(c.held[addr], queuedReq{src: src, reqID: reqID, arrive: arrive, ordered: cycle})
		c.Stats.RacedRequests++
		return
	}
	c.serve(src, reqID, addr, arrive, cycle, cycle)
}

// serve schedules a DataMem response after the directory and DRAM latencies;
// re-fetching an evicted directory-cache entry adds an off-chip access (a
// first touch allocates the entry with the data fetch).
func (c *Controller) serve(src int, reqID uint64, addr uint64, arrive, ordered, start uint64) {
	lat := uint64(c.cfg.DirAccessLatency + c.cfg.DRAMLatency)
	e := c.entry(addr)
	if c.dirC.Get(addr) == nil {
		c.dirC.Insert(addr, 0)
		if e.touched {
			c.Stats.DirCacheMisses++
			lat += uint64(c.cfg.DirMissPenalty)
		} else {
			c.Stats.DirCacheHits++
		}
	} else {
		c.Stats.DirCacheHits++
	}
	e.touched = true
	resp := &coherence.RespInfo{
		Value:         c.vals[addr],
		ServedByCache: false,
		ReqArrive:     arrive,
		ReqOrdered:    ordered,
		DirAccess:     (start - ordered) + lat,
		Service:       uint64(c.cfg.DRAMLatency),
	}
	pkt := &noc.Packet{
		ID: c.newID(), VNet: noc.UOResp, Src: c.node, Dst: src,
		Kind: int(coherence.DataMem), Addr: addr, ReqID: reqID,
		Flits: c.cfg.DataFlits, InjectCycle: ordered, Payload: resp,
	}
	c.sendQ = append(c.sendQ, pendingSend{readyAt: start + lat, pkt: pkt, resp: resp})
	c.Stats.Reads++
	c.Stats.ServiceLatency.Observe(float64(lat))
}

// AcceptResponse consumes writeback data arriving on the response network.
func (c *Controller) AcceptResponse(p *noc.Packet, cycle uint64) bool {
	if coherence.Kind(p.Kind) != coherence.WBData {
		panic(fmt.Sprintf("mem: node %d got unexpected response kind %d", c.node, p.Kind))
	}
	e := c.entry(p.Addr)
	e.valid = true
	if ri, ok := p.Payload.(*coherence.RespInfo); ok {
		c.vals[p.Addr] = ri.Value
	}
	c.Stats.Writebacks++
	// Acknowledge the writeback after the DRAM write completes.
	ack := &noc.Packet{
		ID: c.newID(), VNet: noc.UOResp, Src: c.node, Dst: p.Src,
		Kind: int(coherence.WBAck), Addr: p.Addr, ReqID: p.ReqID, Flits: 1, InjectCycle: cycle,
	}
	c.sendQ = append(c.sendQ, pendingSend{readyAt: cycle + uint64(c.cfg.DRAMLatency), pkt: ack})
	// Release requests that raced the writeback.
	if held := c.held[p.Addr]; len(held) > 0 {
		delete(c.held, p.Addr)
		for _, q := range held {
			c.serve(q.src, q.reqID, p.Addr, q.arrive, q.ordered, cycle+uint64(c.cfg.DRAMLatency))
		}
	}
	return true
}

// Evaluate injects scheduled responses whose latency elapsed.
func (c *Controller) Evaluate(cycle uint64) {
	c.now = cycle
	rest := c.sendQ[:0]
	for _, s := range c.sendQ {
		if s.readyAt <= cycle {
			if s.resp != nil && s.resp.RespSent == 0 {
				s.resp.RespSent = cycle
			}
			if !c.nic.SendResponse(s.pkt) {
				rest = append(rest, s)
			}
			continue
		}
		rest = append(rest, s)
	}
	c.sendQ = rest
}

// Commit implements sim.Component.
func (c *Controller) Commit(cycle uint64) {}

// Idle implements sim.Idler: the DRAM model is pure scheduled sends, so the
// controller is skippable whenever every queued send is still in the future
// (a send whose latency elapsed but was rejected by the NIC must retry every
// cycle). Held raced requests are released by AcceptResponse, which runs
// inside this unit.
func (c *Controller) Idle() bool {
	for i := range c.sendQ {
		if c.sendQ[i].readyAt <= c.now {
			return false
		}
	}
	return true
}

// NextEventCycle implements sim.NextEventer: the earliest scheduled send.
func (c *Controller) NextEventCycle(cycle uint64) uint64 {
	next := uint64(0)
	for i := range c.sendQ {
		if r := c.sendQ[i].readyAt; next == 0 || r < next {
			next = r
		}
	}
	if next == 0 {
		return ^uint64(0)
	}
	if next <= cycle {
		return cycle + 1
	}
	return next
}

// OwnerOf reports the directory's view of a line's owner (-1 = memory) for
// tests.
func (c *Controller) OwnerOf(addr uint64) int {
	if e, ok := c.dir[addr]; ok {
		return e.owner
	}
	return -1
}
