package noc

// FlitPool is a free-list recycler for Flit objects. Cycle-level NoC
// simulation lives or dies on per-flit cost: every injected packet
// serializes into flits and every router traversal clones one (a broadcast
// forks at each row/column junction of the XY multicast tree, so one snoop
// fans out into dozens of flit copies). Recycling them removes the dominant
// steady-state heap churn from the simulate loop.
//
// Ownership rule: each pool belongs to exactly one component (a router, a
// NIC, a baseline endpoint, a traffic node) and is only touched inside that
// component's Evaluate/Commit. Flits migrate freely between owners — a flit
// drawn from router A's pool travels a link and is later released into
// router B's (or a NIC's) pool — which is race-free under the parallel
// kernel because allocation and release both happen in the owning
// component's own phase, and makes every pool self-balancing at its owner's
// local flit rate.
//
// Reset invariant: Put zeroes every field before the flit re-enters the free
// list, and Get/Clone overwrite every field they hand out, so a recycled
// flit is bit-identical to a freshly allocated one. This is what keeps the
// parallel-determinism guarantee intact with pooling enabled (see
// TestFlitPoolResetInvariant and DESIGN.md §7).
type FlitPool struct {
	free []*Flit
}

// Get returns a flit initialised exactly like NewFlit(p, seq, vc), reusing a
// recycled flit when one is available.
func (fp *FlitPool) Get(p *Packet, seq, vc int) *Flit {
	f := fp.take()
	if f == nil {
		return NewFlit(p, seq, vc)
	}
	f.Pkt, f.Seq, f.inVC = p, seq, vc
	return f
}

// Clone returns a field-for-field copy of src (one multicast branch),
// reusing a recycled flit when one is available.
func (fp *FlitPool) Clone(src *Flit) *Flit {
	f := fp.take()
	if f == nil {
		c := *src
		return &c
	}
	*f = *src
	return f
}

// Put releases a flit into the free list after its last use, resetting every
// field so no packet state can leak into a later reuse. Put(nil) is a no-op.
func (fp *FlitPool) Put(f *Flit) {
	if f == nil {
		return
	}
	*f = Flit{}
	fp.free = append(fp.free, f)
}

// Size reports the number of flits currently parked in the free list
// (diagnostics and tests).
func (fp *FlitPool) Size() int { return len(fp.free) }

// Prime pre-fills the pool with n fresh flits and reserves slack capacity in
// the free list. A pool's deficit is bounded by its owner's in-flight flits,
// but the first excursions to that bound allocate; harnesses that must be
// strictly allocation-free in steady state (TestMeshSteadyStateAllocs) prime
// the pools past the bound up front instead.
func (fp *FlitPool) Prime(n int) {
	if cap(fp.free)-len(fp.free) < 2*n {
		free := make([]*Flit, len(fp.free), len(fp.free)+2*n)
		copy(free, fp.free)
		fp.free = free
	}
	for i := 0; i < n; i++ {
		fp.free = append(fp.free, &Flit{})
	}
}

// TakeFree detaches one recycled (already zeroed) flit so the caller can
// return it upstream as a Credit carcass; nil when the pool is empty.
func (fp *FlitPool) TakeFree() *Flit { return fp.take() }

// take pops one recycled flit, or returns nil when the free list is empty.
func (fp *FlitPool) take() *Flit {
	n := len(fp.free)
	if n == 0 {
		return nil
	}
	f := fp.free[n-1]
	fp.free[n-1] = nil
	fp.free = fp.free[:n-1]
	return f
}
