package noc

// Credit is the flow-control return channel token: the downstream buffer
// freed one slot of the given virtual channel, and, when FreeVC is set, the
// tail flit departed so the VC itself may be reallocated to a new packet.
type Credit struct {
	VNet   VNet
	VC     int
	FreeVC bool
}

// Link is a one-cycle point-to-point channel between an upstream output port
// and a downstream input port. Flits flow downstream and credits flow back
// upstream; both take exactly one cycle. A Link is a kernel component: values
// written during a cycle's evaluate phase become visible to the other end in
// the next cycle.
type Link struct {
	flit        *Flit
	nextFlit    *Flit
	credits     []Credit
	nextCredits []Credit
}

// NewLink returns an idle link.
func NewLink() *Link { return &Link{} }

// Send places a flit on the link; it arrives downstream next cycle. At most
// one flit may be sent per cycle.
func (l *Link) Send(f *Flit) {
	if l.nextFlit != nil {
		panic("noc: two flits sent on one link in the same cycle")
	}
	l.nextFlit = f
}

// Flit returns the flit that arrived this cycle, or nil.
func (l *Link) Flit() *Flit { return l.flit }

// SendCredit returns a credit upstream; it arrives next cycle.
func (l *Link) SendCredit(c Credit) {
	l.nextCredits = append(l.nextCredits, c)
}

// Credits returns the credits that arrived this cycle.
func (l *Link) Credits() []Credit { return l.credits }

// Evaluate implements sim.Component (links have no combinational work).
func (l *Link) Evaluate(cycle uint64) {}

// Commit latches the pending flit and credits for next-cycle delivery.
func (l *Link) Commit(cycle uint64) {
	l.flit = l.nextFlit
	l.nextFlit = nil
	l.credits = l.nextCredits
	l.nextCredits = nil
}
