package noc

import "scorpio/internal/sim"

// Credit is the flow-control return channel token: the downstream buffer
// freed one slot of the given virtual channel, and, when FreeVC is set, the
// tail flit departed so the VC itself may be reallocated to a new packet.
//
// Credits used to carry a "carcass" — a consumed *Flit riding back upstream
// to rebalance the sender's free-list pool. The arena/value model (see Arena)
// removed the need: flits cross links by value and buffered flits live in
// the receiving router's own slab, so there is no cross-component object
// flow to balance and a credit is pure flow-control state again.
type Credit struct {
	VNet   VNet
	VC     int
	FreeVC bool
}

// noStamp marks an unwritten link slot (cycle numbers start at 0).
const noStamp = ^uint64(0)

// Link is a one-cycle point-to-point channel between an upstream output port
// and a downstream input port. Flits flow downstream and credits flow back
// upstream; both take exactly one cycle.
//
// A Link is passive — it is not a kernel component. Each direction is a
// cycle-stamped double mailbox: a value written at cycle c lands in slot c&1
// stamped c, and a read at cycle c returns slot (c-1)&1 only if its stamp is
// c-1. The parity split means a same-cycle write never clobbers the value
// being read, giving exactly the latch-one-cycle semantics the old
// component-based link provided, at zero per-cycle cost for quiet links.
//
// Flits cross the link by value: Send copies the 32-byte flit into the
// mailbox slot and Flit returns a pointer into that slot. The pointer is
// valid only during the reading cycle's evaluate phase — the slot is next
// overwritten at cycle+1, after the epoch barrier — so a consumer that keeps
// a flit across cycles must copy the value out (router input buffers copy
// into their arena; the NIC's response reassembly rings hold values).
//
// Links are also the activity engine's wake edges: a flit write wakes the
// downstream reader's scheduling unit for the arrival cycle, a credit write
// wakes the upstream reader's. Readers that never park may leave the wake
// hooks nil.
//
// The struct is padded to a multiple of the cache-line size: adjacent links
// in the mesh belong to different shards under the parallel kernel, and the
// padding keeps one shard's mailbox writes from invalidating a neighbour
// shard's line (false sharing).
type Link struct {
	buf    [2]Flit
	stamp  [2]uint64
	cred   [2][]Credit
	cstamp [2]uint64

	// flitWake is the downstream (flit-reading) unit's mailbox; credWake the
	// upstream (credit-reading) unit's. Nil-safe.
	flitWake *sim.Activity
	credWake *sim.Activity

	_ [32]byte // pad 160 → 192 bytes (3 cache lines)
}

// NewLink returns an idle link. The credit slices are presized to the
// largest burst a port produces in one cycle (one credit per VC dequeue,
// bounded by the handful of VCs behind a port), so the credit path never
// allocates — not even the slow high-water trickle a near-idle mesh would
// otherwise pay for thousands of cycles.
func NewLink() *Link {
	return &Link{
		stamp:  [2]uint64{noStamp, noStamp},
		cstamp: [2]uint64{noStamp, noStamp},
		cred:   [2][]Credit{make([]Credit, 0, 8), make([]Credit, 0, 8)},
	}
}

// SetFlitWake wires the scheduling unit woken by flit arrivals (the
// downstream reader).
func (l *Link) SetFlitWake(a *sim.Activity) { l.flitWake = a }

// SetCreditWake wires the scheduling unit woken by credit arrivals (the
// upstream reader).
func (l *Link) SetCreditWake(a *sim.Activity) { l.credWake = a }

// Send places a flit on the link during cycle's evaluate phase; it arrives
// downstream next cycle. At most one flit may be sent per cycle.
func (l *Link) Send(f Flit, cycle uint64) {
	s := cycle & 1
	if l.stamp[s] == cycle {
		panic("noc: two flits sent on one link in the same cycle")
	}
	l.buf[s] = f
	l.stamp[s] = cycle
	l.flitWake.Wake(cycle+1, sim.WakeFlit)
}

// Flit returns the flit that arrived this cycle, or nil. The pointer aliases
// the mailbox slot and is valid only for the current cycle's evaluate phase;
// copy the value to keep it longer.
func (l *Link) Flit(cycle uint64) *Flit {
	if cycle == 0 {
		return nil
	}
	if s := (cycle - 1) & 1; l.stamp[s] == cycle-1 {
		return &l.buf[s]
	}
	return nil
}

// SendCredit returns a credit upstream during cycle's evaluate phase; it
// arrives next cycle. The two credit slices are reused (truncated on the
// first credit of a cycle), keeping the credit path allocation-free once
// warmed.
func (l *Link) SendCredit(c Credit, cycle uint64) {
	s := cycle & 1
	if l.cstamp[s] != cycle {
		l.cred[s] = l.cred[s][:0]
		l.cstamp[s] = cycle
	}
	l.cred[s] = append(l.cred[s], c)
	l.credWake.Wake(cycle+1, sim.WakeCredit)
}

// Credits returns the credits that arrived this cycle (nil when none).
func (l *Link) Credits(cycle uint64) []Credit {
	if cycle == 0 {
		return nil
	}
	if s := (cycle - 1) & 1; l.cstamp[s] == cycle-1 {
		return l.cred[s]
	}
	return nil
}

// FlitPendingAt reports whether a flit written during cycle is awaiting its
// next-cycle read — the downstream reader's "input arriving" idle check.
func (l *Link) FlitPendingAt(cycle uint64) bool {
	return l.stamp[cycle&1] == cycle
}

// CreditsPendingAt reports whether credits written during cycle are awaiting
// their next-cycle read — the upstream reader's idle check.
func (l *Link) CreditsPendingAt(cycle uint64) bool {
	return l.cstamp[cycle&1] == cycle
}
