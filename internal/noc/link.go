package noc

// Credit is the flow-control return channel token: the downstream buffer
// freed one slot of the given virtual channel, and, when FreeVC is set, the
// tail flit departed so the VC itself may be reallocated to a new packet.
//
// Carcass optionally carries a consumed flit object back to the sender for
// recycling. Without it, flit pools drift: a broadcast forks in-network
// (flits created in router pools) but every copy is destroyed at a NIC, so
// router pools run a permanent deficit while NIC pools accumulate surplus.
// Riding the credit path fixes the imbalance exactly — every flit a
// component sends produces exactly one downstream credit, so returns match
// draws one-for-one and each pool's deficit is bounded by its in-flight
// inventory. The receiver owns the carcass once the credit is latched and
// releases it into its own pool via FlitPool.Put (which zeroes it); a nil
// carcass (consumer's pool momentarily empty) is harmless — the balance is
// restored by a later credit.
type Credit struct {
	VNet    VNet
	VC      int
	FreeVC  bool
	Carcass *Flit
}

// Link is a one-cycle point-to-point channel between an upstream output port
// and a downstream input port. Flits flow downstream and credits flow back
// upstream; both take exactly one cycle. A Link is a kernel component: values
// written during a cycle's evaluate phase become visible to the other end in
// the next cycle.
type Link struct {
	flit        *Flit
	nextFlit    *Flit
	credits     []Credit
	nextCredits []Credit
}

// NewLink returns an idle link.
func NewLink() *Link { return &Link{} }

// Send places a flit on the link; it arrives downstream next cycle. At most
// one flit may be sent per cycle.
func (l *Link) Send(f *Flit) {
	if l.nextFlit != nil {
		panic("noc: two flits sent on one link in the same cycle")
	}
	l.nextFlit = f
}

// Flit returns the flit that arrived this cycle, or nil.
func (l *Link) Flit() *Flit { return l.flit }

// SendCredit returns a credit upstream; it arrives next cycle.
func (l *Link) SendCredit(c Credit) {
	l.nextCredits = append(l.nextCredits, c)
}

// Credits returns the credits that arrived this cycle.
func (l *Link) Credits() []Credit { return l.credits }

// Evaluate implements sim.Component (links have no combinational work).
func (l *Link) Evaluate(cycle uint64) {}

// Commit latches the pending flit and credits for next-cycle delivery. The
// two credit slices are double-buffered (swapped, not reallocated): the
// upstream end only reads the latched slice while the downstream end only
// appends to the pending one, so reusing last cycle's backing array is safe
// and keeps the per-cycle credit path allocation-free.
func (l *Link) Commit(cycle uint64) {
	l.flit = l.nextFlit
	l.nextFlit = nil
	l.credits, l.nextCredits = l.nextCredits, l.credits[:0]
}
