package noc

import (
	"reflect"
	"testing"
)

// TestFlitPoolResetInvariant pins the property pooling correctness rests on:
// a flit drawn from a pool that recycled a heavily-used flit is bit-identical
// to a freshly allocated one. If a new field is ever added to Flit without
// being covered by Put's reset (Put assigns the zero Flit, so any new field
// is covered automatically unless Put is rewritten), this test fails.
func TestFlitPoolResetInvariant(t *testing.T) {
	dirty := &Packet{ID: 42, VNet: GOReq, Src: 3, Dst: 7, Flits: 1}
	var fp FlitPool

	f := fp.Get(dirty, 0, 2)
	// Smear every internal field as a router would.
	f.arrival = 999
	f.outPorts = 0x1f
	f.bypassCandidate = true
	f.lastPort = East
	f.lastDstVC = 3
	fp.Put(f)
	if fp.Size() != 1 {
		t.Fatalf("pool size = %d after Put, want 1", fp.Size())
	}

	clean := &Packet{ID: 1, VNet: UOResp, Src: 0, Dst: 1, Flits: 2}
	recycled := fp.Get(clean, 1, 0)
	fresh := NewFlit(clean, 1, 0)
	if !reflect.DeepEqual(recycled, fresh) {
		t.Fatalf("recycled flit %+v differs from fresh flit %+v", recycled, fresh)
	}

	// Clone must also fully overwrite a recycled flit.
	src := NewFlit(dirty, 0, 1)
	src.arrival = 7
	src.outPorts = 0x03
	fp.Put(recycled)
	cloned := fp.Clone(src)
	if !reflect.DeepEqual(cloned, src) {
		t.Fatalf("pooled clone %+v differs from source %+v", cloned, src)
	}

	// Put must zero every field so no packet state is retained by the free
	// list (the Pkt pointer in particular must not keep packets alive).
	fp.Put(cloned)
	parked := fp.free[len(fp.free)-1]
	if !reflect.DeepEqual(*parked, Flit{}) {
		t.Fatalf("parked flit %+v not zeroed", *parked)
	}

	// Put(nil) is a no-op.
	n := fp.Size()
	fp.Put(nil)
	if fp.Size() != n {
		t.Fatal("Put(nil) changed pool size")
	}
}

// TestFlitPoolReuses verifies Get/Clone actually draw from the free list
// instead of allocating.
func TestFlitPoolReuses(t *testing.T) {
	var fp FlitPool
	p := &Packet{Flits: 1}
	f := fp.Get(p, 0, 0)
	fp.Put(f)
	g := fp.Get(p, 0, 0)
	if f != g {
		t.Fatal("Get did not reuse the recycled flit")
	}
	fp.Put(g)
	c := fp.Clone(NewFlit(p, 0, 0))
	if c != g {
		t.Fatal("Clone did not reuse the recycled flit")
	}
}
