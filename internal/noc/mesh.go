package noc

import (
	"fmt"
	"strings"

	"scorpio/internal/obs"
	"scorpio/internal/obs/audit"
	"scorpio/internal/sim"
)

// Mesh is the assembled main network: k×k routers, the links between them,
// and per-node injection/ejection links where network interface controllers
// attach.
type Mesh struct {
	cfg       Config
	routers   []*Router
	inject    []*Link
	eject     []*Link
	esids     []ESIDProvider
	nextPktID uint64
}

// NewMesh builds the mesh described by cfg.
func NewMesh(cfg Config) (*Mesh, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Mesh{
		cfg:    cfg,
		inject: make([]*Link, cfg.Nodes()),
		eject:  make([]*Link, cfg.Nodes()),
		esids:  make([]ESIDProvider, cfg.Nodes()),
	}
	esid := func(node int) (int, uint64, bool) {
		if p := m.esids[node]; p != nil {
			return p.ExpectedSID()
		}
		return 0, 0, false
	}
	for id := 0; id < cfg.Nodes(); id++ {
		m.routers = append(m.routers, newRouter(cfg, id, esid))
	}
	newLink := func() *Link { return NewLink() }
	// Local ports.
	for id, r := range m.routers {
		m.inject[id] = newLink()
		m.eject[id] = newLink()
		r.attach(Local, m.inject[id], m.eject[id])
		r.downstream[Local] = int32(id)
	}
	// Mesh channels: one link per direction per neighbour pair.
	for id, r := range m.routers {
		x, y := cfg.Coord(id)
		if x+1 < cfg.Width {
			e := m.routers[cfg.NodeAt(x+1, y)]
			ab, ba := newLink(), newLink()
			r.attach(East, ba, ab)
			e.attach(West, ab, ba)
			r.downstream[East] = int32(e.id)
			e.downstream[West] = int32(r.id)
		}
		if y+1 < cfg.Height {
			s := m.routers[cfg.NodeAt(x, y+1)]
			ab, ba := newLink(), newLink()
			r.attach(South, ba, ab)
			s.attach(North, ab, ba)
			r.downstream[South] = int32(s.id)
			s.downstream[North] = int32(r.id)
		}
	}
	// Broadcast-tree coverage per output port, for reserved-VC eligibility.
	for _, r := range m.routers {
		for p := Port(0); p < NumPorts; p++ {
			if r.outLink[p] == nil {
				continue
			}
			if p == Local {
				r.coverage[p] = []int{r.id}
			} else {
				r.coverage[p] = m.coverageFrom(int(r.downstream[p]), p.opposite())
			}
		}
	}
	return m, nil
}

// coverageFrom returns the nodes a broadcast branch delivers to when it
// enters router s through the given port, following the XY multicast tree.
func (m *Mesh) coverageFrom(s int, entry Port) []int {
	r := m.routers[s]
	mask := r.broadcastMask(entry)
	var out []int
	if mask&portMask(Local) != 0 {
		out = append(out, s)
	}
	for p := Port(North); p < NumPorts; p++ {
		if mask&portMask(p) == 0 {
			continue
		}
		out = append(out, m.coverageFrom(int(r.downstream[p]), p.opposite())...)
	}
	return out
}

// Expecting reports whether any node other than exclude is currently waiting
// for the (sid, seq) request; NICs use it for reserved-VC eligibility at the
// injection port (a fresh broadcast covers every node but its source).
func (m *Mesh) Expecting(sid int, seq uint64, exclude int) bool {
	for node, p := range m.esids {
		if node == exclude || p == nil {
			continue
		}
		if s, q, ok := p.ExpectedSID(); ok && s == sid && q == seq {
			return true
		}
	}
	return false
}

// Config returns the mesh's configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Register adds every router to the kernel and wires the links' wake edges:
// each link's readers are woken by writes so routers can park when quiescent.
// Links themselves are passive mailboxes, not components (see Link). Each
// router's scheduling unit is tagged with its node ID as the topology tile
// so the kernel's sharder can seed spatially contiguous shards (see
// sim.Activity.SetTile).
func (m *Mesh) Register(k *sim.Kernel) {
	for _, r := range m.routers {
		a := k.Register(r)
		a.SetTile(r.id)
		for p := Port(0); p < NumPorts; p++ {
			if il := r.inLink[p]; il != nil {
				il.SetFlitWake(a)
			}
			if ol := r.outLink[p]; ol != nil {
				ol.SetCreditWake(a)
			}
		}
	}
}

// AttachESID registers the node's NIC as the source of ESID values for the
// reserved-VC eligibility checks of surrounding routers.
func (m *Mesh) AttachESID(node int, p ESIDProvider) {
	m.esids[node] = p
}

// InjectLink returns the link a node's NIC sends flits on (into the router's
// local input port). Credits for the NIC flow back on the same link.
func (m *Mesh) InjectLink(node int) *Link { return m.inject[node] }

// EjectLink returns the link a node's NIC receives flits on (from the
// router's local output port).
func (m *Mesh) EjectLink(node int) *Link { return m.eject[node] }

// Router returns the router at the given node (for stats and tests).
func (m *Mesh) Router(node int) *Router { return m.routers[node] }

// ArenaDigest folds every router's arena free-list digest into one value
// (FNV-1a over the per-router digests, in node order). Two runs that
// performed identical per-router alloc/free sequences — the handle-level
// determinism property — have equal digests regardless of worker count or
// idle-skip mode.
func (m *Mesh) ArenaDigest() uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, r := range m.routers {
		d := r.arena.StateDigest()
		for i := 0; i < 8; i++ {
			h ^= d & 0xff
			h *= prime64
			d >>= 8
		}
	}
	return h
}

// ArenaLive sums the live (allocated, not yet freed) arena handles across
// all routers — the mesh-wide leak gauge: it must equal BufferedFlits at all
// times, and zero once the network drains.
func (m *Mesh) ArenaLive() int {
	n := 0
	for _, r := range m.routers {
		n += r.arena.Live()
	}
	return n
}

// NextPacketID issues a unique packet ID.
func (m *Mesh) NextPacketID() uint64 {
	m.nextPktID++
	return m.nextPktID
}

// SetTracer attaches a lifecycle tracer to every router (nil disables).
func (m *Mesh) SetTracer(t *obs.Tracer) {
	for _, r := range m.routers {
		r.SetTracer(t)
	}
}

// SetAuditor attaches the online auditor to every router (nil disables).
func (m *Mesh) SetAuditor(a *audit.Auditor) {
	for _, r := range m.routers {
		r.SetAuditor(a)
	}
}

// BufferedFlits counts the flits currently held in router input VCs across
// the mesh — the watchdog's "packets in flight" signal. It sums the routers'
// incrementally-maintained occupancy counters, so polling it every watchdog
// or metrics interval costs O(routers) instead of a full VC-ring rescan.
func (m *Mesh) BufferedFlits() int {
	n := 0
	for _, r := range m.routers {
		n += r.buffered
	}
	return n
}

// Snapshot renders the full network state for stall diagnosis: every
// occupied input VC's head flit with its age, and the credit state of the
// output port it is waiting on. The oldest buffered flit (the likeliest
// victim of the root cause) is named first as the culprit.
func (m *Mesh) Snapshot(now uint64) string {
	var b strings.Builder
	type stuck struct {
		r  *Router
		p  Port
		v  VNet
		vc int
		f  *Flit
	}
	var oldest *stuck
	total := 0
	for _, r := range m.routers {
		r.ForEachBufferedFlit(func(p Port, v VNet, vc int, f *Flit) {
			total++
			if !f.IsHead() {
				return
			}
			s := &stuck{r: r, p: p, v: v, vc: vc, f: f}
			if oldest == nil || f.arrival < oldest.f.arrival {
				oldest = s
			}
		})
	}
	fmt.Fprintf(&b, "mesh snapshot @cycle %d: %d flits buffered\n", now, total)
	if oldest != nil {
		fmt.Fprintf(&b, "culprit: router %d port %s %s vc %d holds %s (waiting %d cycles, pending ports %05b)\n",
			oldest.r.id, oldest.p, oldest.v, oldest.vc, oldest.f.Pkt, now-oldest.f.arrival, oldest.f.outPorts)
		for o := Port(0); o < NumPorts; o++ {
			if oldest.f.outPorts&portMask(o) == 0 {
				continue
			}
			if tr, ok := oldest.r.OutputState(o); ok {
				fmt.Fprintf(&b, "culprit wants port %s:", o)
				for i := 0; i < m.cfg.TotalVCs(oldest.f.Pkt.VNet); i++ {
					fmt.Fprintf(&b, " vc%d[credits=%d busy=%t]", i, tr.Credits(oldest.f.Pkt.VNet, i), tr.Busy(oldest.f.Pkt.VNet, i))
				}
				b.WriteByte('\n')
			}
		}
	}
	// Full per-router VC occupancy with head flits and output credit state.
	for _, r := range m.routers {
		headerDone := false
		r.ForEachBufferedFlit(func(p Port, v VNet, vc int, f *Flit) {
			if !headerDone {
				fmt.Fprintf(&b, "router %d:\n", r.id)
				headerDone = true
			}
			fmt.Fprintf(&b, "  in %s %s vc%d: %s seq=%d age=%d pending=%05b\n",
				p, v, vc, f.Pkt, f.Seq, now-f.arrival, f.outPorts)
		})
		if !headerDone {
			continue
		}
		for o := Port(0); o < NumPorts; o++ {
			tr, ok := r.OutputState(o)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "  out %s credits:", o)
			for v := VNet(0); v < NumVNets; v++ {
				for i := 0; i < m.cfg.TotalVCs(v); i++ {
					fmt.Fprintf(&b, " %s/vc%d=%d", v, i, tr.Credits(v, i))
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Stats sums router statistics across the mesh.
func (m *Mesh) Stats() RouterStats {
	var s RouterStats
	for _, r := range m.routers {
		s.FlitsAccepted += r.Stats.FlitsAccepted
		s.FlitsRouted += r.Stats.FlitsRouted
		s.Bypasses += r.Stats.Bypasses
		s.Forks += r.Stats.Forks
		s.BufferReads += r.Stats.BufferReads
		s.BufferWrites += r.Stats.BufferWrites
		s.AllocStalls += r.Stats.AllocStalls
	}
	return s
}

// CheckInvariants panics with a description if any router's internal state
// violates the credit or buffer-occupancy invariants; tests call it after
// runs.
func (m *Mesh) CheckInvariants() error {
	for _, r := range m.routers {
		for p := Port(0); p < NumPorts; p++ {
			if r.inLink[p] == nil {
				continue
			}
			for v := VNet(0); v < NumVNets; v++ {
				for i := 0; i < m.cfg.TotalVCs(v); i++ {
					fv := r.flatVC(p, v, i)
					if int(r.qlen[fv]) > m.cfg.BufDepthFor(v) {
						return fmt.Errorf("router %d port %s %s vc %d holds %d flits (cap %d)", r.id, p, v, i, r.qlen[fv], m.cfg.BufDepthFor(v))
					}
				}
			}
			tr, _ := r.OutputState(p)
			for v := VNet(0); v < NumVNets; v++ {
				for i := 0; i < m.cfg.TotalVCs(v); i++ {
					if c := tr.Credits(v, i); c < 0 || c > m.cfg.BufDepthFor(v) {
						return fmt.Errorf("router %d port %s %s vc %d credit %d out of range", r.id, p, v, i, c)
					}
				}
			}
		}
		// Arena leak invariant: a handle is live exactly while its flit sits
		// in an input VC ring.
		if live := r.arena.Live(); live != r.buffered {
			return fmt.Errorf("router %d arena holds %d live handles but %d flits buffered (leak)", r.id, live, r.buffered)
		}
	}
	return nil
}
