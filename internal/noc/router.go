package noc

import (
	"fmt"

	"scorpio/internal/obs"
	"scorpio/internal/obs/audit"
	"scorpio/internal/ring"
)

// RouterStats counts router activity for the power model and tests.
type RouterStats struct {
	FlitsAccepted uint64 // flits written into input buffers
	FlitsRouted   uint64 // flit-traversals through the crossbar (forks count each)
	Bypasses      uint64 // traversals that used the single-cycle bypass path
	Forks         uint64 // extra traversals produced by multicast forking
	BufferReads   uint64
	BufferWrites  uint64
	AllocStalls   uint64 // cycles a head flit lost allocation or lacked a VC/credit
}

// vcState is one input virtual channel: its flit queue and, for multi-flit
// packets, the route and downstream VC allocated by the head flit. The queue
// is a fixed-capacity ring sized by the configured buffer depth: the credit
// protocol guarantees the depth is never exceeded, so an overflow stays a
// panic (inside ring.Push) rather than a silent reallocation.
type vcState struct {
	q       ring.Ring[*Flit]
	outPort Port
	outVC   int
	active  bool
}

// inputUnit is one router input port: the incoming link and its VC buffers.
type inputUnit struct {
	link *Link
	vcs  [NumVNets][]*vcState
}

func newInputUnit(cfg Config, link *Link) *inputUnit {
	iu := &inputUnit{link: link}
	for v := VNet(0); v < NumVNets; v++ {
		n := cfg.TotalVCs(v)
		iu.vcs[v] = make([]*vcState, n)
		for i := 0; i < n; i++ {
			iu.vcs[v][i] = &vcState{q: ring.NewFixed[*Flit](cfg.BufDepthFor(v))}
		}
	}
	return iu
}

// outputUnit is one router output port: the outgoing link, the credit/VC/SID
// book-keeping for the downstream input port, the downstream node ID, and the
// set of nodes a broadcast branch through this port still delivers to (used
// for reserved-VC eligibility checks).
type outputUnit struct {
	link       *Link
	tr         *OutputTracker
	downstream int
	coverage   []int
}

// grant describes one (input flit → output port) crossbar traversal decided
// by switch allocation in the current cycle.
type grant struct {
	in     Port
	vnet   VNet
	vcIdx  int
	flit   *Flit
	out    Port
	dstVC  int
	isHead bool
}

// Router is one three-stage (single-stage with bypassing) mesh router.
type Router struct {
	cfg    Config
	id     int
	x, y   int
	esid   func(node int) (int, uint64, bool)
	in     [NumPorts]*inputUnit
	out    [NumPorts]*outputUnit
	saPtr  [NumPorts]int // SA-O round-robin pointer per output port
	saiPtr [NumPorts]int // SA-I round-robin pointer per input port
	// candBuf holds each input port's SA-I winner for the current cycle,
	// reused across cycles to keep the allocation hot path allocation-free.
	candBuf [NumPorts]candidate
	// pool recycles flits: switch traversal draws clones from it and
	// fully-serviced buffered flits are released back in dequeue. Only this
	// router touches its pool, so pooling is race-free under the parallel
	// kernel (see FlitPool).
	pool  FlitPool
	Stats RouterStats
	now   uint64
	// buffered counts flits currently held in the input VCs — the router's
	// idle predicate and the mesh-wide occupancy gauge (Mesh.BufferedFlits),
	// maintained incrementally so watchdog polls never rescan the VC rings.
	buffered int
	// tracer is nil unless lifecycle tracing is enabled; every hook site
	// guards on it so the disabled path is one branch. auditor follows the
	// same discipline for the online multicast-fork checker.
	tracer  *obs.Tracer
	auditor *audit.Auditor
}

// SetTracer attaches a lifecycle event tracer (nil disables tracing).
func (r *Router) SetTracer(t *obs.Tracer) { r.tracer = t }

// SetAuditor attaches the online auditor (nil disables auditing).
func (r *Router) SetAuditor(a *audit.Auditor) { r.auditor = a }

// newRouter builds a router; links are attached by the mesh.
func newRouter(cfg Config, id int, esid func(node int) (int, uint64, bool)) *Router {
	x, y := cfg.Coord(id)
	return &Router{cfg: cfg, id: id, x: x, y: y, esid: esid}
}

// ID returns the router's node ID.
func (r *Router) ID() int { return r.id }

// attach wires an input and output link pair for one port.
func (r *Router) attach(p Port, in, out *Link) {
	r.in[p] = newInputUnit(r.cfg, in)
	r.out[p] = &outputUnit{link: out, tr: NewOutputTracker(r.cfg)}
}

// Evaluate runs one cycle of the router: credit processing, buffer write of
// arriving flits, switch allocation, and switch traversal.
func (r *Router) Evaluate(cycle uint64) {
	r.now = cycle
	for _, ou := range r.out {
		if ou == nil {
			continue
		}
		for _, c := range ou.link.Credits(cycle) {
			ou.tr.ProcessCredit(c)
			r.pool.Put(c.Carcass)
		}
	}
	for p := Port(0); p < NumPorts; p++ {
		iu := r.in[p]
		if iu == nil {
			continue
		}
		if f := iu.link.Flit(cycle); f != nil {
			r.acceptFlit(p, iu, f)
		}
	}
	r.allocate()
}

// Commit implements sim.Component; all router state is updated in Evaluate
// and isolation between routers is provided by the links.
func (r *Router) Commit(cycle uint64) {}

// Idle reports that the router has nothing buffered and nothing arriving
// next cycle on any attached link — the idle-skip predicate. It is only
// consulted after the router executed the current cycle, so r.now names the
// cycle whose late link writes must be checked.
func (r *Router) Idle() bool {
	if r.buffered != 0 {
		return false
	}
	for p := Port(0); p < NumPorts; p++ {
		if iu := r.in[p]; iu != nil && iu.link.FlitPendingAt(r.now) {
			return false
		}
		if ou := r.out[p]; ou != nil && ou.link.CreditsPendingAt(r.now) {
			return false
		}
	}
	return true
}

// acceptFlit performs buffer write (BW) and, for head flits, route
// computation.
func (r *Router) acceptFlit(p Port, iu *inputUnit, f *Flit) {
	vnet := f.Pkt.VNet
	if f.Pkt.Broadcast && f.Pkt.Flits != 1 {
		panic(fmt.Sprintf("noc: router %d received multi-flit broadcast %s; broadcasts must be single-flit", r.id, f.Pkt))
	}
	vc := iu.vcs[vnet][f.inVC]
	if vc.q.Len() >= r.cfg.BufDepthFor(vnet) {
		panic(fmt.Sprintf("noc: router %d port %s VC overflow — credit protocol violated", r.id, p))
	}
	f.arrival = r.now
	f.bypassCandidate = r.cfg.Bypass && vc.q.Empty()
	if f.IsHead() {
		if f.Pkt.Broadcast {
			f.outPorts = r.broadcastMask(p)
		} else {
			f.outPorts = portMask(r.routeUnicast(f.Pkt.Dst))
		}
	}
	vc.q.Push(f)
	r.buffered++
	r.Stats.FlitsAccepted++
	r.Stats.BufferWrites++
	if r.tracer != nil {
		r.tracer.Record(obs.Event{
			Cycle: r.now, Type: obs.EvBufWrite, Node: int32(r.id),
			Src: int32(f.Pkt.Src), Pkt: f.Pkt.ID, Arg: uint64(f.Seq),
			Port: int8(p), VNet: int8(vnet), VC: int16(f.inVC),
		})
	}
}

// routeUnicast implements dimension-ordered XY routing.
func (r *Router) routeUnicast(dst int) Port {
	dx, dy := r.cfg.Coord(dst)
	switch {
	case dx > r.x:
		return East
	case dx < r.x:
		return West
	case dy > r.y:
		return South
	case dy < r.y:
		return North
	default:
		return Local
	}
}

// broadcastMask returns the XY multicast-tree output set for a broadcast flit
// that arrived on the given port: the flit travels both ways along the source
// row forking into every column, and straight along columns, delivering a
// local copy at every router except the source (whose NIC loops back its own
// copy internally).
func (r *Router) broadcastMask(arrival Port) uint8 {
	var mask uint8
	add := func(p Port) {
		if r.out[p] != nil {
			mask |= portMask(p)
		}
	}
	switch arrival {
	case Local:
		add(East)
		add(West)
		add(North)
		add(South)
	case West:
		add(East)
		add(North)
		add(South)
		add(Local)
	case East:
		add(West)
		add(North)
		add(South)
		add(Local)
	case North:
		add(South)
		add(Local)
	case South:
		add(North)
		add(Local)
	}
	return mask
}

// eligible reports whether a flit may traverse the switch this cycle. A
// lookahead flit (arrived with an empty queue ahead of it) traverses one
// cycle after arrival — a single-stage router. A buffered flit waits out the
// full pipeline (BW/SA-I, SA-O/VS, then ST), i.e. RouterStages cycles from
// arrival to departure.
func (r *Router) eligible(f *Flit) bool {
	if f.bypassCandidate {
		return r.now >= f.arrival+1
	}
	return r.now >= f.arrival+uint64(r.cfg.RouterStages)
}

// candidate is an SA-I winner: the one flit per input port that competes for
// output ports this cycle.
type candidate struct {
	in     Port
	vnet   VNet
	vcIdx  int
	vc     *vcState
	flit   *Flit
	wants  uint8 // output ports requested (after resource precheck)
	isRVC  bool
	isHead bool
}

// priorityClass orders candidates: reserved-VC flits beat lookaheads beat
// buffered flits (Section 3.2: lookaheads are prioritized over buffered flits
// except those in reserved VCs).
func (c *candidate) priorityClass() int {
	switch {
	case c.isRVC:
		return 0
	case c.flit.bypassCandidate:
		return 1
	default:
		return 2
	}
}

// allocate performs SA-I, SA-O, VC selection and switch traversal for one
// cycle.
func (r *Router) allocate() {
	var cands [NumPorts]*candidate
	for p := Port(0); p < NumPorts; p++ {
		cands[p] = r.pickInputWinner(p)
	}
	// SA-O: one winner per output port; a multicast candidate may win
	// several output ports in the same cycle (single-cycle forking).
	var winners [NumPorts]*candidate
	for o := Port(0); o < NumPorts; o++ {
		if r.out[o] == nil {
			continue
		}
		var best *candidate
		bestRank := 1 << 30
		n := int(NumPorts)
		for k := 0; k < n; k++ {
			p := Port((r.saPtr[o] + k) % n)
			c := cands[p]
			if c == nil || c.wants&portMask(o) == 0 {
				continue
			}
			rank := c.priorityClass()*n + k
			if rank < bestRank {
				best = c
				bestRank = rank
			}
		}
		if best != nil {
			winners[o] = best
			r.saPtr[o] = (int(best.in) + 1) % n
		}
	}
	// Switch traversal: claim resources and move flits, port by port.
	// Grants are tracked per input port (each candidate belongs to exactly
	// one), avoiding a per-cycle map and its unordered iteration.
	var granted [NumPorts]uint8
	for o := Port(0); o < NumPorts; o++ {
		c := winners[o]
		if c == nil {
			continue
		}
		g, ok := r.claim(c, o)
		if !ok {
			r.Stats.AllocStalls++
			continue
		}
		r.traverse(g)
		granted[c.in] |= portMask(o)
	}
	// Dequeue flits whose pending output set is exhausted, count extra
	// branches of multicast forks, and demote lookaheads that failed to
	// claim the switch back to the buffered pipeline (Section 3.2). The
	// dequeue (which releases the flit into the recycle pool, resetting its
	// fields) must come after the last read of the flit.
	for p := Port(0); p < NumPorts; p++ {
		c := cands[p]
		if c == nil {
			continue
		}
		if mask := granted[p]; mask != 0 {
			if n := popcount8(mask); n > 1 {
				r.Stats.Forks += uint64(n - 1)
			}
			c.flit.outPorts &^= mask
		}
		if c.flit.bypassCandidate && (granted[p] == 0 || c.flit.outPorts != 0) {
			c.flit.bypassCandidate = false
			r.Stats.AllocStalls++
		}
		if granted[p] != 0 && c.flit.outPorts == 0 {
			r.dequeue(c)
		}
	}
}

// pickInputWinner performs SA-I for one input port: among VCs whose head flit
// is eligible and has at least one serviceable output port, pick the highest
// priority (reserved VC first, then lookaheads, then round-robin buffered).
func (r *Router) pickInputWinner(p Port) *candidate {
	iu := r.in[p]
	if iu == nil {
		return nil
	}
	total := r.cfg.TotalVCs(GOReq) + r.cfg.TotalVCs(UOResp)
	split := r.cfg.TotalVCs(GOReq)
	bestFlat := -1
	var bestWants uint8
	bestRank := 1 << 30
	for k := 0; k < total; k++ {
		idx := (r.saiPtr[p] + k) % total
		v, i := GOReq, idx
		if idx >= split {
			v, i = UOResp, idx-split
		}
		vc := iu.vcs[v][i]
		if vc.q.Empty() {
			continue
		}
		f := vc.q.Front()
		if !r.eligible(f) {
			continue
		}
		wants := r.serviceablePorts(vc, f)
		if wants == 0 {
			r.Stats.AllocStalls++
			continue
		}
		class := 2
		switch {
		case v == GOReq && i == r.cfg.ReservedVC(v):
			class = 0
		case f.bypassCandidate:
			class = 1
		}
		if rank := class*total + k; rank < bestRank {
			bestFlat = idx
			bestWants = wants
			bestRank = rank
		}
	}
	if bestFlat < 0 {
		return nil
	}
	v, i := GOReq, bestFlat
	if bestFlat >= split {
		v, i = UOResp, bestFlat-split
	}
	vc := iu.vcs[v][i]
	// The winner lives in the router's reusable per-port buffer: the hot
	// path allocates nothing per cycle.
	c := &r.candBuf[p]
	head := vc.q.Front()
	*c = candidate{in: p, vnet: v, vcIdx: i, vc: vc, flit: head, wants: bestWants, isRVC: v == GOReq && i == r.cfg.ReservedVC(v), isHead: head.IsHead()}
	if c.priorityClass() == 2 {
		r.saiPtr[p] = (bestFlat + 1) % total
	}
	return c
}

// serviceablePorts filters a flit's pending output ports down to those whose
// downstream resources (VC, credit, SID-tracker clearance) are available this
// cycle.
func (r *Router) serviceablePorts(vc *vcState, f *Flit) uint8 {
	var wants uint8
	if f.IsHead() {
		wants = f.outPorts
	} else {
		wants = portMask(vc.outPort)
	}
	var ok uint8
	for o := Port(0); o < NumPorts; o++ {
		if wants&portMask(o) == 0 {
			continue
		}
		ou := r.out[o]
		if ou == nil {
			continue
		}
		if f.IsHead() {
			if _, can := ou.tr.AllocHeadVC(f.Pkt.VNet, f.Pkt.SID, r.rvcEligible(ou, f)); can {
				ok |= portMask(o)
			}
		} else if ou.tr.CanSendBody(f.Pkt.VNet, vc.outVC) {
			ok |= portMask(o)
		}
	}
	return ok
}

// rvcEligible reports whether a GO-REQ flit may use the reserved VC of the
// downstream input port. The flit must be the exact (SID, sequence) request
// some NIC in this branch's remaining delivery subtree is waiting for; any
// looser rule would let a later same-SID request squat the reserved VC and
// deadlock the expected one behind it.
func (r *Router) rvcEligible(ou *outputUnit, f *Flit) bool {
	if f.Pkt.VNet != GOReq || r.esid == nil {
		return false
	}
	for _, node := range ou.coverage {
		if sid, seq, ok := r.esid(node); ok && sid == f.Pkt.SID && seq == f.Pkt.SrcSeq {
			return true
		}
	}
	return false
}

// claim re-checks and reserves downstream resources for one traversal.
func (r *Router) claim(c *candidate, o Port) (grant, bool) {
	ou := r.out[o]
	f := c.flit
	if c.isHead {
		vcIdx, ok := ou.tr.AllocHeadVC(f.Pkt.VNet, f.Pkt.SID, r.rvcEligible(ou, f))
		if !ok {
			return grant{}, false
		}
		ou.tr.ClaimHeadVC(f.Pkt.VNet, vcIdx, f.Pkt.SID)
		if r.tracer != nil {
			r.tracer.Record(obs.Event{
				Cycle: r.now, Type: obs.EvVCAlloc, Node: int32(r.id),
				Src: int32(f.Pkt.Src), Pkt: f.Pkt.ID, Arg: uint64(vcIdx),
				Port: int8(o), VNet: int8(f.Pkt.VNet), VC: int16(vcIdx),
			})
		}
		return grant{in: c.in, vnet: c.vnet, vcIdx: c.vcIdx, flit: f, out: o, dstVC: vcIdx, isHead: true}, true
	}
	if !ou.tr.CanSendBody(f.Pkt.VNet, c.vc.outVC) {
		return grant{}, false
	}
	ou.tr.ChargeBody(f.Pkt.VNet, c.vc.outVC)
	return grant{in: c.in, vnet: c.vnet, vcIdx: c.vcIdx, flit: f, out: o, dstVC: c.vc.outVC, isHead: false}, true
}

// traverse sends one flit copy through the crossbar onto an output link.
func (r *Router) traverse(g grant) {
	out := r.pool.Clone(g.flit)
	out.inVC = g.dstVC
	out.outPorts = 0
	r.out[g.out].link.Send(out, r.now)
	g.flit.lastPort = g.out
	g.flit.lastDstVC = g.dstVC
	r.Stats.FlitsRouted++
	r.Stats.BufferReads++
	if g.flit.bypassCandidate {
		r.Stats.Bypasses++
	}
	if r.tracer != nil {
		ty := obs.EvSAGrant
		if g.flit.bypassCandidate {
			ty = obs.EvBypass
		}
		r.tracer.Record(obs.Event{
			Cycle: r.now, Type: ty, Node: int32(r.id),
			Src: int32(g.flit.Pkt.Src), Pkt: g.flit.Pkt.ID, Arg: uint64(g.out),
			Port: int8(g.out), VNet: int8(g.vnet), VC: int16(g.dstVC),
		})
	}
	if r.auditor != nil && g.out == Local {
		// Every local ejection is one fork leaf of the (possibly multicast)
		// packet; the auditor checks each (packet, node) assembly sees every
		// flit exactly once.
		r.auditor.FlitDelivered(r.id, g.flit.Pkt.ID, g.flit.Seq, g.flit.Pkt.Flits)
	}
}

// dequeue removes a fully-serviced flit from its input VC, returns a credit
// upstream, and maintains wormhole state for multi-flit packets.
func (r *Router) dequeue(c *candidate) {
	vc := c.vc
	f := vc.q.PopFront()
	r.buffered--
	iu := r.in[c.in]
	tail := f.IsTail()
	if f.IsHead() && !tail {
		// Record the wormhole route for the packet's body flits. Multi-flit
		// packets are unicast, so there is exactly one granted port: the one
		// the head just traversed.
		vc.active = true
		vc.outPort = f.lastPort
		vc.outVC = f.lastDstVC
	}
	if tail {
		vc.active = false
	}
	// The buffered flit is fully serviced (every output branch traversed a
	// pool-drawn clone); ride it upstream on the credit so the sender's pool
	// gets its object back (see Credit.Carcass). Sent last: the carcass
	// belongs to the upstream component once attached.
	iu.link.SendCredit(Credit{VNet: c.vnet, VC: c.vcIdx, FreeVC: tail, Carcass: f}, r.now)
}

// ForEachBufferedFlit calls fn for every flit buffered in the router's input
// VCs (diagnostics and tests).
func (r *Router) ForEachBufferedFlit(fn func(p Port, v VNet, vc int, f *Flit)) {
	for p := Port(0); p < NumPorts; p++ {
		iu := r.in[p]
		if iu == nil {
			continue
		}
		for v := VNet(0); v < NumVNets; v++ {
			for i, vcs := range iu.vcs[v] {
				for k := 0; k < vcs.q.Len(); k++ {
					fn(p, v, i, vcs.q.At(k))
				}
			}
		}
	}
}

// OutputState reports an output port's tracker for diagnostics; ok is false
// for absent ports.
func (r *Router) OutputState(p Port) (*OutputTracker, bool) {
	if r.out[p] == nil {
		return nil, false
	}
	return r.out[p].tr, true
}

// PendingPorts returns a flit's unserved output-port mask (diagnostics).
func (f *Flit) PendingPorts() uint8 { return f.outPorts }

// popcount8 counts the set bits of a port mask.
func popcount8(m uint8) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
