package noc

import (
	"fmt"

	"scorpio/internal/obs"
	"scorpio/internal/obs/audit"
)

// RouterStats counts router activity for the power model and tests.
type RouterStats struct {
	FlitsAccepted uint64 // flits written into input buffers
	FlitsRouted   uint64 // flit-traversals through the crossbar (forks count each)
	Bypasses      uint64 // traversals that used the single-cycle bypass path
	Forks         uint64 // extra traversals produced by multicast forking
	BufferReads   uint64
	BufferWrites  uint64
	AllocStalls   uint64 // cycles a head flit lost allocation or lacked a VC/credit
}

// grant describes one (input flit → output port) crossbar traversal decided
// by switch allocation in the current cycle.
type grant struct {
	in     Port
	vnet   VNet
	vcIdx  int
	fv     int // flat VC index of the input VC
	flit   *Flit
	out    Port
	dstVC  int
	isHead bool
}

// Router is one three-stage (single-stage with bypassing) mesh router.
//
// Its state is laid out structure-of-arrays: instead of per-port
// inputUnit/outputUnit objects holding per-VC objects, every per-VC quantity
// lives in one flat slice indexed by the flat VC number
//
//	fv = int(port)*vcsPerPort + idx
//
// where idx enumerates GO-REQ VCs first (including the reserved VC) and then
// UO-RESP VCs — the same order the SA-I round-robin already walked. Buffered
// flits live in the router's Arena slab and the VC queues are rings of int32
// handles packed in one shared backing array (qbuf), so a full router cycle
// touches a handful of contiguous allocations instead of ~50 heap objects.
type Router struct {
	cfg  Config
	id   int
	x, y int
	esid func(node int) (int, uint64, bool)

	// Per-port links; nil marks an absent port (mesh edges). downstream and
	// coverage describe the neighbour behind each output port.
	inLink     [NumPorts]*Link
	outLink    [NumPorts]*Link
	downstream [NumPorts]int32
	coverage   [NumPorts][]int

	// vcsPerPort is the flat per-port VC count; splitVC the number of GO-REQ
	// VCs (flat indexes below it are GO-REQ, at or above it UO-RESP).
	vcsPerPort int
	splitVC    int

	// Input VC queues: per flat VC a fixed ring of arena handles occupying
	// qbuf[qoff : qoff+qcap]. qhead is the ring read position, qlen the
	// occupancy. The credit protocol guarantees qcap is never exceeded, so an
	// overflow stays a panic rather than a silent reallocation.
	qbuf  []int32
	qoff  []int32
	qcap  []int32
	qhead []int32
	qlen  []int32
	// Wormhole route latched by a departing head flit for its body flits.
	vcOutPort []int8
	vcOutVC   []int8

	// trk is the flattened per-output-port credit/VC/SID book-keeping (the
	// SoA replacement for five per-port OutputTracker objects).
	trk trackerTable

	// arena holds every flit buffered in the input VCs (see Arena).
	arena Arena

	saPtr  [NumPorts]int // SA-O round-robin pointer per output port
	saiPtr [NumPorts]int // SA-I round-robin pointer per input port
	// candBuf holds each input port's SA-I winner for the current cycle,
	// reused across cycles to keep the allocation hot path allocation-free.
	candBuf [NumPorts]candidate
	Stats   RouterStats
	now     uint64
	// buffered counts flits currently held in the input VCs — the router's
	// idle predicate and the mesh-wide occupancy gauge (Mesh.BufferedFlits),
	// maintained incrementally so watchdog polls never rescan the VC rings.
	buffered int
	// tracer is nil unless lifecycle tracing is enabled; every hook site
	// guards on it so the disabled path is one branch. auditor follows the
	// same discipline for the online multicast-fork checker.
	tracer  *obs.Tracer
	auditor *audit.Auditor
}

// SetTracer attaches a lifecycle event tracer (nil disables tracing).
func (r *Router) SetTracer(t *obs.Tracer) { r.tracer = t }

// SetAuditor attaches the online auditor (nil disables auditing).
func (r *Router) SetAuditor(a *audit.Auditor) { r.auditor = a }

// newRouter builds a router with its full SoA tables and arena sized up
// front (uniformly for NumPorts ports — absent edge ports leave their share
// unused but keep the flat indexing stride-regular); links are attached by
// the mesh.
func newRouter(cfg Config, id int, esid func(node int) (int, uint64, bool)) *Router {
	x, y := cfg.Coord(id)
	r := &Router{cfg: cfg, id: id, x: x, y: y, esid: esid}
	r.vcsPerPort = cfg.TotalVCs(GOReq) + cfg.TotalVCs(UOResp)
	r.splitVC = cfg.TotalVCs(GOReq)
	n := int(NumPorts) * r.vcsPerPort
	r.qoff = make([]int32, n)
	r.qcap = make([]int32, n)
	r.qhead = make([]int32, n)
	r.qlen = make([]int32, n)
	r.vcOutPort = make([]int8, n)
	r.vcOutVC = make([]int8, n)
	total := 0
	for fv := 0; fv < n; fv++ {
		depth := cfg.BufDepthFor(r.vnetOf(fv % r.vcsPerPort))
		r.qoff[fv] = int32(total)
		r.qcap[fv] = int32(depth)
		total += depth
	}
	r.qbuf = make([]int32, total)
	r.arena = NewArena(total)
	r.trk = newTrackerTable(cfg)
	return r
}

// vnetOf maps a per-port flat VC index to its virtual network.
func (r *Router) vnetOf(idx int) VNet {
	if idx < r.splitVC {
		return GOReq
	}
	return UOResp
}

// flatVC returns the flat VC index for (port, vnet, vc).
func (r *Router) flatVC(p Port, v VNet, vc int) int {
	fv := int(p)*r.vcsPerPort + vc
	if v == UOResp {
		fv += r.splitVC
	}
	return fv
}

// qFront returns the handle at the head of a VC queue (qlen must be > 0).
func (r *Router) qFront(fv int) int32 {
	return r.qbuf[r.qoff[fv]+r.qhead[fv]]
}

// qPush appends a handle to a VC queue.
func (r *Router) qPush(fv int, h int32) {
	pos := r.qhead[fv] + r.qlen[fv]
	if pos >= r.qcap[fv] {
		pos -= r.qcap[fv]
	}
	r.qbuf[r.qoff[fv]+pos] = h
	r.qlen[fv]++
}

// qPop removes and returns the head handle of a VC queue.
func (r *Router) qPop(fv int) int32 {
	h := r.qbuf[r.qoff[fv]+r.qhead[fv]]
	r.qhead[fv]++
	if r.qhead[fv] == r.qcap[fv] {
		r.qhead[fv] = 0
	}
	r.qlen[fv]--
	return h
}

// ID returns the router's node ID.
func (r *Router) ID() int { return r.id }

// attach wires an input and output link pair for one port.
func (r *Router) attach(p Port, in, out *Link) {
	r.inLink[p] = in
	r.outLink[p] = out
}

// Evaluate runs one cycle of the router: credit processing, buffer write of
// arriving flits, switch allocation, and switch traversal.
func (r *Router) Evaluate(cycle uint64) {
	r.now = cycle
	for p := Port(0); p < NumPorts; p++ {
		ol := r.outLink[p]
		if ol == nil {
			continue
		}
		for _, c := range ol.Credits(cycle) {
			r.trk.processCredit(p, c)
		}
	}
	for p := Port(0); p < NumPorts; p++ {
		il := r.inLink[p]
		if il == nil {
			continue
		}
		if f := il.Flit(cycle); f != nil {
			r.acceptFlit(p, f)
		}
	}
	r.allocate()
}

// Commit implements sim.Component; all router state is updated in Evaluate
// and isolation between routers is provided by the links.
func (r *Router) Commit(cycle uint64) {}

// Idle reports that the router has nothing buffered and nothing arriving
// next cycle on any attached link — the idle-skip predicate. It is only
// consulted after the router executed the current cycle, so r.now names the
// cycle whose late link writes must be checked.
func (r *Router) Idle() bool {
	if r.buffered != 0 {
		return false
	}
	for p := Port(0); p < NumPorts; p++ {
		if il := r.inLink[p]; il != nil && il.FlitPendingAt(r.now) {
			return false
		}
		if ol := r.outLink[p]; ol != nil && ol.CreditsPendingAt(r.now) {
			return false
		}
	}
	return true
}

// acceptFlit performs buffer write (BW) and, for head flits, route
// computation: the link's flit value is copied into an arena slot and the
// slot's handle queued on the addressed input VC.
func (r *Router) acceptFlit(p Port, f *Flit) {
	vnet := f.Pkt.VNet
	if f.Pkt.Broadcast && f.Pkt.Flits != 1 {
		panic(fmt.Sprintf("noc: router %d received multi-flit broadcast %s; broadcasts must be single-flit", r.id, f.Pkt))
	}
	fv := r.flatVC(p, vnet, int(f.inVC))
	if r.qlen[fv] >= r.qcap[fv] {
		panic(fmt.Sprintf("noc: router %d port %s VC overflow — credit protocol violated", r.id, p))
	}
	h := r.arena.Alloc()
	buf := r.arena.At(h)
	*buf = *f
	buf.arrival = r.now
	buf.bypassCandidate = r.cfg.Bypass && r.qlen[fv] == 0
	if buf.IsHead() {
		if buf.Pkt.Broadcast {
			buf.outPorts = r.broadcastMask(p)
		} else {
			buf.outPorts = portMask(r.routeUnicast(buf.Pkt.Dst))
		}
	}
	r.qPush(fv, h)
	r.buffered++
	r.Stats.FlitsAccepted++
	r.Stats.BufferWrites++
	if r.tracer != nil {
		r.tracer.Record(obs.Event{
			Cycle: r.now, Type: obs.EvBufWrite, Node: int32(r.id),
			Src: int32(buf.Pkt.Src), Pkt: buf.Pkt.ID, Arg: uint64(buf.Seq),
			Port: int8(p), VNet: int8(vnet), VC: buf.inVC,
		})
	}
}

// routeUnicast implements dimension-ordered XY routing.
func (r *Router) routeUnicast(dst int) Port {
	dx, dy := r.cfg.Coord(dst)
	switch {
	case dx > r.x:
		return East
	case dx < r.x:
		return West
	case dy > r.y:
		return South
	case dy < r.y:
		return North
	default:
		return Local
	}
}

// broadcastMask returns the XY multicast-tree output set for a broadcast flit
// that arrived on the given port: the flit travels both ways along the source
// row forking into every column, and straight along columns, delivering a
// local copy at every router except the source (whose NIC loops back its own
// copy internally).
func (r *Router) broadcastMask(arrival Port) uint8 {
	var mask uint8
	add := func(p Port) {
		if r.outLink[p] != nil {
			mask |= portMask(p)
		}
	}
	switch arrival {
	case Local:
		add(East)
		add(West)
		add(North)
		add(South)
	case West:
		add(East)
		add(North)
		add(South)
		add(Local)
	case East:
		add(West)
		add(North)
		add(South)
		add(Local)
	case North:
		add(South)
		add(Local)
	case South:
		add(North)
		add(Local)
	}
	return mask
}

// eligible reports whether a flit may traverse the switch this cycle. A
// lookahead flit (arrived with an empty queue ahead of it) traverses one
// cycle after arrival — a single-stage router. A buffered flit waits out the
// full pipeline (BW/SA-I, SA-O/VS, then ST), i.e. RouterStages cycles from
// arrival to departure.
func (r *Router) eligible(f *Flit) bool {
	if f.bypassCandidate {
		return r.now >= f.arrival+1
	}
	return r.now >= f.arrival+uint64(r.cfg.RouterStages)
}

// candidate is an SA-I winner: the one flit per input port that competes for
// output ports this cycle.
type candidate struct {
	in     Port
	vnet   VNet
	vcIdx  int
	fv     int // flat VC index
	flit   *Flit
	wants  uint8 // output ports requested (after resource precheck)
	isRVC  bool
	isHead bool
}

// priorityClass orders candidates: reserved-VC flits beat lookaheads beat
// buffered flits (Section 3.2: lookaheads are prioritized over buffered flits
// except those in reserved VCs).
func (c *candidate) priorityClass() int {
	switch {
	case c.isRVC:
		return 0
	case c.flit.bypassCandidate:
		return 1
	default:
		return 2
	}
}

// allocate performs SA-I, SA-O, VC selection and switch traversal for one
// cycle.
func (r *Router) allocate() {
	var cands [NumPorts]*candidate
	for p := Port(0); p < NumPorts; p++ {
		cands[p] = r.pickInputWinner(p)
	}
	// SA-O: one winner per output port; a multicast candidate may win
	// several output ports in the same cycle (single-cycle forking).
	var winners [NumPorts]*candidate
	for o := Port(0); o < NumPorts; o++ {
		if r.outLink[o] == nil {
			continue
		}
		var best *candidate
		bestRank := 1 << 30
		n := int(NumPorts)
		for k := 0; k < n; k++ {
			pi := r.saPtr[o] + k
			if pi >= n {
				pi -= n
			}
			p := Port(pi)
			c := cands[p]
			if c == nil || c.wants&portMask(o) == 0 {
				continue
			}
			rank := c.priorityClass()*n + k
			if rank < bestRank {
				best = c
				bestRank = rank
			}
		}
		if best != nil {
			winners[o] = best
			r.saPtr[o] = (int(best.in) + 1) % n
		}
	}
	// Switch traversal: claim resources and move flits, port by port.
	// Grants are tracked per input port (each candidate belongs to exactly
	// one), avoiding a per-cycle map and its unordered iteration.
	var granted [NumPorts]uint8
	for o := Port(0); o < NumPorts; o++ {
		c := winners[o]
		if c == nil {
			continue
		}
		g, ok := r.claim(c, o)
		if !ok {
			r.Stats.AllocStalls++
			continue
		}
		r.traverse(g)
		granted[c.in] |= portMask(o)
	}
	// Dequeue flits whose pending output set is exhausted, count extra
	// branches of multicast forks, and demote lookaheads that failed to
	// claim the switch back to the buffered pipeline (Section 3.2). The
	// dequeue (which frees the flit's arena slot, zeroing it) must come
	// after the last read of the flit.
	for p := Port(0); p < NumPorts; p++ {
		c := cands[p]
		if c == nil {
			continue
		}
		if mask := granted[p]; mask != 0 {
			if n := popcount8(mask); n > 1 {
				r.Stats.Forks += uint64(n - 1)
			}
			c.flit.outPorts &^= mask
		}
		if c.flit.bypassCandidate && (granted[p] == 0 || c.flit.outPorts != 0) {
			c.flit.bypassCandidate = false
			r.Stats.AllocStalls++
		}
		if granted[p] != 0 && c.flit.outPorts == 0 {
			r.dequeue(c)
		}
	}
}

// pickInputWinner performs SA-I for one input port: among VCs whose head flit
// is eligible and has at least one serviceable output port, pick the highest
// priority (reserved VC first, then lookaheads, then round-robin buffered).
// The scan walks the port's contiguous flat-VC range in arrival order.
func (r *Router) pickInputWinner(p Port) *candidate {
	if r.inLink[p] == nil {
		return nil
	}
	total := r.vcsPerPort
	split := r.splitVC
	base := int(p) * total
	bestFlat := -1
	var bestWants uint8
	bestRank := 1 << 30
	rvc := r.cfg.ReservedVC(GOReq)
	for k := 0; k < total; k++ {
		idx := r.saiPtr[p] + k
		if idx >= total {
			idx -= total
		}
		fv := base + idx
		if r.qlen[fv] == 0 {
			continue
		}
		f := r.arena.At(r.qFront(fv))
		if !r.eligible(f) {
			continue
		}
		wants := r.serviceablePorts(fv, f)
		if wants == 0 {
			r.Stats.AllocStalls++
			continue
		}
		class := 2
		switch {
		case idx < split && idx == rvc:
			class = 0
		case f.bypassCandidate:
			class = 1
		}
		if rank := class*total + k; rank < bestRank {
			bestFlat = idx
			bestWants = wants
			bestRank = rank
		}
	}
	if bestFlat < 0 {
		return nil
	}
	v, i := GOReq, bestFlat
	if bestFlat >= split {
		v, i = UOResp, bestFlat-split
	}
	fv := base + bestFlat
	// The winner lives in the router's reusable per-port buffer: the hot
	// path allocates nothing per cycle.
	c := &r.candBuf[p]
	head := r.arena.At(r.qFront(fv))
	*c = candidate{in: p, vnet: v, vcIdx: i, fv: fv, flit: head, wants: bestWants, isRVC: v == GOReq && i == r.cfg.ReservedVC(v), isHead: head.IsHead()}
	if c.priorityClass() == 2 {
		next := bestFlat + 1
		if next >= total {
			next -= total
		}
		r.saiPtr[p] = next
	}
	return c
}

// serviceablePorts filters a flit's pending output ports down to those whose
// downstream resources (VC, credit, SID-tracker clearance) are available this
// cycle.
func (r *Router) serviceablePorts(fv int, f *Flit) uint8 {
	var wants uint8
	if f.IsHead() {
		wants = f.outPorts
	} else {
		wants = portMask(Port(r.vcOutPort[fv]))
	}
	var ok uint8
	for o := Port(0); o < NumPorts; o++ {
		if wants&portMask(o) == 0 {
			continue
		}
		if r.outLink[o] == nil {
			continue
		}
		if f.IsHead() {
			if _, can := r.trk.allocHeadVC(o, f.Pkt.VNet, f.Pkt.SID, r.rvcEligible(o, f)); can {
				ok |= portMask(o)
			}
		} else if r.trk.canSendBody(o, f.Pkt.VNet, int(r.vcOutVC[fv])) {
			ok |= portMask(o)
		}
	}
	return ok
}

// rvcEligible reports whether a GO-REQ flit may use the reserved VC of the
// downstream input port. The flit must be the exact (SID, sequence) request
// some NIC in this branch's remaining delivery subtree is waiting for; any
// looser rule would let a later same-SID request squat the reserved VC and
// deadlock the expected one behind it.
func (r *Router) rvcEligible(o Port, f *Flit) bool {
	if f.Pkt.VNet != GOReq || r.esid == nil {
		return false
	}
	for _, node := range r.coverage[o] {
		if sid, seq, ok := r.esid(node); ok && sid == f.Pkt.SID && seq == f.Pkt.SrcSeq {
			return true
		}
	}
	return false
}

// claim re-checks and reserves downstream resources for one traversal.
func (r *Router) claim(c *candidate, o Port) (grant, bool) {
	f := c.flit
	if c.isHead {
		vcIdx, ok := r.trk.allocHeadVC(o, f.Pkt.VNet, f.Pkt.SID, r.rvcEligible(o, f))
		if !ok {
			return grant{}, false
		}
		r.trk.claimHeadVC(o, f.Pkt.VNet, vcIdx, f.Pkt.SID)
		if r.tracer != nil {
			r.tracer.Record(obs.Event{
				Cycle: r.now, Type: obs.EvVCAlloc, Node: int32(r.id),
				Src: int32(f.Pkt.Src), Pkt: f.Pkt.ID, Arg: uint64(vcIdx),
				Port: int8(o), VNet: int8(f.Pkt.VNet), VC: int16(vcIdx),
			})
		}
		return grant{in: c.in, vnet: c.vnet, vcIdx: c.vcIdx, fv: c.fv, flit: f, out: o, dstVC: vcIdx, isHead: true}, true
	}
	dstVC := int(r.vcOutVC[c.fv])
	if !r.trk.canSendBody(o, f.Pkt.VNet, dstVC) {
		return grant{}, false
	}
	r.trk.chargeBody(o, f.Pkt.VNet, dstVC)
	return grant{in: c.in, vnet: c.vnet, vcIdx: c.vcIdx, fv: c.fv, flit: f, out: o, dstVC: dstVC, isHead: false}, true
}

// traverse sends one flit copy through the crossbar onto an output link: a
// 32-byte value copy into the link mailbox, no allocation.
func (r *Router) traverse(g grant) {
	out := *g.flit
	out.inVC = int16(g.dstVC)
	out.outPorts = 0
	r.outLink[g.out].Send(out, r.now)
	g.flit.lastPort = int8(g.out)
	g.flit.lastDstVC = int8(g.dstVC)
	r.Stats.FlitsRouted++
	r.Stats.BufferReads++
	if g.flit.bypassCandidate {
		r.Stats.Bypasses++
	}
	if r.tracer != nil {
		ty := obs.EvSAGrant
		if g.flit.bypassCandidate {
			ty = obs.EvBypass
		}
		r.tracer.Record(obs.Event{
			Cycle: r.now, Type: ty, Node: int32(r.id),
			Src: int32(g.flit.Pkt.Src), Pkt: g.flit.Pkt.ID, Arg: uint64(g.out),
			Port: int8(g.out), VNet: int8(g.vnet), VC: int16(g.dstVC),
		})
	}
	if r.auditor != nil && g.out == Local {
		// Every local ejection is one fork leaf of the (possibly multicast)
		// packet; the auditor checks each (packet, node) assembly sees every
		// flit exactly once.
		r.auditor.FlitDelivered(r.id, g.flit.Pkt.ID, g.flit.Seq, g.flit.Pkt.Flits)
	}
}

// dequeue removes a fully-serviced flit from its input VC, returns a credit
// upstream, frees the arena slot, and maintains wormhole state for
// multi-flit packets.
func (r *Router) dequeue(c *candidate) {
	h := r.qPop(c.fv)
	r.buffered--
	f := r.arena.At(h)
	tail := f.IsTail()
	if f.IsHead() && !tail {
		// Record the wormhole route for the packet's body flits. Multi-flit
		// packets are unicast, so there is exactly one granted port: the one
		// the head just traversed.
		r.vcOutPort[c.fv] = f.lastPort
		r.vcOutVC[c.fv] = f.lastDstVC
	}
	r.inLink[c.in].SendCredit(Credit{VNet: c.vnet, VC: c.vcIdx, FreeVC: tail}, r.now)
	// The buffered flit is fully serviced (every output branch traversed a
	// value copy); its slab slot is zeroed and recycled for the next
	// arrival. Freed last: the free must follow the flit's final read.
	r.arena.Free(h)
}

// ForEachBufferedFlit calls fn for every flit buffered in the router's input
// VCs (diagnostics and tests).
func (r *Router) ForEachBufferedFlit(fn func(p Port, v VNet, vc int, f *Flit)) {
	for p := Port(0); p < NumPorts; p++ {
		if r.inLink[p] == nil {
			continue
		}
		base := int(p) * r.vcsPerPort
		for idx := 0; idx < r.vcsPerPort; idx++ {
			fv := base + idx
			v, i := GOReq, idx
			if idx >= r.splitVC {
				v, i = UOResp, idx-r.splitVC
			}
			for k := int32(0); k < r.qlen[fv]; k++ {
				pos := r.qhead[fv] + k
				if pos >= r.qcap[fv] {
					pos -= r.qcap[fv]
				}
				fn(p, v, i, r.arena.At(r.qbuf[r.qoff[fv]+pos]))
			}
		}
	}
}

// OutputState reports an output port's tracker state for diagnostics; ok is
// false for absent ports.
func (r *Router) OutputState(p Port) (TrackerView, bool) {
	if r.outLink[p] == nil {
		return TrackerView{}, false
	}
	return TrackerView{r: r, p: p}, true
}

// Arena exposes the router's flit arena (leak and determinism tests).
func (r *Router) ArenaState() *Arena { return &r.arena }

// PendingPorts returns a flit's unserved output-port mask (diagnostics).
func (f *Flit) PendingPorts() uint8 { return f.outPorts }

// popcount8 counts the set bits of a port mask.
func popcount8(m uint8) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}
