package noc

import "fmt"

// Packet is one message on the main network. GO-REQ packets are single-flit
// and may be broadcast; UO-RESP packets are unicast and may span several
// flits (cache-line data).
type Packet struct {
	// ID is unique per injected packet (assigned by the mesh).
	ID uint64
	// VNet is the message class the packet travels on.
	VNet VNet
	// Src is the injecting node.
	Src int
	// Dst is the destination node for unicast packets; ignored for broadcast.
	Dst int
	// Broadcast requests delivery to every node (including the source, whose
	// copy is looped back locally by the NIC).
	Broadcast bool
	// SID is the source ID used for global ordering; GO-REQ only.
	SID int
	// SrcSeq numbers the source's ordered requests (0, 1, 2, …). Together
	// with SID it identifies the exact occurrence a NIC is waiting for, so
	// the reserved VC can never be claimed by a later request from the same
	// source (which would deadlock the expected one behind it).
	SrcSeq uint64
	// Flits is the packet length in flits.
	Flits int
	// Kind is an opaque protocol-level message type (defined by the
	// coherence packages); the network does not interpret it.
	Kind int
	// Addr is the cache-line address the message concerns, if any.
	Addr uint64
	// ReqID lets protocol layers match responses to outstanding requests.
	ReqID uint64
	// Payload carries arbitrary protocol state; the network never reads it.
	Payload any

	// Timestamps for latency accounting, filled by the network layers.
	InjectCycle  uint64 // handed to the NIC by the agent
	NetworkEntry uint64 // first flit left the source NIC into the router
	ArriveCycle  uint64 // last flit reached the destination NIC buffers
	OrderedCycle uint64 // GO-REQ only: released to the agent in global order
}

// String identifies the packet for diagnostics.
func (p *Packet) String() string {
	dst := fmt.Sprintf("%d", p.Dst)
	if p.Broadcast {
		dst = "*"
	}
	return fmt.Sprintf("pkt#%d %s %d->%s kind=%d addr=%#x flits=%d", p.ID, p.VNet, p.Src, dst, p.Kind, p.Addr, p.Flits)
}

// Flit is one link-level transfer unit of a packet. It is a small value type
// — 32 bytes, two per cache line — moved by copy: links latch flit values in
// their mailboxes and router input buffers hold flits in a per-router Arena
// slab addressed by int32 handles, so the datapath walks contiguous memory
// instead of a heap object graph (see DESIGN.md §7). The packed field types
// (int16 VC, int8 port) are private and never overflow: VC counts and port
// numbers are single digits by construction.
type Flit struct {
	Pkt *Packet
	// Seq is the flit's index within the packet (0 = head).
	Seq int
	// arrival is the cycle the flit was written into the current input
	// buffer; the router pipeline latency is measured from it.
	arrival uint64
	// inVC is the downstream input VC assigned by the sender's VC selection.
	inVC int16
	// outPorts is the set of output ports this flit still has to traverse at
	// the current router (multicast forking leaves the flit in place until
	// every branch has been served). Encoded as a bitmask over Port values.
	outPorts uint8
	// bypassCandidate marks a flit that arrived this cycle with an empty
	// queue ahead of it, i.e. its lookahead may claim the switch directly.
	bypassCandidate bool
	// lastPort/lastDstVC record the most recent traversal so the input VC can
	// latch wormhole state when the head flit departs.
	lastPort  int8
	lastDstVC int8
}

// NewFlit constructs a flit value assigned to downstream input VC vc; network
// interface controllers use it to serialize packets into the mesh.
func NewFlit(p *Packet, seq, vc int) Flit {
	return Flit{Pkt: p, Seq: seq, inVC: int16(vc)}
}

// InVC returns the input virtual channel the sender assigned to the flit.
func (f *Flit) InVC() int { return int(f.inVC) }

// Arrival returns the cycle the flit was written into its current input
// buffer (diagnostics: watchdog snapshots report how long a flit has been
// stuck).
func (f *Flit) Arrival() uint64 { return f.arrival }

// IsHead reports whether the flit carries the packet header.
func (f *Flit) IsHead() bool { return f.Seq == 0 }

// IsTail reports whether the flit is the last of its packet.
func (f *Flit) IsTail() bool { return f.Seq == f.Pkt.Flits-1 }

// portMask returns the bitmask bit for a port.
func portMask(p Port) uint8 { return 1 << uint(p) }
