// Package noc implements SCORPIO's main network: a k×k mesh of three-stage
// virtual-channel routers with XY routing, credit-based flow control,
// lookahead bypassing, single-cycle multicast forking for broadcasts, a
// reserved virtual channel per input port for deadlock avoidance on the
// globally ordered request class, and SID-tracker tables that preserve
// point-to-point ordering of requests from the same source.
//
// The network carries two virtual networks (message classes):
//
//   - GO-REQ: globally ordered coherence requests. Packets are single-flit,
//     may be broadcast, and are ejected to the attached agent in the global
//     order dictated by the notification network (package notif) via the
//     network interface controller (package nic).
//   - UO-RESP: unordered coherence responses. Packets are unicast and may be
//     multi-flit (cache-line data).
package noc

import "fmt"

// VNet identifies a virtual network (message class).
type VNet int

// The two virtual networks of the SCORPIO main network.
const (
	GOReq VNet = iota
	UOResp
	NumVNets
)

// String returns the paper's name for the virtual network.
func (v VNet) String() string {
	switch v {
	case GOReq:
		return "GO-REQ"
	case UOResp:
		return "UO-RESP"
	default:
		return fmt.Sprintf("VNet(%d)", int(v))
	}
}

// Port identifies a router port.
type Port int

// Router ports. Local connects the tile's network interface controller.
const (
	Local Port = iota
	North
	East
	South
	West
	NumPorts
)

// String returns a one-letter name for the port.
func (p Port) String() string {
	switch p {
	case Local:
		return "L"
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	default:
		return fmt.Sprintf("Port(%d)", int(p))
	}
}

// opposite returns the port on the neighbouring router that faces p.
func (p Port) opposite() Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		return p
	}
}

// Config holds the main-network parameters swept in the paper's design
// exploration (Section 5.2).
type Config struct {
	// Width and Height of the mesh in tiles (6×6 for the fabricated chip).
	Width, Height int
	// ChannelBytes is the channel width in bytes (16 on the chip). It
	// determines flits per data packet.
	ChannelBytes int
	// GOReqVCs is the number of ordinary virtual channels in the GO-REQ
	// virtual network (4 on the chip), excluding the reserved VC.
	GOReqVCs int
	// GOReqBufDepth is the buffer depth per GO-REQ VC in flits (1 on the chip).
	GOReqBufDepth int
	// UORespVCs is the number of virtual channels in the UO-RESP virtual
	// network (2 on the chip).
	UORespVCs int
	// UORespBufDepth is the buffer depth per UO-RESP VC in flits (3).
	UORespBufDepth int
	// RouterStages is the router pipeline depth without bypassing (3).
	RouterStages int
	// Bypass enables lookahead bypassing (single-stage router traversal).
	Bypass bool
	// LineBytes is the cache-line size carried by data packets (32).
	LineBytes int
}

// DefaultConfig returns the fabricated 36-core chip's network parameters
// (Table 1 of the paper).
func DefaultConfig() Config {
	return Config{
		Width:          6,
		Height:         6,
		ChannelBytes:   16,
		GOReqVCs:       4,
		GOReqBufDepth:  1,
		UORespVCs:      2,
		UORespBufDepth: 3,
		RouterStages:   3,
		Bypass:         true,
		LineBytes:      32,
	}
}

// Nodes returns the number of tiles in the mesh.
func (c Config) Nodes() int { return c.Width * c.Height }

// Validate reports a descriptive error for unusable parameter combinations.
func (c Config) Validate() error {
	switch {
	case c.Width < 2 || c.Height < 2:
		return fmt.Errorf("noc: mesh must be at least 2x2, got %dx%d", c.Width, c.Height)
	case c.ChannelBytes < 1:
		return fmt.Errorf("noc: channel width must be positive, got %d", c.ChannelBytes)
	case c.GOReqVCs < 1:
		return fmt.Errorf("noc: GO-REQ needs at least 1 ordinary VC, got %d", c.GOReqVCs)
	case c.UORespVCs < 1:
		return fmt.Errorf("noc: UO-RESP needs at least 1 VC, got %d", c.UORespVCs)
	case c.GOReqBufDepth < 1 || c.UORespBufDepth < 1:
		return fmt.Errorf("noc: buffer depths must be positive")
	case c.RouterStages < 1:
		return fmt.Errorf("noc: router pipeline must have at least 1 stage")
	case c.LineBytes < 1:
		return fmt.Errorf("noc: invalid line size %d", c.LineBytes)
	}
	return nil
}

// DataPacketFlits returns the number of flits in a cache-line data packet for
// this channel width: one header flit plus ceil(line/channel) payload flits.
// At the chip's 16-byte channels and 32-byte lines this is 3 flits; 8-byte
// channels need 5 and 32-byte channels 2, matching Section 5.2.
func (c Config) DataPacketFlits() int {
	return 1 + (c.LineBytes+c.ChannelBytes-1)/c.ChannelBytes
}

// VCsFor returns the number of ordinary VCs for a virtual network.
func (c Config) VCsFor(v VNet) int {
	if v == GOReq {
		return c.GOReqVCs
	}
	return c.UORespVCs
}

// BufDepthFor returns the per-VC buffer depth for a virtual network.
func (c Config) BufDepthFor(v VNet) int {
	if v == GOReq {
		return c.GOReqBufDepth
	}
	return c.UORespBufDepth
}

// Coord converts a node ID to mesh (x, y) coordinates, row-major with node 0
// at the north-west corner (matching the chip's tile numbering).
func (c Config) Coord(node int) (x, y int) {
	return node % c.Width, node / c.Width
}

// NodeAt converts (x, y) coordinates to a node ID.
func (c Config) NodeAt(x, y int) int {
	return y*c.Width + x
}

// ESIDProvider exposes the expected request of a node's network interface
// controller. Routers consult it when deciding whether a GO-REQ flit may
// claim a reserved virtual channel: only the exact (SID, source-sequence)
// occurrence a NIC in the flit's remaining delivery subtree is waiting for
// is eligible.
type ESIDProvider interface {
	// ExpectedSID returns the SID the node's NIC is currently waiting for
	// and the per-source sequence number of that occurrence; ok is false
	// when the NIC has no pending global order (idle).
	ExpectedSID() (sid int, seq uint64, ok bool)
}
