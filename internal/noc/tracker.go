package noc

// TotalVCs returns the number of virtual channels for a virtual network
// including the reserved deadlock-avoidance VC of GO-REQ.
func (c Config) TotalVCs(v VNet) int {
	if v == GOReq {
		return c.GOReqVCs + 1
	}
	return c.UORespVCs
}

// ReservedVC returns the reserved VC index for the virtual network, or -1 if
// the class has none. For GO-REQ the reserved VC is the last index.
func (c Config) ReservedVC(v VNet) int {
	if v == GOReq {
		return c.GOReqVCs
	}
	return -1
}

// OutputTracker is the upstream-side book-keeping for one downstream input
// port: per-VC credit counts, VC allocation state, and the GO-REQ SID tracker
// table that enforces point-to-point ordering of same-source requests
// (Section 3.2 of the paper). Routers keep one per output port and the
// network interface controller keeps one for its injection port.
type OutputTracker struct {
	cfg     Config
	credits [NumVNets][]int
	vcBusy  [NumVNets][]bool
	sid     []int // per GO-REQ VC: SID in flight, or -1
}

// NewOutputTracker returns a tracker with all credits available, sized for
// the downstream input port described by cfg.
func NewOutputTracker(cfg Config) *OutputTracker {
	t := &OutputTracker{cfg: cfg}
	for v := VNet(0); v < NumVNets; v++ {
		n := cfg.TotalVCs(v)
		t.credits[v] = make([]int, n)
		t.vcBusy[v] = make([]bool, n)
		for i := 0; i < n; i++ {
			t.credits[v][i] = cfg.BufDepthFor(v)
		}
	}
	t.sid = make([]int, cfg.TotalVCs(GOReq))
	for i := range t.sid {
		t.sid[i] = -1
	}
	return t
}

// ProcessCredit applies one returned credit.
func (t *OutputTracker) ProcessCredit(c Credit) {
	t.credits[c.VNet][c.VC]++
	if t.credits[c.VNet][c.VC] > t.cfg.BufDepthFor(c.VNet) {
		panic("noc: credit overflow — downstream returned more credits than buffer slots")
	}
	if c.FreeVC {
		t.vcBusy[c.VNet][c.VC] = false
		if c.VNet == GOReq {
			t.sid[c.VC] = -1
		}
	}
}

// sidInFlight reports whether any GO-REQ VC of this port currently holds a
// request with the given SID.
func (t *OutputTracker) sidInFlight(sid int) bool {
	for _, s := range t.sid {
		if s == sid {
			return true
		}
	}
	return false
}

// AllocHeadVC finds a free downstream VC with credit for a head flit.
// For GO-REQ it enforces the SID tracker rule (a same-SID request must not
// already be in flight to this input port) and admits the reserved VC only
// when rvcEligible is true (the flit's SID equals the downstream NIC's
// ESID). It returns the chosen VC without claiming it; call ClaimHeadVC on
// the winning flit.
func (t *OutputTracker) AllocHeadVC(v VNet, sid int, rvcEligible bool) (int, bool) {
	if v == GOReq {
		if t.sidInFlight(sid) {
			return 0, false
		}
		for i := 0; i < t.cfg.GOReqVCs; i++ {
			if !t.vcBusy[v][i] && t.credits[v][i] > 0 {
				return i, true
			}
		}
		if rvcEligible {
			r := t.cfg.ReservedVC(v)
			if !t.vcBusy[v][r] && t.credits[v][r] > 0 {
				return r, true
			}
		}
		return 0, false
	}
	for i := 0; i < t.cfg.UORespVCs; i++ {
		if !t.vcBusy[v][i] && t.credits[v][i] > 0 {
			return i, true
		}
	}
	return 0, false
}

// ClaimHeadVC marks the VC busy, charges one credit and records the SID in
// the tracker table for GO-REQ.
func (t *OutputTracker) ClaimHeadVC(v VNet, vc, sid int) {
	t.vcBusy[v][vc] = true
	t.credits[v][vc]--
	if t.credits[v][vc] < 0 {
		panic("noc: sent flit without credit")
	}
	if v == GOReq {
		t.sid[vc] = sid
	}
}

// CanSendBody reports whether a body/tail flit may be sent on an already
// allocated VC.
func (t *OutputTracker) CanSendBody(v VNet, vc int) bool {
	return t.credits[v][vc] > 0
}

// ChargeBody consumes one credit for a body/tail flit.
func (t *OutputTracker) ChargeBody(v VNet, vc int) {
	t.credits[v][vc]--
	if t.credits[v][vc] < 0 {
		panic("noc: sent body flit without credit")
	}
}

// Credits exposes the current credit count (for tests and stats).
func (t *OutputTracker) Credits(v VNet, vc int) int { return t.credits[v][vc] }

// Busy exposes the VC allocation state (for tests and stats).
func (t *OutputTracker) Busy(v VNet, vc int) bool { return t.vcBusy[v][vc] }

// TrackedSID exposes the SID tracker entry for a GO-REQ VC (for tests).
func (t *OutputTracker) TrackedSID(vc int) int { return t.sid[vc] }
