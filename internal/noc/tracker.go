package noc

// TotalVCs returns the number of virtual channels for a virtual network
// including the reserved deadlock-avoidance VC of GO-REQ.
func (c Config) TotalVCs(v VNet) int {
	if v == GOReq {
		return c.GOReqVCs + 1
	}
	return c.UORespVCs
}

// ReservedVC returns the reserved VC index for the virtual network, or -1 if
// the class has none. For GO-REQ the reserved VC is the last index.
func (c Config) ReservedVC(v VNet) int {
	if v == GOReq {
		return c.GOReqVCs
	}
	return -1
}

// OutputTracker is the upstream-side book-keeping for one downstream input
// port: per-VC credit counts, VC allocation state, and the GO-REQ SID tracker
// table that enforces point-to-point ordering of same-source requests
// (Section 3.2 of the paper). Routers keep one per output port and the
// network interface controller keeps one for its injection port.
type OutputTracker struct {
	cfg     Config
	credits [NumVNets][]int
	vcBusy  [NumVNets][]bool
	sid     []int // per GO-REQ VC: SID in flight, or -1
}

// NewOutputTracker returns a tracker with all credits available, sized for
// the downstream input port described by cfg.
func NewOutputTracker(cfg Config) *OutputTracker {
	t := &OutputTracker{cfg: cfg}
	for v := VNet(0); v < NumVNets; v++ {
		n := cfg.TotalVCs(v)
		t.credits[v] = make([]int, n)
		t.vcBusy[v] = make([]bool, n)
		for i := 0; i < n; i++ {
			t.credits[v][i] = cfg.BufDepthFor(v)
		}
	}
	t.sid = make([]int, cfg.TotalVCs(GOReq))
	for i := range t.sid {
		t.sid[i] = -1
	}
	return t
}

// ProcessCredit applies one returned credit.
func (t *OutputTracker) ProcessCredit(c Credit) {
	t.credits[c.VNet][c.VC]++
	if t.credits[c.VNet][c.VC] > t.cfg.BufDepthFor(c.VNet) {
		panic("noc: credit overflow — downstream returned more credits than buffer slots")
	}
	if c.FreeVC {
		t.vcBusy[c.VNet][c.VC] = false
		if c.VNet == GOReq {
			t.sid[c.VC] = -1
		}
	}
}

// sidInFlight reports whether any GO-REQ VC of this port currently holds a
// request with the given SID.
func (t *OutputTracker) sidInFlight(sid int) bool {
	for _, s := range t.sid {
		if s == sid {
			return true
		}
	}
	return false
}

// AllocHeadVC finds a free downstream VC with credit for a head flit.
// For GO-REQ it enforces the SID tracker rule (a same-SID request must not
// already be in flight to this input port) and admits the reserved VC only
// when rvcEligible is true (the flit's SID equals the downstream NIC's
// ESID). It returns the chosen VC without claiming it; call ClaimHeadVC on
// the winning flit.
func (t *OutputTracker) AllocHeadVC(v VNet, sid int, rvcEligible bool) (int, bool) {
	if v == GOReq {
		if t.sidInFlight(sid) {
			return 0, false
		}
		for i := 0; i < t.cfg.GOReqVCs; i++ {
			if !t.vcBusy[v][i] && t.credits[v][i] > 0 {
				return i, true
			}
		}
		if rvcEligible {
			r := t.cfg.ReservedVC(v)
			if !t.vcBusy[v][r] && t.credits[v][r] > 0 {
				return r, true
			}
		}
		return 0, false
	}
	for i := 0; i < t.cfg.UORespVCs; i++ {
		if !t.vcBusy[v][i] && t.credits[v][i] > 0 {
			return i, true
		}
	}
	return 0, false
}

// ClaimHeadVC marks the VC busy, charges one credit and records the SID in
// the tracker table for GO-REQ.
func (t *OutputTracker) ClaimHeadVC(v VNet, vc, sid int) {
	t.vcBusy[v][vc] = true
	t.credits[v][vc]--
	if t.credits[v][vc] < 0 {
		panic("noc: sent flit without credit")
	}
	if v == GOReq {
		t.sid[vc] = sid
	}
}

// CanSendBody reports whether a body/tail flit may be sent on an already
// allocated VC.
func (t *OutputTracker) CanSendBody(v VNet, vc int) bool {
	return t.credits[v][vc] > 0
}

// ChargeBody consumes one credit for a body/tail flit.
func (t *OutputTracker) ChargeBody(v VNet, vc int) {
	t.credits[v][vc]--
	if t.credits[v][vc] < 0 {
		panic("noc: sent body flit without credit")
	}
}

// Credits exposes the current credit count (for tests and stats).
func (t *OutputTracker) Credits(v VNet, vc int) int { return t.credits[v][vc] }

// Busy exposes the VC allocation state (for tests and stats).
func (t *OutputTracker) Busy(v VNet, vc int) bool { return t.vcBusy[v][vc] }

// TrackedSID exposes the SID tracker entry for a GO-REQ VC (for tests).
func (t *OutputTracker) TrackedSID(vc int) int { return t.sid[vc] }

// trackerTable is the router's structure-of-arrays replacement for five
// per-port OutputTracker objects: credits, busy flags and SID entries for
// every (output port, VC) pair live in flat parallel slices indexed by
//
//	int(port)*vcsPerPort + flat VC
//
// with GO-REQ VCs (including the reserved one) below split and UO-RESP VCs
// above it — the same flat VC numbering the router's input-side tables use.
// Semantics are identical to OutputTracker's, per port. Single-port users
// (the NIC's injection port, baseline endpoints, traffic sinks) keep using
// OutputTracker; the table only pays off where one component owns several
// ports.
type trackerTable struct {
	vcsPerPort int
	split      int // GO-REQ VC count (ordinary + reserved)
	goVCs      int // ordinary GO-REQ VCs (excluding the reserved one)
	uoVCs      int
	goDepth    int16
	uoDepth    int16
	credits    []int16
	busy       []bool
	sid        []int32 // GO-REQ entries only; -1 = none in flight
}

func newTrackerTable(cfg Config) trackerTable {
	t := trackerTable{
		split:   cfg.TotalVCs(GOReq),
		goVCs:   cfg.GOReqVCs,
		uoVCs:   cfg.UORespVCs,
		goDepth: int16(cfg.BufDepthFor(GOReq)),
		uoDepth: int16(cfg.BufDepthFor(UOResp)),
	}
	t.vcsPerPort = t.split + t.uoVCs
	n := int(NumPorts) * t.vcsPerPort
	t.credits = make([]int16, n)
	t.busy = make([]bool, n)
	t.sid = make([]int32, n)
	for i := range t.credits {
		if i%t.vcsPerPort < t.split {
			t.credits[i] = t.goDepth
		} else {
			t.credits[i] = t.uoDepth
		}
		t.sid[i] = -1
	}
	return t
}

// flat returns the table index for (port, vnet, vc).
func (t *trackerTable) flat(p Port, v VNet, vc int) int {
	i := int(p)*t.vcsPerPort + vc
	if v == UOResp {
		i += t.split
	}
	return i
}

// depth returns the downstream buffer depth for a vnet.
func (t *trackerTable) depth(v VNet) int16 {
	if v == GOReq {
		return t.goDepth
	}
	return t.uoDepth
}

// processCredit applies one returned credit for a port.
func (t *trackerTable) processCredit(p Port, c Credit) {
	i := t.flat(p, c.VNet, c.VC)
	t.credits[i]++
	if t.credits[i] > t.depth(c.VNet) {
		panic("noc: credit overflow — downstream returned more credits than buffer slots")
	}
	if c.FreeVC {
		t.busy[i] = false
		if c.VNet == GOReq {
			t.sid[i] = -1
		}
	}
}

// sidInFlight reports whether any GO-REQ VC of the port currently holds a
// request with the given SID.
func (t *trackerTable) sidInFlight(p Port, sid int) bool {
	base := int(p) * t.vcsPerPort
	for i := base; i < base+t.split; i++ {
		if t.sid[i] == int32(sid) {
			return true
		}
	}
	return false
}

// allocHeadVC mirrors OutputTracker.AllocHeadVC for one port.
func (t *trackerTable) allocHeadVC(p Port, v VNet, sid int, rvcEligible bool) (int, bool) {
	base := int(p) * t.vcsPerPort
	if v == GOReq {
		if t.sidInFlight(p, sid) {
			return 0, false
		}
		for vc := 0; vc < t.goVCs; vc++ {
			if i := base + vc; !t.busy[i] && t.credits[i] > 0 {
				return vc, true
			}
		}
		if rvcEligible {
			rvc := t.goVCs // reserved VC is the last GO-REQ index
			if i := base + rvc; !t.busy[i] && t.credits[i] > 0 {
				return rvc, true
			}
		}
		return 0, false
	}
	for vc := 0; vc < t.uoVCs; vc++ {
		if i := base + t.split + vc; !t.busy[i] && t.credits[i] > 0 {
			return vc, true
		}
	}
	return 0, false
}

// claimHeadVC marks the VC busy, charges one credit and records the SID in
// the tracker table for GO-REQ.
func (t *trackerTable) claimHeadVC(p Port, v VNet, vc, sid int) {
	i := t.flat(p, v, vc)
	t.busy[i] = true
	t.credits[i]--
	if t.credits[i] < 0 {
		panic("noc: sent flit without credit")
	}
	if v == GOReq {
		t.sid[i] = int32(sid)
	}
}

// canSendBody reports whether a body/tail flit may be sent on an already
// allocated VC.
func (t *trackerTable) canSendBody(p Port, v VNet, vc int) bool {
	return t.credits[t.flat(p, v, vc)] > 0
}

// chargeBody consumes one credit for a body/tail flit.
func (t *trackerTable) chargeBody(p Port, v VNet, vc int) {
	i := t.flat(p, v, vc)
	t.credits[i]--
	if t.credits[i] < 0 {
		panic("noc: sent body flit without credit")
	}
}

// TrackerView is a read-only window onto one output port's slice of a
// router's tracker table, with the same accessors OutputTracker exposes so
// diagnostics (Mesh.Snapshot, watchdog reports) and tests are layout-
// agnostic.
type TrackerView struct {
	r *Router
	p Port
}

// Credits exposes the current credit count for the viewed port.
func (tv TrackerView) Credits(v VNet, vc int) int {
	return int(tv.r.trk.credits[tv.r.trk.flat(tv.p, v, vc)])
}

// Busy exposes the VC allocation state for the viewed port.
func (tv TrackerView) Busy(v VNet, vc int) bool {
	return tv.r.trk.busy[tv.r.trk.flat(tv.p, v, vc)]
}

// TrackedSID exposes the SID tracker entry for a GO-REQ VC of the viewed
// port.
func (tv TrackerView) TrackedSID(vc int) int {
	return int(tv.r.trk.sid[tv.r.trk.flat(tv.p, GOReq, vc)])
}
