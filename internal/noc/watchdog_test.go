package noc

import (
	"strings"
	"testing"

	"scorpio/internal/obs"
	"scorpio/internal/sim"
)

// starvedEndpoint injects like testEndpoint but never consumes its eject
// link: arriving flits sit on the link, no credits flow back, and the
// routers upstream of the destination starve.
type starvedEndpoint struct {
	*testEndpoint
}

func (e *starvedEndpoint) Evaluate(cycle uint64) {
	inj := e.mesh.InjectLink(e.node)
	for _, c := range inj.Credits(cycle) {
		e.tr.ProcessCredit(c)
	}
	// Deliberately NOT draining the eject link.
	if e.inFlight == nil && len(e.sendQ) > 0 {
		e.inFlight = e.sendQ[0]
		e.nextSeq = 0
	}
	if e.inFlight == nil {
		return
	}
	p := e.inFlight
	if e.nextSeq == 0 {
		vc, ok := e.tr.AllocHeadVC(p.VNet, p.SID, false)
		if !ok {
			return
		}
		e.tr.ClaimHeadVC(p.VNet, vc, p.SID)
		e.curVC = vc
		p.NetworkEntry = cycle
	} else if !e.tr.CanSendBody(p.VNet, e.curVC) {
		return
	} else {
		e.tr.ChargeBody(p.VNet, e.curVC)
	}
	inj.Send(NewFlit(p, e.nextSeq, e.curVC), cycle)
	e.nextSeq++
	if e.nextSeq == p.Flits {
		e.inFlight = nil
		e.sendQ = e.sendQ[1:]
	}
}

// TestWatchdogNamesStarvedRouter forces a credit-starved stall — node 3
// never drains its eject link while node 0 keeps sending it multi-flit
// responses — and checks the watchdog trips with a snapshot that names the
// router and VC holding the oldest stuck flit.
func TestWatchdogNamesStarvedRouter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 2, 2
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	eps := make([]*testEndpoint, cfg.Nodes())
	for i := range eps {
		eps[i] = newTestEndpoint(m, i)
		var ep sim.Component = eps[i]
		if i == 3 {
			ep = &starvedEndpoint{eps[i]}
		}
		m.AttachESID(i, eps[i])
		k.Register(ep)
	}
	m.Register(k)
	for i := 0; i < 20; i++ {
		eps[0].Queue(&Packet{ID: m.NextPacketID(), VNet: UOResp, Src: 0, Dst: 3, Flits: 5})
	}

	wd := obs.NewWatchdog(100,
		func() (uint64, bool) {
			return uint64(len(eps[3].Received)), m.BufferedFlits() > 0
		},
		func() string { return m.Snapshot(k.Cycle()) },
	)
	k.SetObserver(wd.Observe)
	k.RunUntil(wd.Stalled, 5000)

	if !wd.Stalled() {
		t.Fatal("credit-starved network never tripped the watchdog")
	}
	report := wd.Report()
	if !strings.Contains(report, "no ejections for 100 cycles") {
		t.Errorf("report missing stall summary:\n%s", report)
	}
	if !strings.Contains(report, "culprit: router") {
		t.Errorf("report does not name a culprit router:\n%s", report)
	}
	if !strings.Contains(report, "vc") {
		t.Errorf("report does not name the stuck VC:\n%s", report)
	}
	// The stuck traffic heads to node 3; the culprit must be one of the
	// routers on the XY path 0 -> 1 -> 3, not some unrelated corner.
	culprit := report[strings.Index(report, "culprit: router"):]
	if !strings.HasPrefix(culprit, "culprit: router 0") &&
		!strings.HasPrefix(culprit, "culprit: router 1") &&
		!strings.HasPrefix(culprit, "culprit: router 3") {
		t.Errorf("culprit router not on the starved path:\n%s", report)
	}
}

// TestWatchdogSilentOnHealthyTraffic drives the same mesh with draining
// endpoints and a tight threshold: the watchdog must never trip.
func TestWatchdogSilentOnHealthyTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 2, 2
	k, m, eps := testNet(t, cfg)
	for i := 0; i < 20; i++ {
		eps[0].Queue(&Packet{ID: m.NextPacketID(), VNet: UOResp, Src: 0, Dst: 3, Flits: 5})
	}
	wd := obs.NewWatchdog(100,
		func() (uint64, bool) {
			return uint64(len(eps[3].Received)), m.BufferedFlits() > 0
		},
		func() string { return m.Snapshot(k.Cycle()) },
	)
	k.SetObserver(wd.Observe)
	drain(t, k, func() bool { return wd.Stalled() || len(eps[3].Received) == 20 }, 5000)
	if wd.Stalled() {
		t.Fatalf("healthy run tripped the watchdog:\n%s", wd.Report())
	}
}
