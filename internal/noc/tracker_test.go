package noc

import "testing"

func TestOutputTrackerCreditLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	tr := NewOutputTracker(cfg)
	vc, ok := tr.AllocHeadVC(UOResp, 0, false)
	if !ok {
		t.Fatal("fresh tracker must have a free VC")
	}
	tr.ClaimHeadVC(UOResp, vc, 0)
	if !tr.Busy(UOResp, vc) || tr.Credits(UOResp, vc) != cfg.UORespBufDepth-1 {
		t.Fatal("claim must mark busy and charge a credit")
	}
	tr.ChargeBody(UOResp, vc)
	tr.ChargeBody(UOResp, vc)
	if tr.CanSendBody(UOResp, vc) {
		t.Fatal("credits exhausted, body send must be blocked")
	}
	tr.ProcessCredit(Credit{VNet: UOResp, VC: vc})
	if !tr.CanSendBody(UOResp, vc) {
		t.Fatal("credit return must re-enable sends")
	}
	tr.ProcessCredit(Credit{VNet: UOResp, VC: vc})
	tr.ProcessCredit(Credit{VNet: UOResp, VC: vc, FreeVC: true})
	if tr.Busy(UOResp, vc) {
		t.Fatal("FreeVC credit must release the VC")
	}
}

func TestOutputTrackerSIDExclusion(t *testing.T) {
	tr := NewOutputTracker(DefaultConfig())
	vc, ok := tr.AllocHeadVC(GOReq, 7, false)
	if !ok {
		t.Fatal("alloc failed")
	}
	tr.ClaimHeadVC(GOReq, vc, 7)
	if tr.TrackedSID(vc) != 7 {
		t.Fatal("SID tracker entry missing")
	}
	if _, ok := tr.AllocHeadVC(GOReq, 7, true); ok {
		t.Fatal("a same-SID request must not be in flight twice to one port")
	}
	if _, ok := tr.AllocHeadVC(GOReq, 8, false); !ok {
		t.Fatal("a different SID must still be admitted")
	}
	tr.ProcessCredit(Credit{VNet: GOReq, VC: vc, FreeVC: true})
	if tr.TrackedSID(vc) != -1 {
		t.Fatal("SID tracker entry must clear with the credit")
	}
	if _, ok := tr.AllocHeadVC(GOReq, 7, false); !ok {
		t.Fatal("SID admissible again after the first request cleared")
	}
}

func TestOutputTrackerReservedVCEligibility(t *testing.T) {
	cfg := DefaultConfig()
	tr := NewOutputTracker(cfg)
	// Exhaust the normal GO-REQ VCs with distinct SIDs.
	for i := 0; i < cfg.GOReqVCs; i++ {
		vc, ok := tr.AllocHeadVC(GOReq, i, false)
		if !ok {
			t.Fatalf("normal VC %d not allocatable", i)
		}
		tr.ClaimHeadVC(GOReq, vc, i)
	}
	if _, ok := tr.AllocHeadVC(GOReq, 99, false); ok {
		t.Fatal("ineligible flit must not get the reserved VC")
	}
	rvc, ok := tr.AllocHeadVC(GOReq, 99, true)
	if !ok || rvc != cfg.ReservedVC(GOReq) {
		t.Fatalf("eligible flit must get the reserved VC, got %d ok=%v", rvc, ok)
	}
}

func TestConfigVCCounts(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.TotalVCs(GOReq) != cfg.GOReqVCs+1 {
		t.Fatal("GO-REQ must include the reserved VC")
	}
	if cfg.TotalVCs(UOResp) != cfg.UORespVCs {
		t.Fatal("UO-RESP has no reserved VC")
	}
	if cfg.ReservedVC(UOResp) != -1 {
		t.Fatal("UO-RESP reserved index must be -1")
	}
}
