package noc

import (
	"testing"

	"scorpio/internal/sim"
)

// testEndpoint is a minimal agent for network-level tests: it injects queued
// packets and consumes arriving flits immediately, returning credits.
type testEndpoint struct {
	cfg      Config
	node     int
	mesh     *Mesh
	tr       *OutputTracker
	sendQ    []*Packet
	inFlight *Packet // packet currently being serialized
	nextSeq  int
	curVC    int
	Received []*Packet
	arrivals map[uint64]int // packet ID -> flits seen
}

func newTestEndpoint(mesh *Mesh, node int) *testEndpoint {
	return &testEndpoint{
		cfg:      mesh.Config(),
		node:     node,
		mesh:     mesh,
		tr:       NewOutputTracker(mesh.Config()),
		arrivals: map[uint64]int{},
	}
}

func (e *testEndpoint) ExpectedSID() (int, uint64, bool) { return 0, 0, false }

func (e *testEndpoint) Queue(p *Packet) { e.sendQ = append(e.sendQ, p) }

func (e *testEndpoint) Evaluate(cycle uint64) {
	inj := e.mesh.InjectLink(e.node)
	for _, c := range inj.Credits(cycle) {
		e.tr.ProcessCredit(c)
	}
	// Consume arriving flits immediately (no ordering in pure-noc tests).
	ej := e.mesh.EjectLink(e.node)
	if f := ej.Flit(cycle); f != nil {
		e.arrivals[f.Pkt.ID]++
		ej.SendCredit(Credit{VNet: f.Pkt.VNet, VC: f.InVC(), FreeVC: f.IsTail()}, cycle)
		if f.IsTail() {
			f.Pkt.ArriveCycle = cycle
			e.Received = append(e.Received, f.Pkt)
		}
	}
	// Inject at most one flit per cycle.
	if e.inFlight == nil && len(e.sendQ) > 0 {
		e.inFlight = e.sendQ[0]
		e.nextSeq = 0
	}
	if e.inFlight == nil {
		return
	}
	p := e.inFlight
	if e.nextSeq == 0 {
		vc, ok := e.tr.AllocHeadVC(p.VNet, p.SID, false)
		if !ok {
			return
		}
		e.tr.ClaimHeadVC(p.VNet, vc, p.SID)
		e.curVC = vc
		p.NetworkEntry = cycle
	} else if !e.tr.CanSendBody(p.VNet, e.curVC) {
		return
	} else {
		e.tr.ChargeBody(p.VNet, e.curVC)
	}
	inj.Send(NewFlit(p, e.nextSeq, e.curVC), cycle)
	e.nextSeq++
	if e.nextSeq == p.Flits {
		e.inFlight = nil
		e.sendQ = e.sendQ[1:]
	}
}

func (e *testEndpoint) Commit(cycle uint64) {}

// testNet builds a mesh with one testEndpoint per node, all registered on a
// kernel.
func testNet(t *testing.T, cfg Config) (*sim.Kernel, *Mesh, []*testEndpoint) {
	t.Helper()
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	eps := make([]*testEndpoint, cfg.Nodes())
	for i := range eps {
		eps[i] = newTestEndpoint(m, i)
		m.AttachESID(i, eps[i])
		k.Register(eps[i])
	}
	m.Register(k)
	return k, m, eps
}

func drain(t *testing.T, k *sim.Kernel, done func() bool, limit uint64) {
	t.Helper()
	if !k.RunUntil(done, k.Cycle()+limit) {
		t.Fatal("network did not drain within the cycle limit")
	}
}

func TestUnicastDeliveryAndLatencyWithBypass(t *testing.T) {
	cfg := DefaultConfig()
	k, m, eps := testNet(t, cfg)
	p := &Packet{ID: m.NextPacketID(), VNet: UOResp, Src: 0, Dst: 35, Flits: 1, InjectCycle: 0}
	eps[0].Queue(p)
	drain(t, k, func() bool { return len(eps[35].Received) == 1 }, 200)
	// Path: inject link (1) + 11 routers on the XY path, each 1-cycle bypass
	// + 1-cycle outgoing link.
	hops := 10 // manhattan distance 0 -> 35 in 6x6
	want := uint64(1 + (hops+1)*2)
	got := p.ArriveCycle - p.NetworkEntry
	if got != want {
		t.Fatalf("bypass latency = %d cycles, want %d", got, want)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnicastLatencyWithoutBypass(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bypass = false
	k, _, eps := testNet(t, cfg)
	p := &Packet{ID: 1, VNet: UOResp, Src: 0, Dst: 35, Flits: 1}
	eps[0].Queue(p)
	drain(t, k, func() bool { return len(eps[35].Received) == 1 }, 400)
	hops := 10
	want := uint64(1 + (hops+1)*4) // 3-stage router + link per hop
	got := p.ArriveCycle - p.NetworkEntry
	if got != want {
		t.Fatalf("no-bypass latency = %d cycles, want %d", got, want)
	}
}

func TestBroadcastReachesEveryOtherNodeExactlyOnce(t *testing.T) {
	cfg := DefaultConfig()
	for _, src := range []int{0, 7, 14, 21, 35, 5, 30} {
		k, m, eps := testNet(t, cfg)
		p := &Packet{ID: m.NextPacketID(), VNet: GOReq, Src: src, SID: src, Broadcast: true, Flits: 1}
		eps[src].Queue(p)
		drain(t, k, func() bool {
			n := 0
			for i, e := range eps {
				if i != src && len(e.Received) > 0 {
					n++
				}
			}
			return n == cfg.Nodes()-1
		}, 500)
		k.Run(100) // allow any duplicates to surface
		for i, e := range eps {
			want := 1
			if i == src {
				want = 0
			}
			if got := e.arrivals[p.ID]; got != want {
				t.Fatalf("src %d: node %d received %d copies, want %d", src, i, got, want)
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMultiFlitPacketArrivesInOrder(t *testing.T) {
	cfg := DefaultConfig()
	k, m, eps := testNet(t, cfg)
	p := &Packet{ID: m.NextPacketID(), VNet: UOResp, Src: 3, Dst: 32, Flits: cfg.DataPacketFlits()}
	eps[3].Queue(p)
	drain(t, k, func() bool { return len(eps[32].Received) == 1 }, 300)
	if got := eps[32].arrivals[p.ID]; got != p.Flits {
		t.Fatalf("received %d flits, want %d", got, p.Flits)
	}
}

func TestPointToPointOrderingSameSource(t *testing.T) {
	cfg := DefaultConfig()
	k, m, eps := testNet(t, cfg)
	const n = 20
	ids := make([]uint64, n)
	for i := 0; i < n; i++ {
		p := &Packet{ID: m.NextPacketID(), VNet: GOReq, Src: 7, SID: 7, Broadcast: true, Flits: 1}
		ids[i] = p.ID
		eps[7].Queue(p)
	}
	drain(t, k, func() bool {
		for i, e := range eps {
			if i != 7 && len(e.Received) < n {
				return false
			}
		}
		return true
	}, 5000)
	for node, e := range eps {
		if node == 7 {
			continue
		}
		for i, p := range e.Received {
			if p.ID != ids[i] {
				t.Fatalf("node %d received packet %d at position %d, want %d — same-source requests reordered", node, p.ID, i, ids[i])
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCreditsRestoredAfterDrain(t *testing.T) {
	cfg := DefaultConfig()
	k, m, eps := testNet(t, cfg)
	rng := sim.NewRNG(1)
	total := 0
	for src := 0; src < cfg.Nodes(); src++ {
		for j := 0; j < 3; j++ {
			dst := rng.Intn(cfg.Nodes())
			if dst == src {
				continue
			}
			eps[src].Queue(&Packet{ID: m.NextPacketID(), VNet: UOResp, Src: src, Dst: dst, Flits: 1 + rng.Intn(3)})
			total++
		}
	}
	want := total
	drain(t, k, func() bool {
		got := 0
		for _, e := range eps {
			got += len(e.Received)
		}
		return got == want
	}, 20000)
	k.Run(50)
	for node := 0; node < cfg.Nodes(); node++ {
		r := m.Router(node)
		for p := Port(0); p < NumPorts; p++ {
			tr, ok := r.OutputState(p)
			if !ok {
				continue
			}
			for v := VNet(0); v < NumVNets; v++ {
				for i := 0; i < cfg.TotalVCs(v); i++ {
					if got := tr.Credits(v, i); got != cfg.BufDepthFor(v) {
						t.Fatalf("router %d port %s %s vc%d: credits %d after drain, want %d", node, p, v, i, got, cfg.BufDepthFor(v))
					}
					if tr.Busy(v, i) {
						t.Fatalf("router %d port %s %s vc%d still busy after drain", node, p, v, i)
					}
				}
			}
		}
	}
}

func TestRandomTrafficAllDeliveredExactlyOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	k, m, eps := testNet(t, cfg)
	rng := sim.NewRNG(42)
	type expect struct{ dst int }
	sent := map[uint64]expect{}
	for i := 0; i < 200; i++ {
		src := rng.Intn(cfg.Nodes())
		dst := rng.Intn(cfg.Nodes())
		if dst == src {
			continue
		}
		flits := 1
		vnet := UOResp
		if rng.Bernoulli(0.5) {
			flits = cfg.DataPacketFlits()
		}
		p := &Packet{ID: m.NextPacketID(), VNet: vnet, Src: src, Dst: dst, Flits: flits}
		sent[p.ID] = expect{dst: dst}
		eps[src].Queue(p)
	}
	drain(t, k, func() bool {
		got := 0
		for _, e := range eps {
			got += len(e.Received)
		}
		return got == len(sent)
	}, 100000)
	k.Run(100)
	seen := map[uint64]int{}
	for node, e := range eps {
		for _, p := range e.Received {
			seen[p.ID]++
			if want := sent[p.ID].dst; want != node {
				t.Fatalf("packet %d delivered to node %d, want %d", p.ID, node, want)
			}
		}
	}
	for id := range sent {
		if seen[id] != 1 {
			t.Fatalf("packet %d delivered %d times", id, seen[id])
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMixedVNetTrafficKeepsClassesIndependent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	k, m, eps := testNet(t, cfg)
	// Saturate GO-REQ with broadcasts while UO-RESP unicasts flow.
	for i := 0; i < 10; i++ {
		eps[0].Queue(&Packet{ID: m.NextPacketID(), VNet: GOReq, Src: 0, SID: 0, Broadcast: true, Flits: 1})
	}
	resp := &Packet{ID: m.NextPacketID(), VNet: UOResp, Src: 15, Dst: 0, Flits: 3}
	eps[15].Queue(resp)
	drain(t, k, func() bool { return len(eps[0].Received) >= 1 }, 5000)
	if eps[0].arrivals[resp.ID] != 3 {
		t.Fatalf("UO-RESP packet incomplete: %d flits", eps[0].arrivals[resp.ID])
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Width = 1 },
		func(c *Config) { c.ChannelBytes = 0 },
		func(c *Config) { c.GOReqVCs = 0 },
		func(c *Config) { c.UORespVCs = 0 },
		func(c *Config) { c.GOReqBufDepth = 0 },
		func(c *Config) { c.RouterStages = 0 },
		func(c *Config) { c.LineBytes = 0 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestDataPacketFlits(t *testing.T) {
	cases := []struct {
		channel, want int
	}{{8, 5}, {16, 3}, {32, 2}}
	for _, c := range cases {
		cfg := DefaultConfig()
		cfg.ChannelBytes = c.channel
		if got := cfg.DataPacketFlits(); got != c.want {
			t.Fatalf("channel %dB: flits = %d, want %d", c.channel, got, c.want)
		}
	}
}

func TestCoordRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	for n := 0; n < cfg.Nodes(); n++ {
		x, y := cfg.Coord(n)
		if cfg.NodeAt(x, y) != n {
			t.Fatalf("coord round trip failed for node %d", n)
		}
		if x < 0 || x >= cfg.Width || y < 0 || y >= cfg.Height {
			t.Fatalf("node %d coordinates (%d,%d) out of range", n, x, y)
		}
	}
}

func TestPortOpposite(t *testing.T) {
	pairs := map[Port]Port{North: South, South: North, East: West, West: East, Local: Local}
	for p, want := range pairs {
		if got := p.opposite(); got != want {
			t.Fatalf("%s.opposite() = %s, want %s", p, got, want)
		}
	}
}

func TestRectangularMeshTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 6, 3
	k, m, eps := testNet(t, cfg)
	// Broadcast from a corner and the center of a non-square mesh.
	for _, src := range []int{0, 9, 17} {
		p := &Packet{ID: m.NextPacketID(), VNet: GOReq, Src: src, SID: src, Broadcast: true, Flits: 1}
		eps[src].Queue(p)
	}
	drain(t, k, func() bool {
		total := 0
		for _, e := range eps {
			total += len(e.Received)
		}
		return total == 3*(cfg.Nodes()-1)
	}, 2000)
	k.Run(50)
	for i, e := range eps {
		want := 3
		switch i {
		case 0, 9, 17:
			want = 2
		}
		if len(e.Received) != want {
			t.Fatalf("node %d received %d broadcasts, want %d", i, len(e.Received), want)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastCoverageProperty(t *testing.T) {
	// For random mesh shapes and sources, the XY multicast tree covers every
	// node except the source exactly once (checked via the static coverage
	// tables the reserved-VC logic uses).
	rng := sim.NewRNG(31)
	for trial := 0; trial < 30; trial++ {
		cfg := DefaultConfig()
		cfg.Width = 2 + rng.Intn(6)
		cfg.Height = 2 + rng.Intn(6)
		m, err := NewMesh(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.Intn(cfg.Nodes())
		covered := map[int]int{}
		r := m.routers[src]
		for p := Port(North); p < NumPorts; p++ {
			if r.outLink[p] == nil {
				continue
			}
			for _, n := range r.coverage[p] {
				covered[n]++
			}
		}
		for n := 0; n < cfg.Nodes(); n++ {
			want := 1
			if n == src {
				want = 0
			}
			if covered[n] != want {
				t.Fatalf("trial %d (%dx%d, src %d): node %d covered %d times, want %d",
					trial, cfg.Width, cfg.Height, src, n, covered[n], want)
			}
		}
	}
}

func TestHotspotTrafficDrains(t *testing.T) {
	// Every node unicasts a burst at node 0: the worst-case ejection
	// hotspot must still drain with credits conserved.
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 4, 4
	k, m, eps := testNet(t, cfg)
	total := 0
	for src := 1; src < cfg.Nodes(); src++ {
		for j := 0; j < 4; j++ {
			eps[src].Queue(&Packet{ID: m.NextPacketID(), VNet: UOResp, Src: src, Dst: 0, Flits: 3})
			total++
		}
	}
	drain(t, k, func() bool { return len(eps[0].Received) == total }, 50000)
	k.Run(50)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBypassDisabledStillCorrect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bypass = false
	cfg.Width, cfg.Height = 4, 4
	k, m, eps := testNet(t, cfg)
	for src := 0; src < cfg.Nodes(); src++ {
		eps[src].Queue(&Packet{ID: m.NextPacketID(), VNet: GOReq, Src: src, SID: src, Broadcast: true, Flits: 1})
	}
	want := cfg.Nodes() * (cfg.Nodes() - 1)
	drain(t, k, func() bool {
		got := 0
		for _, e := range eps {
			got += len(e.Received)
		}
		return got == want
	}, 50000)
	if m.Stats().Bypasses != 0 {
		t.Fatal("bypass disabled but bypasses counted")
	}
}
