package noc

// Arena is a fixed-capacity slab allocator for the flits a router buffers.
// It replaces the old per-component free-list pools (FlitPool) of
// heap-allocated *Flit nodes: the slab is one flat []Flit, handles are int32
// indexes into it, and the router's input VC queues store handles, so a
// router cycle walks one contiguous allocation instead of chasing scattered
// heap nodes.
//
// Sizing rule: a flit occupies its owning router's arena exactly while it
// sits in an input VC buffer — links latch flit values, credits carry
// nothing, and switch traversal copies the flit value onto the output link.
// Router-resident flits are therefore bounded by the total input buffering,
// so the arena is sized at construction to
//
//	NumPorts × Σ_vnet TotalVCs(vnet) × BufDepthFor(vnet)
//
// (the uniform per-port stride keeps flat indexing simple; edge routers
// leave their absent ports' share unused). The capacity is exact by the
// credit protocol: Alloc on a full arena panics, because it can only mean a
// flit was accepted without a buffer slot — a protocol violation, never a
// sizing problem. Fixed capacity is also what keeps the steady-state hot
// path at 0 allocs/step from the very first cycle: there is no growth path
// to warm up (see TestMeshSteadyStateAllocs).
//
// Each arena belongs to exactly one router and is only touched inside that
// router's Evaluate, so it is race-free under the parallel kernel, and its
// alloc/free sequence is a pure function of the router's deterministic event
// stream — handle values are bit-identical across worker counts and
// idle-skip modes (see StateDigest and the handle-determinism tests).
type Arena struct {
	slab []Flit
	free []int32 // LIFO free list of slab indexes
}

// NewArena returns an arena of exactly n flit slots, all free. The free list
// is seeded in descending index order so the first Alloc returns handle 0.
func NewArena(n int) Arena {
	a := Arena{slab: make([]Flit, n), free: make([]int32, n)}
	for i := range a.free {
		a.free[i] = int32(n - 1 - i)
	}
	return a
}

// Alloc takes a free slot and returns its handle. The slot is zeroed (Free
// zeroes on release and the slab starts zeroed), so the caller sees the same
// state a fresh allocation would have. Panics when the arena is exhausted —
// by the sizing rule that can only be a credit-protocol violation.
func (a *Arena) Alloc() int32 {
	n := len(a.free)
	if n == 0 {
		panic("noc: flit arena exhausted — credit protocol violated")
	}
	h := a.free[n-1]
	a.free = a.free[:n-1]
	return h
}

// At returns the flit slot for a handle. The pointer is stable for the
// arena's life (the slab never grows) but the slot's contents are only valid
// between the Alloc that returned the handle and its Free.
func (a *Arena) At(h int32) *Flit { return &a.slab[h] }

// Free zeroes the slot and returns the handle to the free list, so no packet
// state can leak into a later reuse.
func (a *Arena) Free(h int32) {
	a.slab[h] = Flit{}
	a.free = append(a.free, h)
}

// Live reports the number of handles currently allocated — the leak
// invariant: after a run drains, Live must match the router's buffered-flit
// count (zero on an empty router).
func (a *Arena) Live() int { return len(a.slab) - len(a.free) }

// Cap reports the arena's fixed capacity.
func (a *Arena) Cap() int { return len(a.slab) }

// StateDigest folds the free-list order and length into an FNV-1a hash. Two
// runs that performed the same alloc/free sequence have equal digests, so
// tests can assert handle-level determinism across worker counts and
// idle-skip modes without recording every allocation.
func (a *Arena) StateDigest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(a.free)))
	for _, f := range a.free {
		mix(uint64(uint32(f)))
	}
	return h
}
