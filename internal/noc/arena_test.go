package noc

import (
	"reflect"
	"testing"
	"unsafe"
)

// TestArenaResetInvariant pins the property the arena model rests on: a slot
// freed after arbitrary field smearing is bit-identical to a never-used slot
// when re-allocated, so no packet state leaks between the flits that share
// it (the arena-era successor of the old FlitPool reset invariant).
func TestArenaResetInvariant(t *testing.T) {
	a := NewArena(4)
	h := a.Alloc()
	f := a.At(h)
	dirty := &Packet{ID: 99, VNet: UOResp, Src: 3, Dst: 1, Flits: 5}
	*f = NewFlit(dirty, 4, 1)
	f.arrival = 123
	f.outPorts = 0b10110
	f.bypassCandidate = true
	f.lastPort = int8(East)
	f.lastDstVC = 2
	a.Free(h)

	h2 := a.Alloc()
	if h2 != h {
		t.Fatalf("LIFO free list should reuse handle %d, got %d", h, h2)
	}
	if !reflect.DeepEqual(*a.At(h2), Flit{}) {
		t.Fatalf("recycled slot not zeroed: %+v", *a.At(h2))
	}
}

// TestArenaExactCapacity verifies the sizing contract: exactly Cap handles
// can be live, the next Alloc panics (a credit-protocol violation, never a
// growth request), and freeing restores allocatability.
func TestArenaExactCapacity(t *testing.T) {
	a := NewArena(3)
	hs := []int32{a.Alloc(), a.Alloc(), a.Alloc()}
	if a.Live() != 3 || a.Cap() != 3 {
		t.Fatalf("live=%d cap=%d, want 3/3", a.Live(), a.Cap())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Alloc on a full arena did not panic")
			}
		}()
		a.Alloc()
	}()
	a.Free(hs[1])
	if h := a.Alloc(); h != hs[1] {
		t.Fatalf("expected freed handle %d back, got %d", hs[1], h)
	}
}

// TestArenaDigestTracksSequence checks StateDigest distinguishes free-list
// orders (so it can witness handle-level determinism) and agrees between two
// arenas that performed the same alloc/free sequence.
func TestArenaDigestTracksSequence(t *testing.T) {
	run := func(frees []int) uint64 {
		a := NewArena(4)
		hs := make([]int32, 4)
		for i := range hs {
			hs[i] = a.Alloc()
		}
		for _, i := range frees {
			a.Free(hs[i])
		}
		return a.StateDigest()
	}
	if run([]int{0, 1, 2, 3}) != run([]int{0, 1, 2, 3}) {
		t.Error("identical sequences produced different digests")
	}
	if run([]int{0, 1, 2, 3}) == run([]int{3, 2, 1, 0}) {
		t.Error("different free orders produced equal digests")
	}
	if run([]int{0, 1}) == run([]int{0, 1, 2}) {
		t.Error("different live counts produced equal digests")
	}
}

// TestFlitIsTwoPerCacheLine pins the flit value size the by-value link
// mailboxes and arena slab are designed around.
func TestFlitIsTwoPerCacheLine(t *testing.T) {
	if s := unsafe.Sizeof(Flit{}); s != 32 {
		t.Fatalf("Flit is %d bytes, want 32 (two per 64-byte cache line)", s)
	}
	if s := unsafe.Sizeof(Link{}); s%64 != 0 {
		t.Fatalf("Link is %d bytes, want a multiple of the 64-byte cache line", s)
	}
}
