package trace

import (
	"testing"

	"scorpio/internal/stats"
)

// recorderPort accepts every request and records it.
type recorderPort struct {
	addrs  []uint64
	writes int
}

func (r *recorderPort) CoreRequest(addr uint64, write bool, cycle uint64) bool {
	r.addrs = append(r.addrs, addr)
	if write {
		r.writes++
	}
	return true
}

func TestAllProfilesValidate(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("expected 14 benchmark profiles, got %d", len(all))
	}
	for _, p := range all {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
	if len(Suite("splash2")) != 8 {
		t.Fatalf("SPLASH-2 suite should have 8 profiles")
	}
	if len(Suite("parsec")) != 6 {
		t.Fatalf("PARSEC suite should have 6 profiles")
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("barnes")
	if err != nil || p.Name != "barnes" {
		t.Fatalf("ByName failed: %v %v", p, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good, _ := ByName("fft")
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.IssueProb = 0 },
		func(p *Profile) { p.IssueProb = 1.5 },
		func(p *Profile) { p.WriteFrac = -0.1 },
		func(p *Profile) { p.SharedFrac = 0.9; p.ColdFrac = 0.2 },
		func(p *Profile) { p.SharedLines = 0 },
		func(p *Profile) { p.ReuseProb = 1.0 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: invalid profile accepted", i)
		}
	}
}

// drive runs an injector for n cycles against a sink port.
func drive(in *Injector, n uint64) {
	for c := uint64(0); c < n; c++ {
		in.Evaluate(c)
		in.Commit(c)
		// Complete immediately: one outstanding slot frees per issue.
		for in.outstanding > 0 {
			in.OnComplete(0, false, c, c+1, true, false, nil)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	prof, _ := ByName("lu")
	a := NewInjector(3, prof, 42, &recorderPort{}, 2, 0, 1000)
	b := NewInjector(3, prof, 42, &recorderPort{}, 2, 0, 1000)
	pa := a.port.(*recorderPort)
	pb := b.port.(*recorderPort)
	drive(a, 30000)
	drive(b, 30000)
	if len(pa.addrs) == 0 || len(pa.addrs) != len(pb.addrs) {
		t.Fatalf("streams differ in length: %d vs %d", len(pa.addrs), len(pb.addrs))
	}
	for i := range pa.addrs {
		if pa.addrs[i] != pb.addrs[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestInjectorSeedsDiffer(t *testing.T) {
	prof, _ := ByName("lu")
	a := NewInjector(3, prof, 1, &recorderPort{}, 2, 0, 500)
	b := NewInjector(3, prof, 2, &recorderPort{}, 2, 0, 500)
	drive(a, 20000)
	drive(b, 20000)
	pa, pb := a.port.(*recorderPort), b.port.(*recorderPort)
	same := 0
	n := min(len(pa.addrs), len(pb.addrs))
	for i := 0; i < n; i++ {
		if pa.addrs[i] == pb.addrs[i] {
			same++
		}
	}
	if n > 0 && same > n/2 {
		t.Fatalf("different seeds produced %d/%d identical addresses", same, n)
	}
}

func TestInjectorRespectsOutstandingCap(t *testing.T) {
	prof, _ := ByName("radix")
	var inj *Injector
	port := &recorderPort{}
	inj = NewInjector(0, prof, 7, port, 2, 0, 100)
	// Never complete: at most 2 issues.
	for c := uint64(0); c < 5000; c++ {
		inj.Evaluate(c)
		inj.Commit(c)
	}
	if len(port.addrs) != 2 {
		t.Fatalf("issued %d with cap 2 and no completions", len(port.addrs))
	}
}

func TestInjectorWarmupExcludedFromStats(t *testing.T) {
	prof, _ := ByName("fft")
	inj := NewInjector(0, prof, 7, &recorderPort{}, 2, 50, 100)
	drive(inj, 200000)
	if !inj.Done() {
		t.Fatal("injector did not finish")
	}
	if inj.Completed != 150 {
		t.Fatalf("completed = %d, want 150 (warmup+work)", inj.Completed)
	}
	if inj.ServiceLatency.Count != 100 {
		t.Fatalf("measured %d accesses, want 100 (warmup excluded)", inj.ServiceLatency.Count)
	}
}

func TestAddressMixMatchesProfile(t *testing.T) {
	prof, _ := ByName("canneal")
	port := &recorderPort{}
	inj := NewInjector(2, prof, 11, port, 4, 0, 20000)
	drive(inj, 3_000_000)
	if len(port.addrs) < 10000 {
		t.Fatalf("only %d accesses issued", len(port.addrs))
	}
	var shared, private, cold int
	for _, a := range port.addrs {
		switch {
		case a >= coldBase:
			cold++
		case a >= privateBase:
			private++
		default:
			shared++
		}
	}
	total := float64(len(port.addrs))
	sharedFrac := float64(shared) / total
	// Reuse draws re-sample history, keeping region proportions roughly
	// stable; allow a generous tolerance.
	if sharedFrac < prof.SharedFrac-0.15 || sharedFrac > prof.SharedFrac+0.15 {
		t.Fatalf("shared fraction %.2f deviates from profile %.2f", sharedFrac, prof.SharedFrac)
	}
	writeFrac := float64(port.writes) / total
	if writeFrac < prof.WriteFrac-0.05 || writeFrac > prof.WriteFrac+0.25 {
		t.Fatalf("write fraction %.2f deviates from profile %.2f", writeFrac, prof.WriteFrac)
	}
	if cold == 0 {
		t.Fatal("cold stream never sampled")
	}
}

func TestReuseCreatesLocality(t *testing.T) {
	prof, _ := ByName("blackscholes") // ReuseProb 0.8
	port := &recorderPort{}
	inj := NewInjector(1, prof, 5, port, 4, 0, 5000)
	drive(inj, 2_000_000)
	seen := map[uint64]bool{}
	repeats := 0
	for _, a := range port.addrs {
		if seen[a] {
			repeats++
		}
		seen[a] = true
	}
	frac := float64(repeats) / float64(len(port.addrs))
	if frac < 0.5 {
		t.Fatalf("repeat fraction %.2f too low for ReuseProb %.2f", frac, prof.ReuseProb)
	}
}

func TestBreakdownAccountingFlows(t *testing.T) {
	prof, _ := ByName("lu")
	inj := NewInjector(0, prof, 3, &recorderPort{}, 2, 0, 10)
	inj.outstanding = 1
	inj.Issued = 1
	var bd1 [stats.NumBreakdownComponents]uint64
	bd1[stats.NetBcastReq] = 30
	inj.OnComplete(1, false, 0, 80, false, true, &bd1)
	if inj.CacheServed.Count() != 1 {
		t.Fatal("cache-served breakdown not recorded")
	}
	inj.outstanding = 1
	var bd2 [stats.NumBreakdownComponents]uint64
	bd2[stats.DirAccess] = 100
	inj.OnComplete(2, false, 0, 150, false, false, &bd2)
	if inj.MemServed.Count() != 1 {
		t.Fatal("memory-served breakdown not recorded")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
