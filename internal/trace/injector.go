package trace

import (
	"scorpio/internal/obs"
	"scorpio/internal/sim"
	"scorpio/internal/stats"
)

// RequestPort is the L2 controller interface the injector drives (the
// chip's AHB port: at most two outstanding transactions).
type RequestPort interface {
	// CoreRequest offers one memory access; false means retry next cycle.
	CoreRequest(addr uint64, write bool, cycle uint64) bool
}

// Injector replays a synthetic benchmark stream into one tile's L2.
type Injector struct {
	node           int
	prof           Profile
	rng            *sim.RNG
	port           RequestPort
	maxOutstanding int
	limit          uint64 // measured accesses to complete (0 = unbounded)
	warmup         uint64 // accesses completed before statistics engage

	outstanding int
	nextIssueAt uint64
	pending     *access // generated but not yet accepted by the L2
	burstLeft   int     // remaining accesses of the current burst
	// armed/issueAt presample the think-time countdown: instead of one
	// Bernoulli trial per cycle, the whole geometric countdown is drawn at
	// the first eligible cycle (consuming the identical RNG stream — a
	// geometric draw IS the sequence of per-cycle trials) and the issue
	// lands at issueAt. Between arming and firing the injector is pure
	// countdown, so the activity engine can park it and fast-forward to
	// issueAt. Eligibility cannot regress while armed: outstanding only
	// grows on an issue, so the presampled countdown always fires exactly
	// where the per-cycle trials would have succeeded.
	armed    bool
	issueAt  uint64
	coldNext uint64
	history  []uint64 // recently touched lines (temporal locality)
	histPos  int

	// Issued/Completed count accesses; the run loop ends when every
	// injector completes its limit.
	Issued    uint64
	Completed uint64
	DoneCycle uint64

	// Latency accounting.
	ServiceLatency stats.Mean
	ServiceHist    *stats.Histogram // full distribution (p50/p99/max)
	HitLatency     stats.Mean
	MissLatency    stats.Mean
	CacheServed    *stats.Breakdown // misses served by other caches
	MemServed      *stats.Breakdown // misses served by memory/directory

	// Attr, when non-nil, receives every measured miss's segment breakdown
	// as full per-component histograms (the latency attributor).
	Attr *obs.Attribution
}

// access is one generated request.
type access struct {
	addr  uint64
	write bool
}

// Address-space layout (line addresses): shared pool at base 1<<30, hot set
// inside it, per-core private pools spaced apart, per-core cold streams far
// above everything.
const (
	sharedBase  = uint64(1) << 30
	privateBase = uint64(1) << 34
	privateSpan = uint64(1) << 24
	coldBase    = uint64(1) << 40
	coldSpan    = uint64(1) << 24
)

// NewInjector builds an injector for a node. The first warmup completions
// fill the caches without recording statistics (the paper's RTL runs omit
// the first 20K cycles the same way); limit accesses are then measured.
func NewInjector(node int, prof Profile, seed uint64, port RequestPort, maxOutstanding int, warmup, limit uint64) *Injector {
	return &Injector{
		node:           node,
		prof:           prof,
		rng:            sim.NewRNG(seed ^ (uint64(node)+1)*0x9e3779b97f4a7c15),
		port:           port,
		maxOutstanding: maxOutstanding,
		warmup:         warmup,
		limit:          limit,
		ServiceHist:    stats.NewHistogram(4, 512),
		CacheServed:    &stats.Breakdown{},
		MemServed:      &stats.Breakdown{},
	}
}

// Done reports whether the injector completed its warmup and work quota.
func (in *Injector) Done() bool {
	return in.limit > 0 && in.Completed >= in.warmup+in.limit
}

// OnComplete is wired as the L2 completion callback. breakdown may be nil
// (tile/L1 paths have no segment data); a nil breakdown counts as all-zero
// segments so the miss still contributes to the component means.
func (in *Injector) OnComplete(addr uint64, write bool, issue, done uint64, hit, servedByCache bool, breakdown *[stats.NumBreakdownComponents]uint64) {
	in.outstanding--
	in.Completed++
	if in.Completed > in.warmup {
		lat := float64(done - issue)
		in.ServiceLatency.Observe(lat)
		in.ServiceHist.Observe(done - issue)
		if hit {
			in.HitLatency.Observe(lat)
		} else {
			in.MissLatency.Observe(lat)
			if breakdown == nil {
				var zero [stats.NumBreakdownComponents]uint64
				breakdown = &zero
			}
			if servedByCache {
				in.CacheServed.Observe(breakdown)
			} else {
				in.MemServed.Observe(breakdown)
			}
			in.Attr.Observe(servedByCache, breakdown)
		}
	}
	if in.Done() && in.DoneCycle == 0 {
		in.DoneCycle = done
	}
}

// Evaluate issues at most one access per cycle, respecting the outstanding
// cap and the think-time distribution. Accesses arrive in bursts whose size
// scales with the core's miss resources, so aggressive multi-outstanding
// cores behave like Section 5.2's bursty cores (the Figure 8d study) while
// the average access rate stays at the profile's intensity.
func (in *Injector) Evaluate(cycle uint64) {
	if in.limit > 0 && in.Issued >= in.warmup+in.limit {
		return
	}
	if in.outstanding >= in.maxOutstanding {
		return
	}
	if in.pending == nil {
		if in.burstLeft == 0 {
			if cycle < in.nextIssueAt {
				return
			}
			if !in.armed {
				meanBurst := float64(1+in.maxOutstanding) / 2
				g := in.rng.Geometric(in.prof.IssueProb / meanBurst)
				in.issueAt = cycle + uint64(g) - 1
				in.armed = true
			}
			if cycle < in.issueAt {
				return
			}
			in.armed = false
			in.burstLeft = 1 + in.rng.Intn(in.maxOutstanding)
		}
		a := in.generate()
		in.pending = &a
		in.burstLeft--
	}
	if in.port.CoreRequest(in.pending.addr, in.pending.write, cycle) {
		in.pending = nil
		in.outstanding++
		in.Issued++
		in.nextIssueAt = cycle + 1
	}
}

// Commit implements sim.Component.
func (in *Injector) Commit(cycle uint64) {}

// Idle implements sim.Idler: the injector is skippable when it is finished,
// blocked on the outstanding cap (a completion reaches this unit through the
// NIC's link wake), or mid-countdown (armed; NextEventCycle names the issue
// cycle). It must run while it holds an unaccepted access, an open burst, or
// an unarmed countdown.
func (in *Injector) Idle() bool {
	if in.limit > 0 && in.Issued >= in.warmup+in.limit {
		return true
	}
	if in.outstanding >= in.maxOutstanding {
		return true
	}
	if in.pending != nil || in.burstLeft > 0 {
		return false
	}
	return in.armed
}

// NextEventCycle implements sim.NextEventer: the presampled issue cycle when
// armed; nothing otherwise (completions re-activate the unit via link
// wakes). outstanding cannot reach the cap while armed, so an armed injector
// always fires at issueAt.
func (in *Injector) NextEventCycle(cycle uint64) uint64 {
	if in.limit > 0 && in.Issued >= in.warmup+in.limit {
		return sim.NoEvent
	}
	if !in.armed || in.outstanding >= in.maxOutstanding {
		return sim.NoEvent
	}
	if in.issueAt <= cycle {
		return cycle + 1
	}
	return in.issueAt
}

// generate draws the next access from the profile's address mixture. The
// warmup phase is write-heavy: it models the producer/initialisation phase
// of the benchmarks, which leaves shared data dirty-owned on chip (the
// precondition for the paper's ~90% cache-to-cache service ratio).
func (in *Injector) generate() access {
	wf := in.prof.WriteFrac
	if in.Issued < in.warmup && wf < 0.6 {
		wf = 0.6
	}
	write := in.rng.Bernoulli(wf)
	// Temporal locality: revisit a recently touched line.
	if len(in.history) > 0 && in.rng.Bernoulli(in.prof.ReuseProb) {
		return access{addr: in.history[in.rng.Intn(len(in.history))], write: write}
	}
	var addr uint64
	r := in.rng.Float64()
	switch {
	case r < in.prof.ColdFrac:
		addr = coldBase + uint64(in.node)*coldSpan + in.coldNext
		in.coldNext++
	case r < in.prof.ColdFrac+in.prof.SharedFrac:
		if in.rng.Bernoulli(in.prof.HotFrac) {
			addr = sharedBase + uint64(in.rng.Intn(in.prof.HotLines))
		} else {
			addr = sharedBase + uint64(in.prof.HotLines) + uint64(in.rng.Intn(in.prof.SharedLines))
		}
	default:
		addr = privateBase + uint64(in.node)*privateSpan + uint64(in.rng.Intn(in.prof.PrivateLines))
	}
	in.remember(addr)
	return access{addr: addr, write: write}
}

// remember records a fresh address in the reuse history ring.
func (in *Injector) remember(addr uint64) {
	const depth = 128
	if len(in.history) < depth {
		in.history = append(in.history, addr)
		return
	}
	in.history[in.histPos] = addr
	in.histPos = (in.histPos + 1) % depth
}
