// Package trace is the workload substrate that stands in for the paper's
// SPLASH-2 and PARSEC runs (see DESIGN.md, substitutions). Each benchmark is
// modelled by a Profile — a small set of first-order statistics of its
// L2-access stream (intensity, read/write mix, sharing behaviour, working
// set sizes) — and an Injector that replays a synthetic stream with those
// statistics into the L2 controller's core port, honouring the chip's
// two-outstanding-misses constraint exactly like the paper's own
// trace-driven RTL methodology.
package trace

import "fmt"

// Profile captures the first-order statistics of one benchmark's post-L1
// memory stream.
type Profile struct {
	// Name is the benchmark name as used in the paper's figures.
	Name string
	// Suite is "splash2" or "parsec".
	Suite string
	// IssueProb is the per-cycle probability of issuing the next L2 access
	// when an issue slot is free; it sets the benchmark's memory intensity.
	IssueProb float64
	// WriteFrac is the store fraction of the stream.
	WriteFrac float64
	// SharedFrac is the fraction of accesses that touch globally shared
	// data (the traffic that exercises coherence).
	SharedFrac float64
	// ColdFrac is the fraction of accesses to never-seen lines (compulsory
	// misses served by memory).
	ColdFrac float64
	// SharedLines sizes the global shared pool in cache lines.
	SharedLines int
	// PrivateLines sizes each core's private pool in cache lines.
	PrivateLines int
	// HotFrac is the fraction of shared accesses that hit a small hot set
	// (lock/reduction variables — the contended traffic).
	HotFrac float64
	// HotLines sizes that hot set.
	HotLines int
	// ReuseProb is the probability an access re-touches a recently used
	// line (temporal locality); it sets the L2 hit rate.
	ReuseProb float64
}

// Validate reports implausible parameters.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("trace: profile needs a name")
	case p.IssueProb <= 0 || p.IssueProb > 1:
		return fmt.Errorf("trace: %s: issue probability %v out of (0,1]", p.Name, p.IssueProb)
	case p.WriteFrac < 0 || p.WriteFrac > 1 || p.SharedFrac < 0 || p.SharedFrac > 1 || p.ColdFrac < 0 || p.ColdFrac > 1:
		return fmt.Errorf("trace: %s: fractions must be in [0,1]", p.Name)
	case p.SharedFrac+p.ColdFrac > 1:
		return fmt.Errorf("trace: %s: shared+cold fractions exceed 1", p.Name)
	case p.SharedLines <= 0 || p.PrivateLines <= 0 || p.HotLines <= 0:
		return fmt.Errorf("trace: %s: pool sizes must be positive", p.Name)
	case p.HotFrac < 0 || p.HotFrac > 1:
		return fmt.Errorf("trace: %s: hot fraction out of range", p.Name)
	case p.ReuseProb < 0 || p.ReuseProb >= 1:
		return fmt.Errorf("trace: %s: reuse probability %v out of [0,1)", p.Name, p.ReuseProb)
	}
	return nil
}

// The profiles below were calibrated so the simulated relative behaviour
// (miss intensity, sharing degree, fraction of misses served by other
// caches) reproduces the shapes of the paper's Figures 6-8; absolute
// instruction streams are not modelled (see DESIGN.md).
var profiles = []Profile{
	// SPLASH-2.
	{Name: "barnes", Suite: "splash2", IssueProb: 0.048, WriteFrac: 0.30, SharedFrac: 0.55, ColdFrac: 0.02, SharedLines: 1024, PrivateLines: 768, HotFrac: 0.037, HotLines: 128, ReuseProb: 0.70},
	{Name: "fft", Suite: "splash2", IssueProb: 0.080, WriteFrac: 0.35, SharedFrac: 0.45, ColdFrac: 0.05, SharedLines: 2048, PrivateLines: 1024, HotFrac: 0.015, HotLines: 64, ReuseProb: 0.60},
	{Name: "fmm", Suite: "splash2", IssueProb: 0.040, WriteFrac: 0.25, SharedFrac: 0.50, ColdFrac: 0.02, SharedLines: 1024, PrivateLines: 768, HotFrac: 0.030, HotLines: 96, ReuseProb: 0.72},
	{Name: "lu", Suite: "splash2", IssueProb: 0.064, WriteFrac: 0.40, SharedFrac: 0.60, ColdFrac: 0.03, SharedLines: 1536, PrivateLines: 512, HotFrac: 0.022, HotLines: 64, ReuseProb: 0.65},
	{Name: "nlu", Suite: "splash2", IssueProb: 0.072, WriteFrac: 0.40, SharedFrac: 0.55, ColdFrac: 0.03, SharedLines: 1536, PrivateLines: 512, HotFrac: 0.030, HotLines: 64, ReuseProb: 0.62},
	{Name: "radix", Suite: "splash2", IssueProb: 0.096, WriteFrac: 0.45, SharedFrac: 0.50, ColdFrac: 0.06, SharedLines: 3072, PrivateLines: 1024, HotFrac: 0.012, HotLines: 64, ReuseProb: 0.50},
	{Name: "water-nsq", Suite: "splash2", IssueProb: 0.040, WriteFrac: 0.30, SharedFrac: 0.45, ColdFrac: 0.02, SharedLines: 768, PrivateLines: 512, HotFrac: 0.037, HotLines: 96, ReuseProb: 0.75},
	{Name: "water-spatial", Suite: "splash2", IssueProb: 0.040, WriteFrac: 0.30, SharedFrac: 0.40, ColdFrac: 0.02, SharedLines: 768, PrivateLines: 512, HotFrac: 0.030, HotLines: 96, ReuseProb: 0.75},
	// PARSEC.
	{Name: "blackscholes", Suite: "parsec", IssueProb: 0.032, WriteFrac: 0.20, SharedFrac: 0.35, ColdFrac: 0.02, SharedLines: 1024, PrivateLines: 768, HotFrac: 0.022, HotLines: 64, ReuseProb: 0.80},
	{Name: "canneal", Suite: "parsec", IssueProb: 0.088, WriteFrac: 0.35, SharedFrac: 0.65, ColdFrac: 0.08, SharedLines: 4096, PrivateLines: 1280, HotFrac: 0.015, HotLines: 128, ReuseProb: 0.45},
	{Name: "fluidanimate", Suite: "parsec", IssueProb: 0.056, WriteFrac: 0.35, SharedFrac: 0.55, ColdFrac: 0.03, SharedLines: 1536, PrivateLines: 768, HotFrac: 0.030, HotLines: 128, ReuseProb: 0.65},
	{Name: "swaptions", Suite: "parsec", IssueProb: 0.032, WriteFrac: 0.25, SharedFrac: 0.30, ColdFrac: 0.02, SharedLines: 512, PrivateLines: 512, HotFrac: 0.030, HotLines: 64, ReuseProb: 0.80},
	{Name: "streamcluster", Suite: "parsec", IssueProb: 0.072, WriteFrac: 0.25, SharedFrac: 0.60, ColdFrac: 0.04, SharedLines: 2048, PrivateLines: 1024, HotFrac: 0.018, HotLines: 96, ReuseProb: 0.55},
	{Name: "vips", Suite: "parsec", IssueProb: 0.048, WriteFrac: 0.30, SharedFrac: 0.40, ColdFrac: 0.03, SharedLines: 1536, PrivateLines: 768, HotFrac: 0.022, HotLines: 96, ReuseProb: 0.70},
}

// All returns every benchmark profile.
func All() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// Suite returns the profiles of one suite ("splash2" or "parsec").
func Suite(name string) []Profile {
	var out []Profile
	for _, p := range profiles {
		if p.Suite == name {
			out = append(out, p)
		}
	}
	return out
}

// ByName finds a profile by benchmark name.
func ByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
}
