// Package baseline implements the prior ordered-interconnect proposals the
// paper compares against in Figure 7: TokenB [Martin et al., ISCA 2003] and
// INSO [Agarwal et al., HPCA 2009].
//
// Both run the same snoopy protocol and main mesh network as SCORPIO, but
// order requests differently:
//
//   - TokenB performs ordering at the protocol level with tokens; absent
//     data races (which the paper explicitly does not model, matching its
//     own methodology) it behaves like snoopy coherence with zero ordering
//     latency. We model it with an oracle sequencer that hands out global
//     sequence numbers at injection for free.
//   - INSO pre-assigns each source a rotating slice of "snoop orders"
//     (source s owns orders s, s+N, s+2N, …). Nodes process orders
//     ascending; a source that does not inject must periodically expire its
//     unused orders by broadcasting expiry messages. Small expiration
//     windows cost bandwidth (the paper measures 25 expiries per real
//     message at a 20-cycle window); large windows inflate ordering latency.
//
// Both are realised by an Endpoint: a NIC replacement with an idealized
// (unbounded) reorder buffer that delivers request-class packets in global
// key order. The idealization is deliberate — it can only flatter the
// baselines, which is the conservative direction for SCORPIO's comparison.
package baseline

import (
	"fmt"

	"scorpio/internal/nic"
	"scorpio/internal/noc"
	"scorpio/internal/obs"
	"scorpio/internal/obs/audit"
	"scorpio/internal/ring"
	"scorpio/internal/sim"
	"scorpio/internal/stats"
)

// Orderer assigns global order keys to injected requests and decides when a
// buffered key may be delivered.
type Orderer interface {
	// AssignKey gives the next order key for a request injected by node.
	AssignKey(node int, cycle uint64) uint64
	// NextDeliverable reports whether key is the next to deliver at a node
	// that has already delivered all keys below nextKey, and whether the key
	// is known to be skippable (expired without a request).
	Skippable(key uint64, cycle uint64) bool
}

// Endpoint replaces the NIC for the TokenB/INSO baselines: same mesh links,
// same agent interface, but ordering by externally assigned keys with an
// unbounded reorder buffer (credits returned on arrival).
type Endpoint struct {
	node    int
	mesh    *noc.Mesh
	agent   nic.Agent
	orderer Orderer
	// expiry, when set (INSO), supplies owed expiry broadcasts. OwesExpiry
	// keeps the endpoint awake while a broadcast is owed but not yet
	// consumable (see ExpirySource).
	expiry ExpirySource

	tr       *noc.OutputTracker
	reqQ     ring.Ring[*noc.Packet]
	respQ    ring.Ring[*noc.Packet]
	staged   []*noc.Packet
	stagedR  []*noc.Packet
	inFlight *noc.Packet
	nextSeq  int
	curVC    int

	reorder  reorderRing // order key -> packet awaiting delivery
	nextKey  uint64
	respAsm  []respAsm
	doneResp ring.Ring[*noc.Packet]

	// Stats
	Injected     uint64
	Delivered    uint64
	OrderingWait stats.Mean

	// tracer is nil unless lifecycle tracing is enabled; auditor likewise
	// for the online order/coherence monitor.
	tracer  *obs.Tracer
	auditor *audit.Auditor

	// now is the cycle of the last Evaluate; Idle() uses it to check the
	// links for values committed this cycle (see sim.Idler).
	now uint64
}

// ExpirySource supplies INSO's owed expiry broadcasts. TakeExpiryBroadcast
// consumes one owed broadcast for the node when one is visible at the given
// cycle; OwesExpiry reports whether any broadcast is owed at all (visible or
// not) — the endpoint's idle check, so it stays schedulable until the debt
// is paid.
type ExpirySource interface {
	TakeExpiryBroadcast(node int, cycle uint64) bool
	OwesExpiry(node int) bool
}

type reorderEntry struct {
	pkt    *noc.Packet
	arrive uint64
}

type respAsm struct {
	pkt   *noc.Packet
	flits int
}

// NewEndpoint builds a baseline endpoint on a mesh node.
func NewEndpoint(node int, mesh *noc.Mesh, orderer Orderer, agent nic.Agent) *Endpoint {
	cfg := mesh.Config()
	e := &Endpoint{
		node: node, mesh: mesh, agent: agent, orderer: orderer,
		tr:      noc.NewOutputTracker(cfg),
		reorder: newReorderRing(64),
		reqQ:    ring.New[*noc.Packet](8),
		respQ:   ring.New[*noc.Packet](8),
		respAsm: make([]respAsm, cfg.TotalVCs(noc.UOResp)),
	}
	mesh.AttachESID(node, e)
	return e
}

// reorderRing is the idealized (unbounded) reorder buffer, stored as a ring
// indexed by the monotonic global order key instead of a map. Keys below the
// delivery cursor can never be occupied again — an assigned INSO slot is
// never expired and each key is delivered exactly once — so the occupied
// window is [base, base+cap) and the ring grows by doubling when a key lands
// beyond it. The key of a stored entry is recoverable as pkt.SrcSeq, which is
// what grow uses to rehash.
type reorderRing struct {
	base  uint64 // delivery cursor: smallest key that may still be occupied
	buf   []reorderEntry
	occ   []bool
	count int
}

func newReorderRing(capacity int) reorderRing {
	return reorderRing{buf: make([]reorderEntry, capacity), occ: make([]bool, capacity)}
}

func (r *reorderRing) put(key uint64, e reorderEntry) {
	if key < r.base {
		panic(fmt.Sprintf("baseline: reorder key %d below delivery cursor %d", key, r.base))
	}
	for key-r.base >= uint64(len(r.buf)) {
		r.grow()
	}
	i := key % uint64(len(r.buf))
	if r.occ[i] {
		panic(fmt.Sprintf("baseline: duplicate reorder key %d", key))
	}
	r.buf[i], r.occ[i] = e, true
	r.count++
}

func (r *reorderRing) get(key uint64) (reorderEntry, bool) {
	if key < r.base || key-r.base >= uint64(len(r.buf)) {
		return reorderEntry{}, false
	}
	i := key % uint64(len(r.buf))
	if !r.occ[i] {
		return reorderEntry{}, false
	}
	return r.buf[i], true
}

func (r *reorderRing) del(key uint64) {
	i := key % uint64(len(r.buf))
	r.buf[i], r.occ[i] = reorderEntry{}, false
	r.count--
}

// advance moves the delivery cursor forward; slots below it are free.
func (r *reorderRing) advance(base uint64) { r.base = base }

func (r *reorderRing) grow() {
	buf := make([]reorderEntry, 2*len(r.buf))
	occ := make([]bool, len(buf))
	for i, e := range r.buf {
		if r.occ[i] {
			j := e.pkt.SrcSeq % uint64(len(buf))
			buf[j], occ[j] = e, true
		}
	}
	r.buf, r.occ = buf, occ
}

// SetAgent attaches the consumer.
func (e *Endpoint) SetAgent(a nic.Agent) { e.agent = a }

// SetTracer attaches a lifecycle event tracer (nil disables tracing).
func (e *Endpoint) SetTracer(t *obs.Tracer) { e.tracer = t }

// SetAuditor attaches the online auditor (nil disables auditing).
func (e *Endpoint) SetAuditor(a *audit.Auditor) { e.auditor = a }

// SetExpirySource wires the INSO orderer's expiry broadcasts through this
// endpoint's injection port.
func (e *Endpoint) SetExpirySource(s ExpirySource) {
	e.expiry = s
}

// BindActivity wires the endpoint's scheduling unit as the wake target of
// its mesh links: inject-link credits and eject-link flits both wake it.
func (e *Endpoint) BindActivity(a *sim.Activity) {
	e.mesh.InjectLink(e.node).SetCreditWake(a)
	e.mesh.EjectLink(e.node).SetFlitWake(a)
}

// Idle implements sim.Idler: the endpoint may be skipped while it holds no
// packets, owes no expiry broadcast, and no value is in flight on its links.
func (e *Endpoint) Idle() bool {
	if e.HasPendingWork() {
		return false
	}
	if e.expiry != nil && e.expiry.OwesExpiry(e.node) {
		return false
	}
	if e.mesh.EjectLink(e.node).FlitPendingAt(e.now) {
		return false
	}
	if e.mesh.InjectLink(e.node).CreditsPendingAt(e.now) {
		return false
	}
	return true
}

// ExpectedSID implements noc.ESIDProvider; baselines do not use reserved
// VCs (their reorder buffer is unbounded, so the network always drains).
func (e *Endpoint) ExpectedSID() (int, uint64, bool) { return 0, 0, false }

// SendRequest implements coherence.NetPort: the request gets a global order
// key from the orderer.
func (e *Endpoint) SendRequest(p *noc.Packet) bool {
	if p.VNet != noc.GOReq || !p.Broadcast || p.Flits != 1 {
		panic(fmt.Sprintf("baseline: SendRequest wants a single-flit broadcast, got %s", p))
	}
	e.staged = append(e.staged, p)
	return true
}

// SendResponse implements coherence.NetPort.
func (e *Endpoint) SendResponse(p *noc.Packet) bool {
	e.stagedR = append(e.stagedR, p)
	return true
}

// Evaluate runs one endpoint cycle.
func (e *Endpoint) Evaluate(cycle uint64) {
	e.now = cycle
	for _, c := range e.mesh.InjectLink(e.node).Credits(cycle) {
		e.tr.ProcessCredit(c)
	}
	e.receive(cycle)
	e.deliver(cycle)
	e.inject(cycle)
}

// Commit stages injections and assigns order keys (the oracle/slot orderers
// are deterministic, so assignment at commit keeps runs reproducible).
func (e *Endpoint) Commit(cycle uint64) {
	for _, p := range e.staged {
		p.SrcSeq = e.orderer.AssignKey(e.node, cycle)
		e.reqQ.Push(p)
		// Loop the packet back for local delivery at its order position.
		e.reorder.put(p.SrcSeq, reorderEntry{pkt: p, arrive: cycle})
	}
	e.staged = e.staged[:0]
	for _, p := range e.stagedR {
		e.respQ.Push(p)
	}
	e.stagedR = e.stagedR[:0]
	// Owed INSO expiry broadcasts consume real request-class bandwidth.
	// Expiry packets stay heap-allocated: a broadcast is one shared object
	// delivered at every node, so no single endpoint may recycle it.
	if e.expiry != nil && e.expiry.TakeExpiryBroadcast(e.node, cycle) {
		e.reqQ.Push(&noc.Packet{
			ID: e.mesh.NextPacketID(), VNet: noc.GOReq, Src: e.node, SID: e.node,
			Broadcast: true, Flits: 1, Kind: KindExpiry, SrcSeq: ^uint64(0), InjectCycle: cycle,
		})
	}
}

// receive drains the eject link into the reorder buffer (requests) or the
// assembly registers (responses), returning credits immediately.
func (e *Endpoint) receive(cycle uint64) {
	ej := e.mesh.EjectLink(e.node)
	f := ej.Flit(cycle)
	if f == nil {
		return
	}
	switch f.Pkt.VNet {
	case noc.GOReq:
		ej.SendCredit(noc.Credit{VNet: noc.GOReq, VC: f.InVC(), FreeVC: true}, cycle)
		if f.Pkt.Kind != KindExpiry {
			if e.tracer != nil {
				e.tracer.Record(obs.Event{
					Cycle: cycle, Type: obs.EvNetArrive, Node: int32(e.node),
					Src: int32(f.Pkt.Src), Pkt: f.Pkt.ID,
					Port: -1, VNet: int8(noc.GOReq), VC: int16(f.InVC()),
				})
			}
			if e.auditor != nil {
				e.auditor.Arrive(e.node, f.Pkt.ID, f.Pkt.Src)
			}
			e.reorder.put(f.Pkt.SrcSeq, reorderEntry{pkt: f.Pkt, arrive: cycle})
		}
	case noc.UOResp:
		ej.SendCredit(noc.Credit{VNet: noc.UOResp, VC: f.InVC(), FreeVC: f.IsTail()}, cycle)
		as := &e.respAsm[f.InVC()]
		if as.pkt == nil {
			as.pkt = f.Pkt
		}
		as.flits++
		if f.IsTail() {
			if e.tracer != nil {
				e.tracer.Record(obs.Event{
					Cycle: cycle, Type: obs.EvNetArrive, Node: int32(e.node),
					Src: int32(f.Pkt.Src), Pkt: f.Pkt.ID,
					Port: -1, VNet: int8(noc.UOResp), VC: int16(f.InVC()),
				})
			}
			e.doneResp.Push(f.Pkt)
			as.pkt = nil
			as.flits = 0
		}
	}
	// The packet (if any) is held by the reorder/assembly state; the link
	// mailbox flit is consumed within this cycle.
}

// deliver forwards the next in-order request (skipping expired keys) and
// assembled responses.
func (e *Endpoint) deliver(cycle uint64) {
	if e.agent == nil {
		return
	}
	// Skip any expired keys.
	for e.orderer.Skippable(e.nextKey, cycle) {
		if _, ok := e.reorder.get(e.nextKey); ok {
			break // a real request occupies the key after all
		}
		e.nextKey++
		e.reorder.advance(e.nextKey)
	}
	if entry, ok := e.reorder.get(e.nextKey); ok {
		if e.agent.AcceptOrderedRequest(entry.pkt, entry.arrive, cycle) {
			if e.tracer != nil {
				e.tracer.Record(obs.Event{
					Cycle: cycle, Type: obs.EvOrderCommit, Node: int32(e.node),
					Src: int32(entry.pkt.Src), Pkt: entry.pkt.ID, Arg: e.nextKey,
					Port: -1, VNet: int8(noc.GOReq), VC: -1,
				})
				e.tracer.Record(obs.Event{
					Cycle: cycle, Type: obs.EvSink, Node: int32(e.node),
					Src: int32(entry.pkt.Src), Pkt: entry.pkt.ID,
					Port: -1, VNet: int8(noc.GOReq), VC: -1,
				})
			}
			if e.auditor != nil {
				e.auditor.OrderCommit(e.node, entry.pkt.ID, entry.pkt.Src, cycle)
				e.auditor.Sink(e.node, entry.pkt.ID, true)
			}
			e.reorder.del(e.nextKey)
			e.nextKey++
			e.reorder.advance(e.nextKey)
			e.Delivered++
			e.OrderingWait.Observe(float64(cycle - entry.arrive))
		}
	}
	if !e.doneResp.Empty() {
		p := e.doneResp.Front()
		if e.agent.AcceptResponse(p, cycle) {
			e.doneResp.PopFront()
			if e.tracer != nil {
				e.tracer.Record(obs.Event{
					Cycle: cycle, Type: obs.EvSink, Node: int32(e.node),
					Src: int32(p.Src), Pkt: p.ID,
					Port: -1, VNet: int8(noc.UOResp), VC: -1,
				})
			}
			if e.auditor != nil {
				e.auditor.Sink(e.node, p.ID, false)
			}
		}
	}
}

// inject serializes one flit per cycle, requests before responses.
func (e *Endpoint) inject(cycle uint64) {
	if e.inFlight != nil {
		if !e.tr.CanSendBody(e.inFlight.VNet, e.curVC) {
			return
		}
		e.tr.ChargeBody(e.inFlight.VNet, e.curVC)
		e.send(e.inFlight, e.nextSeq, cycle)
		e.nextSeq++
		if e.nextSeq == e.inFlight.Flits {
			e.inFlight = nil
		}
		return
	}
	if !e.reqQ.Empty() {
		p := e.reqQ.Front()
		if vc, ok := e.tr.AllocHeadVC(noc.GOReq, p.SID, false); ok {
			e.tr.ClaimHeadVC(noc.GOReq, vc, p.SID)
			e.curVC = vc
			p.NetworkEntry = cycle
			e.Injected++
			if e.tracer != nil {
				e.tracer.Record(obs.Event{
					Cycle: cycle, Type: obs.EvInject, Node: int32(e.node),
					Src: int32(p.Src), Pkt: p.ID, Arg: uint64(p.Flits),
					Port: -1, VNet: int8(noc.GOReq), VC: int16(vc),
				})
			}
			e.send(p, 0, cycle)
			e.reqQ.PopFront()
		}
		return
	}
	if !e.respQ.Empty() {
		p := e.respQ.Front()
		if vc, ok := e.tr.AllocHeadVC(noc.UOResp, p.SID, false); ok {
			e.tr.ClaimHeadVC(noc.UOResp, vc, p.SID)
			e.curVC = vc
			p.NetworkEntry = cycle
			e.Injected++
			if e.tracer != nil {
				e.tracer.Record(obs.Event{
					Cycle: cycle, Type: obs.EvInject, Node: int32(e.node),
					Src: int32(p.Src), Pkt: p.ID, Arg: uint64(p.Flits),
					Port: -1, VNet: int8(noc.UOResp), VC: int16(vc),
				})
			}
			e.send(p, 0, cycle)
			e.respQ.PopFront()
			if p.Flits > 1 {
				e.inFlight = p
				e.nextSeq = 1
			}
		}
	}
}

func (e *Endpoint) send(p *noc.Packet, seq int, cycle uint64) {
	e.mesh.InjectLink(e.node).Send(noc.NewFlit(p, seq, e.curVC), cycle)
}

// HasPendingWork reports whether the endpoint holds any packet that has not
// yet reached its agent (watchdog in-flight signal).
func (e *Endpoint) HasPendingWork() bool {
	return e.reorder.count > 0 || e.doneResp.Len() > 0 || e.reqQ.Len() > 0 ||
		e.respQ.Len() > 0 || e.inFlight != nil || len(e.staged) > 0 || len(e.stagedR) > 0
}

// OrderingSnapshot renders the endpoint's reorder state for watchdog dumps.
func (e *Endpoint) OrderingSnapshot() string {
	return fmt.Sprintf("endpoint %d: nextKey=%d reorder=%d doneResp=%d reqQ=%d respQ=%d",
		e.node, e.nextKey, e.reorder.count, e.doneResp.Len(), e.reqQ.Len(), e.respQ.Len())
}
