package baseline

import "testing"

func TestTokenBKeysAreDenseAndOrdered(t *testing.T) {
	tb := NewTokenB()
	for i := uint64(0); i < 100; i++ {
		if k := tb.AssignKey(int(i%16), i); k != i {
			t.Fatalf("key = %d, want %d", k, i)
		}
	}
	if tb.Skippable(5, 1000) {
		t.Fatal("TokenB keys are never skippable")
	}
}

func TestINSOKeySlots(t *testing.T) {
	o := NewINSO(16, 20, 8)
	if k := o.AssignKey(3, 0); k != 3 {
		t.Fatalf("node 3's first key = %d, want 3", k)
	}
	if k := o.AssignKey(3, 0); k != 3+16 {
		t.Fatalf("node 3's second key = %d, want 19", k)
	}
	if k := o.AssignKey(7, 0); k != 7 {
		t.Fatalf("node 7's first key = %d, want 7", k)
	}
}

func TestINSOExpiryCoversIdleSlots(t *testing.T) {
	o := NewINSO(4, 20, 8)
	o.AssignKey(0, 5) // node 0 is at slot 1; nodes 1..3 idle at slot 0
	// Window boundary at cycle 20 expires the laggards' gaps.
	o.Evaluate(20)
	// Node 1's slot 0 (key 1) expired, visible after the diameter delay.
	if o.Skippable(1, 20) {
		t.Fatal("expiry must not be visible before the propagation delay")
	}
	if !o.Skippable(1, 28) {
		t.Fatal("expired slot not skippable after propagation")
	}
	// Node 0's slot 0 was assigned, never skippable.
	if o.Skippable(0, 100) {
		t.Fatal("assigned slot must not be skippable")
	}
	if o.ExpiredSlots == 0 {
		t.Fatal("no slots expired")
	}
}

func TestINSOExpiryBroadcastAccounting(t *testing.T) {
	o := NewINSO(4, 20, 8)
	o.AssignKey(0, 5)
	o.Evaluate(20)
	sent := 0
	for node := 0; node < 4; node++ {
		// Expiries created at cycle 20 become consumable one cycle later
		// (uniform visibility delay; see TakeExpiryBroadcast).
		for o.TakeExpiryBroadcast(node, 21) {
			sent++
		}
	}
	if sent == 0 {
		t.Fatal("expiry events owe broadcasts")
	}
	if o.ExpiryBroadcast != uint64(sent) {
		t.Fatal("broadcast accounting inconsistent")
	}
	if o.ExpiryRatio() != float64(sent)/1.0 {
		t.Fatalf("expiry ratio = %v", o.ExpiryRatio())
	}
}

func TestINSONoExpiryMidWindow(t *testing.T) {
	o := NewINSO(4, 20, 8)
	o.AssignKey(0, 3)
	o.Evaluate(13) // not a window boundary
	if o.ExpiredSlots != 0 {
		t.Fatal("expiry outside a window boundary")
	}
}

func TestINSOSmallWindowExpiresFaster(t *testing.T) {
	fast := NewINSO(4, 20, 8)
	slow := NewINSO(4, 80, 8)
	fast.AssignKey(0, 0)
	slow.AssignKey(0, 0)
	for c := uint64(1); c <= 80; c++ {
		fast.Evaluate(c)
		slow.Evaluate(c)
	}
	// key 1 (node 1 slot 0): the 20-cycle window expires it by cycle 28,
	// the 80-cycle window only by 88.
	if !fast.Skippable(1, 50) {
		t.Fatal("fast window should have expired the slot")
	}
	if slow.Skippable(1, 50) {
		t.Fatal("slow window expired the slot too early")
	}
}
