package baseline

import "scorpio/internal/sim"

// KindExpiry marks INSO expiry broadcasts; endpoints drop them on arrival
// (their cost is the network bandwidth they consumed). The value is disjoint
// from the coherence message kinds by construction of the baseline systems.
const KindExpiry = -1

// TokenB is the Figure 7 TokenB model: protocol-level ordering with zero
// interconnect ordering cost. Matching the paper's methodology ("we do not
// model the behavior of TokenB in the event of data races where retries and
// expensive persistent requests affect it significantly"), token exchange is
// abstracted into an oracle sequencer: every request is ordered the moment
// it is injected.
type TokenB struct {
	next uint64
}

// NewTokenB returns the oracle sequencer.
func NewTokenB() *TokenB { return &TokenB{} }

// AssignKey implements Orderer.
func (t *TokenB) AssignKey(node int, cycle uint64) uint64 {
	k := t.next
	t.next++
	return k
}

// Skippable implements Orderer: every key belongs to a real request.
func (t *TokenB) Skippable(key uint64, cycle uint64) bool { return false }

// Evaluate implements sim.Component.
func (t *TokenB) Evaluate(cycle uint64) {}

// Commit implements sim.Component.
func (t *TokenB) Commit(cycle uint64) {}

// Idle implements sim.Idler: the oracle sequencer is pure demand-driven
// state (AssignKey is called from endpoint commits), so its own cycle work
// is always skippable.
func (t *TokenB) Idle() bool { return true }

// expiryRange is a visible-after-delay range of expired INSO slots.
type expiryRange struct {
	from, to  uint64 // slot indexes [from, to)
	visibleAt uint64
}

// INSO models In-Network Snoop Ordering: source s owns the global orders
// s, s+N, s+2N, …; unused orders must be expired explicitly. Expiries become
// visible to consumers one mesh traversal after their window boundary, and
// each expiry event costs a real broadcast on the main network.
type INSO struct {
	nodes  int
	window int
	delay  uint64 // expiry visibility delay (mesh diameter)

	nextSlot []uint64
	expiries [][]expiryRange
	pending  []int // expiry broadcasts owed per node
	// pendingSince stamps the cycle a node's owed count last grew; an owed
	// broadcast becomes consumable the cycle after (uniform one-cycle
	// visibility, so a parked endpoint woken at stamp+1 injects on exactly
	// the same cycle a never-parked one does).
	pendingSince []uint64

	// Activity wiring: endAct[s] is node s's endpoint scheduling unit, woken
	// when the node starts owing an expiry broadcast; self is INSO's own
	// unit, woken (by AssignKey) for the window boundary after an injection
	// breaks slot-pointer equality.
	endAct []*sim.Activity
	self   *sim.Activity

	// Stats
	ExpiredSlots    uint64
	ExpiryBroadcast uint64
	RealRequests    uint64
}

// NewINSO builds the orderer for an N-node mesh with the given expiration
// window in cycles (the paper sweeps 20, 40 and 80).
func NewINSO(nodes, window int, diameter int) *INSO {
	return &INSO{
		nodes:        nodes,
		window:       window,
		delay:        uint64(diameter),
		nextSlot:     make([]uint64, nodes),
		expiries:     make([][]expiryRange, nodes),
		pending:      make([]int, nodes),
		pendingSince: make([]uint64, nodes),
		endAct:       make([]*sim.Activity, nodes),
	}
}

// SetEndpointActivity wires node's endpoint scheduling unit so INSO can wake
// it when the node starts owing an expiry broadcast.
func (o *INSO) SetEndpointActivity(node int, a *sim.Activity) { o.endAct[node] = a }

// BindActivity wires INSO's own scheduling unit (the AssignKey self-wake
// target).
func (o *INSO) BindActivity(a *sim.Activity) { o.self = a }

// nextBoundary returns the first window boundary strictly after cycle.
func (o *INSO) nextBoundary(cycle uint64) uint64 {
	w := uint64(o.window)
	return (cycle/w + 1) * w
}

// AssignKey implements Orderer: the source's next owned order. Advancing one
// source's slot pointer creates lag everywhere else, so INSO wakes itself for
// the next window boundary where that lag turns into expiries.
func (o *INSO) AssignKey(node int, cycle uint64) uint64 {
	k := o.nextSlot[node]
	o.nextSlot[node]++
	o.RealRequests++
	o.self.Wake(o.nextBoundary(cycle), sim.WakeTimer)
	return uint64(node) + uint64(o.nodes)*k
}

// Skippable implements Orderer: a key may be skipped once its source has
// expired the slot and the expiry had time to propagate.
func (o *INSO) Skippable(key uint64, cycle uint64) bool {
	s := int(key % uint64(o.nodes))
	k := key / uint64(o.nodes)
	for _, r := range o.expiries[s] {
		if k >= r.from && k < r.to {
			return cycle >= r.visibleAt
		}
	}
	return false
}

// Evaluate advances expiry state at window boundaries: each source whose
// slot pointer lags the fastest source expires the gap (INSO's slots are
// time-associated, so an idle node's unused orders for elapsed windows are
// expired together). The fastest source never expires — all its slots are
// assigned — so expiry traffic is proportional to how unevenly nodes inject.
func (o *INSO) Evaluate(cycle uint64) {
	if cycle == 0 || cycle%uint64(o.window) != 0 {
		return
	}
	var max uint64
	for _, k := range o.nextSlot {
		if k > max {
			max = k
		}
	}
	target := max
	for s := range o.nextSlot {
		if o.nextSlot[s] >= target {
			continue
		}
		from, to := o.nextSlot[s], target
		o.nextSlot[s] = target
		o.expiries[s] = append(o.expiries[s], expiryRange{from: from, to: to, visibleAt: cycle + o.delay})
		o.ExpiredSlots += to - from
		o.pending[s]++
		o.pendingSince[s] = cycle
		o.endAct[s].Wake(cycle+1, sim.WakeOrder)
	}
}

// Commit implements sim.Component.
func (o *INSO) Commit(cycle uint64) {}

// TakeExpiryBroadcast reports whether the node owes a consumable expiry
// broadcast and consumes it; the endpoint injects the real packet. An owed
// broadcast is consumable starting the cycle after it was created (see
// pendingSince), which makes consumption timing independent of whether the
// endpoint was parked when the debt appeared.
func (o *INSO) TakeExpiryBroadcast(node int, cycle uint64) bool {
	if o.pending[node] > 0 && cycle > o.pendingSince[node] {
		o.pending[node]--
		o.ExpiryBroadcast++
		return true
	}
	return false
}

// OwesExpiry implements ExpirySource: node still owes broadcasts (visible or
// not), so its endpoint must stay schedulable.
func (o *INSO) OwesExpiry(node int) bool { return o.pending[node] > 0 }

// Idle implements sim.Idler: at a window boundary INSO only acts when some
// source's slot pointer lags the fastest; with all pointers equal nothing
// can expire until an AssignKey (whose self-wake re-arms the boundary).
func (o *INSO) Idle() bool {
	for _, k := range o.nextSlot[1:] {
		if k != o.nextSlot[0] {
			return false
		}
	}
	return true
}

// NextEventCycle implements sim.NextEventer: the next window boundary while
// slot pointers are unequal, nothing otherwise.
func (o *INSO) NextEventCycle(cycle uint64) uint64 {
	if o.Idle() {
		return sim.NoEvent
	}
	return o.nextBoundary(cycle)
}

// ExpiryRatio reports expiry broadcasts per real request (the paper's 25x
// observation for a 20-cycle window under low load).
func (o *INSO) ExpiryRatio() float64 {
	if o.RealRequests == 0 {
		return 0
	}
	return float64(o.ExpiryBroadcast) / float64(o.RealRequests)
}
