package baseline

// KindExpiry marks INSO expiry broadcasts; endpoints drop them on arrival
// (their cost is the network bandwidth they consumed). The value is disjoint
// from the coherence message kinds by construction of the baseline systems.
const KindExpiry = -1

// TokenB is the Figure 7 TokenB model: protocol-level ordering with zero
// interconnect ordering cost. Matching the paper's methodology ("we do not
// model the behavior of TokenB in the event of data races where retries and
// expensive persistent requests affect it significantly"), token exchange is
// abstracted into an oracle sequencer: every request is ordered the moment
// it is injected.
type TokenB struct {
	next uint64
}

// NewTokenB returns the oracle sequencer.
func NewTokenB() *TokenB { return &TokenB{} }

// AssignKey implements Orderer.
func (t *TokenB) AssignKey(node int, cycle uint64) uint64 {
	k := t.next
	t.next++
	return k
}

// Skippable implements Orderer: every key belongs to a real request.
func (t *TokenB) Skippable(key uint64, cycle uint64) bool { return false }

// Evaluate implements sim.Component.
func (t *TokenB) Evaluate(cycle uint64) {}

// Commit implements sim.Component.
func (t *TokenB) Commit(cycle uint64) {}

// expiryRange is a visible-after-delay range of expired INSO slots.
type expiryRange struct {
	from, to  uint64 // slot indexes [from, to)
	visibleAt uint64
}

// INSO models In-Network Snoop Ordering: source s owns the global orders
// s, s+N, s+2N, …; unused orders must be expired explicitly. Expiries become
// visible to consumers one mesh traversal after their window boundary, and
// each expiry event costs a real broadcast on the main network.
type INSO struct {
	nodes  int
	window int
	delay  uint64 // expiry visibility delay (mesh diameter)

	nextSlot []uint64
	expiries [][]expiryRange
	pending  []int // expiry broadcasts owed per node

	// Stats
	ExpiredSlots    uint64
	ExpiryBroadcast uint64
	RealRequests    uint64
}

// NewINSO builds the orderer for an N-node mesh with the given expiration
// window in cycles (the paper sweeps 20, 40 and 80).
func NewINSO(nodes, window int, diameter int) *INSO {
	return &INSO{
		nodes:    nodes,
		window:   window,
		delay:    uint64(diameter),
		nextSlot: make([]uint64, nodes),
		expiries: make([][]expiryRange, nodes),
		pending:  make([]int, nodes),
	}
}

// AssignKey implements Orderer: the source's next owned order.
func (o *INSO) AssignKey(node int, cycle uint64) uint64 {
	k := o.nextSlot[node]
	o.nextSlot[node]++
	o.RealRequests++
	return uint64(node) + uint64(o.nodes)*k
}

// Skippable implements Orderer: a key may be skipped once its source has
// expired the slot and the expiry had time to propagate.
func (o *INSO) Skippable(key uint64, cycle uint64) bool {
	s := int(key % uint64(o.nodes))
	k := key / uint64(o.nodes)
	for _, r := range o.expiries[s] {
		if k >= r.from && k < r.to {
			return cycle >= r.visibleAt
		}
	}
	return false
}

// Evaluate advances expiry state at window boundaries: each source whose
// slot pointer lags the fastest source expires the gap (INSO's slots are
// time-associated, so an idle node's unused orders for elapsed windows are
// expired together). The fastest source never expires — all its slots are
// assigned — so expiry traffic is proportional to how unevenly nodes inject.
func (o *INSO) Evaluate(cycle uint64) {
	if cycle == 0 || cycle%uint64(o.window) != 0 {
		return
	}
	var max uint64
	for _, k := range o.nextSlot {
		if k > max {
			max = k
		}
	}
	target := max
	for s := range o.nextSlot {
		if o.nextSlot[s] >= target {
			continue
		}
		from, to := o.nextSlot[s], target
		o.nextSlot[s] = target
		o.expiries[s] = append(o.expiries[s], expiryRange{from: from, to: to, visibleAt: cycle + o.delay})
		o.ExpiredSlots += to - from
		o.pending[s]++
	}
}

// Commit implements sim.Component.
func (o *INSO) Commit(cycle uint64) {}

// TakeExpiryBroadcast reports whether the node owes an expiry broadcast and
// consumes it; the endpoint injects the real packet.
func (o *INSO) TakeExpiryBroadcast(node int) bool {
	if o.pending[node] > 0 {
		o.pending[node]--
		o.ExpiryBroadcast++
		return true
	}
	return false
}

// ExpiryRatio reports expiry broadcasts per real request (the paper's 25x
// observation for a 20-cycle window under low load).
func (o *INSO) ExpiryRatio() float64 {
	if o.RealRequests == 0 {
		return 0
	}
	return float64(o.ExpiryBroadcast) / float64(o.RealRequests)
}
