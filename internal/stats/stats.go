// Package stats provides the counters, histograms and latency-breakdown
// accumulators used by every subsystem of the SCORPIO simulator.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a named monotonically increasing event count.
type Counter struct {
	Name  string
	Value uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Value++ }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.Value += n }

// Mean accumulates a running mean without storing samples.
type Mean struct {
	Sum   float64
	Count uint64
}

// Observe adds a sample.
func (m *Mean) Observe(v float64) {
	m.Sum += v
	m.Count++
}

// Value returns the mean of all samples, or 0 if there are none.
func (m *Mean) Value() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / float64(m.Count)
}

// Merge folds other into m.
func (m *Mean) Merge(other Mean) {
	m.Sum += other.Sum
	m.Count += other.Count
}

// Histogram is a fixed-bucket latency histogram with overflow tracking.
type Histogram struct {
	BucketWidth uint64
	Buckets     []uint64
	Overflow    uint64
	sum         uint64
	count       uint64
	max         uint64
}

// NewHistogram returns a histogram with n buckets of the given width.
func NewHistogram(bucketWidth uint64, n int) *Histogram {
	if bucketWidth == 0 {
		bucketWidth = 1
	}
	return &Histogram{BucketWidth: bucketWidth, Buckets: make([]uint64, n)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.sum += v
	h.count++
	if v > h.max {
		h.max = v
	}
	idx := int(v / h.BucketWidth)
	if idx >= len(h.Buckets) {
		h.Overflow++
		return
	}
	h.Buckets[idx]++
}

// Count reports the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Mean reports the mean of all samples, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max reports the largest sample observed.
func (h *Histogram) Max() uint64 { return h.max }

// Sum reports the total of all samples observed (cycles across every
// transaction); the latency attributor uses it to compute each component's
// share of the end-to-end time.
func (h *Histogram) Sum() uint64 { return h.sum }

// Percentile returns an upper bound for the p-th percentile (0 < p <= 100)
// using bucket upper edges. When the target rank lands in the overflow
// region (samples beyond the last bucket), the result interpolates between
// the last bucket edge and the observed maximum proportionally to the
// rank's position within the overflow count, rather than collapsing every
// overflow percentile to the maximum.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(float64(h.count) * p / 100))
	if target == 0 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var seen uint64
	for i, b := range h.Buckets {
		seen += b
		if seen >= target {
			return uint64(i+1) * h.BucketWidth
		}
	}
	// The rank is one of the h.Overflow samples past the last bucket.
	edge := uint64(len(h.Buckets)) * h.BucketWidth
	if h.Overflow == 0 || h.max <= edge {
		return h.max
	}
	pos := target - (h.count - h.Overflow) // 1..Overflow
	frac := float64(pos) / float64(h.Overflow)
	return edge + uint64(frac*float64(h.max-edge)+0.5)
}

// Reset zeroes the histogram in place, keeping the bucket geometry. The
// telemetry sampler reuses one scratch histogram across per-core merges so
// live percentile reads stay allocation-free.
func (h *Histogram) Reset() {
	for i := range h.Buckets {
		h.Buckets[i] = 0
	}
	h.Overflow, h.sum, h.count, h.max = 0, 0, 0, 0
}

// Merge folds other into h. Both histograms must share the same bucket
// geometry; Merge panics otherwise, since silently mixing widths would
// corrupt every percentile.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if h.BucketWidth != other.BucketWidth || len(h.Buckets) != len(other.Buckets) {
		panic("stats: merging histograms with different bucket geometry")
	}
	for i, b := range other.Buckets {
		h.Buckets[i] += b
	}
	h.Overflow += other.Overflow
	h.sum += other.sum
	h.count += other.count
	if other.max > h.max {
		h.max = other.max
	}
}

// BreakdownComponent identifies one segment of the L2-miss latency breakdown
// reported in Figures 6b and 6c of the paper.
type BreakdownComponent int

// Latency breakdown segments. SCORPIO uses NetBcastReq/ReqOrdering; the
// directory baselines use NetReqToDir/DirAccess/NetDirToSharer. Both share
// SharerAccess and NetResp.
const (
	NetReqToDir BreakdownComponent = iota
	DirAccess
	NetDirToSharer
	NetBcastReq
	ReqOrdering
	SharerAccess
	NetResp
	numBreakdownComponents
)

// NumBreakdownComponents is the number of breakdown segments; callers build
// per-transaction segment arrays of this length instead of allocating a map
// per observed miss.
const NumBreakdownComponents = int(numBreakdownComponents)

// String returns the paper's label for the component.
func (b BreakdownComponent) String() string {
	switch b {
	case NetReqToDir:
		return "Network: Req to Dir"
	case DirAccess:
		return "Dir Access"
	case NetDirToSharer:
		return "Network: Dir to Sharer"
	case NetBcastReq:
		return "Network: Bcast Req"
	case ReqOrdering:
		return "Req Ordering"
	case SharerAccess:
		return "Sharer Access"
	case NetResp:
		return "Network: Resp"
	default:
		return fmt.Sprintf("BreakdownComponent(%d)", int(b))
	}
}

// Breakdown accumulates per-component mean latencies over a set of
// transactions.
type Breakdown struct {
	comps [numBreakdownComponents]Mean
	total Mean
}

// Observe records one transaction's segment latencies (cycles), indexed by
// BreakdownComponent. Missing segments should be left zero; they still count
// toward the mean so the stacked components sum to the mean total latency.
// The fixed-size array (rather than a map) keeps per-miss accounting off the
// heap.
func (b *Breakdown) Observe(segments *[NumBreakdownComponents]uint64) {
	var sum uint64
	for c, v := range segments {
		b.comps[c].Observe(float64(v))
		sum += v
	}
	b.total.Observe(float64(sum))
}

// Mean returns the mean latency of the given component.
func (b *Breakdown) Mean(c BreakdownComponent) float64 {
	return b.comps[c].Value()
}

// Total returns the mean summed latency.
func (b *Breakdown) Total() float64 { return b.total.Value() }

// Count returns the number of observed transactions.
func (b *Breakdown) Count() uint64 { return b.total.Count }

// Merge folds other into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for i := range b.comps {
		b.comps[i].Merge(other.comps[i])
	}
	b.total.Merge(other.total)
}

// String renders the breakdown as "label=mean" pairs for components with a
// non-zero mean, in declaration order.
func (b *Breakdown) String() string {
	var parts []string
	for c := BreakdownComponent(0); c < numBreakdownComponents; c++ {
		if m := b.comps[c].Value(); m > 0 {
			parts = append(parts, fmt.Sprintf("%s=%.1f", c, m))
		}
	}
	return strings.Join(parts, " ")
}

// Table formats rows of (label, value) pairs with aligned columns; it is the
// shared renderer for the experiment harness output.
func Table(title string, header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}

// SortedKeys returns the keys of a string-keyed map in sorted order; the
// experiment harness uses it for stable output.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
