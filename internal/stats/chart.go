package stats

import (
	"fmt"
	"strings"
)

// BarChart renders grouped horizontal bars in plain text, one group per row
// label and one bar per series — the experiment harness uses it to echo the
// paper's figures next to the numeric tables.
type BarChart struct {
	Title  string
	Series []string
	// Rows maps a label to one value per series.
	Rows []BarRow
	// Width is the maximum bar length in characters (default 40).
	Width int
}

// BarRow is one group of bars.
type BarRow struct {
	Label  string
	Values []float64
}

// glyphs distinguishes series within a group.
var glyphs = []byte{'#', '=', '*', '+', '~', 'o', 'x', '%'}

// String renders the chart.
func (c BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	var max float64
	labelW := 0
	for _, r := range c.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
		for _, v := range r.Values {
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		max = 1
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	for i, s := range c.Series {
		fmt.Fprintf(&sb, "  %c %s", glyphs[i%len(glyphs)], s)
		if i != len(c.Series)-1 {
			sb.WriteString("  ")
		}
	}
	if len(c.Series) > 0 {
		sb.WriteByte('\n')
	}
	for _, r := range c.Rows {
		for i, v := range r.Values {
			label := ""
			if i == 0 {
				label = r.Label
			}
			n := int(v / max * float64(width))
			if n < 1 && v > 0 {
				n = 1
			}
			fmt.Fprintf(&sb, "%-*s |%s %.3f\n", labelW, label, strings.Repeat(string(glyphs[i%len(glyphs)]), n), v)
		}
	}
	return sb.String()
}
