package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	c := Counter{Name: "x"}
	c.Inc()
	c.Add(4)
	if c.Value != 5 {
		t.Fatalf("value = %d, want 5", c.Value)
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean must be 0")
	}
	m.Observe(10)
	m.Observe(20)
	if m.Value() != 15 {
		t.Fatalf("mean = %v, want 15", m.Value())
	}
	var other Mean
	other.Observe(30)
	m.Merge(other)
	if m.Value() != 20 || m.Count != 3 {
		t.Fatalf("merged mean = %v (n=%d), want 20 (3)", m.Value(), m.Count)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, v := range []uint64{1, 11, 12, 49, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1", h.Overflow)
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
	if h.Mean() < 200 || h.Mean() > 220 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if p := h.Percentile(50); p != 20 {
		t.Fatalf("p50 = %d, want 20 (bucket upper edge)", p)
	}
	if p := h.Percentile(100); p != 1000 {
		t.Fatalf("p100 = %d, want observed max", p)
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	h := NewHistogram(5, 40)
	if err := quick.Check(func(raw []uint16) bool {
		for _, v := range raw {
			h.Observe(uint64(v % 300))
		}
		return h.Percentile(50) <= h.Percentile(90) && h.Percentile(90) <= h.Percentile(100)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	var s1, s2 [NumBreakdownComponents]uint64
	s1[NetBcastReq], s1[ReqOrdering], s1[SharerAccess], s1[NetResp] = 20, 10, 10, 15
	s2[NetBcastReq], s2[ReqOrdering], s2[SharerAccess], s2[NetResp] = 30, 20, 10, 25
	b.Observe(&s1)
	b.Observe(&s2)
	if b.Count() != 2 {
		t.Fatalf("count = %d", b.Count())
	}
	if got := b.Mean(NetBcastReq); got != 25 {
		t.Fatalf("bcast mean = %v, want 25", got)
	}
	if got := b.Total(); got != 70 {
		t.Fatalf("total = %v, want 70", got)
	}
	var other Breakdown
	var s3 [NumBreakdownComponents]uint64
	s3[DirAccess] = 100
	other.Observe(&s3)
	b.Merge(&other)
	if b.Count() != 3 {
		t.Fatal("merge lost samples")
	}
	s := b.String()
	if !strings.Contains(s, "Network: Bcast Req") {
		t.Fatalf("String() = %q", s)
	}
}

func TestBreakdownComponentNames(t *testing.T) {
	for c := BreakdownComponent(0); c < numBreakdownComponents; c++ {
		if c.String() == "" {
			t.Fatal("unnamed component")
		}
	}
	if NetReqToDir.String() != "Network: Req to Dir" {
		t.Fatal("label drifted from the paper's legend")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table("T", []string{"name", "v"}, [][]string{{"a", "1"}, {"longer", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Fatal("title missing")
	}
	if len(lines[1]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Fatalf("rows not aligned: %q", out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("sorted keys = %v", got)
	}
}

func TestBarChartRendering(t *testing.T) {
	c := BarChart{
		Title:  "demo",
		Series: []string{"a", "b"},
		Rows: []BarRow{
			{Label: "one", Values: []float64{1.0, 0.5}},
			{Label: "two", Values: []float64{2.0, 0.0}},
		},
		Width: 10,
	}
	out := c.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "one") {
		t.Fatalf("labels missing: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + legend + 4 bars
		t.Fatalf("expected 6 lines, got %d: %q", len(lines), out)
	}
	// The 2.0 bar must be the longest (full width).
	if !strings.Contains(out, strings.Repeat("#", 10)) {
		t.Fatalf("max bar not full width: %q", out)
	}
	// A zero value renders no bar but still a line.
	if !strings.Contains(out, "| 0.000") {
		t.Fatalf("zero bar missing: %q", out)
	}
}

func TestBarChartEmptySafe(t *testing.T) {
	if out := (BarChart{Title: "x"}).String(); !strings.Contains(out, "x") {
		t.Fatalf("empty chart broken: %q", out)
	}
}
