package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	c := Counter{Name: "x"}
	c.Inc()
	c.Add(4)
	if c.Value != 5 {
		t.Fatalf("value = %d, want 5", c.Value)
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean must be 0")
	}
	m.Observe(10)
	m.Observe(20)
	if m.Value() != 15 {
		t.Fatalf("mean = %v, want 15", m.Value())
	}
	var other Mean
	other.Observe(30)
	m.Merge(other)
	if m.Value() != 20 || m.Count != 3 {
		t.Fatalf("merged mean = %v (n=%d), want 20 (3)", m.Value(), m.Count)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, v := range []uint64{1, 11, 12, 49, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1", h.Overflow)
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
	if h.Mean() < 200 || h.Mean() > 220 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if p := h.Percentile(50); p != 20 {
		t.Fatalf("p50 = %d, want 20 (bucket upper edge)", p)
	}
	if p := h.Percentile(100); p != 1000 {
		t.Fatalf("p100 = %d, want observed max", p)
	}
}

func TestHistogramPercentileOverflow(t *testing.T) {
	// 10 samples, all in overflow: 5 buckets of width 10 cover [0,50), every
	// sample is ≥ 100. Percentiles must spread between the bucket edge (50)
	// and the max (1000) instead of collapsing to the max.
	h := NewHistogram(10, 5)
	for i := uint64(1); i <= 10; i++ {
		h.Observe(100 * i)
	}
	if h.Overflow != 10 {
		t.Fatalf("overflow = %d, want 10", h.Overflow)
	}
	p10 := h.Percentile(10)
	p50 := h.Percentile(50)
	p100 := h.Percentile(100)
	if p100 != 1000 {
		t.Fatalf("p100 = %d, want observed max 1000", p100)
	}
	if p10 >= p100 || p50 >= p100 {
		t.Fatalf("overflow percentiles collapsed to max: p10=%d p50=%d p100=%d", p10, p50, p100)
	}
	if p10 <= 50 || p10 > p50 {
		t.Fatalf("p10=%d should interpolate above the bucket edge and below p50=%d", p10, p50)
	}
}

func TestHistogramPercentileEdgeCases(t *testing.T) {
	// Empty histogram: every percentile is 0.
	h := NewHistogram(10, 5)
	for _, p := range []float64{0.001, 50, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Fatalf("empty histogram p%v = %d, want 0", p, got)
		}
	}
	// p→0 clamps to the first sample's bucket, not to rank 0.
	h.Observe(5)
	h.Observe(45)
	if got := h.Percentile(0.001); got != 10 {
		t.Fatalf("p→0 = %d, want first bucket upper edge 10", got)
	}
	// A single overflow sample: interpolation degenerates to the max.
	h2 := NewHistogram(10, 5)
	h2.Observe(777)
	if got := h2.Percentile(50); got != 777 {
		t.Fatalf("single-overflow p50 = %d, want 777", got)
	}
	// Overflow sample exactly at the bucket edge: no room to interpolate.
	h3 := NewHistogram(10, 5)
	h3.Observe(50)
	if got := h3.Percentile(100); got != 50 {
		t.Fatalf("edge-overflow p100 = %d, want 50", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(10, 5)
	b := NewHistogram(10, 5)
	for _, v := range []uint64{1, 11, 49} {
		a.Observe(v)
	}
	for _, v := range []uint64{12, 1000} {
		b.Observe(v)
	}
	a.Merge(b)
	if a.Count() != 5 || a.Overflow != 1 || a.Max() != 1000 {
		t.Fatalf("merge: count=%d overflow=%d max=%d", a.Count(), a.Overflow, a.Max())
	}
	if p := a.Percentile(50); p != 20 {
		t.Fatalf("merged p50 = %d, want 20", p)
	}
	// Merging an empty histogram is a no-op even with mismatched geometry.
	a.Merge(NewHistogram(99, 1))
	if a.Count() != 5 {
		t.Fatal("empty merge changed count")
	}
	// Mismatched geometry with samples must panic.
	bad := NewHistogram(99, 1)
	bad.Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("geometry-mismatched merge did not panic")
		}
	}()
	a.Merge(bad)
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	h := NewHistogram(5, 40)
	if err := quick.Check(func(raw []uint16) bool {
		for _, v := range raw {
			h.Observe(uint64(v % 300))
		}
		return h.Percentile(50) <= h.Percentile(90) && h.Percentile(90) <= h.Percentile(100)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	var s1, s2 [NumBreakdownComponents]uint64
	s1[NetBcastReq], s1[ReqOrdering], s1[SharerAccess], s1[NetResp] = 20, 10, 10, 15
	s2[NetBcastReq], s2[ReqOrdering], s2[SharerAccess], s2[NetResp] = 30, 20, 10, 25
	b.Observe(&s1)
	b.Observe(&s2)
	if b.Count() != 2 {
		t.Fatalf("count = %d", b.Count())
	}
	if got := b.Mean(NetBcastReq); got != 25 {
		t.Fatalf("bcast mean = %v, want 25", got)
	}
	if got := b.Total(); got != 70 {
		t.Fatalf("total = %v, want 70", got)
	}
	var other Breakdown
	var s3 [NumBreakdownComponents]uint64
	s3[DirAccess] = 100
	other.Observe(&s3)
	b.Merge(&other)
	if b.Count() != 3 {
		t.Fatal("merge lost samples")
	}
	s := b.String()
	if !strings.Contains(s, "Network: Bcast Req") {
		t.Fatalf("String() = %q", s)
	}
}

func TestBreakdownComponentNames(t *testing.T) {
	for c := BreakdownComponent(0); c < numBreakdownComponents; c++ {
		if c.String() == "" {
			t.Fatal("unnamed component")
		}
	}
	if NetReqToDir.String() != "Network: Req to Dir" {
		t.Fatal("label drifted from the paper's legend")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table("T", []string{"name", "v"}, [][]string{{"a", "1"}, {"longer", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Fatal("title missing")
	}
	if len(lines[1]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Fatalf("rows not aligned: %q", out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("sorted keys = %v", got)
	}
}

func TestBarChartRendering(t *testing.T) {
	c := BarChart{
		Title:  "demo",
		Series: []string{"a", "b"},
		Rows: []BarRow{
			{Label: "one", Values: []float64{1.0, 0.5}},
			{Label: "two", Values: []float64{2.0, 0.0}},
		},
		Width: 10,
	}
	out := c.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "one") {
		t.Fatalf("labels missing: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + legend + 4 bars
		t.Fatalf("expected 6 lines, got %d: %q", len(lines), out)
	}
	// The 2.0 bar must be the longest (full width).
	if !strings.Contains(out, strings.Repeat("#", 10)) {
		t.Fatalf("max bar not full width: %q", out)
	}
	// A zero value renders no bar but still a line.
	if !strings.Contains(out, "| 0.000") {
		t.Fatalf("zero bar missing: %q", out)
	}
}

func TestBarChartEmptySafe(t *testing.T) {
	if out := (BarChart{Title: "x"}).String(); !strings.Contains(out, "x") {
		t.Fatalf("empty chart broken: %q", out)
	}
}
