// Package core assembles SCORPIO's primary contribution: a globally ordered
// mesh network built from an unordered main network (package noc), a
// fixed-latency bufferless notification network (package notif), and one
// network interface controller per node (package nic) that turns merged
// notification vectors into a consistent global delivery order.
//
// The OrderedNet is protocol-agnostic: any agent that implements nic.Agent
// (an L2 cache controller, a memory controller, a traffic generator) can be
// attached to a node and will observe every globally ordered request in
// exactly the same order as every other node.
package core

import (
	"fmt"

	"scorpio/internal/nic"
	"scorpio/internal/noc"
	"scorpio/internal/notif"
	"scorpio/internal/obs"
	"scorpio/internal/obs/audit"
	"scorpio/internal/sim"
)

// Config aggregates the parameters of the three hardware layers.
type Config struct {
	Net   noc.Config
	Notif notif.Config
	NIC   nic.Config
	// MainNetworks replicates the main mesh (Section 5.3's throughput
	// extension: "multiple main networks ... would not affect the
	// correctness because we decouple message delivery from ordering").
	// 0 or 1 selects the chip's single mesh.
	MainNetworks int
}

// DefaultConfig returns the fabricated 36-core chip's configuration
// (Table 1 of the paper).
func DefaultConfig() Config {
	net := noc.DefaultConfig()
	return Config{
		Net:   net,
		Notif: notif.Config{Width: net.Width, Height: net.Height, BitsPerCore: 1},
		NIC:   nic.DefaultConfig(),
	}
}

// WithMeshSize returns a copy of the configuration resized to a w×h mesh.
func (c Config) WithMeshSize(w, h int) Config {
	c.Net.Width, c.Net.Height = w, h
	c.Notif.Width, c.Notif.Height = w, h
	return c
}

// Validate checks cross-layer consistency.
func (c Config) Validate() error {
	if err := c.Net.Validate(); err != nil {
		return err
	}
	if err := c.Notif.Validate(); err != nil {
		return err
	}
	if c.Net.Width != c.Notif.Width || c.Net.Height != c.Notif.Height {
		return fmt.Errorf("core: main network is %dx%d but notification network is %dx%d",
			c.Net.Width, c.Net.Height, c.Notif.Width, c.Notif.Height)
	}
	return nil
}

// OrderedNet is the assembled ordered interconnect.
type OrderedNet struct {
	cfg    Config
	meshes []*noc.Mesh
	nnet   *notif.Network
	nics   []*nic.NIC
	check  *orderChecker
	pktID  uint64
}

// NewOrderedNet builds the ordered network and registers every component on
// the kernel. Agents are attached afterwards with AttachAgent.
func NewOrderedNet(cfg Config, k *sim.Kernel) (*OrderedNet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k2 := cfg.MainNetworks
	if k2 < 1 {
		k2 = 1
	}
	var meshes []*noc.Mesh
	for i := 0; i < k2; i++ {
		mesh, err := noc.NewMesh(cfg.Net)
		if err != nil {
			return nil, err
		}
		meshes = append(meshes, mesh)
	}
	nnet, err := notif.NewNetwork(cfg.Notif)
	if err != nil {
		return nil, err
	}
	on := &OrderedNet{cfg: cfg, meshes: meshes, nnet: nnet}
	on.check = newOrderChecker(cfg.Net.Nodes())
	for node := 0; node < cfg.Net.Nodes(); node++ {
		n := nic.New(node, cfg.NIC, meshes[0], nnet, nil)
		for _, extra := range meshes[1:] {
			n.AddMesh(extra)
		}
		on.nics = append(on.nics, n)
		// The NIC shares a scheduling unit with the node's agents (L2,
		// memory controller, injector): a delivery calls straight into
		// them, so the kernel must never split the node across workers.
		act := k.RegisterGroup(node, n)
		// The node's unit is woken by its link traffic and by notification
		// deliveries.
		n.BindActivity(act)
		nnet.SetSourceActivity(node, act)
	}
	for _, mesh := range meshes {
		mesh.Register(k)
	}
	nnetAct := k.Register(nnet)
	for _, n := range on.nics {
		// NICs holding a pending offer wake the OR-mesh for the sampling
		// window start.
		n.SetNotifActivity(nnetAct)
	}
	return on, nil
}

// Config returns the network's configuration.
func (o *OrderedNet) Config() Config { return o.cfg }

// Mesh exposes the first main network (tests, attachment points).
func (o *OrderedNet) Mesh() *noc.Mesh { return o.meshes[0] }

// Meshes exposes every attached main network.
func (o *OrderedNet) Meshes() []*noc.Mesh { return o.meshes }

// NetStats aggregates router statistics across all main networks.
func (o *OrderedNet) NetStats() noc.RouterStats {
	var total noc.RouterStats
	for _, m := range o.meshes {
		s := m.Stats()
		total.FlitsAccepted += s.FlitsAccepted
		total.FlitsRouted += s.FlitsRouted
		total.Bypasses += s.Bypasses
		total.Forks += s.Forks
		total.BufferReads += s.BufferReads
		total.BufferWrites += s.BufferWrites
		total.AllocStalls += s.AllocStalls
	}
	return total
}

// Notif exposes the notification network.
func (o *OrderedNet) Notif() *notif.Network { return o.nnet }

// SetTracer attaches a lifecycle tracer to every router, NIC and the
// notification network (nil disables tracing everywhere).
func (o *OrderedNet) SetTracer(t *obs.Tracer) {
	for _, m := range o.meshes {
		m.SetTracer(t)
	}
	for _, n := range o.nics {
		n.SetTracer(t)
	}
	o.nnet.SetTracer(t)
}

// SetAuditor attaches the online auditor to every router, NIC and the
// notification network (nil disables auditing everywhere).
func (o *OrderedNet) SetAuditor(a *audit.Auditor) {
	for _, m := range o.meshes {
		m.SetAuditor(a)
	}
	for _, n := range o.nics {
		n.SetAuditor(a)
	}
	o.nnet.SetAuditor(a)
}

// BufferedFlits counts flits buffered in routers across all main networks.
func (o *OrderedNet) BufferedFlits() int {
	n := 0
	for _, m := range o.meshes {
		n += m.BufferedFlits()
	}
	return n
}

// HasPendingWork reports whether any NIC still holds undelivered packets.
func (o *OrderedNet) HasPendingWork() bool {
	for _, n := range o.nics {
		if n.HasPendingWork() {
			return true
		}
	}
	return false
}

// DeliveredCount sums delivered requests and responses across all NICs —
// the watchdog's forward-progress signal.
func (o *OrderedNet) DeliveredCount() uint64 {
	var total uint64
	for _, n := range o.nics {
		total += n.Stats.DeliveredRequests + n.Stats.DeliveredResponses
	}
	return total
}

// Snapshot renders the full network state (mesh occupancy plus every NIC's
// ordering state) for watchdog stall dumps.
func (o *OrderedNet) Snapshot(now uint64) string {
	s := ""
	for i, m := range o.meshes {
		if len(o.meshes) > 1 {
			s += fmt.Sprintf("main network %d:\n", i)
		}
		s += m.Snapshot(now)
	}
	for _, n := range o.nics {
		if n.HasPendingWork() {
			s += n.OrderingSnapshot() + "\n"
		}
	}
	return s
}

// NIC returns the node's network interface controller.
func (o *OrderedNet) NIC(node int) *nic.NIC { return o.nics[node] }

// Nodes returns the number of nodes.
func (o *OrderedNet) Nodes() int { return o.cfg.Net.Nodes() }

// AttachAgent wires a node's agent behind an order-recording shim so the
// global-order invariant can be verified at any time.
func (o *OrderedNet) AttachAgent(node int, a nic.Agent) {
	o.nics[node].SetAgent(&checkedAgent{inner: a, node: node, check: o.check})
}

// NewPacketID issues a unique packet ID across all attached networks.
func (o *OrderedNet) NewPacketID() uint64 {
	o.pktID++
	return o.pktID
}

// VerifyGlobalOrder returns an error if any two nodes observed different
// ordered-request sequences (compared over the shared prefix; nodes progress
// at different speeds).
func (o *OrderedNet) VerifyGlobalOrder() error { return o.check.verify() }

// OrderedDeliveries returns how many ordered requests the slowest node has
// observed.
func (o *OrderedNet) OrderedDeliveries() uint64 {
	min := ^uint64(0)
	for _, seq := range o.check.perNode {
		if uint64(len(seq)) < min {
			min = uint64(len(seq))
		}
	}
	if min == ^uint64(0) {
		return 0
	}
	return min
}

// orderChecker records each node's observed ordered sequence (packet IDs).
type orderChecker struct {
	perNode [][]uint64
}

func newOrderChecker(nodes int) *orderChecker {
	return &orderChecker{perNode: make([][]uint64, nodes)}
}

func (c *orderChecker) record(node int, id uint64) {
	c.perNode[node] = append(c.perNode[node], id)
}

func (c *orderChecker) verify() error {
	var ref []uint64
	refNode := -1
	for node, seq := range c.perNode {
		if len(seq) > len(ref) {
			ref = seq
			refNode = node
		}
	}
	for node, seq := range c.perNode {
		for i, id := range seq {
			if id != ref[i] {
				return fmt.Errorf("core: global order diverged at position %d: node %d saw packet %d, node %d saw packet %d",
					i, node, id, refNode, ref[i])
			}
		}
	}
	return nil
}

// checkedAgent forwards deliveries to the real agent, recording accepted
// ordered requests for invariant verification.
type checkedAgent struct {
	inner nic.Agent
	node  int
	check *orderChecker
}

func (c *checkedAgent) AcceptOrderedRequest(p *noc.Packet, arrive, cycle uint64) bool {
	if !c.inner.AcceptOrderedRequest(p, arrive, cycle) {
		return false
	}
	c.check.record(c.node, p.ID)
	return true
}

func (c *checkedAgent) AcceptResponse(p *noc.Packet, cycle uint64) bool {
	return c.inner.AcceptResponse(p, cycle)
}
