package core

import (
	"testing"

	"scorpio/internal/nic"
	"scorpio/internal/noc"
	"scorpio/internal/sim"
)

// genAgent injects n broadcast requests and counts deliveries.
type genAgent struct {
	net     *OrderedNet
	node    int
	toSend  int
	sent    int
	got     int
	gotResp int
}

func (g *genAgent) AcceptOrderedRequest(p *noc.Packet, arrive, cycle uint64) bool {
	g.got++
	return true
}

func (g *genAgent) AcceptResponse(p *noc.Packet, cycle uint64) bool {
	g.gotResp++
	return true
}

func (g *genAgent) Evaluate(cycle uint64) {
	if g.sent >= g.toSend {
		return
	}
	p := &noc.Packet{
		ID: g.net.NewPacketID(), VNet: noc.GOReq, Src: g.node, SID: g.node,
		Broadcast: true, Flits: 1, InjectCycle: cycle,
	}
	if g.net.NIC(g.node).SendRequest(p) {
		g.sent++
	}
}

func (g *genAgent) Commit(cycle uint64) {}

func buildNet(t *testing.T, w, h int) (*sim.Kernel, *OrderedNet, []*genAgent) {
	t.Helper()
	k := sim.NewKernel()
	cfg := DefaultConfig().WithMeshSize(w, h)
	on, err := NewOrderedNet(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	agents := make([]*genAgent, on.Nodes())
	for i := range agents {
		agents[i] = &genAgent{net: on, node: i}
		on.AttachAgent(i, agents[i])
		k.Register(agents[i])
	}
	return k, on, agents
}

func TestOrderedNetGlobalOrderInvariant(t *testing.T) {
	k, on, agents := buildNet(t, 4, 4)
	for _, a := range agents {
		a.toSend = 6
	}
	want := 16 * 6 * 16
	ok := k.RunUntil(func() bool {
		total := 0
		for _, a := range agents {
			total += a.got
		}
		return total == want
	}, 100000)
	if !ok {
		t.Fatal("ordered traffic did not drain")
	}
	if err := on.VerifyGlobalOrder(); err != nil {
		t.Fatal(err)
	}
	if got := on.OrderedDeliveries(); got != 16*6 {
		t.Fatalf("slowest node delivered %d, want %d", got, 16*6)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Notif.Width = 4
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched mesh sizes accepted")
	}
	if got := DefaultConfig().WithMeshSize(8, 8).Notif.Window(); got != 17 {
		t.Fatalf("resized window = %d, want 17", got)
	}
}

func TestDefaultConfigMatchesChip(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Net.Width != 6 || cfg.Net.Height != 6 {
		t.Fatal("chip is a 6x6 mesh")
	}
	if cfg.Net.GOReqVCs != 4 || cfg.Net.UORespVCs != 2 {
		t.Fatal("chip has 4 GO-REQ VCs and 2 UO-RESP VCs")
	}
	if cfg.Notif.Window() != 13 {
		t.Fatal("chip notification window is 13 cycles")
	}
	if cfg.NIC.MaxPendingNotifs != 4 {
		t.Fatal("chip allows 4 pending notifications")
	}
	if cfg.Net.DataPacketFlits() != 3 {
		t.Fatal("chip data packets are 3 flits")
	}
}

var _ nic.Agent = (*genAgent)(nil)

func TestMultipleMainNetworksPreserveGlobalOrder(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig().WithMeshSize(4, 4)
	cfg.MainNetworks = 2
	on, err := NewOrderedNet(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if got := on.NIC(0).Meshes(); got != 2 {
		t.Fatalf("NIC attached to %d meshes, want 2", got)
	}
	agents := make([]*genAgent, on.Nodes())
	for i := range agents {
		agents[i] = &genAgent{net: on, node: i, toSend: 8}
		on.AttachAgent(i, agents[i])
		k.Register(agents[i])
	}
	want := 16 * 8 * 16
	ok := k.RunUntil(func() bool {
		total := 0
		for _, a := range agents {
			total += a.got
		}
		return total == want
	}, 200000)
	if !ok {
		t.Fatal("dual-network ordered traffic did not drain")
	}
	if err := on.VerifyGlobalOrder(); err != nil {
		t.Fatal(err)
	}
	// Both meshes must actually carry traffic (striping works).
	for i, m := range on.Meshes() {
		if m.Stats().FlitsRouted == 0 {
			t.Fatalf("mesh %d carried no traffic", i)
		}
	}
}
