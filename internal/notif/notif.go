// Package notif implements SCORPIO's notification network: an
// ultra-lightweight bufferless mesh of bitwise-OR merge "routers" that
// broadcasts, once per fixed time window, which sources injected coherence
// requests that need to be globally ordered (Section 3.3 of the paper).
//
// A notification message is an N-field vector (one small counter per core,
// encoded in BitsPerCore bits) plus a "stop" backpressure bit. Messages merge
// by bitwise OR, so they can never contend and the network latency is bounded
// by the mesh diameter. All nodes therefore hold an identical merged vector
// at the end of every time window, which is what makes a consistent,
// decentralised global order possible.
package notif

import (
	"fmt"

	"scorpio/internal/obs"
	"scorpio/internal/obs/audit"
	"scorpio/internal/sim"
)

// Config describes a notification network.
type Config struct {
	// Width and Height of the mesh in nodes.
	Width, Height int
	// BitsPerCore is the width of each core's counter field (1 on the chip:
	// one request per core per window; 2 bits allow three, per §5.2).
	BitsPerCore int
	// WindowCycles is the time-window length; 0 selects Width+Height+1
	// (13 cycles for the 6×6 chip, Table 1), which covers the mesh diameter.
	WindowCycles int
}

// Validate reports an error for unusable parameters.
func (c Config) Validate() error {
	switch {
	case c.Width < 1 || c.Height < 1:
		return fmt.Errorf("notif: mesh must be at least 1x1, got %dx%d", c.Width, c.Height)
	case c.BitsPerCore < 1 || c.BitsPerCore > 8:
		return fmt.Errorf("notif: bits per core must be in [1,8], got %d", c.BitsPerCore)
	case c.WindowCycles != 0 && c.WindowCycles < c.Width+c.Height-1:
		return fmt.Errorf("notif: window of %d cycles cannot cover the mesh diameter %d", c.WindowCycles, c.Width+c.Height-2)
	}
	return nil
}

// Window returns the effective time-window length in cycles.
func (c Config) Window() int {
	if c.WindowCycles != 0 {
		return c.WindowCycles
	}
	return c.Width + c.Height + 1
}

// MaxPerWindow returns the largest request count one core can announce in a
// single window.
func (c Config) MaxPerWindow() int {
	return (1 << c.BitsPerCore) - 1
}

// Nodes returns the number of nodes.
func (c Config) Nodes() int { return c.Width * c.Height }

// Vector is a merged notification message: per-core request counts and the
// stop backpressure bit. The counts are packed BitsPerCore-bit fields
// (rounded up to a power-of-two width) in Words, 64/width cores per word —
// the hardware-faithful wire format. A 256-core vector at 1 bit/core is 4
// words, so merging and scanning cost O(nodes/64) words instead of O(nodes)
// bytes; that is what lifts the notification network's per-node O(N) blowup
// on large meshes. OR-merging words is exact per-field union because only
// core i ever sets field i.
type Vector struct {
	Words []uint64
	Stop  bool
	// width is the field width in bits (1, 2, 4 or 8); nodes bounds iteration.
	width uint8
	nodes int32
}

// NewVector returns a zero vector for an n-core network with bitsPerCore-bit
// counters.
func NewVector(n, bitsPerCore int) Vector {
	w := fieldWidth(bitsPerCore)
	words := (n*w + 63) / 64
	return Vector{Words: make([]uint64, words), width: uint8(w), nodes: int32(n)}
}

// fieldWidth rounds a counter width up to a power of two so fields never
// straddle word boundaries.
func fieldWidth(bits int) int {
	for _, w := range [...]int{1, 2, 4, 8} {
		if bits <= w {
			return w
		}
	}
	return 8
}

func (v Vector) mask() uint64 { return 1<<v.width - 1 }

// Count returns core i's announced request count.
func (v Vector) Count(i int) int {
	per := 64 / int(v.width)
	return int(v.Words[i/per] >> (uint(i%per) * uint(v.width)) & v.mask())
}

// set stores core i's count; the field must currently be zero.
func (v Vector) set(i, count int) {
	per := 64 / int(v.width)
	v.Words[i/per] |= uint64(count) << (uint(i%per) * uint(v.width))
}

// merge ORs other into v. Because only core i ever sets field i, OR equals
// exact per-field union.
func (v *Vector) merge(other Vector) {
	for i, w := range other.Words {
		v.Words[i] |= w
	}
	v.Stop = v.Stop || other.Stop
}

// Empty reports whether the vector announces no requests and no stop.
func (v Vector) Empty() bool {
	if v.Stop {
		return false
	}
	for _, w := range v.Words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Total returns the number of requests announced across all cores.
func (v Vector) Total() int {
	n := 0
	for i, c := v.NextFrom(0); i >= 0; i, c = v.NextFrom(i + 1) {
		n += c
	}
	return n
}

// NextFrom returns the first core >= i with a nonzero count, and that count;
// core -1 when none remains. Zero words are skipped whole, so scanning a
// sparse vector costs O(words), which is how the NICs expand ESID sequences
// without an O(nodes) walk per window.
func (v Vector) NextFrom(i int) (int, int) {
	if i < 0 {
		i = 0
	}
	n := int(v.nodes)
	per := 64 / int(v.width)
	for i < n {
		word := v.Words[i/per] >> (uint(i%per) * uint(v.width))
		for word != 0 {
			if c := word & v.mask(); c != 0 {
				return i, int(c)
			}
			word >>= uint(v.width)
			i++
		}
		i = (i/per + 1) * per
	}
	return -1, 0
}

// Clone returns an independent copy.
func (v Vector) Clone() Vector {
	return v.CloneUsing(nil)
}

// CloneUsing returns an independent copy backed by buf when buf has the
// capacity (a fresh slice otherwise); callers that recycle word buffers pass
// a spare one to keep steady-state cloning allocation-free.
func (v Vector) CloneUsing(buf []uint64) Vector {
	c := v
	if cap(buf) >= len(v.Words) {
		c.Words = buf[:len(v.Words)]
	} else {
		c.Words = make([]uint64, len(v.Words))
	}
	copy(c.Words, v.Words)
	return c
}

// Source is a node-side provider of notification offers. The network samples
// each node's committed offer at every window start; the node observes the
// same window boundary and debits its pending count by the amount offered.
type Source interface {
	// NotificationOffer returns the request count (≤ MaxPerWindow) the node
	// announces in the window that starts now, and whether the node asserts
	// the stop bit.
	NotificationOffer() (count int, stop bool)
}

// Network is the whole notification mesh, modelled as one kernel component:
// per-node OR-latches, 1-hop-per-cycle propagation, and end-of-window
// delivery.
type Network struct {
	cfg             Config
	sources         []Source
	cur             []Vector
	next            []Vector
	delivered       Vector
	hasDelivery     bool
	pendingDelivery Vector
	pendingHas      bool
	// winLive marks a window whose start seeded any nonzero offer or stop
	// bit; the OR-mesh must then run every cycle until the window delivers.
	// An all-zero window is a provable no-op (zero latches OR to zero), so
	// the network may park through it.
	winLive bool
	// srcActs are the sources' scheduling units, woken for the cycle after a
	// window delivers so parked NICs consume the merged vector exactly when
	// running ones do.
	srcActs []*sim.Activity
	// Stats
	WindowsDelivered uint64
	StoppedWindows   uint64

	// tracer is nil unless lifecycle tracing is enabled; auditor likewise
	// cross-checks announced window totals against NIC commits.
	tracer  *obs.Tracer
	auditor *audit.Auditor
}

// NewNetwork builds a notification network.
func NewNetwork(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, sources: make([]Source, cfg.Nodes())}
	n.cur = make([]Vector, cfg.Nodes())
	n.next = make([]Vector, cfg.Nodes())
	for i := range n.cur {
		n.cur[i] = NewVector(cfg.Nodes(), cfg.BitsPerCore)
		n.next[i] = NewVector(cfg.Nodes(), cfg.BitsPerCore)
	}
	n.pendingDelivery = NewVector(cfg.Nodes(), cfg.BitsPerCore)
	n.delivered = NewVector(cfg.Nodes(), cfg.BitsPerCore)
	return n, nil
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// AttachSource registers the node's NIC as a notification source.
func (n *Network) AttachSource(node int, s Source) { n.sources[node] = s }

// SetSourceActivity wires a source node's scheduling unit for the
// delivery-cycle wake (see srcActs).
func (n *Network) SetSourceActivity(node int, a *sim.Activity) {
	if n.srcActs == nil {
		n.srcActs = make([]*sim.Activity, n.cfg.Nodes())
	}
	n.srcActs[node] = a
}

// SetTracer attaches a lifecycle event tracer (nil disables tracing).
func (n *Network) SetTracer(t *obs.Tracer) { n.tracer = t }

// SetAuditor attaches the online auditor (nil disables auditing).
func (n *Network) SetAuditor(a *audit.Auditor) { n.auditor = a }

// WindowStart reports whether the given cycle begins a time window. Sources
// use it to know when their committed offer is consumed.
func (n *Network) WindowStart(cycle uint64) bool {
	return cycle%uint64(n.cfg.Window()) == 0
}

// Delivered returns the merged vector of the window that ended last cycle.
// ok is true only during the first cycle of the following window.
func (n *Network) Delivered() (Vector, bool) {
	return n.delivered, n.hasDelivery
}

// Evaluate advances the OR-mesh one cycle.
func (n *Network) Evaluate(cycle uint64) {
	w := uint64(n.cfg.Window())
	pos := cycle % w
	if pos == 0 {
		// Window start: seed latches from the sources' committed offers.
		n.winLive = false
		for i := range n.next {
			clearVector(&n.next[i])
			if s := n.sources[i]; s != nil {
				count, stop := s.NotificationOffer()
				if count > n.cfg.MaxPerWindow() {
					panic(fmt.Sprintf("notif: node %d offered %d notifications, max %d", i, count, n.cfg.MaxPerWindow()))
				}
				n.next[i].set(i, count)
				n.next[i].Stop = stop
				if count > 0 || stop {
					n.winLive = true
				}
			}
		}
		return
	}
	// Propagate: each latch ORs its own value with its mesh neighbours'.
	// Copy into the pre-allocated next-latch buffers instead of cloning; the
	// per-node, per-cycle Clone was the largest fixed allocation cost of the
	// whole simulate loop (nodes × cycles vectors).
	for i := range n.next {
		copy(n.next[i].Words, n.cur[i].Words)
		n.next[i].Stop = n.cur[i].Stop
		x, y := i%n.cfg.Width, i/n.cfg.Width
		if x > 0 {
			n.next[i].merge(n.cur[i-1])
		}
		if x < n.cfg.Width-1 {
			n.next[i].merge(n.cur[i+1])
		}
		if y > 0 {
			n.next[i].merge(n.cur[i-n.cfg.Width])
		}
		if y < n.cfg.Height-1 {
			n.next[i].merge(n.cur[i+n.cfg.Width])
		}
	}
	if pos == w-1 {
		// Window end: node 0's latch equals every node's latch by now; it is
		// the merged message handed to all NICs next cycle. Copied into a
		// reusable buffer — NICs that keep the vector past the one delivery
		// cycle clone it themselves.
		copy(n.pendingDelivery.Words, n.next[0].Words)
		n.pendingDelivery.Stop = n.next[0].Stop
		n.pendingHas = !n.pendingDelivery.Empty()
	}
}

// Commit latches the propagation step and publishes end-of-window delivery.
func (n *Network) Commit(cycle uint64) {
	n.cur, n.next = n.next, n.cur
	w := uint64(n.cfg.Window())
	if cycle%w == w-1 {
		// Swap rather than alias: the two vectors stay distinct buffers so the
		// next window's Evaluate never scribbles over the published delivery.
		n.delivered, n.pendingDelivery = n.pendingDelivery, n.delivered
		n.hasDelivery = n.pendingHas
		if n.pendingHas {
			n.WindowsDelivered++
			if n.delivered.Stop {
				n.StoppedWindows++
			}
			if n.tracer != nil {
				stop := int8(0)
				if n.delivered.Stop {
					stop = 1
				}
				n.tracer.Record(obs.Event{
					Cycle: cycle, Type: obs.EvNotifWindow, Node: -1, Src: -1,
					Arg: uint64(n.delivered.Total()), Port: stop, VNet: -1, VC: -1,
				})
			}
			if n.auditor != nil && !n.delivered.Stop {
				// A stop window is voided entirely (NICs re-arm their
				// announcements), so only non-stop windows announce ordered
				// requests the NICs will commit.
				n.auditor.NotifWindow(n.delivered.Total())
			}
			// Every node consumes the merged vector on the next cycle (the
			// following window's first); wake any parked sources for it.
			for _, a := range n.srcActs {
				a.Wake(cycle+1, sim.WakeNotif)
			}
		}
		n.winLive = false
		n.pendingHas = false
	} else {
		n.hasDelivery = false
	}
}

// Idle implements sim.Idler: the OR-mesh may be skipped outside live windows
// — no nonzero window in flight, no delivery awaiting consumption, and no
// source holding a committed nonzero offer for the next window start (NICs
// also wake the network for such starts; the scan makes Idle self-contained
// when a wake was dropped because the network was still active).
func (n *Network) Idle() bool {
	if n.winLive || n.hasDelivery || n.pendingHas {
		return false
	}
	for _, s := range n.sources {
		if s == nil {
			continue
		}
		if count, stop := s.NotificationOffer(); count > 0 || stop {
			return false
		}
	}
	return true
}

// Latch exposes a node's current latch value (for tests).
func (n *Network) Latch(node int) Vector { return n.cur[node].Clone() }

// PhaseCost seeds the parallel kernel's cost-balanced sharder: the OR-mesh
// is one component doing a whole mesh's worth of per-cycle work, so it
// weighs in proportional to the node count until measured phase times take
// over.
func (n *Network) PhaseCost() int { return 1 + n.cfg.Nodes()/4 }

func clearVector(v *Vector) {
	for i := range v.Words {
		v.Words[i] = 0
	}
	v.Stop = false
}
