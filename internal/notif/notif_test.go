package notif

import (
	"testing"

	"scorpio/internal/sim"
)

// fixedSource offers a scripted count per window.
type fixedSource struct {
	offers []int // per window
	stops  []bool
	window int
	net    *Network
}

func (s *fixedSource) NotificationOffer() (int, bool) {
	w := s.window
	s.window++
	count, stop := 0, false
	if w < len(s.offers) {
		count = s.offers[w]
	}
	if w < len(s.stops) {
		stop = s.stops[w]
	}
	return count, stop
}

func runWindows(t *testing.T, cfg Config, sources map[int]*fixedSource, windows int) []Vector {
	t.Helper()
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for node, s := range sources {
		s.net = net
		net.AttachSource(node, s)
	}
	k := sim.NewKernel()
	k.Register(net)
	var delivered []Vector
	for c := 0; c < windows*cfg.Window(); c++ {
		k.Step()
		if v, ok := net.Delivered(); ok {
			delivered = append(delivered, v.Clone())
			// Invariant: every node's latch is identical at window end.
			ref := net.Latch(0)
			for n := 1; n < cfg.Nodes(); n++ {
				l := net.Latch(n)
				for i := range ref.Counts {
					if l.Counts[i] != ref.Counts[i] {
						t.Fatalf("node %d latch differs from node 0 at field %d", n, i)
					}
				}
				if l.Stop != ref.Stop {
					t.Fatalf("node %d stop bit differs", n)
				}
			}
		}
	}
	return delivered
}

func TestSingleNotificationDeliveredToAll(t *testing.T) {
	cfg := Config{Width: 6, Height: 6, BitsPerCore: 1}
	src := map[int]*fixedSource{14: {offers: []int{1}}}
	got := runWindows(t, cfg, src, 2)
	if len(got) != 1 {
		t.Fatalf("delivered %d windows, want 1", len(got))
	}
	for i, c := range got[0].Counts {
		want := uint8(0)
		if i == 14 {
			want = 1
		}
		if c != want {
			t.Fatalf("field %d = %d, want %d", i, c, want)
		}
	}
}

func TestMergeOfConcurrentNotifications(t *testing.T) {
	cfg := Config{Width: 4, Height: 4, BitsPerCore: 2}
	src := map[int]*fixedSource{
		0:  {offers: []int{3}},
		6:  {offers: []int{1}},
		15: {offers: []int{2}},
	}
	got := runWindows(t, cfg, src, 1)
	if len(got) != 1 {
		t.Fatalf("delivered %d windows, want 1", len(got))
	}
	v := got[0]
	if v.Counts[0] != 3 || v.Counts[6] != 1 || v.Counts[15] != 2 {
		t.Fatalf("merged counts wrong: %v", v.Counts)
	}
	if v.Total() != 6 {
		t.Fatalf("Total = %d, want 6", v.Total())
	}
}

func TestStopBitPropagates(t *testing.T) {
	cfg := Config{Width: 6, Height: 6, BitsPerCore: 1}
	src := map[int]*fixedSource{
		35: {offers: []int{0}, stops: []bool{true}},
		0:  {offers: []int{1}},
	}
	got := runWindows(t, cfg, src, 1)
	if len(got) != 1 || !got[0].Stop {
		t.Fatal("stop bit did not reach all nodes")
	}
	// The request count is still visible; consumers discard stopped windows.
	if got[0].Counts[0] != 1 {
		t.Fatal("counts lost when stop asserted")
	}
}

func TestEmptyWindowDeliversNothing(t *testing.T) {
	cfg := Config{Width: 4, Height: 4, BitsPerCore: 1}
	got := runWindows(t, cfg, nil, 3)
	if len(got) != 0 {
		t.Fatalf("empty windows delivered %d vectors", len(got))
	}
}

func TestSuccessiveWindowsIndependent(t *testing.T) {
	cfg := Config{Width: 4, Height: 4, BitsPerCore: 1}
	src := map[int]*fixedSource{
		3: {offers: []int{1, 0, 1}},
		9: {offers: []int{0, 1, 0}},
	}
	got := runWindows(t, cfg, src, 3)
	if len(got) != 3 {
		t.Fatalf("delivered %d windows, want 3", len(got))
	}
	if got[0].Counts[3] != 1 || got[0].Counts[9] != 0 {
		t.Fatalf("window 0 wrong: %v", got[0].Counts)
	}
	if got[1].Counts[3] != 0 || got[1].Counts[9] != 1 {
		t.Fatalf("window 1 wrong: %v", got[1].Counts)
	}
	if got[2].Counts[3] != 1 || got[2].Counts[9] != 0 {
		t.Fatalf("window 2 leaked state: %v", got[2].Counts)
	}
}

func TestRandomOffersPropertyAllNodesAgree(t *testing.T) {
	rng := sim.NewRNG(2024)
	for trial := 0; trial < 20; trial++ {
		w := 2 + rng.Intn(7)
		h := 2 + rng.Intn(7)
		bits := 1 + rng.Intn(3)
		cfg := Config{Width: w, Height: h, BitsPerCore: bits}
		want := make([]int, cfg.Nodes())
		src := map[int]*fixedSource{}
		for n := 0; n < cfg.Nodes(); n++ {
			if rng.Bernoulli(0.4) {
				c := 1 + rng.Intn(cfg.MaxPerWindow())
				want[n] = c
				src[n] = &fixedSource{offers: []int{c}}
			}
		}
		got := runWindows(t, cfg, src, 1)
		any := false
		for _, c := range want {
			if c > 0 {
				any = true
			}
		}
		if !any {
			if len(got) != 0 {
				t.Fatalf("trial %d: delivery without offers", trial)
			}
			continue
		}
		if len(got) != 1 {
			t.Fatalf("trial %d: delivered %d windows, want 1", trial, len(got))
		}
		for n, c := range want {
			if int(got[0].Counts[n]) != c {
				t.Fatalf("trial %d (%dx%d): field %d = %d, want %d", trial, w, h, n, got[0].Counts[n], c)
			}
		}
	}
}

func TestWindowDefaults(t *testing.T) {
	cfg := Config{Width: 6, Height: 6, BitsPerCore: 1}
	if got := cfg.Window(); got != 13 {
		t.Fatalf("6x6 window = %d, want 13 (Table 1)", got)
	}
	cfg = Config{Width: 8, Height: 8, BitsPerCore: 1}
	if got := cfg.Window(); got != 17 {
		t.Fatalf("8x8 window = %d, want 17", got)
	}
	cfg = Config{Width: 10, Height: 10, BitsPerCore: 2}
	if got := cfg.MaxPerWindow(); got != 3 {
		t.Fatalf("2-bit max = %d, want 3", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 6, BitsPerCore: 1},
		{Width: 6, Height: 6, BitsPerCore: 0},
		{Width: 6, Height: 6, BitsPerCore: 9},
		{Width: 6, Height: 6, BitsPerCore: 1, WindowCycles: 5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	good := Config{Width: 6, Height: 6, BitsPerCore: 1, WindowCycles: 13}
	if err := good.Validate(); err != nil {
		t.Fatalf("chip config rejected: %v", err)
	}
}

func TestVectorHelpers(t *testing.T) {
	v := Vector{Counts: make([]uint8, 4)}
	if !v.Empty() {
		t.Fatal("zero vector must be empty")
	}
	v.Stop = true
	if v.Empty() {
		t.Fatal("stop bit makes a vector non-empty")
	}
	v.Stop = false
	v.Counts[2] = 3
	if v.Empty() || v.Total() != 3 {
		t.Fatal("vector with counts must be non-empty")
	}
	c := v.Clone()
	c.Counts[2] = 1
	if v.Counts[2] != 3 {
		t.Fatal("Clone must not alias")
	}
}
