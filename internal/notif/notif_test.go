package notif

import (
	"testing"

	"scorpio/internal/sim"
)

// fixedSource offers a scripted count per window.
type fixedSource struct {
	offers []int // per window
	stops  []bool
	window int
	net    *Network
}

func (s *fixedSource) NotificationOffer() (int, bool) {
	w := s.window
	s.window++
	count, stop := 0, false
	if w < len(s.offers) {
		count = s.offers[w]
	}
	if w < len(s.stops) {
		stop = s.stops[w]
	}
	return count, stop
}

func runWindows(t *testing.T, cfg Config, sources map[int]*fixedSource, windows int) []Vector {
	t.Helper()
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for node, s := range sources {
		s.net = net
		net.AttachSource(node, s)
	}
	k := sim.NewKernel()
	k.Register(net)
	var delivered []Vector
	for c := 0; c < windows*cfg.Window(); c++ {
		k.Step()
		if v, ok := net.Delivered(); ok {
			delivered = append(delivered, v.Clone())
			// Invariant: every node's latch is identical at window end.
			ref := net.Latch(0)
			for n := 1; n < cfg.Nodes(); n++ {
				l := net.Latch(n)
				for i := 0; i < cfg.Nodes(); i++ {
					if l.Count(i) != ref.Count(i) {
						t.Fatalf("node %d latch differs from node 0 at field %d", n, i)
					}
				}
				if l.Stop != ref.Stop {
					t.Fatalf("node %d stop bit differs", n)
				}
			}
		}
	}
	return delivered
}

func TestSingleNotificationDeliveredToAll(t *testing.T) {
	cfg := Config{Width: 6, Height: 6, BitsPerCore: 1}
	src := map[int]*fixedSource{14: {offers: []int{1}}}
	got := runWindows(t, cfg, src, 2)
	if len(got) != 1 {
		t.Fatalf("delivered %d windows, want 1", len(got))
	}
	for i := 0; i < cfg.Nodes(); i++ {
		want := 0
		if i == 14 {
			want = 1
		}
		if c := got[0].Count(i); c != want {
			t.Fatalf("field %d = %d, want %d", i, c, want)
		}
	}
}

func TestMergeOfConcurrentNotifications(t *testing.T) {
	cfg := Config{Width: 4, Height: 4, BitsPerCore: 2}
	src := map[int]*fixedSource{
		0:  {offers: []int{3}},
		6:  {offers: []int{1}},
		15: {offers: []int{2}},
	}
	got := runWindows(t, cfg, src, 1)
	if len(got) != 1 {
		t.Fatalf("delivered %d windows, want 1", len(got))
	}
	v := got[0]
	if v.Count(0) != 3 || v.Count(6) != 1 || v.Count(15) != 2 {
		t.Fatalf("merged counts wrong: %v", v.Words)
	}
	if v.Total() != 6 {
		t.Fatalf("Total = %d, want 6", v.Total())
	}
}

func TestStopBitPropagates(t *testing.T) {
	cfg := Config{Width: 6, Height: 6, BitsPerCore: 1}
	src := map[int]*fixedSource{
		35: {offers: []int{0}, stops: []bool{true}},
		0:  {offers: []int{1}},
	}
	got := runWindows(t, cfg, src, 1)
	if len(got) != 1 || !got[0].Stop {
		t.Fatal("stop bit did not reach all nodes")
	}
	// The request count is still visible; consumers discard stopped windows.
	if got[0].Count(0) != 1 {
		t.Fatal("counts lost when stop asserted")
	}
}

func TestEmptyWindowDeliversNothing(t *testing.T) {
	cfg := Config{Width: 4, Height: 4, BitsPerCore: 1}
	got := runWindows(t, cfg, nil, 3)
	if len(got) != 0 {
		t.Fatalf("empty windows delivered %d vectors", len(got))
	}
}

func TestSuccessiveWindowsIndependent(t *testing.T) {
	cfg := Config{Width: 4, Height: 4, BitsPerCore: 1}
	src := map[int]*fixedSource{
		3: {offers: []int{1, 0, 1}},
		9: {offers: []int{0, 1, 0}},
	}
	got := runWindows(t, cfg, src, 3)
	if len(got) != 3 {
		t.Fatalf("delivered %d windows, want 3", len(got))
	}
	if got[0].Count(3) != 1 || got[0].Count(9) != 0 {
		t.Fatalf("window 0 wrong: %v", got[0].Words)
	}
	if got[1].Count(3) != 0 || got[1].Count(9) != 1 {
		t.Fatalf("window 1 wrong: %v", got[1].Words)
	}
	if got[2].Count(3) != 1 || got[2].Count(9) != 0 {
		t.Fatalf("window 2 leaked state: %v", got[2].Words)
	}
}

func TestRandomOffersPropertyAllNodesAgree(t *testing.T) {
	rng := sim.NewRNG(2024)
	for trial := 0; trial < 20; trial++ {
		w := 2 + rng.Intn(7)
		h := 2 + rng.Intn(7)
		bits := 1 + rng.Intn(3)
		cfg := Config{Width: w, Height: h, BitsPerCore: bits}
		want := make([]int, cfg.Nodes())
		src := map[int]*fixedSource{}
		for n := 0; n < cfg.Nodes(); n++ {
			if rng.Bernoulli(0.4) {
				c := 1 + rng.Intn(cfg.MaxPerWindow())
				want[n] = c
				src[n] = &fixedSource{offers: []int{c}}
			}
		}
		got := runWindows(t, cfg, src, 1)
		any := false
		for _, c := range want {
			if c > 0 {
				any = true
			}
		}
		if !any {
			if len(got) != 0 {
				t.Fatalf("trial %d: delivery without offers", trial)
			}
			continue
		}
		if len(got) != 1 {
			t.Fatalf("trial %d: delivered %d windows, want 1", trial, len(got))
		}
		for n, c := range want {
			if got[0].Count(n) != c {
				t.Fatalf("trial %d (%dx%d): field %d = %d, want %d", trial, w, h, n, got[0].Count(n), c)
			}
		}
	}
}

func TestWindowDefaults(t *testing.T) {
	cfg := Config{Width: 6, Height: 6, BitsPerCore: 1}
	if got := cfg.Window(); got != 13 {
		t.Fatalf("6x6 window = %d, want 13 (Table 1)", got)
	}
	cfg = Config{Width: 8, Height: 8, BitsPerCore: 1}
	if got := cfg.Window(); got != 17 {
		t.Fatalf("8x8 window = %d, want 17", got)
	}
	cfg = Config{Width: 10, Height: 10, BitsPerCore: 2}
	if got := cfg.MaxPerWindow(); got != 3 {
		t.Fatalf("2-bit max = %d, want 3", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 6, BitsPerCore: 1},
		{Width: 6, Height: 6, BitsPerCore: 0},
		{Width: 6, Height: 6, BitsPerCore: 9},
		{Width: 6, Height: 6, BitsPerCore: 1, WindowCycles: 5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	good := Config{Width: 6, Height: 6, BitsPerCore: 1, WindowCycles: 13}
	if err := good.Validate(); err != nil {
		t.Fatalf("chip config rejected: %v", err)
	}
}

func TestVectorHelpers(t *testing.T) {
	v := NewVector(4, 2)
	if !v.Empty() {
		t.Fatal("zero vector must be empty")
	}
	v.Stop = true
	if v.Empty() {
		t.Fatal("stop bit makes a vector non-empty")
	}
	v.Stop = false
	v.set(2, 3)
	if v.Empty() || v.Total() != 3 || v.Count(2) != 3 {
		t.Fatal("vector with counts must be non-empty")
	}
	c := v.Clone()
	c.Words[0] = 0
	if v.Count(2) != 3 {
		t.Fatal("Clone must not alias")
	}
}

// TestVectorPackedScan pins the packed representation across field widths
// and word boundaries: counts land in the right fields, NextFrom walks them
// in ascending order skipping zero words, and odd BitsPerCore values round
// up to the next power-of-two width.
func TestVectorPackedScan(t *testing.T) {
	for _, bits := range []int{1, 2, 3, 4, 8} {
		const nodes = 300 // several words at every width
		v := NewVector(nodes, bits)
		max := 1<<bits - 1
		set := map[int]int{0: 1, 63: 1, 64: max, 97: 1, 255: max, 299: 1}
		for i, c := range set {
			v.set(i, c)
		}
		want := []int{0, 63, 64, 97, 255, 299}
		k, total := 0, 0
		for i, c := v.NextFrom(0); i >= 0; i, c = v.NextFrom(i + 1) {
			if k >= len(want) || i != want[k] {
				t.Fatalf("bits=%d: NextFrom visited %d at step %d, want %v", bits, i, k, want)
			}
			if c != set[i] {
				t.Fatalf("bits=%d: field %d = %d, want %d", bits, i, c, set[i])
			}
			k++
			total += c
		}
		if k != len(want) || v.Total() != total {
			t.Fatalf("bits=%d: visited %d fields (Total=%d, sum=%d)", bits, k, v.Total(), total)
		}
		if i, _ := v.NextFrom(256); i != 299 {
			t.Fatalf("bits=%d: NextFrom(256) = %d, want 299", bits, i)
		}
	}
}
