package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Metrics is a periodic time-series sampler: every Interval cycles the
// simulation calls Add with one float per configured column. What gets
// sampled is the machine's business (the system layer wires a sample
// closure per protocol); this type only stores rows and renders them as
// CSV or JSON. A nil *Metrics is inert.
type Metrics struct {
	Interval uint64
	cols     []string
	rows     []float64 // flattened: len(cols) values per sample
	cycles   []uint64

	heatW, heatH int
	heat         []float64
}

// NewMetrics returns a sampler for the given column names. interval <= 0
// disables sampling (Due never fires).
func NewMetrics(interval uint64, cols []string) *Metrics {
	return &Metrics{Interval: interval, cols: cols}
}

// Due reports whether a sample should be taken at cycle. Safe on nil.
func (m *Metrics) Due(cycle uint64) bool {
	return m != nil && m.Interval > 0 && cycle%m.Interval == 0
}

// Add records one sample row. vals must have one entry per column; extra
// entries are dropped, missing ones read as 0.
func (m *Metrics) Add(cycle uint64, vals []float64) {
	if m == nil {
		return
	}
	m.cycles = append(m.cycles, cycle)
	for i := range m.cols {
		v := 0.0
		if i < len(vals) {
			v = vals[i]
		}
		m.rows = append(m.rows, v)
	}
}

// Samples reports the number of rows recorded.
func (m *Metrics) Samples() int {
	if m == nil {
		return 0
	}
	return len(m.cycles)
}

// Columns returns the column names (without the leading "cycle").
func (m *Metrics) Columns() []string {
	if m == nil {
		return nil
	}
	return m.cols
}

// SetHeatmap attaches an end-of-run per-router utilization grid (row-major,
// w×h, values in [0,1]).
func (m *Metrics) SetHeatmap(w, h int, util []float64) {
	if m == nil {
		return
	}
	m.heatW, m.heatH = w, h
	m.heat = util
}

// WriteCSV renders the time series with a header row, one line per sample.
func (m *Metrics) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "cycle,%s\n", strings.Join(m.cols, ","))
	n := len(m.cols)
	for i, cyc := range m.cycles {
		fmt.Fprintf(bw, "%d", cyc)
		for j := 0; j < n; j++ {
			fmt.Fprintf(bw, ",%g", m.rows[i*n+j])
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteJSON renders {"columns":[...],"samples":[{"cycle":..,...},...],
// "heatmap":{...}} for downstream tooling.
func (m *Metrics) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"columns\":[\"cycle\"")
	for _, c := range m.cols {
		fmt.Fprintf(bw, ",%q", c)
	}
	bw.WriteString("],\"samples\":[")
	n := len(m.cols)
	for i, cyc := range m.cycles {
		if i > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "\n{\"cycle\":%d", cyc)
		for j := 0; j < n; j++ {
			fmt.Fprintf(bw, ",%q:%g", m.cols[j], m.rows[i*n+j])
		}
		bw.WriteByte('}')
	}
	bw.WriteString("\n]")
	if m.heat != nil {
		fmt.Fprintf(bw, ",\"heatmap\":{\"width\":%d,\"height\":%d,\"util\":[", m.heatW, m.heatH)
		for i, v := range m.heat {
			if i > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "%.4f", v)
		}
		bw.WriteString("]}")
	}
	bw.WriteString("}\n")
	return bw.Flush()
}

// heatGlyphs maps utilization deciles to a density ramp for the ASCII
// heatmap.
var heatGlyphs = []byte(" .:-=+*#%@")

// Heatmap renders the per-router utilization grid as ASCII art, one glyph
// per router plus the numeric scale, or "" if no heatmap was attached.
func (m *Metrics) Heatmap() string {
	if m == nil || m.heat == nil || m.heatW == 0 {
		return ""
	}
	var b strings.Builder
	max := 0.0
	for _, v := range m.heat {
		if v > max {
			max = v
		}
	}
	fmt.Fprintf(&b, "router utilization heatmap (flits routed per cycle, max %.3f):\n", max)
	for y := 0; y < m.heatH; y++ {
		b.WriteString("  ")
		for x := 0; x < m.heatW; x++ {
			v := m.heat[y*m.heatW+x]
			g := 0
			if max > 0 {
				g = int(v / max * float64(len(heatGlyphs)-1))
			}
			b.WriteByte(heatGlyphs[g])
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	b.WriteString("  scale: ' '=idle")
	fmt.Fprintf(&b, " '@'=%.3f\n", max)
	return b.String()
}
