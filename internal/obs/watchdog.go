package obs

import "fmt"

// Watchdog is a forward-progress monitor. Each observed cycle it reads the
// machine's cumulative delivery count; if that count stays flat for
// Threshold cycles while packets are still in flight, the run is declared
// stalled and Report captures a full network snapshot for diagnosis —
// turning a silent deadlock (a hung run burning cycles to its limit) into
// an immediate, named-culprit failure.
//
// A nil *Watchdog is inert.
type Watchdog struct {
	Threshold uint64
	// progress reports the machine's cumulative deliveries and whether any
	// packets are currently buffered in the network.
	progress func() (delivered uint64, inflight bool)
	// snapshot renders the full network state (every VC's head flit,
	// credit counts, NIC ordering state) when a stall is detected.
	snapshot func() string

	lastDelivered uint64
	lastChange    uint64
	primed        bool
	stalled       bool
	report        string
	stallCycle    uint64
}

// NewWatchdog builds a monitor that trips after threshold cycles without
// progress. Returns nil (inert) if threshold is 0.
func NewWatchdog(threshold uint64, progress func() (uint64, bool), snapshot func() string) *Watchdog {
	if threshold == 0 {
		return nil
	}
	return &Watchdog{Threshold: threshold, progress: progress, snapshot: snapshot}
}

// Observe checks progress at the given cycle. Safe on nil. Once stalled,
// further observations are no-ops; the snapshot is taken exactly once, at
// detection time.
func (w *Watchdog) Observe(cycle uint64) {
	if w == nil || w.stalled {
		return
	}
	delivered, inflight := w.progress()
	if !w.primed || delivered != w.lastDelivered {
		w.primed = true
		w.lastDelivered = delivered
		w.lastChange = cycle
		return
	}
	if !inflight {
		// Nothing buffered in the network: quiescence, not a stall (the
		// cores may simply be computing between misses).
		w.lastChange = cycle
		return
	}
	if cycle-w.lastChange >= w.Threshold {
		w.stalled = true
		w.stallCycle = cycle
		snap := "(no snapshot available)"
		if w.snapshot != nil {
			snap = w.snapshot()
		}
		w.report = fmt.Sprintf(
			"watchdog: no ejections for %d cycles (cycle %d, %d delivered) with packets in flight\n%s",
			cycle-w.lastChange, cycle, delivered, snap)
	}
}

// Stalled reports whether a stall has been detected. Safe on nil.
func (w *Watchdog) Stalled() bool {
	return w != nil && w.stalled
}

// Report returns the stall diagnosis ("" if no stall). Safe on nil.
func (w *Watchdog) Report() string {
	if w == nil {
		return ""
	}
	return w.report
}

// StallCycle returns the cycle at which the stall was detected.
func (w *Watchdog) StallCycle() uint64 {
	if w == nil {
		return 0
	}
	return w.stallCycle
}
