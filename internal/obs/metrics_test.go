package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// sampledMetrics builds a small three-column series with a heatmap, the
// shared fixture for the round-trip tests.
func sampledMetrics() *Metrics {
	m := NewMetrics(100, []string{"injected", "ejected", "parks"})
	m.Add(100, []float64{1, 2, 3})
	m.Add(200, []float64{4.5, 0, 6})
	m.Add(300, []float64{7, 8, 1e6})
	m.SetHeatmap(2, 1, []float64{0.25, 0.75})
	return m
}

func TestMetricsNilAndDue(t *testing.T) {
	var m *Metrics
	if m.Due(100) || m.Samples() != 0 || m.Columns() != nil {
		t.Fatal("nil metrics must be inert")
	}
	m.Add(1, nil) // must not panic
	s := NewMetrics(100, nil)
	if !s.Due(200) || s.Due(250) || s.Due(0) == false {
		t.Fatal("Due must fire exactly on interval multiples")
	}
}

func TestMetricsCSVRoundTrip(t *testing.T) {
	m := sampledMetrics()
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "cycle,injected,ejected,parks" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != m.Samples()+1 {
		t.Fatalf("%d data rows, want %d", len(lines)-1, m.Samples())
	}
	wantCycles := []uint64{100, 200, 300}
	wantVals := [][]float64{{1, 2, 3}, {4.5, 0, 6}, {7, 8, 1e6}}
	for i, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			t.Fatalf("row %d has %d fields: %q", i, len(fields), line)
		}
		cyc, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil || cyc != wantCycles[i] {
			t.Fatalf("row %d cycle %q, want %d", i, fields[0], wantCycles[i])
		}
		for j, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil || v != wantVals[i][j] {
				t.Fatalf("row %d col %d = %q, want %g", i, j, f, wantVals[i][j])
			}
		}
	}
}

// jsonMetrics mirrors the WriteJSON envelope for the round-trip check.
type jsonMetrics struct {
	Columns []string             `json:"columns"`
	Samples []map[string]float64 `json:"samples"`
	Heatmap *struct {
		Width  int       `json:"width"`
		Height int       `json:"height"`
		Util   []float64 `json:"util"`
	} `json:"heatmap"`
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	m := sampledMetrics()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got jsonMetrics
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("WriteJSON emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if want := []string{"cycle", "injected", "ejected", "parks"}; strings.Join(got.Columns, ",") != strings.Join(want, ",") {
		t.Fatalf("columns %v, want %v", got.Columns, want)
	}
	if len(got.Samples) != m.Samples() {
		t.Fatalf("%d samples, want %d", len(got.Samples), m.Samples())
	}
	if got.Samples[1]["cycle"] != 200 || got.Samples[1]["injected"] != 4.5 || got.Samples[2]["parks"] != 1e6 {
		t.Fatalf("sample values did not round-trip: %v", got.Samples)
	}
	if got.Heatmap == nil || got.Heatmap.Width != 2 || got.Heatmap.Height != 1 {
		t.Fatalf("heatmap envelope did not round-trip: %+v", got.Heatmap)
	}
	if len(got.Heatmap.Util) != 2 || got.Heatmap.Util[1] != 0.75 {
		t.Fatalf("heatmap values did not round-trip: %v", got.Heatmap.Util)
	}
}

func TestMetricsJSONNoHeatmap(t *testing.T) {
	m := NewMetrics(10, []string{"a"})
	m.Add(10, []float64{1})
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got jsonMetrics
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Heatmap != nil {
		t.Fatalf("heatmap key present without SetHeatmap: %s", buf.String())
	}
}
