// Package obs is the simulator's observability layer: a ring-buffered,
// allocation-free lifecycle event tracer, a periodic live-metrics sampler,
// and a forward-progress watchdog that turns silent network hangs into
// diagnosable failures.
//
// The package is a leaf: it depends only on the standard library and
// internal/stats, so every simulation layer (noc, nic, notif, coherence,
// baseline) can hold an optional *Tracer without import cycles. The
// discipline throughout is zero-cost-when-off: components keep a nil tracer
// pointer by default and guard every hook with a nil check, so a disabled
// build path costs one predictable branch and allocates nothing — the
// steady-state allocation tests (TestMeshSteadyStateAllocs and the
// system-level bounds) hold with the hooks compiled in. When tracing is on,
// events are fixed-size structs written into a preallocated ring under a
// mutex (the parallel kernel's workers may record concurrently), so the
// enabled path does not allocate either; a full ring overwrites the oldest
// events and counts the loss instead of growing.
package obs

// Options selects which observability features a run enables. The zero
// value disables everything.
type Options struct {
	// Trace enables lifecycle event tracing into a ring of TraceCapacity
	// events (DefaultTraceCapacity when zero).
	Trace bool
	// TraceCapacity overrides the event ring size.
	TraceCapacity int
	// MetricsInterval samples live metrics every N cycles; 0 disables the
	// sampler.
	MetricsInterval uint64
	// Watchdog fails the run after N cycles without forward progress while
	// packets are in flight; 0 disables the monitor.
	Watchdog uint64
	// Audit enables the online ordering/coherence auditor and the
	// per-transaction latency attributor.
	Audit bool
	// AuditEvery overrides the auditor's shadow-sweep interval in cycles
	// (the auditor's default when zero).
	AuditEvery int
	// Perf attaches the engine self-observability monitor (internal/obs/
	// perfmon): sampled per-worker phase timing plus the activity-engine
	// event census, drained into a RunReport at the end of the run.
	Perf bool
	// ConfigDigest fingerprints the simulation-relevant configuration; it is
	// stamped into the RunReport so benchdiff never silently compares
	// different workloads.
	ConfigDigest string
	// TelemetryAddr, when non-empty, starts the embeddable live HTTP exporter
	// (internal/obs/telemetry) on this listen address (":0" picks an
	// ephemeral port, printed to stderr): /metrics OpenMetrics exposition,
	// /stream SSE ticks, /snapshot deep state, /healthz, and the pprof mux.
	TelemetryAddr string
	// TelemetryInterval is the exporter's sample period in cycles
	// (telemetry.DefaultInterval when zero).
	TelemetryInterval uint64
	// TelemetrySSEQueue bounds each /stream client's event queue
	// (telemetry.DefaultQueue when zero); slow clients drop ticks and are
	// eventually disconnected rather than ever stalling the kernel.
	TelemetrySSEQueue int
}

// Enabled reports whether any feature is on.
func (o Options) Enabled() bool {
	return o.Trace || o.MetricsInterval > 0 || o.Watchdog > 0 || o.Audit || o.Perf ||
		o.TelemetryAddr != ""
}

// DefaultTraceCapacity is the event ring size when Options.TraceCapacity is
// zero: large enough to hold the full lifecycle of tens of thousands of
// flit-hops (a few hundred simulated microseconds on a 36-core mesh) at
// ~64 bytes per event.
const DefaultTraceCapacity = 1 << 20
