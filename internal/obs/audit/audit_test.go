package audit

import (
	"strings"
	"testing"
)

// commitAll commits pkt at every node in order, feeding arrivals first the
// way the NIC hooks do (the source node self-loops without a network
// arrival).
func commitAll(a *Auditor, nodes int, pkt uint64, src int, cycle uint64) {
	for n := 0; n < nodes; n++ {
		if n != src {
			a.Arrive(n, pkt, src)
		}
	}
	for n := 0; n < nodes; n++ {
		a.OrderCommit(n, pkt, src, cycle)
		a.Sink(n, pkt, true)
	}
}

func TestHealthySequenceStaysSilent(t *testing.T) {
	a := New(4, Options{}, nil)
	for i := uint64(1); i <= 100; i++ {
		commitAll(a, 4, 0x1000+i, int(i%4), i)
	}
	// A well-behaved MOSI episode: read-share, then upgrade with the sharers
	// dropping their copies before anyone commits past the grant.
	a.LineState(1, 0xabc, LineShared, 10)
	a.LineState(2, 0xabc, LineShared, 11)
	a.LineState(1, 0xabc, LineInvalid, 20)
	a.LineState(2, 0xabc, LineInvalid, 20)
	a.LineState(0, 0xabc, LineModified, 21)
	a.LineState(0, 0xabc, LineOwned, 30) // M -> O on a remote GetS
	a.LineState(3, 0xabc, LineShared, 31)
	// Flits assemble exactly once per node.
	for n := 0; n < 4; n++ {
		a.FlitDelivered(n, 0x99, 0, 2)
		a.FlitDelivered(n, 0x99, 1, 2)
	}
	a.Observe(DefaultSweepEvery)
	a.Finish(200)
	if a.Violated() {
		t.Fatalf("healthy sequence flagged: %s", a.Report())
	}
	if got := a.Commits(); got != 400 {
		t.Fatalf("Commits() = %d, want 400", got)
	}
	if !strings.HasPrefix(a.Summary(), "audit: ok") {
		t.Fatalf("Summary() = %q", a.Summary())
	}
}

func TestDivergentCommitNamesBothNICs(t *testing.T) {
	a := New(2, Options{}, func() string { return "SNAPSHOT" })
	a.OrderCommit(0, 0xaaa, 0, 5)
	a.Arrive(1, 0xbbb, 0)
	a.OrderCommit(1, 0xbbb, 0, 6)
	if !a.Violated() {
		t.Fatal("divergent commit not flagged")
	}
	r := a.Report()
	for _, want := range []string{"position 0", "NIC 1", "NIC 0", "0xbbb", "0xaaa", "SNAPSHOT"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

func TestCommitWithoutArrival(t *testing.T) {
	a := New(2, Options{}, nil)
	a.OrderCommit(1, 0xccc, 0, 5) // src 0, never arrived at node 1
	if !a.Violated() || !strings.Contains(a.Report(), "no prior network arrival") {
		t.Fatalf("missing-arrival commit not flagged: %s", a.Report())
	}
}

func TestTwoOwnersNamesLineAndNICs(t *testing.T) {
	a := New(4, Options{}, nil)
	a.LineState(0, 0xdead, LineModified, 10)
	a.LineState(2, 0xdead, LineModified, 11)
	if !a.Violated() {
		t.Fatal("two-owner line not flagged")
	}
	r := a.Report()
	for _, want := range []string{"0xdead", "two owners", "NIC 2", "NIC 0"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

func TestSharedInstallWhileModified(t *testing.T) {
	a := New(2, Options{}, nil)
	a.LineState(0, 0xf00, LineModified, 5) // grantPos = pos[0] = 0
	a.OrderCommit(1, 0x1, 1, 6)            // pos[1] = 1 > grantPos
	a.LineState(1, 0xf00, LineShared, 7)
	if !a.Violated() || !strings.Contains(a.Report(), "holds Modified") {
		t.Fatalf("Shared-while-Modified not flagged: %s", a.Report())
	}
}

func TestLaggingSharedInstallIsNotAViolation(t *testing.T) {
	a := New(2, Options{}, nil)
	a.LineState(0, 0xf00, LineModified, 5)
	// Node 1 has not committed past the grant — it legitimately has not
	// processed the invalidation yet.
	a.LineState(1, 0xf00, LineShared, 6)
	if a.Violated() {
		t.Fatalf("lagging sharer wrongly flagged: %s", a.Report())
	}
}

func TestSweepCatchesStaleSharer(t *testing.T) {
	a := New(2, Options{SweepEvery: 8}, nil)
	a.LineState(1, 0xbeef, LineShared, 1)
	a.LineState(0, 0xbeef, LineModified, 2) // install while sharer lags: fine
	if a.Violated() {
		t.Fatalf("install wrongly flagged: %s", a.Report())
	}
	a.OrderCommit(1, 0x1, 1, 3) // sharer commits past the grant, bit uncleared
	a.Observe(16)
	if !a.Violated() {
		t.Fatal("stale sharer not flagged by sweep")
	}
	r := a.Report()
	for _, want := range []string{"0xbeef", "NIC 0", "NIC 1", "sharer copy"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

func TestDuplicateFlit(t *testing.T) {
	a := New(4, Options{}, nil)
	a.FlitDelivered(2, 0x77, 0, 3)
	a.FlitDelivered(2, 0x77, 1, 3)
	a.FlitDelivered(2, 0x77, 1, 3)
	if !a.Violated() || !strings.Contains(a.Report(), "duplicate flit") {
		t.Fatalf("duplicate flit not flagged: %s", a.Report())
	}
	if !strings.Contains(a.Report(), "node 2") {
		t.Errorf("report does not name the node:\n%s", a.Report())
	}
}

func TestDuplicateArrival(t *testing.T) {
	a := New(4, Options{}, nil)
	a.Arrive(3, 0x55, 1)
	a.Arrive(3, 0x55, 1)
	if !a.Violated() || !strings.Contains(a.Report(), "duplicate network arrival") {
		t.Fatalf("duplicate arrival not flagged: %s", a.Report())
	}
}

func TestOrderedSinkBeforeCommit(t *testing.T) {
	a := New(2, Options{}, nil)
	a.Sink(0, 0x42, true)
	if !a.Violated() || !strings.Contains(a.Report(), "before its order-commit") {
		t.Fatalf("premature ordered sink not flagged: %s", a.Report())
	}
}

func TestWindowExceededNamesLaggard(t *testing.T) {
	a := New(2, Options{Window: 8}, nil)
	for i := uint64(0); i < 9; i++ {
		a.OrderCommit(0, 0x100+i, 0, i)
	}
	if !a.Violated() || !strings.Contains(a.Report(), "window exceeded") {
		t.Fatalf("window overflow not flagged: %s", a.Report())
	}
	if !strings.Contains(a.Report(), "NIC 1") {
		t.Errorf("report does not name the laggard:\n%s", a.Report())
	}
}

func TestNotificationUndercount(t *testing.T) {
	a := New(1, Options{}, nil)
	a.NotifWindow(1)
	a.OrderCommit(0, 0x1, 0, 10)
	a.OrderCommit(0, 0x2, 0, 11)
	if !a.Violated() || !strings.Contains(a.Report(), "notification network announced only 1") {
		t.Fatalf("notification undercount not flagged: %s", a.Report())
	}
}

func TestNilAuditorIsInert(t *testing.T) {
	var a *Auditor
	a.OrderCommit(0, 1, 0, 0)
	a.Arrive(0, 1, 0)
	a.Sink(0, 1, true)
	a.FlitDelivered(0, 1, 0, 1)
	a.LineState(0, 1, LineModified, 0)
	a.NotifWindow(1)
	a.Observe(0)
	a.Finish(0)
	if a.Violated() || a.Report() != "" || a.Summary() != "" || a.Commits() != 0 {
		t.Fatal("nil auditor not inert")
	}
}

func TestFirstViolationLatches(t *testing.T) {
	a := New(2, Options{}, nil)
	a.Sink(0, 0x1, true)
	first := a.Report()
	a.LineState(0, 0x2, LineModified, 1)
	a.LineState(1, 0x2, LineModified, 2) // would be a second violation
	if a.Report() != first {
		t.Fatal("later violation overwrote the first report")
	}
}
