// Package audit implements an allocation-conscious online correctness
// monitor for the simulated machines. It subscribes to the same
// nil-when-off hook points as the lifecycle tracer and enforces, while the
// run is still going, the three properties SCORPIO's litmus suite can only
// spot-check after the fact:
//
//	(a) global-order consistency — every NIC commits the ordered request
//	    stream in an identical total order, checked incrementally against a
//	    bounded canonical ring plus per-NIC watermarks (never full history);
//	(b) MOSI invariants — at most one owner per line, no Modified copy
//	    coexisting with up-to-date sharers, every ordered invalidation
//	    eventually clears its sharer bit, tracked in a compact per-line
//	    bitmask shadow;
//	(c) delivery sanity — no packet sinks at a NIC before its order-commit,
//	    no ordered commit without a prior network arrival, and no duplicate
//	    flits across the mesh's multicast forks.
//
// On the first violation the auditor latches a watchdog-style report naming
// the line, the NICs involved and the divergent orders (plus the full
// network snapshot), and the machine's run loop aborts.
//
// Because NICs commit the same global sequence at different physical
// cycles, cross-node shadow checks are position-qualified: a sharer s is
// only considered stale with respect to a Modified owner once pos[s] has
// advanced past the owner's commit watermark at install time (grantPos). A
// lagging node that simply has not processed the invalidation yet is never
// a violation.
package audit

import (
	"fmt"
	"strings"
	"sync"

	"scorpio/internal/bitset"
)

// LineState is the auditor's protocol-agnostic view of a cache line state.
// Coherence controllers map their own state enums onto it at every array
// mutation.
type LineState uint8

const (
	LineInvalid LineState = iota
	LineShared
	LineOwned
	LineModified
)

// String names the state for violation reports.
func (s LineState) String() string {
	switch s {
	case LineInvalid:
		return "Invalid"
	case LineShared:
		return "Shared"
	case LineOwned:
		return "Owned"
	case LineModified:
		return "Modified"
	}
	return "?"
}

// Options tunes the auditor's bounded-memory structures.
type Options struct {
	// Window is how many canonical commit positions stay comparable. A NIC
	// lagging the front-runner by more than Window commits is itself a
	// violation (the machine's skew is bounded far below this in practice).
	Window int
	// SweepEvery is the cycle interval between full shadow sweeps (the
	// eventually-clears-its-sharer-bit check). 0 keeps the default.
	SweepEvery int
}

// Defaults for Options fields left zero.
const (
	DefaultWindow     = 1 << 14
	DefaultSweepEvery = 1 << 10

	// recentDepth is the per-NIC ring of recent commits kept solely for
	// divergence reports.
	recentDepth = 16

	// maxFlitSeq bounds the per-packet flit bitmask; packets are a handful
	// of flits, so 64 is generous.
	maxFlitSeq = 64
)

// commitRec is one remembered commit for the per-NIC report ring.
type commitRec struct {
	pos, pkt, cycle uint64
}

// lineShadow is the compact per-line MOSI shadow. own is owner+1 (0 = no
// owner) so the map's zero value means "no information". grantPos is the
// owner's commit watermark when it installed Modified. The sharer set is a
// multi-word bitset sized to the machine, so the shadow works at any node
// count.
type lineShadow struct {
	sharers  bitset.Set
	grantPos uint64
	own      int16
	ownerM   bool
}

// pktNode keys per-(packet, node) tracking maps.
type pktNode struct {
	pkt  uint64
	node int32
}

// Auditor is the online monitor. All hook methods are safe on a nil
// receiver (the everything-off configuration) and safe to call from
// parallel kernel workers.
type Auditor struct {
	mu       sync.Mutex
	nodes    int
	window   uint64
	sweep    uint64
	snapshot func() string

	violated bool
	report   string

	// (a) global order: ring[p%window] holds the canonical packet ID at
	// position p, established by whichever NIC reached p first.
	ring     []uint64
	ringNode []int32
	pos      []uint64 // per-NIC commits so far (= next expected position)
	maxPos   uint64   // front-runner watermark
	minCache uint64   // stale lower bound on min(pos), monotone
	recent   []commitRec
	recentN  []uint32

	// (b) MOSI shadow.
	lines map[uint64]lineShadow

	// (c) delivery sanity.
	lastCommit   []uint64
	lastCommitOK []bool
	arrivals     map[pktNode]struct{}
	flits        map[pktNode]uint64

	// Notification cross-check: no NIC may commit more ordered requests
	// than the notification windows have announced.
	announced uint64
	notifSeen bool

	// Diagnostics (exposed, never violations).
	ncommits     uint64
	nflits       uint64
	nsweeps      uint64
	partialAtEnd int
	arriveAtEnd  int
}

// New builds an auditor for an n-node machine. snapshot (may be nil)
// renders the network state for violation reports, exactly like the
// watchdog's closure.
func New(n int, opt Options, snapshot func() string) *Auditor {
	if opt.Window <= 0 {
		opt.Window = DefaultWindow
	}
	if opt.SweepEvery <= 0 {
		opt.SweepEvery = DefaultSweepEvery
	}
	return &Auditor{
		nodes:        n,
		window:       uint64(opt.Window),
		sweep:        uint64(opt.SweepEvery),
		snapshot:     snapshot,
		ring:         make([]uint64, opt.Window),
		ringNode:     make([]int32, opt.Window),
		pos:          make([]uint64, n),
		recent:       make([]commitRec, n*recentDepth),
		recentN:      make([]uint32, n),
		lines:        make(map[uint64]lineShadow, 1<<15),
		lastCommit:   make([]uint64, n),
		lastCommitOK: make([]bool, n),
		arrivals:     make(map[pktNode]struct{}, 1<<13),
		flits:        make(map[pktNode]uint64, 1<<12),
	}
}

// failf latches the first violation. The report mirrors the watchdog's
// shape: a one-line diagnosis, optional detail, then the network snapshot.
func (a *Auditor) failf(format string, args ...any) {
	if a.violated {
		return
	}
	a.violated = true
	var b strings.Builder
	fmt.Fprintf(&b, "audit: "+format+"\n", args...)
	if a.snapshot != nil {
		b.WriteString(a.snapshot())
	}
	a.report = b.String()
}

// historyLocked renders one NIC's recent-commit ring for divergence reports.
func (a *Auditor) historyLocked(node int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  NIC %d recent commits (pos:pkt@cycle):", node)
	n := a.recentN[node]
	depth := uint32(recentDepth)
	if n < depth {
		depth = n
	}
	for i := uint32(0); i < depth; i++ {
		r := a.recent[node*recentDepth+int((n-depth+i)%recentDepth)]
		fmt.Fprintf(&b, " %d:%#x@%d", r.pos, r.pkt, r.cycle)
	}
	b.WriteString("\n")
	return b.String()
}

// OrderCommit records that a NIC committed pkt as its next global-order
// slot. The first NIC to reach a position establishes the canonical packet
// for it; every other NIC must match.
func (a *Auditor) OrderCommit(node int, pkt uint64, src int, cycle uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.violated || node < 0 || node >= a.nodes {
		return
	}
	p := a.pos[node]
	slot := p % a.window
	if p == a.maxPos {
		// Front-runner: before overwriting the slot, make sure no laggard
		// still needs the position it held.
		if a.maxPos-a.minCache >= a.window {
			min := a.pos[0]
			lag := 0
			for i, v := range a.pos {
				if v < min {
					min, lag = v, i
				}
			}
			a.minCache = min
			if a.maxPos-min >= a.window {
				a.failf("global-order audit window exceeded: NIC %d is %d commits behind the front (window %d)",
					lag, a.maxPos-min, a.window)
				return
			}
		}
		a.ring[slot] = pkt
		a.ringNode[slot] = int32(node)
		a.maxPos++
	} else if a.ring[slot] != pkt {
		want, wantNode := a.ring[slot], int(a.ringNode[slot])
		detail := a.historyLocked(node)
		if wantNode != node {
			detail += a.historyLocked(wantNode)
		}
		a.failf("global order diverged at position %d: NIC %d committed packet %#x but NIC %d established packet %#x (cycle %d)\n%s",
			p, node, pkt, wantNode, want, cycle, detail)
		return
	}
	if src != node {
		if _, ok := a.arrivals[pktNode{pkt, int32(node)}]; !ok {
			a.failf("NIC %d order-committed packet %#x (src %d, position %d, cycle %d) with no prior network arrival",
				node, pkt, src, p, cycle)
			return
		}
	}
	a.recent[node*recentDepth+int(a.recentN[node]%recentDepth)] = commitRec{pos: p, pkt: pkt, cycle: cycle}
	a.recentN[node]++
	a.pos[node] = p + 1
	a.lastCommit[node] = pkt
	a.lastCommitOK[node] = true
	a.ncommits++
	if a.notifSeen && a.pos[node] > a.announced {
		a.failf("NIC %d committed %d ordered requests but the notification network announced only %d",
			node, a.pos[node], a.announced)
	}
}

// Arrive records a broadcast request's network arrival at a NIC. The mesh
// delivers each packet to each node at most once; a repeat is a multicast
// forking bug.
func (a *Auditor) Arrive(node int, pkt uint64, src int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.violated {
		return
	}
	k := pktNode{pkt, int32(node)}
	if _, ok := a.arrivals[k]; ok {
		a.failf("duplicate network arrival: packet %#x (src %d) reached NIC %d twice", pkt, src, node)
		return
	}
	a.arrivals[k] = struct{}{}
}

// Sink records a packet leaving the network at a NIC. An ordered sink must
// immediately follow that NIC's order-commit of the same packet.
func (a *Auditor) Sink(node int, pkt uint64, ordered bool) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.violated || node < 0 || node >= a.nodes {
		return
	}
	if ordered && (!a.lastCommitOK[node] || a.lastCommit[node] != pkt) {
		a.failf("packet %#x sank at NIC %d before its order-commit", pkt, node)
		return
	}
	delete(a.arrivals, pktNode{pkt, int32(node)})
}

// FlitDelivered records one flit ejected at a router's local port. Each
// (packet, node) assembly must see every sequence number exactly once; a
// repeat means a multicast fork duplicated a flit. Complete assemblies
// retire immediately, keeping the map bounded by in-flight packets.
func (a *Auditor) FlitDelivered(node int, pkt uint64, seq, flits int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.violated {
		return
	}
	a.nflits++
	if flits <= 0 || flits > maxFlitSeq {
		return // oversized packets fall back to untracked
	}
	if seq < 0 || seq >= flits {
		a.failf("flit seq %d out of range for %d-flit packet %#x at node %d", seq, flits, pkt, node)
		return
	}
	k := pktNode{pkt, int32(node)}
	mask := a.flits[k]
	bit := uint64(1) << uint(seq)
	if mask&bit != 0 {
		a.failf("duplicate flit: seq %d of packet %#x delivered twice at node %d (multicast fork)", seq, pkt, node)
		return
	}
	mask |= bit
	if mask == uint64(1)<<uint(flits)-1 {
		delete(a.flits, k)
		return
	}
	a.flits[k] = mask
}

// LineState records a coherence controller's cache-array mutation and
// checks the MOSI invariants against the shadow.
func (a *Auditor) LineState(node int, addr uint64, st LineState, cycle uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.violated || node < 0 || node >= a.nodes {
		return
	}
	sh := a.lines[addr]
	if sh.sharers == nil {
		sh.sharers = bitset.New(a.nodes)
	}
	switch st {
	case LineInvalid:
		sh.sharers.Remove(node)
		if sh.own == int16(node)+1 {
			sh.own, sh.ownerM = 0, false
		}
		if !sh.sharers.Any() && sh.own == 0 {
			delete(a.lines, addr)
			return
		}
	case LineShared:
		if sh.ownerM && sh.own != int16(node)+1 && a.pos[node] > sh.grantPos {
			a.failf("line %#x: NIC %d installed a Shared copy at cycle %d while NIC %d holds Modified (granted at order position %d)",
				addr, node, cycle, sh.own-1, sh.grantPos)
			return
		}
		sh.sharers.Add(node)
		if sh.own == int16(node)+1 {
			sh.own, sh.ownerM = 0, false
		}
	case LineOwned, LineModified:
		if sh.own != 0 && sh.own != int16(node)+1 {
			a.failf("line %#x: two owners — NIC %d installed %v at cycle %d while NIC %d already owns the line",
				addr, node, st, cycle, sh.own-1)
			return
		}
		sh.own = int16(node) + 1
		sh.sharers.Remove(node)
		if st == LineModified {
			sh.ownerM = true
			sh.grantPos = a.pos[node]
			if sh.sharers.Any() && a.staleSharerLocked(addr, &sh, cycle) {
				return
			}
		} else {
			sh.ownerM = false
		}
	}
	a.lines[addr] = sh
}

// staleSharerLocked flags any sharer that has committed past the Modified
// grant yet still holds a copy (its ordered invalidation never cleared the
// bit). Returns true when it latched a violation.
func (a *Auditor) staleSharerLocked(addr uint64, sh *lineShadow, cycle uint64) bool {
	for s := sh.sharers.Next(0); s >= 0; s = sh.sharers.Next(s + 1) {
		if sh.own == int16(s)+1 {
			continue
		}
		if a.pos[s] > sh.grantPos {
			a.failf("line %#x: NIC %d holds Modified (granted at order position %d) but NIC %d still holds a sharer copy after committing position %d (cycle %d)",
				addr, sh.own-1, sh.grantPos, s, a.pos[s]-1, cycle)
			return true
		}
	}
	return false
}

// NotifWindow records one delivered notification window's announced request
// count (SCORPIO only; baselines never call it).
func (a *Auditor) NotifWindow(total int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.notifSeen = true
	a.announced += uint64(total)
	a.mu.Unlock()
}

// Observe is the kernel's post-commit hook: every SweepEvery cycles it
// re-runs the position-qualified stale-sharer scan so invalidations that
// never land are caught even without further installs on the line.
func (a *Auditor) Observe(cycle uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.violated || cycle%a.sweep != 0 {
		return
	}
	a.nsweeps++
	a.sweepLocked(cycle)
}

func (a *Auditor) sweepLocked(cycle uint64) {
	for addr, sh := range a.lines {
		if !sh.ownerM || !sh.sharers.Any() {
			continue
		}
		if a.staleSharerLocked(addr, &sh, cycle) {
			return
		}
	}
}

// Finish runs the end-of-run sweep and snapshots the lenient diagnostics.
// Partial flit assemblies and unsunk arrivals at run end are legitimate
// (final-request broadcasts and INSO expiry packets may still be in
// flight), so they are counted, not flagged.
func (a *Auditor) Finish(cycle uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.violated {
		a.sweepLocked(cycle)
	}
	a.partialAtEnd = len(a.flits)
	a.arriveAtEnd = len(a.arrivals)
}

// Violated reports whether a violation latched. Safe on nil.
func (a *Auditor) Violated() bool {
	if a == nil {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.violated
}

// Report returns the latched violation report ("" when healthy). Safe on nil.
func (a *Auditor) Report() string {
	if a == nil {
		return ""
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.report
}

// Commits returns the total order-commits cross-checked so far.
func (a *Auditor) Commits() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ncommits
}

// FrontPos returns the canonical order watermark (positions established).
func (a *Auditor) FrontPos() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maxPos
}

// ShadowLines returns the live MOSI shadow population.
func (a *Auditor) ShadowLines() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.lines)
}

// FlitsChecked returns how many locally-delivered flits were verified.
func (a *Auditor) FlitsChecked() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nflits
}

// Summary renders the one-line health digest printed after audited runs.
func (a *Auditor) Summary() string {
	if a == nil {
		return ""
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.violated {
		return "audit: VIOLATED"
	}
	return fmt.Sprintf("audit: ok — %d order commits cross-checked over %d positions, %d flits verified, %d shadow lines live, %d sweeps",
		a.ncommits, a.maxPos, a.nflits, len(a.lines), a.nsweeps)
}
