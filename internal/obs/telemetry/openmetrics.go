package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"scorpio/internal/obs/perfmon"
)

// ContentType is the /metrics response content type.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// expo is a minimal OpenMetrics text-exposition writer. All rendering happens
// on the HTTP goroutine, so allocation here is free.
type expo struct {
	w   io.Writer
	err error
}

func (e *expo) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// family emits the HELP and TYPE lines for one metric family. For counters
// the family name excludes the _total suffix (the samples add it), per the
// OpenMetrics spec.
func (e *expo) family(name string, kind Kind, help string) {
	e.printf("# HELP %s %s\n", name, escapeHelp(help))
	e.printf("# TYPE %s %s\n", name, kind)
}

// sample emits one sample line. labels is either empty or a pre-rendered
// `key="value",...` list (values already escaped).
func (e *expo) sample(name, labels string, v float64) {
	if labels != "" {
		e.printf("%s{%s} %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
		return
	}
	e.printf("%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
}

// writeMetrics renders the full exposition: the published page series, the
// perfmon worker counters and wake-edge census, shard-balance stats, the
// router-utilization grid, and the exporter's own SSE hub stats, terminated
// by the mandatory # EOF line.
func writeMetrics(w io.Writer, pub *Publisher, opt Options, snap *Snapshot) error {
	e := &expo{w: w}

	e.family("scorpio_run", Gauge, "Run identity; the label carries the machine/profile name.")
	e.sample("scorpio_run", `label="`+escapeLabel(opt.Label)+`"`, 1)

	e.family("scorpio_cycle", Gauge, "Current simulated cycle at the last sample tick.")
	e.sample("scorpio_cycle", "", float64(snap.Cycle))
	e.family("scorpio_sample_ticks", Counter, "Sampler ticks published to the telemetry page.")
	e.sample("scorpio_sample_ticks_total", "", float64(snap.Tick))

	for i, s := range pub.Series() {
		name := "scorpio_" + s.Name
		e.family(name, s.Kind, s.Help)
		if s.Kind == Counter {
			name += "_total"
		}
		e.sample(name, "", snap.Vals[i])
	}

	if opt.Workers != nil {
		e.family("scorpio_workers", Gauge, "Kernel worker count (1 = serial).")
		e.sample("scorpio_workers", "", float64(opt.Workers()))
	}

	if m := opt.Mon; m != nil {
		type wfam struct {
			name string
			help string
			get  func(*perfmon.Worker) float64
		}
		fams := []wfam{
			{"scorpio_worker_eval_ns", "Sampled evaluate-phase nanoseconds per worker.",
				func(w *perfmon.Worker) float64 { return float64(w.EvalNs.Load()) }},
			{"scorpio_worker_commit_ns", "Sampled commit-phase nanoseconds per worker.",
				func(w *perfmon.Worker) float64 { return float64(w.CommitNs.Load()) }},
			{"scorpio_worker_spin_ns", "Sampled barrier busy-spin nanoseconds per worker.",
				func(w *perfmon.Worker) float64 { return float64(w.SpinNs.Load()) }},
			{"scorpio_worker_park_ns", "Sampled barrier futex-park nanoseconds per worker.",
				func(w *perfmon.Worker) float64 { return float64(w.ParkNs.Load()) }},
			{"scorpio_worker_sampled_cycles", "Cycles with nanotime sampling per worker.",
				func(w *perfmon.Worker) float64 { return float64(w.Sampled.Load()) }},
			{"scorpio_worker_epochs_led", "Sampled epochs this worker arrived last and led the barrier.",
				func(w *perfmon.Worker) float64 { return float64(w.Led.Load()) }},
			{"scorpio_worker_epochs_followed", "Sampled epochs this worker waited at the barrier.",
				func(w *perfmon.Worker) float64 { return float64(w.Followed.Load()) }},
		}
		for _, f := range fams {
			e.family(f.name, Counter, f.help)
			for i := 0; i < m.Workers(); i++ {
				e.sample(f.name+"_total", `worker="`+strconv.Itoa(i)+`"`, f.get(m.Worker(i)))
			}
		}
	}

	if opt.WakeEdges != nil {
		edges := opt.WakeEdges()
		e.family("scorpio_wakes", Counter, "Successful parked-unit wake requests by producer edge.")
		for i, n := range edges {
			e.sample("scorpio_wakes_total", `edge="`+perfmon.WakeEdge(i).String()+`"`, float64(n))
		}
	}

	if opt.Balance != nil {
		reb, mig := opt.Balance()
		e.family("scorpio_shard_rebalances", Counter, "Cost-balancing shard repacks.")
		e.sample("scorpio_shard_rebalances_total", "", float64(reb))
		e.family("scorpio_shard_migrations", Counter, "Scheduling units moved between shards by repacks.")
		e.sample("scorpio_shard_migrations_total", "", float64(mig))
	}

	if hw, hh := pub.HeatDims(); hw > 0 && hh > 0 && len(snap.Heat) == hw*hh {
		e.family("scorpio_router_utilization", Gauge,
			"Per-router flits routed per cycle over the last sample window.")
		for y := 0; y < hh; y++ {
			for x := 0; x < hw; x++ {
				e.sample("scorpio_router_utilization",
					`x="`+strconv.Itoa(x)+`",y="`+strconv.Itoa(y)+`"`,
					snap.Heat[y*hw+x])
			}
		}
	}

	hub := pub.Hub()
	e.family("scorpio_sse_clients", Gauge, "Connected /stream clients.")
	e.sample("scorpio_sse_clients", "", float64(hub.Clients()))
	e.family("scorpio_sse_dropped_events", Counter, "Sample events dropped on full client queues.")
	e.sample("scorpio_sse_dropped_events_total", "", float64(hub.TotalDropped()))
	e.family("scorpio_sse_kicked_clients", Counter, "Clients disconnected for falling behind.")
	e.sample("scorpio_sse_kicked_clients_total", "", float64(hub.Kicks()))

	e.printf("# EOF\n")
	return e.err
}
