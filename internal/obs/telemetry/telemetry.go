// Package telemetry is the simulator's live-export layer: an embeddable
// HTTP exporter any run can attach with one flag, serving the observability
// layer's sampled metrics while the simulation is still in flight —
// OpenMetrics text for scrapers, server-sent events for live dashboards
// (cmd/scorpiotop), an on-demand deep snapshot, and the stdlib pprof mux.
//
// The design constraint is the same zero-cost discipline as the rest of
// internal/obs, but for a *concurrent* reader: HTTP handlers run on their own
// goroutines while the kernel steps, so the hot path may not take locks and
// may not allocate. The bridge is a single published snapshot page:
//
//   - The driver (the kernel's post-commit observer, which already runs the
//     metrics sampler) writes each sample into a fixed set of atomic words
//     guarded by a seqlock-style version counter, then pokes the SSE hub with
//     one atomic pointer load and per-client non-blocking channel sends.
//     Every store is to a preallocated word: publishing allocates nothing and
//     adds no lock to the evaluate/commit path.
//   - Readers copy the page out under the version counter, retrying the rare
//     torn read. Rendering (JSON, OpenMetrics text) happens entirely on the
//     HTTP goroutine, where allocation is free.
//   - Expensive state that only the driver may touch (the watchdog-style
//     network snapshot, the activity report, the perf RunReport-so-far) is
//     exported on demand: a handler raises a request flag, and the driver
//     fulfils it between cycles. The per-step cost of that door is one atomic
//     load.
//
// A publisher with no server, or a server with no clients, costs a handful of
// atomic stores per sample tick — the ≤2% no-client overhead guard in
// internal/system (SCORPIO_TELEMETRY_GUARD) pins it.
package telemetry

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a published series for the OpenMetrics exposition.
type Kind uint8

// Series kinds.
const (
	// Counter is a cumulative, monotonically non-decreasing count.
	Counter Kind = iota
	// Gauge is an instantaneous value that can move either way.
	Gauge
)

// String names the kind as the OpenMetrics TYPE line expects.
func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// Series describes one published column: its exposition name (snake_case,
// without the "scorpio_" prefix or a counter's "_total" suffix — the
// exposition writer adds both), kind, and HELP text.
type Series struct {
	Name string
	Kind Kind
	Help string
}

// MaxSeries bounds the per-tick SSE event payload so events cross the hub's
// channels as fixed-size values (no per-event allocation on the driver).
const MaxSeries = 32

// DefaultInterval is the sample period in cycles when the attach options
// leave it zero: frequent enough for a live dashboard at simulator speeds of
// ~10^5..10^7 cycles/s, sparse enough to stay invisible in the overhead
// guard.
const DefaultInterval = 1024

// Snapshot is one consistent copy of the published page, filled by
// Publisher.Read. The slices are owned by the caller and reused across
// reads.
type Snapshot struct {
	Cycle  uint64
	WallNs int64 // unix nanoseconds at publish time
	Tick   uint64
	Vals   []float64 // one per Series
	Heat   []float64 // row-major heatW×heatH router utilization
}

// Publisher is the driver-side half of the exporter: a fixed page of atomic
// words the sampler publishes into, plus the SSE hub and the deep-snapshot
// request door. Create one per run with NewPublisher; the HTTP server reads
// it concurrently.
type Publisher struct {
	series   []Series
	interval uint64
	heatW    int
	heatH    int

	// The seqlock page. seq is odd while a publish is in flight; every field
	// is an atomic word, so torn reads are impossible at the word level and
	// cross-field consistency comes from retrying on a changed seq.
	seq    atomic.Uint64
	cycle  atomic.Uint64
	wallNs atomic.Int64
	tick   atomic.Uint64
	vals   []atomic.Uint64 // float64 bits
	heat   []atomic.Uint64 // float64 bits

	hub *Hub

	// Deep-snapshot door: a handler stores 1 into deepReq and waits on
	// deepCh; the driver's ServeDeep fulfils between cycles. deepMu
	// serializes HTTP requesters so one fulfilment pairs with one waiter.
	deepFn  func(cycle uint64) *DeepSnapshot
	deepCh  chan *DeepSnapshot
	deepMu  sync.Mutex
	deepReq atomic.Uint32
}

// NewPublisher returns a publisher for the given schema. interval is the
// sample period in cycles (DefaultInterval when 0); heatW×heatH sizes the
// router-utilization grid (0×0 disables it). queue is the per-SSE-client
// event buffer (DefaultQueue when 0).
func NewPublisher(series []Series, interval uint64, heatW, heatH, queue int) *Publisher {
	if len(series) > MaxSeries {
		panic("telemetry: series schema exceeds MaxSeries")
	}
	if interval == 0 {
		interval = DefaultInterval
	}
	return &Publisher{
		series:   series,
		interval: interval,
		heatW:    heatW,
		heatH:    heatH,
		vals:     make([]atomic.Uint64, len(series)),
		heat:     make([]atomic.Uint64, heatW*heatH),
		hub:      NewHub(queue),
		deepCh:   make(chan *DeepSnapshot, 1),
	}
}

// Series returns the published schema.
func (p *Publisher) Series() []Series { return p.series }

// Interval returns the sample period in cycles.
func (p *Publisher) Interval() uint64 { return p.interval }

// HeatDims returns the utilization grid dimensions.
func (p *Publisher) HeatDims() (w, h int) { return p.heatW, p.heatH }

// Hub returns the SSE broadcast hub.
func (p *Publisher) Hub() *Hub { return p.hub }

// Due reports whether a sample should be published at cycle. Safe on nil.
func (p *Publisher) Due(cycle uint64) bool {
	return p != nil && cycle%p.interval == 0
}

// Publish writes one sample into the page and broadcasts it to SSE clients.
// Driver-side only (the kernel's post-commit observer); it never blocks and
// never allocates. vals must have len(Series()) entries; heat may be nil to
// keep the previous grid, else heatW*heatH entries.
func (p *Publisher) Publish(cycle uint64, vals, heat []float64) {
	p.seq.Add(1) // odd: write in progress
	p.cycle.Store(cycle)
	p.wallNs.Store(time.Now().UnixNano())
	for i := range p.vals {
		v := 0.0
		if i < len(vals) {
			v = vals[i]
		}
		p.vals[i].Store(math.Float64bits(v))
	}
	if heat != nil {
		n := len(p.heat)
		if len(heat) < n {
			n = len(heat)
		}
		for i := 0; i < n; i++ {
			p.heat[i].Store(math.Float64bits(heat[i]))
		}
	}
	p.seq.Add(1) // even: stable
	tick := p.tick.Add(1)

	var ev Event
	ev.Cycle = cycle
	ev.WallNs = p.wallNs.Load()
	ev.Tick = tick
	ev.NVals = len(vals)
	if ev.NVals > MaxSeries {
		ev.NVals = MaxSeries
	}
	copy(ev.Vals[:ev.NVals], vals)
	p.hub.Broadcast(ev)
}

// Read copies a consistent snapshot of the page into s, growing s's slices
// as needed (they are reused on subsequent calls). It reports false only if
// the page never stabilized across the retry budget — practically impossible,
// since publishes are microseconds apart at the sampler's cadence.
func (p *Publisher) Read(s *Snapshot) bool {
	if cap(s.Vals) < len(p.vals) {
		s.Vals = make([]float64, len(p.vals))
	}
	s.Vals = s.Vals[:len(p.vals)]
	if cap(s.Heat) < len(p.heat) {
		s.Heat = make([]float64, len(p.heat))
	}
	s.Heat = s.Heat[:len(p.heat)]
	for attempt := 0; attempt < 1024; attempt++ {
		v1 := p.seq.Load()
		if v1%2 != 0 {
			runtime.Gosched()
			continue
		}
		s.Cycle = p.cycle.Load()
		s.WallNs = p.wallNs.Load()
		s.Tick = p.tick.Load()
		for i := range p.vals {
			s.Vals[i] = math.Float64frombits(p.vals[i].Load())
		}
		for i := range p.heat {
			s.Heat[i] = math.Float64frombits(p.heat[i].Load())
		}
		if p.seq.Load() == v1 {
			return true
		}
	}
	return false
}

// DeepSnapshot is the on-demand /snapshot payload: everything only the
// driving goroutine may assemble, rendered between cycles when a handler
// asks. Building one allocates freely — it only happens per request.
type DeepSnapshot struct {
	Cycle  uint64             `json:"cycle"`
	WallNs int64              `json:"wall_ns"`
	Label  string             `json:"label,omitempty"`
	Vals   map[string]float64 `json:"series"`
	Heat   *HeatGrid          `json:"heatmap,omitempty"`
	// Network is the watchdog-style network snapshot (oldest stuck flit,
	// credit state, per-NIC ordering dumps).
	Network string `json:"network_snapshot"`
	// Activity is the kernel's activity-engine report (parked units, pending
	// wheel wakes, wakes by edge).
	Activity string `json:"activity_report"`
	// Perf is the engine RunReport-so-far (nil when no monitor is attached).
	// Typed as any to keep this leaf package free of report imports; the
	// system layer stores a *perfmon.Report.
	Perf any `json:"perf_report,omitempty"`
}

// HeatGrid is the router-utilization grid in the deep snapshot.
type HeatGrid struct {
	Width  int       `json:"width"`
	Height int       `json:"height"`
	Util   []float64 `json:"util"`
}

// SetDeep installs the driver-side deep-snapshot builder. Must be set before
// the first ServeDeep call that finds a pending request.
func (p *Publisher) SetDeep(fn func(cycle uint64) *DeepSnapshot) { p.deepFn = fn }

// ServeDeep fulfils a pending deep-snapshot request, if any. Driver-side,
// called every observed cycle; with no request pending it costs one atomic
// load and nothing else. Safe on nil.
func (p *Publisher) ServeDeep(cycle uint64) {
	if p == nil || p.deepReq.Load() == 0 {
		return
	}
	p.deepReq.Store(0)
	if p.deepFn == nil {
		return
	}
	d := p.deepFn(cycle)
	select {
	case p.deepCh <- d:
	default:
	}
}

// RequestDeep asks the driver for a deep snapshot and waits up to timeout
// for fulfilment. HTTP-goroutine side. Returns nil if the simulation is not
// currently stepping (between runs, finished, or fast-forwarding with no
// observer) — the caller should degrade to the page snapshot.
func (p *Publisher) RequestDeep(timeout time.Duration) *DeepSnapshot {
	p.deepMu.Lock()
	defer p.deepMu.Unlock()
	// Drain a stale fulfilment from a timed-out predecessor.
	select {
	case <-p.deepCh:
	default:
	}
	p.deepReq.Store(1)
	select {
	case d := <-p.deepCh:
		return d
	case <-time.After(timeout):
		p.deepReq.Store(0)
		return nil
	}
}
