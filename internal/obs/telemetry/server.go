package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"scorpio/internal/obs/perfmon"
)

// Options carries the read-side hooks the HTTP server needs beyond the
// published page. Every field may be zero: the exporter degrades to whatever
// is available. All hooks must be safe to call from any goroutine mid-run —
// in this codebase that means atomics-only accessors (perfmon Worker slots,
// Kernel.WakeEdges, Kernel.BalanceStats).
type Options struct {
	// Label identifies the run (machine/profile name) in /metrics and
	// /snapshot.
	Label string
	// Mon exposes the per-worker perf counters; nil when no monitor is
	// attached.
	Mon *perfmon.Mon
	// WakeEdges reads the activity engine's per-edge wake census.
	WakeEdges func() [perfmon.NumWakeEdges]uint64
	// Balance reads the cost-balancer's rebalance/migration totals.
	Balance func() (rebalances, migrations uint64)
	// Workers reports the kernel worker count.
	Workers func() int
}

// snapshotTimeout bounds how long /snapshot waits for the driver to fulfil a
// deep-snapshot request before degrading to the page snapshot.
const snapshotTimeout = 2 * time.Second

// Server is the embeddable HTTP exporter. Construct with NewServer, start
// with Serve, stop with Close. All handlers read the publisher's seqlock page
// or atomics-only hooks — none touch kernel state directly.
type Server struct {
	pub *Publisher
	opt Options
	mux *http.ServeMux
	srv *http.Server
	ln  net.Listener
}

// NewServer builds a server around pub. It does not listen yet.
func NewServer(pub *Publisher, opt Options) *Server {
	s := &Server{pub: pub, opt: opt, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/stream", s.handleStream)
	s.mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: s.mux}
	return s
}

// Handler exposes the mux for in-process tests (httptest) without a listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve binds addr (":0" picks an ephemeral port) and serves in a background
// goroutine. The bound address is printed to stderr so scripts driving an
// ephemeral port can discover it.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s.ln = ln
	fmt.Fprintf(os.Stderr, "scorpio: telemetry listening on http://%s\n", ln.Addr())
	go func() {
		// ErrServerClosed is the normal Close path; anything else would have
		// surfaced at Listen time.
		_ = s.srv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound listen address ("" before Serve).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and all active connections (including /stream
// clients), releasing the port. Safe to call more than once and on nil.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var snap Snapshot
	if !s.pub.Read(&snap) {
		http.Error(w, "telemetry page unstable", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	_ = writeMetrics(w, s.pub, s.opt, &snap)
}

// streamEvent is the JSON shape of one SSE data frame.
type streamEvent struct {
	Cycle  uint64             `json:"cycle"`
	WallNs int64              `json:"wall_ns"`
	Tick   uint64             `json:"tick"`
	Series map[string]float64 `json:"series"`
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	hub := s.pub.Hub()
	c := hub.Subscribe()
	defer hub.Unsubscribe(c)

	series := s.pub.Series()
	payload := streamEvent{Series: make(map[string]float64, len(series))}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-c.Events:
			if !open {
				// Kicked for falling behind; tell the client why and hang up.
				fmt.Fprint(w, "event: kicked\ndata: {\"reason\":\"slow consumer\"}\n\n")
				fl.Flush()
				return
			}
			payload.Cycle = ev.Cycle
			payload.WallNs = ev.WallNs
			payload.Tick = ev.Tick
			for i := 0; i < ev.NVals && i < len(series); i++ {
				payload.Series[series[i].Name] = ev.Vals[i]
			}
			buf, err := json.Marshal(payload)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", buf); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	d := s.pub.RequestDeep(snapshotTimeout)
	if d == nil {
		// The driver is not currently observing (between runs, finished, or
		// no deep hook installed): degrade to the page snapshot so the
		// endpoint still answers.
		var snap Snapshot
		if !s.pub.Read(&snap) {
			http.Error(w, "telemetry page unstable", http.StatusServiceUnavailable)
			return
		}
		d = &DeepSnapshot{
			Cycle:  snap.Cycle,
			WallNs: snap.WallNs,
			Label:  s.opt.Label,
			Vals:   make(map[string]float64, len(snap.Vals)),
		}
		for i, sr := range s.pub.Series() {
			d.Vals[sr.Name] = snap.Vals[i]
		}
		if hw, hh := s.pub.HeatDims(); hw > 0 && hh > 0 {
			heat := make([]float64, len(snap.Heat))
			copy(heat, snap.Heat)
			d.Heat = &HeatGrid{Width: hw, Height: hh, Util: heat}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(d)
}
