package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scorpio/internal/obs/perfmon"
)

func testSeries() []Series {
	return []Series{
		{Name: "reqs", Kind: Counter, Help: "requests seen"},
		{Name: "depth", Kind: Gauge, Help: `queue depth with "quotes" and a \ backslash`},
		{Name: "errs", Kind: Counter, Help: "errors\nwith a newline"},
	}
}

// TestPublisherReadConsistency hammers the seqlock from a concurrent reader
// while the writer publishes rows whose fields are all derived from one
// value; any torn read (mixing two publishes) surfaces as a mismatched row.
func TestPublisherReadConsistency(t *testing.T) {
	p := NewPublisher(testSeries(), 1, 2, 2, 0)
	stop := make(chan struct{})
	var torn atomic.Int64
	var reads atomic.Int64
	go func() {
		var s Snapshot
		for {
			select {
			case <-stop:
				return
			default:
			}
			if !p.Read(&s) {
				continue
			}
			reads.Add(1)
			want := s.Vals[0]
			for _, v := range s.Vals {
				if v != want {
					torn.Add(1)
				}
			}
			for _, v := range s.Heat {
				if v != want {
					torn.Add(1)
				}
			}
		}
	}()
	vals := make([]float64, 3)
	heat := make([]float64, 4)
	for i := 1; i <= 50_000; i++ {
		v := float64(i)
		for j := range vals {
			vals[j] = v
		}
		for j := range heat {
			heat[j] = v
		}
		p.Publish(uint64(i), vals, heat)
	}
	close(stop)
	if n := torn.Load(); n > 0 {
		t.Fatalf("%d torn reads across %d snapshots", n, reads.Load())
	}
	var s Snapshot
	if !p.Read(&s) {
		t.Fatal("final read failed")
	}
	if s.Cycle != 50_000 || s.Vals[0] != 50_000 || s.Tick != 50_000 {
		t.Fatalf("final snapshot: cycle %d tick %d vals[0] %v", s.Cycle, s.Tick, s.Vals[0])
	}
}

// TestPublishAllocatesNothing pins the driver-side publish cost with no SSE
// clients: pure atomic stores.
func TestPublishAllocatesNothing(t *testing.T) {
	p := NewPublisher(testSeries(), 1, 2, 2, 0)
	vals := []float64{1, 2, 3}
	heat := []float64{1, 2, 3, 4}
	cycle := uint64(0)
	if avg := testing.AllocsPerRun(200, func() {
		cycle++
		p.Publish(cycle, vals, heat)
	}); avg != 0 {
		t.Fatalf("Publish allocates %.1f objects per call; the hot path must be allocation-free", avg)
	}
}

func TestDue(t *testing.T) {
	var nilPub *Publisher
	if nilPub.Due(0) {
		t.Fatal("nil publisher claims to be due")
	}
	p := NewPublisher(testSeries(), 100, 0, 0, 0)
	for _, tc := range []struct {
		cycle uint64
		want  bool
	}{{0, true}, {1, false}, {99, false}, {100, true}, {250, false}, {1000, true}} {
		if got := p.Due(tc.cycle); got != tc.want {
			t.Errorf("Due(%d) = %v, want %v", tc.cycle, got, tc.want)
		}
	}
}

// TestHubSlowClientDropAndKick proves the broadcast path never waits on a
// stalled consumer: a client that reads nothing loses events and is
// disconnected, while a draining client keeps receiving, and the whole
// broadcast sequence completes promptly.
func TestHubSlowClientDropAndKick(t *testing.T) {
	h := NewHub(2)
	slow := h.Subscribe()
	fast := h.Subscribe()
	var fastGot atomic.Int64
	go func() {
		for range fast.Events {
			fastGot.Add(1)
		}
	}()

	const n = 2 + kickAfter + 16
	done := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			h.Broadcast(Event{Cycle: uint64(i)})
			// Pace the driver like a real sampler tick so the draining client's
			// goroutine gets scheduled; the stalled client's queue stays full
			// regardless.
			time.Sleep(100 * time.Microsecond)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Broadcast blocked on a stalled client")
	}

	if slow.Dropped() == 0 {
		t.Fatal("stalled client dropped nothing; queue bound is not enforced")
	}
	if h.Kicks() != 1 {
		t.Fatalf("kicks = %d, want 1 (the stalled client)", h.Kicks())
	}
	// The kicked client's channel is closed: drain the queued remainder and
	// verify termination.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, open := <-slow.Events:
			if !open {
				goto closed
			}
		case <-deadline:
			t.Fatal("kicked client's channel never closed")
		}
	}
closed:
	h.Unsubscribe(slow)
	h.Unsubscribe(fast)
	if h.Clients() != 0 {
		t.Fatalf("clients = %d after unsubscribe", h.Clients())
	}
	if fastGot.Load() == 0 {
		t.Fatal("draining client received nothing")
	}
}

// buildTestServer assembles a server with every optional hook populated.
func buildTestServer(label string) (*Publisher, *Server) {
	p := NewPublisher(testSeries(), 1, 2, 2, 0)
	mon := perfmon.New()
	mon.EnsureWorkers(2)
	mon.Worker(0).EvalNs.Store(1000)
	mon.Worker(0).CommitNs.Store(500)
	mon.Worker(1).EvalNs.Store(900)
	mon.Worker(1).Sampled.Store(42)
	srv := NewServer(p, Options{
		Label: label,
		Mon:   mon,
		WakeEdges: func() (w [perfmon.NumWakeEdges]uint64) {
			for i := range w {
				w[i] = uint64(10 * (i + 1))
			}
			return w
		},
		Balance: func() (uint64, uint64) { return 3, 17 },
		Workers: func() int { return 2 },
	})
	return p, srv
}

// omFamily is one parsed metric family of the exposition.
type omFamily struct {
	help, typ string
	samples   int
}

// parseExposition is a self-contained OpenMetrics text parser strict enough
// to catch format regressions: HELP/TYPE ordering, counter _total suffixes,
// label-value escaping, sample/family association, and the # EOF terminator.
func parseExposition(t *testing.T, body string) (map[string]*omFamily, map[string]map[string]float64) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if lines[len(lines)-1] != "# EOF" {
		t.Fatalf("exposition does not end with # EOF (last line %q)", lines[len(lines)-1])
	}
	fams := map[string]*omFamily{}
	samples := map[string]map[string]float64{} // sample name -> rendered labels -> value
	var cur string
	for _, line := range lines[:len(lines)-1] {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := line[len("# HELP "):]
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed HELP line %q", line)
			}
			if _, dup := fams[name]; dup {
				t.Fatalf("duplicate HELP for %s", name)
			}
			fams[name] = &omFamily{help: help}
			cur = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# TYPE "):]
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge") {
				t.Fatalf("malformed TYPE line %q", line)
			}
			f := fams[name]
			if f == nil {
				t.Fatalf("TYPE before HELP for %s", name)
			}
			if f.typ != "" {
				t.Fatalf("duplicate TYPE for %s", name)
			}
			if name != cur {
				t.Fatalf("TYPE %s outside its family block (current %s)", name, cur)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		// Sample line: name[{labels}] value
		var name, labels, rest string
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("unbalanced braces in %q", line)
			}
			labels = line[i+1 : j]
			rest = line[j+1:]
		} else {
			var ok bool
			name, rest, ok = strings.Cut(line, " ")
			if !ok {
				t.Fatalf("sample line lacks a value: %q", line)
			}
		}
		fields := strings.Fields(rest)
		if len(fields) != 1 {
			t.Fatalf("sample line needs exactly one value: %q", line)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		fam := name
		f := fams[fam]
		if f == nil && strings.HasSuffix(name, "_total") {
			fam = strings.TrimSuffix(name, "_total")
			f = fams[fam]
		}
		if f == nil {
			t.Fatalf("sample %q has no HELP/TYPE family", name)
		}
		if f.typ == "" {
			t.Fatalf("sample %q arrived before its TYPE line", name)
		}
		if fam != cur {
			t.Fatalf("sample %q outside its family block (current %s)", name, cur)
		}
		if f.typ == "counter" && !strings.HasSuffix(name, "_total") {
			t.Fatalf("counter sample %q lacks the _total suffix", name)
		}
		if f.typ == "gauge" && strings.HasSuffix(name, "_total") {
			t.Fatalf("gauge sample %q carries a counter suffix", name)
		}
		if f.typ == "counter" && v < 0 {
			t.Fatalf("counter sample %q is negative: %v", name, v)
		}
		validateLabels(t, labels)
		f.samples++
		if samples[name] == nil {
			samples[name] = map[string]float64{}
		}
		if _, dup := samples[name][labels]; dup {
			t.Fatalf("duplicate sample %s{%s}", name, labels)
		}
		samples[name][labels] = v
	}
	for name, f := range fams {
		if f.typ == "" {
			t.Fatalf("family %s has HELP but no TYPE", name)
		}
		if f.samples == 0 {
			t.Fatalf("family %s has no samples", name)
		}
	}
	return fams, samples
}

// validateLabels checks the label list parses under the exposition's escape
// rules: values are double-quoted with \\, \" and \n escapes only.
func validateLabels(t *testing.T, labels string) map[string]string {
	t.Helper()
	out := map[string]string{}
	i := 0
	for i < len(labels) {
		eq := strings.IndexByte(labels[i:], '=')
		if eq < 0 {
			t.Fatalf("label list %q: missing =", labels)
		}
		key := labels[i : i+eq]
		i += eq + 1
		if i >= len(labels) || labels[i] != '"' {
			t.Fatalf("label list %q: value of %s not quoted", labels, key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(labels) {
				t.Fatalf("label list %q: unterminated value for %s", labels, key)
			}
			c := labels[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(labels) {
					t.Fatalf("label list %q: trailing backslash", labels)
				}
				switch labels[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("label list %q: invalid escape \\%c", labels, labels[i+1])
				}
				i += 2
				continue
			}
			if c == '\n' {
				t.Fatalf("label list %q: raw newline in value", labels)
			}
			val.WriteByte(c)
			i++
		}
		out[key] = val.String()
		if i < len(labels) {
			if labels[i] != ',' {
				t.Fatalf("label list %q: expected , after value, got %q", labels, labels[i])
			}
			i++
		}
	}
	return out
}

// TestOpenMetricsExposition scrapes /metrics twice and validates every family
// against the exposition format, the escaping of a hostile label value, and
// counter monotonicity between scrapes.
func TestOpenMetricsExposition(t *testing.T) {
	label := "we\"ird\\lab\nel"
	p, srv := buildTestServer(label)
	scrape := func() (map[string]*omFamily, map[string]map[string]float64) {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/metrics: %d", rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
			t.Fatalf("content type %q", ct)
		}
		return parseExposition(t, rec.Body.String())
	}

	p.Publish(100, []float64{5, 2, 1}, []float64{0.1, 0.2, 0.3, 0.4})
	fams1, samples1 := scrape()
	p.Publish(200, []float64{9, 1, 4}, nil)
	_, samples2 := scrape()

	// Schema families present with the right kinds and help text intact.
	for fam, typ := range map[string]string{
		"scorpio_reqs":               "counter",
		"scorpio_depth":              "gauge",
		"scorpio_errs":               "counter",
		"scorpio_cycle":              "gauge",
		"scorpio_worker_eval_ns":     "counter",
		"scorpio_wakes":              "counter",
		"scorpio_shard_rebalances":   "counter",
		"scorpio_router_utilization": "gauge",
		"scorpio_sse_clients":        "gauge",
		"scorpio_sse_dropped_events": "counter",
		"scorpio_sse_kicked_clients": "counter",
		"scorpio_shard_migrations":   "counter",
		"scorpio_workers":            "gauge",
		"scorpio_sample_ticks":       "counter",
		"scorpio_run":                "gauge",
	} {
		f := fams1[fam]
		if f == nil {
			t.Fatalf("family %s missing from exposition", fam)
		}
		if f.typ != typ {
			t.Fatalf("family %s: type %s, want %s", fam, f.typ, typ)
		}
	}
	// The hostile label value round-trips through the escape rules.
	runLabels := ""
	for l := range samples1["scorpio_run"] {
		runLabels = l
	}
	if got := validateLabels(t, runLabels)["label"]; got != label {
		t.Fatalf("label round-trip: got %q want %q", got, label)
	}
	// Heat grid: one sample per router with x/y labels.
	if n := len(samples1["scorpio_router_utilization"]); n != 4 {
		t.Fatalf("heat samples = %d, want 4", n)
	}
	if v := samples1["scorpio_router_utilization"][`x="1",y="1"`]; v != 0.4 {
		t.Fatalf("heat (1,1) = %v, want 0.4", v)
	}
	// Wake edges carry one sample per edge name.
	if n := len(samples1["scorpio_wakes_total"]); n != perfmon.NumWakeEdges {
		t.Fatalf("wake samples = %d, want %d", n, perfmon.NumWakeEdges)
	}
	// Per-worker counters labeled by worker index.
	if v := samples1["scorpio_worker_eval_ns_total"][`worker="0"`]; v != 1000 {
		t.Fatalf(`worker 0 eval ns = %v, want 1000`, v)
	}
	// Counters are monotonic between scrapes.
	for name, byLabel := range samples1 {
		fam := strings.TrimSuffix(name, "_total")
		if fams1[fam] == nil || fams1[fam].typ != "counter" {
			continue
		}
		for l, v1 := range byLabel {
			if v2, ok := samples2[name][l]; ok && v2 < v1 {
				t.Fatalf("counter %s{%s} went backwards: %v -> %v", name, l, v1, v2)
			}
		}
	}
	if samples2["scorpio_reqs_total"][""] != 9 || samples2["scorpio_cycle"][""] != 200 {
		t.Fatalf("second scrape did not reflect the second publish: %v", samples2["scorpio_reqs_total"])
	}
}

// TestSSEStreamDeliversTicks runs the full HTTP path: subscribe over a real
// connection, publish, and decode the JSON frame.
func TestSSEStreamDeliversTicks(t *testing.T) {
	p, srv := buildTestServer("sse")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	waitFor(t, func() bool { return p.Hub().Clients() == 1 })
	p.Publish(4096, []float64{7, 3, 2}, nil)

	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var frame struct {
			Cycle  uint64             `json:"cycle"`
			Tick   uint64             `json:"tick"`
			Series map[string]float64 `json:"series"`
		}
		if err := json.Unmarshal([]byte(line[len("data: "):]), &frame); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		if frame.Cycle != 4096 || frame.Series["reqs"] != 7 || frame.Series["depth"] != 3 {
			t.Fatalf("frame = %+v", frame)
		}
		return
	}
	t.Fatalf("stream ended without a data frame: %v", sc.Err())
}

// TestSSESlowHTTPClientNeverBlocksPublish is the kernel-safety proof at the
// HTTP layer: a connected /stream client that never reads its socket must not
// slow Publish below a hard wall-clock bound, and must eventually be kicked.
func TestSSESlowHTTPClientNeverBlocksPublish(t *testing.T) {
	p, srv := buildTestServer("slow")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() // never read: the client stalls immediately
	waitFor(t, func() bool { return p.Hub().Clients() == 1 })

	const n = DefaultQueue + kickAfter + 64
	done := make(chan struct{})
	go func() {
		vals := []float64{1, 2, 3}
		for i := 0; i < n; i++ {
			p.Publish(uint64(i+1), vals, nil)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish stalled behind an unread /stream client")
	}
	if p.Hub().TotalDropped() == 0 {
		t.Fatal("no events dropped; the per-client queue bound is not enforced")
	}
	waitFor(t, func() bool { return p.Hub().Kicks() == 1 })
}

// TestSnapshotAndHealthz covers the degraded /snapshot path (no driver
// serving the deep door), the fulfilled path, and /healthz.
func TestSnapshotAndHealthz(t *testing.T) {
	p, srv := buildTestServer("snap")
	p.Publish(300, []float64{1, 2, 3}, []float64{1, 2, 3, 4})

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("/healthz: %d %q", rec.Code, rec.Body.String())
	}

	// No deep fn installed and nobody calling ServeDeep: RequestDeep times
	// out and the handler degrades to the page snapshot. Shrink the wait by
	// fulfilling the timeout path through a direct call.
	if d := p.RequestDeep(50 * time.Millisecond); d != nil {
		t.Fatal("RequestDeep succeeded with no driver attached")
	}

	// With a deep fn and a driver loop, /snapshot returns the deep payload.
	p.SetDeep(func(cycle uint64) *DeepSnapshot {
		return &DeepSnapshot{Cycle: cycle, Label: "deep", Network: "net-state", Activity: "act-state"}
	})
	stop := make(chan struct{})
	go func() {
		cycle := uint64(300)
		for {
			select {
			case <-stop:
				return
			default:
				cycle++
				p.ServeDeep(cycle)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	defer close(stop)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/snapshot", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/snapshot: %d", rec.Code)
	}
	var d DeepSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("bad /snapshot JSON: %v", err)
	}
	if d.Label != "deep" || d.Network != "net-state" || d.Activity != "act-state" {
		t.Fatalf("snapshot = %+v", d)
	}
}

// TestServeReleasesPort pins the lifecycle contract the telemetrysmoke script
// relies on: after Close the port accepts no connections and can be rebound.
func TestServeReleasesPort(t *testing.T) {
	p, srv := buildTestServer("lifecycle")
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("no bound address after Serve")
	}
	p.Publish(1, []float64{1, 2, 3}, nil)
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The port is free again: rebinding it succeeds (retry briefly — the OS
	// may take a moment to finish the teardown).
	var rebindErr error
	for i := 0; i < 50; i++ {
		_, srv2 := buildTestServer("rebind")
		if rebindErr = srv2.Serve(addr); rebindErr == nil {
			srv2.Close()
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if rebindErr != nil {
		t.Fatalf("port %s not released after Close: %v", addr, rebindErr)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
