package telemetry

import "sync/atomic"

// Event is one sample tick as it crosses the hub: a fixed-size value so the
// driver's channel send never allocates. Serialization to SSE JSON happens on
// the receiving client's goroutine.
type Event struct {
	Cycle  uint64
	WallNs int64
	Tick   uint64
	NVals  int
	Vals   [MaxSeries]float64
}

// DefaultQueue is the per-client event buffer when the attach options leave
// it zero: deep enough to ride out a TCP stall of a few ticks, shallow
// enough that a dead consumer is detected quickly.
const DefaultQueue = 16

// kickAfter is the number of *consecutive* dropped events after which a
// client is declared dead and disconnected. Combined with the queue depth it
// bounds how long a stalled consumer can linger: the kernel itself never
// waits either way — sends are non-blocking — this only reclaims the
// goroutine and connection.
const kickAfter = 64

// Client is one subscribed SSE consumer. The hub owns the lifecycle: Events
// is closed when the client is kicked for falling behind.
type Client struct {
	// Events delivers sample ticks; closed by the hub when the client is
	// kicked.
	Events chan Event
	// dropped counts events discarded because the queue was full; consecDrop
	// tracks the current run of consecutive drops (reset by any successful
	// delivery). Both are written by the driver, read by anyone.
	dropped    atomic.Uint64
	consecDrop uint64
	kicked     bool
}

// Dropped reports how many events were discarded for this client.
func (c *Client) Dropped() uint64 { return c.dropped.Load() }

// Hub fans sample ticks out to SSE clients without ever blocking the
// publisher. The client list is an immutable slice behind an atomic pointer:
// subscribing and unsubscribing copy-on-write from HTTP goroutines (guarded
// by mu against each other), while the driver's Broadcast takes no lock at
// all — one pointer load, then a non-blocking send per client.
type Hub struct {
	clients atomic.Pointer[[]*Client]
	mu      chMutex
	queue   int

	// totalDropped and kicks aggregate across all clients (for /metrics).
	totalDropped atomic.Uint64
	kicks        atomic.Uint64
}

// chMutex is a minimal mutex (a 1-buffered channel) so this file stays
// dependency-light; contention is between rare subscribe/unsubscribe calls
// only, never the driver.
type chMutex chan struct{}

func (m *chMutex) lock() {
	if *m == nil {
		panic("telemetry: hub not built with NewHub")
	}
	*m <- struct{}{}
}
func (m *chMutex) unlock() { <-*m }

// NewHub returns a hub with the given per-client queue depth (DefaultQueue
// when <= 0).
func NewHub(queue int) *Hub {
	if queue <= 0 {
		queue = DefaultQueue
	}
	h := &Hub{queue: queue, mu: make(chMutex, 1)}
	empty := []*Client{}
	h.clients.Store(&empty)
	return h
}

// Clients reports the current subscriber count.
func (h *Hub) Clients() int { return len(*h.clients.Load()) }

// TotalDropped reports events discarded across all clients so far.
func (h *Hub) TotalDropped() uint64 { return h.totalDropped.Load() }

// Kicks reports clients disconnected for falling behind.
func (h *Hub) Kicks() uint64 { return h.kicks.Load() }

// Subscribe registers a new client. HTTP-goroutine side.
func (h *Hub) Subscribe() *Client {
	c := &Client{Events: make(chan Event, h.queue)}
	h.mu.lock()
	defer h.mu.unlock()
	old := *h.clients.Load()
	next := make([]*Client, len(old)+1)
	copy(next, old)
	next[len(old)] = c
	h.clients.Store(&next)
	return c
}

// Unsubscribe removes a client (idempotent; kicked clients were already
// removed by the driver's list swap... no — removal always happens here, the
// driver only marks and closes). HTTP-goroutine side.
func (h *Hub) Unsubscribe(c *Client) {
	h.mu.lock()
	defer h.mu.unlock()
	old := *h.clients.Load()
	next := make([]*Client, 0, len(old))
	for _, x := range old {
		if x != c {
			next = append(next, x)
		}
	}
	h.clients.Store(&next)
}

// Broadcast delivers ev to every subscriber with a non-blocking send.
// Driver-side: it never blocks and never allocates. A client whose queue is
// full loses this event; kickAfter consecutive losses close its channel (the
// client goroutine sees the close and terminates the stream). The driver
// never sends on a closed channel because it is the only closer and it marks
// the client kicked first.
func (h *Hub) Broadcast(ev Event) {
	for _, c := range *h.clients.Load() {
		if c.kicked {
			continue
		}
		select {
		case c.Events <- ev:
			c.consecDrop = 0
		default:
			c.dropped.Add(1)
			h.totalDropped.Add(1)
			c.consecDrop++
			if c.consecDrop >= kickAfter {
				c.kicked = true
				h.kicks.Add(1)
				close(c.Events)
			}
		}
	}
}
