package obs

// EventType identifies a point in a flit/transaction lifecycle. The taxonomy
// follows the pipeline a SCORPIO request traverses: injection at the source
// NIC, per-hop buffer write / VC allocation / switch grant (or bypass) inside
// routers, arrival at the destination NIC, the notification-network window
// that globally orders it, the order-commit when the NIC hands it to the
// cache in global order, and the final sink. Coherence-level miss start/done
// events bracket the whole transaction.
type EventType uint8

const (
	// EvInject: a packet's head flit enters the network at its source NIC
	// (or baseline endpoint). Arg carries the packet's flit count.
	EvInject EventType = iota
	// EvBufWrite: a router wrote a flit into an input VC buffer. Arg is the
	// packet's flit sequence number (0 = head).
	EvBufWrite
	// EvVCAlloc: a head flit won a downstream virtual channel. Arg is the
	// downstream VC index.
	EvVCAlloc
	// EvSAGrant: switch allocation granted; the flit crosses the crossbar
	// this cycle. Arg is the output port.
	EvSAGrant
	// EvBypass: the flit took the single-cycle lookahead bypass instead of
	// the buffered pipeline. Arg is the output port.
	EvBypass
	// EvNetArrive: the packet reached its destination NIC's receive path.
	EvNetArrive
	// EvNotifSend: a NIC broadcast a notification for an injected GO-REQ
	// packet. Arg is the number of notification slots debited this window.
	EvNotifSend
	// EvNotifWindow: the notification network delivered an aggregated
	// window. Node is -1 (network-global); Arg is the total notification
	// count in the window; Port is 1 if the window carried a stop signal.
	EvNotifWindow
	// EvOrderCommit: an ordered request was consumed in global order at a
	// NIC (or baseline endpoint). Arg is the global sequence number.
	EvOrderCommit
	// EvSink: the packet left the network layer for good (delivered to the
	// coherence agent, or a response retired).
	EvSink
	// EvMissStart: the L2 allocated an MSHR for a core miss. Arg is the
	// line address.
	EvMissStart
	// EvMissDone: the L2 completed an outstanding miss. Arg is the line
	// address.
	EvMissDone

	numEventTypes
)

var eventNames = [numEventTypes]string{
	EvInject:      "inject",
	EvBufWrite:    "buf-write",
	EvVCAlloc:     "vc-alloc",
	EvSAGrant:     "sa-grant",
	EvBypass:      "bypass",
	EvNetArrive:   "net-arrive",
	EvNotifSend:   "notif-send",
	EvNotifWindow: "notif-window",
	EvOrderCommit: "order-commit",
	EvSink:        "sink",
	EvMissStart:   "miss-start",
	EvMissDone:    "miss-done",
}

// String returns the stable lowercase name used in trace output.
func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return "unknown"
}

// Event is one fixed-size lifecycle record. Fields that do not apply to a
// given event type are zero (or -1 for Node on network-global events). The
// struct is flat and pointer-free so a preallocated ring of them stays out
// of the garbage collector's way entirely.
type Event struct {
	Cycle uint64
	Pkt   uint64 // per-stream packet ID (0 when not packet-scoped)
	Arg   uint64 // type-specific payload (see EventType docs)
	Node  int32  // router/NIC node index, -1 for network-global
	Src   int32  // packet source node, -1 when unknown
	Type  EventType
	Port  int8 // router port, -1 when not port-scoped
	VNet  int8 // virtual network, -1 when not VC-scoped
	VC    int16
}
