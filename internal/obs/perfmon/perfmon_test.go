package perfmon

import (
	"bytes"
	"strings"
	"testing"
)

func TestEffectiveStride(t *testing.T) {
	var nilMon *Mon
	if got := nilMon.EffectiveStride(); got != DefaultStride {
		t.Fatalf("nil monitor stride %d, want %d", got, DefaultStride)
	}
	m := New()
	if got := m.EffectiveStride(); got != DefaultStride {
		t.Fatalf("zero stride resolves to %d, want %d", got, DefaultStride)
	}
	m.Stride = 1
	if got := m.EffectiveStride(); got != 1 {
		t.Fatalf("explicit stride resolves to %d, want 1", got)
	}
}

func TestEnsureWorkersKeepsCounts(t *testing.T) {
	m := New()
	m.EnsureWorkers(2)
	m.Worker(1).EvalNs.Store(42)
	m.EnsureWorkers(4)
	if m.Workers() != 4 {
		t.Fatalf("workers = %d, want 4", m.Workers())
	}
	if got := m.Worker(1).EvalNs.Load(); got != 42 {
		t.Fatalf("reshard dropped accumulated counts: eval = %d, want 42", got)
	}
}

func TestRebalanceRingKeepsNewest(t *testing.T) {
	m := New()
	const pushed = rebalanceRing + 10
	for i := 0; i < pushed; i++ {
		m.RecordRebalance(RebalanceEvent{Cycle: uint64(i)})
	}
	evs := m.rebalanceEvents()
	if len(evs) != rebalanceRing {
		t.Fatalf("ring kept %d events, want %d", len(evs), rebalanceRing)
	}
	if evs[0].Cycle != pushed-rebalanceRing || evs[len(evs)-1].Cycle != pushed-1 {
		t.Fatalf("ring kept cycles %d..%d, want the newest %d..%d",
			evs[0].Cycle, evs[len(evs)-1].Cycle, pushed-rebalanceRing, pushed-1)
	}
}

func TestWakeEdgeNames(t *testing.T) {
	want := map[WakeEdge]string{
		WakeFlit: "flit", WakeCredit: "credit", WakeNotif: "notif",
		WakeOrder: "order", WakeTimer: "timer", WakeOther: "other",
	}
	if len(want) != NumWakeEdges {
		t.Fatalf("edge table has %d entries, want %d", len(want), NumWakeEdges)
	}
	for e, name := range want {
		if e.String() != name {
			t.Errorf("edge %d renders %q, want %q", e, e.String(), name)
		}
	}
	if got := WakeEdge(200).String(); got != "other" {
		t.Errorf("out-of-range edge renders %q, want other", got)
	}
}

func TestActivityCountersWakeViews(t *testing.T) {
	var a ActivityCounters
	a.Wakes[WakeFlit] = 3
	a.Wakes[WakeTimer] = 4
	if got := a.TotalWakes(); got != 7 {
		t.Fatalf("total wakes %d, want 7", got)
	}
	m := a.WakesByEdge()
	if m["flit"] != 3 || m["timer"] != 4 || len(m) != NumWakeEdges {
		t.Fatalf("WakesByEdge = %v", m)
	}
}

func TestSameHost(t *testing.T) {
	a := Host()
	if !SameHost(a, a) {
		t.Fatal("a host differs from itself")
	}
	// Zero/unknown fields never count as a difference: pre-metadata files
	// must still gate.
	if !SameHost(a, HostInfo{}) {
		t.Fatal("an empty stamp must not read as a different host")
	}
	b := a
	b.NumCPU = a.NumCPU + 8
	if SameHost(a, b) {
		t.Fatal("differing CPU counts must read as different hosts")
	}
	c := a
	c.GoVersion = a.GoVersion + ".different"
	if SameHost(a, c) {
		t.Fatal("differing toolchains must read as different hosts")
	}
	d := a
	d.Commit = "somethingelse"
	if !SameHost(a, d) {
		t.Fatal("a commit difference alone is not a host difference")
	}
}

// buildReport assembles a report from a hand-filled monitor, the round-trip
// fixture for the JSON and table tests.
func buildReport() *Report {
	m := New()
	m.EnsureWorkers(2)
	w0 := m.Worker(0)
	w0.EvalNs.Store(600)
	w0.CommitNs.Store(200)
	w0.StepNs.Store(1000)
	w0.Sampled.Store(50)
	w1 := m.Worker(1)
	w1.EvalNs.Store(500)
	w1.SpinNs.Store(100)
	w1.ParkNs.Store(200)
	w1.Sampled.Store(50)
	w1.Led.Store(10)
	w1.Followed.Store(40)
	m.RecordRebalance(RebalanceEvent{Cycle: 7, Migrations: 3, ImbalanceBefore: 1.8, ImbalanceAfter: 1.1})
	var act ActivityCounters
	act.StepsExecuted = 100
	act.Parks = 20
	act.Wakes[WakeFlit] = 11
	return m.Report(RunInfo{
		Label: "test/run", ConfigDigest: "feedface", Workers: 2, Mode: "parallel",
		Cycles: 150, WallNs: 1_000_000, Activity: act, Rebalances: 1, Migrations: 3,
	})
}

func TestReportExtrapolationAndOther(t *testing.T) {
	r := buildReport()
	if len(r.PerWorker) != 2 {
		t.Fatalf("per-worker rows = %d, want 2", len(r.PerWorker))
	}
	// 50 sampled of 100 executed steps: everything scales 2x.
	w0 := r.PerWorker[0]
	if w0.EvalNs != 1200 || w0.CommitNs != 400 {
		t.Fatalf("worker 0 extrapolation: eval %d commit %d, want 1200/400", w0.EvalNs, w0.CommitNs)
	}
	// Other = (step 1000 - eval 600 - commit 200) * 2.
	if w0.OtherNs != 400 {
		t.Fatalf("worker 0 other = %d, want 400", w0.OtherNs)
	}
	w1 := r.PerWorker[1]
	if w1.OtherNs != 0 {
		t.Fatalf("worker 1 other = %d, want 0 (StepNs is driver-only)", w1.OtherNs)
	}
	if w1.SpinNs != 200 || w1.ParkNs != 400 {
		t.Fatalf("worker 1 barrier time: spin %d park %d, want 200/400", w1.SpinNs, w1.ParkNs)
	}
	if w1.EpochsLed != 10 || w1.EpochsFollowed != 40 {
		t.Fatalf("worker 1 epochs: led %d followed %d", w1.EpochsLed, w1.EpochsFollowed)
	}
	if r.CyclesPerSec != 150_000 {
		t.Fatalf("cycles/s = %v, want 150000 (150 cycles in 1ms)", r.CyclesPerSec)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := buildReport()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ReportSchema || got.Label != r.Label || got.ConfigDigest != r.ConfigDigest {
		t.Fatalf("envelope did not round-trip: %+v", got)
	}
	if got.Activity.StepsExecuted != 100 || got.Activity.ActivityCounters.Wakes != [NumWakeEdges]uint64{} {
		// The typed array is json:"-"; the named map carries the counts.
		t.Fatalf("activity census did not round-trip as expected: %+v", got.Activity)
	}
	if got.Activity.Wakes["flit"] != 11 {
		t.Fatalf("wake map did not round-trip: %v", got.Activity.Wakes)
	}
	if len(got.PerWorker) != 2 || got.PerWorker[1].ParkNs != 400 {
		t.Fatalf("per-worker rows did not round-trip: %+v", got.PerWorker)
	}
	if len(got.Rebalance) != 1 || got.Rebalance[0].Migrations != 3 {
		t.Fatalf("rebalance events did not round-trip: %+v", got.Rebalance)
	}
}

func TestParseReportRejects(t *testing.T) {
	if _, err := ParseReport([]byte("not json")); err == nil {
		t.Fatal("garbage parsed")
	}
	if _, err := ParseReport([]byte(`{"schema":"something-else/v1"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := ParseReport([]byte(`{"schema":"scorpio-perf/v9"}`)); err != nil {
		t.Fatalf("future schema version rejected: %v", err)
	}
}

func TestTableMentionsEveryLayer(t *testing.T) {
	tab := buildReport().Table()
	for _, want := range []string{
		"test/run", "parallel, workers 2", "cycles/s", "fast-forward",
		"parks", "flit 11", "rebalances", "led/followed",
	} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
}
