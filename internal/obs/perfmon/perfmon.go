// Package perfmon is the simulation engine's self-observability layer: a
// set of always-cheap counters the kernel and its phase pool fill in while a
// run executes, drained into a structured RunReport (JSON plus a
// human-readable table) when the run finishes.
//
// The package is a leaf — standard library only — so internal/sim can import
// it without cycles; everything the report needs beyond the raw counters
// (cycle counts, balance stats, host metadata) is passed in at build time.
//
// The collection discipline mirrors the rest of the observability layer:
//
//   - Detached (the kernel's *Mon is nil) the hot path pays one predictable
//     branch and allocates nothing.
//   - Attached, nanotime reads are *sampled*: every Stride-th cycle each
//     participant timestamps its evaluate phase, commit phase and barrier
//     waits; all other cycles run the untouched hot loop. Totals are
//     extrapolated from the sampled sums, so the per-cycle overhead is a few
//     clock reads divided by the stride — held under 2% by the perfsmoke
//     guard — while steady-state estimates stay within a few percent of
//     wall clock.
//   - Every counter a worker writes is an atomic in a padded per-worker
//     struct (no false sharing, no cross-worker writes), so reading them
//     mid-run from any goroutine is race-free by construction.
package perfmon

import "sync/atomic"

// WakeEdge classifies the producer edge that requested a parked scheduling
// unit's wake — the activity engine's "who woke whom" taxonomy. Components
// pass their edge when calling Activity.Wake; the kernel counts successful
// wake requests per edge.
type WakeEdge uint8

// Wake edge kinds. NumWakeEdges sizes per-edge counter arrays.
const (
	// WakeFlit is a link flit write waking the downstream reader.
	WakeFlit WakeEdge = iota
	// WakeCredit is a link credit write waking the upstream reader.
	WakeCredit
	// WakeNotif is notification-network activity: a merged vector delivered
	// to the nodes, or a NIC arming the network for a window start.
	WakeNotif
	// WakeOrder is an ordering-layer edge (an orderer handing an endpoint
	// expiry work to broadcast).
	WakeOrder
	// WakeTimer is a component's self-scheduled future wake (window
	// boundaries, expiry deadlines).
	WakeTimer
	// WakeOther is everything unclassified (tests, external drivers).
	WakeOther
	NumWakeEdges = int(WakeOther) + 1
)

// wakeEdgeNames indexes WakeEdge for reports.
var wakeEdgeNames = [NumWakeEdges]string{
	"flit", "credit", "notif", "order", "timer", "other",
}

// String names the edge for reports.
func (e WakeEdge) String() string {
	if int(e) < len(wakeEdgeNames) {
		return wakeEdgeNames[e]
	}
	return "other"
}

// DefaultStride is the sampled-nanotime cycle stride when Mon.Stride is 0.
// Prime, and co-prime with the pool's 256-cycle cost-profiling cadence, so
// perf samples do not systematically land on the (slightly slower)
// profiling cycles and inflate the extrapolated totals.
const DefaultStride = 13

// Worker holds one participant's phase-time and barrier accounting. All
// fields are atomics written only by the owning participant (worker i writes
// Worker i) on sampled cycles, so concurrent reads from any goroutine are
// race-free and the padding keeps neighbouring workers off each other's
// cache line.
//
// The *Ns sums cover sampled cycles only; reports extrapolate by the
// sampled fraction. StepNs is driver-only (participant 0): the span of the
// whole kernel step, from which the report derives the "other" bucket
// (boundary reconcile, demote passes, dispatch-list rebuilds, observer).
type Worker struct {
	EvalNs   atomic.Int64
	CommitNs atomic.Int64
	SpinNs   atomic.Int64 // barrier busy-spin + yield time
	ParkNs   atomic.Int64 // barrier futex-park time
	StepNs   atomic.Int64 // participant 0 only: full Step span
	Sampled  atomic.Uint64
	Led      atomic.Uint64 // sampled cycles where this participant arrived last at the evaluate barrier (and woke the others)
	Followed atomic.Uint64 // sampled cycles where it waited for the barrier instead
	_        [64]byte
}

// RebalanceEvent records one cost-balancing repack: which cycle, how many
// units changed shard, and the shard imbalance before and after (heaviest
// shard load over mean shard load, in the sharder's cost units).
type RebalanceEvent struct {
	Cycle           uint64  `json:"cycle"`
	Migrations      uint64  `json:"migrations"`
	ImbalanceBefore float64 `json:"imbalance_before"`
	ImbalanceAfter  float64 `json:"imbalance_after"`
}

// rebalanceRing bounds the per-run rebalance log; a run that repacks more
// than this keeps the newest events (the count is exact either way).
const rebalanceRing = 64

// Mon is the attachable monitor: the kernel holds one per run and hands each
// pool participant its padded Worker slot. Allocation happens only at attach
// and (re)shard time, never per cycle.
type Mon struct {
	// Stride is the sampled-nanotime cycle stride (DefaultStride when 0).
	// Set before attaching; tests use 1 for exact accounting.
	Stride uint64

	workers []*Worker
	rebal   [rebalanceRing]RebalanceEvent
	rebalN  atomic.Uint64
}

// New returns an empty monitor with the default sampling stride.
func New() *Mon { return &Mon{} }

// EffectiveStride resolves the sampling stride.
func (m *Mon) EffectiveStride() uint64 {
	if m == nil || m.Stride == 0 {
		return DefaultStride
	}
	return m.Stride
}

// EnsureWorkers grows the per-participant slots to at least n. Driver-only,
// called at pool (re)build; existing slots keep their accumulated counts so
// stats survive reshards.
func (m *Mon) EnsureWorkers(n int) {
	for len(m.workers) < n {
		m.workers = append(m.workers, &Worker{})
	}
}

// Worker returns participant i's slot (EnsureWorkers must have covered i).
func (m *Mon) Worker(i int) *Worker { return m.workers[i] }

// Workers returns the number of allocated participant slots.
func (m *Mon) Workers() int { return len(m.workers) }

// RecordRebalance appends one repack event (driver-only, between cycles;
// the fixed ring keeps recording allocation-free).
func (m *Mon) RecordRebalance(ev RebalanceEvent) {
	if m == nil {
		return
	}
	n := m.rebalN.Load()
	m.rebal[n%rebalanceRing] = ev
	m.rebalN.Store(n + 1)
}

// rebalanceEvents returns the recorded events in chronological order.
func (m *Mon) rebalanceEvents() []RebalanceEvent {
	n := m.rebalN.Load()
	if n == 0 {
		return nil
	}
	k := n
	if k > rebalanceRing {
		k = rebalanceRing
	}
	out := make([]RebalanceEvent, 0, k)
	for i := n - k; i < n; i++ {
		out = append(out, m.rebal[i%rebalanceRing])
	}
	return out
}

// ActivityCounters is the activity engine's cumulative event census. The
// kernel fills the plain fields from the driving goroutine (its demote,
// boundary and fast-forward passes all run between cycles); wake requests
// are counted per edge with atomics because producers issue them from any
// worker mid-phase. A copy of this struct is safe to retain.
type ActivityCounters struct {
	// StepsExecuted counts cycles actually stepped (fast-forwarded cycles
	// are skipped, so StepsExecuted <= kernel cycle).
	StepsExecuted uint64 `json:"steps_executed"`
	// Parks counts units demoted off the every-cycle schedule.
	Parks uint64 `json:"parks"`
	// Activations counts parked units returned to the schedule; of those,
	// WheelActivations came from the timing wheel (self-scheduled timers)
	// rather than a producer's wake edge.
	Activations      uint64 `json:"activations"`
	WheelActivations uint64 `json:"wheel_activations"`
	// DemotePasses counts idle-scan passes over the active units.
	DemotePasses uint64 `json:"demote_passes"`
	// WheelPending is the current number of filed timing-wheel entries;
	// WheelHighWater the run's maximum.
	WheelPending   uint64 `json:"wheel_pending"`
	WheelHighWater uint64 `json:"wheel_high_water"`
	// FastForwards counts fully-quiescent spans the clock jumped over;
	// FastForwardCycles the cycles skipped across them.
	FastForwards      uint64 `json:"fast_forwards"`
	FastForwardCycles uint64 `json:"fast_forward_cycles"`
	// Wakes counts successful wake requests (a CAS that lowered a parked
	// unit's wake cycle) by producer edge.
	Wakes [NumWakeEdges]uint64 `json:"-"`
}

// TotalWakes sums the per-edge wake requests.
func (a ActivityCounters) TotalWakes() uint64 {
	var t uint64
	for _, w := range a.Wakes {
		t += w
	}
	return t
}

// WakesByEdge renders the per-edge counts keyed by edge name (for JSON;
// encoding/json sorts map keys, so output is deterministic).
func (a ActivityCounters) WakesByEdge() map[string]uint64 {
	m := make(map[string]uint64, NumWakeEdges)
	for e, n := range a.Wakes {
		m[WakeEdge(e).String()] = n
	}
	return m
}
