package perfmon

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
)

// ReportSchema identifies a RunReport JSON document (benchdiff keys its
// format detection on the prefix, so bump only the version suffix).
const ReportSchema = "scorpio-perf/v1"

// HostInfo stamps a report with the machine it ran on, so trajectories of
// reports (or benchmark baselines) taken on different hosts are never
// mistaken for same-host regressions.
type HostInfo struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	// Commit is the VCS revision baked into the binary ("unknown" when the
	// build carried no VCS stamp, e.g. `go test` binaries).
	Commit string `json:"commit"`
}

// Host reads the current process's host metadata.
func Host() HostInfo {
	h := HostInfo{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		Commit:     "unknown",
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				h.Commit = s.Value
			}
		}
	}
	return h
}

// SameHost reports whether two stamps plausibly describe the same machine
// and toolchain. Unknown fields (zero values from pre-metadata files) never
// count as a difference — absence of evidence is not a host change.
func SameHost(a, b HostInfo) bool {
	differs := func(x, y string) bool { return x != "" && y != "" && x != y }
	if a.NumCPU != 0 && b.NumCPU != 0 && a.NumCPU != b.NumCPU {
		return false
	}
	return !differs(a.GoVersion, b.GoVersion) && !differs(a.OS, b.OS) && !differs(a.Arch, b.Arch)
}

// WorkerReport is one participant's time decomposition, extrapolated from
// the sampled cycles to the whole run.
type WorkerReport struct {
	Index         int    `json:"index"`
	SampledCycles uint64 `json:"sampled_cycles"`
	EvalNs        int64  `json:"eval_ns"`
	CommitNs      int64  `json:"commit_ns"`
	SpinNs        int64  `json:"spin_ns"`
	ParkNs        int64  `json:"park_ns"`
	// OtherNs is the driver-only remainder of the step span — boundary
	// reconcile, demote passes, dispatch rebuilds, observer — zero for
	// workers.
	OtherNs int64 `json:"other_ns,omitempty"`
	// BusyFrac is (eval+commit)/(eval+commit+spin+park+other).
	BusyFrac       float64 `json:"busy_frac"`
	EpochsLed      uint64  `json:"epochs_led"`
	EpochsFollowed uint64  `json:"epochs_followed"`
}

// total sums every accounted bucket.
func (w WorkerReport) total() int64 {
	return w.EvalNs + w.CommitNs + w.SpinNs + w.ParkNs + w.OtherNs
}

// ActivityReport is the activity census plus the named per-edge wake map.
type ActivityReport struct {
	ActivityCounters
	Wakes map[string]uint64 `json:"wakes"`
}

// Report is one run's structured self-observability record — the RunReport.
type Report struct {
	Schema string `json:"schema"`
	// Label names the run (protocol/benchmark).
	Label string `json:"label,omitempty"`
	// ConfigDigest fingerprints the simulation-relevant configuration so
	// reports of different machines/workloads are never diffed silently.
	ConfigDigest string   `json:"config_digest,omitempty"`
	Host         HostInfo `json:"host"`
	// Workers is the configured worker count; Mode how the kernel actually
	// executed ("serial", "inline" or "parallel").
	Workers int    `json:"workers"`
	Mode    string `json:"mode"`
	Cycles  uint64 `json:"cycles"`
	WallNs  int64  `json:"wall_ns"`
	// CyclesPerSec is simulated cycles (fast-forwarded ones included) per
	// wall second — the engine's headline figure of merit.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	SampleStride uint64  `json:"sample_stride"`

	Activity   ActivityReport   `json:"activity"`
	Rebalances uint64           `json:"rebalances"`
	Migrations uint64           `json:"migrations"`
	Rebalance  []RebalanceEvent `json:"rebalance_events,omitempty"`
	PerWorker  []WorkerReport   `json:"per_worker"`
}

// RunInfo carries everything a report needs beyond the monitor's own
// counters; the kernel assembles it (sim.Kernel.PerfReport).
type RunInfo struct {
	Label        string
	ConfigDigest string
	Workers      int
	Mode         string
	Cycles       uint64
	WallNs       int64
	Activity     ActivityCounters
	// MonitoredSteps is the number of steps executed while the monitor was
	// attached — the extrapolation base for the sampled per-worker sums. The
	// census's StepsExecuted spans the kernel's whole lifetime, which
	// overcounts when the monitor is attached to an already-warm kernel.
	// 0 means the monitor saw every step.
	MonitoredSteps uint64
	Rebalances     uint64
	Migrations     uint64
}

// Report drains the monitor into a RunReport. Sampled per-worker sums are
// extrapolated to run totals by each worker's sampled fraction of the steps
// actually executed.
func (m *Mon) Report(info RunInfo) *Report {
	r := &Report{
		Schema:       ReportSchema,
		Label:        info.Label,
		ConfigDigest: info.ConfigDigest,
		Host:         Host(),
		Workers:      info.Workers,
		Mode:         info.Mode,
		Cycles:       info.Cycles,
		WallNs:       info.WallNs,
		SampleStride: m.EffectiveStride(),
		Activity: ActivityReport{
			ActivityCounters: info.Activity,
			Wakes:            info.Activity.WakesByEdge(),
		},
		Rebalances: info.Rebalances,
		Migrations: info.Migrations,
		Rebalance:  m.rebalanceEvents(),
	}
	if info.WallNs > 0 {
		r.CyclesPerSec = float64(info.Cycles) / (float64(info.WallNs) / 1e9)
	}
	steps := info.MonitoredSteps
	if steps == 0 {
		steps = info.Activity.StepsExecuted
	}
	for i, w := range m.workers {
		sampled := w.Sampled.Load()
		if sampled == 0 {
			continue
		}
		scale := 1.0
		if steps > sampled {
			scale = float64(steps) / float64(sampled)
		}
		ext := func(v int64) int64 { return int64(float64(v) * scale) }
		wr := WorkerReport{
			Index:          i,
			SampledCycles:  sampled,
			EvalNs:         ext(w.EvalNs.Load()),
			CommitNs:       ext(w.CommitNs.Load()),
			SpinNs:         ext(w.SpinNs.Load()),
			ParkNs:         ext(w.ParkNs.Load()),
			EpochsLed:      w.Led.Load(),
			EpochsFollowed: w.Followed.Load(),
		}
		if step := w.StepNs.Load(); step > 0 {
			if other := step - w.EvalNs.Load() - w.CommitNs.Load() - w.SpinNs.Load() - w.ParkNs.Load(); other > 0 {
				wr.OtherNs = ext(other)
			}
		}
		if t := wr.total(); t > 0 {
			wr.BusyFrac = float64(wr.EvalNs+wr.CommitNs) / float64(t)
		}
		r.PerWorker = append(r.PerWorker, wr)
	}
	return r
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseReport decodes a RunReport and verifies the schema stamp.
func ParseReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perfmon: parsing run report: %w", err)
	}
	if !strings.HasPrefix(r.Schema, "scorpio-perf/") {
		return nil, fmt.Errorf("perfmon: not a run report (schema %q)", r.Schema)
	}
	return &r, nil
}

// ms renders nanoseconds as milliseconds for the table.
func ms(ns int64) string { return fmt.Sprintf("%.1fms", float64(ns)/1e6) }

// Table renders the report as a human-readable summary.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "perf report        %s (%s, workers %d)\n", r.Label, r.Mode, r.Workers)
	fmt.Fprintf(&b, "  host             %d CPUs, GOMAXPROCS %d, %s %s/%s, commit %s\n",
		r.Host.NumCPU, r.Host.GOMAXPROCS, r.Host.GoVersion, r.Host.OS, r.Host.Arch, shortCommit(r.Host.Commit))
	fmt.Fprintf(&b, "  throughput       %d cycles in %s = %.0f cycles/s (stride %d)\n",
		r.Cycles, ms(r.WallNs), r.CyclesPerSec, r.SampleStride)
	a := r.Activity
	fmt.Fprintf(&b, "  activity         %d steps executed, %d fast-forward spans skipping %d cycles\n",
		a.StepsExecuted, a.FastForwards, a.FastForwardCycles)
	fmt.Fprintf(&b, "                   %d parks, %d activations (%d from timers), %d demote passes, wheel high-water %d\n",
		a.Parks, a.Activations, a.WheelActivations, a.DemotePasses, a.WheelHighWater)
	edges := make([]string, 0, len(a.Wakes))
	for e, n := range a.Wakes {
		if n > 0 {
			edges = append(edges, fmt.Sprintf("%s %d", e, n))
		}
	}
	sort.Strings(edges)
	if len(edges) > 0 {
		fmt.Fprintf(&b, "  wakes            %s\n", strings.Join(edges, ", "))
	}
	if r.Rebalances > 0 || r.Workers > 1 {
		fmt.Fprintf(&b, "  balance          %d rebalances, %d unit migrations\n", r.Rebalances, r.Migrations)
		for _, ev := range r.Rebalance {
			fmt.Fprintf(&b, "                   cycle %d: %d migrated, imbalance %.2f -> %.2f\n",
				ev.Cycle, ev.Migrations, ev.ImbalanceBefore, ev.ImbalanceAfter)
		}
	}
	if len(r.PerWorker) > 0 {
		fmt.Fprintf(&b, "  %-8s %10s %10s %10s %10s %10s %6s %12s\n",
			"worker", "eval", "commit", "spin", "park", "other", "busy", "led/followed")
		for _, w := range r.PerWorker {
			fmt.Fprintf(&b, "  %-8d %10s %10s %10s %10s %10s %5.0f%% %6d/%d\n",
				w.Index, ms(w.EvalNs), ms(w.CommitNs), ms(w.SpinNs), ms(w.ParkNs), ms(w.OtherNs),
				100*w.BusyFrac, w.EpochsLed, w.EpochsFollowed)
		}
	}
	return b.String()
}

// shortCommit abbreviates a VCS revision for the table.
func shortCommit(c string) string {
	if len(c) > 12 {
		return c[:12]
	}
	return c
}
