package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerRecordNoAlloc(t *testing.T) {
	tr := NewTracer(1 << 12)
	e := Event{Cycle: 1, Type: EvInject, Node: 3, Pkt: 42, Src: 3}
	per := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.Cycle++
			tr.Record(e)
		}
	})
	if per != 0 {
		t.Fatalf("Record allocates %.1f times per 64 events; want 0", per)
	}
}

func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{Type: EvInject}) // must not panic
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer should hold nothing")
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 20; i++ {
		tr.Record(Event{Cycle: uint64(i), Type: EvSink})
	}
	if got := tr.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8 (ring capacity)", got)
	}
	ev := tr.Events()
	// Oldest surviving event is cycle 12 (20 recorded, 8 kept).
	for i, e := range ev {
		if want := uint64(12 + i); e.Cycle != want {
			t.Fatalf("event %d has cycle %d, want %d", i, e.Cycle, want)
		}
	}
	if tr.Recorded.Value != 20 {
		t.Fatalf("Recorded = %d, want 20", tr.Recorded.Value)
	}
	if tr.Dropped.Value != 12 {
		t.Fatalf("Dropped = %d, want 12", tr.Dropped.Value)
	}
}

// TestChromeTraceAfterWrap pins the export path once the ring has
// overwritten events: only the surviving window is emitted, and the metadata
// block reports the loss so tracecheck/traceq can flag the trace as lossy.
func TestChromeTraceAfterWrap(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 20; i++ {
		tr.Record(Event{Cycle: uint64(i), Type: EvSink, Node: 1, Src: 0, Pkt: uint64(100 + i)})
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Ts uint64 `json:"ts"`
			Ph string `json:"ph"`
		} `json:"traceEvents"`
		Metadata struct {
			RecordedEvents uint64 `json:"recordedEvents"`
			DroppedEvents  uint64 `json:"droppedEvents"`
		} `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("wrapped trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed.TraceEvents) != 8 {
		t.Fatalf("exported %d events after wrap, want the 8 survivors", len(parsed.TraceEvents))
	}
	for i, e := range parsed.TraceEvents {
		if want := uint64(12 + i); e.Ts != want {
			t.Fatalf("event %d exported at ts=%d, want %d (oldest survivor first)", i, e.Ts, want)
		}
	}
	if parsed.Metadata.RecordedEvents != 20 || parsed.Metadata.DroppedEvents != 12 {
		t.Fatalf("metadata = %+v, want recordedEvents=20 droppedEvents=12", parsed.Metadata)
	}
}

func TestEventTypeNames(t *testing.T) {
	for ty := EventType(0); ty < numEventTypes; ty++ {
		if ty.String() == "" || ty.String() == "unknown" {
			t.Fatalf("event type %d has no name", ty)
		}
	}
	if EventType(200).String() != "unknown" {
		t.Fatal("out-of-range type should stringify as unknown")
	}
}

// chromeTrace mirrors the subset of the Chrome trace-event format the
// exporter emits, enough to validate it parses and is reconstructable.
type chromeTrace struct {
	TraceEvents []struct {
		Name string           `json:"name"`
		Ph   string           `json:"ph"`
		Ts   uint64           `json:"ts"`
		Pid  int              `json:"pid"`
		ID   uint64           `json:"id"`
		Args map[string]int64 `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(64)
	// One full packet lifecycle plus a global notification window.
	tr.Record(Event{Cycle: 10, Type: EvInject, Node: 0, Src: 0, Pkt: 7, Arg: 1})
	tr.Record(Event{Cycle: 11, Type: EvBufWrite, Node: 1, Src: 0, Pkt: 7, Port: 3, VNet: 0, VC: 0})
	tr.Record(Event{Cycle: 12, Type: EvSAGrant, Node: 1, Src: 0, Pkt: 7, Port: 1})
	tr.Record(Event{Cycle: 13, Type: EvNotifWindow, Node: -1, Src: -1, Arg: 3})
	tr.Record(Event{Cycle: 15, Type: EvOrderCommit, Node: 2, Src: 0, Pkt: 7, Arg: 0})
	tr.Record(Event{Cycle: 15, Type: EvSink, Node: 2, Src: 0, Pkt: 7})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed.TraceEvents) != 6+2 {
		t.Fatalf("got %d trace events, want 6 instants + 2 span markers", len(parsed.TraceEvents))
	}
	var begin, end bool
	for _, e := range parsed.TraceEvents {
		switch e.Ph {
		case "b":
			begin = true
			if e.Ts != 10 || e.ID != 7 {
				t.Fatalf("span begin at ts=%d id=%d, want ts=10 id=7", e.Ts, e.ID)
			}
		case "e":
			end = true
			if e.Ts != 15 || e.ID != 7 {
				t.Fatalf("span end at ts=%d id=%d, want ts=15 id=7", e.Ts, e.ID)
			}
		}
	}
	if !begin || !end {
		t.Fatal("packet 7 span (ph b/e) missing from trace")
	}
}

func TestMetrics(t *testing.T) {
	m := NewMetrics(100, []string{"injected", "ejected"})
	if m.Due(50) {
		t.Fatal("Due(50) with interval 100")
	}
	if !m.Due(200) {
		t.Fatal("!Due(200) with interval 100")
	}
	m.Add(100, []float64{3, 2})
	m.Add(200, []float64{5, 4})
	if m.Samples() != 2 {
		t.Fatalf("Samples = %d, want 2", m.Samples())
	}

	var csv bytes.Buffer
	if err := m.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	want := "cycle,injected,ejected\n100,3,2\n200,5,4\n"
	if csv.String() != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", csv.String(), want)
	}

	m.SetHeatmap(2, 1, []float64{0.1, 0.9})
	var js bytes.Buffer
	if err := m.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]interface{}
	if err := json.Unmarshal(js.Bytes(), &parsed); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, js.String())
	}
	if _, ok := parsed["heatmap"]; !ok {
		t.Fatal("metrics JSON missing heatmap")
	}
	hm := m.Heatmap()
	if !strings.Contains(hm, "@") {
		t.Fatalf("heatmap should mark the hot router with '@':\n%s", hm)
	}

	var nilM *Metrics
	if nilM.Due(100) || nilM.Samples() != 0 || nilM.Heatmap() != "" {
		t.Fatal("nil metrics should be inert")
	}
}

func TestWatchdog(t *testing.T) {
	delivered, inflight := uint64(0), true
	snapCalls := 0
	w := NewWatchdog(10,
		func() (uint64, bool) { return delivered, inflight },
		func() string { snapCalls++; return "SNAPSHOT: router 3 UO-RESP vc1" })

	// Progress every few cycles: never trips.
	for c := uint64(0); c < 100; c++ {
		if c%5 == 0 {
			delivered++
		}
		w.Observe(c)
	}
	if w.Stalled() {
		t.Fatal("watchdog tripped despite steady progress")
	}

	// Quiescent (nothing in flight): never trips.
	inflight = false
	for c := uint64(100); c < 200; c++ {
		w.Observe(c)
	}
	if w.Stalled() {
		t.Fatal("watchdog tripped while network was empty")
	}

	// Stall: in-flight packets, no deliveries.
	inflight = true
	for c := uint64(200); c < 300 && !w.Stalled(); c++ {
		w.Observe(c)
	}
	if !w.Stalled() {
		t.Fatal("watchdog failed to trip on a genuine stall")
	}
	if snapCalls != 1 {
		t.Fatalf("snapshot taken %d times, want exactly once", snapCalls)
	}
	if !strings.Contains(w.Report(), "router 3") {
		t.Fatalf("report should embed the snapshot, got:\n%s", w.Report())
	}
	if !strings.Contains(w.Report(), "no ejections for") {
		t.Fatalf("report should diagnose the stall, got:\n%s", w.Report())
	}

	// Zero threshold and nil receiver are inert.
	if NewWatchdog(0, nil, nil) != nil {
		t.Fatal("threshold 0 should yield a nil watchdog")
	}
	var nw *Watchdog
	nw.Observe(1)
	if nw.Stalled() || nw.Report() != "" {
		t.Fatal("nil watchdog should be inert")
	}
}
