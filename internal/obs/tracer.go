package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"

	"scorpio/internal/stats"
)

// Tracer records lifecycle events into a preallocated ring buffer. A nil
// *Tracer is inert: Record on a nil receiver returns immediately, and every
// component additionally guards its hook sites with an explicit nil check so
// the disabled path is a single branch with no call.
//
// Record is safe for concurrent use — the parallel kernel's workers trace
// from multiple goroutines — and never allocates: the ring is sized up
// front and, when full, overwrites the oldest events while counting the
// loss in Dropped.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	next   int  // ring write cursor
	full   bool // ring has wrapped at least once

	// Recorded counts every event accepted; Dropped counts ring
	// overwrites (events lost from the front of the window).
	Recorded stats.Counter
	Dropped  stats.Counter
}

// NewTracer returns a tracer with a ring of the given capacity
// (DefaultTraceCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		events:   make([]Event, capacity),
		Recorded: stats.Counter{Name: "trace_events_recorded"},
		Dropped:  stats.Counter{Name: "trace_events_dropped"},
	}
}

// Record appends one event. Safe on a nil receiver.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.full {
		t.Dropped.Inc()
	}
	t.events[t.next] = e
	t.next++
	if t.next == len(t.events) {
		t.next = 0
		t.full = true
	}
	t.Recorded.Inc()
	t.mu.Unlock()
}

// Len reports the number of events currently held (≤ ring capacity).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.events)
	}
	return t.next
}

// Events returns a copy of the buffered events in recording order (oldest
// first). The copy allocates; call it only after the run.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.events[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// WriteChromeTrace emits the buffered events as Chrome trace-event JSON
// ({"traceEvents":[...]}), loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Cycles map 1:1 to microseconds so Perfetto's time axis
// reads directly in simulated cycles.
//
// Each lifecycle event becomes an instant event (ph "i") on the track of
// the node it happened at; in addition, every packet with both an inject
// and a terminal (sink/order-commit) event gets an async span (ph "b"/"e",
// id = packet ID) so a transaction's full network journey shows as one bar.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	// Total order over every field. Under the parallel kernel, worker
	// interleaving shuffles the recording order of events from different
	// components within a cycle; a full-field comparison makes the exported
	// trace byte-identical across worker counts (the event-type enum is in
	// lifecycle order, so intra-cycle ordering stays causal per node).
	sort.Slice(events, func(i, j int) bool {
		a, b := &events[i], &events[j]
		switch {
		case a.Cycle != b.Cycle:
			return a.Cycle < b.Cycle
		case a.Node != b.Node:
			return a.Node < b.Node
		case a.Type != b.Type:
			return a.Type < b.Type
		case a.Pkt != b.Pkt:
			return a.Pkt < b.Pkt
		case a.Port != b.Port:
			return a.Port < b.Port
		case a.VNet != b.VNet:
			return a.VNet < b.VNet
		case a.VC != b.VC:
			return a.VC < b.VC
		default:
			return a.Arg < b.Arg
		}
	})

	// Packet span bounds: first inject and last terminal event per packet.
	type span struct {
		start, end uint64
		node       int32
		hasStart   bool
		hasEnd     bool
	}
	spans := make(map[uint64]*span)
	for i := range events {
		e := &events[i]
		if e.Pkt == 0 {
			continue
		}
		s := spans[e.Pkt]
		if s == nil {
			s = &span{}
			spans[e.Pkt] = s
		}
		switch e.Type {
		case EvInject:
			if !s.hasStart || e.Cycle < s.start {
				s.start = e.Cycle
				s.node = e.Node
				s.hasStart = true
			}
		case EvSink, EvOrderCommit:
			if !s.hasEnd || e.Cycle >= s.end {
				s.end = e.Cycle
				s.hasEnd = true
			}
		}
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...interface{}) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	for i := range events {
		e := &events[i]
		emit(`{"name":%q,"ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t","args":{"pkt":%d,"src":%d,"port":%d,"vnet":%d,"vc":%d,"arg":%d}}`,
			e.Type.String(), e.Cycle, e.Node, e.VNet+1, e.Pkt, e.Src, e.Port, e.VNet, e.VC, e.Arg)
	}
	// Async spans: one begin/end pair per fully observed packet.
	pkts := make([]uint64, 0, len(spans))
	for pkt, s := range spans {
		if s.hasStart && s.hasEnd && s.end >= s.start {
			pkts = append(pkts, pkt)
		}
	}
	sort.Slice(pkts, func(i, j int) bool { return pkts[i] < pkts[j] })
	for _, pkt := range pkts {
		s := spans[pkt]
		emit(`{"name":"pkt","cat":"pkt","ph":"b","ts":%d,"pid":%d,"id":%d,"args":{"pkt":%d}}`,
			s.start, s.node, pkt, pkt)
		emit(`{"name":"pkt","cat":"pkt","ph":"e","ts":%d,"pid":%d,"id":%d}`,
			s.end, s.node, pkt)
	}
	// Trailing metadata records ring losses so consumers (tracecheck,
	// traceq) can tell when span reconstruction is lossy. Perfetto ignores
	// unknown top-level keys.
	if _, err := fmt.Fprintf(bw, "\n],\"metadata\":{\"recordedEvents\":%d,\"droppedEvents\":%d}}\n",
		t.Recorded.Value, t.Dropped.Value); err != nil {
		return err
	}
	return bw.Flush()
}
