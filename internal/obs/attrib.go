package obs

import (
	"fmt"
	"strings"
	"sync"

	"scorpio/internal/stats"
)

// attribGeometry matches the canonical service-latency histogram geometry
// used across the simulator so distributions stay mergeable/comparable.
const (
	attribBucketWidth = 4
	attribBuckets     = 512
)

// Attribution decomposes every completed miss into the paper's Figure 10/11
// latency segments and keeps a full stats.Histogram per component (where
// stats.Breakdown keeps only means), separately for cache-to-cache and
// memory-served misses. A nil *Attribution is inert; Observe is
// mutex-guarded because completions fire from parallel kernel workers.
type Attribution struct {
	mu         sync.Mutex
	cache      [stats.NumBreakdownComponents]*stats.Histogram
	mem        [stats.NumBreakdownComponents]*stats.Histogram
	cacheTotal *stats.Histogram
	memTotal   *stats.Histogram
}

// NewAttribution returns an attributor with empty per-component histograms.
func NewAttribution() *Attribution {
	a := &Attribution{
		cacheTotal: stats.NewHistogram(attribBucketWidth, attribBuckets),
		memTotal:   stats.NewHistogram(attribBucketWidth, attribBuckets),
	}
	for i := range a.cache {
		a.cache[i] = stats.NewHistogram(attribBucketWidth, attribBuckets)
		a.mem[i] = stats.NewHistogram(attribBucketWidth, attribBuckets)
	}
	return a
}

// Observe records one miss's per-segment latencies (cycles), indexed by
// stats.BreakdownComponent. Safe on a nil receiver and allocation-free.
func (a *Attribution) Observe(servedByCache bool, segs *[stats.NumBreakdownComponents]uint64) {
	if a == nil || segs == nil {
		return
	}
	a.mu.Lock()
	set, tot := &a.cache, a.cacheTotal
	if !servedByCache {
		set, tot = &a.mem, a.memTotal
	}
	var sum uint64
	for i, v := range segs {
		set[i].Observe(v)
		sum += v
	}
	tot.Observe(sum)
	a.mu.Unlock()
}

// Component returns the histogram for one segment of the chosen service
// class. Callers must not mutate it while the run is live.
func (a *Attribution) Component(servedByCache bool, c stats.BreakdownComponent) *stats.Histogram {
	if a == nil {
		return nil
	}
	if servedByCache {
		return a.cache[c]
	}
	return a.mem[c]
}

// Total returns the end-to-end miss latency histogram for the chosen
// service class.
func (a *Attribution) Total(servedByCache bool) *stats.Histogram {
	if a == nil {
		return nil
	}
	if servedByCache {
		return a.cacheTotal
	}
	return a.memTotal
}

// Misses reports the observed miss counts (cache-served, memory-served).
func (a *Attribution) Misses() (cache, mem uint64) {
	if a == nil {
		return 0, 0
	}
	return a.cacheTotal.Count(), a.memTotal.Count()
}

// Table renders the Figure 10/11-style attribution: one row per breakdown
// component with mean/p50/p99/max and its share of the summed latency, for
// each service class with observations. Returns "" when nothing was seen.
func (a *Attribution) Table() string {
	if a == nil {
		return ""
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var sb strings.Builder
	render := func(label string, set *[stats.NumBreakdownComponents]*stats.Histogram, tot *stats.Histogram) {
		if tot.Count() == 0 {
			return
		}
		var rows [][]string
		for c := 0; c < stats.NumBreakdownComponents; c++ {
			h := set[c]
			if h.Count() == 0 || h.Sum() == 0 {
				continue
			}
			share := 0.0
			if tot.Sum() > 0 {
				share = 100 * float64(h.Sum()) / float64(tot.Sum())
			}
			rows = append(rows, []string{
				stats.BreakdownComponent(c).String(),
				fmt.Sprintf("%.1f", h.Mean()),
				fmt.Sprintf("%d", h.Percentile(50)),
				fmt.Sprintf("%d", h.Percentile(99)),
				fmt.Sprintf("%d", h.Max()),
				fmt.Sprintf("%.1f%%", share),
			})
		}
		rows = append(rows, []string{
			"total",
			fmt.Sprintf("%.1f", tot.Mean()),
			fmt.Sprintf("%d", tot.Percentile(50)),
			fmt.Sprintf("%d", tot.Percentile(99)),
			fmt.Sprintf("%d", tot.Max()),
			"100%",
		})
		sb.WriteString(stats.Table(
			fmt.Sprintf("%s (%d misses)", label, tot.Count()),
			[]string{"component", "mean", "p50", "p99", "max", "share"},
			rows))
	}
	render("latency attribution — cache-to-cache", &a.cache, a.cacheTotal)
	if sb.Len() > 0 && a.memTotal.Count() > 0 {
		sb.WriteByte('\n')
	}
	render("latency attribution — memory-served", &a.mem, a.memTotal)
	return sb.String()
}
