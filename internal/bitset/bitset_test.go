package bitset

import "testing"

func TestSetBasics(t *testing.T) {
	s := New(130) // three words, last one partial
	if s.Any() || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	for _, b := range []int{0, 63, 64, 100, 129} {
		s.Add(b)
		if !s.Test(b) {
			t.Fatalf("bit %d not set after Add", b)
		}
	}
	if got := s.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	s.Remove(64)
	if s.Test(64) || s.Count() != 4 {
		t.Fatal("Remove(64) did not clear the bit")
	}
	if s.Test(500) {
		t.Fatal("Test outside the universe must read false")
	}
}

func TestSetNextAscending(t *testing.T) {
	s := New(200)
	want := []int{3, 63, 64, 65, 127, 128, 199}
	for _, b := range want {
		s.Add(b)
	}
	var got []int
	for b := s.Next(0); b >= 0; b = s.Next(b + 1) {
		got = append(got, b)
	}
	if len(got) != len(want) {
		t.Fatalf("walked %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walked %v, want %v", got, want)
		}
	}
	if s.Next(200) != -1 || s.Next(-5) != 3 {
		t.Fatal("Next boundary handling wrong")
	}
}

func TestSetOnlyAndReset(t *testing.T) {
	s := New(100)
	s.Add(10)
	s.Add(90)
	s.SetOnly(70)
	if s.Count() != 1 || !s.Test(70) {
		t.Fatalf("SetOnly left %d bits, first=%d", s.Count(), s.Next(0))
	}
	s.Reset()
	if s.Any() {
		t.Fatal("Reset left bits set")
	}
	var zero Set
	if zero.Any() || zero.Count() != 0 || zero.Next(0) != -1 || zero.Test(3) {
		t.Fatal("zero-value Set must behave as empty")
	}
}
