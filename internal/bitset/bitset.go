// Package bitset provides a fixed-capacity multi-word bit set used for
// sharer tracking in the directory homes and the auditor's MOSI shadow.
// It replaces the single-uint64 masks that capped those structures at 64
// nodes; iteration remains a deterministic ascending-bit walk, so the
// protocol actions derived from it (invalidation order, stale-sharer scans)
// stay bit-for-bit reproducible at any machine size.
package bitset

import "math/bits"

// Set is a bit set over a fixed universe chosen at New time. The zero value
// is an empty set over an empty universe: Test/Count/Any/Next are safe on
// it, Add and Remove are not.
type Set []uint64

// New returns an empty set able to hold bits [0, n).
func New(n int) Set {
	return make(Set, (n+63)/64)
}

// Add sets bit i.
func (s Set) Add(i int) { s[i>>6] |= 1 << uint(i&63) }

// Remove clears bit i.
func (s Set) Remove(i int) { s[i>>6] &^= 1 << uint(i&63) }

// Test reports whether bit i is set. Bits outside the universe read false.
func (s Set) Test(i int) bool {
	w := i >> 6
	return w < len(s) && s[w]&(1<<uint(i&63)) != 0
}

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (s Set) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// Reset clears every bit.
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// SetOnly resets the set to contain exactly bit i.
func (s Set) SetOnly(i int) {
	s.Reset()
	s.Add(i)
}

// Next returns the smallest set bit >= i, or -1 when none remains. The
// ascending order makes loops over a set deterministic:
//
//	for b := s.Next(0); b >= 0; b = s.Next(b + 1) { ... }
func (s Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	w := i >> 6
	if w >= len(s) {
		return -1
	}
	if word := s[w] >> uint(i&63); word != 0 {
		return i + bits.TrailingZeros64(word)
	}
	for w++; w < len(s); w++ {
		if s[w] != 0 {
			return w<<6 + bits.TrailingZeros64(s[w])
		}
	}
	return -1
}
