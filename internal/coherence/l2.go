package coherence

import (
	"fmt"

	"scorpio/internal/cache"
	"scorpio/internal/noc"
	"scorpio/internal/obs"
	"scorpio/internal/obs/audit"
	"scorpio/internal/stats"
)

// Config holds the L2 controller parameters.
type Config struct {
	// CapacityBytes/LineBytes/Ways describe the array (chip: 128KB/32B/4).
	CapacityBytes int
	LineBytes     int
	Ways          int
	// HitLatency is the L2 data-access latency in cycles (10, per the
	// GEMS-matched model in Section 5).
	HitLatency int
	// SnoopTagLatency is the tag-only lookup cost for snoops that miss.
	SnoopTagLatency int
	// NonPLOccupancy is the per-snoop occupancy of the non-pipelined
	// controller (Figure 10's Non-PL); the pipelined one accepts one per
	// cycle.
	NonPLOccupancy int
	// Pipelined selects the fully pipelined L2 of Section 5.3; when false
	// the controller accepts one ordered request per occupancy period
	// (Figure 10's Non-PL configuration).
	Pipelined bool
	// MSHRs bounds outstanding misses (2 on the chip per the AHB interface,
	// 16 in the paper's GEMS runs).
	MSHRs int
	// FIDCapacity bounds each write MSHR's forwarding-ID list (2).
	FIDCapacity int
	// UseRegionTracker enables the snoop filter (Table 1: 4KB regions, 128
	// entries).
	UseRegionTracker bool
	RegionBytes      int
	RegionEntries    int
	// CoreQueueDepth bounds buffered core requests.
	CoreQueueDepth int
	// DataFlits is the flit count of data responses (from the NoC config).
	DataFlits int
}

// DefaultConfig returns the chip's L2 parameters.
func DefaultConfig() Config {
	return Config{
		CapacityBytes:    128 * 1024,
		LineBytes:        32,
		Ways:             4,
		HitLatency:       10,
		SnoopTagLatency:  2,
		NonPLOccupancy:   4,
		Pipelined:        true,
		MSHRs:            2,
		FIDCapacity:      2,
		UseRegionTracker: true,
		RegionBytes:      4096,
		RegionEntries:    128,
		CoreQueueDepth:   4,
		DataFlits:        3,
	}
}

// Completion reports a finished core request to the trace injector.
type Completion struct {
	Addr          uint64
	Write         bool
	Value         uint64 // value read (loads) or written (stores)
	Issue         uint64
	Done          uint64
	Hit           bool
	ServedByCache bool // for misses: cache-to-cache vs memory
	SelfServed    bool // upgrade satisfied by the tile's own owned line
	Breakdown     [stats.NumBreakdownComponents]uint64
}

// Stats counts protocol activity.
type Stats struct {
	CoreReads      uint64
	CoreWrites     uint64
	Hits           uint64
	Misses         uint64
	SnoopsSeen     uint64
	SnoopsFiltered uint64
	SnoopResponses uint64
	FIDDeferrals   uint64
	FIDStalls      uint64
	Writebacks     uint64
	StalePutM      uint64
	Invalidations  uint64
	ServiceLatency stats.Mean // issue→done for all core requests
	MissLatency    stats.Mean
}

// fid is one deferred snoop awaiting our in-flight write (SID + request
// entry ID, Section 4.2).
type fid struct {
	src   int
	reqID uint64
	kind  Kind
}

// mshr tracks one outstanding miss.
type mshr struct {
	active           bool
	addr             uint64
	write            bool
	issue            uint64
	reqID            uint64
	pkt              *noc.Packet
	wantInject       bool
	ordered          bool
	orderedCycle     uint64
	arriveSelf       uint64
	dataArrived      bool
	dataCycle        uint64
	resp             RespInfo
	value            uint64 // value being written (write misses)
	selfServed       bool
	invalidateOnFill bool
	fids             []fid
	fidClosed        bool
}

// wbEntry tracks one dirty-line writeback in flight.
type wbEntry struct {
	addr        uint64
	value       uint64
	reqID       uint64
	pkt         *noc.Packet
	wantInject  bool
	putmOrdered bool
	hijacked    bool // a GetX took ownership before our PutM was ordered
	awaitAck    bool
}

// pendingSend is a scheduled response injection.
type pendingSend struct {
	readyAt uint64
	pkt     *noc.Packet
	resp    *RespInfo // stamped with RespSent when injected
}

// coreReq is a buffered request from the core/trace injector.
type coreReq struct {
	addr  uint64
	write bool
	value uint64
	issue uint64
}

// L2Controller is the tile's snoopy protocol engine. It implements the
// split agent interface (CanAcceptOrdered/ProcessOrdered/AcceptResponse)
// composed into a nic.Agent by the system layer, and sim.Component.
type L2Controller struct {
	cfg    Config
	node   int
	nic    NetPort
	newID  func() uint64
	memMap MemMap
	arr    *cache.Array
	rt     *cache.RegionTracker
	// InvalidateL1 is called whenever inclusion removes a line (optional).
	InvalidateL1 func(addr uint64)
	// OnComplete receives finished core requests.
	OnComplete func(Completion)

	values     map[uint64]uint64 // per-line data (modelled as one word)
	mshrs      []mshr
	wbs        []*wbEntry
	sendQ      []pendingSend
	coreQ      []coreReq
	stagedCore []coreReq
	now        uint64 // cycle of the last Evaluate (idle-check reference)
	busyUntil  uint64
	reqIDNext  uint64
	Stats      Stats
	// tracer is nil unless lifecycle tracing is enabled; auditor likewise
	// shadows every cache-array state change when auditing is on.
	tracer  *obs.Tracer
	auditor *audit.Auditor
}

// SetTracer attaches a lifecycle event tracer (nil disables tracing).
func (l *L2Controller) SetTracer(t *obs.Tracer) { l.tracer = t }

// SetAuditor attaches the online auditor (nil disables auditing).
func (l *L2Controller) SetAuditor(a *audit.Auditor) { l.auditor = a }

// auditState mirrors one array-state mutation into the auditor's MOSI
// shadow.
func (l *L2Controller) auditState(addr uint64, st State, cycle uint64) {
	var as audit.LineState
	switch st {
	case Shared:
		as = audit.LineShared
	case OwnedDirty:
		as = audit.LineOwned
	case Modified:
		as = audit.LineModified
	default:
		as = audit.LineInvalid
	}
	l.auditor.LineState(l.node, addr, as, cycle)
}

// NewL2 builds a controller for the given node.
func NewL2(node int, cfg Config, n NetPort, newID func() uint64, mm MemMap) *L2Controller {
	l := &L2Controller{
		cfg:    cfg,
		node:   node,
		nic:    n,
		newID:  newID,
		memMap: mm,
		arr:    cache.NewArrayBytes(cfg.CapacityBytes, cfg.LineBytes, cfg.Ways),
		// values converges to roughly the cache's line count (plus lines seen
		// and evicted); pre-size it so warm-up growth is cheap.
		values: make(map[uint64]uint64, cfg.CapacityBytes/cfg.LineBytes*2),
		mshrs:  make([]mshr, cfg.MSHRs),
	}
	if cfg.UseRegionTracker {
		l.rt = cache.NewRegionTracker(cfg.RegionBytes, cfg.LineBytes, cfg.RegionEntries)
	}
	return l
}

// Node returns the tile ID.
func (l *L2Controller) Node() int { return l.node }

// Array exposes the L2 array (tests, stats).
func (l *L2Controller) Array() *cache.Array { return l.arr }

// RegionTracker exposes the snoop filter (may be nil).
func (l *L2Controller) RegionTracker() *cache.RegionTracker { return l.rt }

// ValueOf reports the tracked data value of a resident line (0 if absent).
func (l *L2Controller) ValueOf(addr uint64) uint64 { return l.values[addr] }

// LineState reports the coherence state of a line (tests).
func (l *L2Controller) LineState(addr uint64) State {
	if ln := l.arr.Lookup(addr); ln != nil {
		return State(ln.State)
	}
	return Invalid
}

// Outstanding reports the number of active MSHRs.
func (l *L2Controller) Outstanding() int {
	n := 0
	for i := range l.mshrs {
		if l.mshrs[i].active {
			n++
		}
	}
	return n
}

// CoreRequest offers a memory request from the core/trace injector; addr is
// a line address (the AHB adapter in front of the controller performs the
// byte-to-line conversion). It reports false when the request queue is full
// (the injector retries). The request is visible to the controller from the
// next cycle.
func (l *L2Controller) CoreRequest(addr uint64, write bool, cycle uint64) bool {
	return l.CoreAccess(addr, write, 0, cycle)
}

// CoreAccess is CoreRequest with an explicit data value for stores; reads
// report the observed value through Completion.Value. The consistency
// verification suite (internal/litmus) uses it.
func (l *L2Controller) CoreAccess(addr uint64, write bool, value uint64, cycle uint64) bool {
	if len(l.coreQ)+len(l.stagedCore) >= l.cfg.CoreQueueDepth {
		return false
	}
	l.stagedCore = append(l.stagedCore, coreReq{addr: addr, write: write, value: value, issue: cycle})
	return true
}

// CanAcceptOrdered reports whether the controller can consume an ordered
// request this cycle (occupancy model for the Non-PL configuration).
func (l *L2Controller) CanAcceptOrdered(cycle uint64) bool {
	return l.cfg.Pipelined || cycle >= l.busyUntil
}

// charge models controller occupancy.
func (l *L2Controller) charge(cycle uint64, cost int) {
	if !l.cfg.Pipelined {
		l.busyUntil = cycle + uint64(cost)
	}
}

// ProcessOrdered consumes one globally ordered request; it returns false to
// stall the ordered stream (FID list full).
func (l *L2Controller) ProcessOrdered(p *noc.Packet, arrive, cycle uint64) bool {
	kind := Kind(p.Kind)
	if p.Src == l.node {
		l.processOwnOrdered(p, kind, arrive, cycle)
		return true
	}
	l.Stats.SnoopsSeen++
	// Snoop against an outstanding miss to the same line.
	if m := l.findMSHR(p.Addr); m != nil && m.ordered {
		switch {
		case m.write && !m.fidClosed && kind != PutM:
			if len(m.fids) >= l.cfg.FIDCapacity {
				l.Stats.FIDStalls++
				return false
			}
			m.fids = append(m.fids, fid{src: p.Src, reqID: p.ReqID, kind: kind})
			if kind == GetX {
				m.fidClosed = true
			}
			l.Stats.FIDDeferrals++
			l.charge(cycle, 1)
			return true
		case m.write && m.fidClosed:
			// Ownership already promised onward; the next writer serves this.
			l.charge(cycle, 1)
			return true
		case !m.write:
			if kind == GetX {
				m.invalidateOnFill = true
			}
			l.charge(cycle, 1)
			return true
		}
	}
	// Snoop against an in-flight writeback (still the dirty owner until the
	// PutM is ordered).
	if wb := l.findWB(p.Addr); wb != nil && !wb.putmOrdered && !wb.hijacked && kind != PutM {
		l.respondData(p, arrive, cycle, cycle+uint64(l.cfg.HitLatency), wb.value)
		if kind == GetX {
			wb.hijacked = true
		}
		l.charge(cycle, l.cfg.NonPLOccupancy)
		return true
	}
	// Destination filtering: a region-tracker miss answers the snoop with no
	// L2 lookup.
	if kind != PutM && l.rt != nil && !l.rt.MayBeCached(p.Addr) {
		l.Stats.SnoopsFiltered++
		l.charge(cycle, 1)
		return true
	}
	// Stable-state snoop.
	ln := l.arr.Lookup(p.Addr)
	st := Invalid
	if ln != nil {
		st = State(ln.State)
	}
	switch kind {
	case GetS:
		if st.owner() {
			l.respondData(p, arrive, cycle, cycle+uint64(l.cfg.HitLatency), l.values[p.Addr])
			ln.State = int(OwnedDirty)
			if l.auditor != nil {
				l.auditState(p.Addr, OwnedDirty, cycle)
			}
			l.charge(cycle, l.cfg.NonPLOccupancy)
			return true
		}
	case GetX:
		if st.owner() {
			l.respondData(p, arrive, cycle, cycle+uint64(l.cfg.HitLatency), l.values[p.Addr])
			l.invalidateLine(p.Addr, cycle)
			l.charge(cycle, l.cfg.NonPLOccupancy)
			return true
		}
		if st == Shared {
			l.invalidateLine(p.Addr, cycle)
		}
	case PutM:
		// Another tile's writeback: nothing to do.
	}
	l.charge(cycle, l.cfg.SnoopTagLatency)
	return true
}

// processOwnOrdered handles the tile's own request reaching its global
// position.
func (l *L2Controller) processOwnOrdered(p *noc.Packet, kind Kind, arrive, cycle uint64) {
	if kind == PutM {
		wb := l.findWBByReq(p.ReqID)
		if wb == nil {
			panic(fmt.Sprintf("coherence: node %d saw own PutM for unknown reqID %d", l.node, p.ReqID))
		}
		wb.putmOrdered = true
		if wb.hijacked {
			// Ownership moved on before the PutM was ordered; the memory
			// controller ignores the stale PutM and no data is sent.
			l.Stats.StalePutM++
			l.freeWB(wb)
			return
		}
		// Send the dirty data to the line's home memory controller.
		data := &noc.Packet{
			ID: l.newID(), VNet: noc.UOResp, Src: l.node, Dst: l.memMap.HomeMC(p.Addr),
			Kind: int(WBData), Addr: p.Addr, ReqID: p.ReqID, Flits: l.cfg.DataFlits, InjectCycle: cycle,
			Payload: &RespInfo{Value: wb.value},
		}
		l.sendQ = append(l.sendQ, pendingSend{readyAt: cycle + uint64(l.cfg.HitLatency), pkt: data})
		wb.awaitAck = true
		return
	}
	m := l.findMSHRByReq(p.ReqID)
	if m == nil {
		panic(fmt.Sprintf("coherence: node %d saw own %s for unknown reqID %d", l.node, kind, p.ReqID))
	}
	m.ordered = true
	m.orderedCycle = cycle
	m.arriveSelf = arrive
	if m.write {
		// An upgrade from an owned state self-serves the data.
		if st := l.LineState(m.addr); st.owner() {
			m.dataArrived = true
			m.dataCycle = cycle
			m.resp.Value = l.values[m.addr]
			m.selfServed = true
		}
	}
}

// respondData schedules a cache-to-cache data response for an ordered snoop.
func (l *L2Controller) respondData(p *noc.Packet, arrive, cycle, readyAt uint64, value uint64) {
	resp := &RespInfo{
		Value:         value,
		ServedByCache: true,
		ReqArrive:     arrive,
		ReqOrdered:    cycle,
		Service:       readyAt - cycle,
	}
	pkt := &noc.Packet{
		ID: l.newID(), VNet: noc.UOResp, Src: l.node, Dst: p.Src,
		Kind: int(Data), Addr: p.Addr, ReqID: p.ReqID, Flits: l.cfg.DataFlits,
		InjectCycle: cycle, Payload: resp,
	}
	l.sendQ = append(l.sendQ, pendingSend{readyAt: readyAt, pkt: pkt, resp: resp})
	l.Stats.SnoopResponses++
}

// invalidateLine removes a line (snoop invalidation), maintaining the region
// tracker and L1 inclusion.
func (l *L2Controller) invalidateLine(addr uint64, cycle uint64) {
	if l.arr.Invalidate(addr) {
		delete(l.values, addr)
		l.Stats.Invalidations++
		if l.auditor != nil {
			l.auditState(addr, Invalid, cycle)
		}
		if l.rt != nil {
			l.rt.NoteEvict(addr)
		}
		if l.InvalidateL1 != nil {
			l.InvalidateL1(addr)
		}
	}
}

// AcceptResponse consumes an unordered response delivered by the NIC.
func (l *L2Controller) AcceptResponse(p *noc.Packet, cycle uint64) bool {
	switch Kind(p.Kind) {
	case Data, DataMem:
		m := l.findMSHRByReq(p.ReqID)
		if m == nil {
			panic(fmt.Sprintf("coherence: node %d got %s for unknown reqID %d", l.node, Kind(p.Kind), p.ReqID))
		}
		m.dataArrived = true
		m.dataCycle = cycle
		if ri, ok := p.Payload.(*RespInfo); ok {
			m.resp = *ri
		}
		return true
	case WBAck:
		if wb := l.findWBByReq(p.ReqID); wb != nil {
			l.freeWB(wb)
		}
		return true
	default:
		panic(fmt.Sprintf("coherence: node %d got unexpected response kind %s", l.node, Kind(p.Kind)))
	}
}

// Evaluate runs one controller cycle: inject retries, response sends,
// completion checks and core-request processing.
func (l *L2Controller) Evaluate(cycle uint64) {
	l.now = cycle
	l.drainSendQ(cycle)
	l.retryInjects(cycle)
	l.checkCompletions(cycle)
	l.processCoreQueue(cycle)
}

// Commit merges staged core requests.
func (l *L2Controller) Commit(cycle uint64) {
	if len(l.stagedCore) > 0 {
		l.coreQ = append(l.coreQ, l.stagedCore...)
		l.stagedCore = l.stagedCore[:0]
	}
}

// Idle implements sim.Idler: the controller may be skipped while it has no
// transaction in any stage — no queued or staged core requests, no active
// MSHR, no writeback in flight, and no ripe scheduled response. A scheduled
// response whose readyAt is still in the future (a sharer serving a snoop
// after the array access latency) permits parking; NextEventCycle names the
// send cycle. Every other term either makes Evaluate a no-op or is
// re-established only while this tile's unit is running (core requests and
// NIC deliveries both happen inside it).
func (l *L2Controller) Idle() bool {
	if len(l.stagedCore) > 0 || len(l.coreQ) > 0 || len(l.wbs) > 0 {
		return false
	}
	for i := range l.mshrs {
		if l.mshrs[i].active {
			return false
		}
	}
	for i := range l.sendQ {
		if l.sendQ[i].readyAt <= l.now {
			return false
		}
	}
	return true
}

// NextEventCycle implements sim.NextEventer: the earliest scheduled
// response send.
func (l *L2Controller) NextEventCycle(cycle uint64) uint64 {
	next := uint64(0)
	for i := range l.sendQ {
		if r := l.sendQ[i].readyAt; next == 0 || r < next {
			next = r
		}
	}
	if next == 0 {
		return ^uint64(0)
	}
	if next <= cycle {
		return cycle + 1
	}
	return next
}

// drainSendQ injects scheduled responses whose latency elapsed.
func (l *L2Controller) drainSendQ(cycle uint64) {
	rest := l.sendQ[:0]
	for _, s := range l.sendQ {
		if s.readyAt <= cycle {
			if s.resp != nil && s.resp.RespSent == 0 {
				s.resp.RespSent = cycle
			}
			if !l.nic.SendResponse(s.pkt) {
				rest = append(rest, s)
			}
			continue
		}
		rest = append(rest, s)
	}
	l.sendQ = rest
}

// retryInjects pushes pending ordered requests into the NIC.
func (l *L2Controller) retryInjects(cycle uint64) {
	for i := range l.mshrs {
		m := &l.mshrs[i]
		if m.active && m.wantInject {
			if l.nic.SendRequest(m.pkt) {
				m.wantInject = false
			}
		}
	}
	for _, wb := range l.wbs {
		if wb.wantInject {
			if l.nic.SendRequest(wb.pkt) {
				wb.wantInject = false
			}
		}
	}
}

// checkCompletions finishes misses whose order position and data both
// arrived.
func (l *L2Controller) checkCompletions(cycle uint64) {
	for i := range l.mshrs {
		m := &l.mshrs[i]
		if !m.active || !m.ordered || !m.dataArrived {
			continue
		}
		l.completeMiss(m, cycle)
	}
}

// completeMiss installs the line, serves deferred FIDs and reports the
// completion.
func (l *L2Controller) completeMiss(m *mshr, cycle uint64) {
	if m.write {
		l.values[m.addr] = m.value
		// Serve deferred snoops in their global order, each after a data
		// access; every deferred reader/writer observes our new value.
		final := Modified
		for i, f := range m.fids {
			readyAt := cycle + uint64((i+1)*l.cfg.HitLatency)
			resp := &RespInfo{Value: m.value, ServedByCache: true, ReqArrive: m.arriveSelf, ReqOrdered: m.orderedCycle, Service: uint64(l.cfg.HitLatency)}
			pkt := &noc.Packet{
				ID: l.newID(), VNet: noc.UOResp, Src: l.node, Dst: f.src,
				Kind: int(Data), Addr: m.addr, ReqID: f.reqID, Flits: l.cfg.DataFlits,
				InjectCycle: cycle, Payload: resp,
			}
			l.sendQ = append(l.sendQ, pendingSend{readyAt: readyAt, pkt: pkt, resp: resp})
			l.Stats.SnoopResponses++
			switch f.kind {
			case GetS:
				final = OwnedDirty
			case GetX:
				final = Invalid
			}
		}
		if final == Invalid {
			l.invalidateLine(m.addr, cycle)
		} else {
			l.install(m.addr, final, cycle)
			l.values[m.addr] = m.value
		}
	} else if m.invalidateOnFill {
		// A later writer already claimed the line; deliver the data to the
		// core but do not cache it.
	} else {
		l.install(m.addr, Shared, cycle)
		l.values[m.addr] = m.resp.Value
	}
	l.report(m, cycle)
	*m = mshr{}
}

// report emits the completion callback with the Figure 6b/6c breakdown.
func (l *L2Controller) report(m *mshr, cycle uint64) {
	l.Stats.Misses++
	l.Stats.ServiceLatency.Observe(float64(cycle - m.issue))
	l.Stats.MissLatency.Observe(float64(cycle - m.issue))
	if l.tracer != nil {
		l.tracer.Record(obs.Event{
			Cycle: cycle, Type: obs.EvMissDone, Node: int32(l.node),
			Src: int32(l.node), Pkt: m.pkt.ID, Arg: m.addr,
			Port: -1, VNet: -1, VC: -1,
		})
	}
	if l.OnComplete == nil {
		return
	}
	var bd [stats.NumBreakdownComponents]uint64
	if m.selfServed {
		bd[stats.ReqOrdering] = m.orderedCycle - m.pkt.InjectCycle
	} else if m.resp.ServedByCache {
		bd[stats.NetBcastReq] = sub(m.resp.ReqArrive, m.pkt.InjectCycle)
		bd[stats.ReqOrdering] = sub(m.resp.ReqOrdered, m.resp.ReqArrive)
		bd[stats.SharerAccess] = m.resp.Service
		bd[stats.NetResp] = sub(m.dataCycle, m.resp.RespSent)
	} else {
		bd[stats.NetBcastReq] = sub(m.resp.ReqArrive, m.pkt.InjectCycle)
		bd[stats.ReqOrdering] = sub(m.resp.ReqOrdered, m.resp.ReqArrive)
		bd[stats.DirAccess] = m.resp.DirAccess
		bd[stats.NetResp] = sub(m.dataCycle, m.resp.RespSent)
	}
	val := m.resp.Value
	if m.write {
		val = m.value
	}
	l.OnComplete(Completion{
		Addr: m.addr, Write: m.write, Value: val, Issue: m.issue, Done: cycle,
		Hit: false, ServedByCache: m.resp.ServedByCache || m.selfServed,
		SelfServed: m.selfServed, Breakdown: bd,
	})
}

// sub returns a-b, clamped at zero (stamps from different clock domains can
// be equal).
func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// processCoreQueue starts hits and allocates MSHRs for misses, in order.
func (l *L2Controller) processCoreQueue(cycle uint64) {
	for len(l.coreQ) > 0 {
		req := l.coreQ[0]
		// A same-line transaction in flight stalls the queue head.
		if l.findMSHR(req.addr) != nil || l.findWB(req.addr) != nil {
			return
		}
		if req.write {
			l.Stats.CoreWrites++
		} else {
			l.Stats.CoreReads++
		}
		st := l.LineState(req.addr)
		hit := st != Invalid && (!req.write || st == Modified)
		if hit {
			l.arr.Touch(req.addr)
			l.Stats.Hits++
			if req.write {
				l.values[req.addr] = req.value
			}
			l.Stats.ServiceLatency.Observe(float64(cycle + uint64(l.cfg.HitLatency) - req.issue))
			if l.OnComplete != nil {
				l.OnComplete(Completion{Addr: req.addr, Write: req.write, Value: l.values[req.addr], Issue: req.issue, Done: cycle + uint64(l.cfg.HitLatency), Hit: true})
			}
			l.coreQ = l.coreQ[1:]
			continue
		}
		m := l.freeMSHR()
		if m == nil {
			return
		}
		// Upgrades keep their line MRU so a concurrent fill can never evict
		// the very line the in-flight write targets.
		if st != Invalid {
			l.arr.Touch(req.addr)
		}
		kind := GetS
		if req.write {
			kind = GetX
		}
		l.reqIDNext++
		*m = mshr{
			active: true, addr: req.addr, write: req.write, value: req.value, issue: req.issue,
			reqID: l.reqIDNext,
		}
		m.pkt = &noc.Packet{
			ID: l.newID(), VNet: noc.GOReq, Src: l.node, SID: l.node, Broadcast: true,
			Flits: 1, Kind: int(kind), Addr: req.addr, ReqID: m.reqID, InjectCycle: cycle,
		}
		if l.tracer != nil {
			l.tracer.Record(obs.Event{
				Cycle: cycle, Type: obs.EvMissStart, Node: int32(l.node),
				Src: int32(l.node), Pkt: m.pkt.ID, Arg: req.addr,
				Port: -1, VNet: -1, VC: -1,
			})
		}
		if !l.nic.SendRequest(m.pkt) {
			m.wantInject = true
		}
		l.coreQ = l.coreQ[1:]
	}
}

// install places a line, handling inclusion and dirty evictions.
func (l *L2Controller) install(addr uint64, st State, cycle uint64) {
	ev, did := l.arr.Insert(addr, int(st))
	if l.rt != nil {
		l.rt.NoteFill(addr)
	}
	if l.auditor != nil {
		l.auditState(addr, st, cycle)
	}
	if !did {
		return
	}
	if l.auditor != nil {
		// The evicted line leaves the array; an in-flight writeback still
		// serves snoops from its wbEntry, but for shadow purposes the copy
		// is gone.
		l.auditState(ev.Addr, Invalid, cycle)
	}
	if l.rt != nil {
		l.rt.NoteEvict(ev.Addr)
	}
	if l.InvalidateL1 != nil {
		l.InvalidateL1(ev.Addr)
	}
	if State(ev.State).owner() {
		l.startWriteback(ev.Addr, cycle)
	} else {
		delete(l.values, ev.Addr)
	}
}

// startWriteback announces a dirty eviction on the ordered network.
func (l *L2Controller) startWriteback(addr uint64, cycle uint64) {
	l.reqIDNext++
	wb := &wbEntry{addr: addr, value: l.values[addr], reqID: l.reqIDNext}
	delete(l.values, addr)
	wb.pkt = &noc.Packet{
		ID: l.newID(), VNet: noc.GOReq, Src: l.node, SID: l.node, Broadcast: true,
		Flits: 1, Kind: int(PutM), Addr: addr, ReqID: wb.reqID, InjectCycle: cycle,
	}
	if !l.nic.SendRequest(wb.pkt) {
		wb.wantInject = true
	}
	l.wbs = append(l.wbs, wb)
	l.Stats.Writebacks++
}

func (l *L2Controller) findMSHR(addr uint64) *mshr {
	for i := range l.mshrs {
		if l.mshrs[i].active && l.mshrs[i].addr == addr {
			return &l.mshrs[i]
		}
	}
	return nil
}

func (l *L2Controller) findMSHRByReq(reqID uint64) *mshr {
	for i := range l.mshrs {
		if l.mshrs[i].active && l.mshrs[i].reqID == reqID {
			return &l.mshrs[i]
		}
	}
	return nil
}

func (l *L2Controller) freeMSHR() *mshr {
	for i := range l.mshrs {
		if !l.mshrs[i].active {
			return &l.mshrs[i]
		}
	}
	return nil
}

func (l *L2Controller) findWB(addr uint64) *wbEntry {
	for _, wb := range l.wbs {
		if wb.addr == addr {
			return wb
		}
	}
	return nil
}

func (l *L2Controller) findWBByReq(reqID uint64) *wbEntry {
	for _, wb := range l.wbs {
		if wb.reqID == reqID {
			return wb
		}
	}
	return nil
}

func (l *L2Controller) freeWB(wb *wbEntry) {
	for i, w := range l.wbs {
		if w == wb {
			l.wbs = append(l.wbs[:i], l.wbs[i+1:]...)
			return
		}
	}
}
