package coherence

import (
	"testing"

	"scorpio/internal/noc"
	"scorpio/internal/stats"
)

// fakePort records injected packets.
type fakePort struct {
	reqs   []*noc.Packet
	resps  []*noc.Packet
	reject bool
}

func (f *fakePort) SendRequest(p *noc.Packet) bool {
	if f.reject {
		return false
	}
	f.reqs = append(f.reqs, p)
	return true
}

func (f *fakePort) SendResponse(p *noc.Packet) bool {
	if f.reject {
		return false
	}
	f.resps = append(f.resps, p)
	return true
}

type fakeMap struct{ mc int }

func (m fakeMap) HomeMC(addr uint64) int { return m.mc }

// rig bundles an L2 under test.
type rig struct {
	l2    *L2Controller
	port  *fakePort
	cycle uint64
	done  []Completion
}

func newRig(t *testing.T, mutate func(*Config)) *rig {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	port := &fakePort{}
	id := uint64(1000)
	l2 := NewL2(3, cfg, port, func() uint64 { id++; return id }, fakeMap{mc: 0})
	r := &rig{l2: l2, port: port}
	l2.OnComplete = func(c Completion) { r.done = append(r.done, c) }
	return r
}

// step advances n cycles.
func (r *rig) step(n int) {
	for i := 0; i < n; i++ {
		r.l2.Evaluate(r.cycle)
		r.l2.Commit(r.cycle)
		r.cycle++
	}
}

// lastReq returns the most recent injected request.
func (r *rig) lastReq(t *testing.T) *noc.Packet {
	t.Helper()
	if len(r.port.reqs) == 0 {
		t.Fatal("no request injected")
	}
	return r.port.reqs[len(r.port.reqs)-1]
}

// ownOrdered feeds the controller its own request in global order.
func (r *rig) ownOrdered(t *testing.T, p *noc.Packet) {
	t.Helper()
	if !r.l2.ProcessOrdered(p, r.cycle, r.cycle) {
		t.Fatal("own ordered request rejected")
	}
}

// snoop feeds a remote request in global order.
func (r *rig) snoop(kind Kind, src int, addr uint64, reqID uint64) bool {
	p := &noc.Packet{VNet: noc.GOReq, Src: src, SID: src, Broadcast: true, Flits: 1,
		Kind: int(kind), Addr: addr, ReqID: reqID}
	return r.l2.ProcessOrdered(p, r.cycle, r.cycle)
}

// data delivers a data response for the outstanding request.
func (r *rig) data(t *testing.T, reqID uint64, fromMem bool) {
	t.Helper()
	kind := Data
	ri := &RespInfo{ServedByCache: true}
	if fromMem {
		kind = DataMem
		ri = &RespInfo{ServedByCache: false}
	}
	r.l2.AcceptResponse(&noc.Packet{VNet: noc.UOResp, Kind: int(kind), ReqID: reqID, Payload: ri, Flits: 3}, r.cycle)
}

func TestReadMissFillsShared(t *testing.T) {
	r := newRig(t, nil)
	if !r.l2.CoreRequest(0x42, false, r.cycle) {
		t.Fatal("core request rejected")
	}
	r.step(2)
	req := r.lastReq(t)
	if Kind(req.Kind) != GetS || !req.Broadcast || req.Addr != 0x42 {
		t.Fatalf("unexpected request %v", req)
	}
	r.ownOrdered(t, req)
	r.data(t, req.ReqID, true)
	r.step(2)
	if got := r.l2.LineState(0x42); got != Shared {
		t.Fatalf("state = %s, want S", got)
	}
	if len(r.done) != 1 || r.done[0].Hit || r.done[0].Write {
		t.Fatalf("completion wrong: %+v", r.done)
	}
}

func TestWriteMissFillsModified(t *testing.T) {
	r := newRig(t, nil)
	r.l2.CoreRequest(0x99, true, r.cycle)
	r.step(2)
	req := r.lastReq(t)
	if Kind(req.Kind) != GetX {
		t.Fatalf("kind = %s, want GetX", Kind(req.Kind))
	}
	r.ownOrdered(t, req)
	r.data(t, req.ReqID, false)
	r.step(2)
	if got := r.l2.LineState(0x99); got != Modified {
		t.Fatalf("state = %s, want M", got)
	}
}

func TestReadHitCompletesWithoutNetwork(t *testing.T) {
	r := newRig(t, nil)
	r.l2.Array().Insert(0x10, int(Shared))
	r.l2.RegionTracker().NoteFill(0x10)
	r.l2.CoreRequest(0x10, false, r.cycle)
	r.step(2)
	if len(r.port.reqs) != 0 {
		t.Fatal("hit must not touch the network")
	}
	if len(r.done) != 1 || !r.done[0].Hit {
		t.Fatalf("expected one hit completion, got %+v", r.done)
	}
}

func TestWriteToSharedIsUpgradeMiss(t *testing.T) {
	r := newRig(t, nil)
	r.l2.Array().Insert(0x10, int(Shared))
	r.l2.CoreRequest(0x10, true, r.cycle)
	r.step(2)
	if Kind(r.lastReq(t).Kind) != GetX {
		t.Fatal("write to S must send GetX")
	}
}

func TestUpgradeFromOwnedSelfServes(t *testing.T) {
	r := newRig(t, nil)
	r.l2.Array().Insert(0x10, int(OwnedDirty))
	r.l2.CoreRequest(0x10, true, r.cycle)
	r.step(2)
	req := r.lastReq(t)
	r.ownOrdered(t, req)
	r.step(2)
	if got := r.l2.LineState(0x10); got != Modified {
		t.Fatalf("state = %s, want M after self-served upgrade", got)
	}
	if len(r.done) != 1 || !r.done[0].SelfServed {
		t.Fatalf("completion should be self-served: %+v", r.done)
	}
}

func TestSnoopGetSOnModifiedRespondsAndDowngrades(t *testing.T) {
	r := newRig(t, nil)
	r.l2.Array().Insert(0x20, int(Modified))
	r.l2.RegionTracker().NoteFill(0x20)
	if !r.snoop(GetS, 7, 0x20, 55) {
		t.Fatal("snoop rejected")
	}
	r.step(15) // let the data response drain past HitLatency
	if got := r.l2.LineState(0x20); got != OwnedDirty {
		t.Fatalf("state = %s, want O_D", got)
	}
	if len(r.port.resps) != 1 {
		t.Fatalf("expected 1 data response, got %d", len(r.port.resps))
	}
	resp := r.port.resps[0]
	if Kind(resp.Kind) != Data || resp.Dst != 7 || resp.ReqID != 55 {
		t.Fatalf("bad response %v", resp)
	}
}

func TestSnoopGetXInvalidatesOwner(t *testing.T) {
	r := newRig(t, nil)
	r.l2.Array().Insert(0x20, int(OwnedDirty))
	r.l2.RegionTracker().NoteFill(0x20)
	invalidated := []uint64{}
	r.l2.InvalidateL1 = func(addr uint64) { invalidated = append(invalidated, addr) }
	r.snoop(GetX, 9, 0x20, 77)
	r.step(15)
	if got := r.l2.LineState(0x20); got != Invalid {
		t.Fatalf("state = %s, want I", got)
	}
	if len(r.port.resps) != 1 {
		t.Fatal("owner must forward data to the writer")
	}
	if len(invalidated) != 1 || invalidated[0] != 0x20 {
		t.Fatal("L1 inclusion invalidation missing")
	}
}

func TestSnoopGetXInvalidatesSharerSilently(t *testing.T) {
	r := newRig(t, nil)
	r.l2.Array().Insert(0x20, int(Shared))
	r.l2.RegionTracker().NoteFill(0x20)
	r.snoop(GetX, 9, 0x20, 77)
	r.step(5)
	if r.l2.LineState(0x20) != Invalid {
		t.Fatal("sharer must invalidate")
	}
	if len(r.port.resps) != 0 {
		t.Fatal("sharer must not respond with data")
	}
}

func TestRegionTrackerFiltersForeignSnoops(t *testing.T) {
	r := newRig(t, nil)
	before := r.l2.Stats.SnoopsFiltered
	r.snoop(GetS, 5, 0xdead00, 1)
	if r.l2.Stats.SnoopsFiltered != before+1 {
		t.Fatal("snoop to an untracked region must be filtered")
	}
}

func TestFIDDeferralServesSnoopsAfterWriteCompletes(t *testing.T) {
	// Capacity 4 lets us exercise a GetS, GetS, GetX sequence without the
	// capacity stall (tested separately below).
	r := newRig(t, func(c *Config) { c.FIDCapacity = 4 })
	r.l2.CoreRequest(0x30, true, r.cycle)
	r.step(2)
	req := r.lastReq(t)
	r.ownOrdered(t, req)
	// Two reads and then a write arrive in global order while our write's
	// data is still in flight.
	if !r.snoop(GetS, 4, 0x30, 101) {
		t.Fatal("first GetS must be deferred, not stalled")
	}
	if !r.snoop(GetS, 5, 0x30, 102) {
		t.Fatal("second GetS must be deferred")
	}
	if !r.snoop(GetX, 6, 0x30, 103) {
		t.Fatal("GetX closes the FID list")
	}
	if got := r.l2.Stats.FIDDeferrals; got != 3 {
		t.Fatalf("deferrals = %d, want 3", got)
	}
	// After the GetX, the list is closed: further snoops pass through.
	if !r.snoop(GetS, 7, 0x30, 104) {
		t.Fatal("snoop after fidClosed must not stall")
	}
	r.data(t, req.ReqID, false)
	r.step(50)
	// Responses to the three deferred FIDs.
	if len(r.port.resps) != 3 {
		t.Fatalf("expected 3 deferred responses, got %d", len(r.port.resps))
	}
	// Final state after serving GetS, GetS, GetX: invalid.
	if got := r.l2.LineState(0x30); got != Invalid {
		t.Fatalf("state = %s, want I after deferred GetX", got)
	}
}

func TestFIDListFullStallsOrderedStream(t *testing.T) {
	r := newRig(t, nil)
	r.l2.CoreRequest(0x30, true, r.cycle)
	r.step(2)
	req := r.lastReq(t)
	r.ownOrdered(t, req)
	r.snoop(GetS, 4, 0x30, 101)
	r.snoop(GetS, 5, 0x30, 102)
	if r.snoop(GetS, 6, 0x30, 103) {
		t.Fatal("third GetS must stall (FID capacity 2)")
	}
	if r.l2.Stats.FIDStalls == 0 {
		t.Fatal("stall not counted")
	}
}

func TestEvictionWritesBackDirtyLine(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.CapacityBytes = 4 * 32 // 4 lines, one set
	})
	// Fill the set with dirty lines, then miss to force an eviction.
	for i := uint64(0); i < 4; i++ {
		r.l2.Array().Insert(i, int(Modified))
	}
	r.l2.CoreRequest(100, false, r.cycle)
	r.step(2)
	req := r.lastReq(t)
	r.ownOrdered(t, req)
	r.data(t, req.ReqID, true)
	r.step(2)
	// The eviction must have produced a PutM broadcast.
	var putm *noc.Packet
	for _, p := range r.port.reqs {
		if Kind(p.Kind) == PutM {
			putm = p
		}
	}
	if putm == nil {
		t.Fatal("dirty eviction must broadcast PutM")
	}
	// Our own PutM in global order triggers the data transfer to the MC.
	r.ownOrdered(t, putm)
	r.step(15)
	var wbData *noc.Packet
	for _, p := range r.port.resps {
		if Kind(p.Kind) == WBData {
			wbData = p
		}
	}
	if wbData == nil {
		t.Fatal("WBData not sent after PutM was ordered")
	}
	if wbData.Dst != 0 {
		t.Fatalf("WBData sent to node %d, want MC node 0", wbData.Dst)
	}
	// WBAck retires the writeback entry.
	r.l2.AcceptResponse(&noc.Packet{VNet: noc.UOResp, Kind: int(WBAck), ReqID: wbData.ReqID, Flits: 1}, r.cycle)
	if r.l2.findWBByReq(wbData.ReqID) != nil {
		t.Fatal("WB entry not freed by WBAck")
	}
}

func TestWritebackHijackedByGetX(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.CapacityBytes = 4 * 32
	})
	for i := uint64(0); i < 4; i++ {
		r.l2.Array().Insert(i, int(Modified))
		r.l2.RegionTracker().NoteFill(i)
	}
	r.l2.CoreRequest(100, false, r.cycle)
	r.step(2)
	req := r.lastReq(t)
	r.ownOrdered(t, req)
	r.data(t, req.ReqID, true)
	r.step(2)
	var putm *noc.Packet
	for _, p := range r.port.reqs {
		if Kind(p.Kind) == PutM {
			putm = p
		}
	}
	if putm == nil {
		t.Fatal("no PutM")
	}
	// A GetX to the evicted line is ordered before our PutM: the WB buffer
	// still owns the data and must serve it, surrendering ownership.
	respsBefore := len(r.port.resps)
	r.snoop(GetX, 11, putm.Addr, 500)
	r.step(15)
	if len(r.port.resps) != respsBefore+1 {
		t.Fatal("WB buffer must forward data to the writer")
	}
	// Our PutM is now stale: no WBData follows.
	r.ownOrdered(t, putm)
	r.step(15)
	for _, p := range r.port.resps {
		if Kind(p.Kind) == WBData {
			t.Fatal("stale PutM must not send writeback data")
		}
	}
	if r.l2.Stats.StalePutM != 1 {
		t.Fatalf("StalePutM = %d, want 1", r.l2.Stats.StalePutM)
	}
}

func TestInvalidateOnFillForRacedRead(t *testing.T) {
	r := newRig(t, nil)
	r.l2.CoreRequest(0x40, false, r.cycle)
	r.step(2)
	req := r.lastReq(t)
	r.ownOrdered(t, req)
	// A write by another core is ordered after our read but before our data.
	r.snoop(GetX, 8, 0x40, 200)
	r.data(t, req.ReqID, true)
	r.step(2)
	if r.l2.LineState(0x40) != Invalid {
		t.Fatal("raced read must not install a stale line")
	}
	if len(r.done) != 1 {
		t.Fatal("the read itself still completes for the core")
	}
}

func TestNonPipelinedOccupancy(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Pipelined = false })
	r.l2.Array().Insert(0x50, int(Modified))
	r.l2.RegionTracker().NoteFill(0x50)
	r.snoop(GetS, 2, 0x50, 300)
	if r.l2.CanAcceptOrdered(r.cycle) {
		t.Fatal("non-pipelined controller must be busy after a snoop")
	}
	r.cycle += uint64(DefaultConfig().HitLatency)
	if !r.l2.CanAcceptOrdered(r.cycle) {
		t.Fatal("controller must free after the occupancy period")
	}
}

func TestInjectRetryWhenPortBlocked(t *testing.T) {
	r := newRig(t, nil)
	r.port.reject = true
	r.l2.CoreRequest(0x60, false, r.cycle)
	r.step(3)
	if len(r.port.reqs) != 0 {
		t.Fatal("request must not inject while the port rejects")
	}
	r.port.reject = false
	r.step(2)
	if len(r.port.reqs) != 1 {
		t.Fatal("request must retry once the port frees")
	}
}

func TestSameLineRequestsSerialize(t *testing.T) {
	r := newRig(t, nil)
	r.l2.CoreRequest(0x70, false, r.cycle)
	r.step(2)
	r.l2.CoreRequest(0x70, true, r.cycle)
	r.step(3)
	if len(r.port.reqs) != 1 {
		t.Fatalf("second same-line request must wait, got %d injections", len(r.port.reqs))
	}
	if r.l2.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", r.l2.Outstanding())
	}
}

func TestBreakdownReportedForCacheServedMiss(t *testing.T) {
	r := newRig(t, nil)
	r.l2.CoreRequest(0x80, false, r.cycle)
	r.step(2)
	req := r.lastReq(t)
	r.ownOrdered(t, req)
	r.l2.AcceptResponse(&noc.Packet{
		VNet: noc.UOResp, Kind: int(Data), ReqID: req.ReqID, Flits: 3,
		Payload: &RespInfo{ServedByCache: true, ReqArrive: 5, ReqOrdered: 9, Service: 10, RespSent: 20},
	}, r.cycle)
	r.step(2)
	if len(r.done) != 1 {
		t.Fatal("no completion")
	}
	bd := r.done[0].Breakdown
	if bd[stats.SharerAccess] != 10 {
		t.Fatalf("sharer access = %d, want 10", bd[stats.SharerAccess])
	}
	if !r.done[0].ServedByCache {
		t.Fatal("completion must be marked cache-served")
	}
}

func TestKindAndStateStrings(t *testing.T) {
	kinds := []Kind{GetS, GetX, PutM, Data, DataMem, WBData, WBAck, Kind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	if !GetS.Ordered() || !PutM.Ordered() || Data.Ordered() {
		t.Fatal("Ordered classification wrong")
	}
	states := []State{Invalid, Shared, Modified, OwnedDirty, State(9)}
	for _, s := range states {
		if s.String() == "" {
			t.Fatal("empty state name")
		}
	}
	if !Modified.owner() || !OwnedDirty.owner() || Shared.owner() {
		t.Fatal("owner classification wrong")
	}
}
