// Package coherence implements SCORPIO's snoopy cache coherence protocol
// (Section 4.2 of the paper): MOSI with the O_D dirty-owner state that keeps
// dirty data on chip until eviction, forwarding-ID (FID) lists that service
// snoops to lines with in-flight writes without blocking, and writebacks
// that ride the ordered request stream.
//
// The L2Controller is the per-tile protocol engine. It consumes the globally
// ordered request stream delivered by its network interface controller,
// maintains the tile's L2 array and region-tracker snoop filter, and serves
// the core (or trace injector) through CoreRequest/completion callbacks.
package coherence

import (
	"fmt"

	"scorpio/internal/noc"
)

// Kind enumerates the snoopy protocol's message types. Values are carried in
// noc.Packet.Kind.
type Kind int

const (
	// GetS is a read miss: broadcast, globally ordered.
	GetS Kind = iota
	// GetX is a write miss or upgrade: broadcast, globally ordered.
	GetX
	// PutM announces a dirty-line writeback: broadcast, globally ordered.
	PutM
	// Data is a cache-to-cache data response (unordered, multi-flit).
	Data
	// DataMem is a memory-controller data response (unordered, multi-flit).
	DataMem
	// WBData carries writeback data to the memory controller (unordered).
	WBData
	// WBAck acknowledges a completed writeback (unordered, single-flit).
	WBAck
)

// String names the message kind.
func (k Kind) String() string {
	switch k {
	case GetS:
		return "GetS"
	case GetX:
		return "GetX"
	case PutM:
		return "PutM"
	case Data:
		return "Data"
	case DataMem:
		return "DataMem"
	case WBData:
		return "WBData"
	case WBAck:
		return "WBAck"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Ordered reports whether the kind travels on the globally ordered request
// class.
func (k Kind) Ordered() bool { return k == GetS || k == GetX || k == PutM }

// State is an L2 cache-line coherence state.
type State int

const (
	// Invalid: not present.
	Invalid State = iota
	// Shared: read-only copy; some owner (cache or memory) supplies data.
	Shared
	// Modified: exclusive dirty copy; this tile is the owner.
	Modified
	// OwnedDirty is the paper's O_D state: dirty data shared on chip, this
	// tile forwards it and is responsible for the eventual writeback. The
	// clean O state of textbook MOSI never materialises in this protocol
	// (memory serves clean data directly), matching the paper's use of O_D
	// in place of a dirty bit.
	OwnedDirty
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	case OwnedDirty:
		return "O_D"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// owner reports whether the state makes the tile responsible for supplying
// data.
func (s State) owner() bool { return s == Modified || s == OwnedDirty }

// RespInfo rides in data-response payloads so the requester can reconstruct
// the latency breakdown of Figures 6b/6c, and carries the line's data value
// for the consistency-verification suite (internal/litmus).
type RespInfo struct {
	// Value is the cache line's data (modelled as one word).
	Value uint64
	// ServedByCache distinguishes cache-to-cache transfers from memory.
	ServedByCache bool
	// ReqArrive is the cycle the (broadcast) request reached the server NIC.
	ReqArrive uint64
	// ReqOrdered is the cycle the server processed it in global order.
	ReqOrdered uint64
	// DirAccess counts directory-cache plus DRAM cycles (memory-served).
	DirAccess uint64
	// Service counts the server's L2/DRAM data-access cycles.
	Service uint64
	// RespSent is the cycle the data response entered the server NIC.
	RespSent uint64
}

// MemMap locates the memory controller responsible for a line address.
type MemMap interface {
	// HomeMC returns the node hosting the memory-controller port that owns
	// the address.
	HomeMC(addr uint64) int
}

// NetPort is the injection interface controllers use; *nic.NIC implements
// it, as do the idealized endpoints of the TokenB/INSO baselines.
type NetPort interface {
	// SendRequest enqueues a request-class packet; false means retry.
	SendRequest(p *noc.Packet) bool
	// SendResponse enqueues a response-class packet; false means retry.
	SendResponse(p *noc.Packet) bool
}
