package ring

import "testing"

func TestFIFOOrder(t *testing.T) {
	r := New[int](2)
	for i := 0; i < 10; i++ {
		r.Push(i)
	}
	if r.Len() != 10 {
		t.Fatalf("len = %d", r.Len())
	}
	for i := 0; i < 10; i++ {
		if got := r.Front(); got != i {
			t.Fatalf("front = %d want %d", got, i)
		}
		if got := r.PopFront(); got != i {
			t.Fatalf("pop = %d want %d", got, i)
		}
	}
	if !r.Empty() {
		t.Fatal("not empty after draining")
	}
}

func TestWrapAroundNoAlloc(t *testing.T) {
	r := NewFixed[*int](4)
	x := 7
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 4; i++ {
			r.Push(&x)
		}
		for i := 0; i < 4; i++ {
			r.PopFront()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f per run", allocs)
	}
}

func TestFixedOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := NewFixed[int](2)
	r.Push(1)
	r.Push(2)
	r.Push(3)
}

func TestPopZeroesSlot(t *testing.T) {
	r := NewFixed[*int](2)
	x := 1
	r.Push(&x)
	r.PopFront()
	if r.buf[0] != nil {
		t.Fatal("PopFront retained pointer")
	}
}

func TestAtAndRemoveAt(t *testing.T) {
	r := New[int](2)
	// Force a wrapped layout: push 4, pop 2, push 2 more.
	for i := 0; i < 4; i++ {
		r.Push(i)
	}
	r.PopFront()
	r.PopFront()
	r.Push(4)
	r.Push(5)
	// Ring now holds 2,3,4,5.
	for i, want := range []int{2, 3, 4, 5} {
		if got := r.At(i); got != want {
			t.Fatalf("At(%d) = %d want %d", i, got, want)
		}
	}
	if got := r.RemoveAt(1); got != 3 {
		t.Fatalf("RemoveAt(1) = %d want 3", got)
	}
	for i, want := range []int{2, 4, 5} {
		if got := r.At(i); got != want {
			t.Fatalf("after remove At(%d) = %d want %d", i, got, want)
		}
	}
}

func TestReset(t *testing.T) {
	r := New[int](4)
	r.Push(1)
	r.Push(2)
	r.Reset()
	if !r.Empty() {
		t.Fatal("Reset left elements")
	}
	r.Push(9)
	if r.Front() != 9 {
		t.Fatal("push after Reset broken")
	}
}

func TestGrowPreservesWrappedOrder(t *testing.T) {
	r := New[int](3)
	r.Push(0)
	r.Push(1)
	r.Push(2)
	r.PopFront()
	r.Push(3) // wrapped
	r.Push(4) // grow with head != 0
	for i, want := range []int{1, 2, 3, 4} {
		if got := r.At(i); got != want {
			t.Fatalf("At(%d) = %d want %d", i, got, want)
		}
	}
}
