// Package ring provides the circular queues the simulator's per-cycle hot
// paths run on. A Ring never moves its elements and, once at capacity, never
// allocates: Push writes into a fixed backing array, PopFront zeroes the
// vacated slot (so pooled pointers are not retained) and advances a head
// index. This replaces the `q = append(q, x)` / `q = q[1:]` slice idiom,
// whose sliding window re-allocates the backing array once per capacity's
// worth of pops.
//
// Two flavours exist:
//
//   - NewFixed: the capacity is a hard bound guaranteed by some external
//     invariant (the NoC's credit protocol, a config depth). Exceeding it is
//     a protocol violation and panics.
//   - New: the capacity is only an expectation; Push grows the ring by
//     doubling when full. Steady-state traffic that respects the expected
//     bound never grows.
package ring

import "fmt"

// Ring is a FIFO circular buffer. The zero value is an empty, growable ring;
// prefer New/NewFixed so the backing array is allocated once up front.
type Ring[T any] struct {
	buf   []T
	head  int
	n     int
	fixed bool
}

// New returns a growable ring pre-sized to the expected capacity.
func New[T any](capacity int) Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return Ring[T]{buf: make([]T, capacity)}
}

// NewFixed returns a fixed-capacity ring; Push past the capacity panics.
func NewFixed[T any](capacity int) Ring[T] {
	r := New[T](capacity)
	r.fixed = true
	return r
}

// Len reports the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Cap reports the current capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Empty reports whether the ring holds no elements.
func (r *Ring[T]) Empty() bool { return r.n == 0 }

// Push appends v at the tail. A full fixed ring panics (the caller's
// flow-control invariant was violated); a full growable ring doubles.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		if r.fixed {
			panic(fmt.Sprintf("ring: fixed ring overflow (cap %d)", len(r.buf)))
		}
		r.grow(2*len(r.buf) + 1)
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// Front returns the head element without removing it; the ring must not be
// empty.
func (r *Ring[T]) Front() T {
	if r.n == 0 {
		panic("ring: Front on empty ring")
	}
	return r.buf[r.head]
}

// PopFront removes and returns the head element, zeroing its slot so the
// ring does not retain pointers to recycled objects.
func (r *Ring[T]) PopFront() T {
	if r.n == 0 {
		panic("ring: PopFront on empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// At returns the i-th element from the head (0 = front).
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("ring: At(%d) out of range [0,%d)", i, r.n))
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// RemoveAt deletes and returns the i-th element from the head, preserving
// the order of the others by shifting the tail side down one slot.
func (r *Ring[T]) RemoveAt(i int) T {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("ring: RemoveAt(%d) out of range [0,%d)", i, r.n))
	}
	v := r.buf[(r.head+i)%len(r.buf)]
	for j := i; j < r.n-1; j++ {
		r.buf[(r.head+j)%len(r.buf)] = r.buf[(r.head+j+1)%len(r.buf)]
	}
	var zero T
	r.buf[(r.head+r.n-1)%len(r.buf)] = zero
	r.n--
	return v
}

// Reset empties the ring, zeroing every occupied slot.
func (r *Ring[T]) Reset() {
	var zero T
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)%len(r.buf)] = zero
	}
	r.head, r.n = 0, 0
}

// grow moves the elements into a larger backing array (growable rings only).
func (r *Ring[T]) grow(capacity int) {
	buf := make([]T, capacity)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
