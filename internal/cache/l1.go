package cache

// L1 models the core's private split I/D level-1 cache (Table 1: 4-way
// set-associative, write-through, 16KB each). Because it is write-through
// and inclusive under the L2, coherence only ever needs to invalidate L1
// lines via the invalidation port the chip added to the core (Section 4.1);
// no dirty data lives here.
type L1 struct {
	arr        *Array
	HitLatency int
	// Stats
	Reads         uint64
	Writes        uint64
	ReadMisses    uint64
	Invalidations uint64
}

// NewL1 builds a 16KB 4-way L1 with the chip's 2-cycle access latency.
func NewL1(capacityBytes, lineBytes int) *L1 {
	return &L1{arr: NewArrayBytes(capacityBytes, lineBytes, 4), HitLatency: 2}
}

// Read looks up a line; it reports whether the access hit. On miss the
// caller fetches through the L2 and calls Fill.
func (l *L1) Read(lineAddr uint64) bool {
	l.Reads++
	if l.arr.Get(lineAddr) != nil {
		return true
	}
	l.ReadMisses++
	return false
}

// Write performs a write-through store: the line is updated if present (no
// write-allocate) and the caller always forwards the store to the L2.
func (l *L1) Write(lineAddr uint64) {
	l.Writes++
	l.arr.Touch(lineAddr)
}

// Fill installs a line after an L2 fetch and returns the evicted line
// address (ok reports whether an eviction happened). Write-through means the
// eviction needs no writeback.
func (l *L1) Fill(lineAddr uint64) (evictedAddr uint64, ok bool) {
	ev, did := l.arr.Insert(lineAddr, 0)
	return ev.Addr, did
}

// Invalidate services the external invalidation port: the L2 calls it when
// a snoop or an L2 eviction removes a line (inclusion).
func (l *L1) Invalidate(lineAddr uint64) bool {
	if l.arr.Invalidate(lineAddr) {
		l.Invalidations++
		return true
	}
	return false
}

// Present reports whether a line is cached (for tests).
func (l *L1) Present(lineAddr uint64) bool { return l.arr.Lookup(lineAddr) != nil }
