// Package cache provides the storage structures of a SCORPIO tile: a generic
// set-associative array with LRU replacement (used by the L1 and L2 caches
// and the directory caches of the baselines) and the region tracker snoop
// filter of [Moshovos, ISCA 2005] used for destination filtering.
package cache

import "fmt"

// Line is one cache entry: its address tag and a caller-defined state value.
type Line struct {
	Addr  uint64 // full line address (already shifted by offset bits)
	State int
	valid bool
	lru   uint64
}

// Array is a set-associative array indexed by line address. The zero state
// value is reserved for "invalid is fine but explicit": callers define their
// own state encodings.
type Array struct {
	sets  int
	ways  int
	lines []Line
	tick  uint64
	// Stats
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// NewArray builds an array with the given geometry. Sets must be a power of
// two.
func NewArray(sets, ways int) *Array {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: invalid geometry %d sets x %d ways (sets must be a power of two)", sets, ways))
	}
	return &Array{sets: sets, ways: ways, lines: make([]Line, sets*ways)}
}

// NewArrayBytes builds an array sized for capacityBytes with the given line
// size and associativity (the chip's L2: 128KB, 32B lines, 4 ways → 1024
// sets).
func NewArrayBytes(capacityBytes, lineBytes, ways int) *Array {
	sets := capacityBytes / lineBytes / ways
	if sets == 0 {
		sets = 1
	}
	// Round down to a power of two.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	return NewArray(p, ways)
}

// Sets returns the number of sets.
func (a *Array) Sets() int { return a.sets }

// Ways returns the associativity.
func (a *Array) Ways() int { return a.ways }

// Capacity returns the number of lines the array can hold.
func (a *Array) Capacity() int { return a.sets * a.ways }

func (a *Array) set(addr uint64) []Line {
	idx := int(addr) & (a.sets - 1)
	return a.lines[idx*a.ways : (idx+1)*a.ways]
}

// Lookup finds the line for addr; it returns nil on miss and does not touch
// LRU state (use Touch or Get for accesses).
func (a *Array) Lookup(addr uint64) *Line {
	set := a.set(addr)
	for i := range set {
		if set[i].valid && set[i].Addr == addr {
			return &set[i]
		}
	}
	return nil
}

// Get looks up addr, counts hit/miss statistics and updates LRU on hit.
func (a *Array) Get(addr uint64) *Line {
	l := a.Lookup(addr)
	if l == nil {
		a.Misses++
		return nil
	}
	a.Hits++
	a.tick++
	l.lru = a.tick
	return l
}

// Touch refreshes the LRU position of addr if present.
func (a *Array) Touch(addr uint64) {
	if l := a.Lookup(addr); l != nil {
		a.tick++
		l.lru = a.tick
	}
}

// Insert places addr with the given state, evicting the LRU line of the set
// if necessary. It returns the evicted line (valid only if eviction
// happened).
func (a *Array) Insert(addr uint64, state int) (evicted Line, didEvict bool) {
	set := a.set(addr)
	a.tick++
	// Reuse an existing entry or a free way first.
	for i := range set {
		if set[i].valid && set[i].Addr == addr {
			set[i].State = state
			set[i].lru = a.tick
			return Line{}, false
		}
	}
	for i := range set {
		if !set[i].valid {
			set[i] = Line{Addr: addr, State: state, valid: true, lru: a.tick}
			return Line{}, false
		}
	}
	// Evict LRU.
	victim := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	evicted = set[victim]
	set[victim] = Line{Addr: addr, State: state, valid: true, lru: a.tick}
	a.Evictions++
	return evicted, true
}

// Invalidate removes addr from the array and reports whether it was present.
func (a *Array) Invalidate(addr uint64) bool {
	set := a.set(addr)
	for i := range set {
		if set[i].valid && set[i].Addr == addr {
			set[i].valid = false
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid lines.
func (a *Array) Occupancy() int {
	n := 0
	for i := range a.lines {
		if a.lines[i].valid {
			n++
		}
	}
	return n
}

// ForEach calls fn for every valid line.
func (a *Array) ForEach(fn func(l *Line)) {
	for i := range a.lines {
		if a.lines[i].valid {
			fn(&a.lines[i])
		}
	}
}
