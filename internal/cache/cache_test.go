package cache

import (
	"testing"
	"testing/quick"

	"scorpio/internal/sim"
)

func TestArrayGeometry(t *testing.T) {
	a := NewArrayBytes(128*1024, 32, 4) // the chip's L2
	if a.Sets() != 1024 || a.Ways() != 4 {
		t.Fatalf("L2 geometry = %dx%d, want 1024x4", a.Sets(), a.Ways())
	}
	if a.Capacity() != 4096 {
		t.Fatalf("capacity = %d lines, want 4096", a.Capacity())
	}
	l1 := NewArrayBytes(16*1024, 32, 4)
	if l1.Capacity() != 512 {
		t.Fatalf("L1 capacity = %d lines, want 512", l1.Capacity())
	}
}

func TestArrayInsertLookupInvalidate(t *testing.T) {
	a := NewArray(4, 2)
	if _, evicted := a.Insert(0x100, 7); evicted {
		t.Fatal("insert into empty set must not evict")
	}
	l := a.Lookup(0x100)
	if l == nil || l.State != 7 {
		t.Fatalf("lookup returned %+v", l)
	}
	l.State = 9
	if a.Lookup(0x100).State != 9 {
		t.Fatal("state mutation lost")
	}
	if !a.Invalidate(0x100) {
		t.Fatal("invalidate missed present line")
	}
	if a.Lookup(0x100) != nil {
		t.Fatal("line still present after invalidate")
	}
	if a.Invalidate(0x100) {
		t.Fatal("invalidate hit absent line")
	}
}

func TestArrayLRUEviction(t *testing.T) {
	a := NewArray(1, 2) // one set, two ways
	a.Insert(1, 0)
	a.Insert(2, 0)
	a.Get(1) // make 1 most recent
	ev, did := a.Insert(3, 0)
	if !did || ev.Addr != 2 {
		t.Fatalf("evicted %+v (did=%v), want addr 2", ev, did)
	}
	if a.Lookup(1) == nil || a.Lookup(3) == nil {
		t.Fatal("survivors missing")
	}
}

func TestArrayReinsertUpdatesState(t *testing.T) {
	a := NewArray(2, 2)
	a.Insert(4, 1)
	if _, did := a.Insert(4, 2); did {
		t.Fatal("reinsert must not evict")
	}
	if got := a.Lookup(4).State; got != 2 {
		t.Fatalf("state = %d, want 2", got)
	}
	if a.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", a.Occupancy())
	}
}

func TestArrayOccupancyNeverExceedsCapacity(t *testing.T) {
	rng := sim.NewRNG(9)
	a := NewArray(8, 4)
	for i := 0; i < 5000; i++ {
		a.Insert(uint64(rng.Intn(1000)), 0)
		if a.Occupancy() > a.Capacity() {
			t.Fatal("occupancy exceeded capacity")
		}
	}
}

func TestArrayPropertyInsertThenLookup(t *testing.T) {
	a := NewArrayBytes(4096, 32, 2)
	if err := quick.Check(func(addr uint64) bool {
		a.Insert(addr, 3)
		l := a.Lookup(addr)
		return l != nil && l.State == 3 && l.Addr == addr
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionTrackerFiltering(t *testing.T) {
	rt := NewRegionTracker(4096, 32, 128) // chip parameters
	// 4KB regions of 32B lines: 128 lines per region, shift 7.
	rt.NoteFill(0x80) // region 1
	if !rt.MayBeCached(0x81) {
		t.Fatal("line in a tracked region must not be filtered")
	}
	if rt.MayBeCached(0x200) {
		t.Fatal("line in an untracked region must be filtered")
	}
	rt.NoteEvict(0x80)
	if rt.MayBeCached(0x85) {
		t.Fatal("region must disappear when its last line leaves")
	}
	if rt.Filtered != 2 || rt.Unfiltered != 1 {
		t.Fatalf("stats filtered=%d unfiltered=%d, want 2/1", rt.Filtered, rt.Unfiltered)
	}
}

func TestRegionTrackerCounts(t *testing.T) {
	rt := NewRegionTracker(4096, 32, 128)
	rt.NoteFill(0x80)
	rt.NoteFill(0x81)
	rt.NoteEvict(0x80)
	if !rt.MayBeCached(0x82) {
		t.Fatal("region with one remaining line filtered")
	}
	rt.NoteEvict(0x81)
	if rt.MayBeCached(0x82) {
		t.Fatal("empty region not filtered")
	}
}

func TestRegionTrackerSaturationIsConservative(t *testing.T) {
	rt := NewRegionTracker(4096, 32, 2)
	rt.NoteFill(0 << 7)
	rt.NoteFill(1 << 7)
	rt.NoteFill(2 << 7) // over capacity
	if !rt.Saturated() {
		t.Fatal("tracker should saturate at 3 regions with capacity 2")
	}
	// While saturated nothing may be filtered, even untracked regions.
	if !rt.MayBeCached(99 << 7) {
		t.Fatal("saturated tracker filtered a snoop")
	}
	rt.NoteEvict(2 << 7)
	if rt.Saturated() {
		t.Fatal("tracker should recover when regions drain")
	}
	if rt.MayBeCached(99 << 7) {
		t.Fatal("recovered tracker must filter untracked regions again")
	}
}

func TestRegionTrackerPropertyNeverFiltersCachedLine(t *testing.T) {
	rng := sim.NewRNG(77)
	rt := NewRegionTracker(4096, 32, 8)
	cached := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(4096))
		switch {
		case rng.Bernoulli(0.5):
			if !cached[addr] {
				cached[addr] = true
				rt.NoteFill(addr)
			}
		case cached[addr]:
			delete(cached, addr)
			rt.NoteEvict(addr)
		default:
			if cached[addr] && !rt.MayBeCached(addr) {
				t.Fatal("tracker filtered a cached line")
			}
		}
		// The safety property proper: every cached line must pass.
		probe := uint64(rng.Intn(4096))
		if cached[probe] && !rt.MayBeCached(probe) {
			t.Fatalf("iteration %d: cached line %#x filtered", i, probe)
		}
	}
}

func TestL1WriteThroughAndInvalidation(t *testing.T) {
	l1 := NewL1(16*1024, 32)
	if l1.Read(0x10) {
		t.Fatal("cold read must miss")
	}
	l1.Fill(0x10)
	if !l1.Read(0x10) {
		t.Fatal("read after fill must hit")
	}
	l1.Write(0x10) // write-through: stays valid locally
	if !l1.Present(0x10) {
		t.Fatal("write must not invalidate the line")
	}
	if !l1.Invalidate(0x10) {
		t.Fatal("invalidation port failed")
	}
	if l1.Present(0x10) {
		t.Fatal("line present after external invalidation")
	}
	if l1.Invalidations != 1 || l1.ReadMisses != 1 {
		t.Fatalf("stats: %+v", l1)
	}
}

func TestL1FillEviction(t *testing.T) {
	l1 := NewL1(4*32, 32) // 4 lines, 4-way: a single set
	for i := 0; i < 4; i++ {
		l1.Fill(uint64(i))
	}
	ev, did := l1.Fill(99)
	if !did {
		t.Fatal("fifth fill into a full set must evict")
	}
	if ev > 3 {
		t.Fatalf("evicted address %d was never inserted", ev)
	}
}
