package cache

// RegionTracker is the tile's snoop filter (Table 1: 4KB regions, 128
// entries): it tracks which coarse address regions have any line cached in
// the local L2, so incoming snoop requests whose region is absent can be
// answered without an L2 tag lookup (destination filtering).
//
// Each entry counts the cached lines of its region; the entry is dropped
// when the count reaches zero. The tracker is intentionally conservative:
// while more distinct regions are live than it has entries for, it stops
// filtering entirely (every snoop gets an L2 lookup), which preserves
// correctness — a region that may be cached is never filtered.
type RegionTracker struct {
	regionShift uint
	entries     map[uint64]int
	capacity    int
	// Stats
	Filtered   uint64 // snoops answered without an L2 lookup
	Unfiltered uint64
}

// NewRegionTracker builds a tracker for the given region size in line
// addresses. The chip uses 4KB regions and 32B lines: 128 lines per region,
// shift 7.
func NewRegionTracker(regionBytes, lineBytes, capacity int) *RegionTracker {
	shift := uint(0)
	for (lineBytes << shift) < regionBytes {
		shift++
	}
	// One extra slot: the tracker holds capacity+1 live regions while it is
	// deciding it saturated.
	return &RegionTracker{regionShift: shift, entries: make(map[uint64]int, capacity+1), capacity: capacity}
}

func (r *RegionTracker) region(lineAddr uint64) uint64 { return lineAddr >> r.regionShift }

// NoteFill records that a line of the region is now cached.
func (r *RegionTracker) NoteFill(lineAddr uint64) {
	r.entries[r.region(lineAddr)]++
}

// NoteEvict records that a line of the region left the cache.
func (r *RegionTracker) NoteEvict(lineAddr uint64) {
	reg := r.region(lineAddr)
	if c, ok := r.entries[reg]; ok {
		if c <= 1 {
			delete(r.entries, reg)
		} else {
			r.entries[reg] = c - 1
		}
	}
}

// Saturated reports whether the working set exceeds the tracker's capacity,
// in which case filtering is suspended.
func (r *RegionTracker) Saturated() bool { return len(r.entries) > r.capacity }

// MayBeCached reports whether a snoop for the line needs an L2 lookup; a
// false result is a guaranteed miss (filtered).
func (r *RegionTracker) MayBeCached(lineAddr uint64) bool {
	if r.Saturated() {
		r.Unfiltered++
		return true
	}
	if _, ok := r.entries[r.region(lineAddr)]; ok {
		r.Unfiltered++
		return true
	}
	r.Filtered++
	return false
}

// Occupancy returns the number of live region entries.
func (r *RegionTracker) Occupancy() int { return len(r.entries) }
