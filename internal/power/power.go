// Package power is the analytical area/energy model of the fabricated
// 36-core SCORPIO chip. The paper's numbers come from layout (area) and
// post-synthesis gate-level simulation with PrimeTime PX (power); we cannot
// rerun those flows, so this model carries per-component coefficients
// calibrated to the published breakdowns (Figure 9, Table 1) and scales the
// dynamic fraction with simulated activity factors. Section 5.4 notes the
// breakdown "is not sensitive to workload" because clocking dominates; the
// model reflects that with a large static fraction.
package power

import "fmt"

// Component identifies one tile block, matching Figure 9's legend.
type Component int

// Tile components.
const (
	Core Component = iota
	L1DCache
	L1ICache
	L2Controller
	L2Array
	RSHR
	AHBACE
	RegionTracker
	L2Tester
	NICRouter
	NotifRouter
	Other
	numComponents
)

// String returns Figure 9's label.
func (c Component) String() string {
	switch c {
	case Core:
		return "Core"
	case L1DCache:
		return "L1 Data Cache"
	case L1ICache:
		return "L1 Inst Cache"
	case L2Controller:
		return "L2 Cache Controller"
	case L2Array:
		return "L2 Cache Array"
	case RSHR:
		return "RSHR"
	case AHBACE:
		return "AHB+ACE"
	case RegionTracker:
		return "Region Tracker"
	case L2Tester:
		return "L2 Tester"
	case NICRouter:
		return "NIC+Router"
	case NotifRouter:
		return "Notification Router"
	case Other:
		return "Other"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Components lists every tile component in Figure 9 order.
func Components() []Component {
	out := make([]Component, numComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Chip-level constants (Table 1 and Section 5.4).
const (
	// TilePowerMW is the per-tile power at 833MHz (768 mW).
	TilePowerMW = 768.0
	// ChipPowerW is the whole-chip estimate (28.8 W).
	ChipPowerW = 28.8
	// ChipAreaMM2 is the die size (11 mm × 13 mm).
	ChipAreaMM2 = 11.0 * 13.0
	// MemControllerAreaMM2 per Cadence DDR2 controller (Section 5.4).
	MemControllerAreaMM2 = 5.7
	// MemPHYAreaMM2 per memory interface controller.
	MemPHYAreaMM2 = 0.5
	// TileAreaMM2 is the derived per-tile area: die minus two controllers
	// and four interface blocks, split over 36 tiles.
	TileAreaMM2 = (ChipAreaMM2 - 2*MemControllerAreaMM2 - 4*MemPHYAreaMM2) / 36
)

// powerShare is the Figure 9a tile power breakdown (fractions of tile
// power). The notification router is <1% of tile power (Section 5.4); it is
// carved out of the NIC+Router share.
var powerShare = map[Component]float64{
	Core:          0.54,
	L1DCache:      0.04,
	L1ICache:      0.04,
	L2Controller:  0.02,
	L2Array:       0.07,
	RSHR:          0.04,
	AHBACE:        0.02,
	RegionTracker: 0.004,
	L2Tester:      0.02,
	NICRouter:     0.182,
	NotifRouter:   0.008,
	Other:         0.016,
}

// areaShare is the Figure 9b tile area breakdown.
var areaShare = map[Component]float64{
	Core:          0.32,
	L1DCache:      0.06,
	L1ICache:      0.06,
	L2Controller:  0.02,
	L2Array:       0.34,
	RSHR:          0.04,
	AHBACE:        0.04,
	RegionTracker: 0.004,
	L2Tester:      0.02,
	NICRouter:     0.096,
	NotifRouter:   0.002,
	Other:         0.002,
}

// staticFraction is the clock/leakage share of each component's power; the
// paper observes the breakdown is workload-insensitive because this
// dominates.
const staticFraction = 0.85

// Activity carries per-cycle event rates from a simulation run, used to
// scale the dynamic fraction of the affected components.
type Activity struct {
	// RouterFlitsPerCycle is flit traversals per router per cycle; nominal
	// (calibration) load is 0.2.
	RouterFlitsPerCycle float64
	// L2AccessesPerCycle is L2 lookups per tile per cycle; nominal 0.1.
	L2AccessesPerCycle float64
	// CoreIPC approximates core activity; nominal 0.8.
	CoreIPC float64
	// NotifVectorsPerCycle is notification-network activity; nominal is one
	// merge per cycle (the OR mesh runs every cycle).
	NotifVectorsPerCycle float64
}

// NominalActivity returns the calibration point at which the model
// reproduces Figure 9 exactly.
func NominalActivity() Activity {
	return Activity{RouterFlitsPerCycle: 0.2, L2AccessesPerCycle: 0.1, CoreIPC: 0.8, NotifVectorsPerCycle: 1.0}
}

// activityScale returns the component's dynamic-activity ratio relative to
// nominal.
func (a Activity) scale(c Component) float64 {
	nom := NominalActivity()
	ratio := func(x, n float64) float64 {
		if n == 0 {
			return 1
		}
		if x < 0 {
			return 0
		}
		return x / n
	}
	switch c {
	case Core:
		return ratio(a.CoreIPC, nom.CoreIPC)
	case L1DCache, L1ICache:
		return ratio(a.CoreIPC, nom.CoreIPC)
	case L2Controller, L2Array, RSHR, RegionTracker, AHBACE:
		return ratio(a.L2AccessesPerCycle, nom.L2AccessesPerCycle)
	case NICRouter:
		return ratio(a.RouterFlitsPerCycle, nom.RouterFlitsPerCycle)
	case NotifRouter:
		return ratio(a.NotifVectorsPerCycle, nom.NotifVectorsPerCycle)
	default:
		return 1
	}
}

// TilePowerMWAt returns per-component tile power in mW for the given
// activity.
func TilePowerMWAt(a Activity) map[Component]float64 {
	out := make(map[Component]float64, numComponents)
	for c, share := range powerShare {
		nominal := share * TilePowerMW
		out[c] = nominal * (staticFraction + (1-staticFraction)*a.scale(c))
	}
	return out
}

// TilePowerBreakdown returns the Figure 9a fractions at nominal activity.
func TilePowerBreakdown() map[Component]float64 {
	out := make(map[Component]float64, numComponents)
	for c, s := range powerShare {
		out[c] = s
	}
	return out
}

// TileAreaMM2Breakdown returns per-component tile area in mm².
func TileAreaMM2Breakdown() map[Component]float64 {
	out := make(map[Component]float64, numComponents)
	for c, share := range areaShare {
		out[c] = share * TileAreaMM2
	}
	return out
}

// TileAreaBreakdown returns the Figure 9b fractions.
func TileAreaBreakdown() map[Component]float64 {
	out := make(map[Component]float64, numComponents)
	for c, s := range areaShare {
		out[c] = s
	}
	return out
}

// NetworkShareOfTile reports the headline claims of the abstract: the
// network (NIC+router, including the notification router) consumes ~10% of
// tile area and ~19% of tile power.
func NetworkShareOfTile() (areaFrac, powerFrac float64) {
	return areaShare[NICRouter] + areaShare[NotifRouter],
		powerShare[NICRouter] + powerShare[NotifRouter]
}

// ChipFeature is one Table 1 row.
type ChipFeature struct {
	Name  string
	Value string
}

// Table1 returns the chip feature summary (Table 1 of the paper).
func Table1() []ChipFeature {
	return []ChipFeature{
		{"Process", "IBM 45 nm SOI"},
		{"Dimension", "11x13 mm2"},
		{"Transistor count", "600 M"},
		{"Frequency", "833 MHz (1 GHz post-synthesis)"},
		{"Power", "28.8 W"},
		{"Core", "Dual-issue, in-order, 10-stage pipeline"},
		{"ISA", "32-bit Power Architecture"},
		{"L1 cache", "Private split 4-way set associative write-through 16 KB I/D"},
		{"L2 cache", "Private inclusive 4-way set associative 128 KB"},
		{"Line size", "32 B"},
		{"Coherence protocol", "MOSI (O: forward state)"},
		{"Directory cache", "128 KB (1 owner bit, 1 dirty bit)"},
		{"Snoop filter", "Region tracker (4KB regions, 128 entries)"},
		{"NoC topology", "6x6 mesh"},
		{"Channel width", "137 bits (ctrl packets 1 flit, data packets 3 flits)"},
		{"Virtual networks", "GO-REQ: 4 VCs x 1 buffer; UO-RESP: 2 VCs x 3 buffers"},
		{"Router", "XY routing, cut-through, multicast, lookahead bypassing"},
		{"Pipeline", "3-stage router (1-stage with bypassing), 1-stage link"},
		{"Notification network", "36 bits wide, bufferless, 13-cycle window, max 4 pending"},
		{"Memory controller", "2x dual-port DDR2 + PHY (functional model here)"},
	}
}

// ProcessorRow is one Table 2 column (a processor to compare against).
type ProcessorRow struct {
	Name         string
	Clock        string
	PowerW       string
	Lithography  string
	Cores        string
	ISA          string
	L2           string
	Consistency  string
	Coherence    string
	Interconnect string
}

// Table2 returns the multicore comparison (Table 2 of the paper; published
// vendor data, SCORPIO's column from this model).
func Table2() []ProcessorRow {
	return []ProcessorRow{
		{"Intel Core i7", "2-3.3 GHz", "45-130", "45 nm", "4-8", "x86", "256 KB private", "Processor", "Snoopy", "Point-to-Point (QPI)"},
		{"AMD Opteron", "2.1-3.6 GHz", "115-140", "32 nm SOI", "4-16", "x86", "2 MB/2 cores", "Processor", "Broadcast directory (HT)", "HyperTransport"},
		{"TILE64", "750 MHz", "15-22", "90 nm", "64", "MIPS-derived VLIW", "64 KB private", "Relaxed", "Directory", "5 8x8 meshes"},
		{"Oracle T5", "3.6 GHz", "-", "28 nm", "16", "SPARC", "128 KB private", "Relaxed", "Directory", "8x9 crossbar"},
		{"Intel Xeon E7", "2.1-2.7 GHz", "130", "32 nm", "6-10", "x86", "256 KB private", "Processor", "Snoopy", "Ring"},
		{"SCORPIO", "833 MHz", fmt.Sprintf("%.1f", ChipPowerW), "45 nm SOI", "36", "Power", "128 KB private", "Sequential consistency", "Snoopy", "6x6 mesh"},
	}
}
