package power

import (
	"math"
	"testing"
)

func TestPowerSharesSumToOne(t *testing.T) {
	sum := 0.0
	for _, f := range TilePowerBreakdown() {
		sum += f
	}
	if math.Abs(sum-1.0) > 0.01 {
		t.Fatalf("power shares sum to %.3f, want 1.0", sum)
	}
	sum = 0.0
	for _, f := range TileAreaBreakdown() {
		sum += f
	}
	if math.Abs(sum-1.0) > 0.01 {
		t.Fatalf("area shares sum to %.3f, want 1.0", sum)
	}
}

func TestHeadlineSharesMatchPaper(t *testing.T) {
	areaFrac, powerFrac := NetworkShareOfTile()
	if math.Abs(areaFrac-0.10) > 0.01 {
		t.Fatalf("network area share %.3f, paper says ~10%%", areaFrac)
	}
	if math.Abs(powerFrac-0.19) > 0.01 {
		t.Fatalf("network power share %.3f, paper says ~19%%", powerFrac)
	}
	p := TilePowerBreakdown()
	if got := p[Core] + p[L1DCache] + p[L1ICache]; math.Abs(got-0.62) > 0.01 {
		t.Fatalf("core+L1 power share %.3f, paper says ~62%%", got)
	}
	if p[NotifRouter] >= 0.01 {
		t.Fatalf("notification router power share %.4f, paper says <1%%", p[NotifRouter])
	}
	a := TileAreaBreakdown()
	if got := a[L1DCache] + a[L1ICache] + a[L2Array]; math.Abs(got-0.46) > 0.015 {
		t.Fatalf("cache area share %.3f, paper says ~46%%", got)
	}
}

func TestTilePowerAtNominalMatchesTotal(t *testing.T) {
	total := 0.0
	for _, mw := range TilePowerMWAt(NominalActivity()) {
		total += mw
	}
	if math.Abs(total-TilePowerMW)/TilePowerMW > 0.02 {
		t.Fatalf("nominal tile power %.1f mW, want ~%.0f", total, TilePowerMW)
	}
}

func TestActivityScalingIsBoundedByStaticFraction(t *testing.T) {
	idle := TilePowerMWAt(Activity{})
	nominal := TilePowerMWAt(NominalActivity())
	for _, c := range Components() {
		if idle[c] > nominal[c]+1e-9 {
			t.Fatalf("%s: idle power %.2f exceeds nominal %.2f", c, idle[c], nominal[c])
		}
		if idle[c] < nominal[c]*staticFraction-1e-9 {
			t.Fatalf("%s: idle power %.2f below static floor", c, idle[c])
		}
	}
	// Doubling network load raises only the network's dynamic share.
	hot := TilePowerMWAt(Activity{RouterFlitsPerCycle: 0.4, L2AccessesPerCycle: 0.1, CoreIPC: 0.8, NotifVectorsPerCycle: 1})
	if hot[NICRouter] <= nominal[NICRouter] {
		t.Fatal("network power must rise with flit activity")
	}
	if math.Abs(hot[Core]-nominal[Core]) > 1e-9 {
		t.Fatal("core power must not depend on network activity")
	}
}

func TestTileAreaDerivation(t *testing.T) {
	if TileAreaMM2 < 3.0 || TileAreaMM2 > 4.0 {
		t.Fatalf("tile area %.2f mm2 implausible for an 11x13 die with 36 tiles", TileAreaMM2)
	}
	total := 0.0
	for _, a := range TileAreaMM2Breakdown() {
		total += a
	}
	if math.Abs(total-TileAreaMM2) > 0.05 {
		t.Fatalf("component areas sum to %.2f, want %.2f", total, TileAreaMM2)
	}
}

func TestTablesPresent(t *testing.T) {
	if len(Table1()) < 15 {
		t.Fatal("Table 1 incomplete")
	}
	rows := Table2()
	if len(rows) != 6 || rows[len(rows)-1].Name != "SCORPIO" {
		t.Fatal("Table 2 must end with the SCORPIO column")
	}
	for _, c := range Components() {
		if c.String() == "" {
			t.Fatal("unnamed component")
		}
	}
}
